package dust_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper (each regenerates the corresponding experiment at reduced
// scale; run `go run ./cmd/dustbench` for the full-scale reports), plus
// micro-benchmarks of the hot substrates (tuple embedding, clustering, the
// diversification algorithms).

import (
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"dust"
	"dust/internal/datagen"
	"dust/internal/diversify"
	"dust/internal/embed"
	"dust/internal/experiments"
	"dust/internal/lake"
	"dust/internal/model"
	"dust/internal/search"
	"dust/internal/vector"
)

var quickCfg = experiments.Config{Quick: true}

// --- one benchmark per paper artifact ---

func BenchmarkFig2PCA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig2(quickCfg)
	}
}

func BenchmarkFig5BenchmarkStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig5(quickCfg)
	}
}

func BenchmarkTable1ColumnAlignment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1(quickCfg)
	}
}

func BenchmarkFig6TupleAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig6(quickCfg)
	}
}

func BenchmarkTable2Diversification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2(quickCfg)
	}
}

func BenchmarkFig7RuntimeSweeps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig7(quickCfg)
	}
}

func BenchmarkTable3EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table3(quickCfg)
	}
}

func BenchmarkFig8CaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig8(quickCfg)
	}
}

func BenchmarkFig10ShuffleRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig10(quickCfg)
	}
}

func BenchmarkFig11ImpactOfP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig11(quickCfg)
	}
}

func BenchmarkPruneAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.PruneAblation(quickCfg)
	}
}

// --- end-to-end pipeline ---

func BenchmarkPipelineSearch(b *testing.B) {
	bench := datagen.Generate("bench-pipeline", datagen.Config{
		Seed: 991, Domains: 4, TablesPerBase: 5, BaseRows: 60, MinRows: 15, MaxRows: 30,
	})
	p := dust.New(bench.Lake)
	q := bench.Queries[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Search(q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdVsWarmStart quantifies index persistence on the Fig. 5
// mythology lake: "cold" loads the lake CSVs and builds the Starmie index
// from scratch; "warm" loads the same CSVs plus the index saved by
// SaveIndex. The acceptance bar for the persistence subsystem is warm >= 5x
// faster than cold (see BENCH_warmstart.json for recorded runs).
func BenchmarkColdVsWarmStart(b *testing.B) {
	bench := datagen.Generate("myth-bench", datagen.Config{
		Seed: 2026, TablesPerBase: 20, BaseRows: 160, MinRows: 30, MaxRows: 80,
	})
	l := lake.New("mythology")
	for _, t := range bench.Lake.Tables() {
		if strings.HasPrefix(t.Name, "mythology_") {
			l.MustAdd(t)
		}
	}
	dir := b.TempDir()
	lakeDir := filepath.Join(dir, "lake")
	idxDir := filepath.Join(dir, "index")
	if err := l.Save(lakeDir); err != nil {
		b.Fatal(err)
	}
	if err := dust.New(l).SaveIndex(idxDir); err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ll, err := lake.Load(lakeDir)
			if err != nil {
				b.Fatal(err)
			}
			dust.New(ll)
		}
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dust.LoadPipeline(lakeDir, idxDir); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelPipeline measures the end-to-end quick pipeline (index +
// search) at workers=1 vs workers=NumCPU so BENCH_*.json tracks the
// parallel speedup. The lake index is rebuilt inside the timed loop: index
// construction is a parallelized hot path, and serving-side TopK/embedding/
// diversification parallelism is covered by the same Search call.
func BenchmarkParallelPipeline(b *testing.B) {
	bench := datagen.Generate("bench-parallel", datagen.Config{
		Seed: 995, Domains: 4, TablesPerBase: 6, BaseRows: 80, MinRows: 20, MaxRows: 40,
	})
	q := bench.Queries[0]
	for _, workers := range benchWorkerCounts() {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := dust.New(bench.Lake, dust.WithWorkers(workers))
				if _, err := p.Search(q, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkANNPipeline pits the staged ANN query plan against the exact
// full scan on a 10k-table lake: stage one pulls Oversample*k candidate
// columns per query column from the HNSW graph, stage two re-scores only
// their owner tables with the exact bipartite matcher. The hnsw run
// reports recall@10 against the exact oracle as a custom metric; the
// acceptance bar is >= 5x TopK speedup with recall@10 >= 0.95, recorded
// in BENCH_ann.json (see also `dustbench -ann`, which writes it, and
// TestANNRecall, which gates recall in CI at smaller scale).
func BenchmarkANNPipeline(b *testing.B) {
	bench := datagen.Generate("bench-ann", datagen.Config{
		Seed: 997, Domains: 10, TablesPerBase: 1000, QueriesPerBase: 1,
		BaseRows: 30, MinRows: 4, MaxRows: 8,
	})
	exact := search.NewStarmie(bench.Lake)
	approx := exact.CloneWithLake(bench.Lake).(*search.Starmie) // shares the embeddings
	if err := approx.SetMode(search.ANN); err != nil {
		b.Fatal(err)
	}
	const k = 10
	var recall float64
	for _, q := range bench.Queries {
		want := map[string]bool{}
		for _, h := range exact.TopK(q, k) {
			want[h.Table.Name] = true
		}
		hits := 0
		for _, h := range approx.TopK(q, k) {
			if want[h.Table.Name] {
				hits++
			}
		}
		recall += float64(hits) / float64(len(want))
	}
	recall /= float64(len(bench.Queries))
	q := bench.Queries[0]
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			exact.TopK(q, k)
		}
	})
	b.Run("hnsw", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			approx.TopK(q, k)
		}
		b.ReportMetric(recall, "recall@10")
	})
}

// benchWorkerCounts is {1, NumCPU} on multi-core machines and {1} on a
// single core, where the second entry would just duplicate the first.
func benchWorkerCounts() []int {
	counts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkSearchBatch measures concurrent query serving over the bounded
// worker pool at workers=1 vs workers=NumCPU.
func BenchmarkSearchBatch(b *testing.B) {
	bench := datagen.Generate("bench-batch", datagen.Config{
		Seed: 996, Domains: 4, TablesPerBase: 5, BaseRows: 60, MinRows: 15, MaxRows: 30,
	})
	for _, workers := range benchWorkerCounts() {
		p := dust.New(bench.Lake, dust.WithWorkers(workers))
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.SearchBatch(bench.Queries, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkTupleEmbedding(b *testing.B) {
	b.ReportAllocs()
	enc := embed.NewRoBERTa()
	headers := []string{"Park Name", "Supervisor", "City", "Country"}
	values := []string{"River Park", "Vera Onate", "Fresno", "USA"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.EncodeTuple(headers, values)
	}
}

func BenchmarkModelEncode(b *testing.B) {
	b.ReportAllocs()
	bench := datagen.Generate("bench-model", datagen.Config{
		Seed: 992, Domains: 4, TablesPerBase: 4, BaseRows: 40, MinRows: 8, MaxRows: 16,
	})
	ds := datagen.Pairs(bench, 300, 993)
	cfg := model.DefaultConfig()
	cfg.Epochs = 3
	m := model.Train("bench", model.NewRoBERTaFeaturizer(), ds.Train, ds.Val, cfg)
	headers := []string{"Title", "Director", "Year"}
	values := []string{"Silent Harbor", "Maria Silva", "2004"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EncodeTuple(headers, values)
	}
}

func BenchmarkStarmieIndexAndSearch(b *testing.B) {
	b.ReportAllocs()
	bench := datagen.Generate("bench-starmie", datagen.Config{
		Seed: 994, Domains: 4, TablesPerBase: 6, BaseRows: 50, MinRows: 10, MaxRows: 25,
	})
	s := search.NewStarmie(bench.Lake)
	q := bench.Queries[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TopK(q, 6)
	}
}

// benchProblem builds a reusable synthetic diversification workload.
func benchProblem(s int) diversify.Problem {
	tuples := make([]vector.Vec, s)
	state := uint64(1)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>40)/float64(1<<24) - 0.5
	}
	for i := range tuples {
		v := make(vector.Vec, 16)
		for j := range v {
			v[j] = next()
		}
		tuples[i] = v
	}
	query := tuples[:5]
	return diversify.Problem{Query: query, Tuples: tuples[5:], K: 20, Dist: vector.CosineDistance}
}

func BenchmarkDiversifyDUST(b *testing.B) {
	b.ReportAllocs()
	p := benchProblem(1000)
	algo := diversify.NewDUST()
	algo.S = 400
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algo.Select(p)
	}
}

func BenchmarkDiversifyGMC(b *testing.B) {
	b.ReportAllocs()
	p := benchProblem(1000)
	algo := diversify.NewGMC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algo.Select(p)
	}
}

func BenchmarkDiversifyCLT(b *testing.B) {
	b.ReportAllocs()
	p := benchProblem(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diversify.CLT{}.Select(p)
	}
}

func BenchmarkDiversifyMaxMin(b *testing.B) {
	b.ReportAllocs()
	p := benchProblem(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diversify.MaxMin{}.Select(p)
	}
}
