// Command dustload is the open-loop load harness: it drives a dustserve
// endpoint at a target QPS with Poisson arrivals and a mixed
// search/PUT/DELETE workload generated from a LakeSpec, then writes the
// BENCH_load.json trajectory artifact (target vs achieved QPS, per-class
// p50/p99/p999 from scheduled arrival time, error/shed/degraded counts,
// and the server's own /stats delta).
//
// Open loop means arrivals fire on schedule whether or not earlier
// requests have completed, and latency is charged from the scheduled
// instant — a stalled server cannot slow the load down and hide its own
// tail (coordinated omission). See docs/BENCHMARKS.md.
//
// Usage:
//
//	# self-hosted: generate the lake, serve it in-process, drive it
//	dustload -spec 'tables=1000,rows=40,seed=7' -qps 200 -duration 20s
//
//	# against a running dustserve (use the spec its lake was built from)
//	dustload -addr http://localhost:8080 -spec 'tables=1000,rows=40,seed=7' \
//	         -qps 500 -duration 60s -mix '0.9,0.05,0.05'
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"dust"
	"dust/internal/datagen"
	"dust/internal/loadgen"
	"dust/internal/search"
	"dust/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "", "dustserve base URL to drive; empty self-hosts a server over the -spec lake on a loopback port")
		specStr  = flag.String("spec", "tables=200,rows=40,seed=1", "LakeSpec for the workload (and the self-hosted lake): comma-separated key=value, see dustgen -spec")
		qps      = flag.Float64("qps", 100, "target mean arrival rate")
		duration = flag.Duration("duration", 10*time.Second, "arrival-scheduling window")
		mixStr   = flag.String("mix", "0.90,0.05,0.05", "search,put,delete workload weights")
		k        = flag.Int("k", 10, "top-k per search (0 = server default)")
		pool     = flag.Int("queries", 16, "distinct search bodies rotated through")
		seed     = flag.Int64("seed", 1, "arrival/workload randomness")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request client timeout")
		out      = flag.String("out", "BENCH_load.json", "report artifact path")
		// Self-hosted server knobs (ignored with -addr).
		inflight = flag.Int("inflight", 0, "self-host: max concurrent searches (0 = all cores)")
		cacheCap = flag.Int("cache", 1024, "self-host: result cache capacity (0 disables)")
		degrade  = flag.Float64("degrade-threshold", 0, "self-host: cost-aware admission load threshold (0 disables)")
		ann      = flag.Bool("ann", false, "self-host: ANN candidate retrieval")
	)
	flag.Parse()

	spec, err := datagen.ParseLakeSpec(*specStr)
	if err != nil {
		fatal(err)
	}
	mix, err := parseMix(*mixStr)
	if err != nil {
		fatal(err)
	}

	base := *addr
	if base == "" {
		stop, hosted, err := selfHost(spec, *inflight, *cacheCap, *degrade, *ann)
		if err != nil {
			fatal(err)
		}
		defer stop()
		base = hosted
	}

	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:   base,
		QPS:       *qps,
		Duration:  *duration,
		Seed:      *seed,
		Mix:       mix,
		Spec:      spec,
		K:         *k,
		QueryPool: *pool,
		Timeout:   *timeout,
	})
	if err != nil {
		fatal(err)
	}

	printReport(rep)
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// selfHost generates the spec's lake, indexes it, and serves it on a
// loopback listener, returning a shutdown func and the base URL.
func selfHost(spec datagen.LakeSpec, inflight, cacheCap int, degrade float64, ann bool) (func(), string, error) {
	boot := time.Now()
	l := spec.Generate()
	opts := []dust.Option{dust.WithTopTables(10)}
	if ann {
		opts = append(opts, dust.WithRetriever(search.ANN))
	}
	p := dust.New(l, opts...)
	srv := serve.New(p,
		serve.WithMaxInFlight(inflight),
		serve.WithCacheCapacity(cacheCap),
		serve.WithDegradeThreshold(degrade),
	)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, "", err
	}
	hs := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = hs.Serve(ln) }()
	fmt.Printf("self-hosted %s (%s) on %s in %v\n",
		l.Name, l.Stats(), ln.Addr(), time.Since(boot).Round(time.Millisecond))
	stop := func() {
		_ = hs.Close()
		srv.Close()
	}
	return stop, "http://" + ln.Addr().String(), nil
}

// parseMix parses "search,put,delete" weights.
func parseMix(s string) (loadgen.Mix, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return loadgen.Mix{}, fmt.Errorf("mix %q: want three comma-separated weights", s)
	}
	var w [3]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return loadgen.Mix{}, fmt.Errorf("mix %q: %v", s, err)
		}
		w[i] = v
	}
	return loadgen.Mix{Search: w[0], Put: w[1], Delete: w[2]}, nil
}

// printReport renders the human summary of one run.
func printReport(rep *loadgen.Report) {
	fmt.Printf("open-loop load: target %.1f qps, achieved %.1f qps over %.1fs (%d requests, %d failed, %d shed)\n",
		rep.TargetQPS, rep.AchievedQPS, rep.DurationS, rep.Requests, rep.Failed, rep.Shed)
	classes := make([]string, 0, len(rep.Classes))
	for class := range rep.Classes {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		c := rep.Classes[class]
		if c.Count == 0 {
			continue
		}
		fmt.Printf("  %-7s %5d ok / %d (%d shed, %d degraded, %d errors)  p50 %7.2fms  p99 %7.2fms  p999 %7.2fms\n",
			class, c.OK, c.Count, c.Shed, c.Degraded, c.Errors, c.P50MS, c.P99MS, c.P999MS)
	}
	if rep.Server != nil {
		fmt.Printf("  server: %d searches, %d mutations, %d shed, %d degraded, %d cache hits\n",
			rep.Server.Searches, rep.Server.Mutations, rep.Server.Shed,
			rep.Server.Degraded, rep.Server.CacheHits)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dustload:", err)
	os.Exit(1)
}
