// Command dusttrain fine-tunes the DUST tuple embedding model on a
// generated TUS-style pair dataset and saves it for dustsearch.
//
// Usage:
//
//	dusttrain -out dust.model            # RoBERTa variant (paper default)
//	dusttrain -base bert -pairs 4000 -out dust-bert.model
package main

import (
	"flag"
	"fmt"
	"os"

	"dust/internal/datagen"
	"dust/internal/model"
)

func main() {
	var (
		base   = flag.String("base", "roberta", "frozen base: roberta or bert")
		pairs  = flag.Int("pairs", 2000, "total fine-tuning pairs (70/15/15 split)")
		epochs = flag.Int("epochs", 40, "max training epochs (early stopping patience 10)")
		out    = flag.String("out", "", "output model file (required)")
		seed   = flag.Int64("seed", 1, "training seed")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "dusttrain: -out is required")
		os.Exit(2)
	}
	var feat *model.Featurizer
	name := "dust-" + *base
	switch *base {
	case "roberta":
		feat = model.NewRoBERTaFeaturizer()
	case "bert":
		feat = model.NewBERTFeaturizer()
	default:
		fmt.Fprintf(os.Stderr, "dusttrain: unknown base %q\n", *base)
		os.Exit(2)
	}

	fmt.Printf("generating TUS fine-tuning benchmark and %d pairs...\n", *pairs)
	bench := datagen.Generate("tus-finetune", datagen.Config{
		Seed: 901, Domains: 8, TablesPerBase: 8, BaseRows: 60, MinRows: 10, MaxRows: 20,
	})
	ds := datagen.Pairs(bench, *pairs, 902)

	cfg := model.DefaultConfig()
	cfg.Epochs = *epochs
	cfg.Seed = *seed
	fmt.Printf("training %s (%d train / %d val pairs, <=%d epochs)...\n",
		name, len(ds.Train), len(ds.Val), cfg.Epochs)
	m := model.Train(name, feat, ds.Train, ds.Val, cfg)

	acc := model.Accuracy(m, ds.Test, model.ClassifyThreshold)
	fmt.Printf("test accuracy at threshold %.1f: %.3f\n", model.ClassifyThreshold, acc)

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dusttrain:", err)
		os.Exit(1)
	}
	if err := m.Save(f); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "dusttrain:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "dusttrain:", err)
		os.Exit(1)
	}
	fmt.Printf("saved %s\n", *out)
}
