// Command dustgen materialises the synthetic benchmarks as CSV trees so
// they can be inspected, loaded by dustsearch, or reused outside Go.
//
// Usage:
//
//	dustgen -bench santos -out ./santos
//	dustgen -bench santos -out ./santos -index
//	dustgen -spec 'tables=1000,rows=40,seed=7,null=0.02' -out ./lake1k
//
// The output directory receives lake/<table>.csv, queries/<query>.csv, and
// groundtruth.csv (query table name -> unionable lake table names). With
// -index it also receives index/, a prebuilt search index that
// `dustsearch -lake ./santos/lake -index-dir ./santos/index` warm-starts
// from without re-embedding the lake.
//
// With -spec the lake comes from the seeded LakeSpec generator instead of
// a named benchmark: comma-separated key=value knobs (tables, rows, cols,
// seed, zipf, domain, parents, fk, and the dirty-data rates ragged, mixed,
// unicode, null, empty). Spec CSVs are written through the dirty
// serialiser, so ragged rows and malformed cells survive into the files —
// the same bytes the ingestion fuzzers chew on. There is no groundtruth
// for spec lakes; -queries controls how many query tables are emitted.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dust"
	"dust/internal/datagen"
	"dust/internal/lake"
)

func main() {
	var (
		bench    = flag.String("bench", "santos", "benchmark: tus, tus-sampled, santos, ugen, imdb")
		spec     = flag.String("spec", "", "LakeSpec key=value knobs; overrides -bench (e.g. 'tables=1000,rows=40,seed=7')")
		queries  = flag.Int("queries", 10, "query tables to emit in -spec mode")
		out      = flag.String("out", "", "output directory (required)")
		genIndex = flag.Bool("index", false, "also build the search index and save it under <out>/index")
		workers  = flag.Int("workers", 0, "index-build parallelism (0 = all cores)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "dustgen: -out is required")
		os.Exit(2)
	}

	if *spec != "" {
		s, err := datagen.ParseLakeSpec(*spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dustgen:", err)
			os.Exit(2)
		}
		l, err := writeSpec(s, *out, *queries)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dustgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%s): %d queries, %s\n", l.Name, s.Normalized(), *queries, l.Stats())
		if *genIndex {
			saveIndex(l, *out, *workers)
		}
		return
	}

	var b *datagen.Benchmark
	switch *bench {
	case "tus":
		b = datagen.TUS()
	case "tus-sampled":
		b = datagen.TUSSampled()
	case "santos":
		b = datagen.SANTOS()
	case "ugen":
		b = datagen.UGEN()
	case "imdb":
		b = datagen.IMDB()
	default:
		fmt.Fprintf(os.Stderr, "dustgen: unknown benchmark %q\n", *bench)
		os.Exit(2)
	}

	if err := write(b, *out); err != nil {
		fmt.Fprintln(os.Stderr, "dustgen:", err)
		os.Exit(1)
	}
	s := b.Lake.Stats()
	fmt.Printf("wrote %s: %d queries, %s\n", b.Name, len(b.Queries), s)

	if *genIndex {
		saveIndex(b.Lake, *out, *workers)
	}
}

// saveIndex builds the search index for l and saves it under <out>/index.
func saveIndex(l *lake.Lake, out string, workers int) {
	idxDir := filepath.Join(out, "index")
	p := dust.New(l, dust.WithWorkers(workers))
	if err := p.SaveIndex(idxDir); err != nil {
		fmt.Fprintln(os.Stderr, "dustgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote prebuilt index to %s\n", idxDir)
}

// writeSpec materialises a LakeSpec lake under dir. Table CSVs go through
// the spec's dirty serialiser (raw bytes, not the lake's clean writer) so
// ragged rows and malformed cells reach disk; the returned lake is the
// spec's canonical in-memory form, used for stats and the optional index.
func writeSpec(s datagen.LakeSpec, dir string, queries int) (*lake.Lake, error) {
	s = s.Normalized()
	lakeDir := filepath.Join(dir, "lake")
	if err := os.MkdirAll(lakeDir, 0o755); err != nil {
		return nil, err
	}
	for i := 0; i < s.Tables; i++ {
		name := filepath.Join(lakeDir, s.TableName(i)+".csv")
		if err := os.WriteFile(name, s.CSV(i), 0o644); err != nil {
			return nil, err
		}
	}
	for i := 0; i < queries; i++ {
		q := s.Query(i)
		if err := q.SaveCSV(filepath.Join(dir, "queries", q.Name+".csv")); err != nil {
			return nil, err
		}
	}
	return s.Generate(), nil
}

func write(b *datagen.Benchmark, dir string) error {
	if err := b.Lake.Save(filepath.Join(dir, "lake")); err != nil {
		return err
	}
	for _, q := range b.Queries {
		if err := q.SaveCSV(filepath.Join(dir, "queries", q.Name+".csv")); err != nil {
			return err
		}
	}
	f, err := os.Create(filepath.Join(dir, "groundtruth.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"query", "unionable_table"}); err != nil {
		return err
	}
	for _, q := range b.Queries {
		for _, n := range b.Unionable[q.Name] {
			if err := w.Write([]string{q.Name, n}); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}
