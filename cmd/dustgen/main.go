// Command dustgen materialises the synthetic benchmarks as CSV trees so
// they can be inspected, loaded by dustsearch, or reused outside Go.
//
// Usage:
//
//	dustgen -bench santos -out ./santos
//	dustgen -bench santos -out ./santos -index
//
// The output directory receives lake/<table>.csv, queries/<query>.csv, and
// groundtruth.csv (query table name -> unionable lake table names). With
// -index it also receives index/, a prebuilt search index that
// `dustsearch -lake ./santos/lake -index-dir ./santos/index` warm-starts
// from without re-embedding the lake.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dust"
	"dust/internal/datagen"
)

func main() {
	var (
		bench    = flag.String("bench", "santos", "benchmark: tus, tus-sampled, santos, ugen, imdb")
		out      = flag.String("out", "", "output directory (required)")
		genIndex = flag.Bool("index", false, "also build the search index and save it under <out>/index")
		workers  = flag.Int("workers", 0, "index-build parallelism (0 = all cores)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "dustgen: -out is required")
		os.Exit(2)
	}

	var b *datagen.Benchmark
	switch *bench {
	case "tus":
		b = datagen.TUS()
	case "tus-sampled":
		b = datagen.TUSSampled()
	case "santos":
		b = datagen.SANTOS()
	case "ugen":
		b = datagen.UGEN()
	case "imdb":
		b = datagen.IMDB()
	default:
		fmt.Fprintf(os.Stderr, "dustgen: unknown benchmark %q\n", *bench)
		os.Exit(2)
	}

	if err := write(b, *out); err != nil {
		fmt.Fprintln(os.Stderr, "dustgen:", err)
		os.Exit(1)
	}
	s := b.Lake.Stats()
	fmt.Printf("wrote %s: %d queries, %s\n", b.Name, len(b.Queries), s)

	if *genIndex {
		idxDir := filepath.Join(*out, "index")
		p := dust.New(b.Lake, dust.WithWorkers(*workers))
		if err := p.SaveIndex(idxDir); err != nil {
			fmt.Fprintln(os.Stderr, "dustgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote prebuilt index to %s\n", idxDir)
	}
}

func write(b *datagen.Benchmark, dir string) error {
	if err := b.Lake.Save(filepath.Join(dir, "lake")); err != nil {
		return err
	}
	for _, q := range b.Queries {
		if err := q.SaveCSV(filepath.Join(dir, "queries", q.Name+".csv")); err != nil {
			return err
		}
	}
	f, err := os.Create(filepath.Join(dir, "groundtruth.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"query", "unionable_table"}); err != nil {
		return err
	}
	for _, q := range b.Queries {
		for _, n := range b.Unionable[q.Name] {
			if err := w.Write([]string{q.Name, n}); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}
