// Command dustgen materialises the synthetic benchmarks as CSV trees so
// they can be inspected, loaded by dustsearch, or reused outside Go.
//
// Usage:
//
//	dustgen -bench santos -out ./santos
//
// The output directory receives lake/<table>.csv, queries/<query>.csv, and
// groundtruth.csv (query table name -> unionable lake table names).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dust/internal/datagen"
)

func main() {
	var (
		bench = flag.String("bench", "santos", "benchmark: tus, tus-sampled, santos, ugen, imdb")
		out   = flag.String("out", "", "output directory (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "dustgen: -out is required")
		os.Exit(2)
	}

	var b *datagen.Benchmark
	switch *bench {
	case "tus":
		b = datagen.TUS()
	case "tus-sampled":
		b = datagen.TUSSampled()
	case "santos":
		b = datagen.SANTOS()
	case "ugen":
		b = datagen.UGEN()
	case "imdb":
		b = datagen.IMDB()
	default:
		fmt.Fprintf(os.Stderr, "dustgen: unknown benchmark %q\n", *bench)
		os.Exit(2)
	}

	if err := write(b, *out); err != nil {
		fmt.Fprintln(os.Stderr, "dustgen:", err)
		os.Exit(1)
	}
	s := b.Lake.Stats()
	fmt.Printf("wrote %s: %d queries, %s\n", b.Name, len(b.Queries), s)
}

func write(b *datagen.Benchmark, dir string) error {
	if err := b.Lake.Save(filepath.Join(dir, "lake")); err != nil {
		return err
	}
	for _, q := range b.Queries {
		if err := q.SaveCSV(filepath.Join(dir, "queries", q.Name+".csv")); err != nil {
			return err
		}
	}
	f, err := os.Create(filepath.Join(dir, "groundtruth.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"query", "unionable_table"}); err != nil {
		return err
	}
	for _, q := range b.Queries {
		for _, n := range b.Unionable[q.Name] {
			if err := w.Write([]string{q.Name, n}); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}
