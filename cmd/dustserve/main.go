// Command dustserve exposes a data lake as a long-running diverse-tuple
// search service: snapshot-swapped live indexes (PUT/DELETE /tables mutate
// the lake without blocking in-flight queries), a sharded LRU result cache
// invalidated by epoch and bounded by entries and bytes, bounded request
// admission with optional cost-aware degradation (-degrade-threshold:
// overloaded servers answer from the ANN view or shed with Retry-After),
// background index maintenance (-maintenance-interval compacts tombstone
// debt off the query path), and per-request timeouts.
//
// Usage:
//
//	dustserve -lake ./santos/lake -addr :8080
//	dustserve -lake ./santos/lake -index-dir ./santos/index    # warm start
//	dustserve -spec 'tables=1000,rows=40,seed=7' -addr :8080   # synthetic lake
//
// With -index-dir the server warm-starts from a saved index when one
// exists and otherwise builds the index cold and saves it for next boot.
//
// Try it:
//
//	curl localhost:8080/healthz
//	curl -H 'Content-Type: text/csv' --data-binary @query.csv \
//	     'localhost:8080/search?k=10'
//	curl -X PUT -H 'Content-Type: text/csv' --data-binary @new_table.csv \
//	     localhost:8080/tables/new_table
//	curl localhost:8080/metrics
//
// Observability: GET /metrics serves Prometheus text exposition,
// -log-requests writes one JSON line per request to stderr, and
// -pprof-addr serves net/http/pprof on a separate (typically
// loopback-only) listener. See docs/OPERATIONS.md for the full
// reference.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"dust"
	"dust/internal/datagen"
	"dust/internal/lake"
	"dust/internal/model"
	"dust/internal/search"
	"dust/internal/serve"
)

func main() {
	var (
		lakeDir    = flag.String("lake", "", "directory of lake CSVs (required unless -spec)")
		specStr    = flag.String("spec", "", "serve a synthetic LakeSpec lake instead of -lake: comma-separated key=value knobs (see dustgen -spec)")
		indexDir   = flag.String("index-dir", "", "saved-index directory: warm-start from it when present, create it otherwise")
		addr       = flag.String("addr", ":8080", "listen address")
		topTables  = flag.Int("tables", 10, "unionable tables retrieved per query")
		modelPath  = flag.String("model", "", "fine-tuned model from dusttrain (optional)")
		workers    = flag.Int("workers", 0, "index-build parallelism (0 = all cores)")
		queryWk    = flag.Int("query-workers", 1, "data parallelism inside each request")
		inflight   = flag.Int("inflight", 0, "max concurrent searches (0 = all cores)")
		cacheCap   = flag.Int("cache", 1024, "query-result cache capacity (0 disables)")
		cacheBy    = flag.Int64("cache-bytes", 0, "query-result cache resident-byte cap (0 = entry bound only)")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-request budget (0 disables)")
		degrade    = flag.Float64("degrade-threshold", 0, "load factor at which searches degrade to ANN retrieval (or shed with 503 + Retry-After when no ANN view exists); 0 disables cost-aware admission")
		maintIvl   = flag.Duration("maintenance-interval", 0, "background index-maintenance period: compact tombstone-heavy indexes on a clone off the query path and swap (0 disables; mutations then compact inline past the rebuild threshold)")
		maintFrac  = flag.Float64("maintenance-threshold", serve.DefaultMaintenanceThreshold, "dead-entry fraction at which the maintainer compacts")
		ann        = flag.Bool("ann", false, "approximate candidate retrieval (HNSW) with exact re-ranking; the graph persists in -index-dir and follows live table mutations. -ann=false forces exact retrieval even for an index saved in ANN mode; omit the flag to follow the saved index")
		quantized  = flag.Bool("quantized", false, "SQ8 scalar-quantized graph storage (~4x less resident index memory); candidates are still re-ranked exactly, so exact-mode results are unchanged. A warm-started graph keeps its stored representation until its next rebuild")
		oversample = flag.Float64("oversample", 0, "ANN candidate oversampling factor: retrieve about N*k candidates before exact re-ranking (0 = default)")
		efSearch   = flag.Int("ef-search", 0, "HNSW traversal beam width of the ANN candidate stage (0 = default)")
		shards     = flag.Int("shards", 1, "partition the index into N scatter-gather shards (1 = monolithic); table mutations route to the owning shard and exact-mode results are identical either way. Applies to cold builds only: a warm start keeps the layout saved in -index-dir")
		logReqs    = flag.Bool("log-requests", false, "log one JSON line per request to stderr (method, endpoint, status, duration, cache outcome, per-stage search timings)")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables profiling")
	)
	flag.Parse()
	if *lakeDir == "" && *specStr == "" {
		fmt.Fprintln(os.Stderr, "dustserve: -lake or -spec is required")
		os.Exit(2)
	}
	if *lakeDir != "" && *specStr != "" {
		fmt.Fprintln(os.Stderr, "dustserve: -lake and -spec are mutually exclusive")
		os.Exit(2)
	}

	var l *lake.Lake
	var err error
	if *specStr != "" {
		spec, perr := datagen.ParseLakeSpec(*specStr)
		if perr != nil {
			fatal(perr)
		}
		gen := time.Now()
		l = spec.Generate()
		fmt.Printf("generated %s (%s) in %v\n",
			spec.Normalized(), l.Stats(), time.Since(gen).Round(time.Millisecond))
	} else {
		l, err = lake.Load(*lakeDir)
		if err != nil {
			fatal(err)
		}
	}
	opts := []dust.Option{
		dust.WithTopTables(*topTables), dust.WithWorkers(*workers), dust.WithShards(*shards),
		dust.WithOversample(*oversample), dust.WithEfSearch(*efSearch),
	}
	if *quantized {
		opts = append(opts, dust.WithQuantized(true))
	}
	// Tri-state retrieval: an explicit -ann / -ann=false overrides the
	// mode recorded in a warm-started index; omitting the flag follows it.
	flag.Visit(func(f *flag.Flag) {
		if f.Name != "ann" {
			return
		}
		mode := search.Exact
		if *ann {
			mode = search.ANN
		}
		opts = append(opts, dust.WithRetriever(mode))
	})
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			fatal(err)
		}
		m, err := model.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		opts = append(opts, dust.WithTupleEncoder(m))
	}

	var p *dust.Pipeline
	boot := time.Now()
	switch {
	case *indexDir != "" && dust.HasIndex(*indexDir):
		p, err = dust.LoadPipelineLake(l, *indexDir, opts...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("warm start: loaded index from %s in %v (epoch %d, %d shard(s))\n",
			*indexDir, time.Since(boot).Round(time.Millisecond), p.Epoch(), p.Shards())
	default:
		p = dust.New(l, opts...)
		fmt.Printf("cold start: indexed %s in %v (%d shard(s))\n",
			l.Stats(), time.Since(boot).Round(time.Millisecond), p.Shards())
		if *indexDir != "" {
			if err := p.SaveIndex(*indexDir); err != nil {
				fatal(err)
			}
			fmt.Printf("saved index to %s\n", *indexDir)
		}
	}

	sopts := []serve.Option{
		serve.WithCacheCapacity(*cacheCap),
		serve.WithCacheBytes(*cacheBy),
		serve.WithMaxInFlight(*inflight),
		serve.WithQueryWorkers(*queryWk),
		serve.WithTimeout(*timeout),
		serve.WithDegradeThreshold(*degrade),
		serve.WithMaintenance(*maintIvl),
		serve.WithMaintenanceThreshold(*maintFrac),
	}
	if *logReqs {
		sopts = append(sopts, serve.WithRequestLog(os.Stderr))
	}
	srv := serve.New(p, sopts...)
	if *degrade > 0 {
		fmt.Printf("admission: degrade threshold %.2f\n", *degrade)
	}
	if *maintIvl > 0 {
		fmt.Printf("maintenance: every %v past dead fraction %.2f\n", *maintIvl, *maintFrac)
	}

	// Profiling stays off the serving listener: exposing pprof is opt-in
	// and on its own (typically loopback-only) address.
	if *pprofAddr != "" {
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			ps := &http.Server{Addr: *pprofAddr, Handler: pm, ReadHeaderTimeout: 10 * time.Second}
			if err := ps.ListenAndServe(); err != nil {
				fmt.Fprintln(os.Stderr, "dustserve: pprof:", err)
			}
		}()
		fmt.Printf("pprof: serving on %s\n", *pprofAddr)
	}

	fmt.Printf("dustserve: serving %s on %s\n", l.Name, *addr)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := hs.ListenAndServe(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dustserve:", err)
	os.Exit(1)
}
