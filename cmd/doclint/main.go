// Command doclint enforces the repo's documentation bar in CI, stdlib
// only (no external linters):
//
//  1. Every package in the tree — the root, internal/*, cmd/*, examples/*
//     — must carry a package-level doc comment on at least one file.
//  2. In the designated public-API packages, every exported top-level
//     identifier (functions, methods on exported receivers, types, and
//     const/var declarations) must carry a doc comment; for grouped
//     const/var declarations a comment on the block suffices.
//
// Usage:
//
//	doclint [-exported dir1,dir2,...] [root]
//
// root defaults to the current directory; -exported defaults to the
// packages whose surface other code programs against: the dust root, the
// embeddable serving layer, and the sharding layer. Findings print one
// per line as path:line: message, and any finding exits 1 — wired as a CI
// step so documentation regressions fail the build.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	exported := flag.String("exported",
		".,internal/obs,internal/serve,internal/shard",
		"comma-separated package dirs (relative to root) whose exported symbols must all be documented")
	flag.Parse()
	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}

	exportedDirs := map[string]bool{}
	for _, d := range strings.Split(*exported, ",") {
		if d = strings.TrimSpace(d); d != "" {
			exportedDirs[filepath.Clean(d)] = true
		}
	}

	files, err := goFiles(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(2)
	}

	var findings []string
	fset := token.NewFileSet()
	byDir := map[string][]*ast.File{}
	dirHasPkgDoc := map[string]bool{}
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
		rel, _ := filepath.Rel(root, filepath.Dir(path))
		rel = filepath.Clean(rel)
		byDir[rel] = append(byDir[rel], f)
		if f.Doc != nil {
			dirHasPkgDoc[rel] = true
		}
	}

	dirs := make([]string, 0, len(byDir))
	for d := range byDir {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		if !dirHasPkgDoc[dir] {
			findings = append(findings,
				fmt.Sprintf("%s: package %s has no package doc comment on any file",
					dir, byDir[dir][0].Name.Name))
		}
		if !exportedDirs[dir] {
			continue
		}
		for _, f := range byDir[dir] {
			findings = append(findings, lintExported(fset, f)...)
		}
	}

	if len(findings) > 0 {
		for _, m := range findings {
			fmt.Println(m)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Printf("doclint: %d packages clean (%d with full exported-symbol coverage)\n",
		len(byDir), len(exportedDirs))
}

// goFiles collects every non-test .go file under root, skipping hidden
// directories and testdata.
func goFiles(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			out = append(out, path)
		}
		return nil
	})
	return out, err
}

// lintExported reports every exported top-level identifier in f that has
// no doc comment.
func lintExported(fset *token.FileSet, f *ast.File) []string {
	var findings []string
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, fmt.Sprintf(format, args...)))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil {
				recv := receiverName(d.Recv)
				if !ast.IsExported(recv) {
					continue
				}
				report(d.Pos(), "exported method %s.%s has no doc comment", recv, d.Name.Name)
				continue
			}
			report(d.Pos(), "exported function %s has no doc comment", d.Name.Name)
		case *ast.GenDecl:
			blockDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !blockDoc && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
					}
				case *ast.ValueSpec:
					if blockDoc || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(s.Pos(), "exported %s %s has no doc comment",
								strings.ToLower(d.Tok.String()), n.Name)
						}
					}
				}
			}
		}
	}
	return findings
}

// receiverName extracts the receiver's type name, unwrapping pointers and
// type parameters.
func receiverName(fl *ast.FieldList) string {
	if len(fl.List) == 0 {
		return ""
	}
	t := fl.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
