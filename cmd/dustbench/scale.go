package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"dust/internal/datagen"
	"dust/internal/search"
)

// scaleStorage is one storage mode's half of the scale report: graph
// build time, resident footprint, and query behaviour of the ANN stage.
type scaleStorage struct {
	GraphMS float64 `json:"graph_build_ms"`
	// IndexBytes is the graph's full resident estimate (vectors + links);
	// VectorBytes isolates the stored-vector payload, the part SQ8
	// compresses (links are storage-independent).
	IndexBytes    int64   `json:"index_bytes"`
	VectorBytes   int64   `json:"vector_bytes"`
	BytesPerTable float64 `json:"bytes_per_table"`
	ANNMS         float64 `json:"ann_ms_per_query"`
	RecallAtK     float64 `json:"recall_at_k"`
}

// scaleReport is the JSON record of one -scale run (BENCH_scale.json):
// the same lake and query set measured under float and SQ8-quantized
// graph storage, against the exact full-scan oracle.
type scaleReport struct {
	Benchmark  string       `json:"benchmark"`
	Tables     int          `json:"tables"`
	Columns    int          `json:"columns"`
	Queries    int          `json:"queries"`
	K          int          `json:"k"`
	Workers    int          `json:"workers"`
	Oversample float64      `json:"oversample"`
	EfSearch   int          `json:"ef_search"`
	IndexMS    float64      `json:"index_ms"`
	ExactMS    float64      `json:"exact_ms_per_query"`
	Float      scaleStorage `json:"float"`
	Quantized  scaleStorage `json:"quantized"`
	// VectorBytesRatio is quantized vector bytes over float vector bytes —
	// the memory headline (~0.28 at dim 128: d+16 vs 4d bytes per vector).
	VectorBytesRatio float64 `json:"vector_bytes_ratio"`
}

// runScaleBench measures the ANN index at lake scale: a generated lake of
// about `tables` tables is indexed once, then the same HNSW graph is
// built twice — float storage and SQ8-quantized — with resident bytes,
// batch-parallel build time, per-query ANN latency, and recall@k against
// the exact oracle recorded for each, and the report written to out.
// The headline run uses 100k tables; CI smokes it at 2k.
func runScaleBench(tables, workers, k int, oversample float64, efSearch int, out string) error {
	const domains = 10
	perBase := tables / domains
	if perBase < 1 {
		perBase = 1
	}
	cfg := datagen.Config{
		Seed: 1009, Domains: domains, TablesPerBase: perBase, QueriesPerBase: 1,
		BaseRows: 30, MinRows: 4, MaxRows: 8,
	}
	start := time.Now()
	bench := datagen.Generate("scale-bench", cfg)
	fmt.Printf("scale benchmark: generated %d tables in %v\n",
		bench.Lake.Len(), time.Since(start).Round(time.Millisecond))

	rep := scaleReport{
		Benchmark:  "scale",
		Tables:     bench.Lake.Len(),
		Columns:    bench.Lake.Stats().Columns,
		Queries:    len(bench.Queries),
		K:          k,
		Workers:    workers,
		Oversample: oversample,
		EfSearch:   efSearch,
	}

	start = time.Now()
	s := search.NewStarmie(bench.Lake, search.WithWorkers(workers))
	s.SetOversample(oversample)
	s.SetEfSearch(efSearch)
	rep.IndexMS = ms(time.Since(start))
	fmt.Printf("indexed %d tables (%d columns) in %.0f ms\n", rep.Tables, rep.Columns, rep.IndexMS)

	// Exact oracle first, while the searcher is still in exact mode.
	exact := make([][]string, len(bench.Queries))
	var exTotal time.Duration
	for i, q := range bench.Queries {
		t0 := time.Now()
		exact[i] = scoredKeys(s.TopK(q, k))
		exTotal += time.Since(t0)
	}
	rep.ExactMS = ms(exTotal) / float64(len(bench.Queries))
	fmt.Printf("exact oracle: %.2f ms/query\n\n", rep.ExactMS)

	measure := func(label string, build func() error) (scaleStorage, error) {
		var st scaleStorage
		t0 := time.Now()
		if err := build(); err != nil {
			return st, err
		}
		st.GraphMS = ms(time.Since(t0))
		g := s.Graph()
		st.IndexBytes = g.Bytes()
		st.VectorBytes = g.VectorBytes()
		st.BytesPerTable = float64(st.VectorBytes) / float64(rep.Tables)
		var annTotal time.Duration
		var recallSum float64
		for i, q := range bench.Queries {
			t1 := time.Now()
			got := scoredKeys(s.TopK(q, k))
			annTotal += time.Since(t1)
			recallSum += recallOf(exact[i], got)
		}
		st.ANNMS = ms(annTotal) / float64(len(bench.Queries))
		st.RecallAtK = recallSum / float64(len(bench.Queries))
		fmt.Printf("%-10s build %8.0f ms  vectors %12d B (%.1f B/table)  query %8.2f ms  recall@%d %.3f\n",
			label, st.GraphMS, st.VectorBytes, st.BytesPerTable, st.ANNMS, k, st.RecallAtK)
		return st, nil
	}

	var err error
	if rep.Float, err = measure("float", func() error { return s.SetMode(search.ANN) }); err != nil {
		return err
	}
	if rep.Quantized, err = measure("quantized", func() error { s.SetQuantized(true); return nil }); err != nil {
		return err
	}
	if rep.Float.VectorBytes > 0 {
		rep.VectorBytesRatio = float64(rep.Quantized.VectorBytes) / float64(rep.Float.VectorBytes)
	}
	fmt.Printf("\nquantized/float vector bytes: %.3fx\n", rep.VectorBytesRatio)

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// recallOf is the fraction of the oracle's keys the candidate run found.
func recallOf(oracle, got []string) float64 {
	if len(oracle) == 0 {
		return 1
	}
	in := make(map[string]bool, len(got))
	for _, n := range got {
		in[n] = true
	}
	hits := 0
	for _, n := range oracle {
		if in[n] {
			hits++
		}
	}
	return float64(hits) / float64(len(oracle))
}
