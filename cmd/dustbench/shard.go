package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"dust/internal/datagen"
	"dust/internal/par"
	"dust/internal/search"
	"dust/internal/shard"
)

// shardReport is the JSON record of one scatter-gather benchmark run; the
// repo's perf trajectory tracks it in BENCH_shard.json (schema documented
// in docs/BENCHMARKS.md).
type shardReport struct {
	Benchmark     string  `json:"benchmark"`
	Searcher      string  `json:"searcher"`
	Tables        int     `json:"tables"`
	Shards        int     `json:"shards"`
	Queries       int     `json:"queries"`
	K             int     `json:"k"`
	Oversample    float64 `json:"oversample"`
	IndexMS       float64 `json:"unsharded_index_ms"`
	ShardIndexMS  float64 `json:"sharded_index_ms"`
	UnshardedMS   float64 `json:"unsharded_ms_per_query"`
	ShardedMS     float64 `json:"sharded_ms_per_query"`
	ShardedANNMS  float64 `json:"sharded_ann_ms_per_query"`
	ThroughputQPS float64 `json:"sharded_topk_qps"`
	ExactParity   bool    `json:"exact_parity"`
}

// runShardBench benchmarks the sharded scatter-gather index against the
// monolithic one: per-query exact TopK latency for both layouts over a
// generated lake, a bit-identity parity check (the equivalence the test
// suite gates), per-query latency for the sharded layout in ANN mode, and
// concurrent scatter-gather TopK throughput. The full-scale lake holds 10k
// tables; -quick drops to 1k so the run finishes in seconds.
func runShardBench(shards int, quick bool, k int, out string) error {
	cfg := datagen.Config{
		Seed: 997, Domains: 10, TablesPerBase: 1000, QueriesPerBase: 1,
		BaseRows: 30, MinRows: 4, MaxRows: 8,
	}
	if quick {
		cfg.TablesPerBase = 100
	}
	bench := datagen.Generate("shard-bench", cfg)
	rep := shardReport{
		Benchmark:  "scatter-gather",
		Searcher:   "starmie",
		Tables:     bench.Lake.Len(),
		Shards:     shards,
		Queries:    len(bench.Queries),
		K:          k,
		Oversample: search.DefaultOversample,
	}
	fmt.Printf("scatter-gather benchmark: starmie over %d tables, %d shards, k=%d\n\n",
		rep.Tables, shards, k)

	start := time.Now()
	mono := search.NewStarmie(bench.Lake)
	rep.IndexMS = ms(time.Since(start))
	start = time.Now()
	sharded := shard.NewStarmie(bench.Lake, shards, shard.Config{})
	rep.ShardIndexMS = ms(time.Since(start))

	names := func(hits []search.Scored) []string { return scoredKeys(hits) }
	var monoTotal, shardTotal, annTotal time.Duration
	rep.ExactParity = true
	fmt.Printf("%-14s %12s %12s %8s\n", "query", "mono ms", "sharded ms", "parity")
	for _, q := range bench.Queries {
		t0 := time.Now()
		want := names(mono.TopK(q, k))
		monoDur := time.Since(t0)
		monoTotal += monoDur

		t0 = time.Now()
		got := names(sharded.TopK(q, k))
		shardDur := time.Since(t0)
		shardTotal += shardDur

		parity := len(got) == len(want)
		for j := 0; parity && j < len(want); j++ {
			if got[j] != want[j] {
				parity = false
			}
		}
		if !parity {
			rep.ExactParity = false
		}
		fmt.Printf("%-14s %12.2f %12.2f %8v\n", q.Name, ms(monoDur), ms(shardDur), parity)
	}

	if err := sharded.SetMode(search.ANN); err != nil {
		return err
	}
	for _, q := range bench.Queries {
		t0 := time.Now()
		sharded.TopK(q, k)
		annTotal += time.Since(t0)
	}

	// Scatter-gather throughput: every query in flight concurrently over a
	// bounded pool, the shape a serving layer drives the index in.
	rounds := 20
	if quick {
		rounds = 50
	}
	t0 := time.Now()
	pool := par.NewPool(runtime.NumCPU())
	for r := 0; r < rounds; r++ {
		for _, q := range bench.Queries {
			q := q
			pool.Submit(func() { sharded.TopK(q, k) })
		}
	}
	pool.Close()
	elapsed := time.Since(t0)
	rep.ThroughputQPS = float64(rounds*len(bench.Queries)) / elapsed.Seconds()

	n := len(bench.Queries)
	rep.UnshardedMS = ms(monoTotal) / float64(n)
	rep.ShardedMS = ms(shardTotal) / float64(n)
	rep.ShardedANNMS = ms(annTotal) / float64(n)
	fmt.Printf("%-14s %12.2f %12.2f %14.2f\n", "mean", rep.UnshardedMS, rep.ShardedMS, rep.ShardedANNMS)
	fmt.Printf("\nindex build: monolithic %.0f ms, sharded %.0f ms\n", rep.IndexMS, rep.ShardIndexMS)
	fmt.Printf("scatter-gather TopK throughput (ann, %d in flight): %.1f queries/s\n",
		runtime.NumCPU(), rep.ThroughputQPS)
	if !rep.ExactParity {
		fmt.Println("WARNING: sharded exact results diverged from the monolithic index")
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
