package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"dust/internal/datagen"
	"dust/internal/par"
	"dust/internal/search"
	"dust/internal/shard"
	"dust/internal/table"
)

// shardReport is the JSON record of one scatter-gather benchmark run; the
// repo's perf trajectory tracks it in BENCH_shard.json (schema documented
// in docs/BENCHMARKS.md).
type shardReport struct {
	Benchmark     string  `json:"benchmark"`
	Searcher      string  `json:"searcher"`
	Tables        int     `json:"tables"`
	Shards        int     `json:"shards"`
	Queries       int     `json:"queries"`
	K             int     `json:"k"`
	Oversample    float64 `json:"oversample"`
	IndexMS       float64 `json:"unsharded_index_ms"`
	ShardIndexMS  float64 `json:"sharded_index_ms"`
	UnshardedMS   float64 `json:"unsharded_ms_per_query"`
	ShardedMS     float64 `json:"sharded_ms_per_query"`
	ShardedANNMS  float64 `json:"sharded_ann_ms_per_query"`
	SingleGraphMS float64 `json:"single_graph_ann_ms_per_query"`
	ANNGraphRatio float64 `json:"sharded_ann_single_graph_ratio"`
	EncodeMS      float64 `json:"encode_ms_per_query"`
	ScatterMS     float64 `json:"scatter_ms_per_query"`
	GatherMS      float64 `json:"gather_ms_per_query"`
	BytesPerQuery float64 `json:"sharded_bytes_per_query"`
	ThroughputQPS float64 `json:"sharded_topk_qps"`
	ExactParity   bool    `json:"exact_parity"`
}

// runShardBench benchmarks the sharded scatter-gather index against the
// monolithic one: per-query exact TopK latency for both layouts over a
// generated lake, a bit-identity parity check (the equivalence the test
// suite gates), per-query latency in ANN mode for both the sharded layout
// (the candidate-only nomination plan) and the monolithic single-graph
// index (their ratio is the cost of partitioning the graph), per-stage
// encode/scatter/gather timings and allocated bytes per query for the
// sharded exact path, and concurrent scatter-gather TopK throughput. The
// full-scale lake holds 10k tables; -quick drops to 1k so the run finishes
// in seconds.
func runShardBench(shards int, quick bool, k int, out string) error {
	cfg := datagen.Config{
		Seed: 997, Domains: 10, TablesPerBase: 1000, QueriesPerBase: 1,
		BaseRows: 30, MinRows: 4, MaxRows: 8,
	}
	if quick {
		cfg.TablesPerBase = 100
	}
	bench := datagen.Generate("shard-bench", cfg)
	rep := shardReport{
		Benchmark:  "scatter-gather",
		Searcher:   "starmie",
		Tables:     bench.Lake.Len(),
		Shards:     shards,
		Queries:    len(bench.Queries),
		K:          k,
		Oversample: search.DefaultOversample,
	}
	fmt.Printf("scatter-gather benchmark: starmie over %d tables, %d shards, k=%d\n\n",
		rep.Tables, shards, k)

	// The two layouts do near-identical total work in exact mode, so the
	// measurement has to resolve a low-single-digit-percent difference.
	// Three rules make that resolvable on a shared machine. (1) Each layout
	// is measured *exclusively*: one index is built, measured, and released
	// before the rival is built, because two live indexes more than double
	// the hot working set and whichever is measured second eats the extra
	// cache misses. (2) Heap placement is luck: the index built into a
	// fragmented heap pays a small, run-dependent locality penalty. So each
	// layout is measured twice — once per build order — and every query
	// keeps the fastest repetition across both rounds, taking each layout
	// at its best footing. (3) The timed loops run with the collector off
	// (GC assist work is charged to whichever goroutine allocates during a
	// mark phase) and a forced collection between queries, outside the
	// timed windows, so no measurement absorbs GC work or an ever-growing
	// heap. Allocation cost still shows up on its own terms: bytes/query
	// and the throughput phase keep GC on.
	reps := 5
	if quick {
		// Quick-scale queries are ~5 ms, so scheduler preemption on a busy
		// machine is a larger fraction of each sample; more repetitions are
		// cheap and the minimum needs them to converge.
		reps = 11
	}
	timeOnce := func(s interface {
		TopK(*table.Table, int) []search.Scored
	}, q *table.Table) (time.Duration, []search.Scored) {
		t0 := time.Now()
		h := s.TopK(q, k)
		return time.Since(t0), h
	}
	timeTopK := func(s interface {
		TopK(*table.Table, int) []search.Scored
	}, q *table.Table) (time.Duration, []search.Scored) {
		best, hits := timeOnce(s, q)
		for r := 1; r < reps; r++ {
			if d, h := timeOnce(s, q); d < best {
				best, hits = d, h
			}
		}
		return best, hits
	}

	n := len(bench.Queries)
	monoDurs := make([]time.Duration, n)
	shardDurs := make([]time.Duration, n)
	monoANNDurs := make([]time.Duration, n)
	shardANNDurs := make([]time.Duration, n)
	monoNames := make([][]string, n)
	shardNames := make([][]string, n)
	minInto := func(durs []time.Duration, i int, d time.Duration) {
		if durs[i] == 0 || d < durs[i] {
			durs[i] = d
		}
	}
	measureExact := func(s interface {
		TopK(*table.Table, int) []search.Scored
	}, durs []time.Duration, names [][]string) {
		runtime.GC()
		gcOff := debug.SetGCPercent(-1)
		defer debug.SetGCPercent(gcOff)
		for i, q := range bench.Queries {
			d, hits := timeTopK(s, q)
			minInto(durs, i, d)
			names[i] = scoredKeys(hits)
			runtime.GC()
		}
	}
	measureANN := func(s interface {
		TopK(*table.Table, int) []search.Scored
	}, durs []time.Duration) {
		runtime.GC()
		gcOff := debug.SetGCPercent(-1)
		defer debug.SetGCPercent(gcOff)
		for i, q := range bench.Queries {
			d, _ := timeTopK(s, q)
			minInto(durs, i, d)
			runtime.GC()
		}
	}

	// Round 1, monolithic: exact and single-graph ANN, alone in the heap.
	start := time.Now()
	mono := search.NewStarmie(bench.Lake)
	rep.IndexMS = ms(time.Since(start))
	measureExact(mono, monoDurs, monoNames)
	if err := mono.SetMode(search.ANN); err != nil {
		return err
	}
	measureANN(mono, monoANNDurs)
	mono = nil
	runtime.GC()

	// Round 1, sharded: exact (with stage timings attached for this loop
	// only, so the reported means describe the exact scatter path rather
	// than a mix of modes), allocation footprint, the candidate-only ANN
	// plan, and concurrent throughput.
	start = time.Now()
	sharded := shard.NewStarmie(bench.Lake, shards, shard.Config{})
	rep.ShardIndexMS = ms(time.Since(start))
	var stages shard.StageTimings
	sharded.Instrument(&stages)
	measureExact(sharded, shardDurs, shardNames)
	sharded.Instrument(nil)

	// Allocation footprint of the sharded exact path, measured in its own
	// pass: ReadMemStats stops the world, so interleaving it with the timed
	// loop above would perturb the latency numbers it sits next to.
	var memBefore, memAfter runtime.MemStats
	shardedBytes := uint64(0)
	for _, q := range bench.Queries {
		runtime.ReadMemStats(&memBefore)
		sharded.TopK(q, k)
		runtime.ReadMemStats(&memAfter)
		shardedBytes += memAfter.TotalAlloc - memBefore.TotalAlloc
	}

	// Sharded ANN against the single-graph latency recorded above (the
	// BENCH_ann.json configuration). The ratio says what graph partitioning
	// costs at query time.
	if err := sharded.SetMode(search.ANN); err != nil {
		sharded.Close()
		return err
	}
	measureANN(sharded, shardANNDurs)

	// Scatter-gather throughput: every query in flight concurrently over a
	// bounded pool, the shape a serving layer drives the index in.
	rounds := 20
	if quick {
		rounds = 50
	}
	t0 := time.Now()
	pool := par.NewPool(runtime.NumCPU())
	for r := 0; r < rounds; r++ {
		for _, q := range bench.Queries {
			q := q
			pool.Submit(func() { sharded.TopK(q, k) })
		}
	}
	pool.Close()
	elapsed := time.Since(t0)
	rep.ThroughputQPS = float64(rounds*len(bench.Queries)) / elapsed.Seconds()
	sharded.Close()
	sharded = nil
	runtime.GC()

	// Round 2: the same exact loops with the build order flipped, folded
	// into the per-query minima, so neither layout is stuck with whatever
	// heap placement this run happened to deal the second build.
	sharded2 := shard.NewStarmie(bench.Lake, shards, shard.Config{})
	measureExact(sharded2, shardDurs, shardNames)
	sharded2.Close()
	sharded2 = nil
	runtime.GC()
	mono2 := search.NewStarmie(bench.Lake)
	measureExact(mono2, monoDurs, monoNames)
	mono2 = nil
	runtime.GC()

	// Parity and the per-query table.
	rep.ExactParity = true
	var monoTotal, shardTotal, annTotal, monoANNTotal time.Duration
	fmt.Printf("%-14s %12s %12s %8s\n", "query", "mono ms", "sharded ms", "parity")
	for i, q := range bench.Queries {
		monoTotal += monoDurs[i]
		shardTotal += shardDurs[i]
		annTotal += shardANNDurs[i]
		monoANNTotal += monoANNDurs[i]
		got, want := shardNames[i], monoNames[i]
		parity := len(got) == len(want)
		for j := 0; parity && j < len(want); j++ {
			if got[j] != want[j] {
				parity = false
			}
		}
		if !parity {
			rep.ExactParity = false
		}
		fmt.Printf("%-14s %12.2f %12.2f %8v\n", q.Name, ms(monoDurs[i]), ms(shardDurs[i]), parity)
	}

	rep.UnshardedMS = ms(monoTotal) / float64(n)
	rep.ShardedMS = ms(shardTotal) / float64(n)
	rep.ShardedANNMS = ms(annTotal) / float64(n)
	rep.SingleGraphMS = ms(monoANNTotal) / float64(n)
	rep.ANNGraphRatio = safeRatio(annTotal, monoANNTotal)
	rep.BytesPerQuery = float64(shardedBytes) / float64(n)
	if qn := stages.Queries.Load(); qn > 0 {
		rep.EncodeMS = float64(stages.EncodeNS.Load()) / 1e6 / float64(qn)
		rep.ScatterMS = float64(stages.ScatterNS.Load()) / 1e6 / float64(qn)
		rep.GatherMS = float64(stages.GatherNS.Load()) / 1e6 / float64(qn)
	}
	fmt.Printf("%-14s %12.2f %12.2f %14.2f\n", "mean", rep.UnshardedMS, rep.ShardedMS, rep.ShardedANNMS)
	fmt.Printf("\nindex build: monolithic %.0f ms, sharded %.0f ms\n", rep.IndexMS, rep.ShardIndexMS)
	fmt.Printf("ann: sharded %.2f ms/query vs single-graph %.2f ms/query (ratio %.2fx)\n",
		rep.ShardedANNMS, rep.SingleGraphMS, rep.ANNGraphRatio)
	fmt.Printf("sharded stages (mean over %d instrumented queries): encode %.2f ms, scatter %.2f ms, gather %.2f ms\n",
		stages.Queries.Load(), rep.EncodeMS, rep.ScatterMS, rep.GatherMS)
	fmt.Printf("sharded exact allocations: %.0f bytes/query\n", rep.BytesPerQuery)
	fmt.Printf("scatter-gather TopK throughput (ann, %d in flight): %.1f queries/s\n",
		runtime.NumCPU(), rep.ThroughputQPS)
	if !rep.ExactParity {
		fmt.Println("WARNING: sharded exact results diverged from the monolithic index")
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
