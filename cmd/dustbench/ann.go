package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"dust/internal/datagen"
	"dust/internal/search"
	"dust/internal/table"
)

// annReport is the JSON record of one staged-retrieval benchmark run; the
// repo's perf trajectory tracks it in BENCH_ann.json.
type annReport struct {
	Benchmark  string  `json:"benchmark"`
	Searcher   string  `json:"searcher"`
	Tables     int     `json:"tables"`
	Tuples     int     `json:"tuples,omitempty"`
	Queries    int     `json:"queries"`
	K          int     `json:"k"`
	Oversample float64 `json:"oversample"`
	EfSearch   int     `json:"ef_search"`
	Quantized  bool    `json:"quantized"`
	IndexMS    float64 `json:"index_ms"`
	GraphMS    float64 `json:"graph_build_ms"`
	ExactMS    float64 `json:"exact_ms_per_query"`
	ANNMS      float64 `json:"ann_ms_per_query"`
	Speedup    float64 `json:"speedup"`
	RecallAtK  float64 `json:"recall_at_k"`
}

// runANNBench benchmarks the staged retrieval engine: exact full-scan
// TopK against HNSW candidates + exact re-rank over a generated lake,
// with recall@k measured against the exact oracle, and writes the JSON
// report to out. The full-scale lake holds 10k tables; -quick drops to
// 1k so the run finishes in seconds. oversample/efSearch reshape the
// candidate stage (0 keeps the defaults); quantized builds the graph
// with SQ8 storage.
func runANNBench(searcher string, quick bool, k int, oversample float64, efSearch int, quantized bool, out string) error {
	cfg := datagen.Config{
		Seed: 997, Domains: 10, TablesPerBase: 1000, QueriesPerBase: 1,
		BaseRows: 30, MinRows: 4, MaxRows: 8,
	}
	if quick {
		cfg.TablesPerBase = 100
	}
	bench := datagen.Generate("ann-bench", cfg)
	rep := annReport{
		Benchmark:  "staged-retrieval",
		Searcher:   searcher,
		Tables:     bench.Lake.Len(),
		Queries:    len(bench.Queries),
		K:          k,
		Oversample: search.DefaultOversample,
		EfSearch:   search.DefaultEfSearch,
		Quantized:  quantized,
	}
	if oversample > 0 {
		rep.Oversample = oversample
	}
	if efSearch > 0 {
		rep.EfSearch = efSearch
	}

	// One searcher instance serves both passes: the exact pass runs in
	// the default mode, then SetMode(ANN) switches the same instance —
	// sharing every embedding — so GraphMS times only the graph build.
	// Results come back as comparable keys so recall@k is
	// searcher-agnostic.
	var run func(q *table.Table) []string
	var toANN func() error
	start := time.Now()
	switch searcher {
	case "starmie":
		s := search.NewStarmie(bench.Lake, search.WithQuantized(quantized))
		s.SetOversample(oversample)
		s.SetEfSearch(efSearch)
		run = func(q *table.Table) []string { return scoredKeys(s.TopK(q, k)) }
		toANN = func() error { return s.SetMode(search.ANN) }
	case "tuples":
		ts := search.NewTupleSearch(bench.Lake.Tables(), search.WithQuantized(quantized))
		ts.SetOversample(oversample)
		ts.SetEfSearch(efSearch)
		rep.Tuples = ts.Len()
		run = func(q *table.Table) []string { return tupleKeys(ts.TopK(q, k)) }
		toANN = func() error { return ts.SetMode(search.ANN) }
	default:
		return fmt.Errorf("dustbench: unknown -searcher %q (want starmie or tuples)", searcher)
	}
	rep.IndexMS = ms(time.Since(start))

	fmt.Printf("staged retrieval benchmark: %s over %d tables, k=%d, oversample=%g\n\n",
		searcher, rep.Tables, k, rep.Oversample)
	var exTotal, annTotal time.Duration
	exact := make([][]string, len(bench.Queries))
	exactDur := make([]time.Duration, len(bench.Queries))
	for i, q := range bench.Queries {
		exStart := time.Now()
		exact[i] = run(q)
		exactDur[i] = time.Since(exStart)
		exTotal += exactDur[i]
	}

	start = time.Now()
	if err := toANN(); err != nil {
		return err
	}
	rep.GraphMS = ms(time.Since(start))

	fmt.Printf("%-14s %12s %12s %9s %10s\n", "query", "exact ms", "ann ms", "speedup", "recall@k")
	var recallSum float64
	for i, q := range bench.Queries {
		annStart := time.Now()
		got := run(q)
		annDur := time.Since(annStart)
		annTotal += annDur

		in := make(map[string]bool, len(got))
		for _, n := range got {
			in[n] = true
		}
		hits := 0
		for _, n := range exact[i] {
			if in[n] {
				hits++
			}
		}
		recall := float64(hits) / float64(len(exact[i]))
		recallSum += recall
		fmt.Printf("%-14s %12.2f %12.2f %8.1fx %10.3f\n",
			q.Name, ms(exactDur[i]), ms(annDur), safeRatio(exactDur[i], annDur), recall)
	}
	n := len(bench.Queries)
	rep.ExactMS = ms(exTotal) / float64(n)
	rep.ANNMS = ms(annTotal) / float64(n)
	rep.Speedup = safeRatio(exTotal, annTotal)
	rep.RecallAtK = recallSum / float64(n)
	fmt.Printf("%-14s %12.2f %12.2f %8.1fx %10.3f\n",
		"mean", rep.ExactMS, rep.ANNMS, rep.Speedup, rep.RecallAtK)
	fmt.Printf("\nindex build %.0f ms, graph build %.0f ms\n", rep.IndexMS, rep.GraphMS)

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

func scoredKeys(hits []search.Scored) []string {
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = h.Table.Name
	}
	return out
}

func tupleKeys(hits []search.ScoredTuple) []string {
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = fmt.Sprintf("%s/%d", h.Table.Name, h.Row)
	}
	return out
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func safeRatio(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
