// Command dustbench regenerates the paper's tables and figures over the
// synthetic benchmark corpus, and benchmarks the staged retrieval engine.
//
// Usage:
//
//	dustbench -list             # show available experiments
//	dustbench                   # run everything at full scale
//	dustbench -exp table2       # run one experiment
//	dustbench -quick            # reduced scale (seconds instead of minutes)
//
//	dustbench -ann                     # exact vs HNSW retrieval on a 10k-table lake
//	dustbench -ann -searcher tuples    # the tuple-level searcher instead of Starmie
//	dustbench -ann -quick              # 1k tables
//
//	dustbench -shards 8                # monolithic vs scatter-gather on a 10k-table lake
//	dustbench -shards 8 -quick         # 1k tables
//
// The -ann run prints per-query exact/ANN latency with a recall@k column
// and records the aggregate in BENCH_ann.json; the -shards run prints
// per-query monolithic/sharded latency with an exact-parity column plus
// scatter-gather throughput and records the aggregate in BENCH_shard.json.
//
// -cpuprofile and -memprofile wrap whichever workload runs in pprof
// collection, so the retrieval benchmarks are profileable end to end:
//
//	dustbench -shards 8 -quick -cpuprofile shard.cpu.pprof
//	go tool pprof -top shard.cpu.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"dust/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment to run (default: all)")
		quick      = flag.Bool("quick", false, "reduced workload sizes")
		list       = flag.Bool("list", false, "list experiments and exit")
		workers    = flag.Int("workers", 0, "cap parallelism via GOMAXPROCS (0 = all cores); every parallel kernel derives its default from it")
		ann        = flag.Bool("ann", false, "benchmark staged retrieval (exact vs HNSW + recall@k) instead of the paper experiments")
		searcher   = flag.String("searcher", "starmie", "searcher for -ann: starmie or tuples")
		annK       = flag.Int("k", 10, "top-k for the -ann and -shards benchmarks")
		annOut     = flag.String("ann-out", "BENCH_ann.json", "where -ann writes its JSON report")
		shards     = flag.Int("shards", 0, "benchmark the sharded scatter-gather index with N shards (monolithic vs sharded TopK + throughput) instead of the paper experiments")
		shardOut   = flag.String("shard-out", "BENCH_shard.json", "where -shards writes its JSON report")
		scale      = flag.Int("scale", 0, "benchmark the ANN index at lake scale with N tables (float vs SQ8-quantized storage: resident bytes, build time, latency, recall) instead of the paper experiments; the headline run uses 100000")
		scaleOut   = flag.String("scale-out", "BENCH_scale.json", "where -scale writes its JSON report")
		quantized  = flag.Bool("quantized", false, "build the -ann benchmark's graph with SQ8 scalar-quantized storage")
		oversample = flag.Float64("oversample", 0, "ANN candidate oversampling factor for the retrieval benchmarks (0 = default)")
		efSearch   = flag.Int("ef-search", 0, "HNSW traversal beam width for the retrieval benchmarks (0 = default)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write an end-of-run heap profile to this file")
	)
	flag.Parse()
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dustbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dustbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dustbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dustbench:", err)
			}
		}()
	}

	if *ann {
		if err := runANNBench(*searcher, *quick, *annK, *oversample, *efSearch, *quantized, *annOut); err != nil {
			fmt.Fprintln(os.Stderr, "dustbench:", err)
			os.Exit(1)
		}
		return
	}
	if *scale > 0 {
		if err := runScaleBench(*scale, *workers, *annK, *oversample, *efSearch, *scaleOut); err != nil {
			fmt.Fprintln(os.Stderr, "dustbench:", err)
			os.Exit(1)
		}
		return
	}
	if *shards > 0 {
		if err := runShardBench(*shards, *quick, *annK, *shardOut); err != nil {
			fmt.Fprintln(os.Stderr, "dustbench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-22s %s\n", r.Name, r.Artifact)
		}
		return
	}
	cfg := experiments.Config{Quick: *quick}

	run := func(r experiments.Runner) {
		start := time.Now()
		rep := r.Run(cfg)
		fmt.Println(rep.String())
		fmt.Printf("  (%s finished in %v)\n\n", r.Name, time.Since(start).Round(time.Millisecond))
	}

	if *exp != "" {
		r, err := experiments.Get(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		run(r)
		return
	}
	for _, r := range experiments.All() {
		run(r)
	}
}
