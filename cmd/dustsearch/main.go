// Command dustsearch runs the end-to-end DUST pipeline: given a query CSV
// and a directory of lake CSVs, it prints (or writes) the k most diverse
// unionable tuples.
//
// Usage:
//
//	dustsearch -query q.csv -lake ./lake -k 20
//	dustsearch -query q.csv -lake ./lake -k 50 -model dust.model -out diverse.csv
//
// With -index-dir the search index persists across runs: the first run
// builds and saves it, later runs warm-start from disk instead of
// re-indexing the lake. -save-index forces a rebuild of a stale index.
//
//	dustsearch -query q.csv -lake ./lake -index-dir ./lake.idx
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dust"
	"dust/internal/lake"
	"dust/internal/model"
	"dust/internal/search"
	"dust/internal/table"
)

func main() {
	var (
		queryPath  = flag.String("query", "", "query table CSV (required)")
		lakeDir    = flag.String("lake", "", "directory of lake CSVs (required)")
		k          = flag.Int("k", 20, "number of diverse tuples")
		topTables  = flag.Int("tables", 10, "unionable tables to retrieve")
		modelPath  = flag.String("model", "", "fine-tuned model from dusttrain (optional)")
		outPath    = flag.String("out", "", "write result CSV here instead of stdout")
		workers    = flag.Int("workers", 0, "parallelism of indexing/embedding/diversification (0 = all cores, 1 = sequential)")
		indexDir   = flag.String("index-dir", "", "saved-index directory: warm-start from it when present, create it otherwise")
		saveIndex  = flag.Bool("save-index", false, "rebuild the index and save it to -index-dir even if one exists")
		ann        = flag.Bool("ann", false, "approximate candidate retrieval (HNSW) with exact re-ranking; trades a little recall for lake-size-independent latency. -ann=false forces exact retrieval even for an index saved in ANN mode; omit the flag to follow the saved index")
		shards     = flag.Int("shards", 1, "partition the index into N scatter-gather shards (1 = monolithic); exact-mode results are identical either way. Applies to cold builds only: a warm start keeps the layout saved in -index-dir")
		quantized  = flag.Bool("quantized", false, "SQ8 scalar-quantized graph storage (~4x less resident index memory); candidates are still re-ranked exactly, so exact-mode results are unchanged")
		oversample = flag.Float64("oversample", 0, "ANN candidate oversampling factor: retrieve about N*k candidates before exact re-ranking (0 = default)")
		efSearch   = flag.Int("ef-search", 0, "HNSW traversal beam width of the ANN candidate stage (0 = default)")
	)
	flag.Parse()
	if *queryPath == "" || *lakeDir == "" {
		fmt.Fprintln(os.Stderr, "dustsearch: -query and -lake are required")
		os.Exit(2)
	}
	if *saveIndex && *indexDir == "" {
		fmt.Fprintln(os.Stderr, "dustsearch: -save-index requires -index-dir")
		os.Exit(2)
	}

	query, err := table.LoadCSV(*queryPath)
	if err != nil {
		fatal(err)
	}
	l, err := lake.Load(*lakeDir)
	if err != nil {
		fatal(err)
	}
	opts := []dust.Option{
		dust.WithTopTables(*topTables), dust.WithWorkers(*workers), dust.WithShards(*shards),
		dust.WithOversample(*oversample), dust.WithEfSearch(*efSearch),
	}
	if *quantized {
		opts = append(opts, dust.WithQuantized(true))
	}
	// Tri-state retrieval: an explicit -ann / -ann=false overrides the
	// mode recorded in a warm-started index; omitting the flag follows it.
	flag.Visit(func(f *flag.Flag) {
		if f.Name != "ann" {
			return
		}
		mode := search.Exact
		if *ann {
			mode = search.ANN
		}
		opts = append(opts, dust.WithRetriever(mode))
	})
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			fatal(err)
		}
		m, err := model.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		opts = append(opts, dust.WithTupleEncoder(m))
	}

	var p *dust.Pipeline
	switch {
	case *indexDir != "" && !*saveIndex && dust.HasIndex(*indexDir):
		p, err = dust.LoadPipelineLake(l, *indexDir, opts...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("warm start: loaded index from %s (%d shard(s))\n", *indexDir, p.Shards())
	default:
		p = dust.New(l, opts...)
		if *indexDir != "" {
			if err := p.SaveIndex(*indexDir); err != nil {
				fatal(err)
			}
			fmt.Printf("saved index to %s\n", *indexDir)
		}
	}

	res, err := p.Search(query, *k)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("retrieved %d unionable tables: %s\n",
		len(res.UnionableTables), strings.Join(res.UnionableTables, ", "))
	fmt.Printf("unionable tuple pool: %d; returning %d diverse tuples\n\n",
		res.Unioned.NumRows(), res.Tuples.NumRows())

	if *outPath != "" {
		if err := res.Tuples.SaveCSV(*outPath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *outPath)
		return
	}
	fmt.Println(strings.Join(res.Tuples.Headers(), " | "))
	for i := 0; i < res.Tuples.NumRows(); i++ {
		fmt.Printf("%s   (from %s)\n",
			strings.Join(res.Tuples.Row(i), " | "), res.Provenance[i].Table)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dustsearch:", err)
	os.Exit(1)
}
