package dust

import (
	"os"
	"path/filepath"
	"testing"

	"dust/internal/datagen"
	"dust/internal/search"
)

// FuzzLoadManifest throws arbitrary bytes at the index-directory manifest
// loader — the shard-map extension of the FuzzLoadIndex family: the
// manifest sits over valid component files (two shard files and a
// monolithic searcher file side by side, so whichever layout the mutated
// manifest claims, a plausible file exists for the loader to chase) and
// every input must return a usable pipeline or a typed error, never panic.
// Seeds are the real manifests of an unsharded, a sharded, and a sharded
// ANN save.
func FuzzLoadManifest(f *testing.F) {
	b := datagen.Generate("manifest-fuzz", datagen.Config{
		Seed: 23, Domains: 2, TablesPerBase: 3, BaseRows: 16, MinRows: 5, MaxRows: 8,
	})
	dir := f.TempDir()
	manifest := filepath.Join(dir, "manifest.dustidx")
	seed := func(p *Pipeline) {
		f.Helper()
		if err := p.SaveIndex(dir); err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(manifest)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// Order matters: each save retires the other layout's files, so save
	// the monolithic index first and let the final sharded save lay down
	// the shard files, then restore the monolithic searcher file beside
	// them for manifests that mutate back to a zero-shard layout.
	seed(New(b.Lake))
	mono, err := os.ReadFile(filepath.Join(dir, "searcher.dustidx"))
	if err != nil {
		f.Fatal(err)
	}
	seed(New(b.Lake, WithShards(2)))
	seed(New(b.Lake, WithShards(2), WithRetriever(search.ANN)))
	if err := os.WriteFile(filepath.Join(dir, "searcher.dustidx"), mono, 0o644); err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add([]byte("DSTIDXM\x04\x00\xff\xff\xff\xff\xff\xff\xff\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if err := os.WriteFile(manifest, data, 0o644); err != nil {
			t.Fatal(err)
		}
		p, err := LoadPipelineLake(b.Lake, dir)
		if err != nil {
			return
		}
		// An accepted manifest must yield a pipeline that can serve a
		// query.
		if _, err := p.Search(b.Queries[0], 3); err != nil {
			t.Logf("loaded pipeline failed to search: %v", err)
		}
	})
}
