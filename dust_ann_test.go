package dust

import (
	"os"
	"path/filepath"
	"testing"

	"dust/internal/search"
)

// TestPipelineANNParity pins the -ann serving contract the CI smoke also
// asserts over HTTP: on a lake small enough that the oversampled candidate
// pool covers it, the ANN pipeline returns exactly what the exact pipeline
// returns — same tables, same diverse tuples — while a distinct ConfigTag
// keeps epoch-keyed result caches from ever conflating the two plans.
func TestPipelineANNParity(t *testing.T) {
	b, q := benchLake(t)
	exact := New(b.Lake, WithTopTables(5))
	approx := New(b.Lake, WithTopTables(5), WithRetriever(search.ANN))

	if exact.ConfigTag() == approx.ConfigTag() {
		t.Fatalf("exact and ANN pipelines share a config tag: %q", exact.ConfigTag())
	}
	want, err := exact.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := approx.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "ann vs exact on a covered lake", got, want)
}

// TestPipelineANNWarmStart round-trips an ANN-mode pipeline through
// SaveIndex/LoadPipeline: the graph file persists beside the searcher
// index, the manifest records the mode, and the warm pipeline answers
// identically — still in ANN mode — without rebuilding the graph.
func TestPipelineANNWarmStart(t *testing.T) {
	b, q := benchLake(t)
	lakeDir := filepath.Join(t.TempDir(), "lake")
	if err := b.Lake.Save(lakeDir); err != nil {
		t.Fatal(err)
	}
	cold := New(b.Lake, WithTopTables(5), WithRetriever(search.ANN))
	want, err := cold.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}

	idxDir := filepath.Join(t.TempDir(), "index")
	if err := cold.SaveIndex(idxDir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(idxDir, "ann.dustidx")); err != nil {
		t.Fatalf("ann graph file not written: %v", err)
	}

	warm, err := LoadPipeline(lakeDir, idxDir, WithTopTables(5))
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := warm.searcher.(search.Staged); !ok || st.RetrievalMode() != search.ANN {
		t.Fatal("warm start did not restore ANN mode")
	}
	got, err := warm.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "ann warm vs cold", got, want)

	// Re-saving in exact mode must drop the now-orphaned graph file.
	if err := New(b.Lake, WithTopTables(5)).SaveIndex(idxDir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(idxDir, "ann.dustidx")); !os.IsNotExist(err) {
		t.Errorf("stale ann.dustidx survived an exact-mode overwrite (err = %v)", err)
	}
}

// TestPipelineANNMutations drives live mutations through an ANN pipeline
// the way dustserve's snapshot swaps do — Clone, mutate, query both sides
// — checking the clone's graph is independent and the original still
// answers.
func TestPipelineANNMutations(t *testing.T) {
	b, q := benchLake(t)
	p := New(b.Lake, WithTopTables(5), WithRetriever(search.ANN))
	want, err := p.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}

	shadow, err := p.Clone()
	if err != nil {
		t.Fatal(err)
	}
	grown := q.Clone("late_arrival")
	if err := shadow.AddTable(grown); err != nil {
		t.Fatal(err)
	}
	if shadow.Epoch() != p.Epoch()+1 {
		t.Fatalf("shadow epoch %d, original %d", shadow.Epoch(), p.Epoch())
	}
	// A near-copy of the query must surface in the mutated clone's search
	// and stay invisible to the original.
	res, err := shadow.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range res.UnionableTables {
		if n == "late_arrival" {
			found = true
		}
	}
	if !found {
		t.Errorf("ANN clone did not retrieve the newly added near-copy (got %v)", res.UnionableTables)
	}
	after, err := p.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "original after clone mutation", after, want)

	if err := shadow.RemoveTable("late_arrival"); err != nil {
		t.Fatal(err)
	}
	back, err := shadow.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "clone after add+remove", back, want)
}
