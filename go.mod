module dust

go 1.22
