// Package dust is the public API of the DUST reproduction: Diverse
// Unionable Tuple Search over data lakes (Khatiwada, Shraga, Miller,
// EDBT 2026). Given a query table, a Pipeline discovers unionable tables in
// a lake, aligns their columns holistically to the query schema,
// outer-unions them into unionable tuples, embeds every tuple, and returns
// the k tuples that are most diverse with respect to the query table and
// each other (Algorithm 1 of the paper).
//
// The building blocks live in internal packages and are assembled here:
//
//	lk, _ := lake.Load("my-lake-dir")     // or build one in memory
//	p := dust.New(lk)                     // defaults: Starmie search + DUST diversifier
//	res, err := p.Search(queryTable, 50)  // 50 diverse unionable tuples
//
// The zero-config pipeline uses simulated pre-trained encoders; production
// use fine-tunes a tuple model first (cmd/dusttrain) and installs it with
// WithTupleEncoder.
package dust

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dust/internal/align"
	"dust/internal/diversify"
	"dust/internal/embed"
	"dust/internal/lake"
	"dust/internal/model"
	"dust/internal/par"
	"dust/internal/search"
	"dust/internal/shard"
	"dust/internal/table"
	"dust/internal/vector"
)

// Pipeline wires the four stages of Algorithm 1. Construct with New and
// customize with the With* options.
type Pipeline struct {
	lake         *lake.Lake
	searcher     search.Searcher
	columnEnc    embed.ColumnEncoder
	tupleEnc     model.TupleEncoder
	diversifier  diversify.Algorithm
	dist         vector.DistanceFunc
	topTables    int
	workers      int
	workersSet   bool
	retrieval    search.Mode
	shards       int
	quantized    bool
	quantizedSet bool
	oversample   float64
	efSearch     int
	// epoch counts index mutations (AddTable/RemoveTable) over the
	// pipeline's lifetime; see Epoch in persist.go. Serving layers key
	// result caches by it.
	epoch uint64
}

// Option customizes a Pipeline.
type Option func(*Pipeline)

// WithSearcher replaces the table union searcher (default: Starmie-like).
func WithSearcher(s search.Searcher) Option { return func(p *Pipeline) { p.searcher = s } }

// WithColumnEncoder replaces the column encoder used for alignment
// (default: column-level RoBERTa, the paper's best in Table 1).
func WithColumnEncoder(e embed.ColumnEncoder) Option { return func(p *Pipeline) { p.columnEnc = e } }

// WithTupleEncoder replaces the tuple embedding model (default: a
// content-dominant pre-trained simulator; install a fine-tuned
// model.Model for the paper's full setup).
func WithTupleEncoder(e model.TupleEncoder) Option { return func(p *Pipeline) { p.tupleEnc = e } }

// WithDiversifier replaces the diversification algorithm (default: DUST).
func WithDiversifier(a diversify.Algorithm) Option { return func(p *Pipeline) { p.diversifier = a } }

// WithDistance replaces the tuple distance (default: cosine distance).
func WithDistance(d vector.DistanceFunc) Option { return func(p *Pipeline) { p.dist = d } }

// WithTopTables sets how many unionable tables the search stage retrieves
// before alignment (default: 10).
func WithTopTables(n int) Option { return func(p *Pipeline) { p.topTables = n } }

// WithRetriever selects the candidate-generation backend of the searcher's
// staged query plan (default search.Exact, the seed behavior). search.ANN
// switches the built-in searchers to approximate retrieval — HNSW over the
// column embeddings for Starmie, the LSH banding index for D3L — whose
// candidates are re-scored exactly, so query latency tracks the candidate
// pool instead of the lake size. DUST itself only needs a candidate pool of
// unionable tuples before diversification, which is what makes the
// approximate stage safe for the pipeline's quality. A searcher supplied
// via WithSearcher that does not implement search.Staged keeps its own
// retrieval and ignores this option; a Mode value the search package does
// not define makes New panic.
func WithRetriever(m search.Mode) Option { return func(p *Pipeline) { p.retrieval = m } }

// WithShards partitions the lake into n hash-assigned shards, each with
// its own searcher index (and its own HNSW graph under search.ANN);
// queries scatter across the shards in parallel and the merged candidates
// are re-ranked under the global score order, so exact-mode results stay
// bit-identical to the unsharded pipeline while the index becomes
// horizontally partitioned — shards build, persist, and mutate
// independently, the substrate for spreading a lake beyond one process.
// n <= 1 keeps the single monolithic index (the default). The option
// shapes the default searcher only: it is ignored when WithSearcher
// supplies one, and a pipeline warm-started from an index directory keeps
// the shard layout recorded in its manifest.
func WithShards(n int) Option { return func(p *Pipeline) { p.shards = n } }

// WithQuantized selects SQ8 scalar-quantized storage for the searcher's
// ANN graphs: stored vectors compress to one int8 code per dimension
// plus a per-vector scale and offset (about 4x less resident memory at
// typical dimensions), graph traversal runs on fused integer kernels,
// and every nominated candidate is still re-ranked by the exact scorer —
// so exact-mode results are bit-identical with quantization on, and only
// the ANN candidate stage is approximate (recall governed by the same
// oversampling as float graphs). Applies when this pipeline builds its
// graphs (WithRetriever(search.ANN), PrepareANN, or a maintenance
// rebuild); a graph warm-started from disk keeps its stored
// representation until its next rebuild. Searchers without a quantized
// form (D3L) ignore the option.
func WithQuantized(on bool) Option {
	return func(p *Pipeline) { p.quantized, p.quantizedSet = on, true }
}

// WithOversample sets the ANN candidate-stage oversampling factor: a
// top-k query retrieves about ceil(v*k) nearest candidates before exact
// re-ranking. Raise it to trade latency for recall. v <= 0 keeps the
// default (search.DefaultOversample); exact mode ignores it.
func WithOversample(v float64) Option { return func(p *Pipeline) { p.oversample = v } }

// WithEfSearch sets the HNSW traversal beam width of the searcher's ANN
// candidate stage. Higher values raise recall at higher per-query cost.
// ef <= 0 keeps the default (search.DefaultEfSearch); exact mode and
// searchers without an HNSW stage ignore it.
func WithEfSearch(ef int) Option { return func(p *Pipeline) { p.efSearch = ef } }

// WithWorkers bounds the parallelism of each pipeline stage — lake
// indexing, query scoring, tuple embedding, and the diversifier's distance
// kernels — and the number of queries SearchBatch serves concurrently.
// n <= 0 (the default) derives the bound from GOMAXPROCS; n == 1 forces
// the sequential path. A searcher supplied via WithSearcher is re-bounded
// to n as well when it implements search.QueryBounded (the built-in
// searchers do). Results are bit-identical for every setting.
func WithWorkers(n int) Option {
	return func(p *Pipeline) { p.workers, p.workersSet = n, true }
}

// New builds a Pipeline over a lake with the paper's default configuration.
func New(l *lake.Lake, opts ...Option) *Pipeline {
	p := &Pipeline{
		lake:        l,
		columnEnc:   embed.ColumnLevel{Model: embed.NewRoBERTa()},
		tupleEnc:    embed.NewRoBERTa(embed.WithAnisotropy(0.05)),
		diversifier: diversify.NewDUST(),
		dist:        vector.CosineDistance,
		topTables:   10,
	}
	for _, o := range opts {
		o(p)
	}
	if p.searcher == nil {
		// Built after the options so the default index honours WithWorkers,
		// WithShards, and WithQuantized.
		if p.shards > 1 {
			p.searcher = shard.NewStarmie(l, p.shards,
				shard.Config{Workers: p.workers, Quantized: p.quantized})
		} else {
			p.searcher = search.NewStarmie(l,
				search.WithWorkers(p.workers), search.WithQuantized(p.quantized))
		}
	} else if p.workersSet {
		// An explicit WithWorkers also re-bounds a supplied searcher's
		// query-time scoring; without it the searcher keeps its own bound.
		if qb, ok := p.searcher.(search.QueryBounded); ok {
			p.searcher = qb.QueryWorkers(p.workers)
		}
	}
	// Retrieval tuning applies to supplied and warm-started searchers too,
	// and quantization lands before the mode flip below so a graph built by
	// SetMode comes up in the requested storage directly.
	if p.quantizedSet {
		if q, ok := p.searcher.(interface{ SetQuantized(bool) }); ok {
			q.SetQuantized(p.quantized)
		}
	}
	if t, ok := p.searcher.(search.Tunable); ok {
		if p.oversample > 0 {
			t.SetOversample(p.oversample)
		}
		if p.efSearch > 0 {
			t.SetEfSearch(p.efSearch)
		}
	}
	if p.retrieval != search.Exact {
		if st, ok := p.searcher.(search.Staged); ok {
			if err := st.SetMode(p.retrieval); err != nil {
				// A Mode value this package does not define is a
				// programming error; silently serving the exact scan
				// would hide it behind nothing but latency.
				panic(err)
			}
		}
	}
	return p
}

// Result is the output of one diverse unionable tuple search.
type Result struct {
	// Tuples holds the k diverse tuples in the query's schema.
	Tuples *table.Table
	// Provenance names the source lake table and row of each result tuple.
	Provenance []table.Provenance
	// UnionableTables lists the lake tables the search stage retrieved.
	UnionableTables []string
	// Unioned is the full set of unionable tuples before diversification
	// (the outer union of the aligned tables).
	Unioned *table.Table
	// UnionedProvenance is index-aligned with Unioned's rows.
	UnionedProvenance []table.Provenance
}

// Search runs Algorithm 1: discover unionable tables, align and
// outer-union them, embed all tuples, and return k diverse ones.
func (p *Pipeline) Search(query *table.Table, k int) (*Result, error) {
	return p.SearchContext(context.Background(), query, k)
}

// SearchContext is Search with a cancellation path: once ctx is cancelled
// or its deadline passes, the pipeline abandons the remaining work — the
// candidate scan, tuple embedding, and the stage boundaries all check ctx —
// and returns an error wrapping ctx.Err() instead of running the query to
// completion. Long-running servers use it to bound per-request latency and
// to stop doing work for clients that have gone away.
func (p *Pipeline) SearchContext(ctx context.Context, query *table.Table, k int) (*Result, error) {
	if query == nil || query.NumCols() == 0 {
		return nil, fmt.Errorf("dust: empty query table")
	}
	if k <= 0 {
		return nil, fmt.Errorf("dust: k must be positive, got %d", k)
	}

	// Line 3: D' <- SearchTables(Q, D).
	hits, err := search.TopKCtx(ctx, p.searcher, query, p.topTables)
	if err != nil {
		return nil, fmt.Errorf("dust: search: %w", err)
	}
	tables := make([]*table.Table, 0, len(hits))
	names := make([]string, 0, len(hits))
	for _, h := range hits {
		tables = append(tables, h.Table)
		names = append(names, h.Table.Name)
	}
	if len(tables) == 0 {
		return nil, fmt.Errorf("dust: no unionable tables found for %s", query.Name)
	}

	// Line 5: T <- AlignColumns(Q, D').
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dust: align: %w", err)
	}
	cols := align.EmbedColumns(query, tables, p.columnEnc)
	res := align.HolisticWorkers(cols, p.workers)
	headers, mappings, err := res.Mappings(query, tables)
	if err != nil {
		return nil, fmt.Errorf("dust: align: %w", err)
	}
	unioned, prov, err := table.OuterUnion(query.Name+"_unionable", headers, mappings)
	if err != nil {
		return nil, fmt.Errorf("dust: union: %w", err)
	}
	// Drop rows that aligned on too little: a mostly-null tuple has a
	// degenerate embedding that looks maximally "diverse" while carrying
	// almost no information for the query schema. Outer union legitimately
	// pads missing columns (paper §3.3), so the bar is one third of the
	// schema, falling back to any-non-null if nothing clears it.
	keep := coverageRows(unioned, 1.0/3)
	if len(keep) == 0 {
		keep = coverageRows(unioned, 0)
	}
	unioned, prov = filterRows(unioned, prov, keep)
	if unioned.NumRows() == 0 {
		return nil, fmt.Errorf("dust: alignment produced no unionable tuples for %s", query.Name)
	}

	// Line 7: embed query and data lake tuples, in parallel batches. The
	// tuple embedding joins the query encoding under the trace's encode
	// stage: both derive representations, neither retrieves or ranks.
	tr := search.TraceFrom(ctx)
	tEmbed := time.Now()
	eq, err := model.EncodeBatchContext(ctx, p.tupleEnc, headers, tableRows(query), p.workers)
	if err != nil {
		return nil, fmt.Errorf("dust: embed: %w", err)
	}
	et, err := model.EncodeBatchContext(ctx, p.tupleEnc, headers, tableRows(unioned), p.workers)
	if err != nil {
		return nil, fmt.Errorf("dust: embed: %w", err)
	}
	tr.AddEncode(tEmbed)
	groups := make([]int, unioned.NumRows())
	groupIDs := map[string]int{}
	for i := range groups {
		g, ok := groupIDs[prov[i].Table]
		if !ok {
			g = len(groupIDs)
			groupIDs[prov[i].Table] = g
		}
		groups[i] = g
	}

	// Line 8: F <- DiversifyTuples(EQ, ET, k).
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dust: diversify: %w", err)
	}
	tDiv := time.Now()
	idx := p.diversifier.Select(diversify.Problem{
		Query: eq, Tuples: et, Groups: groups, K: k, Dist: p.dist,
		Workers: p.workers,
	})
	tr.AddDiversify(tDiv)

	out := table.New(query.Name+"_diverse", headers...)
	outProv := make([]table.Provenance, 0, len(idx))
	for _, i := range idx {
		if err := out.AppendRow(unioned.Row(i)); err != nil {
			return nil, err
		}
		outProv = append(outProv, prov[i])
	}
	return &Result{
		Tuples:            out,
		Provenance:        outProv,
		UnionableTables:   names,
		Unioned:           unioned,
		UnionedProvenance: prov,
	}, nil
}

// SearchBatch serves many queries against the same lake concurrently over
// a bounded worker pool of WithWorkers size (the pool suits the irregular
// per-query cost better than static chunking). The worker budget shifts
// from data parallelism to query parallelism: each query's alignment,
// embedding, diversification, and (for QueryBounded searchers, which the
// defaults are) scoring kernels run sequentially so the batch as a whole
// stays within the WithWorkers bound instead of multiplying it. Results are
// index-aligned with queries; a query that fails leaves a nil slot and
// contributes its error — wrapped with the query's position and name — to
// the joined error. Each result is identical to what a lone Search call
// would return.
func (p *Pipeline) SearchBatch(queries []*table.Table, k int) ([]*Result, error) {
	return p.SearchBatchContext(context.Background(), queries, k)
}

// SearchBatchContext is SearchBatch with a cancellation path: once ctx is
// cancelled, queries not yet started fail immediately and queries in flight
// abandon their remaining stages (see SearchContext), each contributing an
// error wrapping ctx.Err() to the joined error. Already-completed results
// keep their slots.
func (p *Pipeline) SearchBatchContext(ctx context.Context, queries []*table.Table, k int) ([]*Result, error) {
	inner := p.QueryBound(1)
	results := make([]*Result, len(queries))
	errs := make([]error, len(queries))
	pool := par.NewPool(p.workers)
	defer pool.Close()
	for i := range queries {
		i := i
		pool.Submit(func() {
			res, err := inner.SearchContext(ctx, queries[i], k)
			if err != nil {
				name := "<nil>"
				if queries[i] != nil {
					name = queries[i].Name
				}
				err = fmt.Errorf("query %d (%s): %w", i, name, err)
			}
			results[i], errs[i] = res, err
		})
	}
	pool.Wait()
	return results, errors.Join(errs...)
}

// ConfigTag returns a stable tag of the pipeline's query-shaping
// configuration: searcher, column encoder, tuple encoder, and diversifier
// names plus the top-tables bound. Two pipelines with equal tags, equal
// epochs, and the same lake rank any query identically, which is what lets
// a serving cache key results by (query fingerprint, k, tag, epoch).
func (p *Pipeline) ConfigTag() string {
	return fmt.Sprintf("%s|%s|%s|%s|%d",
		p.searcher.Name(), p.columnEnc.Name(), p.tupleEnc.Name(), p.diversifier.Name(), p.topTables)
}

// QueryBound returns a pipeline view sharing this pipeline's lake, index,
// and encoders whose per-query parallelism — alignment, embedding,
// diversification, and (for QueryBounded searchers, which the defaults are)
// candidate scoring — is bounded to n workers. Concurrent servers use it so
// per-query fan-out does not multiply their request-level concurrency;
// SearchBatch builds its inner per-query pipeline with it. The returned
// pipeline is for querying only: it shares mutable index state with the
// receiver, so do not call AddTable/RemoveTable on it (Clone exists for
// that).
func (p *Pipeline) QueryBound(n int) *Pipeline {
	c := *p
	c.workers = n
	c.workersSet = true
	if qb, ok := p.searcher.(search.QueryBounded); ok {
		c.searcher = qb.QueryWorkers(n)
	}
	return &c
}

// MaintenanceStats reports the tombstone debt of the searcher's mutable
// index structures (HNSW graphs, LSH banding indexes), merged across
// shards for sharded searchers; ok is false when the searcher does not
// track maintenance state. A background maintainer watches it to decide
// when a compaction pass (Compact on a Clone, then a snapshot swap) is
// worth running.
func (p *Pipeline) MaintenanceStats() (search.MaintenanceStats, bool) {
	m, ok := p.searcher.(search.Maintainable)
	if !ok {
		return search.MaintenanceStats{}, false
	}
	return m.MaintenanceStats(), true
}

// SetAutoCompact toggles the searcher's inline compaction policy and
// reports whether the searcher supports the hook. With auto compaction
// off, AddTable/RemoveTable never rebuild index structures inline — the
// threshold check that normally runs inside mutations moves behind this
// policy hook — so mutations stay O(delta) and a maintenance layer
// compacts on its own schedule via Compact.
func (p *Pipeline) SetAutoCompact(on bool) bool {
	m, ok := p.searcher.(search.Maintainable)
	if !ok {
		return false
	}
	m.SetAutoCompact(on)
	return true
}

// Compact rebuilds the searcher's tombstoned index structures now,
// reporting whether any work was done. Compaction preserves result
// identity — a compacted pipeline ranks every query exactly like its
// tombstoned self — and does not advance the epoch, so serving caches
// keyed by (tag, epoch) stay valid across it. Not safe concurrently with
// queries or mutations: run it on a Clone and swap, as
// serve.WithMaintenance does.
func (p *Pipeline) Compact() bool {
	m, ok := p.searcher.(search.Maintainable)
	if !ok {
		return false
	}
	return m.Compact()
}

// ModeView returns a query-only pipeline view whose searcher runs under
// retrieval mode m, sharing every piece of index state with the receiver;
// ok is false when the searcher cannot produce the view (not Staged, or
// the mode's backend is not installed — see PrepareANN). The view is for
// querying only — never mutate it — and concurrent queries on view and
// receiver are safe. A serving layer uses it to degrade individual
// requests to ANN retrieval under load; the view's ConfigTag differs from
// the receiver's (the searcher name carries the mode), so caches keyed by
// tag never mix the two plans' results.
func (p *Pipeline) ModeView(m search.Mode) (*Pipeline, bool) {
	mv, ok := p.searcher.(search.ModeViewer)
	if !ok {
		return nil, false
	}
	v, ok := mv.ModeView(m)
	if !ok {
		return nil, false
	}
	c := *p
	c.searcher = v
	c.retrieval = m
	return &c, true
}

// PrepareANN builds the searcher's approximate retrieval structures (the
// HNSW graphs) without leaving the current retrieval mode, so that
// ModeView(search.ANN) becomes available on an exact-mode pipeline. An
// installed graph survives mode flips and keeps absorbing mutations, so
// the preparation stays valid across the pipeline's life (clones
// included). Reports whether the ANN view is now available; false for
// searchers without a staged retrieval surface. Not safe concurrently
// with queries — call before serving starts.
func (p *Pipeline) PrepareANN() bool {
	st, ok := p.searcher.(search.Staged)
	if !ok {
		return false
	}
	cur := st.RetrievalMode()
	if cur == search.ANN {
		return true
	}
	if err := st.SetMode(search.ANN); err != nil {
		return false
	}
	if err := st.SetMode(cur); err != nil {
		// cur came from RetrievalMode and always round-trips.
		panic(err)
	}
	_, ok = p.ModeView(search.ANN)
	return ok
}

// Close releases long-lived resources held by the pipeline's searcher —
// today, the sharded searcher's scatter worker pool, which is shared by
// every clone in its family (snapshot swaps reuse it). Call Close once the
// pipeline family is done serving queries; monolithic searchers hold no
// such resources and Close is then a no-op. Queries after Close panic for
// sharded pipelines.
func (p *Pipeline) Close() {
	if c, ok := p.searcher.(interface{ Close() }); ok {
		c.Close()
	}
}

// ShardSizes reports the per-shard table counts of a sharded searcher in
// shard order, or nil for a monolithic index. Serving layers expose the
// partition balance through it without reaching into the shard layout.
func (p *Pipeline) ShardSizes() []int {
	st, ok := p.searcher.(interface{ ShardTables() [][]string })
	if !ok {
		return nil
	}
	tables := st.ShardTables()
	sizes := make([]int, len(tables))
	for i, names := range tables {
		sizes[i] = len(names)
	}
	return sizes
}

// IndexBytes reports the resident footprint of the searcher's ANN index
// structures (summed across shards for a sharded searcher): the storage
// kind — "quantized", "float", "none" when no graph is installed, or
// "mixed" for a heterogeneous shard set — and the estimated bytes. The
// serving layer exports it as the dust_index_bytes gauge.
func (p *Pipeline) IndexBytes() search.IndexFootprint {
	if sz, ok := p.searcher.(search.IndexSizer); ok {
		st, b := sz.IndexBytes()
		return search.IndexFootprint{Storage: st, Bytes: b}
	}
	return search.IndexFootprint{Storage: "none"}
}

// ShardIndexBytes reports the per-shard resident index footprints of a
// sharded searcher in shard order, or nil for a monolithic index —
// the per-shard series behind the serving layer's dust_index_bytes
// gauge.
func (p *Pipeline) ShardIndexBytes() []search.IndexFootprint {
	if s, ok := p.searcher.(interface {
		ShardIndexBytes() []search.IndexFootprint
	}); ok {
		return s.ShardIndexBytes()
	}
	return nil
}

// InstrumentScatter attaches st to the pipeline's sharded searcher so the
// scatter path accumulates per-stage (encode/scatter/gather) wall time into
// it, and reports whether the searcher supports the hook (monolithic
// searchers do not; the call is then a no-op returning false). Views and
// clones derived from the pipeline after the call — snapshot swaps included
// — keep recording into the same accumulator. Attach before querying
// starts; the hook is not synchronized with in-flight queries.
func (p *Pipeline) InstrumentScatter(st *shard.StageTimings) bool {
	in, ok := p.searcher.(interface{ Instrument(*shard.StageTimings) })
	if !ok {
		return false
	}
	in.Instrument(st)
	return true
}

// tableRows collects a table's rows for batch encoding.
func tableRows(t *table.Table) [][]string {
	rows := make([][]string, t.NumRows())
	for i := range rows {
		rows[i] = t.Row(i)
	}
	return rows
}

// coverageRows returns the indices of rows whose fraction of non-null
// cells is at least minCoverage (and always at least one non-null cell).
func coverageRows(t *table.Table, minCoverage float64) []int {
	var keep []int
	for i := 0; i < t.NumRows(); i++ {
		filled := 0
		for j := 0; j < t.NumCols(); j++ {
			if t.Cell(i, j) != table.Null {
				filled++
			}
		}
		if filled > 0 && float64(filled) >= minCoverage*float64(t.NumCols()) {
			keep = append(keep, i)
		}
	}
	return keep
}

// filterRows projects a table and its provenance onto the kept rows.
func filterRows(t *table.Table, prov []table.Provenance, keep []int) (*table.Table, []table.Provenance) {
	if len(keep) == t.NumRows() {
		return t, prov
	}
	out, err := t.Select(t.Name, keep)
	if err != nil {
		// keep indices come from coverageRows and are always valid.
		panic(err)
	}
	np := make([]table.Provenance, len(keep))
	for i, r := range keep {
		np[i] = prov[r]
	}
	return out, np
}
