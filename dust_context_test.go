package dust

import (
	"context"
	"errors"
	"testing"
	"time"

	"dust/internal/table"
	"dust/internal/vector"
)

// slowEncoder is a TupleEncoder whose every EncodeTuple call sleeps,
// standing in for an expensive model. It deliberately does not implement
// the batch surface, so EncodeBatchContext takes the sequential per-row
// path with its per-row cancellation checks.
type slowEncoder struct{ delay time.Duration }

func (s slowEncoder) Name() string { return "slow" }

func (s slowEncoder) EncodeTuple(headers, values []string) vector.Vec {
	time.Sleep(s.delay)
	v := make(vector.Vec, 4)
	v[0] = 1
	return v
}

func TestSearchContextCancelledBeforeStart(t *testing.T) {
	b, q := benchLake(t)
	p := New(b.Lake, WithTopTables(5))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.SearchContext(ctx, q, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchContext with cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestSearchContextCancelReturnsPromptly(t *testing.T) {
	b, q := benchLake(t)
	// ~100+ tuples to embed at 5ms each: an uncancellable search would run
	// for at least half a second. Cancel after 25ms and require the call to
	// come back well before the full-run floor.
	p := New(b.Lake, WithTopTables(5), WithTupleEncoder(slowEncoder{delay: 5 * time.Millisecond}))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(25 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := p.SearchContext(ctx, q, 5)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchContext = %v, want context.Canceled", err)
	}
	if elapsed > 300*time.Millisecond {
		t.Fatalf("cancelled search took %v, want prompt return", elapsed)
	}
}

func TestSearchContextDeadline(t *testing.T) {
	b, q := benchLake(t)
	p := New(b.Lake, WithTopTables(5), WithTupleEncoder(slowEncoder{delay: 5 * time.Millisecond}))
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	if _, err := p.SearchContext(ctx, q, 5); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SearchContext past deadline = %v, want context.DeadlineExceeded", err)
	}
}

func TestSearchBatchContextCancelled(t *testing.T) {
	b, q := benchLake(t)
	p := New(b.Lake, WithTopTables(5), WithWorkers(2), WithTupleEncoder(slowEncoder{delay: 2 * time.Millisecond}))
	queries := []*table.Table{q, q, q, q}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	results, err := p.SearchBatchContext(ctx, queries, 5)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchBatchContext = %v, want context.Canceled", err)
	}
	for i, r := range results {
		if r != nil {
			t.Errorf("cancelled query %d returned a result", i)
		}
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Fatalf("cancelled batch took %v, want prompt return", elapsed)
	}
}

// TestSearchContextMatchesSearch pins SearchContext under a background
// context to plain Search: the cancellation plumbing must not change
// results.
func TestSearchContextMatchesSearch(t *testing.T) {
	b, q := benchLake(t)
	p := New(b.Lake, WithTopTables(5))
	want, err := p.Search(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.SearchContext(context.Background(), q, 8)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "ctx vs plain", got, want)
}

// extraTable builds a small table union-compatible with q under a fresh
// name, for mutation tests.
func extraTable(q *table.Table, name string) *table.Table {
	t := table.New(name, q.Headers()...)
	for i := 0; i < q.NumRows() && i < 5; i++ {
		t.MustAppendRow(q.Row(i)...)
	}
	return t
}

func TestPipelineCloneIsolation(t *testing.T) {
	b, q := benchLake(t)
	p := New(b.Lake, WithTopTables(5))
	want, err := p.Search(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	baseLen := p.Lake().Len()

	c, err := p.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != p.Epoch() {
		t.Fatalf("clone epoch %d, want %d", c.Epoch(), p.Epoch())
	}
	if err := c.AddTable(extraTable(q, "zz_clone_extra")); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveTable(b.Lake.Names()[0]); err != nil {
		t.Fatal(err)
	}

	// The clone diverged...
	if c.Epoch() != p.Epoch()+2 {
		t.Fatalf("clone epoch %d after two mutations, want %d", c.Epoch(), p.Epoch()+2)
	}
	if c.Lake().Len() != baseLen {
		t.Fatalf("clone lake has %d tables, want %d", c.Lake().Len(), baseLen)
	}
	// ...and the original did not: same table set, same epoch, bit-identical
	// results.
	if p.Lake().Len() != baseLen {
		t.Fatalf("original lake has %d tables after clone mutations, want %d", p.Lake().Len(), baseLen)
	}
	if p.Lake().Get("zz_clone_extra") != nil {
		t.Fatal("clone's AddTable leaked into the original lake")
	}
	if p.Epoch() != 0 {
		t.Fatalf("original epoch %d after clone mutations, want 0", p.Epoch())
	}
	got, err := p.Search(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "original after clone mutations", got, want)

	// The clone answers queries over its own mutated state.
	if _, err := c.Search(q, 8); err != nil {
		t.Fatalf("clone search: %v", err)
	}
}

func TestEpochPersistsThroughSaveLoad(t *testing.T) {
	b, q := benchLake(t)
	p := New(b.Lake, WithTopTables(5))
	if err := p.AddTable(extraTable(q, "zz_epoch_a")); err != nil {
		t.Fatal(err)
	}
	if err := p.RemoveTable("zz_epoch_a"); err != nil {
		t.Fatal(err)
	}
	if p.Epoch() != 2 {
		t.Fatalf("epoch %d after add+remove, want 2", p.Epoch())
	}

	dir := t.TempDir()
	if err := p.SaveIndex(dir); err != nil {
		t.Fatal(err)
	}
	warm, err := LoadPipelineLake(b.Lake, dir)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Epoch() != 2 {
		t.Fatalf("warm-started epoch %d, want 2", warm.Epoch())
	}
}
