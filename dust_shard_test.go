package dust

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dust/internal/datagen"
	"dust/internal/lake"
	"dust/internal/search"
	"dust/internal/shard"
	"dust/internal/table"
)

// TestPipelineShardedMatchesUnsharded is the pipeline-level face of the
// sharding equivalence gate: end-to-end Search results (diverse tuples,
// provenance, retrieved tables) through a WithShards pipeline must be
// bit-identical to the unsharded pipeline, for 2 and 4 shards at workers 1
// and 8 — and WithShards(1) must mean "no sharding at all".
func TestPipelineShardedMatchesUnsharded(t *testing.T) {
	b, q := benchLake(t)
	want, err := New(b.Lake, WithTopTables(5)).Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p := New(b.Lake, WithShards(1)); p.Shards() != 1 {
		t.Errorf("WithShards(1) built %d shards, want a monolithic index", p.Shards())
	}
	for _, shards := range []int{2, 4} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(t *testing.T) {
				p := New(b.Lake, WithTopTables(5), WithShards(shards), WithWorkers(workers))
				if got := p.Shards(); got != shards {
					t.Fatalf("Shards() = %d, want %d", got, shards)
				}
				got, err := p.Search(q, 10)
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, "sharded vs unsharded", got, want)
			})
		}
	}
}

// TestPipelineShardedSaveLoadWarmStart saves a sharded index — exact and
// ANN — and warm-starts it: the loaded pipeline must keep the shard
// layout, the retrieval mode, and the exact results of the cold one.
func TestPipelineShardedSaveLoadWarmStart(t *testing.T) {
	b, q := benchLake(t)
	lakeDir := filepath.Join(t.TempDir(), "lake")
	if err := b.Lake.Save(lakeDir); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"exact", "ann"} {
		t.Run(mode, func(t *testing.T) {
			opts := []Option{WithTopTables(5), WithShards(3)}
			if mode == "ann" {
				opts = append(opts, WithRetriever(search.ANN))
			}
			cold := New(b.Lake, opts...)
			want, err := cold.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			idxDir := filepath.Join(t.TempDir(), "index")
			if err := cold.SaveIndex(idxDir); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if _, err := os.Stat(filepath.Join(idxDir, fmt.Sprintf("shard-%03d.dustidx", i))); err != nil {
					t.Fatalf("shard file %d not written: %v", i, err)
				}
				annPath := filepath.Join(idxDir, fmt.Sprintf("shard-%03d.ann.dustidx", i))
				if _, err := os.Stat(annPath); (err == nil) != (mode == "ann") {
					t.Fatalf("shard %d ann file presence wrong for %s mode (stat err = %v)", i, mode, err)
				}
			}
			if _, err := os.Stat(filepath.Join(idxDir, "searcher.dustidx")); !os.IsNotExist(err) {
				t.Error("sharded save left a monolithic searcher file behind")
			}

			warm, err := LoadPipeline(lakeDir, idxDir, WithTopTables(5))
			if err != nil {
				t.Fatal(err)
			}
			if got := warm.Shards(); got != 3 {
				t.Fatalf("warm Shards() = %d, want 3", got)
			}
			got, err := warm.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "warm vs cold sharded "+mode, got, want)
		})
	}
}

// TestPipelineShardedOverwriteChangesLayout re-saves a different layout
// into the same directory and checks no stale component files survive in
// either direction.
func TestPipelineShardedOverwriteChangesLayout(t *testing.T) {
	b, q := benchLake(t)
	lakeDir := filepath.Join(t.TempDir(), "lake")
	if err := b.Lake.Save(lakeDir); err != nil {
		t.Fatal(err)
	}
	idxDir := filepath.Join(t.TempDir(), "index")
	if err := New(b.Lake, WithShards(4)).SaveIndex(idxDir); err != nil {
		t.Fatal(err)
	}
	// Shrink to 2 shards: shard-002/003 must disappear.
	if err := New(b.Lake, WithShards(2)).SaveIndex(idxDir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(idxDir, "shard-002.dustidx")); !os.IsNotExist(err) {
		t.Error("stale shard file survived a smaller re-save")
	}
	warm, err := LoadPipeline(lakeDir, idxDir)
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.Shards(); got != 2 {
		t.Fatalf("Shards() = %d after re-save, want 2", got)
	}
	// Back to monolithic: every shard file must disappear.
	if err := New(b.Lake).SaveIndex(idxDir); err != nil {
		t.Fatal(err)
	}
	if m, _ := filepath.Glob(filepath.Join(idxDir, "shard-*.dustidx")); len(m) != 0 {
		t.Errorf("monolithic re-save left shard files behind: %v", m)
	}
	warm, err = LoadPipeline(lakeDir, idxDir)
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.Shards(); got != 1 {
		t.Fatalf("Shards() = %d after monolithic re-save, want 1", got)
	}
	want, err := New(b.Lake).Search(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := warm.Search(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "after layout churn", got, want)
}

// TestPipelineShardedMutationsAndClone drives the serving-facing pipeline
// surface over shards: AddTable/RemoveTable route to the owning shard and
// keep results bit-identical to a from-scratch unsharded pipeline, the
// epoch advances, and Clone isolates mutations (the snapshot-swap
// contract).
func TestPipelineShardedMutationsAndClone(t *testing.T) {
	b, q := benchLake(t)
	p := New(b.Lake, WithTopTables(5), WithShards(2))

	grown := table.New("late_arrival", q.Headers()...)
	for i := 0; i < q.NumRows(); i++ {
		grown.MustAppendRow(q.Row(i)...)
	}
	e0 := p.Epoch()
	if err := p.AddTable(grown); err != nil {
		t.Fatal(err)
	}
	if p.Epoch() != e0+1 {
		t.Errorf("epoch = %d after AddTable, want %d", p.Epoch(), e0+1)
	}
	fresh := New(b.Lake, WithTopTables(5))
	want, err := fresh.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "sharded after AddTable vs fresh unsharded", got, want)

	cl, err := p.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.RemoveTable("late_arrival"); err != nil {
		t.Fatal(err)
	}
	if p.Lake().Get("late_arrival") == nil {
		t.Error("clone removal reached the original lake")
	}
	after, err := p.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "original after clone mutation", after, want)

	if err := p.RemoveTable("late_arrival"); err != nil {
		t.Fatal(err)
	}
	fresh = New(b.Lake, WithTopTables(5))
	want, err = fresh.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err = p.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "sharded after RemoveTable vs fresh unsharded", got, want)
}

// TestShardedIndexErrorPaths drives every failure mode of the sharded
// on-disk layout through LoadPipeline and requires typed errors — never a
// panic, never a silently wrong index.
func TestShardedIndexErrorPaths(t *testing.T) {
	b, _ := benchLake(t)
	lakeDir := filepath.Join(t.TempDir(), "lake")
	if err := b.Lake.Save(lakeDir); err != nil {
		t.Fatal(err)
	}
	save := func(t *testing.T) string {
		t.Helper()
		idxDir := filepath.Join(t.TempDir(), "index")
		if err := New(b.Lake, WithShards(2)).SaveIndex(idxDir); err != nil {
			t.Fatal(err)
		}
		return idxDir
	}

	t.Run("truncated-manifest", func(t *testing.T) {
		idxDir := save(t)
		mf := filepath.Join(idxDir, "manifest.dustidx")
		raw, err := os.ReadFile(mf)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(mf, raw[:len(raw)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadPipeline(lakeDir, idxDir); err == nil {
			t.Error("truncated shard manifest loaded without error")
		}
	})

	t.Run("corrupt-manifest", func(t *testing.T) {
		idxDir := save(t)
		mf := filepath.Join(idxDir, "manifest.dustidx")
		raw, err := os.ReadFile(mf)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0x41
		if err := os.WriteFile(mf, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadPipeline(lakeDir, idxDir); err == nil {
			t.Error("corrupted shard manifest loaded without error")
		}
	})

	t.Run("shard-count-mismatch", func(t *testing.T) {
		idxDir := save(t)
		if err := os.Remove(filepath.Join(idxDir, "shard-001.dustidx")); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadPipeline(lakeDir, idxDir); !errors.Is(err, ErrShardLayout) {
			t.Errorf("missing shard file: err = %v, want ErrShardLayout", err)
		}
	})

	t.Run("corrupt-shard-file", func(t *testing.T) {
		idxDir := save(t)
		sf := filepath.Join(idxDir, "shard-000.dustidx")
		raw, err := os.ReadFile(sf)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0x41
		if err := os.WriteFile(sf, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadPipeline(lakeDir, idxDir); err == nil {
			t.Error("corrupted shard file loaded without error")
		}
	})

	t.Run("cross-index-shard-reuse", func(t *testing.T) {
		// A shard file from a DIFFERENT index (another lake's partition)
		// dropped into this one must be rejected by its self-validation:
		// the table set cannot match the manifest's shard map.
		idxDir := save(t)
		other := datagen.Generate("other-lake", datagen.Config{
			Seed: 99, Domains: 3, TablesPerBase: 4, BaseRows: 30, MinRows: 8, MaxRows: 12,
		})
		otherDir := filepath.Join(t.TempDir(), "other-index")
		if err := New(other.Lake, WithShards(2)).SaveIndex(otherDir); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(filepath.Join(otherDir, "shard-000.dustidx"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(idxDir, "shard-000.dustidx"), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadPipeline(lakeDir, idxDir); !errors.Is(err, search.ErrLakeMismatch) {
			t.Errorf("cross-index shard reuse: err = %v, want ErrLakeMismatch", err)
		}
	})

	t.Run("wrong-kind-shard-file", func(t *testing.T) {
		// A D3L envelope in a Starmie shard slot must fail the codec's
		// kind check, not decode as garbage.
		idxDir := save(t)
		d3lDir := filepath.Join(t.TempDir(), "d3l-index")
		d3l := New(b.Lake, WithSearcher(shard.NewD3L(b.Lake, 2, shard.Config{})))
		if err := d3l.SaveIndex(d3lDir); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(filepath.Join(d3lDir, "shard-000.dustidx"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(idxDir, "shard-000.dustidx"), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadPipeline(lakeDir, idxDir); err == nil {
			t.Error("wrong-kind shard file loaded without error")
		}
	})

	t.Run("shard-map-names-missing-table", func(t *testing.T) {
		// Deleting a mapped table from the lake CSVs must be caught before
		// any shard file is trusted.
		idxDir := save(t)
		staleDir := filepath.Join(t.TempDir(), "stale-lake")
		if err := b.Lake.Save(staleDir); err != nil {
			t.Fatal(err)
		}
		name := b.Lake.Names()[0]
		if err := os.Remove(filepath.Join(staleDir, name+".csv")); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadPipeline(staleDir, idxDir); !errors.Is(err, search.ErrLakeMismatch) {
			t.Errorf("missing mapped table: err = %v, want ErrLakeMismatch", err)
		}
	})
}

// TestPipelineMoreShardsThanTables pins the empty-shard layout: a lake
// smaller than its shard count must build, answer, save, and warm-start —
// a regression test for the manifest loader rejecting shard counts above
// the table count.
func TestPipelineMoreShardsThanTables(t *testing.T) {
	b, q := benchLake(t)
	small := lake.New("tiny")
	for _, lt := range b.Lake.Tables()[:3] {
		small.MustAdd(lt)
	}
	lakeDir := filepath.Join(t.TempDir(), "lake")
	if err := small.Save(lakeDir); err != nil {
		t.Fatal(err)
	}
	cold := New(small, WithTopTables(2), WithShards(8))
	want, err := cold.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	idxDir := filepath.Join(t.TempDir(), "index")
	if err := cold.SaveIndex(idxDir); err != nil {
		t.Fatal(err)
	}
	warm, err := LoadPipeline(lakeDir, idxDir, WithTopTables(2))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Shards() != 8 {
		t.Fatalf("warm Shards() = %d, want 8", warm.Shards())
	}
	got, err := warm.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "warm with empty shards", got, want)
}

// TestPipelineShardedD3L covers the second shardable kind end to end:
// construction via WithSearcher, save/load, and equivalence.
func TestPipelineShardedD3L(t *testing.T) {
	b, q := benchLake(t)
	lakeDir := filepath.Join(t.TempDir(), "lake")
	if err := b.Lake.Save(lakeDir); err != nil {
		t.Fatal(err)
	}
	want, err := New(b.Lake, WithTopTables(5), WithSearcher(search.NewD3L(b.Lake))).Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := New(b.Lake, WithTopTables(5), WithSearcher(shard.NewD3L(b.Lake, 3, shard.Config{})))
	got, err := p.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "sharded d3l vs unsharded", got, want)

	idxDir := filepath.Join(t.TempDir(), "index")
	if err := p.SaveIndex(idxDir); err != nil {
		t.Fatal(err)
	}
	warm, err := LoadPipeline(lakeDir, idxDir, WithTopTables(5))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Shards() != 3 {
		t.Fatalf("warm d3l Shards() = %d, want 3", warm.Shards())
	}
	got, err = warm.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "warm sharded d3l", got, want)
}
