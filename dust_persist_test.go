package dust

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dust/internal/datagen"
	"dust/internal/model"
	"dust/internal/search"
	"dust/internal/table"
)

func TestPipelineSaveLoadWarmStart(t *testing.T) {
	b, q := benchLake(t)
	lakeDir := filepath.Join(t.TempDir(), "lake")
	if err := b.Lake.Save(lakeDir); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"starmie", "d3l"} {
		t.Run(kind, func(t *testing.T) {
			opts := []Option{WithTopTables(5)}
			if kind == "d3l" {
				opts = append(opts, WithSearcher(search.NewD3L(b.Lake)))
			}
			cold := New(b.Lake, opts...)
			want, err := cold.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}

			idxDir := filepath.Join(t.TempDir(), "index")
			if HasIndex(idxDir) {
				t.Error("HasIndex true before save")
			}
			if err := cold.SaveIndex(idxDir); err != nil {
				t.Fatal(err)
			}
			if !HasIndex(idxDir) {
				t.Error("HasIndex false after save")
			}

			warm, err := LoadPipeline(lakeDir, idxDir, WithTopTables(5))
			if err != nil {
				t.Fatal(err)
			}
			got, err := warm.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "warm vs cold "+kind, got, want)
		})
	}
}

func TestPipelineSaveLoadWithModel(t *testing.T) {
	b, q := benchLake(t)
	lakeDir := filepath.Join(t.TempDir(), "lake")
	if err := b.Lake.Save(lakeDir); err != nil {
		t.Fatal(err)
	}
	pairs := datagen.Pairs(b, 60, 7)
	m := model.Train("dust-tiny", model.NewRoBERTaFeaturizer(), pairs.Train, pairs.Val, model.Config{
		Hidden: 16, OutDim: 8, Epochs: 2, Patience: 2, LR: 0.01, Seed: 1,
	})
	cold := New(b.Lake, WithTupleEncoder(m))
	want, err := cold.Search(q, 8)
	if err != nil {
		t.Fatal(err)
	}

	idxDir := filepath.Join(t.TempDir(), "index")
	if err := cold.SaveIndex(idxDir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(idxDir, "tuple.model")); err != nil {
		t.Fatalf("model file not written: %v", err)
	}
	warm, err := LoadPipeline(lakeDir, idxDir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := warm.Search(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "warm vs cold with model", got, want)
}

func TestSaveIndexOverwriteDropsStaleModel(t *testing.T) {
	b, q := benchLake(t)
	lakeDir := filepath.Join(t.TempDir(), "lake")
	if err := b.Lake.Save(lakeDir); err != nil {
		t.Fatal(err)
	}
	pairs := datagen.Pairs(b, 40, 3)
	m := model.Train("dust-tiny", model.NewRoBERTaFeaturizer(), pairs.Train, pairs.Val, model.Config{
		Hidden: 16, OutDim: 8, Epochs: 1, Patience: 1, LR: 0.01, Seed: 1,
	})
	idxDir := filepath.Join(t.TempDir(), "index")
	if err := New(b.Lake, WithTupleEncoder(m)).SaveIndex(idxDir); err != nil {
		t.Fatal(err)
	}

	// Re-saving a model-less pipeline into the same directory must not
	// leave the old tuple.model behind for the new manifest to miss.
	cold := New(b.Lake)
	if err := cold.SaveIndex(idxDir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(idxDir, "tuple.model")); !os.IsNotExist(err) {
		t.Errorf("stale tuple.model survived the overwrite (err = %v)", err)
	}
	warm, err := LoadPipeline(lakeDir, idxDir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cold.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := warm.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "overwritten index", got, want)
}

func TestLoadPipelineErrors(t *testing.T) {
	b, _ := benchLake(t)
	lakeDir := filepath.Join(t.TempDir(), "lake")
	if err := b.Lake.Save(lakeDir); err != nil {
		t.Fatal(err)
	}

	if _, err := LoadPipeline(lakeDir, t.TempDir()); !errors.Is(err, ErrNoIndex) {
		t.Errorf("empty index dir: err = %v, want ErrNoIndex", err)
	}

	idxDir := filepath.Join(t.TempDir(), "index")
	if err := New(b.Lake).SaveIndex(idxDir); err != nil {
		t.Fatal(err)
	}

	// A lake that gained a table since the save must be rejected.
	staleDir := filepath.Join(t.TempDir(), "stale-lake")
	if err := b.Lake.Save(staleDir); err != nil {
		t.Fatal(err)
	}
	extra := table.New("newcomer", "a", "b")
	extra.MustAppendRow("x", "y")
	if err := extra.SaveCSV(filepath.Join(staleDir, "newcomer.csv")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPipeline(staleDir, idxDir); !errors.Is(err, search.ErrLakeMismatch) {
		t.Errorf("stale lake: err = %v, want ErrLakeMismatch", err)
	}

	// A corrupted searcher file must be rejected by its checksum.
	raw, err := os.ReadFile(filepath.Join(idxDir, "searcher.dustidx"))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(filepath.Join(idxDir, "searcher.dustidx"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPipeline(lakeDir, idxDir); err == nil {
		t.Error("corrupted searcher file loaded without error")
	}
}

func TestSaveIndexUnsupportedSearcher(t *testing.T) {
	b, _ := benchLake(t)
	p := New(b.Lake, WithSearcher(fakeSearcher{}))
	if err := p.SaveIndex(t.TempDir()); !errors.Is(err, ErrUnsupportedSearcher) {
		t.Errorf("err = %v, want ErrUnsupportedSearcher", err)
	}
	if err := p.AddTable(table.New("x", "a")); !errors.Is(err, ErrNotIncremental) {
		t.Errorf("AddTable err = %v, want ErrNotIncremental", err)
	}
	if err := p.RemoveTable("x"); !errors.Is(err, ErrNotIncremental) {
		t.Errorf("RemoveTable err = %v, want ErrNotIncremental", err)
	}
}

type fakeSearcher struct{}

func (fakeSearcher) Name() string                               { return "fake" }
func (fakeSearcher) TopK(q *table.Table, k int) []search.Scored { return nil }

func TestPipelineIncrementalMatchesRebuild(t *testing.T) {
	b, q := benchLake(t)
	p := New(b.Lake, WithTopTables(5))

	grown := table.New("late_arrival", q.Headers()...)
	for i := 0; i < q.NumRows(); i++ {
		grown.MustAppendRow(q.Row(i)...)
	}
	if err := p.AddTable(grown); err != nil {
		t.Fatal(err)
	}
	if err := p.AddTable(grown); err == nil {
		t.Error("duplicate AddTable should error")
	}
	if p.Lake().Get("late_arrival") == nil {
		t.Fatal("AddTable did not reach the lake")
	}

	fresh := New(b.Lake, WithTopTables(5))
	want, err := fresh.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "after AddTable", got, want)

	if err := p.RemoveTable("late_arrival"); err != nil {
		t.Fatal(err)
	}
	if err := p.RemoveTable("late_arrival"); err == nil {
		t.Error("second RemoveTable should error")
	}
	if p.Lake().Get("late_arrival") != nil {
		t.Error("RemoveTable left the table in the lake")
	}
	fresh = New(b.Lake, WithTopTables(5))
	want, err = fresh.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err = p.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "after RemoveTable", got, want)
}
