package dust

import (
	"fmt"
	"strings"
	"testing"

	"dust/internal/datagen"
	"dust/internal/model"
	"dust/internal/search"
	"dust/internal/table"
)

// sameResult asserts two pipeline results are byte-identical: same rows in
// the same order, same provenance, same retrieved tables.
func sameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if strings.Join(got.UnionableTables, "|") != strings.Join(want.UnionableTables, "|") {
		t.Fatalf("%s: retrieved tables %v, want %v", label, got.UnionableTables, want.UnionableTables)
	}
	for _, pair := range [][2]*table.Table{{got.Tuples, want.Tuples}, {got.Unioned, want.Unioned}} {
		g, w := pair[0], pair[1]
		if g.NumRows() != w.NumRows() || g.NumCols() != w.NumCols() {
			t.Fatalf("%s: shape (%d,%d), want (%d,%d)", label,
				g.NumRows(), g.NumCols(), w.NumRows(), w.NumCols())
		}
		for r := 0; r < w.NumRows(); r++ {
			if strings.Join(g.Row(r), "\x1f") != strings.Join(w.Row(r), "\x1f") {
				t.Fatalf("%s: row %d = %v, want %v", label, r, g.Row(r), w.Row(r))
			}
		}
	}
	if len(got.Provenance) != len(want.Provenance) {
		t.Fatalf("%s: provenance length %d, want %d", label, len(got.Provenance), len(want.Provenance))
	}
	for i := range want.Provenance {
		if got.Provenance[i] != want.Provenance[i] {
			t.Fatalf("%s: provenance[%d] = %v, want %v", label, i,
				got.Provenance[i], want.Provenance[i])
		}
	}
}

func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	b, q := benchLake(t)
	want, err := New(b.Lake, WithWorkers(1)).Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := New(b.Lake, WithWorkers(workers)).Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, fmt.Sprintf("workers=%d vs 1", workers), got, want)
	}
}

// TestWithWorkersReboundsSuppliedSearcher covers the WithSearcher +
// WithWorkers combination: the explicit workers bound must reach the
// caller-built searcher's scoring too, and results must stay identical.
func TestWithWorkersReboundsSuppliedSearcher(t *testing.T) {
	b, q := benchLake(t)
	want, err := New(b.Lake, WithSearcher(search.NewD3L(b.Lake)), WithWorkers(1)).Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := New(b.Lake, WithSearcher(search.NewD3L(b.Lake)), WithWorkers(8)).Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "d3l workers=8 vs 1", got, want)
}

func TestSearchBatchMatchesSequentialSearch(t *testing.T) {
	b, _ := benchLake(t)
	queries := b.Queries
	if len(queries) < 2 {
		t.Fatalf("benchmark generated %d queries, want >= 2", len(queries))
	}
	p := New(b.Lake, WithWorkers(8))
	results, err := p.SearchBatch(queries, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(queries) {
		t.Fatalf("got %d results, want %d", len(results), len(queries))
	}
	for i, q := range queries {
		want, err := p.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "batch vs single "+q.Name, results[i], want)
	}
}

func TestSearchBatchReportsPerQueryErrors(t *testing.T) {
	b, q := benchLake(t)
	p := New(b.Lake, WithWorkers(4))
	empty := table.New("empty-query")
	results, err := p.SearchBatch([]*table.Table{q, empty, nil}, 5)
	if err == nil {
		t.Fatal("expected an error for the empty and nil queries")
	}
	if results[0] == nil {
		t.Error("valid query result missing")
	}
	if results[1] != nil || results[2] != nil {
		t.Error("failed queries should leave nil result slots")
	}
	msg := err.Error()
	if !strings.Contains(msg, "query 1 (empty-query)") || !strings.Contains(msg, "query 2 (<nil>)") {
		t.Errorf("error does not attribute failures to queries: %v", msg)
	}
}

// TestFineTunedBatchEncodeDeterministic exercises the concurrent inference
// path of a trained model (the nn layers must not mutate state when
// train=false) and its batch determinism.
func TestFineTunedBatchEncodeDeterministic(t *testing.T) {
	bench := datagen.Generate("par-model", datagen.Config{
		Seed: 83, Domains: 3, TablesPerBase: 4, BaseRows: 30, MinRows: 8, MaxRows: 12,
	})
	ds := datagen.Pairs(bench, 120, 84)
	cfg := model.DefaultConfig()
	cfg.Epochs = 2
	m := model.Train("par-test", model.NewRoBERTaFeaturizer(), ds.Train, ds.Val, cfg)

	headers := bench.Queries[0].Headers()
	rows := make([][]string, bench.Queries[0].NumRows())
	for i := range rows {
		rows[i] = bench.Queries[0].Row(i)
	}
	want := m.EncodeTupleBatch(headers, rows, 1)
	got := m.EncodeTupleBatch(headers, rows, 8)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("row %d dim %d: %v, want %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}
