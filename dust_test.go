package dust

import (
	"strings"
	"testing"

	"dust/internal/datagen"
	"dust/internal/diversify"
	"dust/internal/lake"
	"dust/internal/table"
)

func benchLake(t *testing.T) (*datagen.Benchmark, *table.Table) {
	t.Helper()
	b := datagen.Generate("api-test", datagen.Config{
		Seed: 81, Domains: 4, TablesPerBase: 5, BaseRows: 60, MinRows: 15, MaxRows: 30,
	})
	return b, b.Queries[0]
}

func TestPipelineEndToEnd(t *testing.T) {
	b, q := benchLake(t)
	p := New(b.Lake)
	res, err := p.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples.NumRows() != 10 {
		t.Fatalf("result rows = %d, want 10", res.Tuples.NumRows())
	}
	if res.Tuples.NumCols() != q.NumCols() {
		t.Errorf("result cols = %d, want query schema %d", res.Tuples.NumCols(), q.NumCols())
	}
	if len(res.Provenance) != 10 {
		t.Errorf("provenance entries = %d", len(res.Provenance))
	}
	if len(res.UnionableTables) == 0 {
		t.Error("no unionable tables recorded")
	}
	if res.Unioned.NumRows() < 10 {
		t.Errorf("unioned pool smaller than k: %d", res.Unioned.NumRows())
	}
	// Provenance must reference retrieved tables only.
	retrieved := map[string]bool{}
	for _, n := range res.UnionableTables {
		retrieved[n] = true
	}
	for _, pv := range res.Provenance {
		if !retrieved[pv.Table] {
			t.Errorf("provenance table %s was not retrieved", pv.Table)
		}
	}
}

func TestPipelineMostlyRetrievesSameBase(t *testing.T) {
	// The lake has exactly 5 tables sharing the query's base, so retrieve
	// 5 and expect most of them to be the unionable ones.
	b, q := benchLake(t)
	res, err := New(b.Lake, WithTopTables(5)).Search(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	sameBase := 0
	for _, n := range res.UnionableTables {
		if lt := b.Lake.Get(n); lt != nil && lt.Base == q.Base {
			sameBase++
		}
	}
	if sameBase < 3 {
		t.Errorf("only %d/%d retrieved tables share the query base", sameBase, len(res.UnionableTables))
	}
}

func TestPipelineValidation(t *testing.T) {
	b, q := benchLake(t)
	p := New(b.Lake)
	if _, err := p.Search(nil, 5); err == nil {
		t.Error("nil query should error")
	}
	if _, err := p.Search(q, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := p.Search(q, -3); err == nil {
		t.Error("negative k should error")
	}
	empty := table.New("empty")
	if _, err := p.Search(empty, 5); err == nil {
		t.Error("query with no columns should error")
	}
}

func TestPipelineOptions(t *testing.T) {
	b, q := benchLake(t)
	p := New(b.Lake,
		WithDiversifier(diversify.CLT{}),
		WithTopTables(3),
	)
	res, err := p.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UnionableTables) != 3 {
		t.Errorf("retrieved %d tables, want 3 (WithTopTables)", len(res.UnionableTables))
	}
	if res.Tuples.NumRows() != 5 {
		t.Errorf("rows = %d", res.Tuples.NumRows())
	}
}

func TestPipelineDiverseBeatsSimilarBaseline(t *testing.T) {
	// Plant a near-duplicate of the query in the lake: the DUST pipeline
	// must not fill its result with the duplicate rows, while a
	// similarity-ranked selection would.
	q := table.New("q", "Park Name", "Supervisor", "Country")
	q.MustAppendRow("River Park", "Vera Onate", "USA")
	q.MustAppendRow("West Lawn Park", "Paul Veliotis", "USA")
	q.MustAppendRow("Hyde Park", "Jenny Rishi", "UK")

	dup := table.New("dup", "Park Name", "Supervisor", "Country")
	dup.MustAppendRow("River Park", "Vera Onate", "USA")
	dup.MustAppendRow("West Lawn Park", "Paul Veliotis", "USA")
	dup.MustAppendRow("Hyde Park", "Jenny Rishi", "UK")

	novel := table.New("novel", "Park Name", "Supervisor", "Country")
	novel.MustAppendRow("Chippewa Park", "Tim Erickson", "USA")
	novel.MustAppendRow("Lawler Park", "Enrique Garcia", "USA")
	novel.MustAppendRow("Cedar Grove", "Maria Silva", "Canada")

	l := lake.New("toy")
	l.MustAdd(dup)
	l.MustAdd(novel)

	res, err := New(l, WithTopTables(2)).Search(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	queryRows := map[string]bool{}
	for i := 0; i < q.NumRows(); i++ {
		queryRows[strings.Join(q.Row(i), "|")] = true
	}
	dupCount := 0
	for i := 0; i < res.Tuples.NumRows(); i++ {
		if queryRows[strings.Join(res.Tuples.Row(i), "|")] {
			dupCount++
		}
	}
	if dupCount > 1 {
		t.Errorf("diverse result contains %d query duplicates of 3 rows", dupCount)
	}
}
