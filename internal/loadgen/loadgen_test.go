package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"dust"
	"dust/internal/datagen"
	"dust/internal/search"
	"dust/internal/serve"
)

// startServer stands up a dustserve over a LakeSpec-generated lake.
func startServer(t *testing.T, spec datagen.LakeSpec, dustOpts []dust.Option, opts ...serve.Option) *httptest.Server {
	t.Helper()
	p := dust.New(spec.Generate(), append([]dust.Option{dust.WithTopTables(3)}, dustOpts...)...)
	srv := serve.New(p, opts...)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

func TestOpenLoopRunAgainstServe(t *testing.T) {
	spec := datagen.LakeSpec{Seed: 5, Tables: 16, Rows: 12}
	ts := startServer(t, spec, nil)

	cfg := Config{
		BaseURL:   ts.URL,
		QPS:       150,
		Duration:  1200 * time.Millisecond,
		Seed:      9,
		Mix:       Mix{Search: 0.8, Put: 0.1, Delete: 0.1},
		Spec:      spec,
		K:         3,
		QueryPool: 4,
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !rep.OpenLoop || rep.Benchmark != "open-loop-load" {
		t.Fatalf("artifact identity wrong: %+v", rep)
	}
	if rep.TargetQPS != 150 {
		t.Fatalf("target qps %v", rep.TargetQPS)
	}
	// A Poisson process at 150 qps over 1.2s delivers ~180 arrivals; 5
	// sigma leaves [113, 247].
	if rep.Requests < 113 || rep.Requests > 247 {
		t.Fatalf("requests %d far from Poisson expectation 180", rep.Requests)
	}
	if rep.Failed != 0 {
		t.Fatalf("run against a healthy server failed %d requests: %+v", rep.Failed, rep.Classes)
	}
	if rep.AchievedQPS <= 0 {
		t.Fatalf("achieved qps %v", rep.AchievedQPS)
	}
	// Elapsed wall time runs from start to the last drained response; the
	// final arrival may be scheduled well inside the window, so only a
	// sanity bound holds.
	if rep.DurationS <= 0.5 {
		t.Fatalf("duration %vs implausibly short", rep.DurationS)
	}

	search := rep.Classes[ClassSearch]
	if search.Count == 0 || search.OK != search.Count-search.Shed {
		t.Fatalf("search accounting off: %+v", search)
	}
	if !(search.P50MS <= search.P99MS && search.P99MS <= search.P999MS) {
		t.Fatalf("quantiles not monotone: %+v", search)
	}
	if search.P50MS <= 0 {
		t.Fatalf("p50 %vms not positive", search.P50MS)
	}
	muts := rep.Classes[ClassPut].Count + rep.Classes[ClassDelete].Count
	if muts == 0 {
		t.Fatal("mixed workload issued no mutations")
	}
	var total uint64
	for _, c := range rep.Classes {
		total += c.Count
	}
	if total != rep.Requests {
		t.Fatalf("class counts %d don't sum to requests %d", total, rep.Requests)
	}

	// The server's own accounting must corroborate the client's.
	if rep.Server == nil {
		t.Fatal("no server-side stats delta")
	}
	if rep.Server.Searches != search.OK {
		t.Fatalf("server saw %d searches, client confirmed %d", rep.Server.Searches, search.OK)
	}
	wantMuts := rep.Classes[ClassPut].OK + rep.Classes[ClassDelete].OK
	if rep.Server.Mutations != wantMuts {
		t.Fatalf("server saw %d mutations, client confirmed %d", rep.Server.Mutations, wantMuts)
	}
}

func TestOpenLoopShedAccounting(t *testing.T) {
	// A 1-slot admission gate with the shed policy armed must shed under
	// an open-loop burst: the pipeline is configured in ANN mode, so no
	// distinct degraded view exists and overload has nowhere to degrade
	// to. The lake is big enough that searches stay above the cheap-cost
	// floor, keeping the policy armed. Shed responses are policy, not
	// failures.
	spec := datagen.LakeSpec{Seed: 6, Tables: 200, Rows: 40}
	ts := startServer(t, spec, []dust.Option{dust.WithRetriever(search.ANN)},
		serve.WithMaxInFlight(1), serve.WithCacheCapacity(0),
		serve.WithDegradeThreshold(0.5))

	rep, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		QPS:      500,
		Duration: 700 * time.Millisecond,
		Seed:     3,
		Spec:     spec,
		K:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	search := rep.Classes[ClassSearch]
	if search.Shed == 0 {
		t.Fatalf("no shed under a %d-request burst against 1 slot: %+v", rep.Requests, search)
	}
	if rep.Failed != 0 {
		t.Fatalf("shed misclassified as failure: %+v", search)
	}
	if rep.Server == nil || rep.Server.Shed != search.Shed {
		t.Fatalf("server shed %v, client shed %d", rep.Server, search.Shed)
	}
}

func TestRunConfigValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Config{QPS: 1, Duration: time.Second}); err == nil {
		t.Fatal("missing BaseURL accepted")
	}
	if _, err := Run(ctx, Config{BaseURL: "http://x", Duration: time.Second}); err == nil {
		t.Fatal("zero QPS accepted")
	}
	if _, err := Run(ctx, Config{BaseURL: "http://x", QPS: 1}); err == nil {
		t.Fatal("zero Duration accepted")
	}
	// Unreachable server is a setup error, not a 100%-failure run.
	if _, err := Run(ctx, Config{BaseURL: "http://127.0.0.1:1", QPS: 1, Duration: time.Millisecond}); err == nil {
		t.Fatal("unreachable server accepted")
	}
}

func TestMixNormalized(t *testing.T) {
	if m := (Mix{}).normalized(); m.Search != 1 || m.Put != 0 || m.Delete != 0 {
		t.Fatalf("zero mix -> %+v, want search-only", m)
	}
	m := Mix{Search: 3, Put: 1, Delete: 1}.normalized()
	if m.Search != 0.6 || m.Put != 0.2 || m.Delete != 0.2 {
		t.Fatalf("3:1:1 -> %+v", m)
	}
	if m := (Mix{Search: -1, Put: 2}).normalized(); m.Put != 1 {
		t.Fatalf("negative weight not clamped: %+v", m)
	}
}
