// Package loadgen is the open-loop load harness behind cmd/dustload and
// the BENCH_load.json artifact. It drives a live dustserve endpoint at a
// target QPS with Poisson arrivals and a mixed search/PUT/DELETE
// workload drawn from a datagen.LakeSpec, and measures per-class
// p50/p99/p999 latency with error/shed/degraded accounting.
//
// Open loop, not closed loop: request arrival times are scheduled in
// advance from an exponential inter-arrival distribution and every
// request fires at its scheduled instant regardless of whether earlier
// requests have returned. Latency is measured from the SCHEDULED arrival
// time, so when the server stalls, the queueing delay of every request
// that should have been issued during the stall is charged to the
// server. A closed-loop harness (issue, wait, issue) silently stops
// issuing while stalled and reports misleadingly healthy tails — the
// coordinated-omission trap this package exists to avoid.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dust/internal/datagen"
	"dust/internal/obs"
	"dust/internal/serve"
	"dust/internal/table"
)

// Request classes of the mixed workload, used as histogram label values
// and Report map keys.
const (
	ClassSearch = "search"
	ClassPut    = "put"
	ClassDelete = "delete"
)

// LatencyBuckets are the harness's histogram bounds: ~0.2ms to ~66s,
// geometric with ratio 1.3, fine enough that interpolated p999 error
// stays within one 30% bucket step. (obs.DefBuckets is too coarse for
// p999 at serving speeds.)
var LatencyBuckets = func() []float64 {
	var b []float64
	for v := 0.0002; v < 70; v *= 1.3 {
		b = append(b, v)
	}
	return b
}()

// Mix is the workload class distribution. Weights are relative (they
// need not sum to 1); the zero value means search-only.
type Mix struct {
	Search float64 `json:"search"`
	Put    float64 `json:"put"`
	Delete float64 `json:"delete"`
}

// normalized returns the mix with weights summing to 1, defaulting to
// search-only when all weights are zero or negative.
func (m Mix) normalized() Mix {
	if m.Search < 0 {
		m.Search = 0
	}
	if m.Put < 0 {
		m.Put = 0
	}
	if m.Delete < 0 {
		m.Delete = 0
	}
	total := m.Search + m.Put + m.Delete
	if total <= 0 {
		return Mix{Search: 1}
	}
	return Mix{Search: m.Search / total, Put: m.Put / total, Delete: m.Delete / total}
}

// Config parameterises one open-loop run.
type Config struct {
	// BaseURL locates the dustserve endpoint, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// QPS is the target mean arrival rate. Required > 0.
	QPS float64
	// Duration is the arrival-scheduling window. Requests scheduled
	// inside it are all issued and drained, so a run can outlive
	// Duration by the tail latency. Required > 0.
	Duration time.Duration
	// Seed drives arrivals and workload choice; same seed, same schedule.
	Seed int64
	// Mix is the class distribution (zero value: search-only).
	Mix Mix
	// Spec is the workload source: queries sample its lake tables, PUT
	// bodies are fresh tables drawn past its Tables index. It should be
	// the spec the target lake was generated from.
	Spec datagen.LakeSpec
	// K is the top-k per search; 0 takes the server default.
	K int
	// QueryPool is how many distinct search bodies rotate; default 16.
	QueryPool int
	// Timeout caps each request; default 30s.
	Timeout time.Duration
	// Client optionally overrides the HTTP client (Timeout then unused).
	Client *http.Client
}

// ClassReport is the per-class half of the artifact: counts by outcome
// and latency quantiles in milliseconds, measured from scheduled
// arrival time.
type ClassReport struct {
	Count    uint64  `json:"count"`
	OK       uint64  `json:"ok"`
	Errors   uint64  `json:"errors"`
	Shed     uint64  `json:"shed"`
	Degraded uint64  `json:"degraded"`
	MeanMS   float64 `json:"mean_ms"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
	P999MS   float64 `json:"p999_ms"`
}

// ServerDelta is the change in the server's own /stats counters across
// the run — the server-side view the client accounting is checked
// against.
type ServerDelta struct {
	Searches  uint64 `json:"searches"`
	Mutations uint64 `json:"mutations"`
	Rejected  uint64 `json:"rejected"`
	Canceled  uint64 `json:"canceled"`
	Degraded  uint64 `json:"degraded"`
	Shed      uint64 `json:"shed"`
	CacheHits uint64 `json:"cache_hits"`
}

// Report is the JSON shape of BENCH_load.json.
type Report struct {
	Benchmark   string                 `json:"benchmark"`
	OpenLoop    bool                   `json:"open_loop"`
	Workload    string                 `json:"workload"` // LakeSpec in key=value form
	Mix         Mix                    `json:"mix"`
	Seed        int64                  `json:"seed"`
	TargetQPS   float64                `json:"target_qps"`
	AchievedQPS float64                `json:"achieved_qps"`
	DurationS   float64                `json:"duration_s"` // wall time incl. drain
	Requests    uint64                 `json:"requests"`
	Failed      uint64                 `json:"failed"` // transport + unexpected-status errors (shed excluded)
	Shed        uint64                 `json:"shed"`
	Degraded    uint64                 `json:"degraded"`
	Classes     map[string]ClassReport `json:"classes"`
	Server      *ServerDelta           `json:"server,omitempty"`
}

// classCounters is the lock-free per-class tally updated by in-flight
// requests.
type classCounters struct {
	count, ok, errors, shed, degraded atomic.Uint64
}

// plannedReq is one scheduled request, fully materialised before its
// arrival instant so issuing it costs no generator time.
type plannedReq struct {
	class  string
	method string
	path   string
	body   []byte
	name   string // PUT only: table name to confirm on success
}

// tableWire mirrors the serve layer's table body shape.
type tableWire struct {
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// Run executes one open-loop run and returns its Report. It returns an
// error only for unusable configuration or an unreachable server — a
// run whose individual requests fail still completes and reports the
// failures. Cancelling ctx stops scheduling new arrivals; requests
// already issued are drained.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("loadgen: BaseURL required")
	}
	if cfg.QPS <= 0 {
		return nil, fmt.Errorf("loadgen: QPS must be > 0, got %v", cfg.QPS)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: Duration must be > 0, got %v", cfg.Duration)
	}
	if cfg.QueryPool <= 0 {
		cfg.QueryPool = 16
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	mix := cfg.Mix.normalized()
	spec := cfg.Spec.Normalized()

	// Pre-marshal the search body pool so the hot loop never touches the
	// generator.
	queries := make([][]byte, cfg.QueryPool)
	for i := range queries {
		q := spec.Query(i)
		body, err := json.Marshal(struct {
			Query tableWire `json:"query"`
			K     int       `json:"k,omitempty"`
		}{Query: tableWire{Headers: q.Headers(), Rows: tuplesOf(q)}, K: cfg.K})
		if err != nil {
			return nil, fmt.Errorf("loadgen: marshal query %d: %w", i, err)
		}
		queries[i] = body
	}

	// The server must be up before the clock starts: a dead endpoint
	// should be a config error, not a run with 100% failures.
	before, err := scrapeStats(client, cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: target not responding: %w", err)
	}

	reg := obs.NewRegistry()
	lat := reg.NewHistogram("load_latency_seconds",
		"request latency from scheduled arrival", LatencyBuckets, "class")
	counters := map[string]*classCounters{
		ClassSearch: {}, ClassPut: {}, ClassDelete: {},
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	// added buffers names of tables confirmed PUT and not yet deleted, so
	// DELETEs always target something real.
	added := make(chan string, 1<<16)
	putSeq := 0
	var wg sync.WaitGroup
	start := time.Now()
	var offset time.Duration

schedule:
	for {
		// Exponential inter-arrival gap: Poisson arrival process at QPS.
		offset += time.Duration(rng.ExpFloat64() / cfg.QPS * float64(time.Second))
		if offset > cfg.Duration {
			break
		}
		req := plan(rng, mix, spec, queries, added, &putSeq)
		arrival := start.Add(offset)
		if wait := time.Until(arrival); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				break schedule
			}
		} else if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(req plannedReq, scheduled time.Time) {
			defer wg.Done()
			fire(client, cfg.BaseURL, req, scheduled, counters[req.class],
				lat.With(req.class), added)
		}(req, arrival)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		Benchmark: "open-loop-load",
		OpenLoop:  true,
		Workload:  spec.String(),
		Mix:       mix,
		Seed:      cfg.Seed,
		TargetQPS: cfg.QPS,
		DurationS: elapsed.Seconds(),
		Classes:   make(map[string]ClassReport, len(counters)),
	}
	for class, c := range counters {
		h := lat.With(class)
		cr := ClassReport{
			Count:    c.count.Load(),
			OK:       c.ok.Load(),
			Errors:   c.errors.Load(),
			Shed:     c.shed.Load(),
			Degraded: c.degraded.Load(),
			P50MS:    quantileMS(h, 0.5),
			P99MS:    quantileMS(h, 0.99),
			P999MS:   quantileMS(h, 0.999),
		}
		if cr.Count > 0 {
			cr.MeanMS = h.Sum() / float64(cr.Count) * 1000
		}
		rep.Classes[class] = cr
		rep.Requests += cr.Count
		rep.Failed += cr.Errors
		rep.Shed += cr.Shed
		rep.Degraded += cr.Degraded
	}
	if elapsed > 0 {
		rep.AchievedQPS = float64(rep.Requests) / elapsed.Seconds()
	}
	if after, err := scrapeStats(client, cfg.BaseURL); err == nil {
		rep.Server = &ServerDelta{
			Searches:  after.Searches - before.Searches,
			Mutations: after.Mutations - before.Mutations,
			Rejected:  after.Rejected - before.Rejected,
			Canceled:  after.Canceled - before.Canceled,
			Degraded:  after.Degraded - before.Degraded,
			Shed:      after.Shed - before.Shed,
			CacheHits: after.Cache.Hits - before.Cache.Hits,
		}
	}
	return rep, nil
}

// plan materialises the next scheduled request. All randomness comes
// from the scheduler's rng, so the request sequence is seed-determined;
// only response-dependent choices (which confirmed table a DELETE
// targets) vary with server timing.
func plan(rng *rand.Rand, mix Mix, spec datagen.LakeSpec, queries [][]byte,
	added chan string, putSeq *int) plannedReq {
	w := rng.Float64()
	switch {
	case w < mix.Search:
		return plannedReq{class: ClassSearch, method: http.MethodPost,
			path: "/search", body: queries[rng.Intn(len(queries))]}
	case w < mix.Search+mix.Put:
		return planPut(rng, spec, putSeq)
	default:
		select {
		case name := <-added:
			return plannedReq{class: ClassDelete, method: http.MethodDelete,
				path: "/tables/" + name}
		default:
			// Nothing confirmed added yet — a DELETE would be a guaranteed
			// 404, so mutate in the other direction instead.
			return planPut(rng, spec, putSeq)
		}
	}
}

// planPut mints the next fresh table to PUT: generator index past the
// lake's own tables, renamed load_<seq> so nothing ever collides.
func planPut(rng *rand.Rand, spec datagen.LakeSpec, putSeq *int) plannedReq {
	name := fmt.Sprintf("load_%06d", *putSeq)
	t := spec.Table(spec.Tables + *putSeq)
	*putSeq++
	body, err := json.Marshal(tableWire{Headers: t.Headers(), Rows: tuplesOf(t)})
	if err != nil {
		panic(fmt.Sprintf("loadgen: marshal generated table: %v", err)) // generator output is always marshalable
	}
	return plannedReq{class: ClassPut, method: http.MethodPut,
		path: "/tables/" + name, body: body, name: name}
}

// fire issues one planned request at its arrival instant and classifies
// the outcome. Latency is measured from the scheduled time, which is at
// or before now — the open-loop contract.
func fire(client *http.Client, base string, req plannedReq, scheduled time.Time,
	c *classCounters, h *obs.Histogram, added chan string) {
	var body io.Reader
	if req.body != nil {
		body = bytes.NewReader(req.body)
	}
	httpReq, err := http.NewRequest(req.method, base+req.path, body)
	if err != nil {
		c.count.Add(1)
		c.errors.Add(1)
		return
	}
	if req.body != nil {
		httpReq.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(httpReq)
	c.count.Add(1)
	if err != nil {
		h.Observe(time.Since(scheduled).Seconds())
		c.errors.Add(1)
		return
	}
	degraded := false
	if req.class == ClassSearch && resp.StatusCode == http.StatusOK {
		var out struct {
			Degraded bool `json:"degraded"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&out)
		degraded = out.Degraded
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	// Latency includes reading the response: a request isn't served until
	// its body has been delivered.
	h.Observe(time.Since(scheduled).Seconds())

	okStatus := http.StatusOK
	if req.class == ClassPut {
		okStatus = http.StatusCreated
	}
	switch {
	case resp.StatusCode == okStatus:
		c.ok.Add(1)
		if degraded {
			c.degraded.Add(1)
		}
		if req.class == ClassPut {
			select {
			case added <- req.name:
			default: // buffer full: leak the name rather than block the run
			}
		}
	case resp.StatusCode == http.StatusServiceUnavailable:
		c.shed.Add(1)
	default:
		c.errors.Add(1)
	}
}

// quantileMS converts a histogram quantile to milliseconds, mapping the
// empty-histogram NaN to 0 so the report always marshals.
func quantileMS(h *obs.Histogram, q float64) float64 {
	v := h.Quantile(q)
	if math.IsNaN(v) {
		return 0
	}
	return v * 1000
}

// tuplesOf flattens a table to its wire rows.
func tuplesOf(t *table.Table) [][]string {
	rows := make([][]string, t.NumRows())
	for i := range rows {
		rows[i] = t.Row(i)
	}
	return rows
}

// scrapeStats fetches and decodes GET /stats.
func scrapeStats(client *http.Client, base string) (*serve.StatsResponse, error) {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /stats: status %d", resp.StatusCode)
	}
	var st serve.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("GET /stats: %w", err)
	}
	return &st, nil
}
