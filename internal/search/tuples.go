package search

import (
	"sort"

	"dust/internal/embed"
	"dust/internal/par"
	"dust/internal/table"
	"dust/internal/vector"
)

// ScoredTuple is a tuple-level search hit.
type ScoredTuple struct {
	Table *table.Table
	Row   int
	Score float64
}

// TupleSearch adapts Starmie to tuple retrieval the way the paper does for
// the Table 3 baseline: "we index each tuple in the data lake as a separate
// table and search for the top-k tables" (§6.5.1). Each tuple is embedded
// with the Starmie base model; a tuple's score is its maximum similarity to
// any query tuple, so the top of the ranking is dominated by tuples most
// similar to — often identical to — the query's own rows, which is exactly
// the redundancy phenomenon DUST addresses.
type TupleSearch struct {
	enc     *embed.Encoder
	workers int
	tuples  []ScoredTuple // score unused at index time
	vecs    []vector.Vec
}

// NewTupleSearch indexes every tuple of the given tables. Embedding runs
// as one parallel map over the flattened (headers, row) work list so the
// full worker budget applies even when the lake is many small tables.
func NewTupleSearch(tables []*table.Table, opts ...Option) *TupleSearch {
	o := applyOptions(opts)
	ts := &TupleSearch{enc: embed.NewRoBERTa(), workers: o.workers}
	type job struct {
		headers []string
		row     []string
	}
	var jobs []job
	for _, t := range tables {
		headers := t.Headers()
		for r := 0; r < t.NumRows(); r++ {
			ts.tuples = append(ts.tuples, ScoredTuple{Table: t, Row: r})
			jobs = append(jobs, job{headers, t.Row(r)})
		}
	}
	ts.vecs = par.Map(ts.workers, len(jobs), func(i int) vector.Vec {
		return ts.enc.EncodeTuple(jobs[i].headers, jobs[i].row)
	})
	return ts
}

// Name identifies the baseline in experiment output.
func (ts *TupleSearch) Name() string { return "starmie-tuples" }

// Len returns the number of indexed tuples.
func (ts *TupleSearch) Len() int { return len(ts.tuples) }

// TopK returns the k tuples most similar to the query table's tuples.
// Query embedding and per-tuple scoring both run in parallel; scores are
// written by tuple index, so the stable sort sees the same input for every
// worker count.
func (ts *TupleSearch) TopK(query *table.Table, k int) []ScoredTuple {
	headers := query.Headers()
	rows := make([][]string, query.NumRows())
	for r := range rows {
		rows[r] = query.Row(r)
	}
	qVecs := ts.enc.EncodeTupleBatch(headers, rows, ts.workers)
	out := make([]ScoredTuple, len(ts.tuples))
	copy(out, ts.tuples)
	par.For(ts.workers, len(out), func(i int) {
		best := 0.0
		for _, qv := range qVecs {
			if sim := vector.Cosine(qv, ts.vecs[i]); sim > best {
				best = sim
			}
		}
		out[i].Score = best
	})
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
