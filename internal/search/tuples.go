package search

import (
	"context"
	"fmt"
	"sort"

	"dust/internal/embed"
	"dust/internal/par"
	"dust/internal/table"
	"dust/internal/vector"
)

// ScoredTuple is a tuple-level search hit.
type ScoredTuple struct {
	Table *table.Table
	Row   int
	Score float64
}

// TupleSearch adapts Starmie to tuple retrieval the way the paper does for
// the Table 3 baseline: "we index each tuple in the data lake as a separate
// table and search for the top-k tables" (§6.5.1). Each tuple is embedded
// with the Starmie base model; a tuple's score is its maximum similarity to
// any query tuple, so the top of the ranking is dominated by tuples most
// similar to — often identical to — the query's own rows, which is exactly
// the redundancy phenomenon DUST addresses.
type TupleSearch struct {
	enc     *embed.Encoder
	workers int
	tuples  []ScoredTuple // score unused at index time
	vecs    []vector.Vec
}

// NewTupleSearch indexes every tuple of the given tables. Embedding runs
// as one parallel map over the flattened (headers, row) work list so the
// full worker budget applies even when the lake is many small tables.
func NewTupleSearch(tables []*table.Table, opts ...Option) *TupleSearch {
	o := applyOptions(opts)
	ts := &TupleSearch{enc: embed.NewRoBERTa(), workers: o.workers}
	type job struct {
		headers []string
		row     []string
	}
	var jobs []job
	for _, t := range tables {
		headers := t.Headers()
		for r := 0; r < t.NumRows(); r++ {
			ts.tuples = append(ts.tuples, ScoredTuple{Table: t, Row: r})
			jobs = append(jobs, job{headers, t.Row(r)})
		}
	}
	ts.vecs = par.Map(ts.workers, len(jobs), func(i int) vector.Vec {
		return ts.enc.EncodeTuple(jobs[i].headers, jobs[i].row)
	})
	return ts
}

// Name identifies the baseline in experiment output.
func (ts *TupleSearch) Name() string { return "starmie-tuples" }

// Len returns the number of indexed tuples.
func (ts *TupleSearch) Len() int { return len(ts.tuples) }

// AddTable implements Incremental: the table's tuples are embedded and
// appended, exactly where a from-scratch index over the mutated table list
// would place them. A table with no rows contributes no tuples (and is
// therefore unknown to RemoveTable).
func (ts *TupleSearch) AddTable(t *table.Table) error {
	for i := range ts.tuples {
		if ts.tuples[i].Table.Name == t.Name {
			return fmt.Errorf("tuplesearch: AddTable(%q): %w", t.Name, ErrDuplicateTable)
		}
	}
	headers := t.Headers()
	rows := make([][]string, t.NumRows())
	for r := range rows {
		rows[r] = t.Row(r)
		ts.tuples = append(ts.tuples, ScoredTuple{Table: t, Row: r})
	}
	ts.vecs = append(ts.vecs, ts.enc.EncodeTupleBatch(headers, rows, ts.workers)...)
	return nil
}

// RemoveTable implements Incremental: the table's tuples leave the index;
// the relative order of the survivors — which the stable TopK sort depends
// on — is preserved.
func (ts *TupleSearch) RemoveTable(name string) error {
	keptT := ts.tuples[:0]
	keptV := ts.vecs[:0]
	found := false
	for i := range ts.tuples {
		if ts.tuples[i].Table.Name == name {
			found = true
			continue
		}
		keptT = append(keptT, ts.tuples[i])
		keptV = append(keptV, ts.vecs[i])
	}
	if !found {
		return fmt.Errorf("tuplesearch: RemoveTable(%q): %w", name, ErrUnknownTable)
	}
	ts.tuples, ts.vecs = keptT, keptV
	return nil
}

// TopK returns the k tuples most similar to the query table's tuples.
// Query embedding and per-tuple scoring both run in parallel; scores are
// written by tuple index, so the stable sort sees the same input for every
// worker count.
func (ts *TupleSearch) TopK(query *table.Table, k int) []ScoredTuple {
	out, _ := ts.TopKContext(context.Background(), query, k)
	return out
}

// TopKContext is TopK with a cancellation path (the tuple-level analogue of
// ContextSearcher, typed for tuple hits): once ctx is cancelled the
// remaining tuples are not scored and ctx.Err() is returned.
func (ts *TupleSearch) TopKContext(ctx context.Context, query *table.Table, k int) ([]ScoredTuple, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	headers := query.Headers()
	rows := make([][]string, query.NumRows())
	for r := range rows {
		rows[r] = query.Row(r)
	}
	qVecs := ts.enc.EncodeTupleBatch(headers, rows, ts.workers)
	out := make([]ScoredTuple, len(ts.tuples))
	copy(out, ts.tuples)
	if err := par.ForCtx(ctx, ts.workers, len(out), func(i int) {
		best := 0.0
		for _, qv := range qVecs {
			if sim := vector.Cosine(qv, ts.vecs[i]); sim > best {
				best = sim
			}
		}
		out[i].Score = best
	}); err != nil {
		return nil, err
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}
