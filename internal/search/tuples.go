package search

import (
	"context"
	"fmt"
	"math"
	"sort"

	"dust/internal/ann"
	"dust/internal/embed"
	"dust/internal/par"
	"dust/internal/table"
	"dust/internal/vector"
)

// ScoredTuple is a tuple-level search hit.
type ScoredTuple struct {
	Table *table.Table
	Row   int
	Score float64
}

// TupleSearch adapts Starmie to tuple retrieval the way the paper does for
// the Table 3 baseline: "we index each tuple in the data lake as a separate
// table and search for the top-k tables" (§6.5.1). Each tuple is embedded
// with the Starmie base model; a tuple's score is its maximum similarity to
// any query tuple, so the top of the ranking is dominated by tuples most
// similar to — often identical to — the query's own rows, which is exactly
// the redundancy phenomenon DUST addresses.
type TupleSearch struct {
	enc     *embed.Encoder
	workers int
	// quantized selects SQ8 storage for graphs this searcher builds
	// (WithQuantized); loaded graphs keep their stored representation.
	quantized bool
	tuples    []ScoredTuple // score unused at index time
	vecs      []vector.Vec

	// Staged retrieval state (mode ANN), the tuple-level analogue of
	// Starmie's: an HNSW graph over every tuple embedding. annTuples and
	// annVecs are id-parallel shadows of tuples/vecs that survive the
	// compactions RemoveTable applies to the primary slices (tombstoned
	// ids keep stale entries until a rebuild); annIDs maps a table to its
	// live node ids.
	mode      Mode
	graph     *ann.Index
	annTuples []ScoredTuple
	annVecs   []vector.Vec
	annIDs    map[string][]int
	// Oversample and EfSearch shape the candidate stage exactly as on
	// Starmie: ceil(Oversample*k) nearest tuples per query tuple.
	Oversample float64
	EfSearch   int
	// manualCompact mirrors Starmie's: SetAutoCompact(false) moves graph
	// compaction off the mutation path and into explicit Compact calls.
	manualCompact bool
}

// NewTupleSearch indexes every tuple of the given tables. Embedding runs
// as one parallel map over the flattened (headers, row) work list so the
// full worker budget applies even when the lake is many small tables.
func NewTupleSearch(tables []*table.Table, opts ...Option) *TupleSearch {
	o := applyOptions(opts)
	ts := &TupleSearch{
		enc:        embed.NewRoBERTa(),
		workers:    o.workers,
		quantized:  o.quantized,
		Oversample: DefaultOversample,
		EfSearch:   DefaultEfSearch,
	}
	type job struct {
		headers []string
		row     []string
	}
	var jobs []job
	for _, t := range tables {
		headers := t.Headers()
		for r := 0; r < t.NumRows(); r++ {
			ts.tuples = append(ts.tuples, ScoredTuple{Table: t, Row: r})
			jobs = append(jobs, job{headers, t.Row(r)})
		}
	}
	ts.vecs = par.Map(ts.workers, len(jobs), func(i int) vector.Vec {
		return ts.enc.EncodeTuple(jobs[i].headers, jobs[i].row)
	})
	if o.mode != Exact {
		_ = ts.SetMode(o.mode)
	}
	return ts
}

// Name identifies the baseline in experiment output.
func (ts *TupleSearch) Name() string {
	if ts.mode == ANN {
		return "starmie-tuples+ann"
	}
	return "starmie-tuples"
}

// SetMode is the tuple-level analogue of Staged.SetMode (TupleSearch is
// not a table-level Searcher, so it cannot implement the interface):
// ANN retrieves candidates from an HNSW graph over the tuple embeddings
// and re-scores them exactly; Exact restores the full scan.
func (ts *TupleSearch) SetMode(m Mode) error {
	switch m {
	case Exact:
	case ANN:
		if ts.graph == nil {
			ts.buildGraph()
		}
	default:
		return fmt.Errorf("tuplesearch: SetMode(%d): %w", int(m), ErrUnknownMode)
	}
	ts.mode = m
	return nil
}

// RetrievalMode reports the active retrieval backend.
func (ts *TupleSearch) RetrievalMode() Mode { return ts.mode }

// buildGraph indexes every tuple embedding, in index order, through the
// batch-parallel ann.Build (ids equal slice positions, matching the
// bookkeeping the incremental annAddOne path would produce).
func (ts *TupleSearch) buildGraph() {
	ts.annTuples = append([]ScoredTuple(nil), ts.tuples...)
	ts.annVecs = append([]vector.Vec(nil), ts.vecs...)
	ts.annIDs = make(map[string][]int)
	vecs := make([]vector.Vec32, len(ts.vecs))
	for i, v := range ts.vecs {
		vecs[i] = vector.ToVec32(v)
	}
	ts.graph = ann.Build(ts.enc.Dim(), vecs, ann.Config{Quantized: ts.quantized}, ts.workers)
	for i := range ts.annTuples {
		name := ts.annTuples[i].Table.Name
		ts.annIDs[name] = append(ts.annIDs[name], i)
	}
}

// IndexBytes implements IndexSizer: the storage mode and estimated
// resident bytes of the installed candidate graph.
func (ts *TupleSearch) IndexBytes() (string, int64) { return indexBytes(ts.graph) }

// SetOversample implements Tunable; v <= 0 restores the default.
func (ts *TupleSearch) SetOversample(v float64) {
	if v <= 0 {
		v = DefaultOversample
	}
	ts.Oversample = v
}

// SetEfSearch implements Tunable; ef <= 0 restores the default.
func (ts *TupleSearch) SetEfSearch(ef int) {
	if ef <= 0 {
		ef = DefaultEfSearch
	}
	ts.EfSearch = ef
}

func (ts *TupleSearch) annAddOne(tu ScoredTuple, v vector.Vec) {
	id := ts.graph.Add(vector.ToVec32(v))
	ts.annTuples = append(ts.annTuples, tu)
	ts.annVecs = append(ts.annVecs, v)
	ts.annIDs[tu.Table.Name] = append(ts.annIDs[tu.Table.Name], id)
}

// maybeRebuild compacts the graph once tombstones dominate (the shared
// staleGraph policy), unless a maintainer owns compaction
// (SetAutoCompact(false)).
func (ts *TupleSearch) maybeRebuild() {
	if ts.manualCompact || !staleGraph(ts.graph) {
		return
	}
	ts.rebuildGraph()
}

// SetAutoCompact implements the Maintainable surface (typed locally, as
// with SetMode): with auto compaction off, mutations never rebuild the
// graph inline.
func (ts *TupleSearch) SetAutoCompact(on bool) { ts.manualCompact = !on }

// Compact rebuilds the graph from its live nodes when any tombstones
// exist, reporting whether a rebuild ran.
func (ts *TupleSearch) Compact() bool {
	if ts.graph == nil || ts.graph.Len() == ts.graph.Live() {
		return false
	}
	ts.rebuildGraph()
	return true
}

// MaintenanceStats reports the graph's tombstone debt.
func (ts *TupleSearch) MaintenanceStats() MaintenanceStats {
	var st MaintenanceStats
	if ts.graph != nil {
		st.GraphNodes = ts.graph.Len()
		st.GraphLive = ts.graph.Live()
		st.GraphDeletedFraction = ts.graph.DeletedFraction()
	}
	return st
}

// rebuildGraph compacts the graph from its live nodes, rebooking the
// id-parallel tuple shadows as ann.Compact reports the surviving ids.
func (ts *TupleSearch) rebuildGraph() {
	oldTuples, oldVecs := ts.annTuples, ts.annVecs
	ts.annTuples = nil
	ts.annVecs = nil
	ts.annIDs = make(map[string][]int, len(ts.annIDs))
	ts.graph = ts.graph.Compact(func(oldID, newID int) {
		tu := oldTuples[oldID]
		ts.annTuples = append(ts.annTuples, tu)
		ts.annVecs = append(ts.annVecs, oldVecs[oldID])
		ts.annIDs[tu.Table.Name] = append(ts.annIDs[tu.Table.Name], newID)
	})
}

// Len returns the number of indexed tuples.
func (ts *TupleSearch) Len() int { return len(ts.tuples) }

// AddTable implements Incremental: the table's tuples are embedded and
// appended, exactly where a from-scratch index over the mutated table list
// would place them. A table with no rows contributes no tuples (and is
// therefore unknown to RemoveTable).
func (ts *TupleSearch) AddTable(t *table.Table) error {
	for i := range ts.tuples {
		if ts.tuples[i].Table.Name == t.Name {
			return fmt.Errorf("tuplesearch: AddTable(%q): %w", t.Name, ErrDuplicateTable)
		}
	}
	headers := t.Headers()
	rows := make([][]string, t.NumRows())
	for r := range rows {
		rows[r] = t.Row(r)
		ts.tuples = append(ts.tuples, ScoredTuple{Table: t, Row: r})
	}
	vecs := ts.enc.EncodeTupleBatch(headers, rows, ts.workers)
	ts.vecs = append(ts.vecs, vecs...)
	if ts.graph != nil {
		for r := range rows {
			ts.annAddOne(ScoredTuple{Table: t, Row: r}, vecs[r])
		}
		ts.maybeRebuild()
	}
	return nil
}

// RemoveTable implements Incremental: the table's tuples leave the index;
// the relative order of the survivors — which the stable TopK sort depends
// on — is preserved.
func (ts *TupleSearch) RemoveTable(name string) error {
	keptT := ts.tuples[:0]
	keptV := ts.vecs[:0]
	found := false
	for i := range ts.tuples {
		if ts.tuples[i].Table.Name == name {
			found = true
			continue
		}
		keptT = append(keptT, ts.tuples[i])
		keptV = append(keptV, ts.vecs[i])
	}
	if !found {
		return fmt.Errorf("tuplesearch: RemoveTable(%q): %w", name, ErrUnknownTable)
	}
	ts.tuples, ts.vecs = keptT, keptV
	if ts.graph != nil {
		for _, id := range ts.annIDs[name] {
			if err := ts.graph.Remove(id); err != nil {
				// Ids come from annIDs bookkeeping and are always live.
				panic(err)
			}
		}
		delete(ts.annIDs, name)
		ts.maybeRebuild()
	}
	return nil
}

// TopK returns the k tuples most similar to the query table's tuples.
// Query embedding and per-tuple scoring both run in parallel; scores are
// written by tuple index, so the stable sort sees the same input for every
// worker count.
func (ts *TupleSearch) TopK(query *table.Table, k int) []ScoredTuple {
	out, _ := ts.TopKContext(context.Background(), query, k)
	return out
}

// PreparedTupleQuery is the tuple-level analogue of PreparedQuery: the
// query's tuple embeddings, computed once by PrepareTuples and reusable
// across every TupleSearch built from the same encoder family (the
// embeddings depend only on the deterministic base model, not on the
// index contents — so one preparation serves every shard of a
// partitioned tuple index).
type PreparedTupleQuery struct {
	query *table.Table
	vecs  []vector.Vec
}

// Query returns the query table the preparation was derived from.
func (p *PreparedTupleQuery) Query() *table.Table { return p.query }

// PrepareTuples embeds the query's tuples exactly once. The result feeds
// TopKPreparedContext on any number of indexes.
func (ts *TupleSearch) PrepareTuples(query *table.Table) *PreparedTupleQuery {
	headers := query.Headers()
	rows := make([][]string, query.NumRows())
	for r := range rows {
		rows[r] = query.Row(r)
	}
	return &PreparedTupleQuery{
		query: query,
		vecs:  ts.enc.EncodeTupleBatch(headers, rows, ts.workers),
	}
}

// TopKContext is TopK with a cancellation path (the tuple-level analogue of
// ContextSearcher, typed for tuple hits): once ctx is cancelled the
// remaining tuples are not scored and ctx.Err() is returned. In ANN mode
// the scan covers only the HNSW candidate pool instead of every tuple;
// k <= 0 asks for the full ranking, which only the exact scan provides.
func (ts *TupleSearch) TopKContext(ctx context.Context, query *table.Table, k int) ([]ScoredTuple, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return ts.TopKPreparedContext(ctx, ts.PrepareTuples(query), k)
}

// TopKPreparedContext is TopKContext minus the query embedding, which pq
// already carries — the scatter path of a sharded tuple index calls this so
// the embedding cost is paid once, not once per shard.
func (ts *TupleSearch) TopKPreparedContext(ctx context.Context, pq *PreparedTupleQuery, k int) ([]ScoredTuple, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	qVecs := pq.vecs
	if ts.mode == ANN && ts.graph != nil && k > 0 {
		return ts.topKANN(ctx, qVecs, k)
	}
	out := make([]ScoredTuple, len(ts.tuples))
	copy(out, ts.tuples)
	if err := par.ForCtx(ctx, ts.workers, len(out), func(i int) {
		best := 0.0
		for _, qv := range qVecs {
			if sim := vector.Cosine(qv, ts.vecs[i]); sim > best {
				best = sim
			}
		}
		out[i].Score = best
	}); err != nil {
		return nil, err
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// topKANN is the staged plan: retrieve ceil(Oversample*k) nearest tuples
// per query tuple from the graph, then score the deduplicated pool
// exactly. Candidates are ordered by node id — their insertion order,
// the same relative order the exact scan's stable sort ties on — so the
// ranking is deterministic and agrees with exact mode wherever the pool
// covers the true top k.
func (ts *TupleSearch) topKANN(ctx context.Context, qVecs []vector.Vec, k int) ([]ScoredTuple, error) {
	perTuple := int(math.Ceil(ts.Oversample * float64(k)))
	seen := make(map[int]bool)
	for _, qv := range qVecs {
		for _, id := range ts.graph.Search(vector.ToVec32(qv), perTuple, ts.EfSearch) {
			seen[id] = true
		}
	}
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]ScoredTuple, len(ids))
	if err := par.ForCtx(ctx, ts.workers, len(ids), func(i int) {
		id := ids[i]
		best := 0.0
		for _, qv := range qVecs {
			if sim := vector.Cosine(qv, ts.annVecs[id]); sim > best {
				best = sim
			}
		}
		out[i] = ts.annTuples[id]
		out[i].Score = best
	}); err != nil {
		return nil, err
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}
