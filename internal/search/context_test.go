package search

import (
	"context"
	"errors"
	"testing"

	"dust/internal/datagen"
)

func ctxLake() *datagen.Benchmark {
	return datagen.Generate("ctx-search", datagen.Config{
		Seed: 11, Domains: 3, TablesPerBase: 4, BaseRows: 30, MinRows: 8, MaxRows: 15,
	})
}

// TestTopKContextCancelled pins the cancellation contract of every
// searcher: a cancelled context yields (nil, context.Canceled), never a
// truncated ranking.
func TestTopKContextCancelled(t *testing.T) {
	b := ctxLake()
	q := b.Queries[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, s := range []ContextSearcher{NewStarmie(b.Lake), NewD3L(b.Lake)} {
		hits, err := s.TopKContext(ctx, q, 5)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: TopKContext = %v, want context.Canceled", s.Name(), err)
		}
		if hits != nil {
			t.Errorf("%s: cancelled TopKContext returned %d hits", s.Name(), len(hits))
		}
	}

	ts := NewTupleSearch(b.Lake.Tables())
	if _, err := ts.TopKContext(ctx, q, 5); !errors.Is(err, context.Canceled) {
		t.Errorf("tuplesearch: TopKContext = %v, want context.Canceled", err)
	}
}

// TestTopKContextMatchesTopK pins the background-context path to the plain
// TopK ranking.
func TestTopKContextMatchesTopK(t *testing.T) {
	b := ctxLake()
	q := b.Queries[0]
	for _, s := range []ContextSearcher{NewStarmie(b.Lake), NewD3L(b.Lake)} {
		want := s.TopK(q, 5)
		got, err := s.TopKContext(context.Background(), q, 5)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d hits, want %d", s.Name(), len(got), len(want))
		}
		for i := range want {
			if got[i].Table.Name != want[i].Table.Name || got[i].Score != want[i].Score {
				t.Fatalf("%s: hit %d = %s/%g, want %s/%g", s.Name(), i,
					got[i].Table.Name, got[i].Score, want[i].Table.Name, want[i].Score)
			}
		}
	}
}

// TestTopKCtxPlainSearcher covers the fallback for searchers without a
// context path.
func TestTopKCtxPlainSearcher(t *testing.T) {
	b := ctxLake()
	q := b.Queries[0]
	s := NewStarmie(b.Lake)
	plain := struct{ Searcher }{s} // hides TopKContext
	ctx, cancel := context.WithCancel(context.Background())
	if _, err := TopKCtx(ctx, plain, q, 5); err != nil {
		t.Fatalf("TopKCtx live ctx: %v", err)
	}
	cancel()
	if _, err := TopKCtx(ctx, plain, q, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("TopKCtx cancelled = %v, want context.Canceled", err)
	}
}

// TestCloneWithLakeIsolation pins the copy-on-write contract: mutations on
// a clone never change what the original searcher returns.
func TestCloneWithLakeIsolation(t *testing.T) {
	b := ctxLake()
	q := b.Queries[0]
	build := []func() Searcher{
		func() Searcher { return NewStarmie(b.Lake) },
		func() Searcher { return NewD3L(b.Lake) },
	}
	for _, f := range build {
		orig := f()
		want := orig.TopK(q, 5)

		l2 := b.Lake.Clone()
		clone := orig.(Cloner).CloneWithLake(l2).(Incremental)
		extra := b.Lake.Tables()[0].Clone("zz_cloned_extra")
		if err := l2.Add(extra); err != nil {
			t.Fatal(err)
		}
		if err := clone.AddTable(extra); err != nil {
			t.Fatalf("%s: clone AddTable: %v", orig.Name(), err)
		}
		victim := b.Lake.Names()[1]
		if err := clone.RemoveTable(victim); err != nil {
			t.Fatalf("%s: clone RemoveTable: %v", orig.Name(), err)
		}
		if err := l2.Remove(victim); err != nil {
			t.Fatal(err)
		}

		got := orig.TopK(q, 5)
		if len(got) != len(want) {
			t.Fatalf("%s: original changed after clone mutations: %d hits, want %d", orig.Name(), len(got), len(want))
		}
		for i := range want {
			if got[i].Table.Name != want[i].Table.Name || got[i].Score != want[i].Score {
				t.Fatalf("%s: original ranking changed after clone mutations at %d: %s/%g, want %s/%g",
					orig.Name(), i, got[i].Table.Name, got[i].Score, want[i].Table.Name, want[i].Score)
			}
		}
	}
}
