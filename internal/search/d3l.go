package search

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"dust/internal/embed"
	"dust/internal/lake"
	"dust/internal/minhash"
	"dust/internal/par"
	"dust/internal/table"
	"dust/internal/tokenize"
	"dust/internal/vector"
)

// D3L is the D3L-like union searcher: it aggregates five column
// unionability signals — header-name similarity, value overlap (MinHash),
// format (character-class profile), word-embedding similarity, and numeric
// distribution similarity — and scores a table by the mean best aggregate
// over the query's columns (§6.5.1). An LSH banding index shortlists
// value-overlap candidates so the signal does not require scanning the
// whole lake per column.
type D3L struct {
	lake    *lake.Lake
	enc     *embed.Encoder
	workers int
	// mode selects the retrieval stage: Exact scans the lake; ANN re-uses
	// the LSH banding index as the candidate generator (D3L's own pruning
	// structure — no separate HNSW graph to maintain) and re-scores the
	// bucketed candidates with the full five-signal aggregate.
	mode Mode

	hasher  *minhash.Hasher
	sigs    map[string][]minhash.Signature // per table: column signatures
	vecs    map[string][]vector.Vec        // per table: column word embeddings
	formats map[string][]formatProfile
	numeric map[string][]numericProfile
	lsh     *minhash.Index
}

// d3lBands is the LSH banding width of the value-overlap index; it must
// divide the hasher's signature length (128).
const d3lBands = 32

// d3lTableIndex holds the per-table signals computed during indexing.
type d3lTableIndex struct {
	sigs []minhash.Signature
	vecs []vector.Vec
	fps  []formatProfile
	nps  []numericProfile
}

// NewD3L indexes the lake. The five per-column signals are computed in
// parallel across tables; only the LSH inserts (which mutate the shared
// banding index) run sequentially, in table order, so the index layout is
// deterministic.
func NewD3L(l *lake.Lake, opts ...Option) *D3L {
	o := applyOptions(opts)
	d := &D3L{
		lake:    l,
		enc:     embed.NewFastText(),
		workers: o.workers,
		hasher:  minhash.NewHasher(128),
		sigs:    map[string][]minhash.Signature{},
		vecs:    map[string][]vector.Vec{},
		formats: map[string][]formatProfile{},
		numeric: map[string][]numericProfile{},
	}
	d.lsh, _ = minhash.NewIndex(d.hasher, d3lBands)
	tables := l.Tables()
	indexed := par.Map(d.workers, len(tables), func(ti int) d3lTableIndex {
		return d.indexTable(tables[ti])
	})
	for ti, t := range tables {
		d.install(t.Name, indexed[ti])
	}
	if o.mode != Exact {
		_ = d.SetMode(o.mode)
	}
	return d
}

// indexTable computes the five per-column signals for one table.
func (d *D3L) indexTable(t *table.Table) d3lTableIndex {
	n := t.NumCols()
	idx := d3lTableIndex{
		sigs: make([]minhash.Signature, n),
		vecs: make([]vector.Vec, n),
		fps:  make([]formatProfile, n),
		nps:  make([]numericProfile, n),
	}
	for i := range t.Columns {
		col := &t.Columns[i]
		idx.sigs[i] = d.hasher.Sign(col.Values)
		idx.vecs[i] = d.embedColumn(col)
		idx.fps[i] = profileFormat(col.Values)
		idx.nps[i] = profileNumeric(col.Values)
	}
	return idx
}

// install stores one table's signals and inserts its signatures into the
// LSH banding index.
func (d *D3L) install(name string, idx d3lTableIndex) {
	for i := range idx.sigs {
		d.lsh.AddSignature(name, idx.sigs[i])
	}
	d.sigs[name] = idx.sigs
	d.vecs[name] = idx.vecs
	d.formats[name] = idx.fps
	d.numeric[name] = idx.nps
}

// Name implements Searcher; the suffix keeps config tags distinct
// between the exact and the LSH-pruned query plans.
func (d *D3L) Name() string {
	if d.mode == ANN {
		return "d3l+lsh"
	}
	return "d3l"
}

// SetMode implements Staged. D3L's approximate backend is its LSH banding
// index rather than HNSW, so switching is free: the index already exists
// for the value-overlap signal.
func (d *D3L) SetMode(m Mode) error {
	if m != Exact && m != ANN {
		return fmt.Errorf("d3l: SetMode(%d): %w", int(m), ErrUnknownMode)
	}
	d.mode = m
	return nil
}

// RetrievalMode implements Staged.
func (d *D3L) RetrievalMode() Mode { return d.mode }

// Retriever implements Staged.
func (d *D3L) Retriever() Retriever {
	if d.mode == ANN {
		return lshRetriever{d}
	}
	return exactRetriever{d.lake}
}

// lshRetriever re-expresses D3L's pruning path (CandidateTables) through
// the staged Retriever interface: candidates are the tables sharing an
// LSH bucket with any query column. The limit is advisory — LSH buckets
// are set-shaped — and recall depends on value overlap, so queries whose
// unionable tables share few values retrieve less than the HNSW backends
// would.
type lshRetriever struct{ d *D3L }

func (lshRetriever) Name() string { return "lsh" }

func (r lshRetriever) Retrieve(ctx context.Context, query *table.Table, _ int) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sigs := make([]minhash.Signature, query.NumCols())
	for i := range query.Columns {
		sigs[i] = r.d.hasher.Sign(query.Columns[i].Values)
	}
	return r.d.candidateNamesSigned(sigs), nil
}

// candidateNamesSigned is the LSH retrieval stage for query-column
// signatures the caller already computed (TopKContext signs every column
// for the value-overlap score anyway), name-sorted for determinism.
func (d *D3L) candidateNamesSigned(sigs []minhash.Signature) []string {
	set := map[string]bool{}
	for _, sig := range sigs {
		for _, c := range d.lsh.QuerySig(sig) {
			set[c.Key] = true
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AddTable implements Incremental: only the new table's signals are
// computed; everything already indexed is untouched, so the update costs
// O(new table). The table must (also) be added to the lake before querying.
func (d *D3L) AddTable(t *table.Table) error {
	if _, ok := d.sigs[t.Name]; ok {
		return fmt.Errorf("d3l: AddTable(%q): %w", t.Name, ErrDuplicateTable)
	}
	d.install(t.Name, d.indexTable(t))
	return nil
}

// RemoveTable implements Incremental: the table's signals are dropped and
// its LSH entries tombstoned (the banding index compacts itself once dead
// entries dominate). Remove the table from the lake afterwards.
func (d *D3L) RemoveTable(name string) error {
	if _, ok := d.sigs[name]; !ok {
		return fmt.Errorf("d3l: RemoveTable(%q): %w", name, ErrUnknownTable)
	}
	delete(d.sigs, name)
	delete(d.vecs, name)
	delete(d.formats, name)
	delete(d.numeric, name)
	d.lsh.Remove(name)
	return nil
}

// QueryWorkers implements QueryBounded: the returned searcher shares this
// searcher's index (immutable after construction) and scores queries with
// at most n workers.
func (d *D3L) QueryWorkers(n int) Searcher {
	c := *d
	c.workers = n
	return &c
}

// SetAutoCompact implements Maintainable, delegating to the LSH banding
// index (D3L's only tombstoning structure).
func (d *D3L) SetAutoCompact(on bool) { d.lsh.SetAutoCompact(on) }

// Compact implements Maintainable: it compacts the LSH banding index,
// reporting whether any tombstones were reclaimed.
func (d *D3L) Compact() bool { return d.lsh.Compact() }

// MaintenanceStats implements Maintainable.
func (d *D3L) MaintenanceStats() MaintenanceStats {
	return MaintenanceStats{
		LSHEntries:      d.lsh.Len() + d.lsh.Dead(),
		LSHDead:         d.lsh.Dead(),
		LSHDeadFraction: d.lsh.DeadFraction(),
	}
}

// ModeView implements ModeViewer. D3L's approximate backend is its LSH
// banding index, which always exists, so a view of either mode is a free
// shallow copy.
func (d *D3L) ModeView(m Mode) (Searcher, bool) {
	if m == d.mode {
		return d, true
	}
	if m != Exact && m != ANN {
		return nil, false
	}
	c := *d
	c.mode = m
	return &c, true
}

// CloneWithLake implements Cloner: the clone is bound to l and owns its own
// signal maps and LSH banding index, sharing the per-column signature,
// vector, and profile slices (install replaces whole slices; nothing writes
// into one). Mutations on the clone leave this searcher — and queries in
// flight against it — untouched.
func (d *D3L) CloneWithLake(l *lake.Lake) Searcher {
	c := *d
	c.lake = l
	c.lsh = d.lsh.Clone()
	c.sigs = make(map[string][]minhash.Signature, len(d.sigs))
	for n, v := range d.sigs {
		c.sigs[n] = v
	}
	c.vecs = make(map[string][]vector.Vec, len(d.vecs))
	for n, v := range d.vecs {
		c.vecs[n] = v
	}
	c.formats = make(map[string][]formatProfile, len(d.formats))
	for n, v := range d.formats {
		c.formats[n] = v
	}
	c.numeric = make(map[string][]numericProfile, len(d.numeric))
	for n, v := range d.numeric {
		c.numeric[n] = v
	}
	return &c
}

func (d *D3L) embedColumn(col *table.Column) vector.Vec {
	var toks []string
	for _, v := range col.Values {
		toks = append(toks, tokenize.Words(v)...)
	}
	return d.enc.EncodeTokens(toks)
}

// columnScore aggregates the five signals for one query/candidate column
// pair.
func (d *D3L) columnScore(q *table.Column, qSig minhash.Signature, qVec vector.Vec, qFmt formatProfile, qNum numericProfile,
	t *table.Table, ci int) float64 {
	name := headerSimilarity(q.Name, t.Columns[ci].Name)
	value := minhash.Estimate(qSig, d.sigs[t.Name][ci])
	format := qFmt.similarity(d.formats[t.Name][ci])
	emb := math.Max(0, vector.Cosine(qVec, d.vecs[t.Name][ci]))
	dist := qNum.similarity(d.numeric[t.Name][ci])
	return (name + value + format + emb + dist) / 5
}

// TopK implements Searcher.
func (d *D3L) TopK(query *table.Table, k int) []Scored {
	out, _ := d.TopKContext(context.Background(), query, k)
	return out
}

// d3lPrepared is D3L's PreparedQuery: the per-column signatures, word
// embeddings, and profiles of the query, derived once. All four are
// corpus-independent, so any D3L index — every shard of a partitioned lake
// — accepts the preparation interchangeably.
type d3lPrepared struct {
	query *table.Table
	sigs  []minhash.Signature
	vecs  []vector.Vec
	fmts  []formatProfile
	nums  []numericProfile
}

// Query implements PreparedQuery.
func (p *d3lPrepared) Query() *table.Table { return p.query }

// Prepare implements PreparedSearcher: the query's five per-column signals
// are derived exactly once.
func (d *D3L) Prepare(query *table.Table) PreparedQuery {
	n := query.NumCols()
	p := &d3lPrepared{
		query: query,
		sigs:  make([]minhash.Signature, n),
		vecs:  make([]vector.Vec, n),
		fmts:  make([]formatProfile, n),
		nums:  make([]numericProfile, n),
	}
	for i := range query.Columns {
		col := &query.Columns[i]
		p.sigs[i] = d.hasher.Sign(col.Values)
		p.vecs[i] = d.embedColumn(col)
		p.fmts[i] = profileFormat(col.Values)
		p.nums[i] = profileNumeric(col.Values)
	}
	return p
}

// TopKContext implements ContextSearcher: the candidate scan stops scoring
// further tables once ctx is cancelled and the call returns ctx.Err().
func (d *D3L) TopKContext(ctx context.Context, query *table.Table, k int) ([]Scored, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t0 := time.Now()
	pq := d.Prepare(query)
	TraceFrom(ctx).AddEncode(t0)
	return d.TopKPrepared(ctx, pq, k)
}

// TopKPrepared implements PreparedSearcher: TopKContext minus the signal
// derivation, which pq already carries.
func (d *D3L) TopKPrepared(ctx context.Context, pq PreparedQuery, k int) ([]Scored, error) {
	p, ok := pq.(*d3lPrepared)
	if !ok {
		return nil, fmt.Errorf("d3l: %w: %T", ErrForeignPrepared, pq)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr := TraceFrom(ctx)
	t0 := time.Now()
	cands := d.lake.Tables()
	if d.mode == ANN && k > 0 {
		// The prepared signatures serve double duty: the value-overlap
		// score and, here, the LSH candidate lookup.
		names := d.candidateNamesSigned(p.sigs)
		if len(names) > 0 {
			// Empty LSH buckets (no value overlap anywhere) fall through
			// to the exact scan: a best-effort ranking, like exact mode,
			// beats turning a valid query into "no results".
			cands = cands[:0:0]
			for _, name := range names {
				if t := d.lake.Get(name); t != nil {
					cands = append(cands, t)
				}
			}
		}
	}
	tr.AddRetrieve(t0)
	t0 = time.Now()
	out, err := rankTablesCtx(ctx, cands, k, d.workers, func(t *table.Table) float64 {
		return d.scorePrepared(p, t)
	})
	if err == nil {
		tr.AddScore(t0)
	}
	return out, err
}

// scorePrepared is the exact five-signal table score under a prepared
// query: the mean best aggregate over the query's columns.
func (d *D3L) scorePrepared(p *d3lPrepared, t *table.Table) float64 {
	n := p.query.NumCols()
	if t.NumCols() == 0 || n == 0 {
		return 0
	}
	var sum float64
	for i := range p.query.Columns {
		best := 0.0
		for ci := range t.Columns {
			if s := d.columnScore(&p.query.Columns[i], p.sigs[i], p.vecs[i], p.fmts[i], p.nums[i], t, ci); s > best {
				best = s
			}
		}
		sum += best
	}
	return sum / float64(n)
}

// NominatePrepared implements PreparedNominator: the tables sharing an LSH
// bucket with any query column in ANN mode (depth is advisory — buckets are
// set-shaped), every lake table otherwise. An empty return means no bucket
// matched anywhere; the coordinator picks the fallback, mirroring the
// exact-scan fallback of TopKPrepared.
func (d *D3L) NominatePrepared(ctx context.Context, pq PreparedQuery, depth int) ([]string, error) {
	p, ok := pq.(*d3lPrepared)
	if !ok {
		return nil, fmt.Errorf("d3l: %w: %T", ErrForeignPrepared, pq)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if d.mode != ANN || depth <= 0 {
		return d.lake.Names(), nil
	}
	return d.candidateNamesSigned(p.sigs), nil
}

// ScorePrepared implements PreparedNominator.
func (d *D3L) ScorePrepared(pq PreparedQuery, t *table.Table) float64 {
	return d.scorePrepared(pq.(*d3lPrepared), t)
}

// Encoder exposes the word-embedding model of the value/embedding signal.
// Tests instrument it to count encoding calls — the prepared-query gate
// that proves a sharded query derives its signals exactly once.
func (d *D3L) Encoder() *embed.Encoder { return d.enc }

// CandidateTables returns lake table names sharing an LSH bucket with any
// of the query's columns — D3L's pruning path, exposed for tests and the
// pipeline's fast path on large lakes.
func (d *D3L) CandidateTables(query *table.Table) map[string]bool {
	out := map[string]bool{}
	for i := range query.Columns {
		for _, c := range d.lsh.Query(query.Columns[i].Values) {
			out[c.Key] = true
		}
	}
	return out
}

// headerSimilarity is token Jaccard between headers, with synonym classes
// from the embedding lexicon counted through the token set.
func headerSimilarity(a, b string) float64 {
	ta := tokenize.Words(a)
	tb := tokenize.Words(b)
	return minhash.ExactJaccard(ta, tb)
}

// formatProfile captures the distribution of character classes in a
// column's values (D3L's regex signal).
type formatProfile struct {
	letters, digits, punct, spaces float64
	avgLen                         float64
}

func profileFormat(values []string) formatProfile {
	var p formatProfile
	var total float64
	for _, v := range values {
		for _, r := range v {
			switch {
			case r >= '0' && r <= '9':
				p.digits++
			case r == ' ':
				p.spaces++
			case (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
				p.letters++
			default:
				p.punct++
			}
			total++
		}
		p.avgLen += float64(len(v))
	}
	if total > 0 {
		p.letters /= total
		p.digits /= total
		p.punct /= total
		p.spaces /= total
	}
	if len(values) > 0 {
		p.avgLen /= float64(len(values))
	}
	return p
}

func (p formatProfile) similarity(o formatProfile) float64 {
	d := math.Abs(p.letters-o.letters) + math.Abs(p.digits-o.digits) +
		math.Abs(p.punct-o.punct) + math.Abs(p.spaces-o.spaces)
	lenSim := 1.0
	if p.avgLen+o.avgLen > 0 {
		lenSim = 1 - math.Abs(p.avgLen-o.avgLen)/(p.avgLen+o.avgLen)
	}
	return math.Max(0, 1-d/2)*0.7 + lenSim*0.3
}

// numericProfile summarises the numeric values of a column.
type numericProfile struct {
	frac, mean, std float64 // fraction numeric, moments of numeric values
}

func profileNumeric(values []string) numericProfile {
	var p numericProfile
	var nums []float64
	for _, v := range values {
		if f, ok := parseNumber(v); ok {
			nums = append(nums, f)
		}
	}
	if len(values) > 0 {
		p.frac = float64(len(nums)) / float64(len(values))
	}
	if len(nums) == 0 {
		return p
	}
	for _, f := range nums {
		p.mean += f
	}
	p.mean /= float64(len(nums))
	for _, f := range nums {
		p.std += (f - p.mean) * (f - p.mean)
	}
	p.std = math.Sqrt(p.std / float64(len(nums)))
	return p
}

func (p numericProfile) similarity(o numericProfile) float64 {
	fracSim := 1 - math.Abs(p.frac-o.frac)
	if p.frac < 0.5 || o.frac < 0.5 {
		// Mostly non-numeric columns: only the numeric-fraction agreement
		// matters.
		return fracSim
	}
	meanSim := 0.0
	if denom := math.Abs(p.mean) + math.Abs(o.mean); denom > 0 {
		meanSim = 1 - math.Abs(p.mean-o.mean)/denom
	}
	stdSim := 0.0
	if denom := p.std + o.std; denom > 0 {
		stdSim = 1 - math.Abs(p.std-o.std)/denom
	}
	return (fracSim + meanSim + stdSim) / 3
}

func parseNumber(v string) (float64, bool) {
	v = strings.TrimSpace(strings.ReplaceAll(strings.TrimPrefix(v, "$"), ",", ""))
	if v == "" {
		return 0, false
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, false
	}
	return f, true
}
