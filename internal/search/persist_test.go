package search

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dust/internal/codec"
	"dust/internal/datagen"
	"dust/internal/lake"
	"dust/internal/table"
)

var update = flag.Bool("update", false, "rewrite golden index files in testdata/")

// persistBench returns a small deterministic benchmark shared by the
// round-trip and golden tests.
func persistBench(t testing.TB) *datagen.Benchmark {
	t.Helper()
	return datagen.Generate("persist-test", datagen.Config{
		Seed: 17, Domains: 2, TablesPerBase: 3, BaseRows: 20, MinRows: 6, MaxRows: 10,
	})
}

func sameScored(t *testing.T, got, want []Scored) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d hits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Table.Name != want[i].Table.Name || got[i].Score != want[i].Score {
			t.Fatalf("hit %d: got (%s, %v), want (%s, %v)",
				i, got[i].Table.Name, got[i].Score, want[i].Table.Name, want[i].Score)
		}
	}
}

func TestStarmieSaveLoadRoundTrip(t *testing.T) {
	b := persistBench(t)
	orig := NewStarmie(b.Lake)

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStarmie(bytes.NewReader(buf.Bytes()), b.Lake)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range b.Queries {
		sameScored(t, loaded.TopK(q, 8), orig.TopK(q, 8))
	}

	// A loaded index keeps working incrementally: mutate both sides and
	// results must stay identical.
	extra := table.New("postload_extra", "Myth", "Origin")
	extra.MustAppendRow("Kraken", "Norse")
	extra.MustAppendRow("Sphinx", "Egyptian")
	b.Lake.MustAdd(extra)
	if err := orig.AddTable(extra); err != nil {
		t.Fatal(err)
	}
	if err := loaded.AddTable(extra); err != nil {
		t.Fatal(err)
	}
	for _, q := range b.Queries {
		sameScored(t, loaded.TopK(q, 8), orig.TopK(q, 8))
	}
}

func TestD3LSaveLoadRoundTrip(t *testing.T) {
	b := persistBench(t)
	orig := NewD3L(b.Lake)

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadD3L(bytes.NewReader(buf.Bytes()), b.Lake)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range b.Queries {
		sameScored(t, loaded.TopK(q, 8), orig.TopK(q, 8))
		if got, want := loaded.CandidateTables(q), orig.CandidateTables(q); !reflect.DeepEqual(got, want) {
			t.Fatalf("query %s: candidates %v, want %v", q.Name, got, want)
		}
	}
}

func TestTupleSearchSaveLoadRoundTrip(t *testing.T) {
	b := persistBench(t)
	orig := NewTupleSearch(b.Lake.Tables())

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTupleSearch(bytes.NewReader(buf.Bytes()), b.Lake.Tables())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != orig.Len() {
		t.Fatalf("Len = %d, want %d", loaded.Len(), orig.Len())
	}
	for _, q := range b.Queries[:2] {
		got, want := loaded.TopK(q, 10), orig.TopK(q, 10)
		if len(got) != len(want) {
			t.Fatalf("got %d hits, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i].Table.Name != want[i].Table.Name || got[i].Row != want[i].Row || got[i].Score != want[i].Score {
				t.Fatalf("hit %d: got (%s, %d, %v), want (%s, %d, %v)", i,
					got[i].Table.Name, got[i].Row, got[i].Score,
					want[i].Table.Name, want[i].Row, want[i].Score)
			}
		}
	}
}

// saveAll serializes all three indexes over the benchmark lake.
func saveAll(t testing.TB, b *datagen.Benchmark) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	var buf bytes.Buffer
	if err := NewStarmie(b.Lake).Save(&buf); err != nil {
		t.Fatal(err)
	}
	out["starmie"] = append([]byte{}, buf.Bytes()...)
	buf.Reset()
	if err := NewD3L(b.Lake).Save(&buf); err != nil {
		t.Fatal(err)
	}
	out["d3l"] = append([]byte{}, buf.Bytes()...)
	buf.Reset()
	if err := NewTupleSearch(b.Lake.Tables()).Save(&buf); err != nil {
		t.Fatal(err)
	}
	out["tuples"] = append([]byte{}, buf.Bytes()...)
	return out
}

// loadAny dispatches raw bytes to the loader matching name.
func loadAny(name string, data []byte, b *datagen.Benchmark) error {
	switch name {
	case "starmie":
		_, err := LoadStarmie(bytes.NewReader(data), b.Lake)
		return err
	case "d3l":
		_, err := LoadD3L(bytes.NewReader(data), b.Lake)
		return err
	case "tuples":
		_, err := LoadTupleSearch(bytes.NewReader(data), b.Lake.Tables())
		return err
	}
	panic("unknown index " + name)
}

// TestGoldenIndexes pins the on-disk format: indexes saved by older builds
// must keep loading byte-for-byte. Regenerate with `go test -run Golden
// -update ./internal/search` after an intentional format-version bump.
func TestGoldenIndexes(t *testing.T) {
	b := persistBench(t)
	fresh := saveAll(t, b)
	for name, data := range fresh {
		path := filepath.Join("testdata", "golden_"+name+".idx")
		if *update {
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		golden, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden file (run with -update): %v", err)
		}
		if err := loadAny(name, golden, b); err != nil {
			t.Errorf("%s: golden index no longer loads: %v", name, err)
		}
		if !bytes.Equal(golden, data) {
			t.Errorf("%s: serialization changed without a format-version bump (len %d -> %d)",
				name, len(golden), len(data))
		}
	}
}

func TestLoadErrorPaths(t *testing.T) {
	b := persistBench(t)
	for name, valid := range saveAll(t, b) {
		t.Run(name, func(t *testing.T) {
			cases := []struct {
				name  string
				bytes []byte
				want  error
			}{
				{"empty", nil, codec.ErrBadMagic},
				{"bad magic", []byte("not an index file at all........"), codec.ErrBadMagic},
				{"truncated header", valid[:12], codec.ErrTruncated},
				{"truncated payload", valid[:len(valid)/2], codec.ErrTruncated},
				{"truncated crc", valid[:len(valid)-2], codec.ErrTruncated},
				{"checksum flip", flipByte(valid, len(valid)/2), codec.ErrChecksum},
				{"future version", bumpVersion(valid), codec.ErrVersion},
			}
			for _, c := range cases {
				t.Run(c.name, func(t *testing.T) {
					err := loadAny(name, c.bytes, b)
					if !errors.Is(err, c.want) {
						t.Errorf("err = %v, want %v", err, c.want)
					}
				})
			}
			// Wrong kind: feed each index to a different family's loader.
			other := map[string]string{"starmie": "d3l", "d3l": "tuples", "tuples": "starmie"}[name]
			if err := loadAny(other, valid, b); !errors.Is(err, codec.ErrWrongKind) {
				t.Errorf("cross-kind load err = %v, want ErrWrongKind", err)
			}
		})
	}
}

func TestLoadLakeMismatch(t *testing.T) {
	b := persistBench(t)
	saved := saveAll(t, b)

	// A lake with one extra table no longer matches the index.
	bigger := lake.New("bigger")
	for _, tab := range b.Lake.Tables() {
		bigger.MustAdd(tab)
	}
	extra := table.New("straggler", "a")
	extra.MustAppendRow("x")
	bigger.MustAdd(extra)
	for _, name := range []string{"starmie", "d3l"} {
		err := func() error {
			if name == "starmie" {
				_, err := LoadStarmie(bytes.NewReader(saved[name]), bigger)
				return err
			}
			_, err := LoadD3L(bytes.NewReader(saved[name]), bigger)
			return err
		}()
		if !errors.Is(err, ErrLakeMismatch) {
			t.Errorf("%s vs bigger lake: err = %v, want ErrLakeMismatch", name, err)
		}
	}

	// A lake missing an indexed table fails too (same size, different set).
	swapped := lake.New("swapped")
	tables := b.Lake.Tables()
	for _, tab := range tables[1:] {
		swapped.MustAdd(tab)
	}
	swapped.MustAdd(extra)
	if _, err := LoadStarmie(bytes.NewReader(saved["starmie"]), swapped); !errors.Is(err, ErrLakeMismatch) {
		t.Errorf("starmie vs swapped lake: err = %v, want ErrLakeMismatch", err)
	}
	if _, err := LoadD3L(bytes.NewReader(saved["d3l"]), swapped); !errors.Is(err, ErrLakeMismatch) {
		t.Errorf("d3l vs swapped lake: err = %v, want ErrLakeMismatch", err)
	}
	if _, err := LoadTupleSearch(bytes.NewReader(saved["tuples"]), swapped.Tables()); !errors.Is(err, ErrLakeMismatch) {
		t.Errorf("tuples vs swapped tables: err = %v, want ErrLakeMismatch", err)
	}
}

func TestSaveRefusesOutOfSyncIndex(t *testing.T) {
	b := persistBench(t)
	s := NewStarmie(b.Lake)
	d := NewD3L(b.Lake)
	orphan := table.New("orphan", "a")
	orphan.MustAppendRow("x")
	b.Lake.MustAdd(orphan)
	defer func() {
		if err := b.Lake.Remove("orphan"); err != nil {
			t.Fatal(err)
		}
	}()
	if err := s.Save(&bytes.Buffer{}); !errors.Is(err, ErrLakeMismatch) {
		t.Errorf("starmie save err = %v, want ErrLakeMismatch", err)
	}
	if err := d.Save(&bytes.Buffer{}); !errors.Is(err, ErrLakeMismatch) {
		t.Errorf("d3l save err = %v, want ErrLakeMismatch", err)
	}
}

func flipByte(data []byte, i int) []byte {
	out := append([]byte{}, data...)
	out[i] ^= 0x40
	return out
}

// bumpVersion rewrites the envelope's version field to a future value and
// fixes nothing else; loaders must refuse it before touching the payload.
func bumpVersion(data []byte) []byte {
	out := append([]byte{}, data...)
	out[7], out[8] = 0xFF, 0x7F
	return out
}

func ExampleStarmie_Save() {
	l := lake.New("demo")
	parks := table.New("parks", "Park", "City")
	parks.MustAppendRow("River Park", "Fresno")
	l.MustAdd(parks)

	var buf bytes.Buffer
	if err := NewStarmie(l).Save(&buf); err != nil {
		fmt.Println("save:", err)
		return
	}
	loaded, err := LoadStarmie(bytes.NewReader(buf.Bytes()), l)
	if err != nil {
		fmt.Println("load:", err)
		return
	}
	fmt.Println(loaded.Name(), "reloaded")
	// Output: starmie reloaded
}
