package search

import (
	"testing"

	"dust/internal/datagen"
)

func parallelBenchmark() *datagen.Benchmark {
	return datagen.Generate("par-search", datagen.Config{
		Seed: 77, Domains: 4, TablesPerBase: 5, BaseRows: 40, MinRows: 10, MaxRows: 20,
	})
}

func assertSameHits(t *testing.T, label string, got, want []Scored) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d hits, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Table.Name != want[i].Table.Name || got[i].Score != want[i].Score {
			t.Fatalf("%s: hit %d = (%s, %v), want (%s, %v)", label, i,
				got[i].Table.Name, got[i].Score, want[i].Table.Name, want[i].Score)
		}
	}
}

func TestStarmieTopKDeterministicAcrossWorkers(t *testing.T) {
	b := parallelBenchmark()
	seq := NewStarmie(b.Lake, WithWorkers(1))
	for _, workers := range []int{2, 8} {
		par := NewStarmie(b.Lake, WithWorkers(workers))
		for _, q := range b.Queries {
			assertSameHits(t, "starmie", par.TopK(q, 8), seq.TopK(q, 8))
		}
	}
}

func TestD3LTopKDeterministicAcrossWorkers(t *testing.T) {
	b := parallelBenchmark()
	seq := NewD3L(b.Lake, WithWorkers(1))
	for _, workers := range []int{2, 8} {
		par := NewD3L(b.Lake, WithWorkers(workers))
		for _, q := range b.Queries {
			assertSameHits(t, "d3l", par.TopK(q, 8), seq.TopK(q, 8))
		}
	}
}

func TestTupleSearchDeterministicAcrossWorkers(t *testing.T) {
	b := parallelBenchmark()
	seq := NewTupleSearch(b.Lake.Tables(), WithWorkers(1))
	q := b.Queries[0]
	want := seq.TopK(q, 20)
	for _, workers := range []int{2, 8} {
		par := NewTupleSearch(b.Lake.Tables(), WithWorkers(workers))
		got := par.TopK(q, 20)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: got %d hits, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i].Table.Name != want[i].Table.Name || got[i].Row != want[i].Row ||
				got[i].Score != want[i].Score {
				t.Fatalf("workers=%d: hit %d = (%s, %d, %v), want (%s, %d, %v)",
					workers, i, got[i].Table.Name, got[i].Row, got[i].Score,
					want[i].Table.Name, want[i].Row, want[i].Score)
			}
		}
	}
}
