package search

import (
	"math"
	"testing"

	"dust/internal/datagen"
	"dust/internal/lake"
	"dust/internal/table"
)

func testBench(t *testing.T) *datagen.Benchmark {
	t.Helper()
	return datagen.Generate("search-test", datagen.Config{
		Seed: 71, Domains: 5, TablesPerBase: 6, BaseRows: 60, MinRows: 15, MaxRows: 30,
	})
}

func TestStarmieRetrievesUnionableTables(t *testing.T) {
	b := testBench(t)
	s := NewStarmie(b.Lake)
	q := b.Queries[0]
	truth := map[string]bool{}
	for _, n := range b.Unionable[q.Name] {
		truth[n] = true
	}
	hits := 0
	for _, sc := range s.TopK(q, 6) {
		if truth[sc.Table.Name] {
			hits++
		}
	}
	if hits < 4 {
		t.Errorf("starmie top-6 contains %d/6 unionable tables, want >= 4", hits)
	}
}

func TestStarmieMAPReasonable(t *testing.T) {
	b := testBench(t)
	s := NewStarmie(b.Lake)
	m := MAP(s, b, 6)
	if m < 0.6 {
		t.Errorf("starmie MAP = %v, want >= 0.6", m)
	}
	if m > 1.0001 {
		t.Errorf("MAP = %v out of range", m)
	}
}

func TestD3LRetrievesUnionableTables(t *testing.T) {
	b := testBench(t)
	d := NewD3L(b.Lake)
	m := MAP(d, b, 6)
	if m < 0.6 {
		t.Errorf("d3l MAP = %v, want >= 0.6", m)
	}
}

func TestSearchersRankedDescending(t *testing.T) {
	b := testBench(t)
	for _, s := range []Searcher{NewStarmie(b.Lake), NewD3L(b.Lake)} {
		res := s.TopK(b.Queries[0], 10)
		for i := 1; i < len(res); i++ {
			if res[i].Score > res[i-1].Score {
				t.Errorf("%s results not sorted at %d", s.Name(), i)
			}
		}
	}
}

func TestTopKBounds(t *testing.T) {
	b := testBench(t)
	s := NewStarmie(b.Lake)
	if got := len(s.TopK(b.Queries[0], 3)); got != 3 {
		t.Errorf("TopK(3) = %d results", got)
	}
	if got := len(s.TopK(b.Queries[0], 0)); got != b.Lake.Len() {
		t.Errorf("TopK(0) = %d results, want all %d", got, b.Lake.Len())
	}
}

func TestD3LCandidateTablesCoverUnionable(t *testing.T) {
	b := testBench(t)
	d := NewD3L(b.Lake)
	q := b.Queries[0]
	cands := d.CandidateTables(q)
	found := 0
	for _, n := range b.Unionable[q.Name] {
		if cands[n] {
			found++
		}
	}
	if found < len(b.Unionable[q.Name])/2 {
		t.Errorf("LSH candidates cover %d/%d unionable tables", found, len(b.Unionable[q.Name]))
	}
}

func TestHeaderSimilarity(t *testing.T) {
	if got := headerSimilarity("Park Name", "Park Name"); got != 1 {
		t.Errorf("identical headers similarity = %v", got)
	}
	if got := headerSimilarity("Park Name", "Name of Park"); got <= 0.3 {
		t.Errorf("overlapping headers similarity = %v, want > 0.3", got)
	}
	if got := headerSimilarity("Budget", "Species"); got != 0 {
		t.Errorf("disjoint headers similarity = %v, want 0", got)
	}
}

func TestFormatProfile(t *testing.T) {
	phoneProfile := profileFormat([]string{"773 731-0380", "773 284-7328"})
	nameProfile := profileFormat([]string{"River Park", "Hyde Park"})
	moneyProfile := profileFormat([]string{"$12,300,000", "$8,100,000"})
	if s := phoneProfile.similarity(moneyProfile); s >= phoneProfile.similarity(profileFormat([]string{"771 555-0100"})) {
		t.Errorf("phone should be closer to phone than to money (got %v)", s)
	}
	if s := nameProfile.similarity(phoneProfile); s > 0.8 {
		t.Errorf("name/phone format similarity = %v, want < 0.8", s)
	}
	empty := profileFormat(nil)
	if empty.similarity(empty) < 0.99 {
		t.Error("empty profiles should be similar to themselves")
	}
}

func TestNumericProfile(t *testing.T) {
	a := profileNumeric([]string{"10", "12", "11"})
	b := profileNumeric([]string{"11", "13", "10"})
	c := profileNumeric([]string{"90000", "120000"})
	text := profileNumeric([]string{"hello", "world"})
	if a.similarity(b) <= a.similarity(c) {
		t.Error("close numeric distributions should be more similar than distant ones")
	}
	if text.frac != 0 {
		t.Errorf("text column numeric fraction = %v", text.frac)
	}
	if a.similarity(text) > 0.5 {
		t.Errorf("numeric/text similarity = %v, want low", a.similarity(text))
	}
}

func TestParseNumber(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"42", 42, true},
		{"$1,200", 1200, true},
		{" 3.5 ", 3.5, true},
		{"abc", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, ok := parseNumber(c.in)
		if ok != c.ok || (ok && math.Abs(got-c.want) > 1e-12) {
			t.Errorf("parseNumber(%q) = %v,%v want %v,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestTupleSearchFavorsQueryDuplicates(t *testing.T) {
	// Build a lake table containing an exact copy of a query tuple plus
	// novel tuples: the duplicate must rank first (the redundancy
	// phenomenon of Example 1 / Table 3).
	q := table.New("q", "Park Name", "Country")
	q.MustAppendRow("River Park", "USA")
	q.MustAppendRow("Hyde Park", "UK")

	lt := table.New("lt", "Park Name", "Country")
	lt.MustAppendRow("Chippewa Park", "USA")
	lt.MustAppendRow("River Park", "USA") // duplicate of query row 0
	lt.MustAppendRow("Lawler Park", "USA")

	ts := NewTupleSearch([]*table.Table{lt})
	if ts.Len() != 3 {
		t.Fatalf("indexed %d tuples", ts.Len())
	}
	res := ts.TopK(q, 3)
	if res[0].Row != 1 {
		t.Errorf("top tuple = row %d, want the duplicate (row 1)", res[0].Row)
	}
	if res[0].Score <= res[1].Score {
		t.Error("duplicate should strictly outscore novel tuples")
	}
}

func TestMAPEmptyBenchmark(t *testing.T) {
	b := &datagen.Benchmark{}
	if MAP(NewStarmie(lake.New("empty")), b, 5) != 0 {
		t.Error("MAP of empty benchmark should be 0")
	}
}
