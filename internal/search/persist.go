package search

import (
	"fmt"
	"io"
	"sort"

	"dust/internal/ann"
	"dust/internal/codec"
	"dust/internal/embed"
	"dust/internal/lake"
	"dust/internal/minhash"
	"dust/internal/table"
	"dust/internal/tokenize"
	"dust/internal/vector"
)

// Payload format versions. Bump when a payload layout changes; loaders
// refuse files declaring a newer version (codec.ErrVersion), so an old
// binary never misreads a new index.
const (
	StarmieFormatVersion uint16 = 1
	D3LFormatVersion     uint16 = 1
	TuplesFormatVersion  uint16 = 1
	// ANNFormatVersion is the HNSW candidate-graph payload version
	// (codec.KindANN): encoder identity, node-to-table mapping, graph.
	// Version 2 added the storage flag and SQ8 quantized layout; version
	// 1 files (float-only) remain loadable.
	ANNFormatVersion uint16 = 2
)

// Save writes the Starmie index — encoder identity, corpus document
// frequencies, and every table's column embeddings — as one versioned,
// checksummed envelope. The index must cover the lake exactly.
func (s *Starmie) Save(w io.Writer) error {
	tables := s.lake.Tables()
	if len(tables) != len(s.cols) {
		return fmt.Errorf("starmie: save: index holds %d tables, lake holds %d: %w",
			len(s.cols), len(tables), ErrLakeMismatch)
	}
	var b codec.Buffer
	b.String(s.enc.Name())
	b.String(s.enc.Model.Fingerprint())
	b.Int(s.enc.Dim())
	b.Float64(s.enc.ContextWeight)
	b.Float64(s.MinSim)

	b.Int(s.corpus.NumDocs())
	type df struct {
		tok string
		n   int
	}
	var freqs []df
	s.corpus.DocFreqs(func(tok string, n int) { freqs = append(freqs, df{tok, n}) })
	sort.Slice(freqs, func(i, j int) bool { return freqs[i].tok < freqs[j].tok })
	b.Int(len(freqs))
	for _, f := range freqs {
		b.String(f.tok)
		b.Int(f.n)
	}

	b.Int(len(tables))
	for _, t := range tables {
		cols, ok := s.cols[t.Name]
		if !ok {
			return fmt.Errorf("starmie: save: lake table %q not indexed: %w", t.Name, ErrLakeMismatch)
		}
		b.String(t.Name)
		b.Bool(s.big[t.Name])
		b.Int(len(cols))
		for _, v := range cols {
			b.Float64s(v)
		}
	}
	return codec.WriteEnvelope(w, codec.KindStarmie, StarmieFormatVersion, b.Bytes())
}

// LoadStarmie reads an index written by Starmie.Save and attaches it to l,
// which must hold exactly the saved table set (lake iteration order may
// differ; TopK results do not depend on it). The index must have been built
// with the default NewStarmie encoder — a different encoder name, base
// model, or dimension fails with ErrEncoderMismatch.
func LoadStarmie(r io.Reader, l *lake.Lake, opts ...Option) (*Starmie, error) {
	_, payload, err := codec.ReadEnvelope(r, codec.KindStarmie, StarmieFormatVersion)
	if err != nil {
		return nil, fmt.Errorf("starmie: load: %w", err)
	}
	o := applyOptions(opts)
	s := &Starmie{
		enc:        embed.NewStarmie(),
		lake:       l,
		corpus:     &tokenize.Corpus{},
		cols:       make(map[string][]vector.Vec, l.Len()),
		big:        make(map[string]bool),
		workers:    o.workers,
		quantized:  o.quantized,
		Oversample: DefaultOversample,
		EfSearch:   DefaultEfSearch,
	}

	sc := codec.NewScanner(payload)
	encName := sc.String()
	modelPrint := sc.String()
	dim := sc.Int()
	contextWeight := sc.Float64()
	s.MinSim = sc.Float64()

	numDocs := sc.Int()
	nFreqs := sc.Int()
	docFreq := make(map[string]int, nFreqs)
	for i := 0; i < nFreqs && sc.Err() == nil; i++ {
		tok := sc.String()
		docFreq[tok] = sc.Int()
	}

	nTables := sc.Int()
	type saved struct {
		name string
		cols []vector.Vec
	}
	tabs := make([]saved, 0, nTables)
	for i := 0; i < nTables && sc.Err() == nil; i++ {
		name := sc.String()
		big := sc.Bool()
		ncols := sc.Int()
		cols := make([]vector.Vec, 0, ncols)
		for c := 0; c < ncols && sc.Err() == nil; c++ {
			v := sc.Float64s()
			if sc.Err() == nil && len(v) != dim {
				return nil, fmt.Errorf("starmie: load: table %q column %d has dim %d, want %d: %w",
					name, c, len(v), dim, codec.ErrCorrupt)
			}
			cols = append(cols, v)
		}
		tabs = append(tabs, saved{name, cols})
		if big {
			s.big[name] = true
		}
	}
	if err := sc.Finish(); err != nil {
		return nil, fmt.Errorf("starmie: load: %w", err)
	}

	if encName != s.enc.Name() || modelPrint != s.enc.Model.Fingerprint() || dim != s.enc.Dim() {
		return nil, fmt.Errorf("starmie: load: index built with %s/%s, searcher uses %s/%s: %w",
			encName, modelPrint, s.enc.Name(), s.enc.Model.Fingerprint(), ErrEncoderMismatch)
	}
	s.enc.ContextWeight = contextWeight
	s.corpus.Restore(numDocs, docFreq)

	if len(tabs) != l.Len() {
		return nil, fmt.Errorf("starmie: load: index holds %d tables, lake holds %d: %w",
			len(tabs), l.Len(), ErrLakeMismatch)
	}
	for _, t := range tabs {
		lt := l.Get(t.name)
		if lt == nil {
			return nil, fmt.Errorf("starmie: load: indexed table %q not in lake: %w", t.name, ErrLakeMismatch)
		}
		if lt.NumCols() != len(t.cols) {
			return nil, fmt.Errorf("starmie: load: table %q has %d columns, index holds %d: %w",
				t.name, lt.NumCols(), len(t.cols), ErrLakeMismatch)
		}
		s.cols[t.name] = t.cols
	}
	if o.mode != Exact {
		_ = s.SetMode(o.mode)
	}
	return s, nil
}

// SaveANN writes the Starmie searcher's HNSW candidate graph — encoder
// identity, the node-to-table mapping, and the graph itself — as one
// versioned, checksummed envelope, so a warm start skips the O(n log n)
// graph build the way it skips re-embedding. The graph exists after
// SetMode(ANN); saving a graphless searcher is an error.
func (s *Starmie) SaveANN(w io.Writer) error {
	if s.graph == nil {
		return fmt.Errorf("starmie: save ann: no candidate graph (SetMode(ANN) first)")
	}
	var b codec.Buffer
	b.String(s.enc.Name())
	b.String(s.enc.Model.Fingerprint())
	b.Int(s.enc.Dim())
	b.Strings(s.annTables)
	s.graph.Encode(&b)
	return codec.WriteEnvelope(w, codec.KindANN, ANNFormatVersion, b.Bytes())
}

// LoadANN installs a candidate graph written by SaveANN into this
// searcher, validating encoder identity and that the graph's live nodes
// cover the indexed column embeddings exactly (one live node per indexed
// column, per table). It does not switch retrieval modes — call
// SetMode(ANN), which reuses the installed graph instead of rebuilding.
func (s *Starmie) LoadANN(r io.Reader) error {
	version, payload, err := codec.ReadEnvelope(r, codec.KindANN, ANNFormatVersion)
	if err != nil {
		return fmt.Errorf("starmie: load ann: %w", err)
	}
	sc := codec.NewScanner(payload)
	encName := sc.String()
	modelPrint := sc.String()
	dim := sc.Int()
	if sc.Err() == nil && (encName != s.enc.Name() || modelPrint != s.enc.Model.Fingerprint() || dim != s.enc.Dim()) {
		return fmt.Errorf("starmie: load ann: graph built with %s/%s/d%d, searcher uses %s/%s/d%d: %w",
			encName, modelPrint, dim, s.enc.Name(), s.enc.Model.Fingerprint(), s.enc.Dim(), ErrEncoderMismatch)
	}
	names := sc.Strings()
	// The graph layout is selected by the envelope version: v1 files
	// predate quantization and carry float-only payloads.
	decodeGraph := ann.Decode
	if version == 1 {
		decodeGraph = ann.DecodeV1
	}
	graph, err := decodeGraph(sc)
	if err != nil {
		return fmt.Errorf("starmie: load ann: %w", err)
	}
	if err := sc.Finish(); err != nil {
		return fmt.Errorf("starmie: load ann: %w", err)
	}
	if graph.Dim() != s.enc.Dim() {
		return fmt.Errorf("starmie: load ann: graph dim %d, want %d: %w", graph.Dim(), s.enc.Dim(), codec.ErrCorrupt)
	}
	if graph.Len() != len(names) {
		return fmt.Errorf("starmie: load ann: %d nodes but %d names: %w", graph.Len(), len(names), codec.ErrCorrupt)
	}
	ids := make(map[string][]int, len(s.cols))
	for id, name := range names {
		if graph.Deleted(id) {
			continue
		}
		ids[name] = append(ids[name], id)
	}
	for name := range ids {
		if _, ok := s.cols[name]; !ok {
			return fmt.Errorf("starmie: load ann: graph covers table %q the index does not hold: %w",
				name, ErrLakeMismatch)
		}
	}
	// One live node per indexed column; a zero-column table legitimately
	// has no nodes at all.
	for name, cols := range s.cols {
		if len(ids[name]) != len(cols) {
			return fmt.Errorf("starmie: load ann: table %q has %d live nodes, index holds %d columns: %w",
				name, len(ids[name]), len(cols), ErrLakeMismatch)
		}
	}
	s.graph, s.annTables, s.annIDs = graph, names, ids
	return nil
}

// Save writes the D3L index: encoder and hasher identity plus every
// column's MinHash signature, word embedding, format profile, and numeric
// profile, in lake order (the order the LSH banding index is rebuilt in on
// load).
func (d *D3L) Save(w io.Writer) error {
	tables := d.lake.Tables()
	if len(tables) != len(d.sigs) {
		return fmt.Errorf("d3l: save: index holds %d tables, lake holds %d: %w",
			len(d.sigs), len(tables), ErrLakeMismatch)
	}
	var b codec.Buffer
	b.String(d.enc.Fingerprint())
	b.Int(d.enc.Dim())
	b.Int(d.hasher.K())
	b.Int(d.lsh.Bands())

	b.Int(len(tables))
	for _, t := range tables {
		sigs, ok := d.sigs[t.Name]
		if !ok {
			return fmt.Errorf("d3l: save: lake table %q not indexed: %w", t.Name, ErrLakeMismatch)
		}
		b.String(t.Name)
		b.Int(len(sigs))
		vecs, fps, nps := d.vecs[t.Name], d.formats[t.Name], d.numeric[t.Name]
		for i := range sigs {
			b.Uint64s(sigs[i])
			b.Float64s(vecs[i])
			b.Float64(fps[i].letters)
			b.Float64(fps[i].digits)
			b.Float64(fps[i].punct)
			b.Float64(fps[i].spaces)
			b.Float64(fps[i].avgLen)
			b.Float64(nps[i].frac)
			b.Float64(nps[i].mean)
			b.Float64(nps[i].std)
		}
	}
	return codec.WriteEnvelope(w, codec.KindD3L, D3LFormatVersion, b.Bytes())
}

// LoadD3L reads an index written by D3L.Save and attaches it to l. The LSH
// banding index is rebuilt from the saved signatures in their saved order,
// reproducing the layout of a from-scratch build.
func LoadD3L(r io.Reader, l *lake.Lake, opts ...Option) (*D3L, error) {
	_, payload, err := codec.ReadEnvelope(r, codec.KindD3L, D3LFormatVersion)
	if err != nil {
		return nil, fmt.Errorf("d3l: load: %w", err)
	}
	o := applyOptions(opts)
	d := &D3L{
		lake:    l,
		enc:     embed.NewFastText(),
		workers: o.workers,
		sigs:    map[string][]minhash.Signature{},
		vecs:    map[string][]vector.Vec{},
		formats: map[string][]formatProfile{},
		numeric: map[string][]numericProfile{},
	}

	sc := codec.NewScanner(payload)
	encPrint := sc.String()
	dim := sc.Int()
	k := sc.Int()
	bands := sc.Int()
	if sc.Err() == nil {
		if encPrint != d.enc.Fingerprint() || dim != d.enc.Dim() {
			return nil, fmt.Errorf("d3l: load: index built with %s, searcher uses %s: %w",
				encPrint, d.enc.Fingerprint(), ErrEncoderMismatch)
		}
		if k <= 0 || bands <= 0 || k%bands != 0 {
			return nil, fmt.Errorf("d3l: load: %d bands does not divide signature length %d: %w",
				bands, k, codec.ErrCorrupt)
		}
		d.hasher = minhash.NewHasher(k)
		d.lsh, _ = minhash.NewIndex(d.hasher, bands)
	}

	nTables := sc.Int()
	for t := 0; t < nTables && sc.Err() == nil; t++ {
		name := sc.String()
		ncols := sc.Int()
		idx := d3lTableIndex{
			sigs: make([]minhash.Signature, 0, ncols),
			vecs: make([]vector.Vec, 0, ncols),
			fps:  make([]formatProfile, 0, ncols),
			nps:  make([]numericProfile, 0, ncols),
		}
		for c := 0; c < ncols && sc.Err() == nil; c++ {
			sig := minhash.Signature(sc.Uint64s())
			if sc.Err() == nil && len(sig) != k {
				return nil, fmt.Errorf("d3l: load: table %q column %d signature length %d, want %d: %w",
					name, c, len(sig), k, codec.ErrCorrupt)
			}
			vec := sc.Float64s()
			if sc.Err() == nil && len(vec) != dim {
				return nil, fmt.Errorf("d3l: load: table %q column %d has dim %d, want %d: %w",
					name, c, len(vec), dim, codec.ErrCorrupt)
			}
			var fp formatProfile
			fp.letters = sc.Float64()
			fp.digits = sc.Float64()
			fp.punct = sc.Float64()
			fp.spaces = sc.Float64()
			fp.avgLen = sc.Float64()
			var np numericProfile
			np.frac = sc.Float64()
			np.mean = sc.Float64()
			np.std = sc.Float64()
			idx.sigs = append(idx.sigs, sig)
			idx.vecs = append(idx.vecs, vec)
			idx.fps = append(idx.fps, fp)
			idx.nps = append(idx.nps, np)
		}
		if sc.Err() == nil {
			if _, dup := d.sigs[name]; dup {
				return nil, fmt.Errorf("d3l: load: table %q indexed twice: %w", name, codec.ErrCorrupt)
			}
			d.install(name, idx)
		}
	}
	if err := sc.Finish(); err != nil {
		return nil, fmt.Errorf("d3l: load: %w", err)
	}

	if len(d.sigs) != l.Len() {
		return nil, fmt.Errorf("d3l: load: index holds %d tables, lake holds %d: %w",
			len(d.sigs), l.Len(), ErrLakeMismatch)
	}
	for name, sigs := range d.sigs {
		lt := l.Get(name)
		if lt == nil {
			return nil, fmt.Errorf("d3l: load: indexed table %q not in lake: %w", name, ErrLakeMismatch)
		}
		if lt.NumCols() != len(sigs) {
			return nil, fmt.Errorf("d3l: load: table %q has %d columns, index holds %d: %w",
				name, lt.NumCols(), len(sigs), ErrLakeMismatch)
		}
	}
	if o.mode != Exact {
		_ = d.SetMode(o.mode)
	}
	return d, nil
}

// Save writes the tuple-level index: encoder identity and, for each run of
// tuples from one table, the table name and every tuple's row index and
// embedding, in index order (which the stable TopK sort depends on).
func (ts *TupleSearch) Save(w io.Writer) error {
	var b codec.Buffer
	b.String(ts.enc.Fingerprint())
	b.Int(ts.enc.Dim())

	// Tuples of one table are always contiguous (NewTupleSearch and
	// AddTable append whole tables; RemoveTable drops whole runs), so the
	// index serializes as table-named runs.
	type run struct {
		t        *table.Table
		from, to int // [from, to) in ts.tuples
	}
	var runs []run
	for i := range ts.tuples {
		if len(runs) > 0 && runs[len(runs)-1].t == ts.tuples[i].Table {
			runs[len(runs)-1].to = i + 1
			continue
		}
		runs = append(runs, run{ts.tuples[i].Table, i, i + 1})
	}
	b.Int(len(runs))
	for _, r := range runs {
		b.String(r.t.Name)
		b.Int(r.to - r.from)
		for i := r.from; i < r.to; i++ {
			b.Int(ts.tuples[i].Row)
			b.Float64s(ts.vecs[i])
		}
	}
	return codec.WriteEnvelope(w, codec.KindTuples, TuplesFormatVersion, b.Bytes())
}

// LoadTupleSearch reads an index written by TupleSearch.Save, resolving
// table names against the given tables (every indexed name must appear,
// with at least the indexed row count).
func LoadTupleSearch(r io.Reader, tables []*table.Table, opts ...Option) (*TupleSearch, error) {
	_, payload, err := codec.ReadEnvelope(r, codec.KindTuples, TuplesFormatVersion)
	if err != nil {
		return nil, fmt.Errorf("tuplesearch: load: %w", err)
	}
	o := applyOptions(opts)
	ts := &TupleSearch{
		enc:        embed.NewRoBERTa(),
		workers:    o.workers,
		quantized:  o.quantized,
		Oversample: DefaultOversample,
		EfSearch:   DefaultEfSearch,
	}

	byName := make(map[string]*table.Table, len(tables))
	for _, t := range tables {
		byName[t.Name] = t
	}

	sc := codec.NewScanner(payload)
	encPrint := sc.String()
	dim := sc.Int()
	if sc.Err() == nil && (encPrint != ts.enc.Fingerprint() || dim != ts.enc.Dim()) {
		return nil, fmt.Errorf("tuplesearch: load: index built with %s, searcher uses %s: %w",
			encPrint, ts.enc.Fingerprint(), ErrEncoderMismatch)
	}
	nRuns := sc.Int()
	seen := make(map[string]bool, nRuns)
	for g := 0; g < nRuns && sc.Err() == nil; g++ {
		name := sc.String()
		count := sc.Int()
		if sc.Err() != nil {
			break
		}
		t := byName[name]
		if t == nil {
			return nil, fmt.Errorf("tuplesearch: load: indexed table %q not provided: %w", name, ErrLakeMismatch)
		}
		if seen[name] {
			return nil, fmt.Errorf("tuplesearch: load: table %q indexed twice: %w", name, codec.ErrCorrupt)
		}
		seen[name] = true
		for i := 0; i < count && sc.Err() == nil; i++ {
			row := sc.Int()
			vec := sc.Float64s()
			if sc.Err() != nil {
				break
			}
			if len(vec) != dim {
				return nil, fmt.Errorf("tuplesearch: load: table %q tuple %d has dim %d, want %d: %w",
					name, i, len(vec), dim, codec.ErrCorrupt)
			}
			if row >= t.NumRows() {
				return nil, fmt.Errorf("tuplesearch: load: table %q row %d out of range [0,%d): %w",
					name, row, t.NumRows(), ErrLakeMismatch)
			}
			ts.tuples = append(ts.tuples, ScoredTuple{Table: t, Row: row})
			ts.vecs = append(ts.vecs, vec)
		}
	}
	if err := sc.Finish(); err != nil {
		return nil, fmt.Errorf("tuplesearch: load: %w", err)
	}
	if o.mode != Exact {
		_ = ts.SetMode(o.mode)
	}
	return ts, nil
}
