package search

import (
	"dust/internal/embed"
	"dust/internal/lake"
	"dust/internal/match"
	"dust/internal/table"
	"dust/internal/tokenize"
	"dust/internal/vector"
)

// Starmie is the Starmie-like union searcher: every column of every lake
// table is embedded with the contextualized column encoder at index time;
// at query time the query's columns are matched to each candidate's columns
// by maximum-weight bipartite matching over cosine similarity and the
// normalized matching weight is the table's unionability score (§6.2.3).
type Starmie struct {
	enc    embed.StarmieEncoder
	lake   *lake.Lake
	corpus *tokenize.Corpus
	cols   map[string][]vector.Vec // table name -> column embeddings
	// MinSim drops column matches below this similarity (Starmie's
	// verification threshold).
	MinSim float64
}

// NewStarmie indexes the lake with the default Starmie encoder.
func NewStarmie(l *lake.Lake) *Starmie {
	return NewStarmieWithEncoder(l, embed.NewStarmie())
}

// NewStarmieWithEncoder indexes the lake with a custom encoder.
func NewStarmieWithEncoder(l *lake.Lake, enc embed.StarmieEncoder) *Starmie {
	s := &Starmie{
		enc:    enc,
		lake:   l,
		corpus: &tokenize.Corpus{},
		cols:   make(map[string][]vector.Vec, l.Len()),
		MinSim: 0.3,
	}
	for _, t := range l.Tables() {
		for i := range t.Columns {
			s.corpus.AddDocument(embed.ColumnTokens(&t.Columns[i]))
		}
	}
	for _, t := range l.Tables() {
		s.cols[t.Name] = enc.EncodeTableColumns(t, s.corpus)
	}
	return s
}

// Name implements Searcher.
func (s *Starmie) Name() string { return "starmie" }

// Score computes the normalized bipartite matching weight between the query
// and one lake table.
func (s *Starmie) Score(queryCols []vector.Vec, t *table.Table) float64 {
	cand := s.cols[t.Name]
	if len(queryCols) == 0 || len(cand) == 0 {
		return 0
	}
	w := make([][]float64, len(queryCols))
	for i, qv := range queryCols {
		w[i] = make([]float64, len(cand))
		for j, cv := range cand {
			if sim := vector.Cosine(qv, cv); sim > s.MinSim {
				w[i][j] = sim
			}
		}
	}
	_, total := match.MaxWeight(w)
	return total / float64(len(queryCols))
}

// EncodeQuery embeds a query table's columns with the index corpus.
func (s *Starmie) EncodeQuery(q *table.Table) []vector.Vec {
	return s.enc.EncodeTableColumns(q, s.corpus)
}

// TopK implements Searcher.
func (s *Starmie) TopK(query *table.Table, k int) []Scored {
	qCols := s.EncodeQuery(query)
	return rankAll(s.lake, k, func(t *table.Table) float64 {
		return s.Score(qCols, t)
	})
}
