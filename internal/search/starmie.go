package search

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sort"
	"time"

	"dust/internal/ann"
	"dust/internal/embed"
	"dust/internal/lake"
	"dust/internal/match"
	"dust/internal/par"
	"dust/internal/table"
	"dust/internal/tokenize"
	"dust/internal/vector"
)

// Starmie is the Starmie-like union searcher: every column of every lake
// table is embedded with the contextualized column encoder at index time;
// at query time the query's columns are matched to each candidate's columns
// by maximum-weight bipartite matching over cosine similarity and the
// normalized matching weight is the table's unionability score (§6.2.3).
type Starmie struct {
	enc    embed.StarmieEncoder
	lake   *lake.Lake
	corpus *tokenize.Corpus
	cols   map[string][]vector.Vec // table name -> column embeddings
	// big marks tables with at least one column whose token count exceeds
	// the encoder budget: their embeddings depend on the corpus TF-IDF
	// selection and must be refreshed whenever the corpus changes (see
	// AddTable/RemoveTable). Every other table embeds corpus-independently.
	big map[string]bool
	// sharedCorpus marks a corpus installed via WithSharedCorpus (or
	// AdoptSharedCorpus): its document statistics cover a wider table
	// universe than this searcher's lake and are owned by a coordinating
	// layer (internal/shard), so AddTable/RemoveTable must not add or
	// remove documents — the owner mutates the corpus and fans RefreshBig
	// across every searcher sharing it.
	sharedCorpus bool
	workers      int
	// quantized selects SQ8 storage for graphs this searcher builds
	// (WithQuantized); loaded graphs keep their stored representation.
	quantized bool
	// MinSim drops column matches below this similarity (Starmie's
	// verification threshold).
	MinSim float64

	// Staged retrieval state (mode ANN): an HNSW graph over every indexed
	// column embedding. Node ids map to their owning table via annTables
	// (tombstoned nodes keep stale entries until a rebuild); annIDs holds
	// the live node ids of each indexed table. The graph exists only after
	// SetMode(ANN) (or LoadANN) and is kept in sync by AddTable /
	// RemoveTable / refreshBig from then on; exact-mode searchers carry no
	// graph and pay nothing.
	mode      Mode
	graph     *ann.Index
	annTables []string
	annIDs    map[string][]int
	// Oversample and EfSearch shape the ANN candidate stage: stage one
	// retrieves ceil(Oversample*k) nearest column embeddings per query
	// column (beam width EfSearch) and nominates their owner tables for
	// exact re-ranking. Raise Oversample to trade latency for recall.
	Oversample float64
	EfSearch   int
	// manualCompact (set via SetAutoCompact(false)) stops mutations from
	// rebuilding the graph inline once tombstones dominate; an attached
	// maintainer calls Compact on its own schedule instead. Zero value
	// keeps the inline policy, so clones and views inherit the setting
	// through plain struct copies.
	manualCompact bool
}

// NewStarmie indexes the lake with the default Starmie encoder.
func NewStarmie(l *lake.Lake, opts ...Option) *Starmie {
	return NewStarmieWithEncoder(l, embed.NewStarmie(), opts...)
}

// NewStarmieWithEncoder indexes the lake with a custom encoder. The
// per-table column embedding pass — the dominant index-time cost — runs in
// parallel; the corpus is built sequentially first so every worker reads
// the same frozen document frequencies.
func NewStarmieWithEncoder(l *lake.Lake, enc embed.StarmieEncoder, opts ...Option) *Starmie {
	o := applyOptions(opts)
	s := &Starmie{
		enc:        enc,
		lake:       l,
		corpus:     &tokenize.Corpus{},
		cols:       make(map[string][]vector.Vec, l.Len()),
		big:        make(map[string]bool),
		workers:    o.workers,
		quantized:  o.quantized,
		MinSim:     0.3,
		Oversample: DefaultOversample,
		EfSearch:   DefaultEfSearch,
	}
	if o.corpus != nil {
		s.corpus, s.sharedCorpus = o.corpus, true
	}
	tables := l.Tables()
	for _, t := range tables {
		for i := range t.Columns {
			tokens := embed.ColumnTokens(&t.Columns[i])
			if !s.sharedCorpus {
				s.corpus.AddDocument(tokens)
			}
			if len(tokens) > embed.TokenBudget {
				s.big[t.Name] = true
			}
		}
	}
	embedded := par.Map(s.workers, len(tables), func(i int) []vector.Vec {
		return enc.EncodeTableColumns(tables[i], s.corpus)
	})
	for i, t := range tables {
		s.cols[t.Name] = embedded[i]
	}
	if o.mode != Exact {
		// Errors are impossible for the modes WithMode can express; a
		// bogus numeric Mode falls back to the exact scan.
		_ = s.SetMode(o.mode)
	}
	return s
}

// Name implements Searcher; the ANN suffix keeps config tags (and the
// serving caches keyed by them) distinct between the two query plans.
func (s *Starmie) Name() string {
	if s.mode == ANN {
		return "starmie+ann"
	}
	return "starmie"
}

// SetMode implements Staged: ANN switches the retrieval stage to HNSW
// candidates exactly re-ranked, building the graph over the indexed
// column embeddings if none is installed yet; Exact restores the full
// scan. An installed graph survives mode flips (and keeps absorbing
// mutations) so toggling is cheap.
func (s *Starmie) SetMode(m Mode) error {
	switch m {
	case Exact:
	case ANN:
		if s.graph == nil {
			s.buildGraph()
		}
	default:
		return fmt.Errorf("starmie: SetMode(%d): %w", int(m), ErrUnknownMode)
	}
	s.mode = m
	return nil
}

// RetrievalMode implements Staged.
func (s *Starmie) RetrievalMode() Mode { return s.mode }

// Retriever implements Staged.
func (s *Starmie) Retriever() Retriever {
	if s.mode == ANN {
		return starmieRetriever{s}
	}
	return exactRetriever{s.lake}
}

// HasANN reports whether an HNSW graph is installed (persistence asks
// before writing the graph file).
func (s *Starmie) HasANN() bool { return s.graph != nil }

// IndexBytes implements IndexSizer: the storage mode and estimated
// resident bytes of the installed candidate graph.
func (s *Starmie) IndexBytes() (string, int64) { return indexBytes(s.graph) }

// Graph exposes the installed candidate graph (nil without one) so
// benchmarks and serving instrumentation can read its size and storage
// breakdown. Callers must not mutate it.
func (s *Starmie) Graph() *ann.Index { return s.graph }

// SetOversample implements Tunable; v <= 0 restores the default.
func (s *Starmie) SetOversample(v float64) {
	if v <= 0 {
		v = DefaultOversample
	}
	s.Oversample = v
}

// SetEfSearch implements Tunable; ef <= 0 restores the default.
func (s *Starmie) SetEfSearch(ef int) {
	if ef <= 0 {
		ef = DefaultEfSearch
	}
	s.EfSearch = ef
}

// SetQuantized switches the storage mode used when this searcher builds
// its candidate graph (WithQuantized's post-construction form). If a
// graph with a different storage is already installed it is rebuilt from
// the stored embeddings in lake order immediately — any accumulated
// tombstones compact away with it.
func (s *Starmie) SetQuantized(on bool) {
	s.quantized = on
	if s.graph != nil && s.graph.Quantized() != on {
		s.buildGraph()
	}
}

// buildGraph indexes every column embedding into a fresh HNSW graph, in
// lake iteration order so the graph is identical across processes. The
// bulk path goes through ann.Build — batch-parallel and bit-reproducible
// at every worker count — with node ids equal to insertion positions,
// exactly as the incremental annAdd path books them.
func (s *Starmie) buildGraph() {
	s.annTables = nil
	s.annIDs = make(map[string][]int, s.lake.Len())
	var vecs []vector.Vec32
	for _, t := range s.lake.Tables() {
		for _, v := range s.cols[t.Name] {
			vecs = append(vecs, vector.ToVec32(v))
			s.annTables = append(s.annTables, t.Name)
		}
	}
	s.graph = ann.Build(s.enc.Dim(), vecs, ann.Config{Quantized: s.quantized}, s.workers)
	for id, name := range s.annTables {
		s.annIDs[name] = append(s.annIDs[name], id)
	}
}

// annAdd indexes table name's current column embeddings.
func (s *Starmie) annAdd(name string) {
	for _, v := range s.cols[name] {
		id := s.graph.Add(vector.ToVec32(v))
		s.annTables = append(s.annTables, name)
		s.annIDs[name] = append(s.annIDs[name], id)
	}
}

// annRemove tombstones table name's nodes.
func (s *Starmie) annRemove(name string) {
	for _, id := range s.annIDs[name] {
		if err := s.graph.Remove(id); err != nil {
			// Ids come from annIDs bookkeeping and are always live.
			panic(err)
		}
	}
	delete(s.annIDs, name)
}

// annReplace swaps a table's nodes for its (re-embedded) current columns:
// the corpus-sensitive refresh path changes stored vectors, and graph
// nodes are immutable once inserted.
func (s *Starmie) annReplace(name string) {
	s.annRemove(name)
	s.annAdd(name)
}

// maybeRebuild compacts the graph once tombstones dominate (the shared
// staleGraph policy), unless a maintainer owns compaction
// (SetAutoCompact(false)).
func (s *Starmie) maybeRebuild() {
	if s.manualCompact || !staleGraph(s.graph) {
		return
	}
	s.rebuildGraph()
}

// rebuildGraph compacts the graph from its live nodes, rebooking the
// node-to-table mapping as ann.Compact reports the surviving ids. Live
// insertion order is preserved, so searches rank identically before and
// after.
func (s *Starmie) rebuildGraph() {
	oldTables := s.annTables
	s.annTables = nil
	s.annIDs = make(map[string][]int, len(s.annIDs))
	s.graph = s.graph.Compact(func(oldID, newID int) {
		name := oldTables[oldID]
		s.annTables = append(s.annTables, name)
		s.annIDs[name] = append(s.annIDs[name], newID)
	})
}

// SetAutoCompact implements Maintainable: with auto compaction off,
// AddTable/RemoveTable/RefreshBig never rebuild the graph inline and
// tombstones accumulate until Compact runs.
func (s *Starmie) SetAutoCompact(on bool) { s.manualCompact = !on }

// Compact implements Maintainable: it rebuilds the graph from its live
// nodes when any tombstones exist, reporting whether a rebuild ran.
func (s *Starmie) Compact() bool {
	if s.graph == nil || s.graph.Len() == s.graph.Live() {
		return false
	}
	s.rebuildGraph()
	return true
}

// MaintenanceStats implements Maintainable.
func (s *Starmie) MaintenanceStats() MaintenanceStats {
	var st MaintenanceStats
	if s.graph != nil {
		st.GraphNodes = s.graph.Len()
		st.GraphLive = s.graph.Live()
		st.GraphDeletedFraction = s.graph.DeletedFraction()
	}
	return st
}

// ModeView implements ModeViewer: the view is a shallow copy sharing every
// piece of index state (including the graph, whose searches are safe
// concurrently) under the requested retrieval mode. An ANN view of a
// graph-less searcher is unavailable — build the graph first via SetMode.
func (s *Starmie) ModeView(m Mode) (Searcher, bool) {
	if m == s.mode {
		return s, true
	}
	if m == ANN && s.graph == nil {
		return nil, false
	}
	if m != Exact && m != ANN {
		return nil, false
	}
	c := *s
	c.mode = m
	return &c, true
}

// annCandidateNames nominates the owner tables of the perColumn nearest
// column embeddings to each query column, name-sorted for determinism. The
// beam width ef caps at the searcher's EfSearch but shrinks with shallow
// fetches: HNSW traversal cost is ef-proportional, and a beam several
// times the fetch depth already saturates recall, so a sharded nomination
// at depth ~k/n must not pay the full-depth beam the monolithic plan is
// tuned for.
func (s *Starmie) annCandidateNames(qCols []vector.Vec, perColumn int) []string {
	ef := s.EfSearch
	if scaled := 4*perColumn + 16; scaled < ef {
		ef = scaled
	}
	seen := make(map[string]bool)
	for _, qv := range qCols {
		for _, id := range s.graph.Search(vector.ToVec32(qv), perColumn, ef) {
			seen[s.annTables[id]] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// starmieRetriever adapts the HNSW candidate stage to the Retriever
// interface for external composition; the searcher's own hot path calls
// annCandidateNames directly with the query columns it already encoded.
type starmieRetriever struct{ s *Starmie }

func (starmieRetriever) Name() string { return "hnsw" }

// Retrieve nominates candidates for a top-`limit` query with exactly the
// searcher's own plan: Oversample*limit nearest column embeddings per
// query column, so composing through the interface has the same recall
// as TopK itself. limit <= 0 asks for everything, which only the exact
// scan provides — the same fallback the searcher's own TopK applies.
func (r starmieRetriever) Retrieve(ctx context.Context, query *table.Table, limit int) ([]string, error) {
	if limit <= 0 {
		return exactRetriever{r.s.lake}.Retrieve(ctx, query, limit)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	perColumn := int(math.Ceil(r.s.Oversample * float64(limit)))
	return r.s.annCandidateNames(r.s.EncodeQuery(query), perColumn), nil
}

// AddTable implements Incremental: the new table's columns join the corpus
// and are embedded with it; tables whose TF-IDF token selection depends on
// the corpus (those with over-budget columns) are re-embedded so every
// stored embedding matches what a from-scratch index over the new table set
// would hold. The table must (also) be added to the lake before querying.
func (s *Starmie) AddTable(t *table.Table) error {
	if _, ok := s.cols[t.Name]; ok {
		return fmt.Errorf("starmie: AddTable(%q): %w", t.Name, ErrDuplicateTable)
	}
	for i := range t.Columns {
		tokens := embed.ColumnTokens(&t.Columns[i])
		if !s.sharedCorpus {
			s.corpus.AddDocument(tokens)
		}
		if len(tokens) > embed.TokenBudget {
			s.big[t.Name] = true
		}
	}
	s.cols[t.Name] = s.enc.EncodeTableColumns(t, s.corpus)
	s.refreshBig(t.Name)
	if s.graph != nil {
		s.annAdd(t.Name)
		s.maybeRebuild()
	}
	return nil
}

// RemoveTable implements Incremental. It must run while the table is still
// in the lake (its columns have to leave the corpus); remove it from the
// lake afterwards.
func (s *Starmie) RemoveTable(name string) error {
	if _, ok := s.cols[name]; !ok {
		return fmt.Errorf("starmie: RemoveTable(%q): %w", name, ErrUnknownTable)
	}
	t := s.lake.Get(name)
	if t == nil {
		return fmt.Errorf("starmie: RemoveTable(%q): table already left the lake: %w", name, ErrUnknownTable)
	}
	if !s.sharedCorpus {
		for i := range t.Columns {
			s.corpus.RemoveDocument(embed.ColumnTokens(&t.Columns[i]))
		}
	}
	delete(s.cols, name)
	delete(s.big, name)
	if s.graph != nil {
		s.annRemove(name)
	}
	s.refreshBig("")
	if s.graph != nil {
		s.maybeRebuild()
	}
	return nil
}

// refreshBig re-embeds every indexed table marked corpus-sensitive, in
// parallel, skipping the one just encoded with the current corpus. Tables
// under the token budget never enter s.big, so the common mutation costs
// O(new table) only.
func (s *Starmie) refreshBig(skip string) {
	var stale []*table.Table
	for _, t := range s.lake.Tables() {
		if s.big[t.Name] && t.Name != skip && s.cols[t.Name] != nil {
			stale = append(stale, t)
		}
	}
	if len(stale) == 0 {
		return
	}
	embedded := par.Map(s.workers, len(stale), func(i int) []vector.Vec {
		return s.enc.EncodeTableColumns(stale[i], s.corpus)
	})
	for i, t := range stale {
		old := s.cols[t.Name]
		s.cols[t.Name] = embedded[i]
		if s.graph != nil && !sameVecs(old, embedded[i]) {
			// The stored vectors actually changed; the graph must follow.
			// Corpus refreshes usually re-select the same TF-IDF tokens
			// and reproduce the old embeddings bit-for-bit — skipping
			// those keeps mutation cost O(delta) instead of tombstoning
			// (and eventually rebuilding over) every big table each time.
			s.annReplace(t.Name)
		}
	}
}

// sameVecs reports bit-identical embedding slices.
func sameVecs(a, b []vector.Vec) bool {
	return slices.EqualFunc(a, b, slices.Equal[vector.Vec])
}

// QueryWorkers implements QueryBounded: the returned searcher shares this
// searcher's index (immutable after construction) and scores queries with
// at most n workers.
func (s *Starmie) QueryWorkers(n int) Searcher {
	c := *s
	c.workers = n
	return &c
}

// RefreshBig re-embeds every corpus-sensitive (over-budget) table against
// the corpus's current statistics and keeps the ANN graph, when one is
// installed, in step. It is the cross-searcher half of a shared-corpus
// mutation: after the owning layer changes the shared corpus on behalf of
// one searcher, every other searcher sharing it must refresh, exactly as
// AddTable/RemoveTable refresh a private corpus. A searcher with no big
// tables returns immediately.
func (s *Starmie) RefreshBig() {
	s.refreshBig("")
	if s.graph != nil {
		s.maybeRebuild()
	}
}

// Encoder exposes the searcher's column encoder. Tests instrument its
// shared base model to count encoding calls — the prepared-query gate that
// proves a sharded query encodes exactly once.
func (s *Starmie) Encoder() embed.StarmieEncoder { return s.enc }

// Corpus exposes the TF-IDF corpus the index was embedded against. The
// sharding layer uses it to recover the one shared corpus instance after a
// per-shard warm start; treat it as read-only unless you own the searcher's
// mutation surface.
func (s *Starmie) Corpus() *tokenize.Corpus { return s.corpus }

// AdoptSharedCorpus rebinds the searcher to an externally owned corpus and
// marks it shared (see WithSharedCorpus). The given corpus's statistics
// must reproduce the ones the stored embeddings were built with
// bit-for-bit — the caller typically hands every shard the corpus restored
// by one shard's load, or a fresh clone after CloneWithLake.
func (s *Starmie) AdoptSharedCorpus(c *tokenize.Corpus) {
	s.corpus, s.sharedCorpus = c, true
}

// CloneWithLake implements Cloner: the returned searcher is bound to l (a
// clone of this searcher's lake holding the same table set) and owns its
// own corpus and column-embedding maps, so AddTable/RemoveTable on it never
// disturb this searcher. The embedding vectors themselves are shared — both
// mutation paths replace whole slices (AddTable installs a fresh slice,
// refreshBig assigns par.Map's fresh output), never write into one. A
// shared corpus is not cloned: it belongs to the coordinating layer, which
// clones it once and rebinds every shard clone via AdoptSharedCorpus.
func (s *Starmie) CloneWithLake(l *lake.Lake) Searcher {
	c := *s
	c.lake = l
	if !s.sharedCorpus {
		c.corpus = s.corpus.Clone()
	}
	c.cols = make(map[string][]vector.Vec, len(s.cols))
	for n, v := range s.cols {
		c.cols[n] = v
	}
	c.big = make(map[string]bool, len(s.big))
	for n, v := range s.big {
		c.big[n] = v
	}
	if s.graph != nil {
		// Insertions rewire existing neighbor lists, so the clone needs its
		// own adjacency (the vectors stay shared); the id bookkeeping is
		// append-mutated and is deep-copied for the same reason.
		c.graph = s.graph.Clone()
		c.annTables = make([]string, len(s.annTables))
		copy(c.annTables, s.annTables)
		c.annIDs = make(map[string][]int, len(s.annIDs))
		for n, ids := range s.annIDs {
			c.annIDs[n] = append([]int(nil), ids...)
		}
	}
	return &c
}

// Score computes the normalized bipartite matching weight between the query
// and one lake table.
func (s *Starmie) Score(queryCols []vector.Vec, t *table.Table) float64 {
	cand := s.cols[t.Name]
	if len(queryCols) == 0 || len(cand) == 0 {
		return 0
	}
	w := make([][]float64, len(queryCols))
	for i, qv := range queryCols {
		w[i] = make([]float64, len(cand))
		for j, cv := range cand {
			if sim := vector.Cosine(qv, cv); sim > s.MinSim {
				w[i][j] = sim
			}
		}
	}
	_, total := match.MaxWeight(w)
	return total / float64(len(queryCols))
}

// EncodeQuery embeds a query table's columns with the index corpus.
func (s *Starmie) EncodeQuery(q *table.Table) []vector.Vec {
	return s.enc.EncodeTableColumns(q, s.corpus)
}

// TopK implements Searcher. Candidate tables are scored in parallel.
func (s *Starmie) TopK(query *table.Table, k int) []Scored {
	out, _ := s.TopKContext(context.Background(), query, k)
	return out
}

// starmiePrepared is Starmie's PreparedQuery: the query's contextualized
// column embeddings, encoded once against the index corpus.
type starmiePrepared struct {
	query *table.Table
	cols  []vector.Vec
}

// Query implements PreparedQuery.
func (p *starmiePrepared) Query() *table.Table { return p.query }

// Prepare implements PreparedSearcher: the query's columns are embedded
// exactly once. Searchers sharing this searcher's corpus — the shards of a
// partitioned lake — accept the preparation interchangeably.
func (s *Starmie) Prepare(query *table.Table) PreparedQuery {
	return &starmiePrepared{query: query, cols: s.EncodeQuery(query)}
}

// TopKContext implements ContextSearcher as the staged plan: retrieve
// candidates (every lake table in Exact mode; the owners of the nearest
// column embeddings in ANN mode), then score them exactly and keep the
// top k. The candidate scan stops scoring further tables once ctx is
// cancelled and the call returns ctx.Err().
func (s *Starmie) TopKContext(ctx context.Context, query *table.Table, k int) ([]Scored, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t0 := time.Now()
	pq := s.Prepare(query)
	TraceFrom(ctx).AddEncode(t0)
	return s.TopKPrepared(ctx, pq, k)
}

// TopKPrepared implements PreparedSearcher: TopKContext minus the query
// encoding, which pq already carries.
func (s *Starmie) TopKPrepared(ctx context.Context, pq PreparedQuery, k int) ([]Scored, error) {
	p, ok := pq.(*starmiePrepared)
	if !ok {
		return nil, fmt.Errorf("starmie: %w: %T", ErrForeignPrepared, pq)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr := TraceFrom(ctx)
	t0 := time.Now()
	cands, err := s.candidates(ctx, p.cols, k)
	if err != nil {
		return nil, err
	}
	tr.AddRetrieve(t0)
	t0 = time.Now()
	out, err := rankTablesCtx(ctx, cands, k, s.workers, func(t *table.Table) float64 {
		return s.Score(p.cols, t)
	})
	if err == nil {
		tr.AddScore(t0)
	}
	return out, err
}

// NominatePrepared implements PreparedNominator: the depth nearest column
// embeddings per query column in ANN mode (the per-shard nomination stage
// of the sharded candidate-only plan), every lake table otherwise.
func (s *Starmie) NominatePrepared(ctx context.Context, pq PreparedQuery, depth int) ([]string, error) {
	p, ok := pq.(*starmiePrepared)
	if !ok {
		return nil, fmt.Errorf("starmie: %w: %T", ErrForeignPrepared, pq)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.mode != ANN || s.graph == nil || depth <= 0 {
		return s.lake.Names(), nil
	}
	return s.annCandidateNames(p.cols, depth), nil
}

// ScorePrepared implements PreparedNominator.
func (s *Starmie) ScorePrepared(pq PreparedQuery, t *table.Table) float64 {
	return s.Score(pq.(*starmiePrepared).cols, t)
}

// candidates is the retrieval stage. ANN retrieval needs a positive k to
// size its pool; k <= 0 asks for the full ranking, which only the exact
// scan can provide.
func (s *Starmie) candidates(ctx context.Context, qCols []vector.Vec, k int) ([]*table.Table, error) {
	if s.mode != ANN || s.graph == nil || k <= 0 {
		return s.lake.Tables(), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	perColumn := int(math.Ceil(s.Oversample * float64(k)))
	names := s.annCandidateNames(qCols, perColumn)
	tables := make([]*table.Table, 0, len(names))
	for _, n := range names {
		if t := s.lake.Get(n); t != nil {
			tables = append(tables, t)
		}
	}
	return tables, nil
}
