package search

import (
	"dust/internal/embed"
	"dust/internal/lake"
	"dust/internal/match"
	"dust/internal/par"
	"dust/internal/table"
	"dust/internal/tokenize"
	"dust/internal/vector"
)

// Starmie is the Starmie-like union searcher: every column of every lake
// table is embedded with the contextualized column encoder at index time;
// at query time the query's columns are matched to each candidate's columns
// by maximum-weight bipartite matching over cosine similarity and the
// normalized matching weight is the table's unionability score (§6.2.3).
type Starmie struct {
	enc     embed.StarmieEncoder
	lake    *lake.Lake
	corpus  *tokenize.Corpus
	cols    map[string][]vector.Vec // table name -> column embeddings
	workers int
	// MinSim drops column matches below this similarity (Starmie's
	// verification threshold).
	MinSim float64
}

// NewStarmie indexes the lake with the default Starmie encoder.
func NewStarmie(l *lake.Lake, opts ...Option) *Starmie {
	return NewStarmieWithEncoder(l, embed.NewStarmie(), opts...)
}

// NewStarmieWithEncoder indexes the lake with a custom encoder. The
// per-table column embedding pass — the dominant index-time cost — runs in
// parallel; the corpus is built sequentially first so every worker reads
// the same frozen document frequencies.
func NewStarmieWithEncoder(l *lake.Lake, enc embed.StarmieEncoder, opts ...Option) *Starmie {
	o := applyOptions(opts)
	s := &Starmie{
		enc:     enc,
		lake:    l,
		corpus:  &tokenize.Corpus{},
		cols:    make(map[string][]vector.Vec, l.Len()),
		workers: o.workers,
		MinSim:  0.3,
	}
	tables := l.Tables()
	for _, t := range tables {
		for i := range t.Columns {
			s.corpus.AddDocument(embed.ColumnTokens(&t.Columns[i]))
		}
	}
	embedded := par.Map(s.workers, len(tables), func(i int) []vector.Vec {
		return enc.EncodeTableColumns(tables[i], s.corpus)
	})
	for i, t := range tables {
		s.cols[t.Name] = embedded[i]
	}
	return s
}

// Name implements Searcher.
func (s *Starmie) Name() string { return "starmie" }

// QueryWorkers implements QueryBounded: the returned searcher shares this
// searcher's index (immutable after construction) and scores queries with
// at most n workers.
func (s *Starmie) QueryWorkers(n int) Searcher {
	c := *s
	c.workers = n
	return &c
}

// Score computes the normalized bipartite matching weight between the query
// and one lake table.
func (s *Starmie) Score(queryCols []vector.Vec, t *table.Table) float64 {
	cand := s.cols[t.Name]
	if len(queryCols) == 0 || len(cand) == 0 {
		return 0
	}
	w := make([][]float64, len(queryCols))
	for i, qv := range queryCols {
		w[i] = make([]float64, len(cand))
		for j, cv := range cand {
			if sim := vector.Cosine(qv, cv); sim > s.MinSim {
				w[i][j] = sim
			}
		}
	}
	_, total := match.MaxWeight(w)
	return total / float64(len(queryCols))
}

// EncodeQuery embeds a query table's columns with the index corpus.
func (s *Starmie) EncodeQuery(q *table.Table) []vector.Vec {
	return s.enc.EncodeTableColumns(q, s.corpus)
}

// TopK implements Searcher. Candidate tables are scored in parallel.
func (s *Starmie) TopK(query *table.Table, k int) []Scored {
	qCols := s.EncodeQuery(query)
	return rankAll(s.lake, k, s.workers, func(t *table.Table) float64 {
		return s.Score(qCols, t)
	})
}
