package search

import (
	"context"
	"fmt"

	"dust/internal/embed"
	"dust/internal/lake"
	"dust/internal/match"
	"dust/internal/par"
	"dust/internal/table"
	"dust/internal/tokenize"
	"dust/internal/vector"
)

// Starmie is the Starmie-like union searcher: every column of every lake
// table is embedded with the contextualized column encoder at index time;
// at query time the query's columns are matched to each candidate's columns
// by maximum-weight bipartite matching over cosine similarity and the
// normalized matching weight is the table's unionability score (§6.2.3).
type Starmie struct {
	enc    embed.StarmieEncoder
	lake   *lake.Lake
	corpus *tokenize.Corpus
	cols   map[string][]vector.Vec // table name -> column embeddings
	// big marks tables with at least one column whose token count exceeds
	// the encoder budget: their embeddings depend on the corpus TF-IDF
	// selection and must be refreshed whenever the corpus changes (see
	// AddTable/RemoveTable). Every other table embeds corpus-independently.
	big     map[string]bool
	workers int
	// MinSim drops column matches below this similarity (Starmie's
	// verification threshold).
	MinSim float64
}

// NewStarmie indexes the lake with the default Starmie encoder.
func NewStarmie(l *lake.Lake, opts ...Option) *Starmie {
	return NewStarmieWithEncoder(l, embed.NewStarmie(), opts...)
}

// NewStarmieWithEncoder indexes the lake with a custom encoder. The
// per-table column embedding pass — the dominant index-time cost — runs in
// parallel; the corpus is built sequentially first so every worker reads
// the same frozen document frequencies.
func NewStarmieWithEncoder(l *lake.Lake, enc embed.StarmieEncoder, opts ...Option) *Starmie {
	o := applyOptions(opts)
	s := &Starmie{
		enc:     enc,
		lake:    l,
		corpus:  &tokenize.Corpus{},
		cols:    make(map[string][]vector.Vec, l.Len()),
		big:     make(map[string]bool),
		workers: o.workers,
		MinSim:  0.3,
	}
	tables := l.Tables()
	for _, t := range tables {
		for i := range t.Columns {
			tokens := embed.ColumnTokens(&t.Columns[i])
			s.corpus.AddDocument(tokens)
			if len(tokens) > embed.TokenBudget {
				s.big[t.Name] = true
			}
		}
	}
	embedded := par.Map(s.workers, len(tables), func(i int) []vector.Vec {
		return enc.EncodeTableColumns(tables[i], s.corpus)
	})
	for i, t := range tables {
		s.cols[t.Name] = embedded[i]
	}
	return s
}

// Name implements Searcher.
func (s *Starmie) Name() string { return "starmie" }

// AddTable implements Incremental: the new table's columns join the corpus
// and are embedded with it; tables whose TF-IDF token selection depends on
// the corpus (those with over-budget columns) are re-embedded so every
// stored embedding matches what a from-scratch index over the new table set
// would hold. The table must (also) be added to the lake before querying.
func (s *Starmie) AddTable(t *table.Table) error {
	if _, ok := s.cols[t.Name]; ok {
		return fmt.Errorf("starmie: AddTable(%q): %w", t.Name, ErrDuplicateTable)
	}
	for i := range t.Columns {
		tokens := embed.ColumnTokens(&t.Columns[i])
		s.corpus.AddDocument(tokens)
		if len(tokens) > embed.TokenBudget {
			s.big[t.Name] = true
		}
	}
	s.cols[t.Name] = s.enc.EncodeTableColumns(t, s.corpus)
	s.refreshBig(t.Name)
	return nil
}

// RemoveTable implements Incremental. It must run while the table is still
// in the lake (its columns have to leave the corpus); remove it from the
// lake afterwards.
func (s *Starmie) RemoveTable(name string) error {
	if _, ok := s.cols[name]; !ok {
		return fmt.Errorf("starmie: RemoveTable(%q): %w", name, ErrUnknownTable)
	}
	t := s.lake.Get(name)
	if t == nil {
		return fmt.Errorf("starmie: RemoveTable(%q): table already left the lake: %w", name, ErrUnknownTable)
	}
	for i := range t.Columns {
		s.corpus.RemoveDocument(embed.ColumnTokens(&t.Columns[i]))
	}
	delete(s.cols, name)
	delete(s.big, name)
	s.refreshBig("")
	return nil
}

// refreshBig re-embeds every indexed table marked corpus-sensitive, in
// parallel, skipping the one just encoded with the current corpus. Tables
// under the token budget never enter s.big, so the common mutation costs
// O(new table) only.
func (s *Starmie) refreshBig(skip string) {
	var stale []*table.Table
	for _, t := range s.lake.Tables() {
		if s.big[t.Name] && t.Name != skip && s.cols[t.Name] != nil {
			stale = append(stale, t)
		}
	}
	if len(stale) == 0 {
		return
	}
	embedded := par.Map(s.workers, len(stale), func(i int) []vector.Vec {
		return s.enc.EncodeTableColumns(stale[i], s.corpus)
	})
	for i, t := range stale {
		s.cols[t.Name] = embedded[i]
	}
}

// QueryWorkers implements QueryBounded: the returned searcher shares this
// searcher's index (immutable after construction) and scores queries with
// at most n workers.
func (s *Starmie) QueryWorkers(n int) Searcher {
	c := *s
	c.workers = n
	return &c
}

// CloneWithLake implements Cloner: the returned searcher is bound to l (a
// clone of this searcher's lake holding the same table set) and owns its
// own corpus and column-embedding maps, so AddTable/RemoveTable on it never
// disturb this searcher. The embedding vectors themselves are shared — both
// mutation paths replace whole slices (AddTable installs a fresh slice,
// refreshBig assigns par.Map's fresh output), never write into one.
func (s *Starmie) CloneWithLake(l *lake.Lake) Searcher {
	c := *s
	c.lake = l
	c.corpus = s.corpus.Clone()
	c.cols = make(map[string][]vector.Vec, len(s.cols))
	for n, v := range s.cols {
		c.cols[n] = v
	}
	c.big = make(map[string]bool, len(s.big))
	for n, v := range s.big {
		c.big[n] = v
	}
	return &c
}

// Score computes the normalized bipartite matching weight between the query
// and one lake table.
func (s *Starmie) Score(queryCols []vector.Vec, t *table.Table) float64 {
	cand := s.cols[t.Name]
	if len(queryCols) == 0 || len(cand) == 0 {
		return 0
	}
	w := make([][]float64, len(queryCols))
	for i, qv := range queryCols {
		w[i] = make([]float64, len(cand))
		for j, cv := range cand {
			if sim := vector.Cosine(qv, cv); sim > s.MinSim {
				w[i][j] = sim
			}
		}
	}
	_, total := match.MaxWeight(w)
	return total / float64(len(queryCols))
}

// EncodeQuery embeds a query table's columns with the index corpus.
func (s *Starmie) EncodeQuery(q *table.Table) []vector.Vec {
	return s.enc.EncodeTableColumns(q, s.corpus)
}

// TopK implements Searcher. Candidate tables are scored in parallel.
func (s *Starmie) TopK(query *table.Table, k int) []Scored {
	out, _ := s.TopKContext(context.Background(), query, k)
	return out
}

// TopKContext implements ContextSearcher: the candidate scan stops scoring
// further tables once ctx is cancelled and the call returns ctx.Err().
func (s *Starmie) TopKContext(ctx context.Context, query *table.Table, k int) ([]Scored, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	qCols := s.EncodeQuery(query)
	return rankAllCtx(ctx, s.lake, k, s.workers, func(t *table.Table) float64 {
		return s.Score(qCols, t)
	})
}
