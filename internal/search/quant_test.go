package search

import (
	"bytes"
	"reflect"
	"testing"

	"dust/internal/codec"
	"dust/internal/table"
)

// TestQuantizedExactIdentical pins the acceptance contract of SQ8
// storage: exact-mode results are bit-identical with quantization on,
// both before any graph exists and after a quantized graph has been
// built and abandoned — quantization only ever touches the candidate
// stage.
func TestQuantizedExactIdentical(t *testing.T) {
	b := annBenchSmall(t)
	plain := NewStarmie(b.Lake)
	quant := NewStarmie(b.Lake, WithQuantized(true))
	want := snapshotScored(b.Queries, plain.TopK)
	if got := snapshotScored(b.Queries, quant.TopK); !reflect.DeepEqual(got, want) {
		t.Fatal("exact-mode results changed under WithQuantized before any graph exists")
	}
	if err := quant.SetMode(ANN); err != nil {
		t.Fatal(err)
	}
	if err := quant.SetMode(Exact); err != nil {
		t.Fatal(err)
	}
	if got := snapshotScored(b.Queries, quant.TopK); !reflect.DeepEqual(got, want) {
		t.Fatal("exact-mode results changed after building a quantized graph")
	}

	pt := NewTupleSearch(b.Lake.Tables())
	qt := NewTupleSearch(b.Lake.Tables(), WithQuantized(true))
	wantT := snapshotTuples(b.Queries, pt)
	if got := snapshotTuples(b.Queries, qt); !reflect.DeepEqual(got, wantT) {
		t.Fatal("tuple exact-mode results changed under WithQuantized")
	}
	if err := qt.SetMode(ANN); err != nil {
		t.Fatal(err)
	}
	if err := qt.SetMode(Exact); err != nil {
		t.Fatal(err)
	}
	if got := snapshotTuples(b.Queries, qt); !reflect.DeepEqual(got, wantT) {
		t.Fatal("tuple exact-mode results changed after building a quantized graph")
	}
}

// TestQuantizedANNRecall gates the quantized candidate stage the same way
// TestANNRecall gates the float one: int8 navigation plus exact re-rank
// must keep at least 95% of the brute-force top 10.
func TestQuantizedANNRecall(t *testing.T) {
	b := annBench(t)
	const k = 10
	exact := NewStarmie(b.Lake)
	quant := NewStarmie(b.Lake, WithQuantized(true), WithMode(ANN))
	if st, n := quant.IndexBytes(); st != "quantized" || n <= 0 {
		t.Fatalf("IndexBytes = %s/%d, want quantized storage with a positive footprint", st, n)
	}
	r := recallAtK(b.Queries, k,
		func(q *table.Table, k int) []string { return scoredNames(exact.TopK(q, k)) },
		func(q *table.Table, k int) []string { return scoredNames(quant.TopK(q, k)) })
	if r < 0.95 {
		t.Fatalf("quantized recall@%d = %.3f, want >= 0.95", k, r)
	}
}

// TestIndexFootprint checks the IndexSizer accounting that feeds the
// dust_index_bytes gauge and /stats: no graph reports "none", a float
// graph reports "float", and flipping to SQ8 shrinks the stored-vector
// payload to at most 0.3x of float (d+16 vs 4d bytes per vector).
func TestIndexFootprint(t *testing.T) {
	b := annBenchSmall(t)
	s := NewStarmie(b.Lake)
	if st, n := s.IndexBytes(); st != "none" || n != 0 {
		t.Fatalf("graphless IndexBytes = %s/%d, want none/0", st, n)
	}
	if err := s.SetMode(ANN); err != nil {
		t.Fatal(err)
	}
	st, fbytes := s.IndexBytes()
	if st != "float" || fbytes <= 0 {
		t.Fatalf("float IndexBytes = %s/%d, want float/>0", st, fbytes)
	}
	fvec := s.Graph().VectorBytes()

	s.SetQuantized(true)
	st, qbytes := s.IndexBytes()
	if st != "quantized" || qbytes <= 0 {
		t.Fatalf("quantized IndexBytes = %s/%d, want quantized/>0", st, qbytes)
	}
	if qbytes >= fbytes {
		t.Fatalf("quantized index %d B not smaller than float %d B", qbytes, fbytes)
	}
	qvec := s.Graph().VectorBytes()
	if ratio := float64(qvec) / float64(fvec); ratio > 0.3 {
		t.Fatalf("quantized vector bytes %.3fx of float, want <= 0.3x", ratio)
	}

	// SetQuantized is idempotent and reversible: flipping back rebuilds
	// float storage.
	s.SetQuantized(true)
	if st, _ := s.IndexBytes(); st != "quantized" {
		t.Fatalf("idempotent SetQuantized(true) left storage %s", st)
	}
	s.SetQuantized(false)
	if st, _ := s.IndexBytes(); st != "float" {
		t.Fatalf("SetQuantized(false) left storage %s", st)
	}
}

// TestSaveLoadANNQuantized round-trips a quantized graph through
// SaveANN/LoadANN: storage survives, and the loaded searcher ranks
// bit-identically to the saver.
func TestSaveLoadANNQuantized(t *testing.T) {
	b := annBenchSmall(t)
	s := NewStarmie(b.Lake, WithMode(ANN), WithQuantized(true))
	var buf bytes.Buffer
	if err := s.SaveANN(&buf); err != nil {
		t.Fatal(err)
	}

	loaded := NewStarmie(b.Lake)
	if err := loaded.LoadANN(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !loaded.Graph().Quantized() {
		t.Fatal("loaded graph lost SQ8 storage")
	}
	if err := loaded.SetMode(ANN); err != nil {
		t.Fatal(err)
	}
	want := snapshotScored(b.Queries[:3], s.TopK)
	if got := snapshotScored(b.Queries[:3], loaded.TopK); !reflect.DeepEqual(got, want) {
		t.Fatal("loaded quantized graph ranks differently from the saved one")
	}
}

// TestLoadANNV1Float verifies the format-version bump keeps old indexes
// loadable: a version-1 envelope (the pre-quantization float layout,
// which is the v2 payload minus its leading storage flag) must decode
// into the same graph the v2 file describes.
func TestLoadANNV1Float(t *testing.T) {
	b := annBenchSmall(t)
	s := NewStarmie(b.Lake, WithMode(ANN))
	var buf bytes.Buffer
	if err := s.SaveANN(&buf); err != nil {
		t.Fatal(err)
	}
	_, payload, err := codec.ReadEnvelope(bytes.NewReader(buf.Bytes()), codec.KindANN, ANNFormatVersion)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the searcher-identity prefix to find where the graph
	// section starts; for float storage the v2 graph payload is exactly
	// the v1 layout behind a single storage-flag byte.
	var pre codec.Buffer
	pre.String(s.enc.Name())
	pre.String(s.enc.Model.Fingerprint())
	pre.Int(s.enc.Dim())
	pre.Strings(s.annTables)
	cut := len(pre.Bytes())
	if payload[cut] != 0 {
		t.Fatalf("expected float storage flag at offset %d, got %d", cut, payload[cut])
	}
	v1 := append(append([]byte(nil), payload[:cut]...), payload[cut+1:]...)
	var v1file bytes.Buffer
	if err := codec.WriteEnvelope(&v1file, codec.KindANN, 1, v1); err != nil {
		t.Fatal(err)
	}

	loaded := NewStarmie(b.Lake)
	if err := loaded.LoadANN(bytes.NewReader(v1file.Bytes())); err != nil {
		t.Fatalf("version-1 ANN file did not load: %v", err)
	}
	if loaded.Graph().Quantized() {
		t.Fatal("v1 float graph decoded as quantized")
	}
	if err := loaded.SetMode(ANN); err != nil {
		t.Fatal(err)
	}
	want := snapshotScored(b.Queries[:3], s.TopK)
	if got := snapshotScored(b.Queries[:3], loaded.TopK); !reflect.DeepEqual(got, want) {
		t.Fatal("v1-loaded graph ranks differently from the v2 original")
	}
}
