package search

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"dust/internal/codec"
	"dust/internal/datagen"
	"dust/internal/lake"
	"dust/internal/table"
)

// annBench is the recall fixture: large enough that the ANN candidate
// pool is a real subset of the lake (not everything), small enough for CI.
func annBench(t testing.TB) *datagen.Benchmark {
	t.Helper()
	return datagen.Generate("ann-bench", datagen.Config{
		Seed: 61, Domains: 8, TablesPerBase: 40, QueriesPerBase: 2,
		BaseRows: 60, MinRows: 8, MaxRows: 16,
	})
}

// annBenchSmall backs the behavioral tests (determinism, mode flips,
// persistence) that do not need lake scale; it keeps the race-enabled CI
// run affordable.
func annBenchSmall(t testing.TB) *datagen.Benchmark {
	t.Helper()
	return datagen.Generate("ann-bench-small", datagen.Config{
		Seed: 62, Domains: 6, TablesPerBase: 12, QueriesPerBase: 2,
		BaseRows: 40, MinRows: 6, MaxRows: 12,
	})
}

// recallAtK measures |approx∩exact|/k averaged over queries, the metric
// the acceptance bar (>= 0.95) is stated in.
func recallAtK(queries []*table.Table, k int, exact, approx func(*table.Table, int) []string) float64 {
	var sum float64
	for _, q := range queries {
		want := exact(q, k)
		got := approx(q, k)
		in := make(map[string]bool, len(got))
		for _, n := range got {
			in[n] = true
		}
		hits := 0
		for _, n := range want {
			if in[n] {
				hits++
			}
		}
		sum += float64(hits) / float64(len(want))
	}
	return sum / float64(len(queries))
}

func scoredNames(hits []Scored) []string {
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = h.Table.Name
	}
	return out
}

// TestANNRecall is the recall regression gate: HNSW candidates + exact
// re-rank must find at least 95% of the brute-force top 10 on the datagen
// benchmark, for the table-level and the tuple-level searcher.
func TestANNRecall(t *testing.T) {
	b := annBench(t)
	const k = 10

	t.Run("starmie", func(t *testing.T) {
		exact := NewStarmie(b.Lake)
		approx := exact.CloneWithLake(b.Lake).(*Starmie)
		if err := approx.SetMode(ANN); err != nil {
			t.Fatal(err)
		}
		r := recallAtK(b.Queries, k,
			func(q *table.Table, k int) []string { return scoredNames(exact.TopK(q, k)) },
			func(q *table.Table, k int) []string { return scoredNames(approx.TopK(q, k)) })
		if r < 0.95 {
			t.Fatalf("starmie ANN recall@%d = %.3f, want >= 0.95", k, r)
		}
	})

	t.Run("tuples", func(t *testing.T) {
		sb := annBenchSmall(t)
		exact := NewTupleSearch(sb.Lake.Tables())
		approx := NewTupleSearch(sb.Lake.Tables(), WithMode(ANN))
		key := func(hits []ScoredTuple) []string {
			out := make([]string, len(hits))
			for i, h := range hits {
				out[i] = fmt.Sprintf("%s/%d", h.Table.Name, h.Row)
			}
			return out
		}
		r := recallAtK(sb.Queries, k,
			func(q *table.Table, k int) []string { return key(exact.TopK(q, k)) },
			func(q *table.Table, k int) []string { return key(approx.TopK(q, k)) })
		if r < 0.95 {
			t.Fatalf("tuple ANN recall@%d = %.3f, want >= 0.95", k, r)
		}
	})
}

// TestExactModeUnchanged pins the refactor: a Staged searcher in Exact
// mode — including one that visited ANN mode and came back, carrying a
// graph — ranks bit-identically to the plain constructor-default path,
// at workers 1 and 8. This is the "exact mode stays seed behavior"
// equivalence the staged query plan must not disturb.
func TestExactModeUnchanged(t *testing.T) {
	b := annBenchSmall(t)
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			base := NewStarmie(b.Lake, WithWorkers(workers))
			want := snapshotScored(b.Queries[:3], base.TopK)

			toggled := base.CloneWithLake(b.Lake).(*Starmie)
			if err := toggled.SetMode(ANN); err != nil {
				t.Fatal(err)
			}
			if err := toggled.SetMode(Exact); err != nil {
				t.Fatal(err)
			}
			if got := snapshotScored(b.Queries[:3], toggled.TopK); !reflect.DeepEqual(got, want) {
				t.Fatal("exact mode after an ANN round trip ranks differently")
			}
			if base.Name() != "starmie" || toggled.Name() != "starmie" {
				t.Fatalf("exact-mode names changed: %q / %q", base.Name(), toggled.Name())
			}

			d := NewD3L(b.Lake, WithWorkers(workers))
			wantD := snapshotScored(b.Queries[:3], d.TopK)
			if err := d.SetMode(ANN); err != nil {
				t.Fatal(err)
			}
			if err := d.SetMode(Exact); err != nil {
				t.Fatal(err)
			}
			if got := snapshotScored(b.Queries[:3], d.TopK); !reflect.DeepEqual(got, wantD) {
				t.Fatal("d3l exact mode after a mode round trip ranks differently")
			}
		})
	}
}

// TestANNWorkersAgree pins the ANN plan's determinism across worker
// counts: the staged plan threads the same candidate set through the
// parallel scorer, so workers must not change results.
func TestANNWorkersAgree(t *testing.T) {
	b := annBenchSmall(t)
	s1 := NewStarmie(b.Lake, WithWorkers(1), WithMode(ANN))
	s8 := NewStarmie(b.Lake, WithWorkers(8), WithMode(ANN))
	if got, want := snapshotScored(b.Queries[:4], s8.TopK), snapshotScored(b.Queries[:4], s1.TopK); !reflect.DeepEqual(got, want) {
		t.Fatal("starmie ANN results differ between workers=1 and workers=8")
	}
	t1 := NewTupleSearch(b.Lake.Tables(), WithWorkers(1), WithMode(ANN))
	t8 := NewTupleSearch(b.Lake.Tables(), WithWorkers(8), WithMode(ANN))
	if got, want := snapshotTuples(b.Queries[:2], t8), snapshotTuples(b.Queries[:2], t1); !reflect.DeepEqual(got, want) {
		t.Fatal("tuple ANN results differ between workers=1 and workers=8")
	}
}

// TestANNIncrementalMutations drives AddTable/RemoveTable through an
// ANN-mode Starmie — including enough removals to trip the tombstone
// rebuild — checking after every step that the staged results match a
// from-scratch ANN index over the same lake built in the same table
// order, and that recall against the exact oracle holds.
func TestANNIncrementalMutations(t *testing.T) {
	b := datagen.Generate("ann-inc", datagen.Config{
		Seed: 67, Domains: 4, TablesPerBase: 10, QueriesPerBase: 1,
		BaseRows: 40, MinRows: 8, MaxRows: 12,
	})
	pool := b.Lake.Tables()
	q := b.Queries[0]

	l := lake.New("ann-inc")
	for _, tab := range pool[:len(pool)/2] {
		l.MustAdd(tab)
	}
	s := NewStarmie(l, WithMode(ANN))

	step := func(i int) {
		exact := NewStarmie(l)
		wantNames := scoredNames(exact.TopK(q, 5))
		in := map[string]bool{}
		for _, h := range s.TopK(q, 5) {
			in[h.Table.Name] = true
		}
		hits := 0
		for _, n := range wantNames {
			if in[n] {
				hits++
			}
		}
		if float64(hits)/float64(len(wantNames)) < 0.8 {
			t.Fatalf("step %d: mutated ANN index recalls %d/%d of the exact top-5", i, hits, len(wantNames))
		}
	}

	// Grow to the full pool, then shrink far enough to force a rebuild.
	for i, tab := range pool[len(pool)/2:] {
		l.MustAdd(tab)
		if err := s.AddTable(tab); err != nil {
			t.Fatal(err)
		}
		step(i)
	}
	removed := 0
	for _, tab := range pool {
		if l.Len() <= 6 || tab.Name == "" {
			break
		}
		// Keep the query's own domain so TopK stays meaningful.
		if b.Unionable[q.Name] != nil {
			skip := false
			for _, n := range b.Unionable[q.Name] {
				if n == tab.Name {
					skip = true
					break
				}
			}
			if skip {
				continue
			}
		}
		if err := s.RemoveTable(tab.Name); err != nil {
			t.Fatal(err)
		}
		if err := l.Remove(tab.Name); err != nil {
			t.Fatal(err)
		}
		removed++
		step(100 + removed)
	}
	if removed < 10 {
		t.Fatalf("only %d removals, not enough to exercise the rebuild threshold", removed)
	}
}

// TestSaveLoadANN round-trips the Starmie HNSW graph and checks the
// loaded searcher ranks identically to the saver in ANN mode; corrupt
// and mismatched inputs must fail with typed errors.
func TestSaveLoadANN(t *testing.T) {
	b := annBenchSmall(t)
	s := NewStarmie(b.Lake, WithMode(ANN))
	var buf bytes.Buffer
	if err := s.SaveANN(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	loaded, err := LoadStarmie(func() *bytes.Reader {
		var idx bytes.Buffer
		if err := s.Save(&idx); err != nil {
			t.Fatal(err)
		}
		return bytes.NewReader(idx.Bytes())
	}(), b.Lake)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.LoadANN(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if err := loaded.SetMode(ANN); err != nil {
		t.Fatal(err)
	}
	want := snapshotScored(b.Queries[:3], s.TopK)
	if got := snapshotScored(b.Queries[:3], loaded.TopK); !reflect.DeepEqual(got, want) {
		t.Fatal("loaded ANN graph ranks differently from the saved one")
	}

	// Corruption: flip a payload byte -> checksum failure.
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0xFF
	if err := loaded.LoadANN(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted ann graph loaded cleanly")
	}
	// A graph saved against a different lake must be rejected.
	other := datagen.Generate("ann-other", datagen.Config{
		Seed: 68, Domains: 2, TablesPerBase: 3, BaseRows: 20, MinRows: 6, MaxRows: 8,
	})
	so := NewStarmie(other.Lake, WithMode(ANN))
	var bufO bytes.Buffer
	if err := so.SaveANN(&bufO); err != nil {
		t.Fatal(err)
	}
	if err := loaded.LoadANN(bytes.NewReader(bufO.Bytes())); !errors.Is(err, ErrLakeMismatch) {
		t.Fatalf("foreign graph load err = %v, want ErrLakeMismatch", err)
	}
	// SaveANN without a graph is an error.
	if err := NewStarmie(other.Lake).SaveANN(&bytes.Buffer{}); err == nil {
		t.Fatal("SaveANN without a graph did not error")
	}
	_ = codec.ErrCorrupt // typed-error vocabulary shared with the fuzz target

	// A zero-column table contributes no graph nodes and must not break
	// the save/load round trip.
	withEmpty := lake.New("with-empty")
	for _, tab := range other.Lake.Tables() {
		withEmpty.MustAdd(tab)
	}
	withEmpty.MustAdd(table.New("columnless"))
	se := NewStarmie(withEmpty, WithMode(ANN))
	var bufE bytes.Buffer
	if err := se.SaveANN(&bufE); err != nil {
		t.Fatal(err)
	}
	le := NewStarmie(withEmpty)
	if err := le.LoadANN(bytes.NewReader(bufE.Bytes())); err != nil {
		t.Fatalf("graph over a lake with a zero-column table did not load: %v", err)
	}
}

// TestStagedInterface checks the Retriever plumbing: exact retrievers
// nominate the whole lake, approximate ones a subset, and mode flips are
// reflected in names (which serving config tags key on).
func TestStagedInterface(t *testing.T) {
	// The full-size fixture: LSH candidate generation needs enough value
	// overlap between derived tables to populate its buckets at all.
	b := annBench(t)
	for _, mk := range []func() Staged{
		func() Staged { return NewStarmie(b.Lake) },
		func() Staged { return NewD3L(b.Lake) },
	} {
		s := mk()
		if s.RetrievalMode() != Exact {
			t.Fatalf("%s: default mode = %v, want Exact", s.Name(), s.RetrievalMode())
		}
		if got := s.Retriever().Name(); got != "exact" {
			t.Fatalf("%s: exact retriever named %q", s.Name(), got)
		}
		names, err := s.Retriever().Retrieve(context.Background(), b.Queries[0], 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(names) != b.Lake.Len() {
			t.Fatalf("%s: exact retriever nominated %d of %d tables", s.Name(), len(names), b.Lake.Len())
		}
		exactName := s.Name()
		if err := s.SetMode(ANN); err != nil {
			t.Fatal(err)
		}
		if s.Name() == exactName {
			t.Fatalf("%s: ANN mode did not change the searcher name", exactName)
		}
		names, err = s.Retriever().Retrieve(context.Background(), b.Queries[0], 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(names) == 0 || len(names) >= b.Lake.Len() {
			t.Fatalf("%s: approximate retriever nominated %d of %d tables", s.Name(), len(names), b.Lake.Len())
		}
		if err := s.SetMode(Mode(99)); !errors.Is(err, ErrUnknownMode) {
			t.Fatalf("%s: SetMode(99) err = %v, want ErrUnknownMode", s.Name(), err)
		}
	}
}

// TestD3LANNEmptyBucketsFallBack pins the behavior cliff at zero LSH
// candidates: a query overlapping nothing must still get the exact
// best-effort ranking in ANN mode, not an empty result.
func TestD3LANNEmptyBucketsFallBack(t *testing.T) {
	b := annBenchSmall(t)
	d := NewD3L(b.Lake, WithMode(ANN))
	q := table.New("alien", "Zzx")
	q.MustAppendRow("qqqqqq-no-overlap-1")
	q.MustAppendRow("qqqqqq-no-overlap-2")
	if cands := d.CandidateTables(q); len(cands) != 0 {
		t.Skipf("fixture unexpectedly overlaps the query (%d candidates)", len(cands))
	}
	got := d.TopK(q, 5)
	want := NewD3L(b.Lake).TopK(q, 5)
	if len(got) != len(want) {
		t.Fatalf("ANN fallback returned %d hits, exact returns %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Table.Name != want[i].Table.Name || got[i].Score != want[i].Score {
			t.Fatalf("hit %d: ann %s=%v, exact %s=%v",
				i, got[i].Table.Name, got[i].Score, want[i].Table.Name, want[i].Score)
		}
	}
}
