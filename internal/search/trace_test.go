package search

import (
	"context"
	"testing"
	"time"
)

func TestTraceContextRoundTrip(t *testing.T) {
	if TraceFrom(context.Background()) != nil {
		t.Fatal("empty context yielded a trace")
	}
	tr := &Trace{}
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("trace did not round-trip through the context")
	}
	// A nil trace masks an outer one — the shard coordinator uses this so
	// sub-searchers below it do not double-count stages it records itself.
	if TraceFrom(WithTrace(ctx, nil)) != nil {
		t.Fatal("nil trace did not mask the outer trace")
	}
}

func TestTraceAddHelpers(t *testing.T) {
	// All Add helpers are nil-safe: untraced queries pay nothing.
	var nilTr *Trace
	nilTr.AddEncode(time.Now())
	nilTr.AddRetrieve(time.Now())
	nilTr.AddScore(time.Now())
	nilTr.AddDiversify(time.Now())

	tr := &Trace{}
	start := time.Now().Add(-time.Millisecond)
	tr.AddEncode(start)
	tr.AddRetrieve(start)
	tr.AddScore(start)
	tr.AddDiversify(start)
	for name, got := range map[string]int64{
		"encode":    tr.EncodeNS.Load(),
		"retrieve":  tr.RetrieveNS.Load(),
		"score":     tr.ScoreNS.Load(),
		"diversify": tr.DiversifyNS.Load(),
	} {
		if got < time.Millisecond.Nanoseconds() {
			t.Fatalf("%s stage recorded %dns, want >= 1ms", name, got)
		}
	}
	// Adds accumulate rather than overwrite.
	before := tr.EncodeNS.Load()
	tr.AddEncode(time.Now().Add(-time.Millisecond))
	if tr.EncodeNS.Load() <= before {
		t.Fatal("second AddEncode did not accumulate")
	}
}

func TestTracePopulatedByStagedSearch(t *testing.T) {
	b := ctxLake()
	s := NewStarmie(b.Lake)
	tr := &Trace{}
	if _, err := s.TopKContext(WithTrace(context.Background(), tr), b.Queries[0], 3); err != nil {
		t.Fatal(err)
	}
	if tr.EncodeNS.Load() <= 0 {
		t.Fatal("staged search recorded no encode time")
	}
	if tr.RetrieveNS.Load() <= 0 {
		t.Fatal("staged search recorded no retrieve time")
	}
	if tr.ScoreNS.Load() <= 0 {
		t.Fatal("staged search recorded no score time")
	}
}
