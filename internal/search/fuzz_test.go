package search

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoadIndex throws arbitrary bytes at all four index loaders — the
// three searcher codecs and the HNSW candidate-graph codec: every input
// must return cleanly — a loaded index or a typed error — and never panic
// or over-allocate. Seeds are the golden index files (valid inputs whose
// mutations explore deep decoder paths), a freshly saved ANN graph, and
// envelope fragments.
func FuzzLoadIndex(f *testing.F) {
	for _, name := range []string{"starmie", "d3l", "tuples"} {
		if data, err := os.ReadFile(filepath.Join("testdata", "golden_"+name+".idx")); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("DSTIDX"))
	f.Add([]byte("DSTIDXS\x01\x00\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte("DSTIDXA\x01\x00\xff\xff\xff\xff\xff\xff\xff\xff"))

	b := persistBench(f)
	tables := b.Lake.Tables()
	// annHost stays pristine; each iteration loads into a throwaway
	// clone so no fuzz input's graph survives into later iterations —
	// a recorded crasher must reproduce on a fresh host. The seed
	// corpus includes annHost's own valid graph so mutations explore
	// the deep graph-decoder paths.
	annHost := NewStarmie(b.Lake, WithMode(ANN))
	var annSeed bytes.Buffer
	if err := annHost.SaveANN(&annSeed); err != nil {
		f.Fatal(err)
	}
	f.Add(annSeed.Bytes())

	// The SQ8 side of the graph codec: a valid quantized record, one with
	// bytes flipped deep in the node section (lands in scales/offsets/
	// codes, steering mutations at the quantization validators), and a
	// truncation that cuts a node's code block short.
	qHost := NewStarmie(b.Lake, WithMode(ANN), WithQuantized(true))
	var qSeed bytes.Buffer
	if err := qHost.SaveANN(&qSeed); err != nil {
		f.Fatal(err)
	}
	f.Add(qSeed.Bytes())
	flipped := append([]byte(nil), qSeed.Bytes()...)
	flipped[len(flipped)*3/4] ^= 0xFF
	f.Add(flipped)
	f.Add(qSeed.Bytes()[:len(qSeed.Bytes())*2/3])

	f.Fuzz(func(t *testing.T, data []byte) {
		// A successful load must yield a usable index; errors just return.
		if s, err := LoadStarmie(bytes.NewReader(data), b.Lake); err == nil {
			s.TopK(b.Queries[0], 3)
		}
		if d, err := LoadD3L(bytes.NewReader(data), b.Lake); err == nil {
			d.TopK(b.Queries[0], 3)
		}
		if ts, err := LoadTupleSearch(bytes.NewReader(data), tables); err == nil {
			ts.TopK(b.Queries[0], 3)
		}
		// Corrupt graph bytes must error, never panic; an accepted graph
		// must survive being searched.
		host := annHost.CloneWithLake(b.Lake).(*Starmie)
		if err := host.LoadANN(bytes.NewReader(data)); err == nil {
			host.TopK(b.Queries[0], 3)
		}
	})
}
