package search

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"dust/internal/datagen"
	"dust/internal/embed"
	"dust/internal/lake"
	"dust/internal/table"
)

// bigTable builds a table whose columns exceed the encoder token budget, so
// its Starmie embedding depends on the corpus TF-IDF selection — the hard
// case for incremental updates, where mutating any table must refresh it.
func bigTable(name string, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	t := table.New(name, "Myth", "Definition")
	for i := 0; i < 3*embed.TokenBudget/4; i++ {
		t.MustAppendRow(
			fmt.Sprintf("creature%d%d", seed, rng.Intn(1000)),
			fmt.Sprintf("legend%d whispered%d", rng.Intn(1000), rng.Intn(1000)),
		)
	}
	return t
}

// incSearcher abstracts the three searchers for the equivalence harness:
// mutate is the Incremental surface, results snapshots a few queries'
// ranked output as comparable strings, rebuild constructs the same searcher
// from scratch over the current lake.
type incSearcher struct {
	mutate  Incremental
	results func() []string
	rebuild func() incSearcher
}

func snapshotScored(queries []*table.Table, topK func(*table.Table, int) []Scored) []string {
	var out []string
	for _, q := range queries {
		for i, sc := range topK(q, 8) {
			out = append(out, fmt.Sprintf("%s#%d:%s=%x", q.Name, i, sc.Table.Name, sc.Score))
		}
	}
	return out
}

func snapshotTuples(queries []*table.Table, ts *TupleSearch) []string {
	var out []string
	for _, q := range queries {
		for i, sc := range ts.TopK(q, 12) {
			out = append(out, fmt.Sprintf("%s#%d:%s/%d=%x", q.Name, i, sc.Table.Name, sc.Row, sc.Score))
		}
	}
	return out
}

func newIncSearcher(t *testing.T, kind string, l *lake.Lake, queries []*table.Table, workers int) incSearcher {
	t.Helper()
	switch kind {
	case "starmie":
		s := NewStarmie(l, WithWorkers(workers))
		return incSearcher{
			mutate:  s,
			results: func() []string { return snapshotScored(queries, s.TopK) },
			rebuild: func() incSearcher { return newIncSearcher(t, kind, l, queries, workers) },
		}
	case "d3l":
		d := NewD3L(l, WithWorkers(workers))
		return incSearcher{
			mutate: d,
			results: func() []string {
				out := snapshotScored(queries, d.TopK)
				// CandidateTables (the LSH pruning path) must also match a
				// rebuilt index; set semantics, so emit sorted via map print.
				for _, q := range queries {
					cands := d.CandidateTables(q)
					names := make([]string, 0, len(cands))
					for n := range cands {
						names = append(names, n)
					}
					sort.Strings(names)
					out = append(out, fmt.Sprintf("cands(%s)=%v", q.Name, names))
				}
				return out
			},
			rebuild: func() incSearcher { return newIncSearcher(t, kind, l, queries, workers) },
		}
	case "tuples":
		ts := NewTupleSearch(l.Tables(), WithWorkers(workers))
		return incSearcher{
			mutate:  ts,
			results: func() []string { return snapshotTuples(queries, ts) },
			rebuild: func() incSearcher { return newIncSearcher(t, kind, l, queries, workers) },
		}
	}
	panic("unknown searcher kind " + kind)
}

// TestIncrementalEquivalence drives randomized interleaved AddTable /
// RemoveTable sequences against each searcher and checks, at every step,
// that query results are bit-identical to a from-scratch rebuild over the
// mutated lake — for the sequential and the parallel execution paths.
func TestIncrementalEquivalence(t *testing.T) {
	base := datagen.Generate("inc-test", datagen.Config{
		Seed: 29, Domains: 3, TablesPerBase: 4, BaseRows: 24, MinRows: 8, MaxRows: 12,
	})
	queries := base.Queries[:2]

	// The mutation pool: the benchmark's lake tables plus two corpus-heavy
	// tables that force Starmie's TF-IDF refresh path.
	pool := append([]*table.Table{}, base.Lake.Tables()...)
	pool = append(pool, bigTable("big_a", 1), bigTable("big_b", 2))

	for _, kind := range []string{"starmie", "d3l", "tuples"} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", kind, workers), func(t *testing.T) {
				rng := rand.New(rand.NewSource(97))
				l := lake.New("inc")
				inLake := map[string]bool{}
				for _, tab := range pool[:len(pool)/2] {
					l.MustAdd(tab)
					inLake[tab.Name] = true
				}
				inc := newIncSearcher(t, kind, l, queries, workers)

				for step := 0; step < 10; step++ {
					var absent, present []*table.Table
					for _, tab := range pool {
						if inLake[tab.Name] {
							present = append(present, tab)
						} else {
							absent = append(absent, tab)
						}
					}
					// Bias toward adds so the lake stays populated.
					if len(present) > 1 && (len(absent) == 0 || rng.Intn(3) == 0) {
						victim := present[rng.Intn(len(present))]
						if err := inc.mutate.RemoveTable(victim.Name); err != nil {
							t.Fatalf("step %d: remove %s: %v", step, victim.Name, err)
						}
						if err := l.Remove(victim.Name); err != nil {
							t.Fatal(err)
						}
						inLake[victim.Name] = false
					} else {
						added := absent[rng.Intn(len(absent))]
						l.MustAdd(added)
						if err := inc.mutate.AddTable(added); err != nil {
							t.Fatalf("step %d: add %s: %v", step, added.Name, err)
						}
						inLake[added.Name] = true
					}

					got := inc.results()
					want := inc.rebuild().results()
					if len(got) != len(want) {
						t.Fatalf("step %d: %d results, rebuild has %d", step, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("step %d result %d:\nincremental: %s\nrebuilt:     %s",
								step, i, got[i], want[i])
						}
					}
				}
			})
		}
	}
}

// TestIncrementalWorkersAgree drives the same mutation sequence with one
// and eight workers and checks the incremental indexes agree with each
// other at every step (rebuild equivalence is covered above; this pins the
// parallel refresh path against the sequential one directly).
func TestIncrementalWorkersAgree(t *testing.T) {
	base := datagen.Generate("inc-workers", datagen.Config{
		Seed: 31, Domains: 2, TablesPerBase: 3, BaseRows: 20, MinRows: 6, MaxRows: 10,
	})
	queries := base.Queries[:1]
	pool := append([]*table.Table{}, base.Lake.Tables()...)
	pool = append(pool, bigTable("big_w", 3))

	for _, kind := range []string{"starmie", "d3l", "tuples"} {
		t.Run(kind, func(t *testing.T) {
			drive := func(workers int) [][]string {
				rng := rand.New(rand.NewSource(5))
				l := lake.New("inc")
				for _, tab := range pool[:3] {
					l.MustAdd(tab)
				}
				inc := newIncSearcher(t, kind, l, queries, workers)
				var snaps [][]string
				for _, tab := range pool[3:] {
					l.MustAdd(tab)
					if err := inc.mutate.AddTable(tab); err != nil {
						t.Fatal(err)
					}
					snaps = append(snaps, inc.results())
					if rng.Intn(2) == 0 {
						if err := inc.mutate.RemoveTable(tab.Name); err != nil {
							t.Fatal(err)
						}
						if err := l.Remove(tab.Name); err != nil {
							t.Fatal(err)
						}
						snaps = append(snaps, inc.results())
					}
				}
				return snaps
			}
			seq, par := drive(1), drive(8)
			if len(seq) != len(par) {
				t.Fatalf("snapshot counts differ: %d vs %d", len(seq), len(par))
			}
			for i := range seq {
				for j := range seq[i] {
					if seq[i][j] != par[i][j] {
						t.Fatalf("snapshot %d entry %d: workers=1 %s, workers=8 %s",
							i, j, seq[i][j], par[i][j])
					}
				}
			}
		})
	}
}

func TestIncrementalErrors(t *testing.T) {
	b := persistBench(t)
	tab := b.Lake.Tables()[0]
	s := NewStarmie(b.Lake)
	d := NewD3L(b.Lake)
	ts := NewTupleSearch(b.Lake.Tables())
	for name, inc := range map[string]Incremental{"starmie": s, "d3l": d, "tuples": ts} {
		if err := inc.AddTable(tab); !errors.Is(err, ErrDuplicateTable) {
			t.Errorf("%s: duplicate AddTable err = %v, want ErrDuplicateTable", name, err)
		}
		if err := inc.RemoveTable("never-indexed"); !errors.Is(err, ErrUnknownTable) {
			t.Errorf("%s: RemoveTable of unknown err = %v, want ErrUnknownTable", name, err)
		}
	}
}
