// Package search implements the table-union-search substrate DUST builds
// on (paper Algorithm 1, line 3) and the two search baselines of the
// evaluation: a Starmie-like searcher (contextualized column embeddings +
// maximum-weight bipartite matching, §6.2.3/§6.5.1) and a D3L-like searcher
// (aggregation of name / value-overlap / format / embedding / distribution
// signals, §6.5.1). It also provides the tuple-level adaptation of Starmie
// used as a Table 3 baseline, and the MAP metric (§6.5.2).
package search

import (
	"context"
	"errors"
	"sort"

	"dust/internal/datagen"
	"dust/internal/lake"
	"dust/internal/par"
	"dust/internal/table"
)

// Scored is a search hit: a lake table and its unionability score.
type Scored struct {
	Table *table.Table
	Score float64
}

// Searcher retrieves the top-k tables unionable with a query.
type Searcher interface {
	Name() string
	TopK(query *table.Table, k int) []Scored
}

// Typed failures of the incremental-mutation and persistence surfaces.
var (
	// ErrDuplicateTable reports AddTable of a name the index already holds.
	ErrDuplicateTable = errors.New("search: table already indexed")
	// ErrUnknownTable reports RemoveTable of a name the index never saw.
	ErrUnknownTable = errors.New("search: table not indexed")
	// ErrLakeMismatch reports a saved index whose table set does not match
	// the lake it is being loaded against.
	ErrLakeMismatch = errors.New("search: saved index does not match the lake")
	// ErrEncoderMismatch reports a saved index built with a different
	// encoder configuration than the loading searcher.
	ErrEncoderMismatch = errors.New("search: saved index built with a different encoder")
)

// Incremental is an index that supports delta updates: AddTable indexes one
// new table and RemoveTable un-indexes one, in O(delta) work rather than a
// full rebuild, while keeping query results bit-identical to an index built
// from scratch over the mutated table set. All three searchers in this
// package implement it.
//
// Contract for the lake-backed searchers (Starmie, D3L): the searcher and
// its lake must agree whenever a query runs. Call lake.Add before (or right
// after) AddTable; call RemoveTable while the table is still in the lake,
// then lake.Remove. dust.Pipeline.AddTable/RemoveTable sequence both sides
// correctly. Mutations are not safe concurrently with queries.
type Incremental interface {
	AddTable(t *table.Table) error
	RemoveTable(name string) error
}

// QueryBounded is a Searcher whose query-time scoring parallelism can be
// re-bounded without re-indexing: QueryWorkers returns a searcher sharing
// the same immutable index that scores queries with at most n workers.
// Batch-serving callers use it to stop per-query fan-out from multiplying
// their own query-level parallelism.
type QueryBounded interface {
	Searcher
	QueryWorkers(n int) Searcher
}

// ContextSearcher is a Searcher with a cancellation path: TopKContext
// abandons the ranking once ctx is cancelled and returns ctx.Err() instead
// of a truncated (and therefore wrong) ranking. All three searchers in this
// package implement it; their plain TopK is TopKContext under a background
// context.
type ContextSearcher interface {
	Searcher
	TopKContext(ctx context.Context, query *table.Table, k int) ([]Scored, error)
}

// TopKCtx runs a search under ctx: ContextSearchers get real mid-query
// cancellation, arbitrary Searchers are checked before the (uninterruptible)
// call. The error is ctx.Err() when the query was cancelled.
func TopKCtx(ctx context.Context, s Searcher, query *table.Table, k int) ([]Scored, error) {
	if cs, ok := s.(ContextSearcher); ok {
		return cs.TopKContext(ctx, query, k)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.TopK(query, k), nil
}

// Cloner is a Searcher that can produce an independently mutable copy of
// itself bound to a (cloned) lake: Incremental mutations on the clone never
// disturb the original, while the heavy immutable index state — embedding
// vectors, signatures — is shared between the two. Snapshot-swapped serving
// (internal/serve) builds its copy-on-write shadows with it, so queries in
// flight on the original keep reading a frozen index with no locking.
type Cloner interface {
	Searcher
	CloneWithLake(l *lake.Lake) Searcher
}

// Option configures a searcher's execution, shared by every searcher in
// this package.
type Option func(*options)

type options struct {
	workers int
}

// WithWorkers bounds the parallelism of index construction and query
// scoring; n <= 0 selects the GOMAXPROCS-derived default and n == 1 forces
// the sequential path. Results are identical for every worker count.
func WithWorkers(n int) Option { return func(o *options) { o.workers = n } }

func applyOptions(opts []Option) options {
	var o options
	for _, f := range opts {
		f(&o)
	}
	return o
}

// rankAllCtx scores every lake table (in parallel across workers) and
// returns the top k, ties broken by table name for determinism. Scores are
// written by table index, so the ranking is identical for every worker
// count. Once ctx is cancelled the remaining tables are not scored and
// ctx.Err() is returned instead of a partial ranking; cancellation is
// checked per table, the natural work unit of the scan.
func rankAllCtx(ctx context.Context, l *lake.Lake, k, workers int, score func(t *table.Table) float64) ([]Scored, error) {
	tables := l.Tables()
	out := make([]Scored, len(tables))
	if err := par.ForCtx(ctx, workers, len(tables), func(i int) {
		out[i] = Scored{Table: tables[i], Score: score(tables[i])}
	}); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Table.Name < out[j].Table.Name
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// MAP computes Mean Average Precision of a searcher against a benchmark's
// unionability ground truth, retrieving k results per query (§6.5.2).
func MAP(s Searcher, b *datagen.Benchmark, k int) float64 {
	if len(b.Queries) == 0 {
		return 0
	}
	var sum float64
	for _, q := range b.Queries {
		truth := map[string]bool{}
		for _, n := range b.Unionable[q.Name] {
			truth[n] = true
		}
		if len(truth) == 0 {
			continue
		}
		hits := 0
		var ap float64
		for i, sc := range s.TopK(q, k) {
			if truth[sc.Table.Name] {
				hits++
				ap += float64(hits) / float64(i+1)
			}
		}
		denom := len(truth)
		if k < denom {
			denom = k
		}
		if denom > 0 {
			sum += ap / float64(denom)
		}
	}
	return sum / float64(len(b.Queries))
}
