// Package search implements the table-union-search substrate DUST builds
// on (paper Algorithm 1, line 3) and the two search baselines of the
// evaluation: a Starmie-like searcher (contextualized column embeddings +
// maximum-weight bipartite matching, §6.2.3/§6.5.1) and a D3L-like searcher
// (aggregation of name / value-overlap / format / embedding / distribution
// signals, §6.5.1). It also provides the tuple-level adaptation of Starmie
// used as a Table 3 baseline, and the MAP metric (§6.5.2).
package search

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"dust/internal/ann"
	"dust/internal/datagen"
	"dust/internal/lake"
	"dust/internal/par"
	"dust/internal/table"
	"dust/internal/tokenize"
)

// Scored is a search hit: a lake table and its unionability score.
type Scored struct {
	Table *table.Table
	Score float64
}

// Searcher retrieves the top-k tables unionable with a query.
type Searcher interface {
	Name() string
	TopK(query *table.Table, k int) []Scored
}

// Mode selects the candidate-generation backend of a Staged searcher's
// query plan (retrieve -> score -> diversify).
type Mode int

const (
	// Exact scans and scores every lake table — the seed behavior, the
	// default, and the recall oracle ANN mode is measured against.
	Exact Mode = iota
	// ANN generates candidates approximately — HNSW over the embedding
	// index for Starmie and the tuple-level searcher, the LSH banding
	// index for D3L — and re-scores only those candidates exactly, so
	// query latency tracks the candidate pool instead of the lake size.
	ANN
)

// String names the mode the way the CLI -ann flags and searcher Name()
// suffixes do.
func (m Mode) String() string {
	switch m {
	case Exact:
		return "exact"
	case ANN:
		return "ann"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Staged retrieval defaults, shared by every ANN-capable searcher here.
const (
	// DefaultOversample is the candidate multiplier of the ANN stage:
	// stage one retrieves about Oversample*k candidates per query vector
	// before the exact re-rank, trading extra exact scoring for recall.
	DefaultOversample = 4.0
	// DefaultEfSearch bounds the HNSW base-layer beam width.
	DefaultEfSearch = 120
	// rebuildThreshold is the tombstone fraction past which a mutated
	// HNSW graph is rebuilt from its live nodes instead of accumulating
	// more dead weight.
	rebuildThreshold = 0.5
)

// ErrUnknownMode reports SetMode of a Mode this package does not define.
var ErrUnknownMode = errors.New("search: unknown retrieval mode")

// Retriever is the candidate-generation stage of the staged query plan:
// given a query it nominates lake tables worth exact scoring, unranked —
// ranking is the scorer's job. limit is the rank depth the caller
// intends to score (the k of its top-k); backends oversample internally
// exactly as the owning searcher's TopK does, and set-shaped backends
// (the exact scan, LSH buckets) ignore it and return their whole set.
type Retriever interface {
	Name() string
	Retrieve(ctx context.Context, query *table.Table, limit int) ([]string, error)
}

// Staged is a Searcher whose retrieval stage is pluggable between the
// exact full scan and an approximate candidate generator whose nominees
// are re-scored exactly. Starmie and D3L implement it (the tuple-level
// searcher has the same surface, typed for tuple hits).
type Staged interface {
	Searcher
	// SetMode switches the retrieval backend; entering ANN builds the
	// approximate index on first use (O(n log n) for HNSW) and is a
	// no-op when one is already installed (e.g. loaded from disk).
	SetMode(Mode) error
	// RetrievalMode reports the active retrieval backend.
	RetrievalMode() Mode
	// Retriever exposes the active candidate-generation stage.
	Retriever() Retriever
}

// staleGraph reports whether a mutated HNSW graph has crossed the
// rebuild threshold — the one compaction policy both ANN-capable
// searchers apply (the size floor keeps tiny, churn-heavy indexes from
// rebuilding on every other mutation).
func staleGraph(ix *ann.Index) bool {
	return ix != nil && ix.Len() >= 8 && ix.DeletedFraction() > rebuildThreshold
}

// exactRetriever nominates every lake table: stage one of the default
// query plan and the recall oracle approximate retrievers are measured
// against.
type exactRetriever struct{ l *lake.Lake }

func (exactRetriever) Name() string { return "exact" }

func (r exactRetriever) Retrieve(ctx context.Context, _ *table.Table, _ int) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return r.l.Names(), nil
}

// Typed failures of the incremental-mutation and persistence surfaces.
var (
	// ErrDuplicateTable reports AddTable of a name the index already holds.
	ErrDuplicateTable = errors.New("search: table already indexed")
	// ErrUnknownTable reports RemoveTable of a name the index never saw.
	ErrUnknownTable = errors.New("search: table not indexed")
	// ErrLakeMismatch reports a saved index whose table set does not match
	// the lake it is being loaded against.
	ErrLakeMismatch = errors.New("search: saved index does not match the lake")
	// ErrEncoderMismatch reports a saved index built with a different
	// encoder configuration than the loading searcher.
	ErrEncoderMismatch = errors.New("search: saved index built with a different encoder")
)

// Incremental is an index that supports delta updates: AddTable indexes one
// new table and RemoveTable un-indexes one, in O(delta) work rather than a
// full rebuild, while keeping query results bit-identical to an index built
// from scratch over the mutated table set. All three searchers in this
// package implement it.
//
// Contract for the lake-backed searchers (Starmie, D3L): the searcher and
// its lake must agree whenever a query runs. Call lake.Add before (or right
// after) AddTable; call RemoveTable while the table is still in the lake,
// then lake.Remove. dust.Pipeline.AddTable/RemoveTable sequence both sides
// correctly. Mutations are not safe concurrently with queries.
type Incremental interface {
	AddTable(t *table.Table) error
	RemoveTable(name string) error
}

// QueryBounded is a Searcher whose query-time scoring parallelism can be
// re-bounded without re-indexing: QueryWorkers returns a searcher sharing
// the same immutable index that scores queries with at most n workers.
// Batch-serving callers use it to stop per-query fan-out from multiplying
// their own query-level parallelism.
type QueryBounded interface {
	Searcher
	QueryWorkers(n int) Searcher
}

// ContextSearcher is a Searcher with a cancellation path: TopKContext
// abandons the ranking once ctx is cancelled and returns ctx.Err() instead
// of a truncated (and therefore wrong) ranking. All three searchers in this
// package implement it; their plain TopK is TopKContext under a background
// context.
type ContextSearcher interface {
	Searcher
	TopKContext(ctx context.Context, query *table.Table, k int) ([]Scored, error)
}

// TopKCtx runs a search under ctx: ContextSearchers get real mid-query
// cancellation, arbitrary Searchers are checked before the (uninterruptible)
// call. The error is ctx.Err() when the query was cancelled.
func TopKCtx(ctx context.Context, s Searcher, query *table.Table, k int) ([]Scored, error) {
	if cs, ok := s.(ContextSearcher); ok {
		return cs.TopKContext(ctx, query, k)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.TopK(query, k), nil
}

// Trace accumulates the per-stage wall time of one query through the
// staged plan: encode (query representation + tuple embedding), retrieve
// (candidate generation), score (exact ranking of the candidates), and
// diversify (filled by the dust pipeline). Fields are atomic so a sharded
// scatter can record from concurrent goroutines; a Trace travels with the
// request via WithTrace, and searchers that find one in their context add
// their stage costs to it. Serving layers turn the totals into latency
// histograms and per-request log fields.
type Trace struct {
	// EncodeNS is nanoseconds spent deriving representations: the query's
	// prepared form here, plus tuple embedding in the dust pipeline.
	EncodeNS atomic.Int64
	// RetrieveNS is nanoseconds spent generating candidates (the exact
	// scan's table listing, ANN lookups, or the sharded scatter).
	RetrieveNS atomic.Int64
	// ScoreNS is nanoseconds spent exactly scoring and ranking candidates
	// (the sharded gather's merge and global re-score included).
	ScoreNS atomic.Int64
	// DiversifyNS is nanoseconds spent in the diversification stage; the
	// search layer never writes it, the dust pipeline does.
	DiversifyNS atomic.Int64
}

// AddEncode adds the wall time since start to the encode stage. A nil
// Trace is a no-op, as for all the Add helpers, so untraced queries cost
// call sites nothing but the time.Now.
func (tr *Trace) AddEncode(start time.Time) {
	if tr != nil {
		tr.EncodeNS.Add(time.Since(start).Nanoseconds())
	}
}

// AddRetrieve adds the wall time since start to the retrieve stage.
func (tr *Trace) AddRetrieve(start time.Time) {
	if tr != nil {
		tr.RetrieveNS.Add(time.Since(start).Nanoseconds())
	}
}

// AddScore adds the wall time since start to the score stage.
func (tr *Trace) AddScore(start time.Time) {
	if tr != nil {
		tr.ScoreNS.Add(time.Since(start).Nanoseconds())
	}
}

// AddDiversify adds the wall time since start to the diversify stage.
func (tr *Trace) AddDiversify(start time.Time) {
	if tr != nil {
		tr.DiversifyNS.Add(time.Since(start).Nanoseconds())
	}
}

// traceKey keys a *Trace in a context.
type traceKey struct{}

// WithTrace returns a context carrying tr: staged searchers below the call
// record their per-stage wall time into it. Passing nil masks any outer
// trace — the sharded coordinator uses that so its sub-searchers do not
// double-count stages the coordinator itself reports.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFrom returns the Trace carried by ctx, or nil when the query is
// untraced.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// PreparedQuery is a query's encoded representation — column embeddings,
// MinHash signatures, signal profiles — computed once by Prepare and
// reusable across many TopKPrepared calls. A prepared query is only
// meaningful to searchers sharing the encoder state of the one that
// prepared it: identically configured encoders over the same (shared)
// corpus, which is exactly what the shards of one partitioned lake hold.
// Implementations type-assert the concrete preparation and report
// ErrForeignPrepared for one produced by a different searcher family.
type PreparedQuery interface {
	// Query returns the query table the preparation encodes.
	Query() *table.Table
}

// ErrForeignPrepared reports a PreparedQuery handed to a searcher family
// that did not produce it.
var ErrForeignPrepared = errors.New("search: prepared query from a different searcher family")

// PreparedSearcher splits query encoding out of the search, so fan-out
// callers — the sharded scatter in internal/shard — encode a query exactly
// once and search many sub-indexes with the prepared form instead of
// re-deriving the representation per shard. TopKPrepared(ctx, Prepare(q), k)
// returns exactly what TopKContext(ctx, q, k) would: in exact mode the
// results are bit-identical. All three searchers in this package implement
// it (the tuple-level searcher with a typed analogue).
type PreparedSearcher interface {
	ContextSearcher
	// Prepare encodes the query once; the result may be reused across
	// any number of TopKPrepared calls and across searchers sharing this
	// searcher's encoder state.
	Prepare(query *table.Table) PreparedQuery
	// TopKPrepared is TopKContext over an already-encoded query.
	TopKPrepared(ctx context.Context, pq PreparedQuery, k int) ([]Scored, error)
}

// PreparedNominator is the candidate-only half of the prepared surface: it
// nominates candidate tables for a prepared query WITHOUT scoring them,
// and scores single tables on demand. A scatter-gather coordinator uses it
// to run retrieval per shard but exact scoring exactly once, globally, on
// the merged candidate pool — instead of every shard exactly scoring its
// own oversampled pool.
type PreparedNominator interface {
	// NominatePrepared returns candidate table names, name-sorted. depth
	// bounds the per-query-vector neighbor count for graph backends
	// (HNSW); set-shaped backends (the exact scan, LSH buckets) ignore it
	// and return their whole set. An approximate backend may return an
	// empty list when it has no signal (e.g. empty LSH buckets); callers
	// decide the fallback.
	NominatePrepared(ctx context.Context, pq PreparedQuery, depth int) ([]string, error)
	// ScorePrepared exactly scores one indexed table under pq. It panics
	// on a foreign preparation or an unindexed table — both composition
	// errors of the owning coordinator, not runtime conditions.
	ScorePrepared(pq PreparedQuery, t *table.Table) float64
}

// MaintenanceStats describes the tombstone debt of a searcher's mutable
// index structures — the signal a background maintainer watches to decide
// when a compaction pass is worth a snapshot rebuild. Zero values mean the
// corresponding structure does not exist (no graph installed, no LSH index).
type MaintenanceStats struct {
	// GraphNodes is the HNSW node count including tombstones; GraphLive is
	// the live subset. GraphDeletedFraction is dead/total, 0 for no graph.
	GraphNodes           int
	GraphLive            int
	GraphDeletedFraction float64
	// LSHEntries is the LSH banding index's slot count including tombstones,
	// LSHDead the tombstoned subset, LSHDeadFraction their ratio.
	LSHEntries      int
	LSHDead         int
	LSHDeadFraction float64
}

// MaxDeadFraction returns the worst tombstone fraction across the tracked
// structures — the single number maintenance thresholds compare against.
func (m MaintenanceStats) MaxDeadFraction() float64 {
	if m.GraphDeletedFraction > m.LSHDeadFraction {
		return m.GraphDeletedFraction
	}
	return m.LSHDeadFraction
}

// Merge combines per-shard stats into a lake-wide view: counts sum,
// fractions take the per-shard maximum (one rotten shard should trip the
// maintainer even if the rest of the lake is clean).
func (m MaintenanceStats) Merge(o MaintenanceStats) MaintenanceStats {
	m.GraphNodes += o.GraphNodes
	m.GraphLive += o.GraphLive
	if o.GraphDeletedFraction > m.GraphDeletedFraction {
		m.GraphDeletedFraction = o.GraphDeletedFraction
	}
	m.LSHEntries += o.LSHEntries
	m.LSHDead += o.LSHDead
	if o.LSHDeadFraction > m.LSHDeadFraction {
		m.LSHDeadFraction = o.LSHDeadFraction
	}
	return m
}

// Maintainable is an index whose compaction policy can be taken over by a
// background maintainer: SetAutoCompact(false) stops mutations from
// rebuilding inline (the threshold check that normally runs inside
// AddTable/RemoveTable moves behind this hook), MaintenanceStats exposes the
// accumulated tombstone debt, and Compact pays it down — typically on a
// clone, off the query path, with a snapshot swap on completion. Compact
// preserves result identity: a compacted index ranks exactly like its
// tombstoned self. All three searchers in this package implement it.
type Maintainable interface {
	MaintenanceStats() MaintenanceStats
	SetAutoCompact(on bool)
	// Compact rebuilds tombstoned structures now and reports whether any
	// work was done. Not safe concurrently with queries or mutations.
	Compact() bool
}

// ModeViewer is a Staged searcher that can produce a cheap read-only view
// of itself under a different retrieval mode, sharing all index state with
// the original. A serving layer uses it to degrade individual requests to
// ANN retrieval under load without flipping the shared searcher's mode.
// The view must not be mutated; concurrent queries on view and original
// are safe. ok is false when the target mode's backend is not installed
// (e.g. an ANN view of a graph-less searcher).
type ModeViewer interface {
	ModeView(m Mode) (s Searcher, ok bool)
}

// Tunable is a searcher whose ANN candidate stage can be reshaped after
// construction: SetOversample sizes the candidate pool of a top-k query
// (ceil(Oversample*k) nominees before exact re-ranking) and SetEfSearch
// sets the HNSW traversal beam width. Non-positive values restore the
// package defaults. Exact-mode queries ignore both.
type Tunable interface {
	SetOversample(v float64)
	SetEfSearch(ef int)
}

// IndexFootprint is one index's resident-size report: the storage kind
// ("quantized", "float", or "none") and its estimated bytes.
type IndexFootprint struct {
	Storage string
	Bytes   int64
}

// IndexSizer reports the resident footprint of a searcher's ANN index
// structures. The serving layer exports it as the dust_index_bytes gauge,
// where the storage label separates quantized from float graphs.
type IndexSizer interface {
	// IndexBytes returns the storage kind — "quantized", "float", or
	// "none" when no graph is installed — and the estimated resident
	// bytes of the candidate index.
	IndexBytes() (storage string, bytes int64)
}

// indexBytes derives the IndexSizer answer for a (possibly nil) graph.
func indexBytes(ix *ann.Index) (string, int64) {
	switch {
	case ix == nil:
		return "none", 0
	case ix.Quantized():
		return "quantized", ix.Bytes()
	default:
		return "float", ix.Bytes()
	}
}

// Cloner is a Searcher that can produce an independently mutable copy of
// itself bound to a (cloned) lake: Incremental mutations on the clone never
// disturb the original, while the heavy immutable index state — embedding
// vectors, signatures — is shared between the two. Snapshot-swapped serving
// (internal/serve) builds its copy-on-write shadows with it, so queries in
// flight on the original keep reading a frozen index with no locking.
type Cloner interface {
	Searcher
	CloneWithLake(l *lake.Lake) Searcher
}

// Option configures a searcher's execution, shared by every searcher in
// this package.
type Option func(*options)

type options struct {
	workers   int
	mode      Mode
	corpus    *tokenize.Corpus
	quantized bool
}

// WithWorkers bounds the parallelism of index construction and query
// scoring; n <= 0 selects the GOMAXPROCS-derived default and n == 1 forces
// the sequential path. Results are identical for every worker count.
func WithWorkers(n int) Option { return func(o *options) { o.workers = n } }

// WithMode selects the retrieval backend at construction time (default
// Exact); constructing in ANN mode builds the approximate index as part
// of indexing. Equivalent to SetMode right after construction.
func WithMode(m Mode) Option { return func(o *options) { o.mode = m } }

// WithSharedCorpus installs an externally owned TF-IDF corpus instead of
// building one from the indexed tables. The corpus must already contain the
// column documents of every table in the wider table universe the caller
// coordinates — e.g. all shards of a partitioned lake — including this
// searcher's own tables: the constructor only computes over-budget flags
// and embeds against the given statistics. Mutations on a searcher carrying
// a shared corpus never touch it; the owning layer updates the corpus and
// calls RefreshBig on every searcher sharing it. Only Starmie consults the
// corpus (its embeddings are TF-IDF-sensitive); other searchers ignore the
// option.
func WithSharedCorpus(c *tokenize.Corpus) Option { return func(o *options) { o.corpus = c } }

// WithQuantized selects SQ8 scalar-quantized storage for the ANN candidate
// graph (internal/ann), cutting its resident vector memory 4x. It applies
// whenever this searcher builds a graph — SetMode(ANN) on a graph-less
// searcher, or a maintenance rebuild from embeddings; a graph loaded from
// disk or carried through Compact/Clone keeps its stored representation.
// Exact-mode results are unaffected (quantization only shapes candidate
// nomination; scoring always runs on the exact float64 embeddings), and
// ANN recall stays gated against the exact oracle.
func WithQuantized(on bool) Option { return func(o *options) { o.quantized = on } }

func applyOptions(opts []Option) options {
	var o options
	for _, f := range opts {
		f(&o)
	}
	return o
}

// rankTablesCtx is the scoring stage of the staged query plan: it scores
// the given candidate tables (in parallel across workers) and returns the
// top k, ties broken by table name for determinism. Scores are written by
// candidate index, so the ranking is identical for every worker count.
// Once ctx is cancelled the remaining candidates are not scored and
// ctx.Err() is returned instead of a partial ranking; cancellation is
// checked per table, the natural work unit of the scan.
func rankTablesCtx(ctx context.Context, tables []*table.Table, k, workers int, score func(t *table.Table) float64) ([]Scored, error) {
	out := make([]Scored, len(tables))
	if err := par.ForCtx(ctx, workers, len(tables), func(i int) {
		out[i] = Scored{Table: tables[i], Score: score(tables[i])}
	}); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Table.Name < out[j].Table.Name
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// MAP computes Mean Average Precision of a searcher against a benchmark's
// unionability ground truth, retrieving k results per query (§6.5.2).
func MAP(s Searcher, b *datagen.Benchmark, k int) float64 {
	if len(b.Queries) == 0 {
		return 0
	}
	var sum float64
	for _, q := range b.Queries {
		truth := map[string]bool{}
		for _, n := range b.Unionable[q.Name] {
			truth[n] = true
		}
		if len(truth) == 0 {
			continue
		}
		hits := 0
		var ap float64
		for i, sc := range s.TopK(q, k) {
			if truth[sc.Table.Name] {
				hits++
				ap += float64(hits) / float64(i+1)
			}
		}
		denom := len(truth)
		if k < denom {
			denom = k
		}
		if denom > 0 {
			sum += ap / float64(denom)
		}
	}
	return sum / float64(len(b.Queries))
}
