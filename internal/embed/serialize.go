package embed

import (
	"fmt"
	"strings"

	"dust/internal/par"
	"dust/internal/tokenize"
	"dust/internal/vector"
)

// BERT-style marker tokens used by the paper's serialization (§4).
const (
	CLS = "[CLS]"
	SEP = "[SEP]"
)

// SerializeTuple renders a tuple as the paper's Ser(t) string:
//
//	[CLS] c1 v1 [SEP] c2 v2 [SEP] ... [SEP] cn vn [SEP]
//
// Null values are skipped together with their header, mirroring Example 4
// where the Park Phone column (unaligned, hence null in the query schema)
// is left out of the serialization.
func SerializeTuple(headers, values []string) string {
	var b strings.Builder
	b.WriteString(CLS)
	for i, h := range headers {
		if i >= len(values) || values[i] == "" {
			continue
		}
		b.WriteByte(' ')
		b.WriteString(h)
		b.WriteByte(' ')
		b.WriteString(values[i])
		b.WriteByte(' ')
		b.WriteString(SEP)
	}
	return b.String()
}

// TupleTokens tokenizes a serialized tuple for encoding: headers are tagged
// so that a header word and an identical value word produce distinct tokens
// (the model must be able to tell structure from content), and marker tokens
// are dropped.
func TupleTokens(headers, values []string) []string {
	var out []string
	for i, h := range headers {
		if i >= len(values) || values[i] == "" {
			continue
		}
		for _, t := range tokenize.Words(h) {
			out = append(out, "h:"+t)
		}
		out = append(out, tokenize.Words(values[i])...)
	}
	return out
}

// EncodeTuple embeds one tuple with this encoder using the paper's
// serialization.
func (e *Encoder) EncodeTuple(headers, values []string) []float64 {
	return e.EncodeTokens(TupleTokens(headers, values))
}

// EncodeTupleBatch embeds many tuples sharing one header schema across at
// most workers goroutines (workers <= 0 selects the GOMAXPROCS default,
// workers == 1 is the sequential path). The encoder is stateless after
// construction, so the output is bit-identical to calling EncodeTuple row
// by row.
func (e *Encoder) EncodeTupleBatch(headers []string, rows [][]string, workers int) []vector.Vec {
	return par.Map(workers, len(rows), func(i int) vector.Vec {
		return e.EncodeTuple(headers, rows[i])
	})
}

// EncodeText tokenizes s and embeds it.
func (e *Encoder) EncodeText(s string) []float64 {
	return e.EncodeTokens(tokenize.Words(s))
}

// Fingerprint identifies the encoder's complete configuration — model
// name, dimension, hash seed, anisotropy, noise, and contextuality — in one
// stable string. Persisted indexes store it so that a saved index is only
// ever loaded by an encoder that would reproduce its embeddings bit for
// bit; any drift in the simulator defaults surfaces as a typed
// encoder-mismatch error instead of silently wrong similarity scores.
func (e *Encoder) Fingerprint() string {
	return fmt.Sprintf("%s/d%d/s%x/a%g/n%g/c%t",
		e.name, e.dim, e.seed, e.anisotropy, e.noise, e.contextual)
}
