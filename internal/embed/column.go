package embed

import (
	"dust/internal/table"
	"dust/internal/tokenize"
	"dust/internal/vector"
)

// TokenBudget is the maximum number of representative tokens a column-level
// encoder feeds into the model, mirroring the 512-token input limit of the
// paper's language models (§6.2.3).
const TokenBudget = 512

// ColumnEncoder embeds one table column into a vector. The corpus carries
// document frequencies across all columns being aligned, enabling TF-IDF
// token selection.
type ColumnEncoder interface {
	Name() string
	Dim() int
	EncodeColumn(col *table.Column, corpus *tokenize.Corpus) vector.Vec
}

// CellLevel embeds each cell value independently and averages the cell
// embeddings (the paper's "Cell-level" serialization variant).
type CellLevel struct {
	Model *Encoder
}

// Name returns "cell/<model>".
func (c CellLevel) Name() string { return "cell/" + c.Model.Name() }

// Dim returns the model dimension.
func (c CellLevel) Dim() int { return c.Model.Dim() }

// EncodeColumn implements ColumnEncoder.
func (c CellLevel) EncodeColumn(col *table.Column, _ *tokenize.Corpus) vector.Vec {
	acc := make(vector.Vec, c.Model.Dim())
	n := 0
	for _, v := range col.Values {
		if v == table.Null {
			continue
		}
		vecAddScaled(acc, c.Model.EncodeText(v), 1)
		n++
	}
	if n == 0 {
		// An all-null column still needs a stable location in space.
		return c.Model.EncodeTokens(nil)
	}
	return vector.Normalize(acc)
}

// ColumnLevel concatenates the column's values into one pseudo-sentence,
// selects the TokenBudget most representative tokens by TF-IDF, and encodes
// them in a single model call (the paper's "Column-level" variant, which
// Table 1 shows dominates cell-level for language models).
type ColumnLevel struct {
	Model *Encoder
}

// Name returns "column/<model>".
func (c ColumnLevel) Name() string { return "column/" + c.Model.Name() }

// Dim returns the model dimension.
func (c ColumnLevel) Dim() int { return c.Model.Dim() }

// EncodeColumn implements ColumnEncoder.
func (c ColumnLevel) EncodeColumn(col *table.Column, corpus *tokenize.Corpus) vector.Vec {
	tokens := ColumnTokens(col)
	if corpus != nil && len(tokens) > TokenBudget {
		tokens = corpus.TopK(tokens, TokenBudget)
	}
	return c.Model.EncodeTokens(tokens)
}

// ColumnTokens tokenizes every non-null value of a column, including the
// header (tagged so it cannot collide with values). Header tokens are
// repeated: language models attend strongly to the header when judging a
// column's meaning, and two columns with disjoint value instances (e.g.
// two supervisor columns naming different people) must still be able to
// align on header semantics alone.
func ColumnTokens(col *table.Column) []string {
	var out []string
	for _, t := range tokenize.Words(col.Name) {
		// The "H:" prefix marks a column-context header token: the encoder
		// gives it a strong synonym-class weight and keeps it out of the
		// bigram stream (see Encoder.EncodeTokens). Emitted three times so
		// header semantics survive even for small columns.
		ht := "H:" + t
		out = append(out, ht, ht, ht)
	}
	for _, v := range col.Values {
		if v == table.Null {
			continue
		}
		out = append(out, tokenize.Words(v)...)
	}
	return out
}
