package embed

import (
	"dust/internal/table"
	"dust/internal/tokenize"
	"dust/internal/vector"
)

// StarmieEncoder simulates Starmie's contextualized column embeddings:
// each column's embedding mixes its own content with the context of the
// entire table (Starmie's contrastive pre-training captures "the context of
// the entire table", paper §2). That table-context contamination is exactly
// why Table 1 shows Starmie embeddings aligning columns poorly — columns
// from the same table end up close together regardless of semantics — and
// the simulator reproduces it with an explicit context weight.
type StarmieEncoder struct {
	Model *Encoder
	// ContextWeight is the fraction of each column embedding taken by the
	// whole-table context vector. Starmie's contextualization is strong;
	// 0.5 reproduces the Table 1 failure mode.
	ContextWeight float64
}

// NewStarmie returns the Starmie simulator over a RoBERTa-sim base with the
// default context weight. Starmie fine-tunes RoBERTa contrastively, which
// removes the raw model's anisotropy — so the base here runs with the
// anisotropy knob near zero; what remains (and what Table 1 exposes) is the
// table-context contamination.
func NewStarmie() StarmieEncoder {
	return StarmieEncoder{
		Model:         NewRoBERTa(WithAnisotropy(0.05)),
		ContextWeight: 0.5,
	}
}

// Name identifies the encoder in experiment output.
func (s StarmieEncoder) Name() string { return "starmie" }

// Dim returns the embedding dimension.
func (s StarmieEncoder) Dim() int { return s.Model.Dim() }

// EncodeTableColumns embeds every column of t with table-context mixing.
func (s StarmieEncoder) EncodeTableColumns(t *table.Table, corpus *tokenize.Corpus) []vector.Vec {
	content := make([]vector.Vec, t.NumCols())
	for i := range t.Columns {
		tokens := ColumnTokens(&t.Columns[i])
		if corpus != nil && len(tokens) > TokenBudget {
			tokens = corpus.TopK(tokens, TokenBudget)
		}
		content[i] = s.Model.EncodeTokens(tokens)
	}
	if len(content) == 0 {
		return content
	}
	ctx := vector.Mean(content)
	out := make([]vector.Vec, len(content))
	for i, c := range content {
		v := make(vector.Vec, len(c))
		for j := range v {
			v[j] = (1-s.ContextWeight)*c[j] + s.ContextWeight*ctx[j]
		}
		out[i] = vector.Normalize(v)
	}
	return out
}
