// Package embed provides the embedding substrate of the reproduction. The
// paper relies on pre-trained language models (BERT, RoBERTa, sBERT) and
// word-embedding models (FastText, GloVe); none are available offline in
// pure Go, so this package implements deterministic feature-hashed
// simulators that preserve the properties the paper's experiments depend on:
//
//   - Token-content geometry: texts that share tokens embed close together,
//     texts from different vocabularies embed far apart.
//   - Anisotropy: the language-model simulators mix in a large shared
//     component, so raw cosine similarity between ANY two embeddings is
//     high. This is the well-documented property of untuned transformer
//     embeddings that makes the paper's pre-trained baselines perform at
//     coin-toss accuracy on tuple unionability (Fig. 6) while remaining
//     usable for euclidean-distance clustering (Table 1).
//   - Instance noise: a deterministic pseudo-random component seeded by the
//     exact input, modelling encoder instability. Model quality differences
//     in Table 1 (RoBERTa > sBERT > BERT) come from this knob.
//
// All randomness is hash-derived, so every embedding is a pure function of
// (model, input) and experiments are reproducible.
package embed

import "math"

// splitmix64 advances and scrambles a 64-bit state; it is the PRNG used to
// derive pseudo-random vector components from token hashes.
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return state, z
}

// hashString folds s into a 64-bit FNV-1a hash mixed with seed.
func hashString(s string, seed uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ (seed * 0x9e3779b97f4a7c15)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// unitGaussian converts a 64-bit word to an approximately standard-normal
// float via the sum of 4 scaled uniform lanes (Irwin-Hall approximation,
// plenty for embedding geometry).
func unitGaussian(z uint64) float64 {
	var s float64
	for i := 0; i < 4; i++ {
		lane := (z >> (i * 16)) & 0xffff
		s += float64(lane)/65535.0 - 0.5
	}
	return s * math.Sqrt(3) // variance of sum of 4 uniforms on [-.5,.5] is 1/3
}

// pseudoVector fills out with a deterministic pseudo-random unit vector
// derived from seed.
func pseudoVector(seed uint64, out []float64) {
	state := seed
	var z uint64
	var norm float64
	for i := range out {
		state, z = splitmix64(state)
		out[i] = unitGaussian(z)
		norm += out[i] * out[i]
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return
	}
	for i := range out {
		out[i] /= norm
	}
}
