package embed

import (
	"fmt"
	"testing"
)

func batchRows(n int) ([]string, [][]string) {
	headers := []string{"Park Name", "Supervisor", "City", "Country"}
	rows := make([][]string, n)
	for i := range rows {
		rows[i] = []string{
			fmt.Sprintf("Park %d", i),
			fmt.Sprintf("Supervisor %d", i%17),
			fmt.Sprintf("City %d", i%29),
			"USA",
		}
	}
	return headers, rows
}

func TestEncodeTupleBatchMatchesSequential(t *testing.T) {
	enc := NewRoBERTa()
	headers, rows := batchRows(211)
	want := enc.EncodeTupleBatch(headers, rows, 1)
	if len(want) != len(rows) {
		t.Fatalf("batch returned %d vectors, want %d", len(want), len(rows))
	}
	for i, r := range rows {
		one := enc.EncodeTuple(headers, r)
		for j := range one {
			if want[i][j] != one[j] {
				t.Fatalf("row %d: batch[%d] = %v, EncodeTuple = %v", i, j, want[i][j], one[j])
			}
		}
	}
	for _, workers := range []int{2, 8} {
		got := enc.EncodeTupleBatch(headers, rows, workers)
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("workers=%d row %d dim %d: %v, want %v",
						workers, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

func TestEncodeTupleBatchEmpty(t *testing.T) {
	enc := NewFastText()
	if got := enc.EncodeTupleBatch([]string{"A"}, nil, 8); len(got) != 0 {
		t.Errorf("empty batch returned %d vectors", len(got))
	}
}
