package embed

import (
	"math"
	"testing"

	"dust/internal/table"
	"dust/internal/tokenize"
	"dust/internal/vector"
)

func TestEncodersDeterministic(t *testing.T) {
	for _, mk := range []func(...Option) *Encoder{NewFastText, NewGlove, NewBERT, NewRoBERTa, NewSBERT} {
		e := mk()
		a := e.EncodeText("River Park USA")
		b := e.EncodeText("River Park USA")
		if vector.Euclidean(a, b) != 0 {
			t.Errorf("%s: same input produced different embeddings", e.Name())
		}
	}
}

func TestEncodersUnitNorm(t *testing.T) {
	e := NewRoBERTa()
	v := e.EncodeText("some text here")
	if math.Abs(vector.Norm(v)-1) > 1e-9 {
		t.Errorf("embedding norm = %v, want 1", vector.Norm(v))
	}
	empty := e.EncodeTokens(nil)
	if math.Abs(vector.Norm(empty)-1) > 1e-9 {
		t.Errorf("empty-input embedding norm = %v, want 1", vector.Norm(empty))
	}
}

func TestContentGeometry(t *testing.T) {
	// Without anisotropy, shared-vocabulary texts must be much more similar
	// than disjoint-vocabulary texts.
	e := NewFastText()
	park1 := e.EncodeText("River Park Fresno USA")
	park2 := e.EncodeText("River Park Chicago USA")
	painting := e.EncodeText("Oil on canvas 2006")
	simPark := vector.Cosine(park1, park2)
	simCross := vector.Cosine(park1, painting)
	if simPark <= simCross+0.2 {
		t.Errorf("shared-vocab similarity %v not clearly above cross-topic %v", simPark, simCross)
	}
}

func TestAnisotropyInflatesCosine(t *testing.T) {
	// BERT-sim: any two texts look similar in cosine space (the Fig. 6
	// coin-toss phenomenon) ...
	bert := NewBERT()
	a := bert.EncodeText("River Park Fresno USA")
	b := bert.EncodeText("Northern Lake Oil on canvas")
	if sim := vector.Cosine(a, b); sim < 0.75 {
		t.Errorf("BERT-sim cross-topic cosine = %v, want anisotropy-inflated > 0.75", sim)
	}
	// ... while the word models keep unrelated texts far apart.
	ft := NewFastText()
	a2 := ft.EncodeText("River Park Fresno USA")
	b2 := ft.EncodeText("Northern Lake Oil on canvas")
	if sim := vector.Cosine(a2, b2); sim > 0.6 {
		t.Errorf("FastText cross-topic cosine = %v, want < 0.6", sim)
	}
}

func TestAnisotropyPreservesRelativeEuclidean(t *testing.T) {
	// The shared component must not destroy relative euclidean structure:
	// same-topic columns stay closer than cross-topic columns even for the
	// anisotropic models (this is what keeps Table 1 alignment working).
	e := NewRoBERTa()
	park1 := e.EncodeText("river park west lawn hyde park park park")
	park2 := e.EncodeText("chippewa park lawler park river park")
	paint := e.EncodeText("oil canvas mixed media 91 121 centimeters")
	dSame := vector.Euclidean(park1, park2)
	dCross := vector.Euclidean(park1, paint)
	if dSame >= dCross {
		t.Errorf("euclidean same-topic %v >= cross-topic %v", dSame, dCross)
	}
}

func TestWithOptions(t *testing.T) {
	e := NewBERT(WithDim(32), WithAnisotropy(0), WithNoise(0))
	if e.Dim() != 32 {
		t.Errorf("Dim = %d, want 32", e.Dim())
	}
	v := e.EncodeText("hello world")
	if len(v) != 32 {
		t.Errorf("embedding len = %d, want 32", len(v))
	}
}

func TestSerializeTuple(t *testing.T) {
	s := SerializeTuple(
		[]string{"Park Name", "Supervisor", "City", "Country"},
		[]string{"River Park", "Vera Onate", "Fresno", "USA"})
	want := "[CLS] Park Name River Park [SEP] Supervisor Vera Onate [SEP] City Fresno [SEP] Country USA [SEP]"
	if s != want {
		t.Errorf("SerializeTuple = %q, want %q", s, want)
	}
}

func TestSerializeTupleSkipsNulls(t *testing.T) {
	// Example 4: the Chippewa Park tuple serializes only the aligned
	// columns; null cells are dropped together with their headers.
	s := SerializeTuple(
		[]string{"Park Name", "Supervisor", "City", "Country"},
		[]string{"Chippewa Park", "", "Brandon, MN", "USA"})
	want := "[CLS] Park Name Chippewa Park [SEP] City Brandon, MN [SEP] Country USA [SEP]"
	if s != want {
		t.Errorf("SerializeTuple = %q, want %q", s, want)
	}
}

func TestTupleTokensTagHeaders(t *testing.T) {
	toks := TupleTokens([]string{"Park"}, []string{"park"})
	if len(toks) != 2 || toks[0] != "h:park" || toks[1] != "park" {
		t.Errorf("TupleTokens = %v, want [h:park park]", toks)
	}
}

func TestEncodeTupleSensitiveToValues(t *testing.T) {
	e := NewSBERT()
	h := []string{"Park Name", "Country"}
	a := e.EncodeTuple(h, []string{"River Park", "USA"})
	b := e.EncodeTuple(h, []string{"River Park", "USA"})
	c := e.EncodeTuple(h, []string{"Hyde Park", "UK"})
	if vector.Euclidean(a, b) != 0 {
		t.Error("identical tuples embedded differently")
	}
	if vector.Euclidean(a, c) == 0 {
		t.Error("different tuples embedded identically")
	}
}

func TestCellLevelColumnEncoder(t *testing.T) {
	col := &table.Column{Name: "Country", Values: []string{"USA", "USA", "UK"}}
	enc := CellLevel{Model: NewFastText()}
	v := enc.EncodeColumn(col, nil)
	if len(v) != enc.Dim() {
		t.Fatalf("dim = %d, want %d", len(v), enc.Dim())
	}
	if enc.Name() != "cell/fasttext" {
		t.Errorf("Name = %q", enc.Name())
	}
	// All-null column still embeds.
	nullCol := &table.Column{Name: "x", Values: []string{table.Null, table.Null}}
	nv := enc.EncodeColumn(nullCol, nil)
	if math.Abs(vector.Norm(nv)-1) > 1e-9 {
		t.Error("all-null column embedding not unit norm")
	}
}

func TestColumnLevelUsesBudget(t *testing.T) {
	// Build a column whose token count exceeds the budget and check the
	// encoder still produces a stable vector.
	vals := make([]string, 0, 600)
	for i := 0; i < 600; i++ {
		vals = append(vals, "value"+string(rune('a'+i%26))+"x"+string(rune('a'+(i/26)%26)))
	}
	col := &table.Column{Name: "big", Values: vals}
	var corpus tokenize.Corpus
	corpus.AddDocument(ColumnTokens(col))
	enc := ColumnLevel{Model: NewRoBERTa()}
	v1 := enc.EncodeColumn(col, &corpus)
	v2 := enc.EncodeColumn(col, &corpus)
	if vector.Euclidean(v1, v2) != 0 {
		t.Error("column-level encoding nondeterministic")
	}
}

func TestColumnLevelSeparatesTopics(t *testing.T) {
	parks1 := &table.Column{Name: "Park Name", Values: []string{"River Park", "West Lawn Park", "Hyde Park"}}
	parks2 := &table.Column{Name: "Park Name", Values: []string{"Chippewa Park", "Lawler Park", "River Park"}}
	paint := &table.Column{Name: "Painting", Values: []string{"Northern Lake", "Memory Landscape 2"}}
	enc := ColumnLevel{Model: NewRoBERTa()}
	p1 := enc.EncodeColumn(parks1, nil)
	p2 := enc.EncodeColumn(parks2, nil)
	pt := enc.EncodeColumn(paint, nil)
	if vector.Euclidean(p1, p2) >= vector.Euclidean(p1, pt) {
		t.Errorf("same-topic columns farther (%v) than cross-topic (%v)",
			vector.Euclidean(p1, p2), vector.Euclidean(p1, pt))
	}
}
