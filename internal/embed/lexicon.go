package embed

// The pre-trained models the paper builds on carry lexical semantics: they
// embed "Supervisor" near "Supervised by" and "City" near "Town" without
// any fine-tuning. A hash-based simulator has no such knowledge, so this
// small synonym lexicon stands in for it: every token belonging to a class
// also contributes the class's shared vector, giving synonym headers (and a
// few value words) the similarity a pre-trained encoder would give them.
// The classes cover the header vocabulary of the benchmark corpus plus the
// paper's Fig. 1 example.
var synonymClasses = map[string]string{
	// people in charge
	"supervisor": "overseer", "supervised": "overseer", "head": "overseer",
	"led": "overseer", "administrator": "overseer", "director": "overseer",
	"directed": "overseer", "principal": "overseer", "run": "overseer",
	"chef": "overseer", "teacher": "overseer", "taught": "overseer",
	// places
	"city": "place", "town": "place", "municipality": "place",
	"located": "place", "location": "place", "locations": "place", "site": "place",
	// countries
	"country": "nationality", "nation": "nationality",
	// identity
	"name": "label", "title": "label",
	// temporal
	"year": "when", "opened": "when", "built": "when", "founded": "when",
	"established": "when", "completed": "when", "created": "when",
	"published": "when", "date": "when", "opening": "when", "release": "when",
	// communication
	"phone": "contact", "contact": "contact",
	// counts and sizes
	"enrollment": "quantity", "students": "quantity", "pupil": "quantity",
	"beds": "quantity", "count": "quantity", "votes": "quantity",
	"attendance": "quantity", "visitors": "quantity", "seats": "quantity",
	"capacity": "quantity", "platforms": "quantity",
	// creators
	"author": "creator", "written": "creator", "painter": "creator",
	"artist": "creator",
	// classification
	"genre": "kind", "category": "kind", "cuisine": "kind", "type": "kind",
	// speech
	"language": "tongue", "languages": "tongue", "spoken": "tongue",
	// institutions
	"school": "institution", "institution": "institution", "academy": "institution",
	"facility": "institution", "hospital": "institution",
	// dimensions
	"dimensions": "extent", "size": "extent", "length": "extent",
	"wingspan": "extent", "acres": "extent", "area": "extent", "meters": "extent",
	// movies / works
	"movie": "work", "film": "work", "book": "work", "artwork": "work",
	"painting": "work",
	// transport
	"station": "transit", "stop": "transit", "line": "transit",
	// origins
	"origin": "provenance", "culture": "provenance", "mythology": "provenance",
	"range": "provenance", "region": "provenance",
	// mythology
	"myth": "creature", "creature": "creature", "being": "creature",
	"definition": "gloss", "description": "gloss",
	"synonyms": "alias", "known": "alias", "also": "alias", "aka": "alias",
}

// classOf returns the synonym class of a (possibly header-tagged) token.
// Both tuple-context ("h:") and column-context ("H:") header tags are
// stripped before lookup.
func classOf(tok string) (string, bool) {
	if len(tok) > 2 && (tok[0] == 'h' || tok[0] == 'H') && tok[1] == ':' {
		cls, ok := synonymClasses[tok[2:]]
		return cls, ok
	}
	cls, ok := synonymClasses[tok]
	return cls, ok
}
