package embed

import (
	"sync/atomic"

	"dust/internal/vector"
)

// DefaultDim is the embedding dimension used when no override is given. The
// paper's models emit 768-d vectors; the default here is smaller so the full
// experiment suite runs quickly on a laptop. Experiments that specifically
// reproduce the "768-dimensional" framing (Fig. 2) pass WithDim(768).
const DefaultDim = 128

// Encoder is a deterministic text encoder simulating one pre-trained model.
// The zero value is not usable; construct with one of the New* functions.
type Encoder struct {
	name       string
	dim        int
	seed       uint64
	anisotropy float64 // fraction of the output taken by the shared component
	noise      float64 // fraction taken by input-seeded instance noise
	contextual bool    // mix neighbouring tokens (language-model style)

	common vector.Vec // the shared anisotropy direction for this model

	calls *atomic.Int64 // optional instrumentation; see Instrument
}

// Option configures an Encoder.
type Option func(*Encoder)

// WithDim overrides the embedding dimension.
func WithDim(d int) Option { return func(e *Encoder) { e.dim = d } }

// WithAnisotropy overrides the shared-component weight in [0, 1).
func WithAnisotropy(a float64) Option { return func(e *Encoder) { e.anisotropy = a } }

// WithNoise overrides the instance-noise weight in [0, 1).
func WithNoise(n float64) Option { return func(e *Encoder) { e.noise = n } }

func newEncoder(name string, seed uint64, anisotropy, noise float64, contextual bool, opts []Option) *Encoder {
	e := &Encoder{
		name:       name,
		dim:        DefaultDim,
		seed:       seed,
		anisotropy: anisotropy,
		noise:      noise,
		contextual: contextual,
	}
	for _, o := range opts {
		o(e)
	}
	e.common = make(vector.Vec, e.dim)
	pseudoVector(hashString("::common::"+name, seed), e.common)
	return e
}

// NewFastText returns the FastText word-model simulator: pure token-content
// geometry, no anisotropy, no context.
func NewFastText(opts ...Option) *Encoder {
	return newEncoder("fasttext", 0xF457, 0, 0.08, false, opts)
}

// NewGlove returns the GloVe word-model simulator.
func NewGlove(opts ...Option) *Encoder {
	return newEncoder("glove", 0x610E, 0, 0.10, false, opts)
}

// NewBERT returns the BERT simulator: strongly anisotropic (the property
// that puts pre-trained BERT at coin-toss unionability accuracy in Fig. 6)
// and the noisiest of the three LM simulators (it is the smallest model,
// per the paper's Table 1 discussion).
func NewBERT(opts ...Option) *Encoder {
	return newEncoder("bert", 0xBE47, 0.97, 0.16, true, opts)
}

// NewRoBERTa returns the RoBERTa simulator: anisotropic like BERT but with
// the cleanest content geometry (best column alignment in Table 1).
func NewRoBERTa(opts ...Option) *Encoder {
	return newEncoder("roberta", 0x40BE, 0.96, 0.04, true, opts)
}

// NewSBERT returns the Sentence-BERT simulator: much less anisotropic
// (sBERT is tuned for sentence similarity) but with slightly noisier
// content geometry than RoBERTa. The lower anisotropy gives it a little
// genuine unionability signal at the paper's 0.7 distance threshold
// (Fig. 6 reports 0.56 vs the 0.50 coin toss of BERT/RoBERTa).
func NewSBERT(opts ...Option) *Encoder {
	return newEncoder("sbert", 0x5BE4, 0.42, 0.06, true, opts)
}

// Name returns the model name.
func (e *Encoder) Name() string { return e.name }

// Dim returns the embedding dimension.
func (e *Encoder) Dim() int { return e.dim }

// Instrument attaches an encoding-call counter: every subsequent
// EncodeTokens call atomically increments c. Pass nil to detach. The
// prepared-query tests use this to prove a sharded query is encoded exactly
// once, not once per shard. Instrument is not synchronized with concurrent
// EncodeTokens calls — attach before querying starts.
func (e *Encoder) Instrument(c *atomic.Int64) { e.calls = c }

// EncodeTokens embeds a token sequence. The output is L2-normalized.
func (e *Encoder) EncodeTokens(tokens []string) vector.Vec {
	if e.calls != nil {
		e.calls.Add(1)
	}
	content := make(vector.Vec, e.dim)
	if len(tokens) > 0 {
		tok := make(vector.Vec, e.dim)
		isColHeader := func(t string) bool {
			return len(t) > 2 && t[0] == 'H' && t[1] == ':'
		}
		for i, t := range tokens {
			pseudoVector(hashString(t, e.seed), tok)
			vecAddScaled(content, tok, 1)
			if cls, ok := classOf(t); ok {
				// Pre-trained lexical semantics: synonym tokens share a
				// class vector (see lexicon.go). Column-context header
				// tokens ("H:") lean on it hard — that is what lets a
				// "Definition" column align with a "Description" column
				// whose value instances are disjoint — while tuple-context
				// headers ("h:") stay value-dominated.
				w := 0.5
				switch {
				case isColHeader(t):
					w = 4.0
				case len(t) > 2 && t[0] == 'h' && t[1] == ':':
					w = 1.2
				}
				pseudoVector(hashString("class:"+cls, e.seed), tok)
				vecAddScaled(content, tok, w)
			}
			if e.contextual && i+1 < len(tokens) && !isColHeader(t) && !isColHeader(tokens[i+1]) {
				// Language-model flavour: bigram context vectors let the
				// encoder distinguish token order and co-occurrence.
				// Column-header tokens stay out of the bigram stream so
				// their repetition does not fabricate context.
				pseudoVector(hashString(tokens[i]+"\x00"+tokens[i+1], e.seed), tok)
				vecAddScaled(content, tok, 0.5)
			}
		}
		content = vector.Normalize(content)
	}

	// The shared component takes the anisotropy fraction; the remainder is
	// split between content and instance noise (noise is relative to the
	// content share so the two knobs are independent).
	out := make(vector.Vec, e.dim)
	contentScale := 1 - e.anisotropy
	vecAddScaled(out, content, contentScale*(1-e.noise))
	vecAddScaled(out, e.common, e.anisotropy)
	if e.noise > 0 {
		noise := make(vector.Vec, e.dim)
		pseudoVector(hashString(joinTokens(tokens), e.seed^0xA0A0), noise)
		vecAddScaled(out, noise, contentScale*e.noise)
	}
	return vector.Normalize(out)
}

// vecAddScaled adds s*src into dst.
func vecAddScaled(dst, src vector.Vec, s float64) {
	for i := range dst {
		dst[i] += s * src[i]
	}
}

func joinTokens(tokens []string) string {
	n := 0
	for _, t := range tokens {
		n += len(t) + 1
	}
	b := make([]byte, 0, n)
	for _, t := range tokens {
		b = append(b, t...)
		b = append(b, 0x1f)
	}
	return string(b)
}
