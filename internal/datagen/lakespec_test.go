package datagen

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"unicode/utf8"

	"dust/internal/lake"
	"dust/internal/table"
)

// lakeFingerprint serializes everything a LakeSpec derives — table names,
// clean CSV bytes, dirty CSV bytes, and a few query tables — into one
// byte string, so determinism tests can compare whole lakes at once.
func lakeFingerprint(t *testing.T, spec LakeSpec) []byte {
	t.Helper()
	l := spec.Generate()
	var buf bytes.Buffer
	for _, tb := range l.Tables() {
		buf.WriteString(tb.Name)
		buf.WriteByte('\n')
		if err := tb.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	n := spec.Normalized().Tables
	for i := 0; i < n; i++ {
		buf.Write(spec.CSV(i))
	}
	for i := 0; i < 4; i++ {
		if err := spec.Query(i).WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestLakeSpecSeedDeterminism(t *testing.T) {
	spec := LakeSpec{
		Seed: 42, Tables: 30, Rows: 20, ZipfS: 1.4, FKFraction: 0.5, Parents: 3,
		Dirty: DirtySpec{Ragged: 0.1, MixedTypes: 0.1, Unicode: 0.1, Null: 0.05, Empty: 0.05},
	}
	var want []byte
	for _, workers := range []int{1, 8} {
		s := spec
		s.Workers = workers
		got := lakeFingerprint(t, s)
		if want == nil {
			want = got
			// Same spec, same worker count, fresh run: must also match.
			if again := lakeFingerprint(t, s); !bytes.Equal(want, again) {
				t.Fatal("two runs of the same spec differ")
			}
			continue
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("workers=%d lake differs from workers=1 lake", workers)
		}
	}

	other := spec
	other.Seed = 43
	if bytes.Equal(want, lakeFingerprint(t, other)) {
		t.Fatal("different seeds produced identical lakes")
	}
}

func TestLakeSpecShape(t *testing.T) {
	spec := LakeSpec{Seed: 7, Tables: 25, Rows: 16, Parents: 2}
	l := spec.Generate()
	if l.Len() != 25 {
		t.Fatalf("lake has %d tables, want 25", l.Len())
	}
	norm := spec.Normalized()
	for i, tb := range l.Tables() {
		if tb.Name != spec.TableName(i) {
			t.Fatalf("table %d named %q, want %q", i, tb.Name, spec.TableName(i))
		}
		if tb.NumRows() < 1 {
			t.Fatalf("table %q has no rows", tb.Name)
		}
		lo, hi := norm.Rows/2, 3*norm.Rows/2
		if tb.NumRows() < lo || tb.NumRows() > hi {
			t.Fatalf("table %q has %d rows, want in [%d,%d]", tb.Name, tb.NumRows(), lo, hi)
		}
	}
	// Parent tables carry unique primary keys.
	for p := 0; p < norm.Parents; p++ {
		tb := l.Get(spec.TableName(p))
		seen := map[string]bool{}
		for r := 0; r < tb.NumRows(); r++ {
			k := tb.Cell(r, 0)
			if seen[k] {
				t.Fatalf("parent %q repeats key %q", tb.Name, k)
			}
			seen[k] = true
		}
	}
	q := spec.Query(3)
	if q.NumRows() < 1 || q.NumCols() < 2 {
		t.Fatalf("query shape (%d,%d) too small", q.NumRows(), q.NumCols())
	}
}

// categoryRanks collects the zipf ranks drawn by every category column
// of every table in the spec's lake.
func categoryRanks(t *testing.T, spec LakeSpec) []int {
	t.Helper()
	spec = spec.Normalized()
	var ranks []int
	for i := 0; i < spec.Tables; i++ {
		rng := spec.rngFor(i, saltContent)
		ts := spec.buildSpec(i, rng)
		tb := spec.genTable(i)
		for j, k := range ts.kinds {
			if k != colCategory {
				continue
			}
			for r := 0; r < tb.NumRows(); r++ {
				v := tb.Cell(r, j)
				rank, err := strconv.Atoi(strings.TrimPrefix(v, "cat_"))
				if err != nil {
					t.Fatalf("category cell %q is not cat_<rank>", v)
				}
				ranks = append(ranks, rank)
			}
		}
	}
	return ranks
}

// topShare is the fraction of draws landing on ranks < k.
func topShare(ranks []int, k int) float64 {
	hits := 0
	for _, r := range ranks {
		if r < k {
			hits++
		}
	}
	return float64(hits) / float64(len(ranks))
}

func TestLakeSpecZipfSkew(t *testing.T) {
	base := LakeSpec{Seed: 11, Tables: 12, Rows: 1500, ZipfDomain: 50}

	mild := base
	mild.ZipfS = 1.3
	steep := base
	steep.ZipfS = 2.5

	mildRanks := categoryRanks(t, mild)
	steepRanks := categoryRanks(t, steep)
	if len(mildRanks) < 5000 || len(steepRanks) < 5000 {
		t.Fatalf("too few category draws: %d / %d", len(mildRanks), len(steepRanks))
	}

	// Frequency must decrease with rank: the top 5 ranks together beat the
	// next 5, which beat ranks 10-19.
	for _, ranks := range [][]int{mildRanks, steepRanks} {
		counts := make([]int, 50)
		for _, r := range ranks {
			counts[r]++
		}
		bin := func(lo, hi int) int {
			sum := 0
			for i := lo; i < hi; i++ {
				sum += counts[i]
			}
			return sum
		}
		if !(bin(0, 5) > bin(5, 10) && bin(5, 10) > bin(10, 20)) {
			t.Fatalf("zipf frequency not rank-ordered: %d, %d, %d",
				bin(0, 5), bin(5, 10), bin(10, 20))
		}
	}

	// A steeper exponent concentrates more mass on the head.
	mildTop, steepTop := topShare(mildRanks, 3), topShare(steepRanks, 3)
	if steepTop <= mildTop {
		t.Fatalf("s=2.5 head share %.3f not above s=1.3 head share %.3f", steepTop, mildTop)
	}

	// ZipfS <= 1 disables skew: head share near uniform 3/50.
	flat := base
	flat.ZipfS = 0.5
	flatTop := topShare(categoryRanks(t, flat), 3)
	if flatTop > 0.12 {
		t.Fatalf("uniform fallback head share %.3f, want near 0.06", flatTop)
	}
}

func TestLakeSpecFKIntegrity(t *testing.T) {
	spec := LakeSpec{Seed: 23, Tables: 40, Rows: 18, Parents: 3, FKFraction: 1, ZipfS: 1.6,
		Dirty: DirtySpec{MixedTypes: 0.2, Unicode: 0.2, Null: 0.1, Empty: 0.1}}
	norm := spec.Normalized()
	l := spec.Generate()

	parentKeys := make([]map[string]bool, norm.Parents)
	for p := 0; p < norm.Parents; p++ {
		tb := l.Get(spec.TableName(p))
		parentKeys[p] = make(map[string]bool, tb.NumRows())
		for r := 0; r < tb.NumRows(); r++ {
			parentKeys[p][tb.Cell(r, 0)] = true
		}
	}

	children := 0
	for i := norm.Parents; i < norm.Tables; i++ {
		rng := norm.rngFor(i, saltContent)
		ts := norm.buildSpec(i, rng)
		if ts.parent < 0 {
			t.Fatalf("FKFraction=1 but table %d has no FK", i)
		}
		children++
		tb := l.Get(spec.TableName(i))
		fkCol := -1
		for j, k := range ts.kinds {
			if k == colFK {
				fkCol = j
			}
		}
		for r := 0; r < tb.NumRows(); r++ {
			v := tb.Cell(r, fkCol)
			if !parentKeys[ts.parent][v] {
				t.Fatalf("table %s row %d: FK %q not a key of parent p%04d (dirty modes must not touch FKs)",
					tb.Name, r, v, ts.parent)
			}
		}
	}
	if children == 0 {
		t.Fatal("no child tables generated")
	}
}

// inSet reports membership of v in pool.
func inSet(pool []string, v string) bool {
	for _, p := range pool {
		if p == v {
			return true
		}
	}
	return false
}

func TestLakeSpecDirtyRates(t *testing.T) {
	spec := LakeSpec{Seed: 31, Tables: 25, Rows: 120, ZipfS: 1.5,
		Dirty: DirtySpec{Ragged: 0.15, MixedTypes: 0.1, Unicode: 0.1, Null: 0.05, Empty: 0.05}}
	norm := spec.Normalized()

	var eligible, numericEligible, textualEligible int // non-key cells, per mode
	var empties, nulls, mixed, unicodeCells int
	var rows, raggedRows int

	for i := 0; i < norm.Tables; i++ {
		rng := norm.rngFor(i, saltContent)
		ts := norm.buildSpec(i, rng)
		tb := norm.genTable(i)
		for j, k := range ts.kinds {
			if k.keylike() {
				continue
			}
			eligible += tb.NumRows()
			if k.numeric() {
				numericEligible += tb.NumRows()
			}
			if k.textual() {
				textualEligible += tb.NumRows()
			}
			for r := 0; r < tb.NumRows(); r++ {
				v := tb.Cell(r, j)
				switch {
				case v == table.Null:
					empties++
				case inSet(nullTokens, v):
					nulls++
				case inSet(mixedTokens, v):
					mixed++
				case !isASCII(v):
					unicodeCells++
				}
			}
		}
		// Ragged rows exist only in the CSV rendering.
		recs := strings.Split(strings.TrimRight(string(spec.CSV(i)), "\n"), "\n")
		header := recs[0]
		arity := strings.Count(header, ",") + 1
		for _, rec := range recs[1:] {
			rows++
			if strings.Count(rec, ",")+1 != arity && !strings.Contains(rec, `"`) {
				raggedRows++
			}
		}
	}

	// Each defect count should be near rate * eligible population. The
	// non-first modes see a population thinned by the earlier draws; a
	// ±40% window over the unthinned expectation absorbs that and the
	// sampling noise while still catching off-by-10x rate bugs.
	check := func(name string, got int, rate float64, population int) {
		t.Helper()
		want := rate * float64(population)
		if want < 50 {
			t.Fatalf("%s: expectation %.0f too small for a meaningful test", name, want)
		}
		if float64(got) < 0.6*want || float64(got) > 1.4*want {
			t.Fatalf("%s: %d defects, want within 40%% of %.0f", name, got, want)
		}
	}
	check("empty", empties, spec.Dirty.Empty, eligible)
	check("null", nulls, spec.Dirty.Null, eligible)
	check("mixed-types", mixed, spec.Dirty.MixedTypes, numericEligible)
	check("unicode", unicodeCells, spec.Dirty.Unicode, textualEligible)
	check("ragged", raggedRows, spec.Dirty.Ragged, rows)

	// Clean spec emits zero defects.
	clean := spec
	clean.Dirty = DirtySpec{}
	for i := 0; i < 5; i++ {
		tb := clean.Table(i)
		for j := 0; j < tb.NumCols(); j++ {
			for r := 0; r < tb.NumRows(); r++ {
				v := tb.Cell(r, j)
				if v == table.Null || inSet(nullTokens, v) || inSet(mixedTokens, v) || !isASCII(v) {
					t.Fatalf("clean table %q has defect cell %q", tb.Name, v)
				}
			}
		}
	}
}

// isASCII reports whether s contains only ASCII bytes.
func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return false
		}
	}
	return true
}

func TestParseLakeSpec(t *testing.T) {
	s, err := ParseLakeSpec("tables=500, rows=32,seed=9,zipf=1.7,fk=0.3,ragged=0.05,name=big")
	if err != nil {
		t.Fatal(err)
	}
	if s.Tables != 500 || s.Rows != 32 || s.Seed != 9 || s.ZipfS != 1.7 ||
		s.FKFraction != 0.3 || s.Dirty.Ragged != 0.05 || s.Name != "big" {
		t.Fatalf("parsed spec wrong: %+v", s)
	}
	if _, err := ParseLakeSpec("bogus=1"); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := ParseLakeSpec("tables=abc"); err == nil {
		t.Fatal("bad int accepted")
	}
	if _, err := ParseLakeSpec("tables"); err == nil {
		t.Fatal("missing = accepted")
	}
	if s, err := ParseLakeSpec(""); err != nil || s != (LakeSpec{}) {
		t.Fatalf("empty spec: %+v, %v", s, err)
	}
	// String round-trips through ParseLakeSpec.
	orig := LakeSpec{Seed: 4, Tables: 60, Rows: 25, Dirty: DirtySpec{Unicode: 0.1}}
	back, err := ParseLakeSpec(orig.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.Normalized() != orig.Normalized() {
		t.Fatalf("String round-trip: %+v != %+v", back.Normalized(), orig.Normalized())
	}
}

func TestLakeSpecDirtyCSVIngestion(t *testing.T) {
	spec := LakeSpec{Seed: 77, Tables: 10, Rows: 30,
		Dirty: DirtySpec{Ragged: 0.3, MixedTypes: 0.2, Unicode: 0.2, Null: 0.1, Empty: 0.1}}
	l := lake.New("ingest")
	for i := 0; i < spec.Normalized().Tables; i++ {
		tb, err := table.ReadCSV(spec.TableName(i), bytes.NewReader(spec.CSV(i)))
		if err != nil {
			t.Fatalf("dirty CSV %d unparseable: %v", i, err)
		}
		if err := l.Add(tb); err != nil {
			t.Fatalf("lake ingest %d: %v", i, err)
		}
	}
	// Duplicate ingestion must fail with the typed error, not a panic.
	dup, _ := table.ReadCSV(spec.TableName(0), bytes.NewReader(spec.CSV(0)))
	if err := l.Add(dup); !errors.Is(err, lake.ErrDuplicateTable) {
		t.Fatalf("duplicate add: %v, want ErrDuplicateTable", err)
	}
}

func BenchmarkLakeSpecGenerate(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			spec := LakeSpec{Seed: 1, Tables: 400, Rows: 40, FKFraction: 0.3, Workers: workers}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if l := spec.Generate(); l.Len() != 400 {
					b.Fatal("bad lake")
				}
			}
		})
	}
}
