package datagen

import (
	"math/rand"
	"strings"
	"testing"
)

func TestDomainsWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range domains() {
		if len(d.columns) < 3 {
			t.Errorf("domain %s has %d columns, want >= 3", d.name, len(d.columns))
		}
		row := d.genRow(rng)
		if len(row) != len(d.columns) {
			t.Errorf("domain %s genRow arity %d, want %d", d.name, len(row), len(d.columns))
		}
		for gi, g := range d.relGroups {
			for _, ci := range g {
				if ci < 0 || ci >= len(d.columns) {
					t.Errorf("domain %s relGroup %d references column %d", d.name, gi, ci)
				}
			}
		}
		if d.alt == nil {
			t.Errorf("domain %s has no alt schema", d.name)
			continue
		}
		altRow := d.alt.genRow(rng)
		if len(altRow) != len(d.alt.columns) {
			t.Errorf("domain %s alt genRow arity %d, want %d", d.name, len(altRow), len(d.alt.columns))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Domains: 3, TablesPerBase: 4, BaseRows: 40, MinRows: 5, MaxRows: 10}
	a := Generate("a", cfg)
	b := Generate("b", cfg)
	if a.Lake.Len() != b.Lake.Len() {
		t.Fatal("nondeterministic lake size")
	}
	ta := a.Lake.Tables()
	tb := b.Lake.Tables()
	for i := range ta {
		if ta[i].NumRows() != tb[i].NumRows() || ta[i].NumCols() != tb[i].NumCols() {
			t.Fatalf("table %d shape differs between runs", i)
		}
		for r := 0; r < ta[i].NumRows(); r++ {
			if strings.Join(ta[i].Row(r), "|") != strings.Join(tb[i].Row(r), "|") {
				t.Fatalf("table %d row %d differs between runs", i, r)
			}
		}
	}
}

func TestGenerateGroundTruthConsistency(t *testing.T) {
	b := Generate("t", Config{Seed: 11, Domains: 4, TablesPerBase: 5, BaseRows: 50, MinRows: 5, MaxRows: 15})
	if len(b.Queries) != 4 {
		t.Fatalf("queries = %d, want 4 (one per domain)", len(b.Queries))
	}
	for _, q := range b.Queries {
		names := b.Unionable[q.Name]
		if len(names) != 5 {
			t.Fatalf("query %s has %d unionable tables, want 5", q.Name, len(names))
		}
		for _, n := range names {
			lt := b.Lake.Get(n)
			if lt == nil {
				t.Fatalf("unionable table %s missing from lake", n)
			}
			if lt.Base != q.Base {
				t.Errorf("table %s base %q != query base %q", n, lt.Base, q.Base)
			}
			if !b.IsUnionableTable(q, lt) {
				t.Errorf("IsUnionableTable(%s, %s) = false", q.Name, n)
			}
		}
	}
}

func TestOriginsMatchColumns(t *testing.T) {
	b := Generate("t", Config{Seed: 13, Domains: 3, TablesPerBase: 3, BaseRows: 30, MinRows: 4, MaxRows: 8})
	check := func(name string, cols int) {
		origins := b.Origins[name]
		if len(origins) != cols {
			t.Errorf("table %s: %d origins for %d columns", name, len(origins), cols)
		}
		for _, o := range origins {
			if !strings.Contains(o, ".") {
				t.Errorf("table %s origin %q not of form base.column", name, o)
			}
		}
	}
	for _, q := range b.Queries {
		check(q.Name, q.NumCols())
	}
	for _, lt := range b.Lake.Tables() {
		check(lt.Name, lt.NumCols())
	}
}

func TestRowOriginsTrackEntities(t *testing.T) {
	b := Generate("t", Config{Seed: 17, Domains: 2, TablesPerBase: 4, BaseRows: 25, MinRows: 20, MaxRows: 25})
	for _, lt := range b.Lake.Tables() {
		rows := b.RowOrigins[lt.Name]
		if len(rows) != lt.NumRows() {
			t.Fatalf("table %s: %d row origins for %d rows", lt.Name, len(rows), lt.NumRows())
		}
		for _, r := range rows {
			if r < 0 || r >= 25 {
				t.Errorf("table %s row origin %d out of base range", lt.Name, r)
			}
		}
	}
}

func TestMinColsRespected(t *testing.T) {
	b := Generate("t", Config{Seed: 19, Domains: 6, TablesPerBase: 8, BaseRows: 30, MinRows: 4, MaxRows: 8, MinCols: 3})
	for _, lt := range b.Lake.Tables() {
		if lt.NumCols() < 3 {
			t.Errorf("table %s has %d cols, want >= 3", lt.Name, lt.NumCols())
		}
	}
}

func TestSANTOSPreservesRelationships(t *testing.T) {
	b := SANTOS()
	// Every lake table's origin set must cover complete relationship groups:
	// if one member of a group is present, the whole group is.
	domainByName := map[string]domain{}
	for _, d := range domains() {
		domainByName[d.name] = d
	}
	for _, lt := range b.Lake.Tables() {
		d := domainByName[lt.Base]
		have := map[string]bool{}
		for _, o := range b.Origins[lt.Name] {
			have[o] = true
		}
		fullGroup := func(g []int) bool {
			for _, ci := range g {
				if !have[d.name+"."+d.columns[ci].name] {
					return false
				}
			}
			return true
		}
		// Groups may overlap, so the invariant is: every kept column that
		// participates in relationship groups is covered by at least one
		// fully-kept group (i.e. the projection is a union of complete
		// groups, so at least one binary relationship survives per column).
		for ci, c := range d.columns {
			if !have[d.name+"."+c.name] {
				continue
			}
			inAnyGroup, covered := false, false
			for _, g := range d.relGroups {
				for _, gc := range g {
					if gc == ci {
						inAnyGroup = true
						if fullGroup(g) {
							covered = true
						}
					}
				}
			}
			if inAnyGroup && !covered {
				t.Fatalf("SANTOS table %s column %s kept without any complete relationship group", lt.Name, c.name)
			}
		}
	}
}

func TestUGENHasAltTables(t *testing.T) {
	b := UGEN()
	alts := 0
	for _, lt := range b.Lake.Tables() {
		if strings.HasSuffix(lt.Base, "#alt") {
			alts++
			if lt.NumRows() != 10 {
				t.Errorf("alt table %s has %d rows, want 10", lt.Name, lt.NumRows())
			}
		}
	}
	if alts != 100 {
		t.Errorf("UGEN alt tables = %d, want 100 (10 per query)", alts)
	}
	// Alt tables must never be in any query's unionable set.
	for q, names := range b.Unionable {
		for _, n := range names {
			if strings.Contains(n, "_alt") {
				t.Errorf("query %s lists alt table %s as unionable", q, n)
			}
		}
	}
}

func TestStandardBenchmarkShapes(t *testing.T) {
	tus := TUS()
	if got := len(tus.Queries); got != 12 {
		t.Errorf("TUS queries = %d, want 12", got)
	}
	if got := tus.Lake.Len(); got != 12*25 {
		t.Errorf("TUS lake tables = %d, want 300", got)
	}
	ts := TUSSampled()
	if got := len(ts.Queries); got != 6 {
		t.Errorf("TUS-Sampled queries = %d, want 6", got)
	}
	santos := SANTOS()
	if got := santos.Lake.Len(); got != 110 {
		t.Errorf("SANTOS lake tables = %d, want 110", got)
	}
	imdb := IMDB()
	if got := imdb.Lake.Len(); got != 20 {
		t.Errorf("IMDB lake tables = %d, want 20", got)
	}
	if len(imdb.Queries) != 1 {
		t.Errorf("IMDB queries = %d, want 1", len(imdb.Queries))
	}
	if imdb.Queries[0].NumCols() != 8 {
		t.Errorf("IMDB query cols = %d, want all 8 movie columns", imdb.Queries[0].NumCols())
	}
}

func TestPairsBalancedAndLeakFree(t *testing.T) {
	b := Generate("t", Config{Seed: 23, Domains: 6, TablesPerBase: 10, BaseRows: 60, MinRows: 10, MaxRows: 20})
	ds := Pairs(b, 600, 31)
	if len(ds.Train) != 420 || len(ds.Test) != 90 || len(ds.Val) != 90 {
		t.Fatalf("split sizes = %d/%d/%d, want 420/90/90", len(ds.Train), len(ds.Test), len(ds.Val))
	}
	countPos := func(ps []TuplePair) int {
		n := 0
		for _, p := range ps {
			if p.Unionable {
				n++
			}
		}
		return n
	}
	for _, split := range [][]TuplePair{ds.Train, ds.Test, ds.Val} {
		pos := countPos(split)
		if pos != len(split)/2 {
			t.Errorf("split positives = %d of %d, want balanced", pos, len(split))
		}
	}
	// Leak check: a tuple (joined values) in train must not appear in test
	// or val. Tables are partitioned, so values rows can only collide if two
	// tables share identical rows from the same base — possible for derived
	// copies. What must NOT leak is the *table*: reconstruct table identity
	// by header signature + row content is overkill; instead we re-run the
	// partition logic indirectly by checking value-set disjointness is high.
	trainSet := map[string]bool{}
	for _, p := range ds.Train {
		trainSet[strings.Join(p.Values1, "\x1f")] = true
		trainSet[strings.Join(p.Values2, "\x1f")] = true
	}
	leaks := 0
	totalRows := 0
	for _, p := range append(append([]TuplePair{}, ds.Test...), ds.Val...) {
		for _, v := range [][]string{p.Values1, p.Values2} {
			totalRows++
			if trainSet[strings.Join(v, "\x1f")] {
				leaks++
			}
		}
	}
	// Identical derived rows can exist across tables (same base row, same
	// projection), so require leakage to be rare rather than zero.
	if float64(leaks) > 0.25*float64(totalRows) {
		t.Errorf("tuple leakage %d/%d exceeds 25%%", leaks, totalRows)
	}
}

func TestEntityPairsGroundTruth(t *testing.T) {
	b := Generate("t", Config{Seed: 29, Domains: 4, TablesPerBase: 6, BaseRows: 30, MinRows: 20, MaxRows: 28})
	pairs := EntityPairs(b, 200, 37)
	if len(pairs) != 200 {
		t.Fatalf("EntityPairs returned %d, want 200", len(pairs))
	}
	pos := 0
	for _, p := range pairs {
		if p.Unionable {
			pos++
		}
	}
	if pos != 100 {
		t.Errorf("positives = %d, want 100 (balanced)", pos)
	}
	// Two projections of the same entity usually overlap on some kept
	// column, but disjoint projections exist, so check the rate rather
	// than every pair.
	sharing := 0
	for _, p := range pairs {
		if !p.Unionable {
			continue
		}
		set := map[string]bool{}
		for _, v := range p.Values1 {
			set[v] = true
		}
		for _, v := range p.Values2 {
			if set[v] {
				sharing++
				break
			}
		}
	}
	if sharing < pos/2 {
		t.Errorf("only %d of %d positive entity pairs share a value; ground truth looks wrong", sharing, pos)
	}
}

func TestPairsDeterministic(t *testing.T) {
	b := Generate("t", Config{Seed: 41, Domains: 3, TablesPerBase: 5, BaseRows: 30, MinRows: 5, MaxRows: 10})
	a := Pairs(b, 100, 5)
	c := Pairs(b, 100, 5)
	for i := range a.Train {
		if strings.Join(a.Train[i].Values1, "|") != strings.Join(c.Train[i].Values1, "|") {
			t.Fatal("Pairs nondeterministic")
		}
	}
}
