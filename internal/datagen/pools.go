// Package datagen generates the synthetic benchmark corpus that stands in
// for the paper's Open-Data-derived benchmarks (TUS, SANTOS, UGEN-V1, and
// the IMDB case study). The real benchmarks are themselves produced by
// selecting and projecting rows/columns of base tables (paper §6.1); this
// package implements the same generation procedure over a synthetic
// multi-domain base corpus, at laptop scale.
//
// Two corpus properties matter for reproducing the paper's results and are
// deliberate:
//
//   - Cross-domain vocabulary overlap: cities, countries, years, and person
//     names are shared across every domain, so raw value-token similarity is
//     a weak unionability signal (this keeps the pre-trained baselines of
//     Fig. 6 near coin-toss).
//   - Header synonym renaming: generated tables rename columns from a
//     synonym pool ("Supervisor" vs "Supervised by", "City" vs "Park City",
//     as in the paper's Fig. 1), so alignment and the fine-tuned model must
//     learn synonymy rather than string-match headers.
package datagen

import (
	"fmt"
	"math/rand"
)

// Shared vocabulary pools (used by every domain).
var (
	firstNames = []string{
		"Vera", "Paul", "Jenny", "Tim", "Enrique", "Aisha", "Chen", "Maria",
		"Liam", "Noah", "Olivia", "Emma", "Raj", "Fatima", "Igor", "Sofia",
		"Kwame", "Yuki", "Lucas", "Nora", "Diego", "Amara", "Felix", "Ines",
	}
	lastNames = []string{
		"Onate", "Veliotis", "Rishi", "Erickson", "Garcia", "Khan", "Wang",
		"Silva", "Brown", "Martin", "Dubois", "Rossi", "Novak", "Tanaka",
		"Okafor", "Larsen", "Petrov", "Moreau", "Santos", "Iyer", "Berg",
	}
	cityRecords = []struct{ City, Region, Country string }{
		{"Fresno", "CA", "USA"}, {"Chicago", "IL", "USA"}, {"Brandon", "MN", "USA"},
		{"Austin", "TX", "USA"}, {"Portland", "OR", "USA"}, {"Denver", "CO", "USA"},
		{"London", "LDN", "UK"}, {"Leeds", "YKS", "UK"}, {"Bristol", "BST", "UK"},
		{"Toronto", "ON", "Canada"}, {"Waterloo", "ON", "Canada"}, {"Vancouver", "BC", "Canada"},
		{"Sydney", "NSW", "Australia"}, {"Perth", "WA", "Australia"},
		{"Tampere", "PIR", "Finland"}, {"Helsinki", "UUS", "Finland"},
		{"Munich", "BY", "Germany"}, {"Hamburg", "HH", "Germany"},
		{"Lyon", "ARA", "France"}, {"Nice", "PAC", "France"},
		{"Osaka", "OSK", "Japan"}, {"Kyoto", "KYT", "Japan"},
		{"Pune", "MH", "India"}, {"Jaipur", "RJ", "India"},
	}
	countries = []string{
		"USA", "UK", "Canada", "Australia", "Finland", "Germany", "France",
		"Japan", "India", "Brazil", "Mexico", "Spain",
	}
	languages = []string{
		"English", "French", "German", "Japanese", "Hindi", "Spanish",
		"Portuguese", "Finnish", "Mandarin", "Arabic", "Korean", "Italian",
		"Swedish", "Dutch", "Turkish", "Polish", "Thai", "Swahili",
		"Tagalog", "Bengali",
	}
)

// pick returns a uniform random element of pool.
func pick[T any](r *rand.Rand, pool []T) T {
	return pool[r.Intn(len(pool))]
}

// person returns a random "First Last" name.
func person(r *rand.Rand) string {
	return pick(r, firstNames) + " " + pick(r, lastNames)
}

// year returns a random year in [lo, hi].
func year(r *rand.Rand, lo, hi int) string {
	return fmt.Sprintf("%d", lo+r.Intn(hi-lo+1))
}

// money returns a random dollar amount like "$12,400,000".
func money(r *rand.Rand, loM, hiM int) string {
	m := loM + r.Intn(hiM-loM+1)
	return fmt.Sprintf("$%d,%d00,000", m/10, m%10)
}

// count returns a random integer in [lo, hi] as a string.
func count(r *rand.Rand, lo, hi int) string {
	return fmt.Sprintf("%d", lo+r.Intn(hi-lo+1))
}

// phone returns a random US-style phone number.
func phone(r *rand.Rand) string {
	return fmt.Sprintf("%d %d-%04d", 700+r.Intn(300), 200+r.Intn(800), r.Intn(10000))
}

// date returns a random ISO date in [loYear, hiYear].
func date(r *rand.Rand, loYear, hiYear int) string {
	return fmt.Sprintf("%s-%02d-%02d", year(r, loYear, hiYear), 1+r.Intn(12), 1+r.Intn(28))
}

// compound builds an entity name "Adjective Noun Suffix" from pools.
func compound(r *rand.Rand, adjectives, nouns []string, suffix string) string {
	name := pick(r, adjectives) + " " + pick(r, nouns)
	if suffix != "" {
		name += " " + suffix
	}
	return name
}
