package datagen

import (
	"math/rand"
	"sort"

	"dust/internal/table"
)

// TuplePair is one fine-tuning data point (paper §4, "Dataset
// Preparation"): two raw tuples with their own headers and a unionability
// label. Positive pairs come from the same table or two unionable tables;
// negative pairs come from two non-unionable tables.
type TuplePair struct {
	Headers1, Values1 []string
	Headers2, Values2 []string
	Unionable         bool
}

// PairDataset is the balanced, leak-free train/test/validation split of
// tuple pairs (paper: 70/15/15).
type PairDataset struct {
	Train, Test, Val []TuplePair
}

// Pairs builds a balanced pair dataset of the given total size from the
// benchmark's lake tables. Leakage is prevented structurally: the lake
// tables of every base are partitioned 70/15/15 across the splits, and a
// pair only ever combines tables from one split, so no table (hence no
// tuple) is shared between train, test, and validation.
func Pairs(b *Benchmark, total int, seed int64) PairDataset {
	rng := rand.New(rand.NewSource(seed))

	// Group lake tables by base.
	byBase := map[string][]*table.Table{}
	var bases []string
	for _, t := range b.Lake.Tables() {
		if t.NumRows() == 0 {
			continue
		}
		if _, ok := byBase[t.Base]; !ok {
			bases = append(bases, t.Base)
		}
		byBase[t.Base] = append(byBase[t.Base], t)
	}

	// Partition each base's tables across the three splits.
	type split struct{ byBase map[string][]*table.Table }
	splits := [3]split{
		{map[string][]*table.Table{}},
		{map[string][]*table.Table{}},
		{map[string][]*table.Table{}},
	}
	for _, base := range bases {
		tabs := byBase[base]
		rng.Shuffle(len(tabs), func(i, j int) { tabs[i], tabs[j] = tabs[j], tabs[i] })
		// At least one table per split when possible; remainder to train.
		nTest := len(tabs) * 15 / 100
		nVal := len(tabs) * 15 / 100
		if len(tabs) >= 3 {
			if nTest == 0 {
				nTest = 1
			}
			if nVal == 0 {
				nVal = 1
			}
		}
		nTrain := len(tabs) - nTest - nVal
		splits[0].byBase[base] = tabs[:nTrain]
		splits[1].byBase[base] = tabs[nTrain : nTrain+nTest]
		splits[2].byBase[base] = tabs[nTrain+nTest:]
	}

	sizes := [3]int{total * 70 / 100, total * 15 / 100, total * 15 / 100}
	var out PairDataset
	dst := [3]*[]TuplePair{&out.Train, &out.Test, &out.Val}
	for s := 0; s < 3; s++ {
		*dst[s] = samplePairs(splits[s].byBase, bases, sizes[s], rng)
	}
	return out
}

// samplePairs draws size pairs (balanced positive/negative) from the given
// table partition.
func samplePairs(byBase map[string][]*table.Table, bases []string, size int, rng *rand.Rand) []TuplePair {
	var usable []string
	for _, b := range bases {
		if len(byBase[b]) > 0 {
			usable = append(usable, b)
		}
	}
	if len(usable) < 2 {
		return nil
	}
	randTuple := func(t *table.Table) ([]string, []string) {
		r := rng.Intn(t.NumRows())
		return t.Headers(), t.Row(r)
	}
	pairs := make([]TuplePair, 0, size)
	for len(pairs) < size {
		if len(pairs)%2 == 0 {
			// Positive: same base (possibly the same table).
			base := usable[rng.Intn(len(usable))]
			tabs := byBase[base]
			t1 := tabs[rng.Intn(len(tabs))]
			t2 := tabs[rng.Intn(len(tabs))]
			h1, v1 := randTuple(t1)
			h2, v2 := randTuple(t2)
			pairs = append(pairs, TuplePair{h1, v1, h2, v2, true})
		} else {
			// Negative: two different bases.
			i := rng.Intn(len(usable))
			j := rng.Intn(len(usable) - 1)
			if j >= i {
				j++
			}
			t1 := byBase[usable[i]][rng.Intn(len(byBase[usable[i]]))]
			t2 := byBase[usable[j]][rng.Intn(len(byBase[usable[j]]))]
			h1, v1 := randTuple(t1)
			h2, v2 := randTuple(t2)
			pairs = append(pairs, TuplePair{h1, v1, h2, v2, false})
		}
	}
	return pairs
}

// EntityPairs builds an entity-matching dataset for the Ditto simulator:
// positive pairs are two derived copies of the same base row (found in two
// different lake tables of the same base), negative pairs are two different
// rows — including different rows of the same base, which a unionability
// model would call positive. Training on these labels and evaluating on
// unionability reproduces Ditto's partial-transfer accuracy in Fig. 6.
func EntityPairs(b *Benchmark, total int, seed int64) []TuplePair {
	rng := rand.New(rand.NewSource(seed))

	// index[base][baseRow] = list of (table, row) holding that entity.
	index := map[string]map[int][]entityLoc{}
	var bases []string
	for _, t := range b.Lake.Tables() {
		rows, ok := b.RowOrigins[t.Name]
		if !ok {
			continue
		}
		if _, seen := index[t.Base]; !seen {
			index[t.Base] = map[int][]entityLoc{}
			bases = append(bases, t.Base)
		}
		for r, baseRow := range rows {
			index[t.Base][baseRow] = append(index[t.Base][baseRow], entityLoc{t, r})
		}
	}
	// Entities appearing at least twice, per base. The inner map iteration
	// order is randomized, so sort the row ids: rng.Intn picks below must
	// hit the same entity for the same seed on every run.
	multi := map[string][]int{}
	for base, m := range index {
		var rows []int
		for baseRow, locs := range m {
			if len(locs) >= 2 {
				rows = append(rows, baseRow)
			}
		}
		if len(rows) > 0 {
			sort.Ints(rows)
			multi[base] = rows
		}
	}
	var usable []string
	for _, base := range bases {
		if len(multi[base]) > 0 {
			usable = append(usable, base)
		}
	}
	if len(usable) == 0 {
		return nil
	}

	pairs := make([]TuplePair, 0, total)
	for len(pairs) < total {
		if len(pairs)%2 == 0 {
			base := usable[rng.Intn(len(usable))]
			rowIDs := multi[base]
			locs := index[base][rowIDs[rng.Intn(len(rowIDs))]]
			a := locs[rng.Intn(len(locs))]
			c := locs[rng.Intn(len(locs))]
			pairs = append(pairs, TuplePair{
				a.t.Headers(), a.t.Row(a.row),
				c.t.Headers(), c.t.Row(c.row),
				true,
			})
		} else {
			// Negative: two distinct entities. Mostly same-base (hard
			// negatives, the entity-matching norm): a model trained on
			// these learns to suppress domain/header signals, which is
			// exactly why Ditto transfers only partially to unionability
			// (Fig. 6).
			base1 := bases[rng.Intn(len(bases))]
			base2 := base1
			if rng.Float64() < 0.45 {
				base2 = bases[rng.Intn(len(bases))]
			}
			l1 := randomLoc(index[base1], rng)
			l2 := randomLoc(index[base2], rng)
			if base1 == base2 && sameEntity(b, l1, l2) {
				continue
			}
			pairs = append(pairs, TuplePair{
				l1.t.Headers(), l1.t.Row(l1.row),
				l2.t.Headers(), l2.t.Row(l2.row),
				false,
			})
		}
	}
	return pairs
}

// entityLoc addresses one derived copy of a base row.
type entityLoc struct {
	t   *table.Table
	row int
}

func randomLoc(m map[int][]entityLoc, rng *rand.Rand) entityLoc {
	// Deterministic iteration: collect keys and sort-free pick by reservoir
	// would need ordering; instead pick via the smallest key offset.
	n := 0
	for _, locs := range m {
		n += len(locs)
	}
	k := rng.Intn(n)
	// Map iteration order is randomized by the runtime, which would break
	// determinism, so walk keys in ascending order.
	maxKey := -1
	for key := range m {
		if key > maxKey {
			maxKey = key
		}
	}
	for key := 0; key <= maxKey; key++ {
		locs, ok := m[key]
		if !ok {
			continue
		}
		if k < len(locs) {
			return locs[k]
		}
		k -= len(locs)
	}
	panic("datagen: randomLoc: unreachable")
}

func sameEntity(b *Benchmark, a, c entityLoc) bool {
	return a.t.Base == c.t.Base &&
		b.RowOrigins[a.t.Name][a.row] == b.RowOrigins[c.t.Name][c.row]
}
