package datagen

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"dust/internal/lake"
	"dust/internal/table"
)

// FuzzDirtyLakeIngest drives the dirty-data generator's CSV output —
// ragged rows, mixed types, unicode, nulls, empty cells — through the
// table and lake ingestion path under fuzzed spec parameters. Whatever
// corruption the generator emits, ingestion must heal it: ReadCSV
// succeeds (ragged rows pad/truncate to the header arity), the parsed
// table keeps the header schema, every row has header arity, and lake
// insertion fails only with the typed duplicate error. Panics and
// untyped failures are bugs.
func FuzzDirtyLakeIngest(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(30), uint8(60))
	f.Add(int64(42), uint8(1), uint8(1), uint8(255))
	f.Add(int64(-7), uint8(8), uint8(200), uint8(0))
	f.Add(int64(1<<40), uint8(5), uint8(2), uint8(128))

	f.Fuzz(func(t *testing.T, seed int64, nTables, meanRows, dirt uint8) {
		rate := float64(dirt) / 255 // one knob scales every dirty mode
		spec := LakeSpec{
			Seed:   seed,
			Tables: int(nTables%8) + 1,
			Rows:   int(meanRows%64) + 1,
			Dirty: DirtySpec{
				Ragged: rate, MixedTypes: rate, Unicode: rate,
				Null: rate / 2, Empty: rate / 2,
			},
		}
		l := lake.New("fuzz-ingest")
		for i := 0; i < spec.Normalized().Tables; i++ {
			data := spec.CSV(i)
			tb, err := table.ReadCSV(spec.TableName(i), bytes.NewReader(data))
			if err != nil {
				t.Fatalf("dirty CSV %d failed to parse: %v\ncsv:\n%s", i, err, data)
			}
			want := spec.Table(i)
			if tb.NumCols() != want.NumCols() {
				t.Fatalf("table %d: parsed %d cols, header arity %d", i, tb.NumCols(), want.NumCols())
			}
			for r := 0; r < tb.NumRows(); r++ {
				if got := len(tb.Row(r)); got != tb.NumCols() {
					t.Fatalf("table %d row %d: arity %d after ingest, want %d", i, r, got, tb.NumCols())
				}
			}
			if err := l.Add(tb); err != nil {
				t.Fatalf("lake ingest %d: %v", i, err)
			}
		}
		// Re-ingesting any table must yield the typed duplicate error.
		dup, err := table.ReadCSV(spec.TableName(0), bytes.NewReader(spec.CSV(0)))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Add(dup); !errors.Is(err, lake.ErrDuplicateTable) {
			t.Fatalf("duplicate add returned %v, want lake.ErrDuplicateTable", err)
		}
		// The healed lake must survive a full save-independent round trip:
		// serialize every ingested table and reparse it, a fixed point of
		// the clean (non-ragged) serialization.
		for _, tb := range l.Tables() {
			var buf bytes.Buffer
			if err := tb.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
			back, err := table.ReadCSV(tb.Name, bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("reparse of healed table %s: %v", tb.Name, err)
			}
			if back.NumRows() != tb.NumRows() || back.NumCols() != tb.NumCols() {
				t.Fatalf("healed table %s shape drifted: (%d,%d) -> (%d,%d)",
					tb.Name, tb.NumRows(), tb.NumCols(), back.NumRows(), back.NumCols())
			}
		}
		_ = fmt.Sprintf("%v", l.Stats()) // Stats must not panic on dirty lakes
	})
}
