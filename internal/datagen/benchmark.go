package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"dust/internal/lake"
	"dust/internal/table"
)

// Benchmark is a generated table-union-search benchmark: query tables, a
// data lake, unionability ground truth, and column-origin ground truth for
// the alignment experiments (Table 1).
type Benchmark struct {
	Name    string
	Queries []*table.Table
	Lake    *lake.Lake
	// Unionable maps a query table name to the names of its unionable lake
	// tables (tables generated from the same base, §6.1).
	Unionable map[string][]string
	// Origins maps any table name (query or lake) to per-column origin ids
	// of the form "<base>.<canonical column>"; two columns align iff their
	// origin ids are equal. Alt-schema (UGEN non-unionable) columns get
	// origins under "<base>#alt.<column>".
	Origins map[string][]string
	// RowOrigins maps a table name to the base-table row index behind each
	// of its rows. Two derived rows with the same base and base row index
	// describe the same entity (ground truth for the Ditto entity-matching
	// simulator, §6.3.2).
	RowOrigins map[string][]int
}

// Config controls benchmark generation. Zero values take defaults.
type Config struct {
	Seed           int64
	Domains        int     // number of base tables (<= len(domains()))
	BaseRows       int     // rows per base table
	TablesPerBase  int     // lake tables generated per base
	QueriesPerBase int     // query tables generated per base
	MinRows        int     // min rows per generated table
	MaxRows        int     // max rows per generated table
	MinCols        int     // min projected columns
	RenameProb     float64 // probability a kept column is renamed to a synonym
	PreserveRel    bool    // SANTOS mode: project relationship groups, not single columns
	AltPerQuery    int     // UGEN mode: same-topic non-unionable tables per query
	AltRows        int     // rows for alt-schema tables (UGEN tables are small)
	// NullProb injects missing values (real open data is full of them);
	// NoiseProb perturbs a cell's format (abbreviation, case). Both make
	// column alignment genuinely hard, keeping Table 1 off the ceiling.
	NullProb  float64
	NoiseProb float64
}

func (c *Config) defaults() {
	if c.Domains <= 0 || c.Domains > len(domains()) {
		c.Domains = len(domains())
	}
	if c.BaseRows <= 0 {
		c.BaseRows = 120
	}
	if c.TablesPerBase <= 0 {
		c.TablesPerBase = 10
	}
	if c.QueriesPerBase <= 0 {
		c.QueriesPerBase = 1
	}
	if c.MinRows <= 0 {
		c.MinRows = 20
	}
	if c.MaxRows <= 0 {
		c.MaxRows = 60
	}
	if c.MinCols <= 0 {
		c.MinCols = 3
	}
	if c.RenameProb == 0 {
		c.RenameProb = 0.4
	}
	if c.AltRows <= 0 {
		c.AltRows = 10
	}
	if c.NullProb == 0 {
		c.NullProb = 0.08
	}
	if c.NoiseProb == 0 {
		c.NoiseProb = 0.15
	}
}

// baseTable materialises one domain into a base table plus its canonical
// per-column origin ids.
func baseTable(d domain, rows int, rng *rand.Rand) (*table.Table, []string) {
	headers := make([]string, len(d.columns))
	origins := make([]string, len(d.columns))
	for i, c := range d.columns {
		headers[i] = c.name
		origins[i] = d.name + "." + c.name
	}
	t := table.New(d.name, headers...)
	t.Base = d.name
	for r := 0; r < rows; r++ {
		t.MustAppendRow(d.genRow(rng)...)
	}
	t.InferTypes()
	return t, origins
}

// deriveTable selects and projects a base table the way TUS/SANTOS create
// benchmark tables, optionally renaming headers to synonyms. It returns the
// derived table and its per-column origin ids.
func deriveTable(name string, base *table.Table, d domain, baseOrigins []string, cfg Config, rng *rand.Rand) (*table.Table, []string, []int) {
	// Pick columns: either independent columns (TUS) or whole relationship
	// groups (SANTOS, preserving binary relationships).
	ncols := len(d.columns)
	keep := make([]bool, ncols)
	kept := 0
	if cfg.PreserveRel && len(d.relGroups) > 0 {
		order := rng.Perm(len(d.relGroups))
		for _, gi := range order {
			if kept >= cfg.MinCols && rng.Float64() < 0.4 {
				continue
			}
			for _, col := range d.relGroups[gi] {
				if !keep[col] {
					keep[col] = true
					kept++
				}
			}
		}
	} else {
		order := rng.Perm(ncols)
		take := cfg.MinCols + rng.Intn(ncols-cfg.MinCols+1)
		for _, col := range order[:take] {
			keep[col] = true
			kept++
		}
	}
	if kept < cfg.MinCols {
		if cfg.PreserveRel && len(d.relGroups) > 0 {
			// Add whole groups so relationship completeness is preserved.
			for _, g := range d.relGroups {
				if kept >= cfg.MinCols {
					break
				}
				for _, col := range g {
					if !keep[col] {
						keep[col] = true
						kept++
					}
				}
			}
		}
		for col := 0; col < ncols && kept < cfg.MinCols; col++ {
			if !keep[col] {
				keep[col] = true
				kept++
			}
		}
	}

	var colIdx []int
	for i := 0; i < ncols; i++ {
		if keep[i] {
			colIdx = append(colIdx, i)
		}
	}

	// Pick rows.
	span := cfg.MaxRows - cfg.MinRows
	nrows := cfg.MinRows
	if span > 0 {
		nrows += rng.Intn(span + 1)
	}
	if nrows > base.NumRows() {
		nrows = base.NumRows()
	}
	rowIdx := rng.Perm(base.NumRows())[:nrows]
	sort.Ints(rowIdx)

	out := &table.Table{Name: name, Base: base.Base}
	origins := make([]string, 0, len(colIdx))
	for _, ci := range colIdx {
		header := d.columns[ci].name
		if len(d.columns[ci].synonyms) > 0 && rng.Float64() < cfg.RenameProb {
			header = pick(rng, d.columns[ci].synonyms)
		}
		vals := make([]string, 0, len(rowIdx))
		for _, ri := range rowIdx {
			v := base.Cell(ri, ci)
			switch {
			case rng.Float64() < cfg.NullProb:
				v = table.Null
			case rng.Float64() < cfg.NoiseProb:
				v = perturbValue(v, rng)
			}
			vals = append(vals, v)
		}
		out.Columns = append(out.Columns, table.Column{Name: header, Values: vals})
		origins = append(origins, baseOrigins[ci])
	}
	out.InferTypes()
	return out, origins, rowIdx
}

// perturbValue applies one of the format corruptions found in real open
// data, each of which changes the value's token sequence: abbreviation to
// the first word, dropping the last word, or collapsing all words into one
// run-together token.
func perturbValue(v string, rng *rand.Rand) string {
	if v == "" {
		return v
	}
	sp := indexByte(v, ' ')
	switch rng.Intn(3) {
	case 0: // abbreviate: "River Park" -> "River."
		if sp > 0 {
			return v[:sp] + "."
		}
		return v
	case 1: // drop last word: "Vera Onate" -> "Vera"
		last := -1
		for i := 0; i < len(v); i++ {
			if v[i] == ' ' {
				last = i
			}
		}
		if last > 0 {
			return v[:last]
		}
		return v
	default: // run together: "West Lawn Park" -> "WestLawnPark"
		out := make([]byte, 0, len(v))
		for i := 0; i < len(v); i++ {
			if v[i] != ' ' {
				out = append(out, v[i])
			}
		}
		return string(out)
	}
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// altTable generates a same-topic non-unionable table from a domain's alt
// schema (UGEN-style).
func altTable(name string, d domain, rows int, renameProb float64, rng *rand.Rand) (*table.Table, []string) {
	headers := make([]string, len(d.alt.columns))
	origins := make([]string, len(d.alt.columns))
	for i, c := range d.alt.columns {
		headers[i] = c.name
		if len(c.synonyms) > 0 && rng.Float64() < renameProb {
			headers[i] = pick(rng, c.synonyms)
		}
		origins[i] = d.name + "#alt." + c.name
	}
	t := table.New(name, headers...)
	t.Base = d.name + "#alt"
	for r := 0; r < rows; r++ {
		t.MustAppendRow(d.alt.genRow(rng)...)
	}
	t.InferTypes()
	return t, origins
}

// Generate builds a benchmark from the config. Table naming is
// "<base>_q<i>" for queries and "<base>_t<i>" for lake tables, so
// provenance is readable in experiment output.
func Generate(name string, cfg Config) *Benchmark {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	all := domains()[:cfg.Domains]

	b := &Benchmark{
		Name:       name,
		Lake:       lake.New(name),
		Unionable:  make(map[string][]string),
		Origins:    make(map[string][]string),
		RowOrigins: make(map[string][]int),
	}
	for _, d := range all {
		base, baseOrigins := baseTable(d, cfg.BaseRows, rng)

		var lakeNames []string
		for i := 0; i < cfg.TablesPerBase; i++ {
			tn := fmt.Sprintf("%s_t%d", d.name, i)
			t, origins, rows := deriveTable(tn, base, d, baseOrigins, cfg, rng)
			b.Lake.MustAdd(t)
			b.Origins[tn] = origins
			b.RowOrigins[tn] = rows
			lakeNames = append(lakeNames, tn)
		}
		for q := 0; q < cfg.QueriesPerBase; q++ {
			qn := fmt.Sprintf("%s_q%d", d.name, q)
			qt, origins, rows := deriveTable(qn, base, d, baseOrigins, cfg, rng)
			b.Queries = append(b.Queries, qt)
			b.Origins[qn] = origins
			b.RowOrigins[qn] = rows
			b.Unionable[qn] = lakeNames
		}
		if cfg.AltPerQuery > 0 {
			for i := 0; i < cfg.AltPerQuery; i++ {
				tn := fmt.Sprintf("%s_alt%d", d.name, i)
				t, origins := altTable(tn, d, cfg.AltRows, cfg.RenameProb, rng)
				b.Lake.MustAdd(t)
				b.Origins[tn] = origins
			}
		}
	}
	return b
}

// TUS returns the scaled-down TUS benchmark: many tables per base, arbitrary
// column projections (no relationship preservation).
func TUS() *Benchmark {
	return Generate("tus", Config{
		Seed:          101,
		TablesPerBase: 25,
		BaseRows:      160,
		MinRows:       20,
		MaxRows:       80,
	})
}

// TUSSampled returns the TUS-Sampled variant: fewer queries, 10 unionable
// tables per query (§6.1.1), sized so non-scalable baselines can run.
func TUSSampled() *Benchmark {
	return Generate("tus-sampled", Config{
		Seed:          202,
		Domains:       6,
		TablesPerBase: 10,
		BaseRows:      120,
		MinRows:       15,
		MaxRows:       50,
	})
}

// SANTOS returns the SANTOS-style benchmark: relationship-group projections
// so unionable tables share binary relationships (§6.1.2). Queries here have
// more rows, matching SANTOS's larger tables.
func SANTOS() *Benchmark {
	return Generate("santos", Config{
		Seed:           303,
		Domains:        10,
		TablesPerBase:  11,
		QueriesPerBase: 1,
		BaseRows:       200,
		MinRows:        40,
		MaxRows:        120,
		PreserveRel:    true,
	})
}

// UGEN returns the UGEN-V1-style benchmark: small LLM-flavoured tables, 10
// unionable plus 10 same-topic non-unionable tables per query (§6.1.3).
func UGEN() *Benchmark {
	return Generate("ugen-v1", Config{
		Seed:           404,
		Domains:        10,
		TablesPerBase:  10,
		QueriesPerBase: 1,
		BaseRows:       60,
		MinRows:        8,
		MaxRows:        12,
		MinCols:        3,
		AltPerQuery:    10,
		AltRows:        10,
	})
}

// IMDB returns the §6.6 case-study corpus: one small movie query table and
// 20 unionable tables sampled from a ~480-row movie base table. The lake
// reproduces the redundancy structure the case study depends on: several
// tables are near-copies of the query's region of the base (real data
// lakes hold many copies and versions of the same data, §1), so the
// tables most similar to the query contribute the fewest novel values,
// while the remaining tables cover overlapping windows across the base.
func IMDB() *Benchmark {
	cfg := Config{
		Seed:       505,
		BaseRows:   480,
		MinCols:    8, // keep all movie columns
		RenameProb: 0.15,
	}
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var movieDomain domain
	for _, d := range domains() {
		if d.name == "movies" {
			movieDomain = d
			break
		}
	}
	b := &Benchmark{
		Name:       "imdb",
		Lake:       lake.New("imdb"),
		Unionable:  make(map[string][]string),
		Origins:    make(map[string][]string),
		RowOrigins: make(map[string][]int),
	}
	base, baseOrigins := baseTable(movieDomain, cfg.BaseRows, rng)

	// windowTable derives one lake table whose rows come from a window of
	// the base.
	windowTable := func(name string, lo, hi, minRows, maxRows int) {
		wcfg := cfg
		wcfg.MinRows, wcfg.MaxRows = minRows, maxRows
		window := make([]int, 0, hi-lo)
		for r := lo; r < hi && r < base.NumRows(); r++ {
			window = append(window, r)
		}
		sub, err := base.Select(name+"_window", window)
		if err != nil {
			panic(err)
		}
		sub.Base = base.Base
		t, origins, rows := deriveTable(name, sub, movieDomain, baseOrigins, wcfg, rng)
		// Map window-relative row origins back to base rows.
		for i := range rows {
			rows[i] = window[rows[i]]
		}
		b.Lake.MustAdd(t)
		b.Origins[name] = origins
		b.RowOrigins[name] = rows
		b.Unionable["movies_q0"] = append(b.Unionable["movies_q0"], name)
	}

	// Six near-copy tables over the query's region (heavy redundancy).
	for i := 0; i < 6; i++ {
		windowTable(fmt.Sprintf("movies_t%d", i), 0, 45, 25, 35)
	}
	// Fourteen overlapping windows across the rest of the base.
	for i := 6; i < 20; i++ {
		lo := (i - 6) * 30
		windowTable(fmt.Sprintf("movies_t%d", i), lo, lo+150, 80, 110)
	}

	// The query samples the same region the near-copy tables cover.
	qcfg := cfg
	qcfg.MinRows, qcfg.MaxRows = 15, 20
	qWindow := make([]int, 45)
	for i := range qWindow {
		qWindow[i] = i
	}
	qBase, err := base.Select("q_window", qWindow)
	if err != nil {
		panic(err)
	}
	qBase.Base = base.Base
	qt, origins, rows := deriveTable("movies_q0", qBase, movieDomain, baseOrigins, qcfg, rng)
	b.Queries = append(b.Queries, qt)
	b.Origins["movies_q0"] = origins
	b.RowOrigins["movies_q0"] = rows
	return b
}

// IsUnionableTable reports whether two tables of the benchmark are
// unionable under the ground truth (same base, alt bases never unionable
// with the primary base).
func (b *Benchmark) IsUnionableTable(a, t *table.Table) bool {
	return a.Base != "" && a.Base == t.Base
}
