package datagen

import "math/rand"

// columnSpec describes one base-table column: its canonical header, the
// synonym headers generated tables may rename it to, and whether it is
// numeric (SANTOS-mode projections bias toward numeric columns, the
// property the paper blames for Starmie's low recall on SANTOS).
type columnSpec struct {
	name     string
	synonyms []string
	numeric  bool
}

// domain is one topic: a schema, a coherent row generator, relationship
// groups (column index sets that SANTOS-style generation keeps together to
// preserve binary relationships), and an alternative "aspect" schema used
// by the UGEN-style generator for same-topic non-unionable tables.
type domain struct {
	name      string
	columns   []columnSpec
	genRow    func(r *rand.Rand) []string
	relGroups [][]int
	alt       *altSchema
}

// altSchema is a same-topic, different-aspect schema (e.g. park events
// rather than park facts). Tables generated from it share topic vocabulary
// with the primary schema but are not unionable with it.
type altSchema struct {
	columns []columnSpec
	genRow  func(r *rand.Rand) []string
}

var (
	parkAdjs   = []string{"River", "West Lawn", "Hyde", "Chippewa", "Lawler", "Cedar", "Maple", "Granite", "Sunset", "Willow", "Prairie", "Harbor"}
	parkNouns  = []string{"Park", "Gardens", "Green", "Commons", "Reserve", "Grove"}
	paintWords = []string{"Northern", "Memory", "Silent", "Golden", "Broken", "Winter", "Crimson", "Quiet", "Restless", "Azure"}
	paintSubj  = []string{"Lake", "Landscape", "Harbor", "Portrait", "Field", "Window", "Garden", "Mirror", "Horizon", "Bridge"}
	media      = []string{"Oil on canvas", "Mixed media", "Watercolor", "Acrylic", "Tempera", "Charcoal", "Gouache"}
	movieAdj   = []string{"Midnight", "Silent", "Broken", "Golden", "Last", "Hidden", "Electric", "Paper", "Crimson", "Forgotten"}
	movieNoun  = []string{"Harbor", "Letters", "Empire", "Garden", "Protocol", "Station", "Summer", "Crossing", "Frontier", "Echo"}
	genres     = []string{"Drama", "Comedy", "Thriller", "Documentary", "Animation", "Horror", "Romance", "Action"}
	mythNames  = []string{"Chimera", "Siren", "Basilisk", "Minotaur", "Cyclops", "Griffon", "Succubus", "Hag", "Mugo", "Kasha", "Kraken", "Banshee", "Wendigo", "Selkie", "Djinn", "Golem"}
	mythDefs   = []string{"Monstrous", "Half-human", "King serpent", "Human-bull", "One-eyed", "Winged lion", "Female demon", "Witch", "Forest dweller", "Fire-cart", "Sea terror", "Wailing spirit", "Hungering ghost", "Seal maiden", "Smokeless flame", "Clay servant"}
	mythOrigin = []string{"Greek", "Greek, Roman", "Japanese", "Jewish, Christian", "Norse", "Celtic", "Algonquian", "Scottish", "Arabian", "Hebrew"}
	cuisines   = []string{"Italian", "Nepali", "Ethiopian", "Mexican", "Sichuan", "Bavarian", "Provencal", "Kerala", "Tuscan", "Oaxacan"}
	restNouns  = []string{"Table", "Kitchen", "Hearth", "Spoon", "Lantern", "Orchard", "Anchor", "Saffron", "Juniper", "Ember"}
	schoolT    = []string{"Lincoln", "Riverside", "Oakwood", "Meadow", "Franklin", "Hillcrest", "Northgate", "Stonebridge", "Brookfield", "Ashford"}
	bookNouns  = []string{"Shadows", "Rivers", "Letters", "Maps", "Gardens", "Storms", "Mirrors", "Journeys", "Harvests", "Lanterns"}
	publishers = []string{"Harbor Press", "Northfield Books", "Calico House", "Meridian", "Bluestem", "Foxglove"}
	birdSpec   = []string{"Northern Cardinal", "Atlantic Puffin", "Snowy Owl", "Scarlet Tanager", "Common Loon", "Arctic Tern", "House Finch", "Cedar Waxwing", "Great Egret", "Barn Swallow", "Osprey", "Sandhill Crane"}
	birdFam    = []string{"Cardinalidae", "Alcidae", "Strigidae", "Thraupidae", "Gaviidae", "Laridae", "Fringillidae", "Bombycillidae", "Ardeidae", "Hirundinidae", "Pandionidae", "Gruidae"}
	habitats   = []string{"Woodland", "Coastal cliffs", "Tundra", "Forest canopy", "Lakes", "Open ocean", "Urban", "Orchards", "Wetlands", "Farmland", "Rivers", "Prairie"}
	parties    = []string{"Unity", "Progress", "Heritage", "Reform", "Meadow", "Civic"}
	lineNames  = []string{"Blue", "Red", "Green", "Orange", "Central", "Circle", "Harbor", "Airport"}
	statuses   = []string{"Least Concern", "Near Threatened", "Vulnerable", "Endangered"}
)

// domains returns the full topic corpus. Each call builds fresh closures;
// generation order and seeds make everything deterministic.
func domains() []domain {
	return []domain{
		{
			name: "parks",
			columns: []columnSpec{
				{name: "Park Name", synonyms: []string{"Park", "Name of Park"}},
				{name: "Supervisor", synonyms: []string{"Supervised by", "Park Supervisor"}},
				{name: "City", synonyms: []string{"Park City", "Location City"}},
				{name: "Country", synonyms: []string{"Park Country"}},
				{name: "Phone", synonyms: []string{"Park Phone", "Contact"}},
				{name: "Area Acres", synonyms: []string{"Acres", "Size Acres"}, numeric: true},
				{name: "Opened", synonyms: []string{"Year Opened"}, numeric: true},
				// Confusable columns: a second person and a second year
				// column make alignment genuinely hard (as in real open
				// data), keeping Table 1 scores off the ceiling.
				{name: "Groundskeeper", synonyms: []string{"Maintained by"}},
				{name: "Renovated", synonyms: []string{"Last Renovation"}, numeric: true},
			},
			genRow: func(r *rand.Rand) []string {
				c := pick(r, cityRecords)
				return []string{
					compound(r, parkAdjs, parkNouns, ""),
					person(r),
					c.City + ", " + c.Region,
					c.Country,
					phone(r),
					count(r, 5, 900),
					year(r, 1890, 2015),
					person(r),
					year(r, 1995, 2024),
				}
			},
			relGroups: [][]int{{0, 1}, {2, 3}, {5, 6}, {7, 8}},
			alt: &altSchema{
				columns: []columnSpec{
					{name: "Event", synonyms: []string{"Park Event"}},
					{name: "Park", synonyms: []string{"Held At"}},
					{name: "Date", synonyms: []string{"Event Date"}},
					{name: "Attendance", synonyms: []string{"Visitors"}, numeric: true},
				},
				genRow: func(r *rand.Rand) []string {
					return []string{
						pick(r, []string{"Summer Concert", "Cleanup Day", "Bird Walk", "Night Market", "Fun Run", "Art Fair"}),
						compound(r, parkAdjs, parkNouns, ""),
						date(r, 2015, 2024),
						count(r, 40, 5000),
					}
				},
			},
		},
		{
			name: "paintings",
			columns: []columnSpec{
				{name: "Painting", synonyms: []string{"Title", "Artwork"}},
				{name: "Artist", synonyms: []string{"Painter", "Created by"}},
				{name: "Medium", synonyms: []string{"Materials"}},
				{name: "Dimensions", synonyms: []string{"Size"}},
				{name: "Date", synonyms: []string{"Year", "Created"}, numeric: true},
				{name: "Country", synonyms: []string{"Origin Country"}},
			},
			genRow: func(r *rand.Rand) []string {
				return []string{
					compound(r, paintWords, paintSubj, ""),
					person(r),
					pick(r, media),
					count(r, 20, 200) + " x " + count(r, 20, 300) + " cm",
					year(r, 1850, 2022),
					pick(r, countries),
				}
			},
			relGroups: [][]int{{0, 1}, {2, 3}, {4, 5}},
			alt: &altSchema{
				columns: []columnSpec{
					{name: "Exhibition", synonyms: []string{"Show"}},
					{name: "Gallery", synonyms: []string{"Venue"}},
					{name: "Opening", synonyms: []string{"Opens"}},
					{name: "Works", synonyms: []string{"Piece Count"}, numeric: true},
				},
				genRow: func(r *rand.Rand) []string {
					return []string{
						compound(r, paintWords, paintSubj, "Retrospective"),
						pick(r, restNouns) + " Gallery",
						date(r, 2010, 2024),
						count(r, 8, 120),
					}
				},
			},
		},
		{
			name: "movies",
			columns: []columnSpec{
				{name: "Title", synonyms: []string{"Movie", "Film Title"}},
				{name: "Director", synonyms: []string{"Directed by"}},
				{name: "Genre", synonyms: []string{"Category"}},
				{name: "Language", synonyms: []string{"Languages", "Spoken Language"}},
				{name: "Filming Location", synonyms: []string{"filming_locations", "Shot In"}},
				{name: "Budget", synonyms: []string{"Production Budget"}, numeric: true},
				{name: "Year", synonyms: []string{"Release Year"}, numeric: true},
				{name: "Producer", synonyms: []string{"Produced by"}},
			},
			genRow: func(r *rand.Rand) []string {
				c := pick(r, cityRecords)
				// Sequel suffixes keep titles near-unique across a large
				// base table (the real IMDB sample has ~500 distinct
				// titles), which the §6.6 case study depends on.
				title := compound(r, movieAdj, movieNoun, "")
				switch r.Intn(5) {
				case 1:
					title += " II"
				case 2:
					title += " III"
				case 3:
					title += " Returns"
				case 4:
					title += " Rising"
				}
				return []string{
					title,
					person(r),
					pick(r, genres),
					pick(r, languages),
					c.City + ", " + c.Country,
					money(r, 5, 900),
					year(r, 1985, 2024),
					person(r),
				}
			},
			relGroups: [][]int{{0, 1}, {3, 4}, {5, 6}, {0, 7}},
			alt: &altSchema{
				columns: []columnSpec{
					{name: "Actor", synonyms: []string{"Cast Member"}},
					{name: "Film", synonyms: []string{"Appears In"}},
					{name: "Role", synonyms: []string{"Character"}},
					{name: "Scenes", synonyms: []string{"Scene Count"}, numeric: true},
				},
				genRow: func(r *rand.Rand) []string {
					return []string{
						person(r),
						compound(r, movieAdj, movieNoun, ""),
						pick(r, []string{"Lead", "Support", "Cameo", "Narrator"}),
						count(r, 1, 60),
					}
				},
			},
		},
		{
			name: "mythology",
			columns: []columnSpec{
				{name: "Myth", synonyms: []string{"Creature", "Being"}},
				{name: "Definition", synonyms: []string{"Description"}},
				{name: "Synonyms", synonyms: []string{"Also Known As"}},
				{name: "Origin", synonyms: []string{"Culture", "Mythology"}},
			},
			genRow: func(r *rand.Rand) []string {
				i := r.Intn(len(mythNames))
				return []string{
					mythNames[i],
					mythDefs[i],
					pick(r, mythNames) + ", " + pick(r, mythNames),
					pick(r, mythOrigin),
				}
			},
			relGroups: [][]int{{0, 1}, {2, 3}},
			alt: &altSchema{
				columns: []columnSpec{
					{name: "Tale", synonyms: []string{"Story"}},
					{name: "Teller", synonyms: []string{"Recorded by"}},
					{name: "Region", synonyms: []string{"Told In"}},
					{name: "Century", synonyms: []string{"Era"}, numeric: true},
				},
				genRow: func(r *rand.Rand) []string {
					return []string{
						"The " + pick(r, mythNames) + " of " + pick(r, cityRecords).City,
						person(r),
						pick(r, mythOrigin),
						count(r, 8, 19),
					}
				},
			},
		},
		{
			name: "schools",
			columns: []columnSpec{
				{name: "School Name", synonyms: []string{"School", "Institution"}},
				{name: "Principal", synonyms: []string{"Head", "Led by"}},
				{name: "District", synonyms: []string{"School District"}},
				{name: "City", synonyms: []string{"Town"}},
				{name: "Country", synonyms: []string{"Nation"}},
				{name: "Enrollment", synonyms: []string{"Students", "Pupil Count"}, numeric: true},
				{name: "Vice Principal", synonyms: []string{"Deputy Head"}},
				{name: "Founded", synonyms: []string{"Year Founded"}, numeric: true},
			},
			genRow: func(r *rand.Rand) []string {
				c := pick(r, cityRecords)
				return []string{
					pick(r, schoolT) + " " + pick(r, []string{"Elementary", "Middle School", "High School", "Academy"}),
					person(r),
					pick(r, schoolT) + " District " + count(r, 1, 40),
					c.City,
					c.Country,
					count(r, 120, 2800),
					person(r),
					year(r, 1880, 2005),
				}
			},
			relGroups: [][]int{{0, 1}, {3, 4}, {2, 5}, {6, 7}},
			alt: &altSchema{
				columns: []columnSpec{
					{name: "Course", synonyms: []string{"Class"}},
					{name: "Teacher", synonyms: []string{"Taught by"}},
					{name: "Room", synonyms: []string{"Classroom"}},
					{name: "Seats", synonyms: []string{"Capacity"}, numeric: true},
				},
				genRow: func(r *rand.Rand) []string {
					return []string{
						pick(r, []string{"Algebra", "Biology", "World History", "Chemistry", "Literature", "Geometry"}) + " " + count(r, 1, 4),
						person(r),
						"Room " + count(r, 100, 399),
						count(r, 12, 36),
					}
				},
			},
		},
		{
			name: "restaurants",
			columns: []columnSpec{
				{name: "Restaurant", synonyms: []string{"Name", "Establishment"}},
				{name: "Cuisine", synonyms: []string{"Food Type"}},
				{name: "Chef", synonyms: []string{"Head Chef"}},
				{name: "City", synonyms: []string{"Located In"}},
				{name: "Country", synonyms: []string{"Country Name"}},
				{name: "Rating", synonyms: []string{"Stars"}, numeric: true},
			},
			genRow: func(r *rand.Rand) []string {
				c := pick(r, cityRecords)
				return []string{
					"The " + pick(r, cuisines) + " " + pick(r, restNouns),
					pick(r, cuisines),
					person(r),
					c.City,
					c.Country,
					count(r, 1, 5) + "." + count(r, 0, 9),
				}
			},
			relGroups: [][]int{{0, 1}, {3, 4}},
			alt: &altSchema{
				columns: []columnSpec{
					{name: "Dish", synonyms: []string{"Menu Item"}},
					{name: "Served At", synonyms: []string{"Restaurant Name"}},
					{name: "Price", synonyms: []string{"Cost"}, numeric: true},
					{name: "Spice Level", synonyms: []string{"Heat"}},
				},
				genRow: func(r *rand.Rand) []string {
					return []string{
						pick(r, cuisines) + " " + pick(r, []string{"Stew", "Dumplings", "Flatbread", "Noodles", "Curry", "Roast"}),
						"The " + pick(r, cuisines) + " " + pick(r, restNouns),
						"$" + count(r, 6, 48),
						pick(r, []string{"Mild", "Medium", "Hot", "Extra Hot"}),
					}
				},
			},
		},
		{
			name: "books",
			columns: []columnSpec{
				{name: "Title", synonyms: []string{"Book", "Book Title"}},
				{name: "Author", synonyms: []string{"Written by"}},
				{name: "Publisher", synonyms: []string{"Published by"}},
				{name: "Genre", synonyms: []string{"Category"}},
				{name: "Year", synonyms: []string{"Published", "Pub Year"}, numeric: true},
				{name: "Language", synonyms: []string{"Written In"}},
			},
			genRow: func(r *rand.Rand) []string {
				return []string{
					"A " + pick(r, paintWords) + " of " + pick(r, bookNouns),
					person(r),
					pick(r, publishers),
					pick(r, genres),
					year(r, 1920, 2024),
					pick(r, languages),
				}
			},
			relGroups: [][]int{{0, 1}, {2, 4}, {3, 5}},
			alt: &altSchema{
				columns: []columnSpec{
					{name: "Review", synonyms: []string{"Reviewed Title"}},
					{name: "Critic", synonyms: []string{"Reviewer"}},
					{name: "Outlet", synonyms: []string{"Published In"}},
					{name: "Score", synonyms: []string{"Rating"}, numeric: true},
				},
				genRow: func(r *rand.Rand) []string {
					return []string{
						"A " + pick(r, paintWords) + " of " + pick(r, bookNouns),
						person(r),
						pick(r, publishers) + " Review",
						count(r, 40, 100),
					}
				},
			},
		},
		{
			name: "birds",
			columns: []columnSpec{
				{name: "Species", synonyms: []string{"Bird", "Common Name"}},
				{name: "Family", synonyms: []string{"Taxonomic Family"}},
				{name: "Habitat", synonyms: []string{"Habitat Type"}},
				{name: "Region", synonyms: []string{"Range"}},
				{name: "Wingspan CM", synonyms: []string{"Wingspan"}, numeric: true},
				{name: "Status", synonyms: []string{"Conservation Status"}},
			},
			genRow: func(r *rand.Rand) []string {
				i := r.Intn(len(birdSpec))
				return []string{
					birdSpec[i],
					birdFam[i],
					pick(r, habitats),
					pick(r, countries),
					count(r, 18, 230),
					pick(r, statuses),
				}
			},
			relGroups: [][]int{{0, 1}, {2, 3}, {4, 5}},
			alt: &altSchema{
				columns: []columnSpec{
					{name: "Sighting", synonyms: []string{"Observed Species"}},
					{name: "Observer", synonyms: []string{"Spotted by"}},
					{name: "Site", synonyms: []string{"Location"}},
					{name: "Count", synonyms: []string{"Individuals"}, numeric: true},
				},
				genRow: func(r *rand.Rand) []string {
					c := pick(r, cityRecords)
					return []string{
						pick(r, birdSpec),
						person(r),
						c.City + " wetlands",
						count(r, 1, 80),
					}
				},
			},
		},
		{
			name: "elections",
			columns: []columnSpec{
				{name: "Candidate", synonyms: []string{"Name", "Running"}},
				{name: "Party", synonyms: []string{"Political Party"}},
				{name: "District", synonyms: []string{"Constituency"}},
				{name: "Votes", synonyms: []string{"Vote Count"}, numeric: true},
				{name: "Year", synonyms: []string{"Election Year"}, numeric: true},
				{name: "Country", synonyms: []string{"Held In"}},
			},
			genRow: func(r *rand.Rand) []string {
				c := pick(r, cityRecords)
				return []string{
					person(r),
					pick(r, parties) + " Party",
					c.City + " " + count(r, 1, 30),
					count(r, 900, 220000),
					year(r, 1996, 2024),
					c.Country,
				}
			},
			relGroups: [][]int{{0, 1}, {2, 5}, {3, 4}},
			alt: &altSchema{
				columns: []columnSpec{
					{name: "Measure", synonyms: []string{"Ballot Measure"}},
					{name: "Topic", synonyms: []string{"Subject"}},
					{name: "Support Pct", synonyms: []string{"Yes Share"}, numeric: true},
					{name: "Outcome", synonyms: []string{"Result"}},
				},
				genRow: func(r *rand.Rand) []string {
					return []string{
						"Measure " + count(r, 1, 80),
						pick(r, []string{"Parks funding", "School bonds", "Transit", "Housing", "Libraries"}),
						count(r, 30, 79),
						pick(r, []string{"Passed", "Failed"}),
					}
				},
			},
		},
		{
			name: "stations",
			columns: []columnSpec{
				{name: "Station", synonyms: []string{"Stop", "Station Name"}},
				{name: "Line", synonyms: []string{"Transit Line"}},
				{name: "City", synonyms: []string{"Served City"}},
				{name: "Country", synonyms: []string{"In Country"}},
				{name: "Platforms", synonyms: []string{"Platform Count"}, numeric: true},
				{name: "Opened", synonyms: []string{"Opening Year"}, numeric: true},
			},
			genRow: func(r *rand.Rand) []string {
				c := pick(r, cityRecords)
				return []string{
					c.City + " " + pick(r, []string{"Central", "North", "South", "Junction", "Terminal"}),
					pick(r, lineNames) + " Line",
					c.City,
					c.Country,
					count(r, 1, 12),
					year(r, 1880, 2020),
				}
			},
			relGroups: [][]int{{0, 2}, {2, 3}, {4, 5}},
			alt: &altSchema{
				columns: []columnSpec{
					{name: "Departure", synonyms: []string{"Train"}},
					{name: "From", synonyms: []string{"Origin"}},
					{name: "To", synonyms: []string{"Destination"}},
					{name: "Minutes", synonyms: []string{"Duration"}, numeric: true},
				},
				genRow: func(r *rand.Rand) []string {
					return []string{
						pick(r, lineNames) + " " + count(r, 100, 999),
						pick(r, cityRecords).City,
						pick(r, cityRecords).City,
						count(r, 12, 300),
					}
				},
			},
		},
		{
			name: "hospitals",
			columns: []columnSpec{
				{name: "Hospital", synonyms: []string{"Facility", "Hospital Name"}},
				{name: "Director", synonyms: []string{"Run by", "Administrator"}},
				{name: "Beds", synonyms: []string{"Bed Count"}, numeric: true},
				{name: "City", synonyms: []string{"Municipality"}},
				{name: "Country", synonyms: []string{"Located Country"}},
				{name: "Founded", synonyms: []string{"Established"}, numeric: true},
			},
			genRow: func(r *rand.Rand) []string {
				c := pick(r, cityRecords)
				return []string{
					pick(r, schoolT) + " " + pick(r, []string{"General", "Memorial", "Regional", "University"}) + " Hospital",
					person(r),
					count(r, 40, 1200),
					c.City,
					c.Country,
					year(r, 1870, 2010),
				}
			},
			relGroups: [][]int{{0, 1}, {3, 4}, {2, 5}},
			alt: &altSchema{
				columns: []columnSpec{
					{name: "Ward", synonyms: []string{"Unit"}},
					{name: "Hospital Name", synonyms: []string{"At Facility"}},
					{name: "Nurses", synonyms: []string{"Nursing Staff"}, numeric: true},
					{name: "Floor", synonyms: []string{"Level"}, numeric: true},
				},
				genRow: func(r *rand.Rand) []string {
					return []string{
						pick(r, []string{"Cardiology", "Oncology", "Pediatrics", "Maternity", "Neurology", "Orthopedics"}),
						pick(r, schoolT) + " General Hospital",
						count(r, 4, 60),
						count(r, 1, 12),
					}
				},
			},
		},
		{
			name: "bridges",
			columns: []columnSpec{
				{name: "Bridge", synonyms: []string{"Bridge Name", "Crossing"}},
				{name: "Spans", synonyms: []string{"Crosses"}},
				{name: "Length M", synonyms: []string{"Length", "Meters"}, numeric: true},
				{name: "City", synonyms: []string{"Nearest City"}},
				{name: "Country", synonyms: []string{"Country Located"}},
				{name: "Built", synonyms: []string{"Completed"}, numeric: true},
			},
			genRow: func(r *rand.Rand) []string {
				c := pick(r, cityRecords)
				return []string{
					pick(r, parkAdjs) + " " + pick(r, []string{"Bridge", "Viaduct", "Crossing", "Span"}),
					pick(r, []string{"Miller River", "East Channel", "Canyon Creek", "Harbor Inlet", "Rail Yard", "Green Valley"}),
					count(r, 40, 3200),
					c.City,
					c.Country,
					year(r, 1860, 2018),
				}
			},
			relGroups: [][]int{{0, 1}, {3, 4}, {2, 5}},
			alt: &altSchema{
				columns: []columnSpec{
					{name: "Inspection", synonyms: []string{"Inspection ID"}},
					{name: "Structure", synonyms: []string{"Bridge Inspected"}},
					{name: "Inspector", synonyms: []string{"Checked by"}},
					{name: "Condition", synonyms: []string{"State"}},
				},
				genRow: func(r *rand.Rand) []string {
					return []string{
						"INSP-" + count(r, 1000, 9999),
						pick(r, parkAdjs) + " Bridge",
						person(r),
						pick(r, []string{"Good", "Fair", "Poor", "Critical"}),
					}
				},
			},
		},
	}
}
