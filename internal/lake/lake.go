// Package lake provides the data-lake container: a named collection of
// tables with CSV directory persistence and the summary statistics reported
// in the paper's Fig. 5 (tables, columns, tuples per benchmark).
package lake

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dust/internal/table"
)

// Typed failures of the lake mutation surface, for callers (HTTP layers)
// that map them to distinct statuses.
var (
	// ErrDuplicateTable reports Add (or Rename onto) a name the lake holds.
	ErrDuplicateTable = errors.New("lake: duplicate table")
	// ErrUnknownTable reports Remove/Rename of a name the lake never held.
	ErrUnknownTable = errors.New("lake: no such table")
)

// Lake is an in-memory data lake: a set of tables addressable by name.
type Lake struct {
	Name   string
	tables map[string]*table.Table
	order  []string // insertion order, for deterministic iteration
}

// New creates an empty lake.
func New(name string) *Lake {
	return &Lake{Name: name, tables: make(map[string]*table.Table)}
}

// Add inserts a table; adding a second table with the same name is an
// error because the name is the table's identity within the lake.
func (l *Lake) Add(t *table.Table) error {
	if _, ok := l.tables[t.Name]; ok {
		return fmt.Errorf("lake %s: %w: %q", l.Name, ErrDuplicateTable, t.Name)
	}
	l.tables[t.Name] = t
	l.order = append(l.order, t.Name)
	return nil
}

// MustAdd inserts a table and panics on duplicates; for generators.
func (l *Lake) MustAdd(t *table.Table) {
	if err := l.Add(t); err != nil {
		panic(err)
	}
}

// Remove deletes the named table; removing an absent table is an error.
// The insertion order of the remaining tables is preserved, so iteration
// stays deterministic across arbitrary Add/Remove interleavings.
func (l *Lake) Remove(name string) error {
	if _, ok := l.tables[name]; !ok {
		return fmt.Errorf("lake %s: %w: %q", l.Name, ErrUnknownTable, name)
	}
	delete(l.tables, name)
	for i, n := range l.order {
		if n == name {
			l.order = append(l.order[:i], l.order[i+1:]...)
			break
		}
	}
	return nil
}

// Rename changes a table's identity in place: the table keeps its position
// in the iteration order and its Name field is updated to match. Renaming
// an absent table or onto an existing name is an error.
//
// Rename only touches the lake. Search indexes key their state by table
// name and do not observe it — rename an indexed table by removing it
// under the old name and re-adding it under the new one (or rebuild).
func (l *Lake) Rename(old, new string) error {
	t, ok := l.tables[old]
	if !ok {
		return fmt.Errorf("lake %s: %w: %q", l.Name, ErrUnknownTable, old)
	}
	if old == new {
		return nil
	}
	if _, ok := l.tables[new]; ok {
		return fmt.Errorf("lake %s: %w: %q", l.Name, ErrDuplicateTable, new)
	}
	delete(l.tables, old)
	t.Name = new
	l.tables[new] = t
	for i, n := range l.order {
		if n == old {
			l.order[i] = new
			break
		}
	}
	return nil
}

// Clone returns a lake owning its own name map and iteration order but
// sharing the table objects (which nothing in the repo mutates after
// insertion): Add/Remove/Rename on the clone never observe or disturb the
// original, so a serving layer can mutate a copy-on-write shadow while
// queries keep reading the original lake lock-free.
func (l *Lake) Clone() *Lake {
	c := &Lake{
		Name:   l.Name,
		tables: make(map[string]*table.Table, len(l.tables)),
		order:  append([]string(nil), l.order...),
	}
	for n, t := range l.tables {
		c.tables[n] = t
	}
	return c
}

// Get returns the named table, or nil.
func (l *Lake) Get(name string) *table.Table { return l.tables[name] }

// Len returns the number of tables.
func (l *Lake) Len() int { return len(l.order) }

// Tables returns all tables in insertion order.
func (l *Lake) Tables() []*table.Table {
	out := make([]*table.Table, 0, len(l.order))
	for _, n := range l.order {
		out = append(out, l.tables[n])
	}
	return out
}

// Names returns the table names in insertion order.
func (l *Lake) Names() []string {
	out := make([]string, len(l.order))
	copy(out, l.order)
	return out
}

// Stats summarises a lake the way Fig. 5 reports benchmarks.
type Stats struct {
	Tables  int
	Columns int
	Tuples  int
}

// Stats computes the lake's summary statistics.
func (l *Lake) Stats() Stats {
	var s Stats
	for _, t := range l.Tables() {
		s.Tables++
		s.Columns += t.NumCols()
		s.Tuples += t.NumRows()
	}
	return s
}

// String renders stats in a compact human form.
func (s Stats) String() string {
	return fmt.Sprintf("%d tables, %d columns, %d tuples", s.Tables, s.Columns, s.Tuples)
}

// Save writes every table as <dir>/<name>.csv.
func (l *Lake) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, t := range l.Tables() {
		if err := t.SaveCSV(filepath.Join(dir, t.Name+".csv")); err != nil {
			return fmt.Errorf("lake %s: save %s: %w", l.Name, t.Name, err)
		}
	}
	return nil
}

// Load reads every *.csv file in dir (non-recursively) into a new lake
// named after the directory. Files are loaded in sorted order so the lake
// layout is deterministic.
func Load(dir string) (*Lake, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".csv") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	l := New(filepath.Base(dir))
	for _, f := range files {
		t, err := table.LoadCSV(filepath.Join(dir, f))
		if err != nil {
			return nil, fmt.Errorf("lake %s: load %s: %w", l.Name, f, err)
		}
		if err := l.Add(t); err != nil {
			return nil, err
		}
	}
	return l, nil
}
