package lake

import (
	"path/filepath"
	"testing"

	"dust/internal/table"
)

func mkTable(name string, rows int) *table.Table {
	t := table.New(name, "a", "b")
	for i := 0; i < rows; i++ {
		t.MustAppendRow("x", "y")
	}
	return t
}

func TestAddGetLen(t *testing.T) {
	l := New("test")
	if err := l.Add(mkTable("one", 2)); err != nil {
		t.Fatal(err)
	}
	if err := l.Add(mkTable("one", 2)); err == nil {
		t.Error("duplicate Add should error")
	}
	if l.Len() != 1 {
		t.Errorf("Len = %d", l.Len())
	}
	if l.Get("one") == nil {
		t.Error("Get returned nil for existing table")
	}
	if l.Get("missing") != nil {
		t.Error("Get returned non-nil for missing table")
	}
}

func TestTablesInsertionOrder(t *testing.T) {
	l := New("test")
	names := []string{"zeta", "alpha", "mid"}
	for _, n := range names {
		l.MustAdd(mkTable(n, 1))
	}
	got := l.Names()
	for i, n := range names {
		if got[i] != n {
			t.Fatalf("Names = %v, want insertion order %v", got, names)
		}
	}
	tabs := l.Tables()
	if len(tabs) != 3 || tabs[0].Name != "zeta" {
		t.Errorf("Tables order wrong: %v", tabs)
	}
}

func TestStats(t *testing.T) {
	l := New("test")
	l.MustAdd(mkTable("a", 3))
	l.MustAdd(mkTable("b", 5))
	s := l.Stats()
	if s.Tables != 2 || s.Columns != 4 || s.Tuples != 8 {
		t.Errorf("Stats = %+v", s)
	}
	if s.String() != "2 tables, 4 columns, 8 tuples" {
		t.Errorf("Stats.String = %q", s.String())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "lakedir")
	l := New("orig")
	l.MustAdd(mkTable("t1", 2))
	l.MustAdd(mkTable("t2", 4))
	if err := l.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("loaded %d tables, want 2", back.Len())
	}
	if back.Get("t1").NumRows() != 2 || back.Get("t2").NumRows() != 4 {
		t.Error("loaded table shapes wrong")
	}
	if back.Name != "lakedir" {
		t.Errorf("loaded lake name = %q", back.Name)
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("Load of missing dir should error")
	}
}

func TestRemovePreservesOrder(t *testing.T) {
	l := New("test")
	for _, n := range []string{"a", "b", "c", "d"} {
		l.MustAdd(mkTable(n, 1))
	}
	if err := l.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if err := l.Remove("b"); err == nil {
		t.Error("removing an absent table should error")
	}
	want := []string{"a", "c", "d"}
	got := l.Names()
	if len(got) != len(want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want %v", got, want)
		}
	}
	if l.Get("b") != nil {
		t.Error("removed table still retrievable")
	}
	if l.Len() != 3 {
		t.Errorf("Len = %d, want 3", l.Len())
	}
	// Re-adding after removal appends at the end, like a fresh Add.
	l.MustAdd(mkTable("b", 1))
	if names := l.Names(); names[len(names)-1] != "b" {
		t.Errorf("re-added table not last: %v", names)
	}
}

func TestRemoveFirstAndLast(t *testing.T) {
	l := New("test")
	for _, n := range []string{"a", "b", "c"} {
		l.MustAdd(mkTable(n, 1))
	}
	if err := l.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := l.Remove("c"); err != nil {
		t.Fatal(err)
	}
	if names := l.Names(); len(names) != 1 || names[0] != "b" {
		t.Errorf("Names = %v, want [b]", names)
	}
}

func TestRename(t *testing.T) {
	l := New("test")
	for _, n := range []string{"a", "b", "c"} {
		l.MustAdd(mkTable(n, 1))
	}
	if err := l.Rename("b", "bee"); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "bee", "c"}
	for i, n := range l.Names() {
		if n != want[i] {
			t.Fatalf("Names = %v, want %v", l.Names(), want)
		}
	}
	if got := l.Get("bee"); got == nil || got.Name != "bee" {
		t.Error("renamed table's Name field not updated")
	}
	if l.Get("b") != nil {
		t.Error("old name still resolves")
	}
	if err := l.Rename("missing", "x"); err == nil {
		t.Error("renaming an absent table should error")
	}
	if err := l.Rename("a", "c"); err == nil {
		t.Error("renaming onto an existing name should error")
	}
	if err := l.Rename("a", "a"); err != nil {
		t.Errorf("no-op rename should succeed: %v", err)
	}
}
