// Package codec implements the versioned binary envelope and payload
// primitives shared by every persisted index in the repo (the Starmie, D3L,
// and tuple-level search indexes, and the pipeline manifest). The format is
// deliberately simple and self-validating so a warm start never trusts a
// stale or corrupted file:
//
//	magic   "DSTIDX"           (6 bytes)
//	kind    one byte           (which index family the payload belongs to)
//	version uint16 LE          (per-kind payload format version, >= 1)
//	length  uint64 LE          (payload byte count)
//	payload length bytes
//	crc32   uint32 LE          (IEEE CRC of the payload)
//
// Readers fail with typed errors — ErrBadMagic, ErrWrongKind, ErrVersion,
// ErrTruncated, ErrChecksum, ErrCorrupt — never panics, so callers can
// distinguish "not an index file" from "index written by a newer version"
// from "bit rot". Payloads are built with Buffer and decoded with Scanner,
// whose length reads are bounded by the remaining input so a hostile file
// cannot force large allocations.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Typed failure modes of ReadEnvelope and Scanner. Wrapped errors always
// match these with errors.Is.
var (
	// ErrBadMagic means the input does not start with the DSTIDX magic —
	// it is not an index file at all.
	ErrBadMagic = errors.New("codec: bad magic (not a DUST index file)")
	// ErrWrongKind means the file is a DUST index of a different family
	// than the caller expected (e.g. a D3L index passed to the Starmie
	// loader).
	ErrWrongKind = errors.New("codec: wrong index kind")
	// ErrVersion means the payload format version is zero or newer than
	// what this binary understands.
	ErrVersion = errors.New("codec: unsupported format version")
	// ErrTruncated means the input ended before the declared payload and
	// checksum were read.
	ErrTruncated = errors.New("codec: truncated input")
	// ErrChecksum means the payload bytes do not match the stored CRC.
	ErrChecksum = errors.New("codec: checksum mismatch")
	// ErrCorrupt means the payload is structurally invalid (trailing
	// bytes, impossible lengths, out-of-range values).
	ErrCorrupt = errors.New("codec: corrupt payload")
)

// Envelope kinds. Each persisted structure owns one kind byte.
const (
	KindStarmie  byte = 'S' // Starmie column-embedding index
	KindD3L      byte = 'D' // D3L multi-signal index
	KindTuples   byte = 'T' // tuple-level index
	KindManifest byte = 'M' // pipeline index-directory manifest
	KindANN      byte = 'A' // HNSW approximate candidate graph
)

const (
	magicLen  = 6
	headerLen = magicLen + 1 + 2 + 8 // magic + kind + version + length
	crcLen    = 4
)

var magic = [magicLen]byte{'D', 'S', 'T', 'I', 'D', 'X'}

// WriteEnvelope frames payload with the given kind and version and writes
// the complete envelope to w.
func WriteEnvelope(w io.Writer, kind byte, version uint16, payload []byte) error {
	head := make([]byte, 0, headerLen)
	head = append(head, magic[:]...)
	head = append(head, kind)
	head = binary.LittleEndian.AppendUint16(head, version)
	head = binary.LittleEndian.AppendUint64(head, uint64(len(payload)))
	if _, err := w.Write(head); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crc [crcLen]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(crc[:])
	return err
}

// ReadEnvelope consumes all of r and validates one envelope of the expected
// kind, returning the stored version and payload. maxVersion is the newest
// payload format this caller understands; files declaring a newer version
// fail with ErrVersion so old binaries refuse new indexes instead of
// misreading them.
func ReadEnvelope(r io.Reader, kind byte, maxVersion uint16) (uint16, []byte, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, nil, fmt.Errorf("codec: read: %w", err)
	}
	if len(data) < magicLen || string(data[:magicLen]) != string(magic[:]) {
		return 0, nil, ErrBadMagic
	}
	if len(data) < headerLen+crcLen {
		return 0, nil, ErrTruncated
	}
	if got := data[magicLen]; got != kind {
		return 0, nil, fmt.Errorf("%w: got %q, want %q", ErrWrongKind, got, kind)
	}
	version := binary.LittleEndian.Uint16(data[magicLen+1:])
	if version == 0 || version > maxVersion {
		return 0, nil, fmt.Errorf("%w: file declares version %d, this build reads <= %d",
			ErrVersion, version, maxVersion)
	}
	plen := binary.LittleEndian.Uint64(data[magicLen+3:])
	rest := uint64(len(data) - headerLen - crcLen)
	if plen > rest {
		return 0, nil, ErrTruncated
	}
	if plen < rest {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes after envelope", ErrCorrupt, rest-plen)
	}
	payload := data[headerLen : headerLen+int(plen)]
	want := binary.LittleEndian.Uint32(data[len(data)-crcLen:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return 0, nil, fmt.Errorf("%w: crc 0x%08x, stored 0x%08x", ErrChecksum, got, want)
	}
	return version, payload, nil
}

// Buffer accumulates a payload. The zero value is ready to use; writes never
// fail. Integers are uvarint-encoded (counts and lengths are small),
// float64 and uint64 slices are fixed-width little-endian (embeddings and
// MinHash values do not compress under varint).
type Buffer struct {
	buf []byte
}

// Bytes returns the accumulated payload.
func (b *Buffer) Bytes() []byte { return b.buf }

// Uvarint appends an unsigned varint.
func (b *Buffer) Uvarint(x uint64) { b.buf = binary.AppendUvarint(b.buf, x) }

// Int appends a non-negative int as a uvarint; negative values panic (they
// indicate a programming error, not bad data).
func (b *Buffer) Int(x int) {
	if x < 0 {
		panic(fmt.Sprintf("codec: Buffer.Int(%d): negative", x))
	}
	b.Uvarint(uint64(x))
}

// Bool appends a bool as one byte.
func (b *Buffer) Bool(v bool) {
	if v {
		b.buf = append(b.buf, 1)
	} else {
		b.buf = append(b.buf, 0)
	}
}

// String appends a length-prefixed string.
func (b *Buffer) String(s string) {
	b.Int(len(s))
	b.buf = append(b.buf, s...)
}

// Strings appends a length-prefixed []string.
func (b *Buffer) Strings(v []string) {
	b.Int(len(v))
	for _, s := range v {
		b.String(s)
	}
}

// Float64 appends one float64 as its IEEE-754 bits.
func (b *Buffer) Float64(f float64) {
	b.buf = binary.LittleEndian.AppendUint64(b.buf, math.Float64bits(f))
}

// Float64s appends a length-prefixed []float64.
func (b *Buffer) Float64s(v []float64) {
	b.Int(len(v))
	for _, f := range v {
		b.Float64(f)
	}
}

// Float32s appends a length-prefixed []float32 (fixed width; ANN graph
// vectors are stored at float32 precision).
func (b *Buffer) Float32s(v []float32) {
	b.Int(len(v))
	for _, f := range v {
		b.buf = binary.LittleEndian.AppendUint32(b.buf, math.Float32bits(f))
	}
}

// Float32 appends one float32 as its IEEE-754 bits (per-vector
// quantization parameters are stored at float32 precision).
func (b *Buffer) Float32(f float32) {
	b.buf = binary.LittleEndian.AppendUint32(b.buf, math.Float32bits(f))
}

// RawBytes appends a length-prefixed byte slice (quantized vector codes
// are stored as raw bytes, one per dimension).
func (b *Buffer) RawBytes(v []byte) {
	b.Int(len(v))
	b.buf = append(b.buf, v...)
}

// Uint64s appends a length-prefixed []uint64 (fixed width).
func (b *Buffer) Uint64s(v []uint64) {
	b.Int(len(v))
	for _, x := range v {
		b.buf = binary.LittleEndian.AppendUint64(b.buf, x)
	}
}

// Scanner decodes a payload written with Buffer. The first decoding failure
// sticks: every later read returns a zero value, and Err/Finish report the
// error, so decoders can run straight-line without per-field checks. Slice
// and string lengths are validated against the remaining input before
// allocating, bounding memory by the input size.
type Scanner struct {
	buf []byte
	off int
	err error
}

// NewScanner wraps a payload for decoding.
func NewScanner(payload []byte) *Scanner { return &Scanner{buf: payload} }

func (s *Scanner) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

func (s *Scanner) remaining() int { return len(s.buf) - s.off }

// Err returns the first decoding error, or nil.
func (s *Scanner) Err() error { return s.err }

// Finish returns the first decoding error, or ErrCorrupt if undecoded bytes
// remain — a payload must be consumed exactly.
func (s *Scanner) Finish() error {
	if s.err != nil {
		return s.err
	}
	if s.remaining() != 0 {
		return fmt.Errorf("%w: %d undecoded payload bytes", ErrCorrupt, s.remaining())
	}
	return nil
}

// Uvarint reads an unsigned varint.
func (s *Scanner) Uvarint() uint64 {
	if s.err != nil {
		return 0
	}
	x, n := binary.Uvarint(s.buf[s.off:])
	if n <= 0 {
		s.fail(ErrTruncated)
		return 0
	}
	s.off += n
	return x
}

// Int reads a uvarint and returns it as an int, failing with ErrCorrupt on
// values that do not fit.
func (s *Scanner) Int() int {
	x := s.Uvarint()
	if s.err != nil {
		return 0
	}
	if x > math.MaxInt32 {
		s.fail(fmt.Errorf("%w: count %d out of range", ErrCorrupt, x))
		return 0
	}
	return int(x)
}

// Bool reads one byte as a bool; bytes other than 0 and 1 are corrupt.
func (s *Scanner) Bool() bool {
	if s.err != nil {
		return false
	}
	if s.remaining() < 1 {
		s.fail(ErrTruncated)
		return false
	}
	v := s.buf[s.off]
	s.off++
	if v > 1 {
		s.fail(fmt.Errorf("%w: bool byte 0x%02x", ErrCorrupt, v))
		return false
	}
	return v == 1
}

// String reads a length-prefixed string.
func (s *Scanner) String() string {
	n := s.Int()
	if s.err != nil {
		return ""
	}
	if n > s.remaining() {
		s.fail(ErrTruncated)
		return ""
	}
	out := string(s.buf[s.off : s.off+n])
	s.off += n
	return out
}

// Strings reads a length-prefixed []string. The count is validated
// against the remaining input (every element costs at least its length
// prefix) before allocating, so a hostile count cannot force a large
// allocation.
func (s *Scanner) Strings() []string {
	n := s.Int()
	if s.err != nil {
		return nil
	}
	if n > s.remaining() {
		s.fail(ErrTruncated)
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n && s.err == nil; i++ {
		out = append(out, s.String())
	}
	if s.err != nil {
		return nil
	}
	return out
}

// Float64 reads one float64.
func (s *Scanner) Float64() float64 {
	if s.err != nil {
		return 0
	}
	if s.remaining() < 8 {
		s.fail(ErrTruncated)
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(s.buf[s.off:]))
	s.off += 8
	return f
}

// Float64s reads a length-prefixed []float64.
func (s *Scanner) Float64s() []float64 {
	n := s.Int()
	if s.err != nil {
		return nil
	}
	if n > s.remaining()/8 {
		s.fail(ErrTruncated)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(s.buf[s.off:]))
		s.off += 8
	}
	return out
}

// Float32s reads a length-prefixed []float32.
func (s *Scanner) Float32s() []float32 {
	n := s.Int()
	if s.err != nil {
		return nil
	}
	if n > s.remaining()/4 {
		s.fail(ErrTruncated)
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(s.buf[s.off:]))
		s.off += 4
	}
	return out
}

// Float32 reads one float32.
func (s *Scanner) Float32() float32 {
	if s.err != nil {
		return 0
	}
	if s.remaining() < 4 {
		s.fail(ErrTruncated)
		return 0
	}
	f := math.Float32frombits(binary.LittleEndian.Uint32(s.buf[s.off:]))
	s.off += 4
	return f
}

// RawBytes reads a length-prefixed byte slice. The returned slice is a
// copy, so callers may retain it after the payload is released.
func (s *Scanner) RawBytes() []byte {
	n := s.Int()
	if s.err != nil {
		return nil
	}
	if n > s.remaining() {
		s.fail(ErrTruncated)
		return nil
	}
	out := make([]byte, n)
	copy(out, s.buf[s.off:s.off+n])
	s.off += n
	return out
}

// Uint64s reads a length-prefixed []uint64.
func (s *Scanner) Uint64s() []uint64 {
	n := s.Int()
	if s.err != nil {
		return nil
	}
	if n > s.remaining()/8 {
		s.fail(ErrTruncated)
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(s.buf[s.off:])
		s.off += 8
	}
	return out
}
