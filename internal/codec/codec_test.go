package codec

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	payload := []byte("hello index")
	var buf bytes.Buffer
	if err := WriteEnvelope(&buf, KindStarmie, 3, payload); err != nil {
		t.Fatal(err)
	}
	v, got, err := ReadEnvelope(&buf, KindStarmie, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 || !bytes.Equal(got, payload) {
		t.Errorf("got version %d payload %q", v, got)
	}
}

func TestEnvelopeEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEnvelope(&buf, KindManifest, 1, nil); err != nil {
		t.Fatal(err)
	}
	if _, got, err := ReadEnvelope(&buf, KindManifest, 1); err != nil || len(got) != 0 {
		t.Errorf("empty payload: got %v, err %v", got, err)
	}
}

func envelope(t *testing.T, kind byte, version uint16, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteEnvelope(&buf, kind, version, payload); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEnvelopeErrors(t *testing.T) {
	valid := envelope(t, KindD3L, 1, []byte("payload bytes"))

	cases := []struct {
		name  string
		input []byte
		want  error
	}{
		{"empty", nil, ErrBadMagic},
		{"bad magic", []byte("NOTANINDEXFILE------"), ErrBadMagic},
		{"magic only", valid[:6], ErrTruncated},
		{"header cut", valid[:10], ErrTruncated},
		{"payload cut", valid[:len(valid)-8], ErrTruncated},
		{"crc cut", valid[:len(valid)-1], ErrTruncated},
		{"trailing junk", append(append([]byte{}, valid...), 0xFF), ErrCorrupt},
		{"wrong kind", envelope(t, KindTuples, 1, []byte("payload bytes")), ErrWrongKind},
		{"future version", envelope(t, KindD3L, 2, []byte("payload bytes")), ErrVersion},
		{"zero version", func() []byte {
			b := append([]byte{}, valid...)
			b[7], b[8] = 0, 0
			return b
		}(), ErrVersion},
		{"flipped payload bit", func() []byte {
			b := append([]byte{}, valid...)
			b[headerLen] ^= 0x01
			return b
		}(), ErrChecksum},
		{"flipped crc", func() []byte {
			b := append([]byte{}, valid...)
			b[len(b)-1] ^= 0x01
			return b
		}(), ErrChecksum},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := ReadEnvelope(bytes.NewReader(c.input), KindD3L, 1)
			if !errors.Is(err, c.want) {
				t.Errorf("err = %v, want %v", err, c.want)
			}
		})
	}
}

func TestBufferScannerRoundTrip(t *testing.T) {
	var b Buffer
	b.Uvarint(0)
	b.Uvarint(1 << 40)
	b.Int(42)
	b.Bool(true)
	b.Bool(false)
	b.String("")
	b.String("unionable tuples")
	b.Float64(math.Pi)
	b.Float64(math.Inf(-1))
	b.Float64s(nil)
	b.Float64s([]float64{})
	b.Float64s([]float64{1, -2.5, 1e-300})
	b.Float32s(nil)
	b.Float32s([]float32{1.5, -0.25, 3e7})
	b.Float32(-0.0078125)
	b.RawBytes(nil)
	b.RawBytes([]byte{0x00, 0x7F, 0x80, 0xFF})
	b.Uint64s([]uint64{math.MaxUint64, 0, 7})

	s := NewScanner(b.Bytes())
	if got := s.Uvarint(); got != 0 {
		t.Errorf("uvarint = %d", got)
	}
	if got := s.Uvarint(); got != 1<<40 {
		t.Errorf("uvarint = %d", got)
	}
	if got := s.Int(); got != 42 {
		t.Errorf("int = %d", got)
	}
	if !s.Bool() || s.Bool() {
		t.Error("bools corrupted")
	}
	if got := s.String(); got != "" {
		t.Errorf("string = %q", got)
	}
	if got := s.String(); got != "unionable tuples" {
		t.Errorf("string = %q", got)
	}
	if got := s.Float64(); got != math.Pi {
		t.Errorf("float = %v", got)
	}
	if got := s.Float64(); !math.IsInf(got, -1) {
		t.Errorf("float = %v", got)
	}
	if got := s.Float64s(); len(got) != 0 {
		t.Errorf("nil float64s = %v", got)
	}
	if got := s.Float64s(); len(got) != 0 {
		t.Errorf("empty float64s = %v", got)
	}
	if got := s.Float64s(); !reflect.DeepEqual(got, []float64{1, -2.5, 1e-300}) {
		t.Errorf("float64s = %v", got)
	}
	if got := s.Float32s(); len(got) != 0 {
		t.Errorf("nil float32s = %v", got)
	}
	if got := s.Float32s(); !reflect.DeepEqual(got, []float32{1.5, -0.25, 3e7}) {
		t.Errorf("float32s = %v", got)
	}
	if got := s.Float32(); got != -0.0078125 {
		t.Errorf("float32 = %v", got)
	}
	if got := s.RawBytes(); len(got) != 0 {
		t.Errorf("nil raw bytes = %v", got)
	}
	if got := s.RawBytes(); !reflect.DeepEqual(got, []byte{0x00, 0x7F, 0x80, 0xFF}) {
		t.Errorf("raw bytes = %v", got)
	}
	if got := s.Uint64s(); !reflect.DeepEqual(got, []uint64{math.MaxUint64, 0, 7}) {
		t.Errorf("uint64s = %v", got)
	}
	if err := s.Finish(); err != nil {
		t.Errorf("finish: %v", err)
	}
}

func TestScannerTruncation(t *testing.T) {
	var b Buffer
	b.String("twelve bytes")
	b.Float64s([]float64{1, 2, 3})
	full := b.Bytes()

	for cut := 0; cut < len(full); cut++ {
		s := NewScanner(full[:cut])
		_ = s.String()
		s.Float64s()
		if err := s.Finish(); err == nil {
			t.Errorf("cut at %d: no error", cut)
		} else if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			t.Errorf("cut at %d: err = %v", cut, err)
		}
	}
}

func TestScannerHostileLengths(t *testing.T) {
	// A declared slice length far beyond the input must fail fast without
	// allocating, not OOM.
	var b Buffer
	b.Uvarint(1 << 62)
	s := NewScanner(b.Bytes())
	if got := s.Float64s(); got != nil {
		t.Errorf("got %v", got)
	}
	if s.Err() == nil {
		t.Error("no error for hostile length")
	}

	s = NewScanner(b.Bytes())
	if got := s.Float32s(); got != nil {
		t.Errorf("got %v", got)
	}
	if s.Err() == nil {
		t.Error("no error for hostile float32 length")
	}

	s = NewScanner(b.Bytes())
	if got := s.String(); got != "" {
		t.Errorf("got %q", got)
	}
	if s.Err() == nil {
		t.Error("no error for hostile string length")
	}

	s = NewScanner(b.Bytes())
	if got := s.RawBytes(); got != nil {
		t.Errorf("got %v", got)
	}
	if s.Err() == nil {
		t.Error("no error for hostile raw-bytes length")
	}
}

func TestScannerStickyError(t *testing.T) {
	s := NewScanner(nil)
	s.Float64() // fails
	first := s.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	s.Uvarint()
	_ = s.String()
	if s.Err() != first {
		t.Error("error not sticky")
	}
}

func TestScannerBadBool(t *testing.T) {
	s := NewScanner([]byte{7})
	s.Bool()
	if !errors.Is(s.Err(), ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", s.Err())
	}
}
