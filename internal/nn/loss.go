package nn

import "math"

// CosineEmbeddingLoss implements PyTorch's nn.CosineEmbeddingLoss with
// margin 0, the loss the paper fine-tunes with (§4):
//
//	L(e1, e2, 1) = 1 - cos(e1, e2)
//	L(e1, e2, 0) = max(0, cos(e1, e2))
//
// Gradients follow from d cos / d e1 = e2/(|e1||e2|) - cos * e1/|e1|^2.
type CosineEmbeddingLoss struct{}

// Loss returns the loss value and the gradients with respect to e1 and e2.
// A positive pair has label true.
func (CosineEmbeddingLoss) Loss(e1, e2 []float64, positive bool) (loss float64, g1, g2 []float64) {
	n := len(e1)
	g1 = make([]float64, n)
	g2 = make([]float64, n)

	var dot, n1sq, n2sq float64
	for i := 0; i < n; i++ {
		dot += e1[i] * e2[i]
		n1sq += e1[i] * e1[i]
		n2sq += e2[i] * e2[i]
	}
	n1 := math.Sqrt(n1sq)
	n2 := math.Sqrt(n2sq)
	if n1 == 0 || n2 == 0 {
		// Degenerate embeddings carry no gradient; report the worst loss for
		// the label so training notices.
		if positive {
			return 1, g1, g2
		}
		return 0, g1, g2
	}
	cos := dot / (n1 * n2)

	// d cos / d e1[i] and symmetric for e2.
	dcos1 := func(i int) float64 { return e2[i]/(n1*n2) - cos*e1[i]/n1sq }
	dcos2 := func(i int) float64 { return e1[i]/(n1*n2) - cos*e2[i]/n2sq }

	if positive {
		loss = 1 - cos
		for i := 0; i < n; i++ {
			g1[i] = -dcos1(i)
			g2[i] = -dcos2(i)
		}
		return loss, g1, g2
	}
	if cos <= 0 {
		return 0, g1, g2
	}
	loss = cos
	for i := 0; i < n; i++ {
		g1[i] = dcos1(i)
		g2[i] = dcos2(i)
	}
	return loss, g1, g2
}
