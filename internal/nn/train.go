package nn

import (
	"math/rand"
)

// Pair is one fine-tuning data point: two feature vectors and a label
// (true = the tuples are unionable, paper §4 "Dataset Preparation").
type Pair struct {
	X1, X2   []float64
	Positive bool
}

// TrainConfig controls the siamese fine-tuning loop.
type TrainConfig struct {
	Epochs    int     // upper bound on epochs (paper: 100)
	Patience  int     // early-stopping patience on validation loss (paper: 10)
	LR        float64 // Adam learning rate
	BatchSize int     // gradient accumulation window
	Seed      int64   // shuffling seed
	// Progress, if non-nil, receives (epoch, trainLoss, valLoss) after each
	// epoch; useful for the dusttrain CLI.
	Progress func(epoch int, trainLoss, valLoss float64)
}

// DefaultTrainConfig mirrors the paper's settings at laptop scale.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 100, Patience: 10, LR: 0.01, BatchSize: 16, Seed: 1}
}

// TrainSiamese fine-tunes net on labelled pairs with the cosine embedding
// loss, sharing weights across the two tuple encodings exactly as the paper
// does ("we pass each serialized tuple one after another through the
// model"). It returns the best validation loss observed. The network is
// left with the parameters of the final epoch; callers that need the best
// snapshot should keep validation small and patience tight, as the paper
// does.
func TrainSiamese(net *Network, train, val []Pair, cfg TrainConfig) float64 {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := NewAdam(cfg.LR)
	var loss CosineEmbeddingLoss

	bestVal := valLoss(net, val)
	sinceBest := 0

	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}

	// Two shared-weight branches: each keeps its own activation caches so
	// both backward passes are exact, while gradients accumulate into the
	// shared buffers (weight sharing, as in the paper's siamese setup).
	b1 := net.SharedClone()
	b2 := net.SharedClone()

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		inBatch := 0
		net.ZeroGrad()
		for _, idx := range order {
			p := train[idx]
			e1 := b1.Forward(p.X1, true)
			e2 := b2.Forward(p.X2, true)
			l, g1, g2 := loss.Loss(e1, e2, p.Positive)
			epochLoss += l
			b1.Backward(g1)
			b2.Backward(g2)

			inBatch++
			if inBatch >= cfg.BatchSize {
				opt.Step(net.Params())
				net.ZeroGrad()
				inBatch = 0
			}
		}
		if inBatch > 0 {
			opt.Step(net.Params())
			net.ZeroGrad()
		}

		v := valLoss(net, val)
		if cfg.Progress != nil {
			cfg.Progress(epoch, epochLoss/float64(max(1, len(train))), v)
		}
		if v < bestVal-1e-6 {
			bestVal = v
			sinceBest = 0
		} else {
			sinceBest++
			if cfg.Patience > 0 && sinceBest >= cfg.Patience {
				break
			}
		}
	}
	return bestVal
}

// valLoss computes the mean cosine-embedding loss over a validation set.
func valLoss(net *Network, val []Pair) float64 {
	if len(val) == 0 {
		return 0
	}
	var loss CosineEmbeddingLoss
	var sum float64
	for _, p := range val {
		e1 := net.Forward(p.X1, false)
		e1c := make([]float64, len(e1))
		copy(e1c, e1)
		e2 := net.Forward(p.X2, false)
		l, _, _ := loss.Loss(e1c, e2, p.Positive)
		sum += l
	}
	return sum / float64(len(val))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
