// Package nn is the small neural-network substrate under the DUST
// fine-tuned tuple embedding model (paper §4). It provides exactly what the
// paper's fine-tuning architecture needs: fully-connected (linear) layers, a
// dropout layer, a tanh nonlinearity, the Adam optimizer, PyTorch's cosine
// embedding loss, and a training loop with patience-based early stopping
// (§6.3.3). Everything is float64 and deterministic given a seed.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Layer is one differentiable stage of a feed-forward network.
type Layer interface {
	// Forward maps the input to the output. When train is false the layer
	// must behave deterministically (dropout becomes the identity) and must
	// not mutate any layer state: inference forwards may run concurrently
	// (e.g. batch tuple encoding and concurrent pipeline queries).
	// Activations are cached for Backward only when train is true.
	Forward(x []float64, train bool) []float64
	// Backward receives dL/d(output) and returns dL/d(input), accumulating
	// parameter gradients internally. It must be called right after the
	// train=true Forward whose activations it needs.
	Backward(grad []float64) []float64
	// Params returns parameter/gradient pairs for the optimizer; layers
	// without parameters return nil.
	Params() []Param
}

// Param couples a parameter slice with its gradient accumulator.
type Param struct {
	W, G []float64
}

// Linear is a fully connected layer: y = W*x + b.
type Linear struct {
	In, Out int
	w, b    []float64
	gw, gb  []float64
	x       []float64 // cached input for backward
}

// NewLinear creates a linear layer with Xavier-uniform initialized weights.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	l := &Linear{
		In: in, Out: out,
		w:  make([]float64, in*out),
		b:  make([]float64, out),
		gw: make([]float64, in*out),
		gb: make([]float64, out),
	}
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := range l.w {
		l.w[i] = (rng.Float64()*2 - 1) * limit
	}
	return l
}

// Forward implements Layer.
func (l *Linear) Forward(x []float64, train bool) []float64 {
	if len(x) != l.In {
		panic(fmt.Sprintf("nn: Linear input dim %d, want %d", len(x), l.In))
	}
	if train {
		l.x = x
	}
	y := make([]float64, l.Out)
	for o := 0; o < l.Out; o++ {
		row := l.w[o*l.In : (o+1)*l.In]
		s := l.b[o]
		for i, xi := range x {
			s += row[i] * xi
		}
		y[o] = s
	}
	return y
}

// Backward implements Layer.
func (l *Linear) Backward(grad []float64) []float64 {
	dx := make([]float64, l.In)
	for o := 0; o < l.Out; o++ {
		g := grad[o]
		if g == 0 {
			continue
		}
		row := l.w[o*l.In : (o+1)*l.In]
		grow := l.gw[o*l.In : (o+1)*l.In]
		for i, xi := range l.x {
			grow[i] += g * xi
			dx[i] += g * row[i]
		}
		l.gb[o] += g
	}
	return dx
}

// Params implements Layer.
func (l *Linear) Params() []Param {
	return []Param{{l.w, l.gw}, {l.b, l.gb}}
}

// Tanh is an element-wise tanh activation.
type Tanh struct {
	y []float64
}

// Forward implements Layer.
func (t *Tanh) Forward(x []float64, train bool) []float64 {
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Tanh(v)
	}
	if train {
		t.y = y
	}
	return y
}

// Backward implements Layer.
func (t *Tanh) Backward(grad []float64) []float64 {
	dx := make([]float64, len(grad))
	for i, g := range grad {
		dx[i] = g * (1 - t.y[i]*t.y[i])
	}
	return dx
}

// Params implements Layer.
func (t *Tanh) Params() []Param { return nil }

// Dropout zeroes each activation with probability P during training and
// scales survivors by 1/(1-P) (inverted dropout); at inference it is the
// identity. The paper's fine-tuning architecture appends a dropout layer to
// the transformer output (§4).
type Dropout struct {
	P    float64
	rng  *rand.Rand
	mask []float64
}

// NewDropout creates a dropout layer with drop probability p.
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	return &Dropout{P: p, rng: rng}
}

// Forward implements Layer.
func (d *Dropout) Forward(x []float64, train bool) []float64 {
	if !train {
		// Identity, and no state writes: inference must stay race-free.
		return x
	}
	if d.P <= 0 {
		d.mask = nil
		return x
	}
	y := make([]float64, len(x))
	d.mask = make([]float64, len(x))
	keep := 1 - d.P
	for i, v := range x {
		if d.rng.Float64() < keep {
			d.mask[i] = 1 / keep
			y[i] = v / keep
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dropout) Backward(grad []float64) []float64 {
	if d.mask == nil {
		return grad
	}
	dx := make([]float64, len(grad))
	for i, g := range grad {
		dx[i] = g * d.mask[i]
	}
	return dx
}

// Params implements Layer.
func (d *Dropout) Params() []Param { return nil }

// Network is a feed-forward stack of layers.
type Network struct {
	Layers []Layer
}

// Forward runs the stack.
func (n *Network) Forward(x []float64, train bool) []float64 {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates dL/d(output) through the stack, accumulating
// parameter gradients.
func (n *Network) Backward(grad []float64) []float64 {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns all parameters of the stack.
func (n *Network) Params() []Param {
	var out []Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrad clears every gradient accumulator.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		for i := range p.G {
			p.G[i] = 0
		}
	}
}

// SharedClone returns a network whose layers share this network's
// parameters and gradient accumulators but keep independent activation
// caches. Siamese training forwards the two branches of a pair through two
// shared clones so each branch's backward sees its own activations while
// gradients accumulate into the same buffers.
func (n *Network) SharedClone() *Network {
	out := &Network{Layers: make([]Layer, len(n.Layers))}
	for i, l := range n.Layers {
		switch l := l.(type) {
		case *Linear:
			out.Layers[i] = &Linear{In: l.In, Out: l.Out, w: l.w, b: l.b, gw: l.gw, gb: l.gb}
		case *Tanh:
			out.Layers[i] = &Tanh{}
		case *Dropout:
			out.Layers[i] = &Dropout{P: l.P, rng: l.rng}
		default:
			panic(fmt.Sprintf("nn: SharedClone: unsupported layer type %T", l))
		}
	}
	return out
}
