package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestLinearForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(3, 2, rng)
	y := l.Forward([]float64{1, 0, -1}, false)
	if len(y) != 2 {
		t.Fatalf("output dim = %d, want 2", len(y))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Linear with wrong input dim did not panic")
		}
	}()
	l.Forward([]float64{1}, false)
}

// Numerical gradient check of Linear+Tanh composition against backprop.
func TestBackpropMatchesNumericalGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := &Network{Layers: []Layer{NewLinear(4, 3, rng), &Tanh{}, NewLinear(3, 2, rng)}}
	x := []float64{0.5, -0.3, 0.8, 0.1}

	// Scalar objective: sum of outputs.
	objective := func() float64 {
		y := net.Forward(x, false)
		var s float64
		for _, v := range y {
			s += v
		}
		return s
	}

	net.ZeroGrad()
	// Backward needs cached activations, which only a train=true Forward
	// records (the net has no dropout, so outputs match eval mode).
	y := net.Forward(x, true)
	ones := make([]float64, len(y))
	for i := range ones {
		ones[i] = 1
	}
	net.Backward(ones)

	const eps = 1e-6
	for pi, p := range net.Params() {
		for j := range p.W {
			orig := p.W[j]
			p.W[j] = orig + eps
			up := objective()
			p.W[j] = orig - eps
			down := objective()
			p.W[j] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-p.G[j]) > 1e-5 {
				t.Fatalf("param %d[%d]: numeric grad %v, backprop %v", pi, j, numeric, p.G[j])
			}
		}
	}
}

func TestCosineEmbeddingLossValues(t *testing.T) {
	var l CosineEmbeddingLoss
	a := []float64{1, 0}
	b := []float64{1, 0}
	c := []float64{0, 1}
	if loss, _, _ := l.Loss(a, b, true); math.Abs(loss) > 1e-12 {
		t.Errorf("positive identical loss = %v, want 0", loss)
	}
	if loss, _, _ := l.Loss(a, c, true); math.Abs(loss-1) > 1e-12 {
		t.Errorf("positive orthogonal loss = %v, want 1", loss)
	}
	if loss, _, _ := l.Loss(a, b, false); math.Abs(loss-1) > 1e-12 {
		t.Errorf("negative identical loss = %v, want 1", loss)
	}
	if loss, _, _ := l.Loss(a, c, false); loss != 0 {
		t.Errorf("negative orthogonal loss = %v, want 0", loss)
	}
	neg := []float64{-1, 0}
	if loss, _, _ := l.Loss(a, neg, false); loss != 0 {
		t.Errorf("negative opposite loss = %v, want 0 (clamped)", loss)
	}
}

func TestCosineEmbeddingLossGradientNumeric(t *testing.T) {
	var l CosineEmbeddingLoss
	e1 := []float64{0.3, -0.7, 0.2}
	e2 := []float64{0.5, 0.4, -0.1}
	for _, positive := range []bool{true, false} {
		_, g1, g2 := l.Loss(e1, e2, positive)
		const eps = 1e-6
		for i := range e1 {
			orig := e1[i]
			e1[i] = orig + eps
			up, _, _ := l.Loss(e1, e2, positive)
			e1[i] = orig - eps
			down, _, _ := l.Loss(e1, e2, positive)
			e1[i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-g1[i]) > 1e-5 {
				t.Errorf("positive=%v g1[%d]: numeric %v, analytic %v", positive, i, numeric, g1[i])
			}
		}
		for i := range e2 {
			orig := e2[i]
			e2[i] = orig + eps
			up, _, _ := l.Loss(e1, e2, positive)
			e2[i] = orig - eps
			down, _, _ := l.Loss(e1, e2, positive)
			e2[i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-g2[i]) > 1e-5 {
				t.Errorf("positive=%v g2[%d]: numeric %v, analytic %v", positive, i, numeric, g2[i])
			}
		}
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDropout(0.5, rng)
	x := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	eval := d.Forward(x, false)
	for i := range eval {
		if eval[i] != 1 {
			t.Fatal("dropout in eval mode must be identity")
		}
	}
	train := d.Forward(x, true)
	zeros := 0
	for _, v := range train {
		if v == 0 {
			zeros++
		} else if math.Abs(v-2) > 1e-12 {
			t.Fatalf("surviving activation = %v, want 2 (inverted dropout)", v)
		}
	}
	if zeros == 0 {
		t.Error("dropout with p=0.5 on 8 units dropped nothing (unlucky seed or bug)")
	}
}

func TestAdamMinimizesQuadratic(t *testing.T) {
	// Minimize (w-3)^2 with Adam.
	w := []float64{0}
	g := []float64{0}
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		g[0] = 2 * (w[0] - 3)
		opt.Step([]Param{{w, g}})
	}
	if math.Abs(w[0]-3) > 0.01 {
		t.Errorf("Adam converged to %v, want 3", w[0])
	}
}

func TestSGDStep(t *testing.T) {
	w := []float64{1}
	g := []float64{0.5}
	(&SGD{LR: 0.2}).Step([]Param{{w, g}})
	if math.Abs(w[0]-0.9) > 1e-12 {
		t.Errorf("SGD step result %v, want 0.9", w[0])
	}
}

// The core fine-tuning scenario in miniature: pairs with matching one-hot
// prefixes are positive, mismatched prefixes negative. Training must
// separate them in cosine space.
func TestTrainSiameseSeparatesClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const dim = 8
	mkVec := func(class int) []float64 {
		v := make([]float64, dim)
		v[class] = 1
		for i := range v {
			v[i] += rng.NormFloat64() * 0.05
		}
		return v
	}
	// Negative pairs must cover every class combination in both splits,
	// otherwise the net can exploit the gap (e.g. merge classes that never
	// appear together as a negative pair).
	var train, val []Pair
	for i := 0; i < 200; i++ {
		c1 := i % 4
		c2 := (c1 + 1 + i%3) % 4 // cycles through all off-diagonal pairs
		train = append(train, Pair{mkVec(c1), mkVec(c1), true})
		train = append(train, Pair{mkVec(c1), mkVec(c2), false})
	}
	for i := 0; i < 40; i++ {
		c1 := i % 4
		c2 := (c1 + 1 + i%3) % 4
		val = append(val, Pair{mkVec(c1), mkVec(c1), true})
		val = append(val, Pair{mkVec(c1), mkVec(c2), false})
	}
	net := &Network{Layers: []Layer{
		NewLinear(dim, 16, rng),
		&Tanh{},
		NewDropout(0.1, rng),
		NewLinear(16, 8, rng),
	}}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 30
	best := TrainSiamese(net, train, val, cfg)
	if best > 0.2 {
		t.Errorf("best validation loss = %v, want < 0.2 after training", best)
	}

	// Check classification at the paper's 0.7 cosine-distance threshold.
	var loss CosineEmbeddingLoss
	correct := 0
	for _, p := range val {
		e1 := net.Forward(p.X1, false)
		e1c := make([]float64, len(e1))
		copy(e1c, e1)
		e2 := net.Forward(p.X2, false)
		l, _, _ := loss.Loss(e1c, e2, true) // l = 1 - cos = cosine distance
		pred := l < 0.7
		if pred == p.Positive {
			correct++
		}
	}
	acc := float64(correct) / float64(len(val))
	if acc < 0.9 {
		t.Errorf("validation accuracy = %v, want >= 0.9", acc)
	}
}

func TestEarlyStoppingTriggers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := &Network{Layers: []Layer{NewLinear(2, 2, rng)}}
	// Unlearnable noise: labels independent of inputs.
	var train, val []Pair
	for i := 0; i < 20; i++ {
		train = append(train, Pair{[]float64{rng.Float64(), rng.Float64()}, []float64{rng.Float64(), rng.Float64()}, i%2 == 0})
		val = append(val, Pair{[]float64{rng.Float64(), rng.Float64()}, []float64{rng.Float64(), rng.Float64()}, i%2 == 0})
	}
	epochs := 0
	cfg := TrainConfig{Epochs: 1000, Patience: 3, LR: 0.001, BatchSize: 4, Seed: 1,
		Progress: func(int, float64, float64) { epochs++ }}
	TrainSiamese(net, train, val, cfg)
	if epochs >= 1000 {
		t.Errorf("ran all %d epochs; early stopping never triggered", epochs)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := &Network{Layers: []Layer{
		NewLinear(4, 8, rng),
		&Tanh{},
		NewDropout(0.2, rng),
		NewLinear(8, 3, rng),
	}}
	x := []float64{0.1, -0.2, 0.3, 0.9}
	want := net.Forward(x, false)

	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf, rng)
	if err != nil {
		t.Fatal(err)
	}
	got := back.Forward(x, false)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("loaded net output differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestLoadGarbageErrors(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob")), rand.New(rand.NewSource(1))); err == nil {
		t.Error("Load of garbage should error")
	}
}

func TestSharedCloneSharesWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := &Network{Layers: []Layer{NewLinear(2, 2, rng), &Tanh{}, NewDropout(0.1, rng)}}
	clone := net.SharedClone()
	x := []float64{1, 2}
	a := net.Forward(x, false)
	b := clone.Forward(x, false)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("clone output differs from original")
		}
	}
	// Mutating the original's weights must be visible through the clone.
	net.Layers[0].(*Linear).w[0] += 1
	b2 := clone.Forward(x, false)
	if b2[0] == b[0] {
		t.Error("clone does not share weights with original")
	}
}
