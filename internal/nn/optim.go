package nn

import "math"

// Adam implements the Adam optimizer with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	step int
	m, v [][]float64
}

// NewAdam returns an Adam optimizer with the standard defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one update to every parameter using its accumulated
// gradient, then the caller is expected to zero the gradients.
func (a *Adam) Step(params []Param) {
	if a.m == nil {
		a.m = make([][]float64, len(params))
		a.v = make([][]float64, len(params))
		for i, p := range params {
			a.m[i] = make([]float64, len(p.W))
			a.v[i] = make([]float64, len(p.W))
		}
	}
	a.step++
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range params {
		m, v := a.m[i], a.v[i]
		for j, g := range p.G {
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mh := m[j] / c1
			vh := v[j] / c2
			p.W[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}

// SGD is plain stochastic gradient descent, kept for ablations.
type SGD struct {
	LR float64
}

// Step applies one SGD update.
func (s *SGD) Step(params []Param) {
	for _, p := range params {
		for j, g := range p.G {
			p.W[j] -= s.LR * g
		}
	}
}

// Optimizer updates parameters from accumulated gradients.
type Optimizer interface {
	Step(params []Param)
}
