package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
)

// netSnapshot is the gob-encodable form of a Network. Only topology and
// weights are persisted; optimizer state and activation caches are not.
type netSnapshot struct {
	Layers []layerSnapshot
}

type layerSnapshot struct {
	Kind    string // "linear", "tanh", "dropout"
	In, Out int
	W, B    []float64
	P       float64
}

// Save writes the network topology and weights to w.
func (n *Network) Save(w io.Writer) error {
	var snap netSnapshot
	for _, l := range n.Layers {
		switch l := l.(type) {
		case *Linear:
			snap.Layers = append(snap.Layers, layerSnapshot{Kind: "linear", In: l.In, Out: l.Out, W: l.w, B: l.b})
		case *Tanh:
			snap.Layers = append(snap.Layers, layerSnapshot{Kind: "tanh"})
		case *Dropout:
			snap.Layers = append(snap.Layers, layerSnapshot{Kind: "dropout", P: l.P})
		default:
			return fmt.Errorf("nn: Save: unsupported layer type %T", l)
		}
	}
	return gob.NewEncoder(w).Encode(snap)
}

// Load reads a network previously written by Save. Dropout layers are
// reconstructed with the given rng (only used if the loaded model is
// trained further).
func Load(r io.Reader, rng *rand.Rand) (*Network, error) {
	var snap netSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("nn: Load: %w", err)
	}
	net := &Network{}
	for _, ls := range snap.Layers {
		switch ls.Kind {
		case "linear":
			l := &Linear{
				In: ls.In, Out: ls.Out,
				w: ls.W, b: ls.B,
				gw: make([]float64, len(ls.W)),
				gb: make([]float64, len(ls.B)),
			}
			if len(l.w) != l.In*l.Out || len(l.b) != l.Out {
				return nil, fmt.Errorf("nn: Load: linear layer shape mismatch")
			}
			net.Layers = append(net.Layers, l)
		case "tanh":
			net.Layers = append(net.Layers, &Tanh{})
		case "dropout":
			net.Layers = append(net.Layers, NewDropout(ls.P, rng))
		default:
			return nil, fmt.Errorf("nn: Load: unknown layer kind %q", ls.Kind)
		}
	}
	return net, nil
}
