package model

import (
	"bytes"
	"math"
	"testing"

	"dust/internal/datagen"
	"dust/internal/embed"
	"dust/internal/vector"
)

func TestFeaturizerDeterministicAndNormalized(t *testing.T) {
	f := NewRoBERTaFeaturizer()
	h := []string{"Park Name", "Country"}
	v := []string{"River Park", "USA"}
	a := f.Features(h, v)
	b := f.Features(h, v)
	if vector.Euclidean(a, b) != 0 {
		t.Error("Features nondeterministic")
	}
	if math.Abs(vector.Norm(a)-1) > 1e-9 {
		t.Errorf("Features norm = %v, want 1", vector.Norm(a))
	}
	if len(a) != f.Dim {
		t.Errorf("Features dim = %d, want %d", len(a), f.Dim)
	}
}

func TestFeaturizerSeparatesBySeed(t *testing.T) {
	b := NewBERTFeaturizer()
	r := NewRoBERTaFeaturizer()
	if b.Dim == r.Dim && b.Seed == r.Seed {
		t.Error("BERT and RoBERTa featurizers identical")
	}
}

// small returns a small pair dataset from a compact benchmark.
func smallDataset(t *testing.T) datagen.PairDataset {
	t.Helper()
	bench := datagen.Generate("model-test", datagen.Config{
		Seed: 51, Domains: 8, TablesPerBase: 8, BaseRows: 60, MinRows: 10, MaxRows: 20,
	})
	return datagen.Pairs(bench, 1200, 52)
}

func TestTrainedModelBeatsPretrainedBaselines(t *testing.T) {
	ds := smallDataset(t)
	cfg := DefaultConfig()
	cfg.Epochs = 25
	m := Train("dust-roberta", NewRoBERTaFeaturizer(), ds.Train, ds.Val, cfg)

	dustAcc := Accuracy(m, ds.Test, ClassifyThreshold)
	bertAcc := Accuracy(embed.NewBERT(), ds.Test, ClassifyThreshold)
	sbertAcc := Accuracy(embed.NewSBERT(), ds.Test, ClassifyThreshold)

	if dustAcc < 0.75 {
		t.Errorf("DUST accuracy = %v, want >= 0.75", dustAcc)
	}
	// Pre-trained BERT-sim must be near coin toss (anisotropy property).
	if bertAcc < 0.40 || bertAcc > 0.62 {
		t.Errorf("BERT accuracy = %v, want near 0.5", bertAcc)
	}
	if dustAcc <= sbertAcc {
		t.Errorf("DUST (%v) must beat sBERT (%v)", dustAcc, sbertAcc)
	}
	if dustAcc <= bertAcc {
		t.Errorf("DUST (%v) must beat BERT (%v)", dustAcc, bertAcc)
	}
}

func TestPredictUnionableConsistentWithDistance(t *testing.T) {
	ds := smallDataset(t)
	cfg := DefaultConfig()
	cfg.Epochs = 5
	m := Train("dust-bert", NewBERTFeaturizer(), ds.Train[:200], ds.Val[:50], cfg)
	p := ds.Test[0]
	d := m.Distance(p.Headers1, p.Values1, p.Headers2, p.Values2)
	want := d < ClassifyThreshold
	if got := m.PredictUnionable(p.Headers1, p.Values1, p.Headers2, p.Values2); got != want {
		t.Errorf("PredictUnionable inconsistent with Distance %v", d)
	}
}

func TestModelDimAndName(t *testing.T) {
	ds := smallDataset(t)
	cfg := DefaultConfig()
	cfg.Epochs = 1
	cfg.OutDim = 48
	m := Train("named", NewBERTFeaturizer(), ds.Train[:100], ds.Val[:20], cfg)
	if m.Name() != "named" {
		t.Errorf("Name = %q", m.Name())
	}
	if m.Dim() != 48 {
		t.Errorf("Dim = %d, want 48", m.Dim())
	}
	if len(m.EncodeTuple([]string{"a"}, []string{"b"})) != 48 {
		t.Error("EncodeTuple dim mismatch")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := smallDataset(t)
	cfg := DefaultConfig()
	cfg.Epochs = 2
	m := Train("dust-roberta", NewRoBERTaFeaturizer(), ds.Train[:150], ds.Val[:30], cfg)
	h := []string{"Title", "Year"}
	v := []string{"Silent Harbor", "2001"}
	want := m.EncodeTuple(h, v)

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "dust-roberta" {
		t.Errorf("loaded name = %q", back.Name())
	}
	got := back.EncodeTuple(h, v)
	if vector.Euclidean(want, got) > 1e-12 {
		t.Error("loaded model produces different embeddings")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("Load of garbage should error")
	}
}

func TestAccuracyEmptyPairs(t *testing.T) {
	if Accuracy(embed.NewBERT(), nil, 0.7) != 0 {
		t.Error("Accuracy of empty set should be 0")
	}
}

// Column-shuffle robustness (paper Fig. 10): embedding a tuple with
// permuted column order must stay very close to the original, because the
// featurizer is order-insensitive by construction.
func TestShuffleRobustness(t *testing.T) {
	ds := smallDataset(t)
	cfg := DefaultConfig()
	cfg.Epochs = 10
	m := Train("dust-roberta", NewRoBERTaFeaturizer(), ds.Train[:400], ds.Val[:80], cfg)
	var worst float64 = 1
	for _, p := range ds.Test[:50] {
		h, v := p.Headers1, p.Values1
		// Rotate columns by one as a permutation.
		hr := append(append([]string{}, h[1:]...), h[0])
		vr := append(append([]string{}, v[1:]...), v[0])
		sim := vector.Cosine(m.EncodeTuple(h, v), m.EncodeTuple(hr, vr))
		if sim < worst {
			worst = sim
		}
	}
	if worst < 0.999 {
		t.Errorf("worst shuffle cosine similarity = %v, want ~1 (order-insensitive)", worst)
	}
}
