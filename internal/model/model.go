package model

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"dust/internal/datagen"
	"dust/internal/nn"
	"dust/internal/par"
	"dust/internal/vector"
)

// ClassifyThreshold is the cosine-distance threshold under which a tuple
// pair is predicted unionable. The paper selects 0.7 on the validation set
// (§6.3.1) and uses it for every model.
const ClassifyThreshold = 0.7

// Model is a trained tuple embedding model: a frozen featurizer plus the
// fine-tuned head.
type Model struct {
	name string
	feat *Featurizer
	net  *nn.Network
}

// Config controls fine-tuning.
type Config struct {
	Hidden  int     // width of the first linear layer
	OutDim  int     // embedding dimension emitted by the second linear layer
	Dropout float64 // dropout probability of the head
	Epochs  int     // max epochs (paper: 100)
	// Patience is the early-stopping patience in epochs (paper: 10).
	Patience int
	LR       float64
	Seed     int64
}

// DefaultConfig returns the laptop-scale analogue of the paper's training
// setup.
func DefaultConfig() Config {
	return Config{Hidden: 96, OutDim: 64, Dropout: 0.1, Epochs: 40, Patience: 10, LR: 0.01, Seed: 1}
}

// Train fine-tunes a model over labelled tuple pairs using the paper's
// architecture: frozen base (featurizer) -> dropout -> linear -> linear,
// optimized with the cosine embedding loss and early stopping on the
// validation split.
func Train(name string, feat *Featurizer, train, val []datagen.TuplePair, cfg Config) *Model {
	if cfg.Hidden <= 0 || cfg.OutDim <= 0 {
		def := DefaultConfig()
		if cfg.Hidden <= 0 {
			cfg.Hidden = def.Hidden
		}
		if cfg.OutDim <= 0 {
			cfg.OutDim = def.OutDim
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := &nn.Network{Layers: []nn.Layer{
		nn.NewDropout(cfg.Dropout, rng),
		nn.NewLinear(feat.Dim, cfg.Hidden, rng),
		nn.NewLinear(cfg.Hidden, cfg.OutDim, rng),
	}}
	m := &Model{name: name, feat: feat, net: net}

	toPairs := func(ps []datagen.TuplePair) []nn.Pair {
		out := make([]nn.Pair, len(ps))
		for i, p := range ps {
			out[i] = nn.Pair{
				X1:       feat.Features(p.Headers1, p.Values1),
				X2:       feat.Features(p.Headers2, p.Values2),
				Positive: p.Unionable,
			}
		}
		return out
	}
	nn.TrainSiamese(net, toPairs(train), toPairs(val), nn.TrainConfig{
		Epochs:    cfg.Epochs,
		Patience:  cfg.Patience,
		LR:        cfg.LR,
		BatchSize: 16,
		Seed:      cfg.Seed,
	})
	return m
}

// Name returns the model name (e.g. "dust-roberta").
func (m *Model) Name() string { return m.name }

// Dim returns the output embedding dimension.
func (m *Model) Dim() int {
	probe := m.net.Forward(make([]float64, m.feat.Dim), false)
	return len(probe)
}

// EncodeTuple embeds one tuple (inference mode: dropout disabled).
func (m *Model) EncodeTuple(headers, values []string) vector.Vec {
	return m.net.Forward(m.feat.Features(headers, values), false)
}

// EncodeTupleBatch embeds many tuples sharing one header schema across at
// most workers goroutines. Inference forwards are stateless (nn layers
// cache activations only during training), so the batch is bit-identical
// to sequential EncodeTuple calls.
func (m *Model) EncodeTupleBatch(headers []string, rows [][]string, workers int) []vector.Vec {
	return par.Map(workers, len(rows), func(i int) vector.Vec {
		return m.EncodeTuple(headers, rows[i])
	})
}

// Distance returns the cosine distance between two tuples under the model.
func (m *Model) Distance(h1, v1, h2, v2 []string) float64 {
	return vector.CosineDistance(m.EncodeTuple(h1, v1), m.EncodeTuple(h2, v2))
}

// PredictUnionable classifies a tuple pair at ClassifyThreshold.
func (m *Model) PredictUnionable(h1, v1, h2, v2 []string) bool {
	return m.Distance(h1, v1, h2, v2) < ClassifyThreshold
}

// Accuracy evaluates pair classification accuracy (Equation 3 of the
// paper) at the given cosine-distance threshold for any tuple encoder.
func Accuracy(enc TupleEncoder, pairs []datagen.TuplePair, threshold float64) float64 {
	if len(pairs) == 0 {
		return 0
	}
	correct := 0
	for _, p := range pairs {
		d := vector.CosineDistance(
			enc.EncodeTuple(p.Headers1, p.Values1),
			enc.EncodeTuple(p.Headers2, p.Values2))
		if (d < threshold) == p.Unionable {
			correct++
		}
	}
	return float64(correct) / float64(len(pairs))
}

// TupleEncoder is anything that embeds a (headers, values) tuple; both the
// pre-trained simulators (embed.Encoder) and fine-tuned Models satisfy it.
type TupleEncoder interface {
	Name() string
	EncodeTuple(headers, values []string) vector.Vec
}

// BatchTupleEncoder is a TupleEncoder that can embed many tuples
// concurrently. Both embed.Encoder and Model implement it.
type BatchTupleEncoder interface {
	TupleEncoder
	EncodeTupleBatch(headers []string, rows [][]string, workers int) []vector.Vec
}

// EncodeBatch embeds every row with enc. Encoders exposing the batch
// surface run across workers goroutines; arbitrary TupleEncoders are not
// guaranteed concurrency-safe, so they fall back to a sequential loop.
// Either way the output is index-aligned with rows and identical to
// per-row EncodeTuple calls. It is EncodeBatchContext under a background
// context, which never errors.
func EncodeBatch(enc TupleEncoder, headers []string, rows [][]string, workers int) []vector.Vec {
	out, _ := EncodeBatchContext(context.Background(), enc, headers, rows, workers)
	return out
}

// EncodeBatchContext is EncodeBatch with a cancellation path: once ctx is
// cancelled the remaining rows are skipped and ctx.Err() is returned, so a
// caller serving queries under a deadline is not forced to embed an entire
// unioned tuple pool it no longer wants. On the nil error path the output
// is identical to EncodeBatch. Batch-capable encoders are driven through
// per-row EncodeTuple calls across workers goroutines — the same shape
// their own EncodeTupleBatch uses, which is what makes those calls
// concurrency-safe in the first place.
func EncodeBatchContext(ctx context.Context, enc TupleEncoder, headers []string, rows [][]string, workers int) ([]vector.Vec, error) {
	out := make([]vector.Vec, len(rows))
	if _, ok := enc.(BatchTupleEncoder); !ok {
		// Arbitrary TupleEncoders are not guaranteed concurrency-safe:
		// sequential loop, checking ctx between rows.
		for i, r := range rows {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out[i] = enc.EncodeTuple(headers, r)
		}
		return out, nil
	}
	if err := par.ForCtx(ctx, workers, len(rows), func(i int) {
		out[i] = enc.EncodeTuple(headers, rows[i])
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Save persists the model (featurizer config + network weights).
func (m *Model) Save(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "dustmodel %s %d %d\n", m.name, m.feat.Dim, m.feat.Seed); err != nil {
		return err
	}
	return m.net.Save(w)
}

// Load reads a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var name string
	var dim int
	var seed uint64
	if _, err := fmt.Fscanf(r, "dustmodel %s %d %d\n", &name, &dim, &seed); err != nil {
		return nil, fmt.Errorf("model: bad header: %w", err)
	}
	net, err := nn.Load(r, rand.New(rand.NewSource(1)))
	if err != nil {
		return nil, err
	}
	return &Model{name: name, feat: &Featurizer{Dim: dim, Seed: seed}, net: net}, nil
}
