// Package model implements the DUST fine-tuned tuple embedding model
// (paper §4): tuples are serialized as [CLS] c1 v1 [SEP] ... (with tagged
// header tokens), featurized with signed feature hashing over a frozen base
// representation, and passed through the paper's fine-tuning head — a
// dropout layer followed by two linear layers — trained with the cosine
// embedding loss on labelled tuple pairs. The same machinery trained on
// entity-matching labels yields the Ditto baseline simulator (§6.3.2).
package model

import (
	"dust/internal/embed"
	"dust/internal/vector"
)

// Featurizer maps a tuple to a fixed-dimension frozen feature vector via
// signed feature hashing of its serialized tokens. It stands in for the
// frozen pre-trained transformer under the fine-tuning head; the Seed
// selects the "pre-trained model" (DUST (BERT) vs DUST (RoBERTa) differ in
// seed and width, mirroring the paper's two variants).
type Featurizer struct {
	Dim  int
	Seed uint64
}

// NewBERTFeaturizer mirrors the BERT base of DUST (BERT). The widths are
// deliberately narrow: hash collisions blur the frozen representation the
// way a small pre-trained model does, keeping fine-tuned accuracy in the
// paper's mid-80s range rather than saturating.
func NewBERTFeaturizer() *Featurizer { return &Featurizer{Dim: 64, Seed: 0xBE47} }

// NewRoBERTaFeaturizer mirrors the RoBERTa base of DUST (RoBERTa): a wider
// feature space (fewer hash collisions), matching the paper's note that
// RoBERTa's larger capacity gives it a slight edge.
func NewRoBERTaFeaturizer() *Featurizer { return &Featurizer{Dim: 128, Seed: 0x40BE} }

// Features returns the L2-normalized hashed bag-of-tokens representation of
// the serialized tuple.
func (f *Featurizer) Features(headers, values []string) []float64 {
	out := make([]float64, f.Dim)
	tokens := embed.TupleTokens(headers, values)
	for _, tok := range tokens {
		h := hash64(tok, f.Seed)
		bucket := int(h % uint64(f.Dim))
		sign := 1.0
		if (h>>63)&1 == 1 {
			sign = -1
		}
		out[bucket] += sign
	}
	return vector.Normalize(out)
}

// hash64 is FNV-1a with seed mixing (same scheme as the embed package).
func hash64(s string, seed uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ (seed * 0x9e3779b97f4a7c15)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	// Finalize so the top bit (sign) is well mixed.
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}
