// Package match implements maximum-weight bipartite matching via the
// Hungarian (Kuhn-Munkres) algorithm. The Starmie simulator uses it to
// score table unionability as the maximum-weight matching between query and
// candidate columns (paper §6.2.3), and Starmie (B) column alignment builds
// directly on it.
package match

import "math"

// Assignment is one matched pair (Left index, Right index) and its weight.
type Assignment struct {
	Left, Right int
	Weight      float64
}

// MaxWeight computes a maximum-weight matching of the bipartite graph whose
// weights are given by w (w[i][j] = weight of matching left i with right j).
// The matrix may be rectangular. Pairs with non-positive weight are left
// unmatched in the returned assignment list (matching them never helps the
// callers here, which use similarity weights). Returns the assignments and
// the total weight.
func MaxWeight(w [][]float64) ([]Assignment, float64) {
	nl := len(w)
	if nl == 0 {
		return nil, 0
	}
	nr := 0
	for _, row := range w {
		if len(row) > nr {
			nr = len(row)
		}
	}
	if nr == 0 {
		return nil, 0
	}
	n := nl
	if nr > n {
		n = nr
	}
	// Build a square cost matrix for minimization: cost = maxW - weight,
	// padding absent cells with weight 0.
	maxW := 0.0
	for i := range w {
		for _, v := range w[i] {
			if v > maxW {
				maxW = v
			}
		}
	}
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			v := 0.0
			if i < nl && j < len(w[i]) {
				v = w[i][j]
			}
			cost[i][j] = maxW - v
		}
	}

	rowMate := hungarian(cost) // rowMate[i] = matched column of row i

	var out []Assignment
	var total float64
	for i := 0; i < nl; i++ {
		j := rowMate[i]
		if j < 0 || j >= nr || j >= len(w[i]) {
			continue
		}
		if w[i][j] <= 0 {
			continue
		}
		out = append(out, Assignment{Left: i, Right: j, Weight: w[i][j]})
		total += w[i][j]
	}
	return out, total
}

// hungarian solves the square assignment problem (minimization) and returns
// row -> column assignments. Standard O(n^3) potentials implementation.
func hungarian(cost [][]float64) []int {
	n := len(cost)
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)   // p[j] = row matched to column j (1-based)
	way := make([]int, n+1) // way[j] = previous column on the augmenting path
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	rowMate := make([]int, n)
	for i := range rowMate {
		rowMate[i] = -1
	}
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			rowMate[p[j]-1] = j - 1
		}
	}
	return rowMate
}
