package match

import (
	"math"
	"math/rand"
	"testing"
)

func TestMaxWeightSimple(t *testing.T) {
	w := [][]float64{
		{0.9, 0.1},
		{0.2, 0.8},
	}
	as, total := MaxWeight(w)
	if len(as) != 2 {
		t.Fatalf("assignments = %v", as)
	}
	if math.Abs(total-1.7) > 1e-9 {
		t.Errorf("total = %v, want 1.7", total)
	}
}

func TestMaxWeightPrefersGlobalOptimum(t *testing.T) {
	// Greedy would take (0,0)=0.9 then (1,1)=0.1 for 1.0; optimal is
	// (0,1)=0.8 + (1,0)=0.7 = 1.5.
	w := [][]float64{
		{0.9, 0.8},
		{0.7, 0.1},
	}
	_, total := MaxWeight(w)
	if math.Abs(total-1.5) > 1e-9 {
		t.Errorf("total = %v, want 1.5 (global optimum)", total)
	}
}

func TestMaxWeightRectangular(t *testing.T) {
	// More right nodes than left.
	w := [][]float64{
		{0.1, 0.9, 0.2, 0.3},
		{0.8, 0.2, 0.1, 0.4},
	}
	as, total := MaxWeight(w)
	if len(as) != 2 {
		t.Fatalf("assignments = %v", as)
	}
	if math.Abs(total-1.7) > 1e-9 {
		t.Errorf("total = %v, want 1.7", total)
	}
	// More left nodes than right.
	wt := [][]float64{
		{0.1},
		{0.9},
		{0.5},
	}
	as, total = MaxWeight(wt)
	if len(as) != 1 || as[0].Left != 1 {
		t.Errorf("assignments = %v, want single match for left=1", as)
	}
	if math.Abs(total-0.9) > 1e-9 {
		t.Errorf("total = %v, want 0.9", total)
	}
}

func TestMaxWeightSkipsNonPositive(t *testing.T) {
	w := [][]float64{
		{0, 0},
		{0, 0.5},
	}
	as, total := MaxWeight(w)
	if len(as) != 1 || as[0].Left != 1 || as[0].Right != 1 {
		t.Errorf("assignments = %v, want only the 0.5 pair", as)
	}
	if total != 0.5 {
		t.Errorf("total = %v", total)
	}
}

func TestMaxWeightEmpty(t *testing.T) {
	if as, total := MaxWeight(nil); as != nil || total != 0 {
		t.Error("nil input should yield empty matching")
	}
	if as, total := MaxWeight([][]float64{{}, {}}); as != nil || total != 0 {
		t.Error("empty rows should yield empty matching")
	}
}

// Exhaustive cross-check against brute force on random small instances.
func TestMaxWeightMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(4) // 2..5
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
			for j := range w[i] {
				w[i][j] = rng.Float64()
			}
		}
		_, got := MaxWeight(w)
		want := bruteForceMax(w)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: hungarian %v != brute force %v (w=%v)", trial, got, want, w)
		}
	}
}

// bruteForceMax tries every permutation.
func bruteForceMax(w [][]float64) float64 {
	n := len(w)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := 0.0
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			var s float64
			for r, c := range perm {
				if w[r][c] > 0 {
					s += w[r][c]
				}
			}
			if s > best {
				best = s
			}
			return
		}
		for j := i; j < n; j++ {
			perm[i], perm[j] = perm[j], perm[i]
			rec(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	rec(0)
	return best
}
