package diversify

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"dust/internal/vector"
)

// clusteredProblem builds a problem whose lake tuples form `clusters` tight
// blobs; one blob sits exactly on the query tuples (redundant tuples), the
// rest are novel.
func clusteredProblem(clusters, perCluster, k int, seed int64) Problem {
	rng := rand.New(rand.NewSource(seed))
	dim := 8
	centers := make([]vector.Vec, clusters)
	for c := range centers {
		v := make(vector.Vec, dim)
		v[c%dim] = 5
		v[(c+3)%dim] = float64(c)
		centers[c] = v
	}
	var tuples []vector.Vec
	var groups []int
	for c, ctr := range centers {
		for i := 0; i < perCluster; i++ {
			v := make(vector.Vec, dim)
			for j := range v {
				v[j] = ctr[j] + rng.NormFloat64()*0.05
			}
			tuples = append(tuples, v)
			groups = append(groups, c%3)
		}
	}
	// Query = two tuples at cluster 0's center (so cluster 0 is redundant).
	query := []vector.Vec{centers[0], vector.Add(centers[0], make(vector.Vec, dim))}
	return Problem{Query: query, Tuples: tuples, Groups: groups, K: k, Dist: vector.Euclidean}
}

func allAlgorithms() []Algorithm {
	return []Algorithm{NewDUST(), NewGMC(), NewGNE(), CLT{}, MaxMin{}, Swap{}, Random{Seed: 3}}
}

func TestAllAlgorithmsReturnKDistinctIndices(t *testing.T) {
	p := clusteredProblem(6, 10, 5, 1)
	for _, a := range allAlgorithms() {
		got := a.Select(p)
		if len(got) != 5 {
			t.Errorf("%s returned %d indices, want 5", a.Name(), len(got))
			continue
		}
		seen := map[int]bool{}
		for _, idx := range got {
			if idx < 0 || idx >= len(p.Tuples) {
				t.Errorf("%s returned out-of-range index %d", a.Name(), idx)
			}
			if seen[idx] {
				t.Errorf("%s returned duplicate index %d", a.Name(), idx)
			}
			seen[idx] = true
		}
	}
}

func TestAlgorithmsHandleDegenerateInputs(t *testing.T) {
	for _, a := range allAlgorithms() {
		if got := a.Select(Problem{K: 5}); got != nil {
			t.Errorf("%s on empty problem returned %v", a.Name(), got)
		}
		p := clusteredProblem(2, 3, 0, 2)
		if got := a.Select(p); len(got) != 0 {
			t.Errorf("%s with k=0 returned %v", a.Name(), got)
		}
		// k larger than n clamps to n.
		p = clusteredProblem(2, 2, 100, 3)
		if got := a.Select(p); len(got) != 4 {
			t.Errorf("%s with k>n returned %d indices, want 4", a.Name(), len(got))
		}
	}
}

func TestDiversifiersBeatTopSimilarOnDiversity(t *testing.T) {
	p := clusteredProblem(6, 12, 6, 4)
	base := TopTuples{}.Select(p)
	baseAvg := AverageDiversity(p.Query, Gather(p.Tuples, base), p.Dist)
	for _, a := range allAlgorithms() {
		if a.Name() == "random" {
			continue // random can be unlucky; covered separately
		}
		sel := a.Select(p)
		avg := AverageDiversity(p.Query, Gather(p.Tuples, sel), p.Dist)
		if avg <= baseAvg {
			t.Errorf("%s average diversity %v <= top-similar %v", a.Name(), avg, baseAvg)
		}
	}
}

func TestDUSTSpreadsAcrossClusters(t *testing.T) {
	// 6 blobs, k=6 with p=2: candidates are ~2 medoids per blob and
	// re-ranking keeps the 6 farthest from the query, so the selection
	// must cover at least 3 distinct blobs and never the query-coincident
	// blob 0.
	p := clusteredProblem(6, 10, 6, 5)
	sel := NewDUST().Select(p)
	clustersHit := map[int]bool{}
	for _, idx := range sel {
		clustersHit[idx/10] = true
	}
	if len(clustersHit) < 3 {
		t.Errorf("DUST hit only %d distinct clusters, want >= 3", len(clustersHit))
	}
	if clustersHit[0] {
		t.Error("DUST selected from the query-coincident blob")
	}
}

func TestDUSTAvoidsRedundantCluster(t *testing.T) {
	// Cluster 0 coincides with the query; with k=3 of 6 clusters, DUST's
	// re-ranking must avoid cluster 0 entirely.
	p := clusteredProblem(6, 10, 3, 6)
	sel := NewDUST().Select(p)
	for _, idx := range sel {
		if idx/10 == 0 {
			t.Errorf("DUST selected redundant tuple %d from the query-coincident cluster", idx)
		}
	}
}

func TestDUSTRerankMatchesPaperExample5(t *testing.T) {
	// The exact distance table from Fig. 4, encoded via a custom distance
	// function over 1-d "ids".
	dist := map[[2]int]float64{
		{0, 100}: 0.3, {0, 101}: 0.1, {0, 102}: 0.9,
		{1, 100}: 0.5, {1, 101}: 0.4, {1, 102}: 0.6,
		{2, 100}: 0.75, {2, 101}: 0.5, {2, 102}: 0.1,
		{3, 100}: 0.4, {3, 101}: 0.55, {3, 102}: 0.5,
		{4, 100}: 0.9, {4, 101}: 0.75, {4, 102}: 0.01,
		{5, 100}: 0.0, {5, 101}: 0.99, {5, 102}: 0.2,
	}
	// Tuples 0..5 are t1..t6, queries 100..102 are q1..q3; embeddings are
	// just id vectors.
	mkVec := func(id int) vector.Vec { return vector.Vec{float64(id)} }
	p := Problem{
		Query:  []vector.Vec{mkVec(100), mkVec(101), mkVec(102)},
		Tuples: []vector.Vec{mkVec(0), mkVec(1), mkVec(2), mkVec(3), mkVec(4), mkVec(5)},
		K:      6,
		Dist: func(a, b vector.Vec) float64 {
			x, y := int(a[0]), int(b[0])
			if x > y {
				x, y = y, x
			}
			if d, ok := dist[[2]int{x, y}]; ok {
				return d
			}
			return 0
		},
	}
	ranked := RerankByQueryDistance(p, allIndices(6))
	want := []int{1, 3, 2, 0, 4, 5} // t2 t4 t3 t1 t5 t6 (Example 5 ranking)
	for i := range want {
		if ranked[i] != want[i] {
			t.Fatalf("rank %d = t%d, want t%d (full: %v)", i+1, ranked[i]+1, want[i]+1, ranked)
		}
	}
}

func TestPruneKeepsOutliers(t *testing.T) {
	// One group: 10 tuples at origin, 2 far away. Pruning to 2 must keep
	// the far ones.
	var tuples []vector.Vec
	for i := 0; i < 10; i++ {
		tuples = append(tuples, vector.Vec{0, 0})
	}
	tuples = append(tuples, vector.Vec{10, 0}, vector.Vec{0, 10})
	p := Problem{Tuples: tuples, K: 2, Dist: vector.Euclidean}
	kept := Prune(p.normalized(), 2)
	if len(kept) != 2 {
		t.Fatalf("kept %d, want 2", len(kept))
	}
	if kept[0] != 10 || kept[1] != 11 {
		t.Errorf("kept %v, want the two outliers [10 11]", kept)
	}
}

func TestPrunePerGroupMeans(t *testing.T) {
	// Two groups with different centers: pruning must measure distance to
	// the group's own mean, not the global mean.
	tuples := []vector.Vec{
		{0, 0}, {0, 0}, {3, 0}, // group 0: mean ~(1,0); idx 2 is its outlier
		{10, 10}, {10, 10}, {10, 13}, // group 1: idx 5 is its outlier
	}
	p := Problem{
		Tuples: tuples,
		Groups: []int{0, 0, 0, 1, 1, 1},
		K:      2, Dist: vector.Euclidean,
	}
	kept := Prune(p.normalized(), 2)
	if !(contains(kept, 2) && contains(kept, 5)) {
		t.Errorf("kept %v, want the per-group outliers [2 5]", kept)
	}
}

func TestMetricsOnKnownValues(t *testing.T) {
	q := []vector.Vec{{0, 0}}
	sel := []vector.Vec{{3, 4}, {0, 5}}
	// distances: q-t1=5, q-t2=5, t1-t2=sqrt(9+1)=sqrt(10)
	avg := AverageDiversity(q, sel, vector.Euclidean)
	want := (5 + 5 + math.Sqrt(10)) / 3
	if math.Abs(avg-want) > 1e-12 {
		t.Errorf("AverageDiversity = %v, want %v", avg, want)
	}
	min := MinDiversity(q, sel, vector.Euclidean)
	if math.Abs(min-math.Sqrt(10)) > 1e-12 {
		t.Errorf("MinDiversity = %v, want sqrt(10)", min)
	}
}

func TestMetricsDegenerate(t *testing.T) {
	if AverageDiversity(nil, nil, nil) != 0 {
		t.Error("empty AverageDiversity should be 0")
	}
	if MinDiversity(nil, nil, nil) != 0 {
		t.Error("empty MinDiversity should be 0")
	}
	// Single selected tuple with no query: no pairs at all.
	if MinDiversity(nil, []vector.Vec{{1}}, vector.Euclidean) != 0 {
		t.Error("single-tuple MinDiversity with no query should be 0")
	}
}

func TestMaxMinOutperformsRandomOnMinDiversity(t *testing.T) {
	p := clusteredProblem(8, 10, 6, 7)
	mm := MaxMin{}.Select(p)
	rd := Random{Seed: 9}.Select(p)
	mmMin := MinDiversity(p.Query, Gather(p.Tuples, mm), p.Dist)
	rdMin := MinDiversity(p.Query, Gather(p.Tuples, rd), p.Dist)
	if mmMin <= rdMin {
		t.Errorf("MaxMin min-diversity %v <= random %v", mmMin, rdMin)
	}
}

func TestGMCDeterministic(t *testing.T) {
	p := clusteredProblem(5, 8, 4, 8)
	a := NewGMC().Select(p)
	b := NewGMC().Select(p)
	if !equalInts(a, b) {
		t.Error("GMC nondeterministic")
	}
}

func TestGNEAtLeastMatchesItsConstruction(t *testing.T) {
	// GNE's local search must never return something worse than GMC-like
	// construction on the same objective; sanity check via avg diversity.
	p := clusteredProblem(5, 8, 4, 10)
	gne := NewGNE().Select(p)
	if len(gne) != 4 {
		t.Fatalf("GNE returned %d", len(gne))
	}
	avg := AverageDiversity(p.Query, Gather(p.Tuples, gne), p.Dist)
	rd := Random{Seed: 17}.Select(p)
	rdAvg := AverageDiversity(p.Query, Gather(p.Tuples, rd), p.Dist)
	if avg < rdAvg*0.8 {
		t.Errorf("GNE avg diversity %v far below random %v", avg, rdAvg)
	}
}

func TestGatherAndTopTuples(t *testing.T) {
	p := clusteredProblem(3, 4, 2, 11)
	sel := TopTuples{}.Select(p)
	if len(sel) != 2 {
		t.Fatalf("TopTuples returned %d", len(sel))
	}
	// The top-similar tuples must come from the query-coincident cluster 0.
	for _, idx := range sel {
		if idx/4 != 0 {
			t.Errorf("top-similar picked tuple %d outside redundant cluster", idx)
		}
	}
	g := Gather(p.Tuples, sel)
	if len(g) != 2 {
		t.Error("Gather length mismatch")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Ints(a)
	sort.Ints(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
