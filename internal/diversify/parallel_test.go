package diversify

import (
	"testing"

	"dust/internal/vector"
)

// parallelProblem builds a deterministic workload with several provenance
// groups, large enough that Prune and the cluster matrices actually chunk.
func parallelProblem(n, workers int) Problem {
	state := uint64(7)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>40)/float64(1<<24) - 0.5
	}
	tuples := make([]vector.Vec, n)
	groups := make([]int, n)
	for i := range tuples {
		v := make(vector.Vec, 12)
		for j := range v {
			v[j] = next()
		}
		tuples[i] = v
		groups[i] = i % 5
	}
	return Problem{
		Query:   tuples[:7],
		Tuples:  tuples[7:],
		Groups:  groups[7:],
		K:       15,
		Dist:    vector.CosineDistance,
		Workers: workers,
	}
}

func assertSameIndices(t *testing.T, label string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d indices, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: index %d = %d, want %d", label, i, got[i], want[i])
		}
	}
}

func TestPruneDeterministicAcrossWorkers(t *testing.T) {
	want := Prune(parallelProblem(700, 1), 250)
	for _, workers := range []int{2, 8} {
		got := Prune(parallelProblem(700, workers), 250)
		assertSameIndices(t, "Prune", got, want)
	}
}

func TestRerankDeterministicAcrossWorkers(t *testing.T) {
	candidates := make([]int, 300)
	for i := range candidates {
		candidates[i] = i * 2
	}
	want := RerankByQueryDistance(parallelProblem(700, 1), candidates)
	for _, workers := range []int{2, 8} {
		got := RerankByQueryDistance(parallelProblem(700, workers), candidates)
		assertSameIndices(t, "RerankByQueryDistance", got, want)
	}
}

func TestDUSTSelectDeterministicAcrossWorkers(t *testing.T) {
	algo := NewDUST()
	algo.S = 300 // force the pruning stage to run
	want := algo.Select(parallelProblem(900, 1))
	if len(want) == 0 {
		t.Fatal("sequential DUST selected nothing")
	}
	for _, workers := range []int{2, 8} {
		got := algo.Select(parallelProblem(900, workers))
		assertSameIndices(t, "DUST.Select", got, want)
	}
}

func TestBaselineScoresDeterministicAcrossWorkers(t *testing.T) {
	want := noveltyScores(parallelProblem(500, 1))
	wantAvg := avgQueryDistance(parallelProblem(500, 1))
	for _, workers := range []int{2, 8} {
		got := noveltyScores(parallelProblem(500, workers))
		gotAvg := avgQueryDistance(parallelProblem(500, workers))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: novelty[%d] = %v, want %v", workers, i, got[i], want[i])
			}
			if gotAvg[i] != wantAvg[i] {
				t.Fatalf("workers=%d: avg[%d] = %v, want %v", workers, i, gotAvg[i], wantAvg[i])
			}
		}
	}
}
