package diversify

import (
	"math"

	"dust/internal/vector"
)

// AverageDiversity is Equation 1 of the paper: the sum of query-to-selected
// and selected-to-selected distances, normalized by n+k (the paper's
// denominator; query-to-query distances are constant across methods and
// excluded).
func AverageDiversity(query, selected []vector.Vec, dist vector.DistanceFunc) float64 {
	if dist == nil {
		dist = vector.CosineDistance
	}
	n, k := len(query), len(selected)
	if n+k == 0 || k == 0 {
		return 0
	}
	var sum float64
	for _, q := range query {
		for _, t := range selected {
			sum += dist(q, t)
		}
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			sum += dist(selected[i], selected[j])
		}
	}
	return sum / float64(n+k)
}

// MinDiversity is Equation 2: the minimum over all query-to-selected and
// selected-to-selected distances.
func MinDiversity(query, selected []vector.Vec, dist vector.DistanceFunc) float64 {
	if dist == nil {
		dist = vector.CosineDistance
	}
	if len(selected) == 0 {
		return 0
	}
	min := math.Inf(1)
	for _, q := range query {
		for _, t := range selected {
			if d := dist(q, t); d < min {
				min = d
			}
		}
	}
	for i := 0; i < len(selected); i++ {
		for j := i + 1; j < len(selected); j++ {
			if d := dist(selected[i], selected[j]); d < min {
				min = d
			}
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// Gather returns the embeddings at the given indices.
func Gather(vs []vector.Vec, idx []int) []vector.Vec {
	out := make([]vector.Vec, len(idx))
	for i, x := range idx {
		out[i] = vs[x]
	}
	return out
}
