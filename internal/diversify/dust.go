package diversify

import (
	"math/rand"
	"sort"

	"dust/internal/cluster"
	"dust/internal/par"
	"dust/internal/vector"
)

// DUST is the paper's tuple diversification algorithm (Algorithm 2):
//
//  1. Prune the unionable tuples to the S candidates farthest from their
//     source table's mean embedding (§5.1).
//  2. Cluster the survivors into K*P clusters and keep each cluster's
//     medoid as a candidate diverse among themselves (§5.2).
//  3. Re-rank candidates by minimum distance to the query tuples (ties
//     broken by average distance) and return the top K (§5.3).
type DUST struct {
	// P controls the candidate multiplier (number of clusters = K*P). The
	// paper selects P = 2 (Appendix A.2.2).
	P int
	// S caps the number of tuples entering clustering (§5.1; the paper
	// prunes 10k tuples to 2500).
	S int
	// DisablePrune turns off step 1 for the Appendix A.2.3 ablation.
	DisablePrune bool
	// RandomRep replaces the per-cluster medoid with a seeded random
	// member — the DESIGN.md ablation isolating the medoid choice (§5.2
	// argues medoids are robust to outliers).
	RandomRep bool
	// RepSeed seeds the random representative choice.
	RepSeed int64
}

// NewDUST returns DUST with the paper's defaults (P=2, S=2500).
func NewDUST() *DUST { return &DUST{P: 2, S: 2500} }

// Name implements Algorithm.
func (d *DUST) Name() string { return "dust" }

// Select implements Algorithm.
func (d *DUST) Select(p Problem) []int {
	p = p.normalized()
	if p.K == 0 || len(p.Tuples) == 0 {
		return nil
	}
	pp := d.P
	if pp < 1 {
		pp = 2
	}
	s := d.S
	if s <= 0 {
		s = 2500
	}

	// Step 1: prune (identity mapping when disabled or small).
	kept := allIndices(len(p.Tuples))
	if !d.DisablePrune && len(p.Tuples) > s {
		kept = Prune(p, s)
	}

	// Step 2: cluster survivors into K*P clusters; one representative per
	// cluster (medoid by default) becomes a candidate.
	var candidates []int
	if d.RandomRep {
		candidates = clusterRandomReps(p, kept, p.K*pp, d.RepSeed)
	} else {
		candidates = clusterMedoids(p, kept, p.K*pp)
	}

	// Step 3: re-rank by min distance to query, tie-break by avg distance.
	ranked := RerankByQueryDistance(p, candidates)
	if len(ranked) > p.K {
		ranked = ranked[:p.K]
	}
	return ranked
}

// Prune returns the indices of the s tuples with the greatest distance to
// their source-table mean embedding (§5.1), preserving a deterministic
// order on ties. The per-tuple distance scoring — the pruning stage's hot
// loop — runs in parallel across p.Workers; scores are written by tuple
// index, so the ranking is identical for every worker count.
func Prune(p Problem, s int) []int {
	n := len(p.Tuples)
	if s >= n {
		return allIndices(n)
	}
	groups := p.Groups
	if groups == nil {
		groups = make([]int, n)
	}
	// Mean embedding per group.
	byGroup := map[int][]vector.Vec{}
	for i, t := range p.Tuples {
		byGroup[groups[i]] = append(byGroup[groups[i]], t)
	}
	means := map[int]vector.Vec{}
	for g, vs := range byGroup {
		means[g] = vector.Mean(vs)
	}
	type scored struct {
		idx   int
		score float64
	}
	all := make([]scored, n)
	par.For(p.Workers, n, func(i int) {
		all[i] = scored{i, p.Dist(means[groups[i]], p.Tuples[i])}
	})
	sort.Slice(all, func(a, b int) bool {
		if all[a].score != all[b].score {
			return all[a].score > all[b].score
		}
		return all[a].idx < all[b].idx
	})
	out := make([]int, s)
	for i := 0; i < s; i++ {
		out[i] = all[i].idx
	}
	sort.Ints(out)
	return out
}

// clusterMedoids clusters the kept tuples into numClusters clusters
// (average-linkage agglomerative, as in the paper's pipeline) and returns
// the medoid tuple index of every cluster.
func clusterMedoids(p Problem, kept []int, numClusters int) []int {
	if numClusters >= len(kept) {
		out := make([]int, len(kept))
		copy(out, kept)
		return out
	}
	if numClusters < 1 {
		numClusters = 1
	}
	vecs := make([]vector.Vec, len(kept))
	for i, idx := range kept {
		vecs[i] = p.Tuples[idx]
	}
	m := cluster.NewMatrixWorkers(vecs, p.Dist, p.Workers)
	dend := cluster.Agglomerative(m, cluster.Options{Linkage: cluster.Average})
	labels, k := dend.Cut(numClusters)
	var out []int
	for _, members := range cluster.Members(labels, k) {
		out = append(out, kept[m.MedoidWorkers(members, p.Workers)])
	}
	sort.Ints(out)
	return out
}

// clusterRandomReps is clusterMedoids with a seeded random member instead
// of the medoid (ablation support).
func clusterRandomReps(p Problem, kept []int, numClusters int, seed int64) []int {
	if numClusters >= len(kept) {
		out := make([]int, len(kept))
		copy(out, kept)
		return out
	}
	if numClusters < 1 {
		numClusters = 1
	}
	vecs := make([]vector.Vec, len(kept))
	for i, idx := range kept {
		vecs[i] = p.Tuples[idx]
	}
	m := cluster.NewMatrixWorkers(vecs, p.Dist, p.Workers)
	dend := cluster.Agglomerative(m, cluster.Options{Linkage: cluster.Average})
	labels, k := dend.Cut(numClusters)
	rng := rand.New(rand.NewSource(seed))
	var out []int
	for _, members := range cluster.Members(labels, k) {
		out = append(out, kept[members[rng.Intn(len(members))]])
	}
	sort.Ints(out)
	return out
}

// RerankByQueryDistance orders candidate indices by descending minimum
// distance to the query tuples, breaking ties by descending average
// distance (Example 5). With no query tuples the input order is preserved.
func RerankByQueryDistance(p Problem, candidates []int) []int {
	if len(p.Query) == 0 {
		out := make([]int, len(candidates))
		copy(out, candidates)
		return out
	}
	minD := make([]float64, len(candidates))
	avgD := make([]float64, len(candidates))
	// Candidates score in parallel; each candidate's query scan accumulates
	// sequentially, keeping the scores bit-identical for any worker count.
	par.For(p.Workers, len(candidates), func(ci int) {
		t := p.Tuples[candidates[ci]]
		var sum float64
		for qi, q := range p.Query {
			d := p.Dist(t, q)
			sum += d
			if qi == 0 || d < minD[ci] {
				minD[ci] = d
			}
		}
		avgD[ci] = sum / float64(len(p.Query))
	})
	order := make([]int, len(candidates))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if minD[order[a]] != minD[order[b]] {
			return minD[order[a]] > minD[order[b]]
		}
		if avgD[order[a]] != avgD[order[b]] {
			return avgD[order[a]] > avgD[order[b]]
		}
		return candidates[order[a]] < candidates[order[b]]
	})
	out := make([]int, len(candidates))
	for i, o := range order {
		out[i] = candidates[o]
	}
	return out
}

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
