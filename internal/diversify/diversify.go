// Package diversify implements the tuple diversification layer of the
// reproduction: the paper's DUST algorithm (prune -> cluster -> re-rank,
// Algorithm 2, §5) and the baselines of the evaluation — GMC and GNE
// (Vieira et al., MMR-based max-sum diversification), CLT (cluster
// medoids), SWAP, a Max-Min greedy, and random selection — together with
// the two evaluation metrics of §5.4 (Average Diversity and Min Diversity).
package diversify

import (
	"dust/internal/par"
	"dust/internal/vector"
)

// Problem is one diversification instance: embedded query tuples, embedded
// candidate data lake tuples, the number of outputs k, and the tuple
// distance function (cosine distance throughout the paper's experiments).
type Problem struct {
	Query  []vector.Vec
	Tuples []vector.Vec
	// Groups optionally assigns each tuple a provenance group (its source
	// table); DUST's pruning ranks tuples against their group's mean
	// embedding (§5.1). When nil, all tuples form one group.
	Groups []int
	K      int
	Dist   vector.DistanceFunc
	// Workers bounds the parallelism of the distance kernels (pruning,
	// clustering matrices, re-ranking). <= 0 selects the GOMAXPROCS default,
	// 1 forces the sequential path; the selection is identical either way.
	Workers int
}

// normalized returns the problem with defaults filled in.
func (p Problem) normalized() Problem {
	if p.Dist == nil {
		p.Dist = vector.CosineDistance
	}
	if p.K > len(p.Tuples) {
		p.K = len(p.Tuples)
	}
	if p.K < 0 {
		p.K = 0
	}
	return p
}

// Algorithm selects k diverse tuple indices for a problem.
type Algorithm interface {
	Name() string
	Select(p Problem) []int
}

// noveltyScores computes each tuple's novelty: its minimum distance to any
// query tuple — the quantity DUST re-ranks by (§5.3). Tuples are scored in
// parallel; each tuple's query scan stays sequential, so scores are
// bit-identical for every worker count.
func noveltyScores(p Problem) []float64 {
	return par.Map(p.Workers, len(p.Tuples), func(i int) float64 {
		minD := 0.0
		for qi, q := range p.Query {
			d := p.Dist(p.Tuples[i], q)
			if qi == 0 || d < minD {
				minD = d
			}
		}
		return minD
	})
}

// relevanceScores computes IR-style relevance: similarity to the query
// (1 - minDist/2, mapping cosine distance in [0,2] to [0,1]). The MMR
// baselines (GMC, GNE, SWAP) trade THIS off against diversity — relevance
// and diversity are "opposite dimensions" in that literature (§4), which is
// exactly why they lose ground to DUST on novelty-driven discovery.
func relevanceScores(p Problem) []float64 {
	out := noveltyScores(p)
	for i, d := range out {
		s := 1 - d/2
		if s < 0 {
			s = 0
		}
		out[i] = s
	}
	return out
}

// avgQueryDistance computes each tuple's mean distance to the query tuples
// (DUST's tie-breaking score, §5.3).
func avgQueryDistance(p Problem) []float64 {
	if len(p.Query) == 0 {
		return make([]float64, len(p.Tuples))
	}
	return par.Map(p.Workers, len(p.Tuples), func(i int) float64 {
		var s float64
		for _, q := range p.Query {
			s += p.Dist(p.Tuples[i], q)
		}
		return s / float64(len(p.Query))
	})
}
