package diversify

import (
	"math/rand"
	"sort"

	"dust/internal/cluster"
	"dust/internal/vector"
)

// CLT is the clustering baseline (van Leuken et al., §6.4.2): cluster the
// tuples into exactly k clusters and return each cluster's medoid. It uses
// the same clustering machinery and parameters as DUST for a controlled
// comparison (as in the paper), but has no query-aware re-ranking step —
// the gap between CLT and DUST isolates the value of re-ranking.
type CLT struct{}

// Name implements Algorithm.
func (CLT) Name() string { return "clt" }

// Select implements Algorithm.
func (CLT) Select(p Problem) []int {
	p = p.normalized()
	if p.K == 0 || len(p.Tuples) == 0 {
		return nil
	}
	return clusterMedoids(p, allIndices(len(p.Tuples)), p.K)
}

// MaxMin is the classic greedy 2-approximation for max-min diversification
// (Moumoulidou et al., §3.1): start from the tuple most novel w.r.t. the
// query, then repeatedly add the tuple maximizing the minimum distance to
// the already-selected set.
type MaxMin struct{}

// Name implements Algorithm.
func (MaxMin) Name() string { return "maxmin" }

// Select implements Algorithm.
func (MaxMin) Select(p Problem) []int {
	p = p.normalized()
	n := len(p.Tuples)
	if p.K == 0 || n == 0 {
		return nil
	}
	nov := noveltyScores(p)
	first := 0
	for t := 1; t < n; t++ {
		if nov[t] > nov[first] {
			first = t
		}
	}
	selected := []int{first}
	minDist := make([]float64, n)
	for t := 0; t < n; t++ {
		minDist[t] = p.Dist(p.Tuples[t], p.Tuples[first])
	}
	for len(selected) < p.K {
		best := -1
		for t := 0; t < n; t++ {
			if minDist[t] == 0 && contains(selected, t) {
				continue
			}
			if best == -1 || minDist[t] > minDist[best] {
				best = t
			}
		}
		selected = append(selected, best)
		for t := 0; t < n; t++ {
			if d := p.Dist(p.Tuples[t], p.Tuples[best]); d < minDist[t] {
				minDist[t] = d
			}
		}
	}
	sort.Ints(selected)
	return selected
}

// Swap is Yu et al.'s SWAP algorithm (§2): seed the result with the k most
// RELEVANT tuples (most similar to the query, the recommender-system
// reading of relevance), then greedily swap in outside candidates whenever
// replacing a result item improves the max-sum diversity of the set.
type Swap struct{}

// Name implements Algorithm.
func (Swap) Name() string { return "swap" }

// Select implements Algorithm.
func (Swap) Select(p Problem) []int {
	p = p.normalized()
	n := len(p.Tuples)
	if p.K == 0 || n == 0 {
		return nil
	}
	if p.K >= n {
		return allIndices(n)
	}
	rel := relevanceScores(p)
	order := allIndices(n)
	sort.SliceStable(order, func(a, b int) bool { return rel[order[a]] > rel[order[b]] })

	sel := append([]int(nil), order[:p.K]...)
	sumDiv := func(sel []int) float64 {
		var s float64
		for i := 0; i < len(sel); i++ {
			for j := i + 1; j < len(sel); j++ {
				s += p.Dist(p.Tuples[sel[i]], p.Tuples[sel[j]])
			}
		}
		return s
	}
	cur := sumDiv(sel)
	for _, cand := range order[p.K:] {
		// Find the selected item whose removal hurts least when cand
		// enters (the most redundant member).
		bestScore, bestIdx := cur, -1
		for si := range sel {
			old := sel[si]
			sel[si] = cand
			if s := sumDiv(sel); s > bestScore {
				bestScore, bestIdx = s, si
			}
			sel[si] = old
		}
		if bestIdx >= 0 {
			sel[bestIdx] = cand
			cur = bestScore
		}
	}
	sort.Ints(sel)
	return sel
}

// Random selects k tuples uniformly at random; the experiments run it with
// several seeds and keep the best score per metric (§6.4.3).
type Random struct {
	Seed int64
}

// Name implements Algorithm.
func (r Random) Name() string { return "random" }

// Select implements Algorithm.
func (r Random) Select(p Problem) []int {
	p = p.normalized()
	n := len(p.Tuples)
	if p.K == 0 || n == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(r.Seed))
	perm := rng.Perm(n)[:p.K]
	sort.Ints(perm)
	return perm
}

// TopTuples is not a diversifier: it returns the k tuples most SIMILAR to
// the query (lowest min distance), modelling what a pure union-search
// ranking yields (Example 1's "most unionable" Table (e)). Experiments use
// it to show the redundancy of similarity-based retrieval.
type TopTuples struct{}

// Name implements Algorithm.
func (TopTuples) Name() string { return "top-similar" }

// Select implements Algorithm.
func (TopTuples) Select(p Problem) []int {
	p = p.normalized()
	n := len(p.Tuples)
	if p.K == 0 || n == 0 {
		return nil
	}
	nov := noveltyScores(p)
	order := allIndices(n)
	sort.SliceStable(order, func(a, b int) bool { return nov[order[a]] < nov[order[b]] })
	out := append([]int(nil), order[:p.K]...)
	sort.Ints(out)
	return out
}

// Medoid exposes cluster medoid selection over raw vectors for reuse.
func Medoid(vs []vector.Vec, dist vector.DistanceFunc) int {
	if len(vs) == 0 {
		return -1
	}
	m := cluster.NewMatrix(vs, dist)
	return m.Medoid(allIndices(len(vs)))
}
