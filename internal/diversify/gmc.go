package diversify

import (
	"container/heap"
	"math/rand"
	"sort"
)

// GMC is the Greedy Marginal Contribution algorithm of Vieira et al.
// (DivDB, §6.4.2): items are added one at a time, each time picking the
// candidate with the maximum marginal contribution to the MMR objective
//
//	F(R) = (1-λ)·Σ rel(t) + λ/(k-1)·Σ_{t,u ∈ R} d(t,u)
//
// where the contribution of an unselected candidate counts its distances to
// the current result set plus its top-(k-|R|-1) distances to other
// candidates (the optimistic future term that makes GMC quadratic in the
// candidate count — the scaling Fig. 7(a) shows).
type GMC struct {
	// Lambda is the diversity weight in [0,1]; Vieira et al. emphasise the
	// diversity end for diversification workloads.
	Lambda float64
}

// NewGMC returns GMC with the standard MMR trade-off (λ = 0.5, the DivDB
// default balance of relevance and diversity).
func NewGMC() *GMC { return &GMC{Lambda: 0.5} }

// Name implements Algorithm.
func (g *GMC) Name() string { return "gmc" }

// Select implements Algorithm.
func (g *GMC) Select(p Problem) []int {
	p = p.normalized()
	n := len(p.Tuples)
	if p.K == 0 || n == 0 {
		return nil
	}
	if p.K >= n {
		return allIndices(n)
	}
	rel := relevanceScores(p)
	prefix := topKDistancePrefixSums(p, p.K)

	lambda := g.Lambda
	selected := make([]int, 0, p.K)
	inSel := make([]bool, n)
	selDist := make([]float64, n) // Σ d(t, s) over selected s

	denom := float64(p.K - 1)
	if denom <= 0 {
		denom = 1
	}
	for len(selected) < p.K {
		future := p.K - len(selected) - 1
		best, bestScore := -1, 0.0
		for t := 0; t < n; t++ {
			if inSel[t] {
				continue
			}
			fut := 0.0
			if future > 0 && future <= len(prefix[t]) {
				fut = prefix[t][future-1]
			}
			score := (1-lambda)*rel[t] + lambda/denom*(selDist[t]+fut)
			if best == -1 || score > bestScore {
				best, bestScore = t, score
			}
		}
		inSel[best] = true
		selected = append(selected, best)
		for t := 0; t < n; t++ {
			if !inSel[t] {
				selDist[t] += p.Dist(p.Tuples[t], p.Tuples[best])
			}
		}
	}
	sort.Ints(selected)
	return selected
}

// topKDistancePrefixSums computes, for every tuple, the prefix sums of its
// k largest distances to other tuples. This is the O(n^2) step.
func topKDistancePrefixSums(p Problem, k int) [][]float64 {
	n := len(p.Tuples)
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		h := &minFloatHeap{}
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			d := p.Dist(p.Tuples[i], p.Tuples[j])
			if h.Len() < k {
				heap.Push(h, d)
			} else if d > (*h)[0] {
				(*h)[0] = d
				heap.Fix(h, 0)
			}
		}
		ds := make([]float64, h.Len())
		copy(ds, *h)
		sort.Sort(sort.Reverse(sort.Float64Slice(ds)))
		for j := 1; j < len(ds); j++ {
			ds[j] += ds[j-1]
		}
		out[i] = ds
	}
	return out
}

type minFloatHeap []float64

func (h minFloatHeap) Len() int            { return len(h) }
func (h minFloatHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h minFloatHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minFloatHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *minFloatHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// GNE is Vieira et al.'s Greedy randomized with Neighborhood Expansion: a
// GRASP loop that builds a randomized greedy solution and then hill-climbs
// by swapping selected items with outside candidates. It explores far more
// of the search space than GMC and is correspondingly slower (the paper
// could only run it on UGEN-V1, where it took 81 s vs <1 s for the rest).
type GNE struct {
	Lambda     float64
	Iterations int // GRASP restarts
	RCLSize    int // randomized candidate list size
	Seed       int64
}

// MaxPasses bounds the local-search sweeps per GRASP restart; the original
// GNE explores a limited neighbourhood per iteration.
const gneMaxPasses = 2

// NewGNE returns GNE with the randomized-candidate-list defaults of the
// original (a wide RCL trades solution quality for exploration — GNE is
// outperformed by all baselines on UGEN-V1 in the paper's Table 2 while
// also being the slowest).
func NewGNE() *GNE { return &GNE{Lambda: 0.5, Iterations: 5, RCLSize: 10, Seed: 1} }

// Name implements Algorithm.
func (g *GNE) Name() string { return "gne" }

// Select implements Algorithm.
func (g *GNE) Select(p Problem) []int {
	p = p.normalized()
	n := len(p.Tuples)
	if p.K == 0 || n == 0 {
		return nil
	}
	if p.K >= n {
		return allIndices(n)
	}
	rel := relevanceScores(p)
	rng := rand.New(rand.NewSource(g.Seed))

	objective := func(sel []int) float64 {
		var relSum, divSum float64
		for _, t := range sel {
			relSum += rel[t]
		}
		for i := 0; i < len(sel); i++ {
			for j := i + 1; j < len(sel); j++ {
				divSum += p.Dist(p.Tuples[sel[i]], p.Tuples[sel[j]])
			}
		}
		denom := float64(p.K - 1)
		if denom <= 0 {
			denom = 1
		}
		return (1-g.Lambda)*relSum + g.Lambda/denom*2*divSum
	}

	var bestSel []int
	bestScore := 0.0
	for it := 0; it < g.Iterations; it++ {
		sel := g.construct(p, rel, rng)
		score := objective(sel)
		// Local search: first-improvement swaps, bounded passes.
		improved := true
		for pass := 0; improved && pass < gneMaxPasses; pass++ {
			improved = false
			for si := 0; si < len(sel) && !improved; si++ {
				for t := 0; t < n && !improved; t++ {
					if contains(sel, t) {
						continue
					}
					old := sel[si]
					sel[si] = t
					if ns := objective(sel); ns > score {
						score = ns
						improved = true
					} else {
						sel[si] = old
					}
				}
			}
		}
		if bestSel == nil || score > bestScore {
			bestScore = score
			bestSel = append([]int(nil), sel...)
		}
	}
	sort.Ints(bestSel)
	return bestSel
}

// construct builds a randomized greedy solution: at each step one of the
// RCLSize best candidates (by GMC-style marginal contribution without the
// future term) is chosen at random.
func (g *GNE) construct(p Problem, rel []float64, rng *rand.Rand) []int {
	n := len(p.Tuples)
	sel := make([]int, 0, p.K)
	inSel := make([]bool, n)
	selDist := make([]float64, n)
	denom := float64(p.K - 1)
	if denom <= 0 {
		denom = 1
	}
	type cand struct {
		idx   int
		score float64
	}
	for len(sel) < p.K {
		cands := make([]cand, 0, n)
		for t := 0; t < n; t++ {
			if inSel[t] {
				continue
			}
			cands = append(cands, cand{t, (1-g.Lambda)*rel[t] + g.Lambda/denom*selDist[t]})
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].score != cands[b].score {
				return cands[a].score > cands[b].score
			}
			return cands[a].idx < cands[b].idx
		})
		rcl := g.RCLSize
		if rcl > len(cands) {
			rcl = len(cands)
		}
		chosen := cands[rng.Intn(rcl)].idx
		inSel[chosen] = true
		sel = append(sel, chosen)
		for t := 0; t < n; t++ {
			if !inSel[t] {
				selDist[t] += p.Dist(p.Tuples[t], p.Tuples[chosen])
			}
		}
	}
	return sel
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
