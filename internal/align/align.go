// Package align implements the column alignment phase of DUST (paper §3.3
// and Appendix A.1.1): all columns of the query table and the discovered
// unionable tables are embedded, clustered hierarchically under a
// cannot-link constraint (no two columns of one table may align), the
// number of clusters is chosen by silhouette coefficient, clusters without
// a query column are discarded, and the survivors define the outer-union
// mapping. A pairwise bipartite aligner (Starmie (B)) is provided as the
// Table 1 baseline.
package align

import (
	"fmt"
	"math"

	"dust/internal/cluster"
	"dust/internal/embed"
	"dust/internal/match"
	"dust/internal/table"
	"dust/internal/tokenize"
	"dust/internal/vector"
)

// Column is one embedded column in the alignment universe.
type Column struct {
	Table   string // owning table name
	Index   int    // column index within the owning table
	Name    string // column header
	IsQuery bool
	Vec     vector.Vec
}

// Ref identifies a column for ground-truth evaluation.
type Ref struct {
	Table string
	Index int
}

// Result of an alignment: clusters of column indices (into Cols), each
// containing exactly one query column after filtering.
type Result struct {
	Cols []Column
	// Clusters[i] lists indices into Cols; the cluster's query column
	// determines the output header.
	Clusters [][]int
	// Silhouette is the quality score of the chosen cut (NaN for the
	// bipartite aligner, which has no clustering step).
	Silhouette float64
}

// EmbedColumns builds the alignment universe from a query table and its
// unionable tables using a per-universe TF-IDF corpus (the paper's
// representative-token selection).
func EmbedColumns(query *table.Table, tables []*table.Table, enc embed.ColumnEncoder) []Column {
	var corpus tokenize.Corpus
	addAll := func(t *table.Table) {
		for i := range t.Columns {
			corpus.AddDocument(embed.ColumnTokens(&t.Columns[i]))
		}
	}
	addAll(query)
	for _, t := range tables {
		addAll(t)
	}

	var out []Column
	encode := func(t *table.Table, isQuery bool) {
		for i := range t.Columns {
			out = append(out, Column{
				Table:   t.Name,
				Index:   i,
				Name:    t.Columns[i].Name,
				IsQuery: isQuery,
				Vec:     enc.EncodeColumn(&t.Columns[i], &corpus),
			})
		}
	}
	encode(query, true)
	for _, t := range tables {
		encode(t, false)
	}
	return out
}

// EmbedColumnsStarmie is EmbedColumns for the Starmie encoder, whose
// embeddings are computed per table (each column mixes in its table's
// context).
func EmbedColumnsStarmie(query *table.Table, tables []*table.Table, enc embed.StarmieEncoder) []Column {
	var corpus tokenize.Corpus
	addAll := func(t *table.Table) {
		for i := range t.Columns {
			corpus.AddDocument(embed.ColumnTokens(&t.Columns[i]))
		}
	}
	addAll(query)
	for _, t := range tables {
		addAll(t)
	}

	var out []Column
	encode := func(t *table.Table, isQuery bool) {
		vecs := enc.EncodeTableColumns(t, &corpus)
		for i := range t.Columns {
			out = append(out, Column{
				Table:   t.Name,
				Index:   i,
				Name:    t.Columns[i].Name,
				IsQuery: isQuery,
				Vec:     vecs[i],
			})
		}
	}
	encode(query, true)
	for _, t := range tables {
		encode(t, false)
	}
	return out
}

// Holistic aligns columns by constrained agglomerative clustering with
// silhouette-selected cluster count, then keeps only clusters containing a
// query column (paper §3.3). It runs sequentially; HolisticWorkers fans the
// distance-matrix construction out.
func Holistic(cols []Column) *Result {
	return HolisticWorkers(cols, 1)
}

// HolisticWorkers is Holistic with the pairwise column-distance matrix —
// the alignment stage's quadratic hot spot — built by at most workers
// goroutines (<= 0 means the GOMAXPROCS default). The result is identical
// for every worker count.
func HolisticWorkers(cols []Column, workers int) *Result {
	numQuery := 0
	for _, c := range cols {
		if c.IsQuery {
			numQuery++
		}
	}
	res := &Result{Cols: cols}
	if len(cols) == 0 || numQuery == 0 {
		return res
	}

	vecs := make([]vector.Vec, len(cols))
	for i, c := range cols {
		vecs[i] = c.Vec
	}
	m := cluster.NewMatrixWorkers(vecs, vector.Euclidean, workers)
	dend := cluster.Agglomerative(m, cluster.Options{
		Linkage: cluster.Average,
		CannotLink: func(i, j int) bool {
			return cols[i].Table == cols[j].Table
		},
	})
	// Every query column must land in its own cluster (same-table
	// constraint), so no cut below numQuery clusters is feasible.
	labels, k, score := cluster.BestCut(m, dend, numQuery, len(cols)-1)
	res.Silhouette = score

	for _, members := range cluster.Members(labels, k) {
		hasQuery := false
		for _, idx := range members {
			if cols[idx].IsQuery {
				hasQuery = true
				break
			}
		}
		if hasQuery {
			res.Clusters = append(res.Clusters, members)
		}
	}
	return res
}

// Bipartite aligns each data lake table to the query independently with
// maximum-weight bipartite matching over cosine similarity (the Starmie (B)
// baseline, §6.2.3). Matches below minSim are dropped.
func Bipartite(cols []Column, minSim float64) *Result {
	res := &Result{Cols: cols}
	var queryIdx []int
	byTable := map[string][]int{}
	var tableOrder []string
	for i, c := range cols {
		if c.IsQuery {
			queryIdx = append(queryIdx, i)
			continue
		}
		if _, ok := byTable[c.Table]; !ok {
			tableOrder = append(tableOrder, c.Table)
		}
		byTable[c.Table] = append(byTable[c.Table], i)
	}
	if len(queryIdx) == 0 {
		return res
	}
	clusters := make([][]int, len(queryIdx))
	for qi, idx := range queryIdx {
		clusters[qi] = []int{idx}
	}
	for _, tn := range tableOrder {
		tcols := byTable[tn]
		w := make([][]float64, len(queryIdx))
		for qi, q := range queryIdx {
			w[qi] = make([]float64, len(tcols))
			for ti, c := range tcols {
				sim := vector.Cosine(cols[q].Vec, cols[c].Vec)
				if sim > minSim {
					w[qi][ti] = sim
				}
			}
		}
		as, _ := match.MaxWeight(w)
		for _, a := range as {
			clusters[a.Left] = append(clusters[a.Left], tcols[a.Right])
		}
	}
	res.Clusters = clusters
	res.Silhouette = math.NaN()
	return res
}

// Mappings converts an alignment result into outer-union mappings: the
// target schema is the query's headers and each unionable table maps its
// aligned columns onto them (paper Example 3/4). Tables contributing no
// aligned column are still included (all-null rows are then filtered by the
// caller if desired).
func (r *Result) Mappings(query *table.Table, tables []*table.Table) ([]string, []table.Mapping, error) {
	headers := query.Headers()
	// clusterOf[ref] = query column index of the cluster containing ref.
	clusterOf := map[Ref]int{}
	for _, members := range r.Clusters {
		queryCol := -1
		for _, idx := range members {
			if r.Cols[idx].IsQuery {
				if queryCol != -1 {
					return nil, nil, fmt.Errorf("align: cluster has two query columns (%s and %s)",
						headers[queryCol], r.Cols[idx].Name)
				}
				queryCol = r.Cols[idx].Index
			}
		}
		if queryCol == -1 {
			continue
		}
		for _, idx := range members {
			if !r.Cols[idx].IsQuery {
				clusterOf[Ref{r.Cols[idx].Table, r.Cols[idx].Index}] = queryCol
			}
		}
	}
	var mappings []table.Mapping
	for _, t := range tables {
		m := table.Mapping{Source: t, TargetToSource: make([]int, len(headers))}
		for i := range m.TargetToSource {
			m.TargetToSource[i] = -1
		}
		for ci := 0; ci < t.NumCols(); ci++ {
			if q, ok := clusterOf[Ref{t.Name, ci}]; ok {
				m.TargetToSource[q] = ci
			}
		}
		mappings = append(mappings, m)
	}
	return headers, mappings, nil
}
