package align

import (
	"dust/internal/table"
)

// pairKey canonically encodes an alignment pair (or a no-match singleton,
// encoded as a self-pair) for set comparison.
type pairKey struct {
	a, b Ref
}

func mkPair(a, b Ref) pairKey {
	if b.Table < a.Table || (b.Table == a.Table && b.Index < a.Index) {
		a, b = b, a
	}
	return pairKey{a, b}
}

// pairsFromClusters expands clusters into the paper's pair representation
// (§6.2.2): query-to-lake pairs, lake-to-lake pairs within a cluster, and a
// self-pair for every query column with no aligned lake column.
func pairsFromClusters(cols []Column, clusters [][]int) map[pairKey]bool {
	out := map[pairKey]bool{}
	for _, members := range clusters {
		refs := make([]Ref, len(members))
		for i, idx := range members {
			refs[i] = Ref{cols[idx].Table, cols[idx].Index}
		}
		if len(members) == 1 && cols[members[0]].IsQuery {
			out[mkPair(refs[0], refs[0])] = true
			continue
		}
		for i := 0; i < len(refs); i++ {
			for j := i + 1; j < len(refs); j++ {
				out[mkPair(refs[i], refs[j])] = true
			}
		}
	}
	return out
}

// GroundTruth builds the true alignment pair set for a query and its
// unionable tables from per-column origin ids (datagen ground truth): a
// lake column aligns with a query column iff their origin ids are equal.
func GroundTruth(query *table.Table, tables []*table.Table, origins map[string][]string) map[pairKey]bool {
	out := map[pairKey]bool{}
	qOrigins := origins[query.Name]
	for qi := 0; qi < query.NumCols(); qi++ {
		group := []Ref{{query.Name, qi}}
		for _, t := range tables {
			tOrigins := origins[t.Name]
			for ci := 0; ci < t.NumCols(); ci++ {
				if ci < len(tOrigins) && qi < len(qOrigins) && tOrigins[ci] == qOrigins[qi] {
					group = append(group, Ref{t.Name, ci})
				}
			}
		}
		if len(group) == 1 {
			out[mkPair(group[0], group[0])] = true
			continue
		}
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				out[mkPair(group[i], group[j])] = true
			}
		}
	}
	return out
}

// Metrics holds precision, recall, and F1.
type Metrics struct {
	Precision, Recall, F1 float64
}

// Evaluate scores an alignment result against ground truth using the
// paper's pair-set precision/recall/F1 (§6.2.2).
func Evaluate(r *Result, truth map[pairKey]bool) Metrics {
	method := pairsFromClusters(r.Cols, r.Clusters)
	inter := 0
	for p := range method {
		if truth[p] {
			inter++
		}
	}
	var m Metrics
	if len(method) > 0 {
		m.Precision = float64(inter) / float64(len(method))
	}
	if len(truth) > 0 {
		m.Recall = float64(inter) / float64(len(truth))
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}
