package align

import (
	"math"
	"testing"

	"dust/internal/datagen"
	"dust/internal/embed"
	"dust/internal/table"
)

// fig1 builds the paper's Fig. 1 scenario: parks query, one near-copy
// table, one table with renamed columns plus an extra Phone column, and
// (for search tests) the paintings table is unrelated so it's not passed.
func fig1() (*table.Table, []*table.Table) {
	q := table.New("query", "Park Name", "Supervisor", "City", "Country")
	q.MustAppendRow("River Park", "Vera Onate", "Fresno", "USA")
	q.MustAppendRow("West Lawn Park", "Paul Veliotis", "Chicago", "USA")
	q.MustAppendRow("Hyde Park", "Jenny Rishi", "London", "UK")

	b := table.New("table_b", "Park Name", "Supervisor", "Country")
	b.MustAppendRow("River Park", "Vera Onate", "USA")
	b.MustAppendRow("West Lawn Park", "Paul Veliotis", "USA")
	b.MustAppendRow("Hyde Park", "Jenny Rishi", "UK")

	d := table.New("table_d", "Park Name", "Park City", "Park Country", "Park Phone", "Supervised by")
	d.MustAppendRow("Chippewa Park", "Brandon, MN", "USA", "773 731-0380", "Tim Erickson")
	d.MustAppendRow("Lawler Park", "Chicago, IL", "USA", "773 284-7328", "Enrique Garcia")
	d.MustAppendRow("Cedar Grove", "Austin, TX", "USA", "773 555-0199", "Maria Silva")
	return q, []*table.Table{b, d}
}

func TestEmbedColumnsUniverse(t *testing.T) {
	q, tabs := fig1()
	cols := EmbedColumns(q, tabs, embed.ColumnLevel{Model: embed.NewRoBERTa()})
	if len(cols) != 4+3+5 {
		t.Fatalf("universe size = %d, want 12", len(cols))
	}
	queries := 0
	for _, c := range cols {
		if c.IsQuery {
			queries++
		}
		if len(c.Vec) == 0 {
			t.Fatalf("column %s.%s has empty embedding", c.Table, c.Name)
		}
	}
	if queries != 4 {
		t.Errorf("query columns = %d, want 4", queries)
	}
}

func TestHolisticAlignsFig1(t *testing.T) {
	q, tabs := fig1()
	cols := EmbedColumns(q, tabs, embed.ColumnLevel{Model: embed.NewRoBERTa()})
	res := Holistic(cols)
	if len(res.Clusters) == 0 || len(res.Clusters) > 4 {
		t.Fatalf("clusters = %d, want 1..4 (one per query column at most)", len(res.Clusters))
	}
	// No cluster may contain two columns of the same table.
	for _, members := range res.Clusters {
		seen := map[string]bool{}
		for _, idx := range members {
			if seen[res.Cols[idx].Table] {
				t.Fatalf("cluster contains two columns of table %s", res.Cols[idx].Table)
			}
			seen[res.Cols[idx].Table] = true
		}
	}
	// Every cluster must contain exactly one query column.
	for _, members := range res.Clusters {
		nq := 0
		for _, idx := range members {
			if res.Cols[idx].IsQuery {
				nq++
			}
		}
		if nq != 1 {
			t.Fatalf("cluster has %d query columns, want 1", nq)
		}
	}
}

func TestHolisticMappingsProduceFig1Union(t *testing.T) {
	q, tabs := fig1()
	cols := EmbedColumns(q, tabs, embed.ColumnLevel{Model: embed.NewRoBERTa()})
	res := Holistic(cols)
	headers, mappings, err := res.Mappings(q, tabs)
	if err != nil {
		t.Fatal(err)
	}
	if len(headers) != 4 {
		t.Fatalf("headers = %v", headers)
	}
	u, prov, err := table.OuterUnion("unioned", headers, mappings)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumRows() != 6 {
		t.Errorf("unioned rows = %d, want 6", u.NumRows())
	}
	if len(prov) != 6 {
		t.Errorf("provenance = %d entries", len(prov))
	}
	// The Park Name column must carry park names from both tables. Find the
	// Park Name target index.
	pn := u.ColumnIndex("Park Name")
	if pn < 0 {
		t.Fatal("no Park Name column in union")
	}
	names := map[string]bool{}
	for i := 0; i < u.NumRows(); i++ {
		names[u.Cell(i, pn)] = true
	}
	if !names["River Park"] || !names["Chippewa Park"] {
		t.Errorf("Park Name column missing expected values: %v", names)
	}
}

func TestBipartiteRespectsStructure(t *testing.T) {
	q, tabs := fig1()
	cols := EmbedColumns(q, tabs, embed.ColumnLevel{Model: embed.NewRoBERTa()})
	res := Bipartite(cols, 0.0)
	if len(res.Clusters) != 4 {
		t.Fatalf("bipartite clusters = %d, want 4 (one per query column)", len(res.Clusters))
	}
	// At most one column per table per cluster (matching guarantees it).
	for _, members := range res.Clusters {
		seen := map[string]bool{}
		for _, idx := range members {
			if seen[res.Cols[idx].Table] {
				t.Fatal("bipartite cluster contains two columns of one table")
			}
			seen[res.Cols[idx].Table] = true
		}
	}
	if !math.IsNaN(res.Silhouette) {
		t.Error("bipartite silhouette should be NaN")
	}
}

func TestGroundTruthAndEvaluateOnGenerated(t *testing.T) {
	b := datagen.Generate("align-test", datagen.Config{
		Seed: 61, Domains: 3, TablesPerBase: 4, BaseRows: 40, MinRows: 10, MaxRows: 20, RenameProb: 0.3,
	})
	q := b.Queries[0]
	var tabs []*table.Table
	for _, n := range b.Unionable[q.Name] {
		tabs = append(tabs, b.Lake.Get(n))
	}
	truth := GroundTruth(q, tabs, b.Origins)
	if len(truth) == 0 {
		t.Fatal("empty ground truth")
	}

	cols := EmbedColumns(q, tabs, embed.ColumnLevel{Model: embed.NewRoBERTa()})
	res := Holistic(cols)
	m := Evaluate(res, truth)
	if m.F1 < 0.5 {
		t.Errorf("holistic RoBERTa F1 = %v on easy generated benchmark, want >= 0.5", m.F1)
	}
	if m.Precision < 0 || m.Precision > 1 || m.Recall < 0 || m.Recall > 1 {
		t.Errorf("metrics out of range: %+v", m)
	}
}

func TestPerfectAlignmentScoresOne(t *testing.T) {
	// Build a synthetic result that exactly matches ground truth.
	q := table.New("q", "A", "B")
	q.MustAppendRow("x", "y")
	t1 := table.New("t1", "A", "B")
	t1.MustAppendRow("x", "y")
	origins := map[string][]string{
		"q":  {"base.A", "base.B"},
		"t1": {"base.A", "base.B"},
	}
	truth := GroundTruth(q, []*table.Table{t1}, origins)
	cols := []Column{
		{Table: "q", Index: 0, Name: "A", IsQuery: true},
		{Table: "q", Index: 1, Name: "B", IsQuery: true},
		{Table: "t1", Index: 0, Name: "A"},
		{Table: "t1", Index: 1, Name: "B"},
	}
	res := &Result{Cols: cols, Clusters: [][]int{{0, 2}, {1, 3}}}
	m := Evaluate(res, truth)
	if m.Precision != 1 || m.Recall != 1 || m.F1 != 1 {
		t.Errorf("perfect alignment metrics = %+v, want all 1", m)
	}
}

func TestNoMatchQueryColumnsInGroundTruth(t *testing.T) {
	q := table.New("q", "A", "Unmatched")
	q.MustAppendRow("x", "z")
	t1 := table.New("t1", "A")
	t1.MustAppendRow("x")
	origins := map[string][]string{
		"q":  {"base.A", "base.Z"},
		"t1": {"base.A"},
	}
	truth := GroundTruth(q, []*table.Table{t1}, origins)
	// Expect pair (q.A, t1.A) and self-pair (q.Unmatched).
	if len(truth) != 2 {
		t.Fatalf("ground truth size = %d, want 2", len(truth))
	}
	self := mkPair(Ref{"q", 1}, Ref{"q", 1})
	if !truth[self] {
		t.Error("missing self-pair for unmatched query column")
	}
}

func TestStarmieEncodersProduceUniverse(t *testing.T) {
	q, tabs := fig1()
	cols := EmbedColumnsStarmie(q, tabs, embed.NewStarmie())
	if len(cols) != 12 {
		t.Fatalf("starmie universe = %d, want 12", len(cols))
	}
	res := Holistic(cols)
	for _, members := range res.Clusters {
		seen := map[string]bool{}
		for _, idx := range members {
			if seen[res.Cols[idx].Table] {
				t.Fatal("starmie holistic cluster violates same-table constraint")
			}
			seen[res.Cols[idx].Table] = true
		}
	}
}

func TestMappingsHandlesUnalignedTables(t *testing.T) {
	q, tabs := fig1()
	cols := EmbedColumns(q, tabs, embed.ColumnLevel{Model: embed.NewRoBERTa()})
	res := Holistic(cols)
	// Add a table that was never aligned (no columns in any cluster).
	extra := table.New("extra", "Zzz")
	extra.MustAppendRow("1")
	headers, mappings, err := res.Mappings(q, append(tabs, extra))
	if err != nil {
		t.Fatal(err)
	}
	if len(mappings) != 3 {
		t.Fatalf("mappings = %d, want 3", len(mappings))
	}
	last := mappings[2]
	for _, src := range last.TargetToSource {
		if src != -1 {
			t.Error("unaligned table mapped a column")
		}
	}
	if len(headers) != 4 {
		t.Errorf("headers = %v", headers)
	}
}
