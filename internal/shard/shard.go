// Package shard partitions a data lake into N independent sub-indexes and
// serves queries by scatter-gather: a deterministic hash assigns every
// table to one shard, each shard owns its own searcher (and, in ANN mode,
// its own HNSW graph) over its own sub-lake, queries fan out across the
// shards in parallel, each shard answers with its local top candidates
// scored exactly, and the gather stage re-ranks the union under the global
// score order. Because every shard scores with the exact scorer — against
// one corpus shared by all shards, for the TF-IDF-sensitive Starmie index
// — the merged exact-mode ranking is bit-identical to an unsharded scan,
// while the index itself becomes horizontally partitioned: shards build,
// persist, mutate, and clone independently, which is the substrate for
// spreading a lake across processes or machines.
package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"

	"dust/internal/embed"
	"dust/internal/lake"
	"dust/internal/par"
	"dust/internal/search"
	"dust/internal/table"
	"dust/internal/tokenize"
)

// Searcher kinds a shard set can be built from; the value is what index
// manifests record.
const (
	KindStarmie = "starmie"
	KindD3L     = "d3l"
)

// Typed failures of the sharding layer.
var (
	// ErrUnknownKind reports a shard-set construction for a searcher kind
	// this package does not shard.
	ErrUnknownKind = errors.New("shard: unknown searcher kind")
	// ErrLayoutMismatch reports Assemble parts that do not partition the
	// full lake exactly (a table missing, duplicated, or unknown).
	ErrLayoutMismatch = errors.New("shard: parts do not partition the lake")
)

// Assign returns the owning shard of a table name under n shards: FNV-1a of
// the name modulo n. The assignment depends only on (name, n), so every
// process sharding the same lake the same way routes a table identically —
// no coordination state to persist beyond the shard count.
func Assign(name string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(n))
}

// Partition splits l into n sub-lakes by Assign, preserving l's iteration
// order within each shard. Sub-lakes share l's table objects (which nothing
// mutates after insertion), so partitioning costs O(tables), not O(cells).
func Partition(l *lake.Lake, n int) []*lake.Lake {
	if n < 1 {
		n = 1
	}
	subs := make([]*lake.Lake, n)
	for i := range subs {
		subs[i] = lake.New(fmt.Sprintf("%s#%d", l.Name, i))
	}
	for _, t := range l.Tables() {
		subs[Assign(t.Name, n)].MustAdd(t)
	}
	return subs
}

// Config shapes shard-set construction.
type Config struct {
	// Workers bounds both the per-shard indexing/scoring parallelism and
	// the width of the query scatter; <= 0 derives the bound from
	// GOMAXPROCS and 1 forces the sequential path. Results are
	// bit-identical for every setting.
	Workers int
	// Mode selects the retrieval backend every shard starts in (default
	// search.Exact). Equivalent to SetMode right after construction.
	Mode search.Mode
}

// Searcher is a sharded table-union searcher: search.Searcher backed by N
// independent per-shard indexes. It implements the full searcher surface
// the pipeline composes against — ContextSearcher, Staged, Incremental,
// QueryBounded, Cloner — by scattering to the shards and merging, so a
// dust.Pipeline (and everything above it: persistence, serving, snapshot
// swaps) treats a shard set exactly like a monolithic index.
type Searcher struct {
	kind     string
	full     *lake.Lake
	sublakes []*lake.Lake
	subs     []search.Searcher
	// corpus is the one TF-IDF corpus shared by every Starmie shard. It
	// covers the FULL lake, so per-shard embeddings — and therefore
	// per-shard exact scores — are bit-identical to an unsharded index's;
	// without it, each shard's document frequencies would drift from the
	// global statistics and the merged ranking would diverge from the
	// unsharded one whenever a column exceeds the encoder token budget.
	// nil for corpus-insensitive kinds (D3L).
	corpus  *tokenize.Corpus
	workers int
	mode    search.Mode
	// Oversample sizes the per-shard gather: each shard returns its local
	// top ceil(Oversample*k) for a top-k query before the merge re-rank.
	// Exact mode needs only k per shard for a correct merge; the slack
	// exists for ANN mode, where a wider local pool buys recall at the
	// cost of more exact re-scoring.
	Oversample float64
}

// NewStarmie builds a Starmie shard set over l with n shards: one global
// corpus pass over the full lake (identical document statistics to an
// unsharded build), then one Starmie index per sub-lake embedded against
// that shared corpus.
func NewStarmie(l *lake.Lake, n int, cfg Config) *Searcher {
	corpus := &tokenize.Corpus{}
	for _, t := range l.Tables() {
		for i := range t.Columns {
			corpus.AddDocument(embed.ColumnTokens(&t.Columns[i]))
		}
	}
	s := newSearcher(KindStarmie, l, n, cfg)
	s.corpus = corpus
	for i, sl := range s.sublakes {
		s.subs[i] = search.NewStarmie(sl,
			search.WithWorkers(cfg.Workers), search.WithSharedCorpus(corpus))
	}
	s.finish(cfg)
	return s
}

// NewD3L builds a D3L shard set over l with n shards. D3L's five signals
// are all per-column (no cross-table statistics), so shards need no shared
// state and per-shard scores equal the unsharded ones by construction.
func NewD3L(l *lake.Lake, n int, cfg Config) *Searcher {
	s := newSearcher(KindD3L, l, n, cfg)
	for i, sl := range s.sublakes {
		s.subs[i] = search.NewD3L(sl, search.WithWorkers(cfg.Workers))
	}
	s.finish(cfg)
	return s
}

// newSearcher allocates the shard frame: partitioned sub-lakes and empty
// searcher slots for the kind-specific constructors to fill.
func newSearcher(kind string, l *lake.Lake, n int, cfg Config) *Searcher {
	if n < 1 {
		n = 1
	}
	return &Searcher{
		kind:       kind,
		full:       l,
		sublakes:   Partition(l, n),
		subs:       make([]search.Searcher, n),
		workers:    cfg.Workers,
		Oversample: search.DefaultOversample,
	}
}

// finish applies the construction-time retrieval mode once every shard
// index exists.
func (s *Searcher) finish(cfg Config) {
	if cfg.Mode != search.Exact {
		// The modes Config can express never fail SetMode; a bogus numeric
		// Mode falls back to the exact scan, mirroring search.WithMode.
		_ = s.SetMode(cfg.Mode)
	}
}

// Part pairs one shard's sub-lake with its loaded searcher; Assemble
// reconstitutes a shard set from them on the warm-start path.
type Part struct {
	Lake     *lake.Lake
	Searcher search.Searcher
}

// Assemble reconstitutes a sharded searcher from independently loaded
// parts — the warm-start dual of NewStarmie/NewD3L. The parts must
// partition full exactly (every lake table in exactly one part) and each
// part's searcher must match kind; violations return ErrLayoutMismatch or
// ErrUnknownKind. For Starmie, every shard is rebound to part 0's restored
// corpus so the set again shares one global TF-IDF state (each saved shard
// recorded the identical full-lake corpus, so any part's restore works).
func Assemble(full *lake.Lake, kind string, parts []Part, cfg Config) (*Searcher, error) {
	if kind != KindStarmie && kind != KindD3L {
		return nil, fmt.Errorf("%w: %q", ErrUnknownKind, kind)
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("%w: no parts", ErrLayoutMismatch)
	}
	s := &Searcher{
		kind:       kind,
		full:       full,
		sublakes:   make([]*lake.Lake, len(parts)),
		subs:       make([]search.Searcher, len(parts)),
		workers:    cfg.Workers,
		Oversample: search.DefaultOversample,
	}
	seen := 0
	for i, p := range parts {
		for _, name := range p.Lake.Names() {
			t := full.Get(name)
			if t == nil || t != p.Lake.Get(name) {
				return nil, fmt.Errorf("%w: shard %d holds %q, the lake does not", ErrLayoutMismatch, i, name)
			}
			seen++
		}
		switch kind {
		case KindStarmie:
			if _, ok := p.Searcher.(*search.Starmie); !ok {
				return nil, fmt.Errorf("%w: shard %d is %T, want %s", ErrLayoutMismatch, i, p.Searcher, kind)
			}
		case KindD3L:
			if _, ok := p.Searcher.(*search.D3L); !ok {
				return nil, fmt.Errorf("%w: shard %d is %T, want %s", ErrLayoutMismatch, i, p.Searcher, kind)
			}
		}
		s.sublakes[i], s.subs[i] = p.Lake, p.Searcher
	}
	// Every part table exists in the lake and sub-lakes cannot hold
	// duplicates internally, so seen == full.Len() iff the parts cover the
	// lake exactly once (a cross-part duplicate would overshoot only if
	// another table were missing — both are layout corruption).
	if seen != full.Len() {
		return nil, fmt.Errorf("%w: parts hold %d tables, lake holds %d", ErrLayoutMismatch, seen, full.Len())
	}
	dup := make(map[string]bool, full.Len())
	for _, sl := range s.sublakes {
		for _, name := range sl.Names() {
			if dup[name] {
				return nil, fmt.Errorf("%w: table %q in two shards", ErrLayoutMismatch, name)
			}
			dup[name] = true
		}
	}
	if kind == KindStarmie {
		s.corpus = s.subs[0].(*search.Starmie).Corpus()
		for _, sub := range s.subs {
			sub.(*search.Starmie).AdoptSharedCorpus(s.corpus)
		}
	}
	s.mode = s.shardMode()
	return s, nil
}

// shardMode reads the retrieval mode the shards are actually in (uniform
// by construction; Assemble trusts shard 0).
func (s *Searcher) shardMode() search.Mode {
	if st, ok := s.subs[0].(search.Staged); ok {
		return st.RetrievalMode()
	}
	return search.Exact
}

// NumShards returns the shard count.
func (s *Searcher) NumShards() int { return len(s.subs) }

// Kind names the per-shard searcher family (KindStarmie or KindD3L), the
// value index manifests record.
func (s *Searcher) Kind() string { return s.kind }

// Shard exposes shard i's searcher; the persistence layer saves each shard
// through it.
func (s *Searcher) Shard(i int) search.Searcher { return s.subs[i] }

// ShardTables returns every shard's table names in sub-lake iteration
// order — the shard map an index manifest records and a warm start rebuilds
// the partition from.
func (s *Searcher) ShardTables() [][]string {
	out := make([][]string, len(s.sublakes))
	for i, sl := range s.sublakes {
		out[i] = sl.Names()
	}
	return out
}

// SaveShard writes shard i's index through its kind's codec.
func (s *Searcher) SaveShard(i int, w io.Writer) error {
	switch sub := s.subs[i].(type) {
	case *search.Starmie:
		return sub.Save(w)
	case *search.D3L:
		return sub.Save(w)
	}
	return fmt.Errorf("%w: shard %d is %T", ErrUnknownKind, i, s.subs[i])
}

// Name implements search.Searcher. The shard count and the sub-searcher
// name (which carries the +ann suffix in ANN mode) both shape rankings, so
// both belong in the name — config tags, and the serving caches keyed by
// them, stay distinct across layouts and modes.
func (s *Searcher) Name() string {
	return fmt.Sprintf("sharded%d(%s)", len(s.subs), s.subs[0].Name())
}

// TopK implements search.Searcher.
func (s *Searcher) TopK(query *table.Table, k int) []search.Scored {
	out, _ := s.TopKContext(context.Background(), query, k)
	return out
}

// TopKContext implements search.ContextSearcher as scatter-gather: the
// query fans out across every shard over a bounded par pool, each shard
// answers with its local top ceil(Oversample*k) exactly-scored hits
// (k <= 0 asks each shard for its full ranking), and the gather re-ranks
// the union under the global (score desc, name asc) order — the same total
// order the unsharded scorer applies, which with the shared corpus makes
// the exact-mode merge bit-identical to an unsharded scan. Cancelling ctx
// abandons the remaining shards and returns ctx.Err().
func (s *Searcher) TopKContext(ctx context.Context, query *table.Table, k int) ([]search.Scored, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	limit := k
	if k > 0 {
		limit = int(math.Ceil(s.Oversample * float64(k)))
	}
	hits := make([][]search.Scored, len(s.subs))
	errs := make([]error, len(s.subs))
	pool := par.NewPool(s.workers)
	defer pool.Close()
	for i := range s.subs {
		i := i
		pool.Submit(func() {
			hits[i], errs[i] = search.TopKCtx(ctx, s.subs[i], query, limit)
		})
	}
	pool.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return mergeHits(hits, k), nil
}

// mergeHits is the gather stage: the union of the shards' local rankings,
// re-ranked by (score desc, name asc) and truncated to k. Table names are
// unique lake-wide, so the order is total and the merge deterministic for
// every worker count and shard count.
func mergeHits(hits [][]search.Scored, k int) []search.Scored {
	var all []search.Scored
	for _, h := range hits {
		all = append(all, h...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Table.Name < all[j].Table.Name
	})
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

// SetMode implements search.Staged by fanning the mode to every shard:
// entering ANN builds one HNSW graph per Starmie shard (or is a no-op for
// shards that already carry one, e.g. after a warm start).
func (s *Searcher) SetMode(m search.Mode) error {
	if m != search.Exact && m != search.ANN {
		return fmt.Errorf("shard: SetMode(%d): %w", int(m), search.ErrUnknownMode)
	}
	for _, sub := range s.subs {
		if st, ok := sub.(search.Staged); ok {
			if err := st.SetMode(m); err != nil {
				return err
			}
		}
	}
	s.mode = m
	return nil
}

// RetrievalMode implements search.Staged.
func (s *Searcher) RetrievalMode() search.Mode { return s.mode }

// Retriever implements search.Staged: the candidate stage is the union of
// every shard's own retrieval stage.
func (s *Searcher) Retriever() search.Retriever { return scatterRetriever{s} }

// scatterRetriever adapts the per-shard candidate stages to the Retriever
// interface: candidates are the union of each shard's nominees,
// name-sorted for determinism.
type scatterRetriever struct{ s *Searcher }

func (r scatterRetriever) Name() string {
	if st, ok := r.s.subs[0].(search.Staged); ok {
		return "scatter(" + st.Retriever().Name() + ")"
	}
	return "scatter"
}

func (r scatterRetriever) Retrieve(ctx context.Context, query *table.Table, limit int) ([]string, error) {
	seen := make(map[string]bool)
	for _, sub := range r.s.subs {
		st, ok := sub.(search.Staged)
		if !ok {
			return nil, fmt.Errorf("%w: %T is not staged", ErrUnknownKind, sub)
		}
		names, err := st.Retriever().Retrieve(ctx, query, limit)
		if err != nil {
			return nil, err
		}
		for _, n := range names {
			seen[n] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// owner returns the index of the shard holding name, or -1. Removals route
// by membership rather than re-deriving Assign so a layout loaded from a
// manifest keeps working even if the assignment policy evolves.
func (s *Searcher) owner(name string) int {
	for i, sl := range s.sublakes {
		if sl.Get(name) != nil {
			return i
		}
	}
	return -1
}

// AddTable implements search.Incremental: the table routes to its
// hash-assigned shard, whose index absorbs it as a delta update. For
// Starmie the shared corpus gains the table's column documents first —
// exactly when an unsharded AddTable would — and every OTHER shard then
// refreshes its corpus-sensitive embeddings, so all shards keep scoring
// against the same global statistics a from-scratch unsharded index over
// the grown lake would hold.
func (s *Searcher) AddTable(t *table.Table) error {
	if s.owner(t.Name) >= 0 {
		return fmt.Errorf("shard: AddTable(%q): %w", t.Name, search.ErrDuplicateTable)
	}
	o := Assign(t.Name, len(s.subs))
	inc, ok := s.subs[o].(search.Incremental)
	if !ok {
		return fmt.Errorf("%w: shard %d is %T", ErrUnknownKind, o, s.subs[o])
	}
	if err := s.sublakes[o].Add(t); err != nil {
		return err
	}
	if s.corpus != nil {
		for i := range t.Columns {
			s.corpus.AddDocument(embed.ColumnTokens(&t.Columns[i]))
		}
	}
	if err := inc.AddTable(t); err != nil {
		// Roll the shared state back so a refused table leaves no trace.
		if s.corpus != nil {
			for i := range t.Columns {
				s.corpus.RemoveDocument(embed.ColumnTokens(&t.Columns[i]))
			}
		}
		_ = s.sublakes[o].Remove(t.Name)
		return err
	}
	s.refreshOthers(o)
	return nil
}

// RemoveTable implements search.Incremental, routing to the owning shard
// and (for Starmie) retiring the table's documents from the shared corpus
// before the shard un-indexes, so the owner's own refresh already sees the
// post-removal statistics; the remaining shards refresh afterwards.
func (s *Searcher) RemoveTable(name string) error {
	o := s.owner(name)
	if o < 0 {
		return fmt.Errorf("shard: RemoveTable(%q): %w", name, search.ErrUnknownTable)
	}
	inc, ok := s.subs[o].(search.Incremental)
	if !ok {
		return fmt.Errorf("%w: shard %d is %T", ErrUnknownKind, o, s.subs[o])
	}
	t := s.sublakes[o].Get(name)
	if s.corpus != nil {
		for i := range t.Columns {
			s.corpus.RemoveDocument(embed.ColumnTokens(&t.Columns[i]))
		}
	}
	if err := inc.RemoveTable(name); err != nil {
		if s.corpus != nil {
			for i := range t.Columns {
				s.corpus.AddDocument(embed.ColumnTokens(&t.Columns[i]))
			}
		}
		return err
	}
	_ = s.sublakes[o].Remove(name)
	s.refreshOthers(o)
	return nil
}

// refreshOthers re-embeds corpus-sensitive tables on every shard except
// the one that just mutated (its own AddTable/RemoveTable already
// refreshed). Only Starmie shards carry corpus-sensitive state.
func (s *Searcher) refreshOthers(mutated int) {
	if s.corpus == nil {
		return
	}
	for i, sub := range s.subs {
		if i == mutated {
			continue
		}
		sub.(*search.Starmie).RefreshBig()
	}
}

// QueryWorkers implements search.QueryBounded: the returned searcher
// shares every shard's immutable index and bounds both the scatter width
// and each shard's scoring to n workers.
func (s *Searcher) QueryWorkers(n int) search.Searcher {
	c := *s
	c.workers = n
	c.subs = make([]search.Searcher, len(s.subs))
	for i, sub := range s.subs {
		if qb, ok := sub.(search.QueryBounded); ok {
			c.subs[i] = qb.QueryWorkers(n)
		} else {
			c.subs[i] = sub
		}
	}
	return &c
}

// CloneWithLake implements search.Cloner for snapshot-swapped serving: l
// must be a clone of the full lake holding the same table set. Every shard
// clones against a clone of its own sub-lake (heavy embedding state stays
// shared, per the sub-searchers' Clone contracts), and the Starmie shards
// are rebound to a single clone of the shared corpus so the new shard set
// again owns exactly one global TF-IDF state.
func (s *Searcher) CloneWithLake(l *lake.Lake) search.Searcher {
	c := *s
	c.full = l
	c.sublakes = make([]*lake.Lake, len(s.sublakes))
	c.subs = make([]search.Searcher, len(s.subs))
	if s.corpus != nil {
		c.corpus = s.corpus.Clone()
	}
	for i, sub := range s.subs {
		c.sublakes[i] = s.sublakes[i].Clone()
		c.subs[i] = sub.(search.Cloner).CloneWithLake(c.sublakes[i])
		if st, ok := c.subs[i].(*search.Starmie); ok {
			st.AdoptSharedCorpus(c.corpus)
		}
	}
	return &c
}
