// Package shard partitions a data lake into N independent sub-indexes and
// serves queries by scatter-gather: a deterministic hash assigns every
// table to one shard, each shard owns its own searcher (and, in ANN mode,
// its own HNSW graph) over its own sub-lake, queries fan out across the
// shards in parallel, and the gather stage merges the shards' answers
// under the global score order. Because every shard scores with the exact
// scorer — against one corpus shared by all shards, for the
// TF-IDF-sensitive Starmie index — the merged exact-mode ranking is
// bit-identical to an unsharded scan, while the index itself becomes
// horizontally partitioned: shards build, persist, mutate, and clone
// independently, which is the substrate for spreading a lake across
// processes or machines.
//
// The query path is built so sharding adds no per-query duplicate work:
//
//   - Encode once, scatter prepared. The query's representation (Starmie
//     column embeddings, D3L signatures and profiles) is derived exactly
//     once via search.PreparedSearcher and the prepared form fans out, so
//     shard count never multiplies encoding cost.
//   - Bounded gather. In exact mode each shard returns a truncated local
//     top list (k/n plus slack, never more than k) merged by a k-way heap;
//     a threshold-style bound then re-fetches only shards whose truncated
//     list could still change the global top k, so the merge stays exact
//     while the common case moves far fewer hits than k-per-shard.
//   - Candidate-only ANN. In ANN mode shards only nominate candidate names
//     from their retrieval structures; the exact re-scoring happens once,
//     globally, on the merged pool — not once per shard on oversampled
//     local pools.
//   - No per-query fixed costs. The scatter runs on one long-lived worker
//     pool owned by the shard family (see Close), not a pool built and
//     torn down per query.
package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dust/internal/embed"
	"dust/internal/lake"
	"dust/internal/par"
	"dust/internal/search"
	"dust/internal/table"
	"dust/internal/tokenize"
)

// Searcher kinds a shard set can be built from; the value is what index
// manifests record.
const (
	KindStarmie = "starmie"
	KindD3L     = "d3l"
)

// Gather-stage tuning. Both are slack on provably-sufficient bounds, so
// they trade a little extra per-shard work for fewer second rounds (exact)
// or higher first-pass recall (ANN); correctness of the exact merge never
// depends on them.
const (
	// gatherSlack widens the exact-mode first-round per-shard fetch beyond
	// the ceil(k/n) a perfectly uniform score distribution would need, so
	// mildly skewed lakes still finish in one round.
	gatherSlack = 8
	// annNominateSlack widens each shard's ANN nomination depth beyond its
	// proportional ceil(Oversample*k/n) share, so the merged candidate pool
	// keeps monolithic-grade recall even when one shard owns most of the
	// true neighbours.
	annNominateSlack = 4
)

// StageTimings accumulates per-stage wall time across sharded queries.
// Attach one with Searcher.Instrument; all fields are atomic so concurrent
// queries can share an accumulator. dustbench -shards reports these as
// encode/scatter/gather milliseconds per query.
type StageTimings struct {
	// Queries counts the TopK queries recorded.
	Queries atomic.Int64
	// EncodeNS is nanoseconds spent preparing the query representation
	// (the encode-once stage).
	EncodeNS atomic.Int64
	// ScatterNS is nanoseconds spent in per-shard fan-out work: local
	// top-k retrieval rounds in exact mode, candidate nomination in ANN
	// mode.
	ScatterNS atomic.Int64
	// GatherNS is nanoseconds spent merging: the k-way heap merge plus, in
	// ANN mode, the single global exact-scoring pass over the merged pool.
	GatherNS atomic.Int64
}

// scatterPool wraps the long-lived worker pool behind a shard family's
// query scatter. The wrapper — and thus the pool — is shared by the
// original searcher and every clone derived from it, so close must be
// idempotent: whichever family member is closed first releases the
// workers, later closes are no-ops.
type scatterPool struct {
	pool *par.Pool
	once sync.Once
}

func newScatterPool(workers int) *scatterPool {
	return &scatterPool{pool: par.NewPool(workers)}
}

func (p *scatterPool) close() { p.once.Do(p.pool.Close) }

// Typed failures of the sharding layer.
var (
	// ErrUnknownKind reports a shard-set construction for a searcher kind
	// this package does not shard.
	ErrUnknownKind = errors.New("shard: unknown searcher kind")
	// ErrLayoutMismatch reports Assemble parts that do not partition the
	// full lake exactly (a table missing, duplicated, or unknown).
	ErrLayoutMismatch = errors.New("shard: parts do not partition the lake")
)

// Assign returns the owning shard of a table name under n shards: FNV-1a of
// the name modulo n. The assignment depends only on (name, n), so every
// process sharding the same lake the same way routes a table identically —
// no coordination state to persist beyond the shard count.
func Assign(name string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(n))
}

// Partition splits l into n sub-lakes by Assign, preserving l's iteration
// order within each shard. Sub-lakes share l's table objects (which nothing
// mutates after insertion), so partitioning costs O(tables), not O(cells).
func Partition(l *lake.Lake, n int) []*lake.Lake {
	if n < 1 {
		n = 1
	}
	subs := make([]*lake.Lake, n)
	for i := range subs {
		subs[i] = lake.New(fmt.Sprintf("%s#%d", l.Name, i))
	}
	for _, t := range l.Tables() {
		subs[Assign(t.Name, n)].MustAdd(t)
	}
	return subs
}

// Config shapes shard-set construction.
type Config struct {
	// Workers bounds both the per-shard indexing/scoring parallelism and
	// the width of the query scatter; <= 0 derives the bound from
	// GOMAXPROCS and 1 forces the sequential path. Results are
	// bit-identical for every setting.
	Workers int
	// Mode selects the retrieval backend every shard starts in (default
	// search.Exact). Equivalent to SetMode right after construction.
	Mode search.Mode
	// Quantized selects SQ8 storage for the HNSW graphs the shards build
	// (search.WithQuantized per shard); graphs loaded from disk keep
	// their stored representation regardless.
	Quantized bool
}

// Searcher is a sharded table-union searcher: search.Searcher backed by N
// independent per-shard indexes. It implements the full searcher surface
// the pipeline composes against — ContextSearcher, Staged, Incremental,
// QueryBounded, Cloner — by scattering to the shards and merging, so a
// dust.Pipeline (and everything above it: persistence, serving, snapshot
// swaps) treats a shard set exactly like a monolithic index.
type Searcher struct {
	kind     string
	full     *lake.Lake
	sublakes []*lake.Lake
	subs     []search.Searcher
	// corpus is the one TF-IDF corpus shared by every Starmie shard. It
	// covers the FULL lake, so per-shard embeddings — and therefore
	// per-shard exact scores — are bit-identical to an unsharded index's;
	// without it, each shard's document frequencies would drift from the
	// global statistics and the merged ranking would diverge from the
	// unsharded one whenever a column exceeds the encoder token budget.
	// nil for corpus-insensitive kinds (D3L).
	corpus  *tokenize.Corpus
	workers int
	mode    search.Mode
	// pool runs the query scatter. It is created at construction, shared
	// with every clone (snapshot swaps reuse the same workers), and nil on
	// query-bounded views, which scatter inline instead — a serving request
	// must not pay goroutine spin-up, and must not leak pool workers.
	pool *scatterPool
	// timings, when non-nil, accumulates per-stage query wall time; see
	// Instrument.
	timings *StageTimings
	// Oversample sizes the ANN candidate pool for a top-k query: the
	// shards' nomination depths sum to about ceil(Oversample*k) before the
	// single global exact re-score. Exact mode ignores it — the bounded
	// gather derives its own per-shard limits, which correctness never
	// lets exceed k.
	Oversample float64
}

// NewStarmie builds a Starmie shard set over l with n shards: one global
// corpus pass over the full lake (identical document statistics to an
// unsharded build), then one Starmie index per sub-lake embedded against
// that shared corpus.
func NewStarmie(l *lake.Lake, n int, cfg Config) *Searcher {
	corpus := &tokenize.Corpus{}
	for _, t := range l.Tables() {
		for i := range t.Columns {
			corpus.AddDocument(embed.ColumnTokens(&t.Columns[i]))
		}
	}
	s := newSearcher(KindStarmie, l, n, cfg)
	s.corpus = corpus
	for i, sl := range s.sublakes {
		s.subs[i] = search.NewStarmie(sl,
			search.WithWorkers(cfg.Workers), search.WithSharedCorpus(corpus),
			search.WithQuantized(cfg.Quantized))
	}
	s.finish(cfg)
	return s
}

// NewD3L builds a D3L shard set over l with n shards. D3L's five signals
// are all per-column (no cross-table statistics), so shards need no shared
// state and per-shard scores equal the unsharded ones by construction.
func NewD3L(l *lake.Lake, n int, cfg Config) *Searcher {
	s := newSearcher(KindD3L, l, n, cfg)
	for i, sl := range s.sublakes {
		s.subs[i] = search.NewD3L(sl, search.WithWorkers(cfg.Workers))
	}
	s.finish(cfg)
	return s
}

// newSearcher allocates the shard frame: partitioned sub-lakes and empty
// searcher slots for the kind-specific constructors to fill.
func newSearcher(kind string, l *lake.Lake, n int, cfg Config) *Searcher {
	if n < 1 {
		n = 1
	}
	return &Searcher{
		kind:       kind,
		full:       l,
		sublakes:   Partition(l, n),
		subs:       make([]search.Searcher, n),
		workers:    cfg.Workers,
		pool:       newScatterPool(cfg.Workers),
		Oversample: search.DefaultOversample,
	}
}

// finish applies the construction-time retrieval mode once every shard
// index exists.
func (s *Searcher) finish(cfg Config) {
	if cfg.Mode != search.Exact {
		// The modes Config can express never fail SetMode; a bogus numeric
		// Mode falls back to the exact scan, mirroring search.WithMode.
		_ = s.SetMode(cfg.Mode)
	}
}

// Part pairs one shard's sub-lake with its loaded searcher; Assemble
// reconstitutes a shard set from them on the warm-start path.
type Part struct {
	Lake     *lake.Lake
	Searcher search.Searcher
}

// Assemble reconstitutes a sharded searcher from independently loaded
// parts — the warm-start dual of NewStarmie/NewD3L. The parts must
// partition full exactly (every lake table in exactly one part) and each
// part's searcher must match kind; violations return ErrLayoutMismatch or
// ErrUnknownKind. For Starmie, every shard is rebound to part 0's restored
// corpus so the set again shares one global TF-IDF state (each saved shard
// recorded the identical full-lake corpus, so any part's restore works).
func Assemble(full *lake.Lake, kind string, parts []Part, cfg Config) (*Searcher, error) {
	if kind != KindStarmie && kind != KindD3L {
		return nil, fmt.Errorf("%w: %q", ErrUnknownKind, kind)
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("%w: no parts", ErrLayoutMismatch)
	}
	s := &Searcher{
		kind:       kind,
		full:       full,
		sublakes:   make([]*lake.Lake, len(parts)),
		subs:       make([]search.Searcher, len(parts)),
		workers:    cfg.Workers,
		Oversample: search.DefaultOversample,
	}
	seen := 0
	for i, p := range parts {
		for _, name := range p.Lake.Names() {
			t := full.Get(name)
			if t == nil || t != p.Lake.Get(name) {
				return nil, fmt.Errorf("%w: shard %d holds %q, the lake does not", ErrLayoutMismatch, i, name)
			}
			seen++
		}
		switch kind {
		case KindStarmie:
			if _, ok := p.Searcher.(*search.Starmie); !ok {
				return nil, fmt.Errorf("%w: shard %d is %T, want %s", ErrLayoutMismatch, i, p.Searcher, kind)
			}
		case KindD3L:
			if _, ok := p.Searcher.(*search.D3L); !ok {
				return nil, fmt.Errorf("%w: shard %d is %T, want %s", ErrLayoutMismatch, i, p.Searcher, kind)
			}
		}
		s.sublakes[i], s.subs[i] = p.Lake, p.Searcher
	}
	// Every part table exists in the lake and sub-lakes cannot hold
	// duplicates internally, so seen == full.Len() iff the parts cover the
	// lake exactly once (a cross-part duplicate would overshoot only if
	// another table were missing — both are layout corruption).
	if seen != full.Len() {
		return nil, fmt.Errorf("%w: parts hold %d tables, lake holds %d", ErrLayoutMismatch, seen, full.Len())
	}
	dup := make(map[string]bool, full.Len())
	for _, sl := range s.sublakes {
		for _, name := range sl.Names() {
			if dup[name] {
				return nil, fmt.Errorf("%w: table %q in two shards", ErrLayoutMismatch, name)
			}
			dup[name] = true
		}
	}
	if kind == KindStarmie {
		s.corpus = s.subs[0].(*search.Starmie).Corpus()
		for _, sub := range s.subs {
			sub.(*search.Starmie).AdoptSharedCorpus(s.corpus)
		}
	}
	// The pool starts only once the layout is validated, so a rejected
	// Assemble leaks no worker goroutines.
	s.pool = newScatterPool(cfg.Workers)
	s.mode = s.shardMode()
	return s, nil
}

// shardMode reads the retrieval mode the shards are actually in (uniform
// by construction; Assemble trusts shard 0).
func (s *Searcher) shardMode() search.Mode {
	if st, ok := s.subs[0].(search.Staged); ok {
		return st.RetrievalMode()
	}
	return search.Exact
}

// NumShards returns the shard count.
func (s *Searcher) NumShards() int { return len(s.subs) }

// Kind names the per-shard searcher family (KindStarmie or KindD3L), the
// value index manifests record.
func (s *Searcher) Kind() string { return s.kind }

// Shard exposes shard i's searcher; the persistence layer saves each shard
// through it.
func (s *Searcher) Shard(i int) search.Searcher { return s.subs[i] }

// ShardTables returns every shard's table names in sub-lake iteration
// order — the shard map an index manifest records and a warm start rebuilds
// the partition from.
func (s *Searcher) ShardTables() [][]string {
	out := make([][]string, len(s.sublakes))
	for i, sl := range s.sublakes {
		out[i] = sl.Names()
	}
	return out
}

// SaveShard writes shard i's index through its kind's codec.
func (s *Searcher) SaveShard(i int, w io.Writer) error {
	switch sub := s.subs[i].(type) {
	case *search.Starmie:
		return sub.Save(w)
	case *search.D3L:
		return sub.Save(w)
	}
	return fmt.Errorf("%w: shard %d is %T", ErrUnknownKind, i, s.subs[i])
}

// Name implements search.Searcher. The shard count and the sub-searcher
// name (which carries the +ann suffix in ANN mode) both shape rankings, so
// both belong in the name — config tags, and the serving caches keyed by
// them, stay distinct across layouts and modes.
func (s *Searcher) Name() string {
	return fmt.Sprintf("sharded%d(%s)", len(s.subs), s.subs[0].Name())
}

// TopK implements search.Searcher.
func (s *Searcher) TopK(query *table.Table, k int) []search.Scored {
	out, _ := s.TopKContext(context.Background(), query, k)
	return out
}

// TopKContext implements search.ContextSearcher as prepared scatter-gather:
// the query representation is derived exactly once (search.PreparedSearcher)
// and fans out across every shard on the family's long-lived pool; the
// gather merges the shards' exactly-scored answers under the global (score
// desc, name asc) order — the same total order the unsharded scorer
// applies, which with the shared corpus makes the exact-mode merge
// bit-identical to an unsharded scan. Exact mode runs the bounded gather
// (per-shard limits near k/n, a threshold-style second round only for
// shards that might still matter); ANN mode runs the candidate-only plan
// (shards nominate, one global exact re-score). k <= 0 asks for the full
// ranking. Cancelling ctx abandons the remaining shards and returns
// ctx.Err().
func (s *Searcher) TopKContext(ctx context.Context, query *table.Table, k int) ([]search.Scored, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	subs, ok := s.preparedSubs()
	if !ok {
		// A shard kind without prepared-query support (none of the built-in
		// kinds) still works: whole-query scatter at per-shard limit k.
		return s.topKLegacy(ctx, query, k)
	}
	// The coordinator owns the per-request trace: encode maps to the
	// encode-once stage, scatter to retrieve, gather to score. Sub-searcher
	// calls get a masked context so the shards' own stage recording does not
	// double-count the same wall time.
	tr := search.TraceFrom(ctx)
	if tr != nil {
		ctx = search.WithTrace(ctx, nil)
	}
	t0 := time.Now()
	pq := subs[0].Prepare(query)
	encodeNS := time.Since(t0).Nanoseconds()
	if tr != nil {
		tr.EncodeNS.Add(encodeNS)
	}

	var hits []search.Scored
	var err error
	if noms, ok := s.nominatorSubs(); ok && s.mode == search.ANN && k > 0 {
		hits, err = s.topKANN(ctx, pq, noms, k, tr)
	} else {
		hits, err = s.topKExact(ctx, pq, subs, k, tr)
	}
	if s.timings != nil && err == nil {
		s.timings.Queries.Add(1)
		s.timings.EncodeNS.Add(encodeNS)
	}
	return hits, err
}

// preparedSubs returns every shard as a search.PreparedSearcher when the
// whole set supports the encode-once scatter (both built-in kinds do).
func (s *Searcher) preparedSubs() ([]search.PreparedSearcher, bool) {
	out := make([]search.PreparedSearcher, len(s.subs))
	for i, sub := range s.subs {
		ps, ok := sub.(search.PreparedSearcher)
		if !ok {
			return nil, false
		}
		out[i] = ps
	}
	return out, true
}

// nominatorSubs returns every shard as a search.PreparedNominator when the
// whole set supports the candidate-only ANN plan.
func (s *Searcher) nominatorSubs() ([]search.PreparedNominator, bool) {
	out := make([]search.PreparedNominator, len(s.subs))
	for i, sub := range s.subs {
		nom, ok := sub.(search.PreparedNominator)
		if !ok {
			return nil, false
		}
		out[i] = nom
	}
	return out, true
}

// runScatter runs fn(i) for i in [0, n) across the shard family's
// long-lived pool, or inline via par.For on pool-less query-bounded views
// (the serving path, where per-request goroutine spin-up is exactly the
// fixed cost this layer removes). Shards are handed to the pool in
// min(workers, n) contiguous chunks rather than one task per shard: extra
// tasks beyond the worker count cannot add parallelism, but each one costs
// an unbuffered-channel handoff (two context switches on a busy pool).
// Pool tasks from concurrent queries share the worker bound but never
// wait on each other (par.Pool.Run).
func (s *Searcher) runScatter(n int, fn func(i int)) {
	if s.pool == nil {
		par.For(s.workers, n, fn)
		return
	}
	chunks := par.Normalize(s.workers)
	if chunks > n {
		chunks = n
	}
	size := (n + chunks - 1) / chunks
	tasks := make([]func(), 0, chunks)
	for lo := 0; lo < n; lo += size {
		lo, hi := lo, lo+size
		if hi > n {
			hi = n
		}
		tasks = append(tasks, func() {
			for i := lo; i < hi; i++ {
				fn(i)
			}
		})
	}
	s.pool.pool.Run(tasks...)
}

// topKExact is the bounded gather. Round one asks every shard for its local
// top limit = min(k, ceil(k/n)+gatherSlack) (exact mode with several
// shards; otherwise limit = k). The merged top k is final for every shard
// whose list was exhausted (shorter than limit) or whose last returned hit
// ranks at or below the merged k-th — any unseen hit on such a shard ranks
// strictly after that last hit, so it cannot displace the current top k.
// Only the remaining "open" shards are re-fetched, at limit k, which closes
// them for good: a shard that returned k hits cannot hold an unseen hit in
// the global top k (its k seen hits would all have to rank above it,
// overfilling the top k). One second round therefore always suffices, and
// the result is bit-identical to an unsharded scan. k <= 0 requests the
// full ranking from every shard in one round.
func (s *Searcher) topKExact(ctx context.Context, pq search.PreparedQuery, subs []search.PreparedSearcher, k int, tr *search.Trace) ([]search.Scored, error) {
	n := len(subs)
	limit := k
	if k > 0 {
		if s.mode == search.Exact && n > 1 {
			if l := (k+n-1)/n + gatherSlack; l < k {
				limit = l
			}
		} else if s.mode != search.Exact {
			// ANN fallback (a shard kind that prepares but cannot nominate):
			// per-shard candidate pools are approximate, so the threshold
			// bound does not apply; keep the oversampled single round.
			limit = int(math.Ceil(s.Oversample * float64(k)))
		}
	}
	tScatter := time.Now()
	hits := make([][]search.Scored, n)
	errs := make([]error, n)
	s.runScatter(n, func(i int) {
		hits[i], errs[i] = subs[i].TopKPrepared(ctx, pq, limit)
	})
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	scatterNS := time.Since(tScatter).Nanoseconds()

	tGather := time.Now()
	merged := mergeHits(hits, k)
	gatherNS := time.Since(tGather).Nanoseconds()

	if k > 0 && limit < k {
		var open []int
		for i, h := range hits {
			if len(h) == limit && (len(merged) < k || hitLess(h[len(h)-1], merged[len(merged)-1])) {
				open = append(open, i)
			}
		}
		if len(open) > 0 {
			t2 := time.Now()
			more := make([][]search.Scored, len(open))
			errs2 := make([]error, len(open))
			s.runScatter(len(open), func(i int) {
				more[i], errs2[i] = subs[open[i]].TopKPrepared(ctx, pq, k)
			})
			if err := errors.Join(errs2...); err != nil {
				return nil, err
			}
			scatterNS += time.Since(t2).Nanoseconds()
			t3 := time.Now()
			for i, o := range open {
				hits[o] = more[i]
			}
			merged = mergeHits(hits, k)
			gatherNS += time.Since(t3).Nanoseconds()
		}
	}
	if s.timings != nil {
		s.timings.ScatterNS.Add(scatterNS)
		s.timings.GatherNS.Add(gatherNS)
	}
	if tr != nil {
		tr.RetrieveNS.Add(scatterNS)
		tr.ScoreNS.Add(gatherNS)
	}
	return merged, nil
}

// topKANN is the candidate-only ANN plan: every shard nominates its local
// candidates at depth ceil(Oversample*k/n)+annNominateSlack from its own
// retrieval structure, and the single exact-scoring pass runs globally on
// the merged pool — each candidate scored once by its owning shard's
// scorer (the owner holds the candidate's indexed state). An empty global
// pool (e.g. D3L's LSH finding no value overlap anywhere) falls back to
// the exact path, mirroring the monolithic searchers' own fallback. The
// final ranking sorts by the same (score desc, name asc) total order as
// everywhere else, so results are deterministic for every worker count.
func (s *Searcher) topKANN(ctx context.Context, pq search.PreparedQuery, noms []search.PreparedNominator, k int, tr *search.Trace) ([]search.Scored, error) {
	n := len(noms)
	depth := int(math.Ceil(s.Oversample*float64(k)/float64(n))) + annNominateSlack

	tScatter := time.Now()
	nameLists := make([][]string, n)
	errs := make([]error, n)
	s.runScatter(n, func(i int) {
		nameLists[i], errs[i] = noms[i].NominatePrepared(ctx, pq, depth)
	})
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	scatterNS := time.Since(tScatter).Nanoseconds()
	if s.timings != nil {
		s.timings.ScatterNS.Add(scatterNS)
	}
	if tr != nil {
		tr.RetrieveNS.Add(scatterNS)
	}

	tGather := time.Now()
	type cand struct {
		t     *table.Table
		owner int
	}
	var pool []cand
	for i, names := range nameLists {
		for _, name := range names {
			// Shards partition the lake, so cross-shard duplicates cannot
			// occur; a nominee unknown to its own sub-lake would be an
			// index bug and is simply skipped.
			if t := s.sublakes[i].Get(name); t != nil {
				pool = append(pool, cand{t, i})
			}
		}
	}
	if len(pool) == 0 {
		subs, _ := s.preparedSubs() // nominators are a superset of prepared
		return s.topKExact(ctx, pq, subs, k, tr)
	}
	scored := make([]search.Scored, len(pool))
	if err := par.ForCtx(ctx, s.workers, len(pool), func(i int) {
		scored[i] = search.Scored{
			Table: pool[i].t,
			Score: noms[pool[i].owner].ScorePrepared(pq, pool[i].t),
		}
	}); err != nil {
		return nil, err
	}
	sort.Slice(scored, func(i, j int) bool { return hitLess(scored[i], scored[j]) })
	if len(scored) > k {
		scored = scored[:k]
	}
	gatherNS := time.Since(tGather).Nanoseconds()
	if s.timings != nil {
		s.timings.GatherNS.Add(gatherNS)
	}
	if tr != nil {
		tr.ScoreNS.Add(gatherNS)
	}
	return scored, nil
}

// topKLegacy is the whole-query scatter kept for shard kinds without
// prepared-query support: every shard runs its own encode + local top-k at
// per-shard limit k, and the gather merges. Exact-mode parity holds (each
// shard's local top k always covers its share of the global top k); it
// just pays the duplicated encoding the prepared path removes.
func (s *Searcher) topKLegacy(ctx context.Context, query *table.Table, k int) ([]search.Scored, error) {
	limit := k
	if k > 0 && s.mode != search.Exact {
		limit = int(math.Ceil(s.Oversample * float64(k)))
	}
	hits := make([][]search.Scored, len(s.subs))
	errs := make([]error, len(s.subs))
	s.runScatter(len(s.subs), func(i int) {
		hits[i], errs[i] = search.TopKCtx(ctx, s.subs[i], query, limit)
	})
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return mergeHits(hits, k), nil
}

// hitLess is the global ranking order: score descending, table name
// ascending. Table names are unique lake-wide, so the order is total and
// every merge deterministic for every worker and shard count.
func hitLess(a, b search.Scored) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Table.Name < b.Table.Name
}

// mergeHits is the gather stage: a k-way heap merge of the shards' local
// rankings (each already sorted by hitLess) that stops after emitting k
// hits. Unlike concatenate-and-sort it does O(k log n) comparisons and one
// right-sized allocation instead of O(T log T) over the full union — the
// merge cost no longer grows with the per-shard list lengths beyond the
// hits actually consumed. k <= 0 merges everything.
func mergeHits(hits [][]search.Scored, k int) []search.Scored {
	total := 0
	heads := make([][]search.Scored, 0, len(hits))
	for _, h := range hits {
		if len(h) > 0 {
			heads = append(heads, h)
			total += len(h)
		}
	}
	if len(heads) == 0 {
		return nil
	}
	if len(heads) == 1 {
		out := heads[0]
		if k > 0 && len(out) > k {
			out = out[:k]
		}
		return out
	}
	want := total
	if k > 0 && k < want {
		want = k
	}
	// A tiny hand-rolled binary min-heap over list heads; container/heap
	// would box every cursor through an interface on each fix-up.
	less := func(a, b []search.Scored) bool { return hitLess(a[0], b[0]) }
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			best := i
			if l < len(heads) && less(heads[l], heads[best]) {
				best = l
			}
			if r < len(heads) && less(heads[r], heads[best]) {
				best = r
			}
			if best == i {
				return
			}
			heads[i], heads[best] = heads[best], heads[i]
			i = best
		}
	}
	for i := len(heads)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	out := make([]search.Scored, 0, want)
	for len(out) < want {
		out = append(out, heads[0][0])
		if rest := heads[0][1:]; len(rest) > 0 {
			heads[0] = rest
		} else {
			heads[0] = heads[len(heads)-1]
			heads = heads[:len(heads)-1]
			if len(heads) == 1 {
				// One list left: it is already sorted — bulk-append the
				// remainder without heap traffic.
				need := want - len(out)
				if need > len(heads[0]) {
					need = len(heads[0])
				}
				out = append(out, heads[0][:need]...)
				break
			}
			if len(heads) == 0 {
				break
			}
		}
		siftDown(0)
	}
	return out
}

// SetMode implements search.Staged by fanning the mode to every shard:
// entering ANN builds one HNSW graph per Starmie shard (or is a no-op for
// shards that already carry one, e.g. after a warm start).
func (s *Searcher) SetMode(m search.Mode) error {
	if m != search.Exact && m != search.ANN {
		return fmt.Errorf("shard: SetMode(%d): %w", int(m), search.ErrUnknownMode)
	}
	for _, sub := range s.subs {
		if st, ok := sub.(search.Staged); ok {
			if err := st.SetMode(m); err != nil {
				return err
			}
		}
	}
	s.mode = m
	return nil
}

// RetrievalMode implements search.Staged.
func (s *Searcher) RetrievalMode() search.Mode { return s.mode }

// Retriever implements search.Staged: the candidate stage is the union of
// every shard's own retrieval stage.
func (s *Searcher) Retriever() search.Retriever { return scatterRetriever{s} }

// scatterRetriever adapts the per-shard candidate stages to the Retriever
// interface: candidates are the union of each shard's nominees,
// name-sorted for determinism.
type scatterRetriever struct{ s *Searcher }

func (r scatterRetriever) Name() string {
	if st, ok := r.s.subs[0].(search.Staged); ok {
		return "scatter(" + st.Retriever().Name() + ")"
	}
	return "scatter"
}

func (r scatterRetriever) Retrieve(ctx context.Context, query *table.Table, limit int) ([]string, error) {
	seen := make(map[string]bool)
	for _, sub := range r.s.subs {
		st, ok := sub.(search.Staged)
		if !ok {
			return nil, fmt.Errorf("%w: %T is not staged", ErrUnknownKind, sub)
		}
		names, err := st.Retriever().Retrieve(ctx, query, limit)
		if err != nil {
			return nil, err
		}
		for _, n := range names {
			seen[n] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// owner returns the index of the shard holding name, or -1. Removals route
// by membership rather than re-deriving Assign so a layout loaded from a
// manifest keeps working even if the assignment policy evolves.
func (s *Searcher) owner(name string) int {
	for i, sl := range s.sublakes {
		if sl.Get(name) != nil {
			return i
		}
	}
	return -1
}

// AddTable implements search.Incremental: the table routes to its
// hash-assigned shard, whose index absorbs it as a delta update. For
// Starmie the shared corpus gains the table's column documents first —
// exactly when an unsharded AddTable would — and every OTHER shard then
// refreshes its corpus-sensitive embeddings, so all shards keep scoring
// against the same global statistics a from-scratch unsharded index over
// the grown lake would hold.
func (s *Searcher) AddTable(t *table.Table) error {
	if s.owner(t.Name) >= 0 {
		return fmt.Errorf("shard: AddTable(%q): %w", t.Name, search.ErrDuplicateTable)
	}
	o := Assign(t.Name, len(s.subs))
	inc, ok := s.subs[o].(search.Incremental)
	if !ok {
		return fmt.Errorf("%w: shard %d is %T", ErrUnknownKind, o, s.subs[o])
	}
	if err := s.sublakes[o].Add(t); err != nil {
		return err
	}
	if s.corpus != nil {
		for i := range t.Columns {
			s.corpus.AddDocument(embed.ColumnTokens(&t.Columns[i]))
		}
	}
	if err := inc.AddTable(t); err != nil {
		// Roll the shared state back so a refused table leaves no trace.
		if s.corpus != nil {
			for i := range t.Columns {
				s.corpus.RemoveDocument(embed.ColumnTokens(&t.Columns[i]))
			}
		}
		_ = s.sublakes[o].Remove(t.Name)
		return err
	}
	s.refreshOthers(o)
	return nil
}

// RemoveTable implements search.Incremental, routing to the owning shard
// and (for Starmie) retiring the table's documents from the shared corpus
// before the shard un-indexes, so the owner's own refresh already sees the
// post-removal statistics; the remaining shards refresh afterwards.
func (s *Searcher) RemoveTable(name string) error {
	o := s.owner(name)
	if o < 0 {
		return fmt.Errorf("shard: RemoveTable(%q): %w", name, search.ErrUnknownTable)
	}
	inc, ok := s.subs[o].(search.Incremental)
	if !ok {
		return fmt.Errorf("%w: shard %d is %T", ErrUnknownKind, o, s.subs[o])
	}
	t := s.sublakes[o].Get(name)
	if s.corpus != nil {
		for i := range t.Columns {
			s.corpus.RemoveDocument(embed.ColumnTokens(&t.Columns[i]))
		}
	}
	if err := inc.RemoveTable(name); err != nil {
		if s.corpus != nil {
			for i := range t.Columns {
				s.corpus.AddDocument(embed.ColumnTokens(&t.Columns[i]))
			}
		}
		return err
	}
	_ = s.sublakes[o].Remove(name)
	s.refreshOthers(o)
	return nil
}

// refreshOthers re-embeds corpus-sensitive tables on every shard except
// the one that just mutated (its own AddTable/RemoveTable already
// refreshed). Only Starmie shards carry corpus-sensitive state.
func (s *Searcher) refreshOthers(mutated int) {
	if s.corpus == nil {
		return
	}
	for i, sub := range s.subs {
		if i == mutated {
			continue
		}
		sub.(*search.Starmie).RefreshBig()
	}
}

// QueryWorkers implements search.QueryBounded: the returned searcher
// shares every shard's immutable index and bounds both the scatter width
// and each shard's scoring to n workers. The view drops the family pool
// and scatters inline (par.For; fully sequential at n = 1) — a bounded
// view exists to cap one request's parallelism, so it must neither borrow
// the family's full-width pool nor spin up goroutines of its own.
func (s *Searcher) QueryWorkers(n int) search.Searcher {
	c := *s
	c.workers = n
	c.pool = nil
	c.subs = make([]search.Searcher, len(s.subs))
	for i, sub := range s.subs {
		if qb, ok := sub.(search.QueryBounded); ok {
			c.subs[i] = qb.QueryWorkers(n)
		} else {
			c.subs[i] = sub
		}
	}
	return &c
}

// Instrument attaches a per-stage timing accumulator to this searcher (nil
// detaches). Views and clones created before the call keep their previous
// accumulator. Not synchronized with in-flight queries — attach before
// querying starts.
func (s *Searcher) Instrument(st *StageTimings) { s.timings = st }

// SetQuantized fans the graph storage mode to every shard (see
// search.Starmie.SetQuantized): shards already carrying a graph of a
// different storage rebuild it from their stored embeddings. Shards
// whose searcher kind has no quantized form (D3L) are unaffected.
func (s *Searcher) SetQuantized(on bool) {
	for _, sub := range s.subs {
		if q, ok := sub.(interface{ SetQuantized(bool) }); ok {
			q.SetQuantized(on)
		}
	}
}

// SetOversample implements search.Tunable: it sizes this set's merged ANN
// candidate pool and fans the factor to the shards (whose own Oversample
// only matters on their local fallback paths). v <= 0 restores the
// default.
func (s *Searcher) SetOversample(v float64) {
	if v <= 0 {
		v = search.DefaultOversample
	}
	s.Oversample = v
	for _, sub := range s.subs {
		if t, ok := sub.(search.Tunable); ok {
			t.SetOversample(v)
		}
	}
}

// SetEfSearch implements search.Tunable by fanning the beam width to
// every shard's own graph traversal. ef <= 0 restores the default.
func (s *Searcher) SetEfSearch(ef int) {
	for _, sub := range s.subs {
		if t, ok := sub.(search.Tunable); ok {
			t.SetEfSearch(ef)
		}
	}
}

// IndexBytes implements search.IndexSizer as the sum over the shards.
// Storage is uniform across shards by construction; a hand-assembled set
// that disagrees reports "mixed".
func (s *Searcher) IndexBytes() (string, int64) {
	storage, total := "none", int64(0)
	for _, sub := range s.subs {
		sz, ok := sub.(search.IndexSizer)
		if !ok {
			continue
		}
		st, b := sz.IndexBytes()
		total += b
		switch {
		case st == "none":
		case storage == "none":
			storage = st
		case storage != st:
			storage = "mixed"
		}
	}
	return storage, total
}

// ShardIndexBytes returns every shard's own storage mode and resident
// index bytes in shard order — the per-shard series behind the serving
// layer's dust_index_bytes gauge. Shards without an ANN index report
// ("none", 0).
func (s *Searcher) ShardIndexBytes() []search.IndexFootprint {
	out := make([]search.IndexFootprint, len(s.subs))
	for i, sub := range s.subs {
		out[i].Storage = "none"
		if sz, ok := sub.(search.IndexSizer); ok {
			out[i].Storage, out[i].Bytes = sz.IndexBytes()
		}
	}
	return out
}

// ShardMaintenanceStats returns every shard's own tombstone debt, indexed
// by shard — the per-shard view a maintainer (or an operator dashboard)
// drills into when the merged MaintenanceStats trips a threshold. Shards
// whose searcher is not Maintainable report zero stats.
func (s *Searcher) ShardMaintenanceStats() []search.MaintenanceStats {
	out := make([]search.MaintenanceStats, len(s.subs))
	for i, sub := range s.subs {
		if m, ok := sub.(search.Maintainable); ok {
			out[i] = m.MaintenanceStats()
		}
	}
	return out
}

// MaintenanceStats implements search.Maintainable as the merged per-shard
// view: counts sum across shards, dead fractions take the per-shard
// maximum (one rotten shard should trip the maintainer even if the rest
// of the lake is clean).
func (s *Searcher) MaintenanceStats() search.MaintenanceStats {
	var agg search.MaintenanceStats
	for _, st := range s.ShardMaintenanceStats() {
		agg = agg.Merge(st)
	}
	return agg
}

// SetAutoCompact implements search.Maintainable by fanning the policy to
// every shard.
func (s *Searcher) SetAutoCompact(on bool) {
	for _, sub := range s.subs {
		if m, ok := sub.(search.Maintainable); ok {
			m.SetAutoCompact(on)
		}
	}
}

// Compact implements search.Maintainable: every shard compacts its own
// tombstoned structures (in parallel on the family pool — compaction runs
// on clones, off the query path, so the pool is otherwise idle for this
// searcher). Reports whether any shard did work.
func (s *Searcher) Compact() bool {
	maints := make([]search.Maintainable, len(s.subs))
	for i, sub := range s.subs {
		if m, ok := sub.(search.Maintainable); ok {
			maints[i] = m
		}
	}
	did := make([]bool, len(maints))
	s.runScatter(len(maints), func(i int) {
		if maints[i] != nil {
			did[i] = maints[i].Compact()
		}
	})
	for _, d := range did {
		if d {
			return true
		}
	}
	return false
}

// ModeView implements search.ModeViewer: a shallow copy of the shard set
// whose sub-searchers are themselves mode views, sharing all index state
// (graphs included) with the originals. The view keeps the family pool —
// it serves queries exactly like the original — and is unavailable unless
// every shard can produce the requested view.
func (s *Searcher) ModeView(m search.Mode) (search.Searcher, bool) {
	if m == s.mode {
		return s, true
	}
	c := *s
	c.mode = m
	c.subs = make([]search.Searcher, len(s.subs))
	for i, sub := range s.subs {
		mv, ok := sub.(search.ModeViewer)
		if !ok {
			return nil, false
		}
		v, ok := mv.ModeView(m)
		if !ok {
			return nil, false
		}
		c.subs[i] = v
	}
	return &c, true
}

// Close releases the scatter pool's worker goroutines. The pool is shared
// by every clone in the searcher's family, so call Close once the whole
// family is done serving — dust.Pipeline.Close does this at pipeline
// teardown — not per snapshot clone. Close is idempotent across the
// family; queries on any family member after Close panic.
func (s *Searcher) Close() {
	if s.pool != nil {
		s.pool.close()
	}
}

// CloneWithLake implements search.Cloner for snapshot-swapped serving: l
// must be a clone of the full lake holding the same table set. Every shard
// clones against a clone of its own sub-lake (heavy embedding state stays
// shared, per the sub-searchers' Clone contracts), and the Starmie shards
// are rebound to a single clone of the shared corpus so the new shard set
// again owns exactly one global TF-IDF state. The clone keeps the family's
// scatter pool — snapshot swaps must not churn worker goroutines — so
// Close applies family-wide (see Close).
func (s *Searcher) CloneWithLake(l *lake.Lake) search.Searcher {
	c := *s
	c.full = l
	c.sublakes = make([]*lake.Lake, len(s.sublakes))
	c.subs = make([]search.Searcher, len(s.subs))
	if s.corpus != nil {
		c.corpus = s.corpus.Clone()
	}
	for i, sub := range s.subs {
		c.sublakes[i] = s.sublakes[i].Clone()
		c.subs[i] = sub.(search.Cloner).CloneWithLake(c.sublakes[i])
		if st, ok := c.subs[i].(*search.Starmie); ok {
			st.AdoptSharedCorpus(c.corpus)
		}
	}
	return &c
}
