package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"dust/internal/datagen"
	"dust/internal/lake"
	"dust/internal/search"
	"dust/internal/table"
)

// shardBench generates the shared test lake. The lake is salted with one
// table whose columns exceed the encoder token budget, so Starmie's
// corpus-sensitive TF-IDF path — the part of scoring that would diverge
// under per-shard corpora — is actually exercised, not just the
// corpus-independent fast path.
func shardBench(t testing.TB) (*datagen.Benchmark, []*table.Table) {
	t.Helper()
	b := datagen.Generate("shard-bench", datagen.Config{
		Seed: 41, Domains: 5, TablesPerBase: 8, QueriesPerBase: 2,
		BaseRows: 40, MinRows: 8, MaxRows: 16,
	})
	b.Lake.MustAdd(bigTable("wide_vocab", 4001))
	return b, b.Queries
}

// bigTable builds a table whose single column holds `vocab` distinct
// tokens — far past embed.TokenBudget (512) — so its embedding depends on
// corpus TF-IDF selection.
func bigTable(name string, vocab int) *table.Table {
	bt := table.New(name, "terms")
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < vocab/8; i++ {
		row := ""
		for j := 0; j < 8; j++ {
			row += fmt.Sprintf("tok%d_%d ", i, rng.Intn(1<<20))
		}
		bt.MustAppendRow(row)
	}
	return bt
}

func buildSharded(t testing.TB, kind string, l *lake.Lake, n, workers int) *Searcher {
	t.Helper()
	cfg := Config{Workers: workers}
	switch kind {
	case KindStarmie:
		return NewStarmie(l, n, cfg)
	case KindD3L:
		return NewD3L(l, n, cfg)
	}
	t.Fatalf("unknown kind %q", kind)
	return nil
}

func buildUnsharded(t testing.TB, kind string, l *lake.Lake, workers int) search.Searcher {
	t.Helper()
	switch kind {
	case KindStarmie:
		return search.NewStarmie(l, search.WithWorkers(workers))
	case KindD3L:
		return search.NewD3L(l, search.WithWorkers(workers))
	}
	t.Fatalf("unknown kind %q", kind)
	return nil
}

func sameHits(t *testing.T, label string, got, want []search.Scored) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d hits, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Table.Name != want[i].Table.Name || got[i].Score != want[i].Score {
			t.Fatalf("%s: hit %d = (%s, %v), want (%s, %v)",
				label, i, got[i].Table.Name, got[i].Score, want[i].Table.Name, want[i].Score)
		}
	}
}

// TestShardedEquivalence is the acceptance gate of the sharding layer:
// exact-mode scatter-gather TopK must be bit-identical to the unsharded
// searcher for shards in {1, 2, 4} at workers 1 and 8, for both shardable
// kinds; and sharded ANN mode must clear the same recall@10 >= 0.95 bar
// the monolithic ANN engine is held to.
func TestShardedEquivalence(t *testing.T) {
	b, queries := shardBench(t)
	for _, kind := range []string{KindStarmie, KindD3L} {
		want := buildUnsharded(t, kind, b.Lake, 0)
		for _, shards := range []int{1, 2, 4} {
			for _, workers := range []int{1, 8} {
				t.Run(fmt.Sprintf("%s/shards=%d/workers=%d", kind, shards, workers), func(t *testing.T) {
					s := buildSharded(t, kind, b.Lake, shards, workers)
					if got := s.NumShards(); got != shards {
						t.Fatalf("NumShards = %d, want %d", got, shards)
					}
					for qi, q := range queries {
						for _, k := range []int{1, 5, 12} {
							label := fmt.Sprintf("query %d k=%d", qi, k)
							sameHits(t, label, s.TopK(q, k), want.TopK(q, k))
						}
						// k <= 0 asks for the full ranking.
						sameHits(t, fmt.Sprintf("query %d full", qi), s.TopK(q, 0), want.TopK(q, 0))
					}
				})
			}
		}
	}

	t.Run("ann-recall", func(t *testing.T) {
		const k = 10
		exact := buildUnsharded(t, KindStarmie, b.Lake, 0)
		approx := NewStarmie(b.Lake, 4, Config{})
		if err := approx.SetMode(search.ANN); err != nil {
			t.Fatal(err)
		}
		if got := approx.RetrievalMode(); got != search.ANN {
			t.Fatalf("RetrievalMode = %v, want ANN", got)
		}
		var sum float64
		for _, q := range queries {
			truth := map[string]bool{}
			for _, h := range exact.TopK(q, k) {
				truth[h.Table.Name] = true
			}
			hits := 0
			for _, h := range approx.TopK(q, k) {
				if truth[h.Table.Name] {
					hits++
				}
			}
			sum += float64(hits) / float64(len(truth))
		}
		if r := sum / float64(len(queries)); r < 0.95 {
			t.Fatalf("sharded ANN recall@%d = %.3f, want >= 0.95", k, r)
		}
	})
}

// TestShardedIncrementalEquivalence drives interleaved AddTable/
// RemoveTable — including the over-budget table whose embeddings depend on
// the shared corpus — and requires the mutated shard set to rank exactly
// like a from-scratch unsharded index over the same table set, at workers
// 1 and 8.
func TestShardedIncrementalEquivalence(t *testing.T) {
	for _, kind := range []string{KindStarmie, KindD3L} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", kind, workers), func(t *testing.T) {
				b, queries := shardBench(t)
				s := buildSharded(t, kind, b.Lake, 3, workers)

				extra := bigTable("late_wide_vocab", 2401)
				small := table.New("late_small", queries[0].Headers()...)
				for i := 0; i < queries[0].NumRows(); i++ {
					small.MustAppendRow(queries[0].Row(i)...)
				}
				check := func(step string) {
					t.Helper()
					// The oracle lake must hold exactly the shard set's
					// current tables, in the same insertion order.
					oracle := lake.New("oracle")
					for _, sl := range b.Lake.Tables() {
						if s.owner(sl.Name) >= 0 {
							oracle.MustAdd(sl)
						}
					}
					for _, late := range []*table.Table{extra, small} {
						if s.owner(late.Name) >= 0 {
							oracle.MustAdd(late)
						}
					}
					want := buildUnsharded(t, kind, oracle, workers)
					for qi, q := range queries {
						sameHits(t, fmt.Sprintf("%s query %d", step, qi), s.TopK(q, 8), want.TopK(q, 8))
					}
				}

				if err := s.AddTable(extra); err != nil {
					t.Fatal(err)
				}
				check("after add big")
				if err := s.AddTable(extra); !errors.Is(err, search.ErrDuplicateTable) {
					t.Fatalf("duplicate AddTable err = %v, want ErrDuplicateTable", err)
				}
				if err := s.AddTable(small); err != nil {
					t.Fatal(err)
				}
				check("after add small")
				// Dropping the original big table shifts the global corpus;
				// every shard must refresh against it.
				if err := s.RemoveTable("wide_vocab"); err != nil {
					t.Fatal(err)
				}
				check("after remove big")
				if err := s.RemoveTable("absent"); !errors.Is(err, search.ErrUnknownTable) {
					t.Fatalf("absent RemoveTable err = %v, want ErrUnknownTable", err)
				}
			})
		}
	}
}

// TestShardedANNMutationsStayConsistent mutates an ANN-mode shard set and
// checks the per-shard graphs follow: results must match a freshly built
// ANN shard set over the same table set.
func TestShardedANNMutationsStayConsistent(t *testing.T) {
	b, queries := shardBench(t)
	s := NewStarmie(b.Lake, 2, Config{Mode: search.ANN})
	extra := table.New("late_small", queries[0].Headers()...)
	for i := 0; i < queries[0].NumRows(); i++ {
		extra.MustAppendRow(queries[0].Row(i)...)
	}
	if err := s.AddTable(extra); err != nil {
		t.Fatal(err)
	}
	grown := b.Lake.Clone()
	grown.MustAdd(extra)
	fresh := NewStarmie(grown, 2, Config{Mode: search.ANN})
	for qi, q := range queries {
		sameHits(t, fmt.Sprintf("ann query %d", qi), s.TopK(q, 8), fresh.TopK(q, 8))
	}
}

// TestShardedCloneIsolation pins the copy-on-write contract snapshot
// serving depends on: mutations on a clone never disturb the original.
func TestShardedCloneIsolation(t *testing.T) {
	b, queries := shardBench(t)
	q := queries[0]
	s := NewStarmie(b.Lake, 3, Config{})
	before := s.TopK(q, 8)

	cl := s.CloneWithLake(b.Lake.Clone()).(*Searcher)
	if err := cl.RemoveTable("wide_vocab"); err != nil {
		t.Fatal(err)
	}
	extra := table.New("clone_only", q.Headers()...)
	for i := 0; i < q.NumRows(); i++ {
		extra.MustAppendRow(q.Row(i)...)
	}
	if err := cl.AddTable(extra); err != nil {
		t.Fatal(err)
	}
	sameHits(t, "original after clone mutations", s.TopK(q, 8), before)
	if cl.owner("clone_only") < 0 {
		t.Error("clone lost its own mutation")
	}
	if s.owner("clone_only") >= 0 {
		t.Error("clone mutation leaked into the original")
	}
}

// TestShardedQueryBoundAndCancel covers the serving-facing surfaces:
// QueryWorkers re-bounds without changing results, and a cancelled context
// aborts the scatter with the context's error.
func TestShardedQueryBoundAndCancel(t *testing.T) {
	b, queries := shardBench(t)
	q := queries[0]
	s := NewD3L(b.Lake, 2, Config{Workers: 4})
	bound := s.QueryWorkers(1).(*Searcher)
	sameHits(t, "rebound", bound.TopK(q, 6), s.TopK(q, 6))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.TopKContext(ctx, q, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled TopKContext err = %v, want context.Canceled", err)
	}
}

// TestPartitionAndAssign pins the deterministic layout: Assign is stable,
// Partition covers the lake disjointly, and every shard routes through
// Assign.
func TestPartitionAndAssign(t *testing.T) {
	b, _ := shardBench(t)
	for _, n := range []int{1, 2, 4, 7} {
		subs := Partition(b.Lake, n)
		if len(subs) != n {
			t.Fatalf("Partition(%d) returned %d lakes", n, len(subs))
		}
		total := 0
		for i, sl := range subs {
			total += sl.Len()
			for _, name := range sl.Names() {
				if Assign(name, n) != i {
					t.Errorf("n=%d: table %q in shard %d, Assign says %d", n, name, i, Assign(name, n))
				}
			}
		}
		if total != b.Lake.Len() {
			t.Errorf("n=%d: partition holds %d tables, lake holds %d", n, total, b.Lake.Len())
		}
	}
	if Assign("anything", 1) != 0 || Assign("anything", 0) != 0 {
		t.Error("degenerate shard counts must route to shard 0")
	}
}

// TestAssembleValidatesLayout exercises the warm-start validator.
func TestAssembleValidatesLayout(t *testing.T) {
	b, _ := shardBench(t)
	s := NewD3L(b.Lake, 2, Config{})
	parts := []Part{
		{Lake: s.sublakes[0], Searcher: s.subs[0]},
		{Lake: s.sublakes[1], Searcher: s.subs[1]},
	}
	if _, err := Assemble(b.Lake, KindD3L, parts, Config{}); err != nil {
		t.Fatalf("valid parts rejected: %v", err)
	}
	if _, err := Assemble(b.Lake, "bogus", parts, Config{}); !errors.Is(err, ErrUnknownKind) {
		t.Errorf("bogus kind err = %v, want ErrUnknownKind", err)
	}
	if _, err := Assemble(b.Lake, KindD3L, parts[:1], Config{}); !errors.Is(err, ErrLayoutMismatch) {
		t.Errorf("partial cover err = %v, want ErrLayoutMismatch", err)
	}
	if _, err := Assemble(b.Lake, KindD3L, append(parts, parts[0]), Config{}); !errors.Is(err, ErrLayoutMismatch) {
		t.Errorf("duplicated shard err = %v, want ErrLayoutMismatch", err)
	}
	if _, err := Assemble(b.Lake, KindStarmie, parts, Config{}); !errors.Is(err, ErrLayoutMismatch) {
		t.Errorf("kind mismatch err = %v, want ErrLayoutMismatch", err)
	}
}
