package shard

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"

	"dust/internal/datagen"
	"dust/internal/search"
	"dust/internal/table"
)

// TestPreparedEquivalence is the acceptance gate of the prepared
// scatter-gather rewrite: with the encode-once scatter, the bounded gather,
// and the candidate-only ANN plan in place, exact sharded results must stay
// bit-identical to the unsharded searcher across shard counts {1, 2, 4, 8}
// and scatter widths {1, 8}; sharded ANN must keep monolithic-grade recall;
// and a sharded query must encode exactly once, not once per shard.
func TestPreparedEquivalence(t *testing.T) {
	b, queries := shardBench(t)
	for _, kind := range []string{KindStarmie, KindD3L} {
		want := buildUnsharded(t, kind, b.Lake, 0)
		for _, shards := range []int{1, 2, 4, 8} {
			for _, workers := range []int{1, 8} {
				t.Run(fmt.Sprintf("%s/shards=%d/workers=%d", kind, shards, workers), func(t *testing.T) {
					s := buildSharded(t, kind, b.Lake, shards, workers)
					defer s.Close()
					for qi, q := range queries {
						for _, k := range []int{1, 5, 12} {
							label := fmt.Sprintf("query %d k=%d", qi, k)
							sameHits(t, label, s.TopK(q, k), want.TopK(q, k))
						}
						sameHits(t, fmt.Sprintf("query %d full", qi), s.TopK(q, 0), want.TopK(q, 0))
					}
				})
			}
		}
	}

	// The candidate-only ANN plan: shards nominate, the merged pool is
	// scored exactly once, and recall@10 holds the monolithic >= 0.95 bar.
	t.Run("ann-candidate-recall", func(t *testing.T) {
		const k = 10
		exact := buildUnsharded(t, KindStarmie, b.Lake, 0)
		approx := NewStarmie(b.Lake, 4, Config{})
		defer approx.Close()
		if err := approx.SetMode(search.ANN); err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, q := range queries {
			truth := map[string]bool{}
			for _, h := range exact.TopK(q, k) {
				truth[h.Table.Name] = true
			}
			hits := 0
			for _, h := range approx.TopK(q, k) {
				if truth[h.Table.Name] {
					hits++
				}
			}
			sum += float64(hits) / float64(len(truth))
		}
		if r := sum / float64(len(queries)); r < 0.95 {
			t.Fatalf("sharded candidate-only ANN recall@%d = %.3f, want >= 0.95", k, r)
		}
	})

	// Encode-once: one sharded query costs exactly NumCols base-model
	// encoding calls — the same as unsharded — regardless of shard count.
	// Before the prepared scatter it cost shards x NumCols.
	t.Run("encode-once", func(t *testing.T) {
		for _, shards := range []int{1, 4, 8} {
			s := NewStarmie(b.Lake, shards, Config{Workers: 4})
			defer s.Close()
			var calls atomic.Int64
			for i := 0; i < s.NumShards(); i++ {
				s.Shard(i).(*search.Starmie).Encoder().Model.Instrument(&calls)
			}
			for qi, q := range queries {
				calls.Store(0)
				s.TopK(q, 5)
				if got, want := calls.Load(), int64(q.NumCols()); got != want {
					t.Fatalf("shards=%d query %d: %d encode calls, want %d (encode-once)",
						shards, qi, got, want)
				}
			}
		}
	})
}

// TestCloseSharedPool pins the family-wide pool lifecycle: Close is
// idempotent, clones share the pool so closing either side closes both,
// and query-bounded views — which scatter inline without the pool — keep
// serving after the family pool is gone.
func TestCloseSharedPool(t *testing.T) {
	b, queries := shardBench(t)
	q := queries[0]
	s := NewD3L(b.Lake, 3, Config{Workers: 4})
	bound := s.QueryWorkers(1).(*Searcher)
	want := s.TopK(q, 6)

	cl := s.CloneWithLake(b.Lake.Clone()).(*Searcher)
	sameHits(t, "clone before close", cl.TopK(q, 6), want)

	s.Close()
	s.Close()  // idempotent on the same member
	cl.Close() // and across the family
	sameHits(t, "bound view after family close", bound.TopK(q, 6), want)
}

// TestStageTimings checks the instrumentation hook: an attached
// accumulator sees every query with non-negative stage times and a
// non-zero encode stage.
func TestStageTimings(t *testing.T) {
	b, queries := shardBench(t)
	s := NewStarmie(b.Lake, 4, Config{Workers: 4})
	defer s.Close()
	var st StageTimings
	s.Instrument(&st)
	for _, q := range queries {
		s.TopK(q, 8)
	}
	if got, want := st.Queries.Load(), int64(len(queries)); got != want {
		t.Fatalf("recorded %d queries, want %d", got, want)
	}
	if st.EncodeNS.Load() <= 0 {
		t.Error("encode stage recorded no time")
	}
	if st.ScatterNS.Load() < 0 || st.GatherNS.Load() < 0 {
		t.Error("negative stage time")
	}
}

// mergeHitsSort is the pre-heap gather — concatenate everything, sort the
// union, truncate — kept as the reference implementation the heap merge is
// differential-tested and benchmarked against.
func mergeHitsSort(hits [][]search.Scored, k int) []search.Scored {
	var all []search.Scored
	for _, h := range hits {
		all = append(all, h...)
	}
	sort.Slice(all, func(i, j int) bool { return hitLess(all[i], all[j]) })
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

// randomHitLists builds n sorted per-shard result lists over disjoint
// synthetic names, the shape mergeHits consumes.
func randomHitLists(rng *rand.Rand, n, maxLen int) [][]search.Scored {
	lists := make([][]search.Scored, n)
	for i := range lists {
		m := rng.Intn(maxLen + 1)
		h := make([]search.Scored, m)
		for j := range h {
			tb := table.New(fmt.Sprintf("t%02d_%03d", i, j))
			h[j] = search.Scored{Table: tb, Score: float64(rng.Intn(50)) / 10}
		}
		for a := 1; a < len(h); a++ {
			for b := a; b > 0 && hitLess(h[b], h[b-1]); b-- {
				h[b], h[b-1] = h[b-1], h[b]
			}
		}
		lists[i] = h
	}
	return lists
}

// TestMergeHitsMatchesSort differential-tests the k-way heap merge against
// the sort reference across list shapes, shard counts, and k values
// (including k <= 0, the full merge).
func TestMergeHitsMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(9)
		lists := randomHitLists(rng, n, 12)
		for _, k := range []int{0, 1, 3, 10, 1000} {
			got := mergeHits(lists, k)
			want := mergeHitsSort(lists, k)
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: %d hits, want %d", trial, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d k=%d hit %d: (%s,%v), want (%s,%v)", trial, k, i,
						got[i].Table.Name, got[i].Score, want[i].Table.Name, want[i].Score)
				}
			}
		}
	}
	if out := mergeHits(nil, 5); out != nil {
		t.Errorf("mergeHits(nil) = %v, want nil", out)
	}
	if out := mergeHits([][]search.Scored{nil, {}}, 5); out != nil {
		t.Errorf("mergeHits(empties) = %v, want nil", out)
	}
}

// benchHitLists is the benchmark fixture: 8 shards x 40 sorted hits, the
// shape of an oversampled k=10 gather before the bounded rewrite.
func benchHitLists() [][]search.Scored {
	rng := rand.New(rand.NewSource(3))
	lists := randomHitLists(rng, 8, 0)
	for i := range lists {
		h := make([]search.Scored, 40)
		for j := range h {
			tb := table.New(fmt.Sprintf("t%02d_%03d", i, j))
			h[j] = search.Scored{Table: tb, Score: rng.Float64()}
		}
		for a := 1; a < len(h); a++ {
			for b := a; b > 0 && hitLess(h[b], h[b-1]); b-- {
				h[b], h[b-1] = h[b-1], h[b]
			}
		}
		lists[i] = h
	}
	return lists
}

// BenchmarkMergeHitsHeap measures the k-way heap merge (stops at k).
func BenchmarkMergeHitsHeap(b *testing.B) {
	lists := benchHitLists()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mergeHits(lists, 10)
	}
}

// BenchmarkMergeHitsSort measures the old concat+sort gather on the same
// input.
func BenchmarkMergeHitsSort(b *testing.B) {
	lists := benchHitLists()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mergeHitsSort(lists, 10)
	}
}

// benchLake builds the dustbench -quick scale workload (1k tables) so the
// two layouts' exact paths can be compared and profiled in isolation.
func benchLake(b *testing.B) (*datagen.Benchmark, []*table.Table) {
	b.Helper()
	bench := datagen.Generate("shard-bench", datagen.Config{
		Seed: 997, Domains: 10, TablesPerBase: 100, QueriesPerBase: 1,
		BaseRows: 30, MinRows: 4, MaxRows: 8,
	})
	return bench, bench.Queries
}

// BenchmarkExactMono is the monolithic exact TopK baseline.
func BenchmarkExactMono(b *testing.B) {
	bench, queries := benchLake(b)
	mono := search.NewStarmie(bench.Lake)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mono.TopK(queries[i%len(queries)], 10)
	}
}

// BenchmarkExactSharded is the sharded exact TopK path over the same lake
// (8 shards), the configuration the CI bench gate compares against the
// monolithic baseline.
func BenchmarkExactSharded(b *testing.B) {
	bench, queries := benchLake(b)
	s := NewStarmie(bench.Lake, 8, Config{})
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TopK(queries[i%len(queries)], 10)
	}
}
