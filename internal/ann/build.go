package ann

import (
	"fmt"
	"sort"

	"dust/internal/par"
	"dust/internal/vector"
)

// buildWarmPrefix is the sequentially inserted prefix of Build: batches
// only start once the graph has enough structure that planning against a
// frozen prefix finds well-spread neighbors.
const buildWarmPrefix = 256

// buildBatch is the fixed batch width of the parallel build. Nodes in
// one batch plan against the graph frozen at the batch boundary, so a
// node can never select a batch-mate as a neighbor: the batch width is
// exactly the window of potentially missing edges. Keeping it small and
// fixed bounds that window at a few hundred predecessors out of the tens
// of thousands a node typically plans against — recall-neutral in
// practice (gated by the same tests as the sequential builder) — while
// still fanning hundreds of beam searches per batch across workers. A
// doubling schedule would scale the window with the graph and visibly
// lose recall on clustered data, where an entire cluster inserted in one
// batch ends up with no intra-cluster edges at all.
const buildBatch = 256

// Build constructs an index over vecs (inserted in slice order, so ids
// equal slice positions) with a batch-parallel, deterministic schedule
// running on par worker loops.
//
// The first buildWarmPrefix nodes are inserted sequentially — identical
// to calling Add in a loop. After that the remaining nodes are committed
// in fixed-width batches: every node in a batch plans its neighbors
// concurrently against the frozen pre-batch graph (planNode is
// read-only), then the batch commits in id order — own links in
// parallel (disjoint per node), backlinks grouped per target node and
// applied in inserting-id order (per-target work is disjoint too, so
// targets commit in parallel without locks), entry-point bookkeeping
// last. Each phase's output is a pure function of the frozen prefix, so
// the built graph is bit-identical at every worker count — the same
// contract the rest of the repo's par kernels follow — while the
// dominant cost (the ef-construction beam searches of the plan phase)
// scales with cores.
//
// Batching changes the construction schedule, not the invariants:
// intra-batch nodes never select each other (they are unreachable while
// frozen), a window buildBatch keeps narrow — see its comment for why
// the width is fixed rather than doubling. Recall is gated by the same
// tests as the sequential builder.
func Build(dim int, vecs []vector.Vec32, cfg Config, workers int) *Index {
	ix := New(dim, cfg)
	n := len(vecs)
	if n == 0 {
		return ix
	}
	for i, v := range vecs {
		if len(v) != dim {
			panic(fmt.Sprintf("ann: Build vector %d has dimension %d, index holds %d", i, len(v), dim))
		}
	}
	workers = par.Normalize(workers)

	// Storage and levels first, in parallel by index: quantization is
	// per-node independent and levels are a pure hash of (seed, id).
	if ix.quant {
		ix.codes = make([]int8, n*dim)
		ix.qscale = make([]float32, n)
		ix.qoff = make([]float32, n)
		ix.qs1 = make([]int32, n)
		ix.qs2 = make([]int32, n)
		par.For(workers, n, func(i int) {
			q := vector.Quantize(vecs[i])
			copy(ix.codes[i*dim:(i+1)*dim], q.Codes)
			ix.qscale[i], ix.qoff[i] = q.Scale, q.Offset
			ix.qs1[i], ix.qs2[i] = vector.CodeSums(q.Codes)
		})
	} else {
		ix.vecs = make([]vector.Vec32, n)
		par.For(workers, n, func(i int) {
			stored := make(vector.Vec32, dim)
			copy(stored, vecs[i])
			ix.vecs[i] = stored
		})
	}
	ix.levels = make([]int32, n)
	ix.links = make([][][]int32, n)
	ix.deleted = make([]bool, n)
	for id := 0; id < n; id++ {
		lvl := ix.levelFor(id)
		ix.levels[id] = int32(lvl)
		ix.links[id] = make([][]int32, lvl+1)
	}

	warm := buildWarmPrefix
	if warm > n {
		warm = n
	}
	for id := 0; id < warm; id++ {
		ix.insert(int32(id))
	}
	for lo := warm; lo < n; {
		hi := lo + buildBatch
		if hi > n {
			hi = n
		}
		plans := make([][][]int32, hi-lo)
		par.For(workers, hi-lo, func(k int) {
			sc := ix.scratch.Get().(*searchScratch)
			plans[k] = ix.planNode(int32(lo+k), sc)
			ix.scratch.Put(sc)
		})
		ix.commitBatch(int32(lo), plans, workers)
		lo = hi
	}
	return ix
}

// commitBatch installs one planned batch with the same final state as
// committing the plans one by one in id order: every shared-target
// backlink sequence applies in inserting-id order, and the entry point
// advances by an id-order scan. Own links and per-target backlink groups
// touch disjoint state, so both run on par loops.
func (ix *Index) commitBatch(lo int32, plans [][][]int32, workers int) {
	par.For(workers, len(plans), func(k int) {
		ix.links[lo+int32(k)] = plans[k]
	})

	// Group backlinks by target. Plans only ever select committed
	// (pre-batch) nodes, so targets are disjoint from the batch and from
	// each other's adjacency state. Iterating plans in id order keeps
	// each target's additions in inserting-id order; targets themselves
	// are sorted so the grouping is deterministic end to end.
	type backlink struct {
		id    int32 // inserting node
		layer int32
	}
	byTarget := make(map[int32][]backlink)
	var targets []int32
	for k, neigh := range plans {
		id := lo + int32(k)
		for l, nbs := range neigh {
			for _, nb := range nbs {
				if _, seen := byTarget[nb]; !seen {
					targets = append(targets, nb)
				}
				byTarget[nb] = append(byTarget[nb], backlink{id: id, layer: int32(l)})
			}
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	par.For(workers, len(targets), func(t int) {
		nb := targets[t]
		for _, bl := range byTarget[nb] {
			budget := ix.m
			if bl.layer == 0 {
				budget = 2 * ix.m
			}
			ix.linkBack(nb, bl.id, int(bl.layer), budget)
		}
	})

	for k := range plans {
		lvl := int32(len(plans[k]) - 1)
		if ix.entry < 0 || lvl > ix.maxLvl {
			ix.entry, ix.maxLvl = lo+int32(k), lvl
		}
	}
}
