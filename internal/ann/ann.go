// Package ann implements the approximate candidate-generation backend of
// the staged query plan (retrieve -> score -> diversify): a Hierarchical
// Navigable Small World graph (Malkov & Yashunin) over normalized vectors,
// searched with a fused squared-euclidean kernel — monotone in cosine
// similarity for unit vectors, so the nearest candidates under it are the
// highest-cosine ones with no sqrt per hop.
//
// Vectors are stored either as float32 (the original layout) or as SQ8
// scalar-quantized codes (Config.Quantized): one int8 per dimension plus a
// per-node (scale, offset, Σc, Σc²) record, cutting resident vector memory
// 4x. Quantized traversal never reconstructs float vectors — node-to-node
// distances reduce to an int8 dot product plus O(1) algebra, and a query's
// float vector is folded in through the asymmetric kernel with its own
// Σq/Σq² computed once per search (see vector.DotCodes). Because the
// candidates an index nominates are always re-ranked with exact
// float64 scoring by the owning searcher, quantization moves recall only
// through nomination quality, never through final scores.
//
// The index is append-only with tombstoned deletion: Remove marks a node
// dead so searches skip it in their results while still traversing it for
// connectivity, and DeletedFraction lets the owning searcher decide when
// to rebuild from the live nodes (the searchers rebuild past one half
// dead). Searches are safe to run concurrently; mutations (Add/Remove)
// are not safe concurrently with anything — snapshot-swapped serving
// mutates a Clone and swaps it in.
//
// Determinism: level assignment hashes (seed, node id) instead of drawing
// from a shared RNG, so the graph produced by a given insertion sequence
// is identical across runs, worker counts, and processes — which is what
// lets recall tests, golden files, and the incremental-vs-rebuilt
// equivalence harness pin ANN behavior at all. Build extends the contract
// to parallel construction: batches plan against a frozen graph prefix and
// commit in id order, so the built graph is bit-identical at every worker
// count.
package ann

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"dust/internal/vector"
)

// Defaults; Config zero values take them.
const (
	// DefaultM is the neighbor budget per node per layer (the base layer
	// allows 2M), the main memory/recall dial of HNSW.
	DefaultM = 16
	// DefaultEfConstruction is the beam width used while inserting.
	DefaultEfConstruction = 200
	// DefaultSeed salts the per-node level hash.
	DefaultSeed = 0x_D057_AA11_2026
	// maxLevel caps node levels so a corrupt or adversarial file cannot
	// demand absurd per-node layer allocations (ln-distributed levels
	// stay in single digits for any realistic index size).
	maxLevel = 48
)

// Config shapes graph construction. The zero value takes the defaults.
type Config struct {
	M              int    // max neighbors per node per layer (base layer: 2M)
	EfConstruction int    // insertion beam width
	Seed           uint64 // level-hash salt
	Quantized      bool   // store SQ8 codes instead of float32 vectors
}

func (c *Config) defaults() {
	if c.M <= 0 {
		c.M = DefaultM
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = DefaultEfConstruction
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
}

// Index is an HNSW graph. Node ids are assigned densely in insertion
// order and never reused; a removed node keeps its id as a tombstone
// until the owner rebuilds.
type Index struct {
	dim   int
	m     int
	efCon int
	seed  uint64
	mL    float64 // level multiplier, 1/ln(M)
	quant bool

	// Float storage (quant == false): one slice per node.
	vecs []vector.Vec32

	// Quantized storage (quant == true): codes is the flat n×dim int8
	// code matrix (node id strides by dim); qscale/qoff are the per-node
	// affine dequantization parameters and qs1/qs2 the cached code sums
	// (Σc, Σc²) that make every distance one dot product plus O(1)
	// algebra.
	codes  []int8
	qscale []float32
	qoff   []float32
	qs1    []int32
	qs2    []int32

	levels  []int32
	links   [][][]int32 // node -> layer -> neighbor ids
	deleted []bool
	nDel    int
	entry   int32 // -1 while empty
	maxLvl  int32

	// scratch pools per-search state — the visited set and both beam
	// heaps — so one query pays a single Get instead of an allocation
	// per searchLayer call; a pointer so clones (and the shallow copies
	// Clone starts from) share it safely.
	scratch *sync.Pool
}

// searchScratch is the reusable state of one traversal: a visited set and
// the two beam heaps. One instance serves a whole Search or insertion
// (every searchLayer call reuses it), and instances are pooled across
// searches.
type searchScratch struct {
	visited visitSet
	cand    minHeap
	beam    maxHeap
}

// visitSet is a generation-stamped visited set: marking and testing are
// O(1), and reuse across searches skips the O(n) clear — the slice is
// only re-zeroed when it grows or the uint32 generation wraps.
type visitSet struct {
	gen   uint32
	marks []uint32
}

// next prepares the set for one traversal over n nodes.
func (v *visitSet) next(n int) {
	if len(v.marks) < n {
		v.marks = make([]uint32, n)
		v.gen = 0
	}
	if v.gen == ^uint32(0) {
		clear(v.marks)
		v.gen = 0
	}
	v.gen++
}

// visit marks id, reporting whether this is its first visit.
func (v *visitSet) visit(id int32) bool {
	if v.marks[id] == v.gen {
		return false
	}
	v.marks[id] = v.gen
	return true
}

// New creates an empty index over dim-dimensional vectors.
func New(dim int, cfg Config) *Index {
	if dim <= 0 {
		panic(fmt.Sprintf("ann: dimension %d must be positive", dim))
	}
	cfg.defaults()
	return &Index{
		dim:     dim,
		m:       cfg.M,
		efCon:   cfg.EfConstruction,
		seed:    cfg.Seed,
		mL:      1 / math.Log(float64(cfg.M)),
		quant:   cfg.Quantized,
		entry:   -1,
		scratch: &sync.Pool{New: func() any { return new(searchScratch) }},
	}
}

// Dim returns the vector dimension.
func (ix *Index) Dim() int { return ix.dim }

// Len returns the number of nodes, tombstones included.
func (ix *Index) Len() int { return len(ix.levels) }

// Live returns the number of non-tombstoned nodes.
func (ix *Index) Live() int { return ix.Len() - ix.nDel }

// Deleted reports whether id is tombstoned.
func (ix *Index) Deleted(id int) bool { return ix.deleted[id] }

// DeletedFraction returns the tombstone share, the owner's rebuild signal.
func (ix *Index) DeletedFraction() float64 {
	if ix.Len() == 0 {
		return 0
	}
	return float64(ix.nDel) / float64(ix.Len())
}

// Quantized reports whether the index stores SQ8 codes instead of float32
// vectors.
func (ix *Index) Quantized() bool { return ix.quant }

// Vec returns the stored vector of a node. For a float index this is the
// stored slice and callers must not mutate it; for a quantized index it is
// a freshly dequantized (lossy) copy.
func (ix *Index) Vec(id int) vector.Vec32 {
	if !ix.quant {
		return ix.vecs[id]
	}
	return vector.Dequantize(vector.QVec32{
		Codes:  ix.codeAt(int32(id)),
		Scale:  ix.qscale[id],
		Offset: ix.qoff[id],
	})
}

// VectorBytes returns the resident bytes of vector storage alone: float32
// payloads for a float index, int8 codes plus the 16-byte per-node
// quantization record for a quantized one. This is the number the 4x
// memory claim is about; Bytes adds the adjacency lists shared by both
// layouts.
func (ix *Index) VectorBytes() int64 {
	if ix.quant {
		return int64(len(ix.codes)) + int64(len(ix.qscale))*16
	}
	var b int64
	for _, v := range ix.vecs {
		b += int64(len(v)) * 4
	}
	return b
}

// Bytes estimates the index's total resident footprint: vector storage
// plus adjacency lists and per-node bookkeeping (slice headers included,
// allocator slack not).
func (ix *Index) Bytes() int64 {
	b := ix.VectorBytes()
	for _, layers := range ix.links {
		b += 24 // layer-slice header
		for _, nbs := range layers {
			b += 24 + int64(len(nbs))*4
		}
	}
	b += int64(ix.Len()) * (4 + 1) // levels + tombstones
	if !ix.quant {
		b += int64(ix.Len()) * 24 // per-vector slice headers
	}
	return b
}

// item is one (distance, node) pair; all orderings tie-break on id so
// traversal is deterministic.
type item struct {
	d  float32
	id int32
}

func (a item) less(b item) bool { return a.d < b.d || (a.d == b.d && a.id < b.id) }

// splitmix64 is the per-node level hash (Steele et al.); a hash rather
// than an RNG so node i's level depends only on (seed, i).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (ix *Index) levelFor(id int) int {
	u := (float64(splitmix64(ix.seed+uint64(id))>>11) + 0.5) / (1 << 53)
	l := int(-math.Log(u) * ix.mL)
	if l > maxLevel {
		l = maxLevel
	}
	return l
}

// codeAt returns node id's row of the flat code matrix.
func (ix *Index) codeAt(id int32) []int8 {
	off := int(id) * ix.dim
	return ix.codes[off : off+ix.dim]
}

// nodeDist is the distance between two stored nodes. For quantized
// storage it expands the squared distance of the two reconstructions
// algebraically over the cached per-node sums, so the only per-dimension
// work is the integer code dot product.
func (ix *Index) nodeDist(a, b int32) float32 {
	if !ix.quant {
		return vector.SquaredEuclidean32(ix.vecs[a], ix.vecs[b])
	}
	sa, sb := ix.qscale[a], ix.qscale[b]
	oa, ob := ix.qoff[a], ix.qoff[b]
	do := oa - ob
	dot := vector.DotCodes(ix.codeAt(a), ix.codeAt(b))
	return float32(ix.dim)*do*do +
		2*do*(sa*float32(ix.qs1[a])-sb*float32(ix.qs1[b])) +
		sa*sa*float32(ix.qs2[a]) + sb*sb*float32(ix.qs2[b]) -
		2*sa*sb*float32(dot)
}

// queryDist is the asymmetric distance from a float query (with its Σq²
// and Σq precomputed once per search) to a quantized node: the exact
// squared distance between q and the node's reconstruction, again one
// dot product plus O(1) algebra.
func (ix *Index) queryDist(q vector.Vec32, q2, qs float32, id int32) float32 {
	s, o := ix.qscale[id], ix.qoff[id]
	dot := vector.DotF32Codes(q, ix.codeAt(id))
	term := s*s*float32(ix.qs2[id]) + 2*s*o*float32(ix.qs1[id]) + float32(ix.dim)*o*o
	return q2 - 2*o*qs - 2*s*dot + term
}

// probe is a prepared distance source for one traversal: a float query
// (asymmetric kernel against quantized nodes), or a stored node during
// insertion (symmetric int8 kernel), or a plain float vector against
// float storage. Preparing it once hoists the per-search precomputation
// out of the per-hop path.
type probe struct {
	ix *Index
	v  vector.Vec32 // float query; also the stored vector for float probes
	id int32        // stored-node probe for quantized storage; -1 otherwise
	q2 float32      // Σv² (quantized asymmetric path)
	qs float32      // Σv  (quantized asymmetric path)
}

func (p probe) dist(to int32) float32 {
	ix := p.ix
	if !ix.quant {
		return vector.SquaredEuclidean32(p.v, ix.vecs[to])
	}
	if p.id >= 0 {
		return ix.nodeDist(p.id, to)
	}
	return ix.queryDist(p.v, p.q2, p.qs, to)
}

// probeFor prepares a probe for stored node id (the insertion vantage).
func (ix *Index) probeFor(id int32) probe {
	if ix.quant {
		return probe{ix: ix, id: id}
	}
	return probe{ix: ix, id: -1, v: ix.vecs[id]}
}

// queryProbe prepares a probe for an external float query.
func (ix *Index) queryProbe(q vector.Vec32) probe {
	p := probe{ix: ix, id: -1, v: q}
	if ix.quant {
		var q2, qs float32
		for _, x := range q {
			q2 += x * x
			qs += x
		}
		p.q2, p.qs = q2, qs
	}
	return p
}

// appendFloat books one node with float32 storage (the vector is copied)
// and returns its id. The caller must insert the node afterwards.
func (ix *Index) appendFloat(v vector.Vec32) int32 {
	stored := make(vector.Vec32, len(v))
	copy(stored, v)
	ix.vecs = append(ix.vecs, stored)
	return ix.appendNode()
}

// appendCodes books one node with pre-quantized storage (codes are copied
// verbatim, never re-derived — Compact reuses this so compaction cannot
// drift the stored representation) and returns its id.
func (ix *Index) appendCodes(codes []int8, scale, offset float32) int32 {
	ix.codes = append(ix.codes, codes...)
	s1, s2 := vector.CodeSums(codes)
	ix.qscale = append(ix.qscale, scale)
	ix.qoff = append(ix.qoff, offset)
	ix.qs1 = append(ix.qs1, s1)
	ix.qs2 = append(ix.qs2, s2)
	return ix.appendNode()
}

// appendVector books storage for v under the index's storage mode.
func (ix *Index) appendVector(v vector.Vec32) int32 {
	if ix.quant {
		q := vector.Quantize(v)
		return ix.appendCodes(q.Codes, q.Scale, q.Offset)
	}
	return ix.appendFloat(v)
}

// appendNode books the id-parallel graph state for the node whose storage
// was just appended.
func (ix *Index) appendNode() int32 {
	id := int32(len(ix.levels))
	lvl := ix.levelFor(int(id))
	ix.levels = append(ix.levels, int32(lvl))
	ix.deleted = append(ix.deleted, false)
	ix.links = append(ix.links, make([][]int32, lvl+1))
	return id
}

// Add inserts a vector (copied; quantized on the way in when the index is
// quantized) and returns its node id.
func (ix *Index) Add(v vector.Vec32) int {
	if len(v) != ix.dim {
		panic(fmt.Sprintf("ann: Add dimension %d, index holds %d", len(v), ix.dim))
	}
	id := ix.appendVector(v)
	ix.insert(id)
	return int(id)
}

// insert links an appended node into the graph: plan against the current
// graph, then commit. This is the sequential building block shared by
// Add, Compact, and the warm-up prefix of Build.
func (ix *Index) insert(id int32) {
	sc := ix.scratch.Get().(*searchScratch)
	plan := ix.planNode(id, sc)
	ix.scratch.Put(sc)
	ix.commitNode(id, plan)
}

// planNode runs the insertion navigation for node id against the current
// graph and returns its selected neighbors per layer (index = layer;
// layers above the current graph top stay nil). It never modifies the
// graph, which is what lets Build plan a whole batch concurrently against
// a frozen prefix.
func (ix *Index) planNode(id int32, sc *searchScratch) [][]int32 {
	lvl := int(ix.levels[id])
	neigh := make([][]int32, lvl+1)
	if ix.entry < 0 {
		return neigh
	}
	p := ix.probeFor(id)
	ep := ix.entry
	for l := int(ix.maxLvl); l > lvl; l-- {
		ep = ix.greedy(p, ep, l)
	}
	top := lvl
	if int(ix.maxLvl) < top {
		top = int(ix.maxLvl)
	}
	for l := top; l >= 0; l-- {
		found := ix.searchLayer(p, sc, ep, ix.efCon, l, false)
		neigh[l] = ix.selectNeighbors(found, ix.m)
		if len(found) > 0 {
			ep = found[0].id
		}
	}
	return neigh
}

// commitNode installs a plan: the node's own links, reciprocal backlinks,
// and the entry-point bookkeeping. Committing immediately after planning
// reproduces the classic sequential HNSW insertion exactly.
func (ix *Index) commitNode(id int32, neigh [][]int32) {
	ix.links[id] = neigh
	for l := len(neigh) - 1; l >= 0; l-- {
		budget := ix.m
		if l == 0 {
			budget = 2 * ix.m
		}
		for _, nb := range neigh[l] {
			ix.linkBack(nb, id, l, budget)
		}
	}
	lvl := int32(len(neigh) - 1)
	if ix.entry < 0 || lvl > ix.maxLvl {
		ix.entry, ix.maxLvl = id, lvl
	}
}

// linkBack adds `id` to nb's layer-l neighbor list, re-selecting the list
// down to budget when it overflows (distances taken from nb's vantage).
func (ix *Index) linkBack(nb, id int32, l, budget int) {
	list := append(ix.links[nb][l], id)
	if len(list) <= budget {
		ix.links[nb][l] = list
		return
	}
	cands := make([]item, len(list))
	for i, o := range list {
		cands[i] = item{ix.nodeDist(nb, o), o}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].less(cands[j]) })
	ix.links[nb][l] = ix.selectNeighbors(cands, budget)
}

// selectNeighbors applies the HNSW heuristic to candidates sorted by
// distance: keep a candidate only if it is closer to the query point than
// to every neighbor already kept, which preserves edges spanning distinct
// directions (and, for our clustered lakes, distinct domains) instead of
// m redundant edges into one tight cluster. Remaining slots are backfilled
// with the nearest rejects so nodes keep their full degree.
func (ix *Index) selectNeighbors(cands []item, m int) []int32 {
	out := make([]int32, 0, m)
	var rejected []item
	for _, c := range cands {
		if len(out) == m {
			break
		}
		keep := true
		for _, s := range out {
			if ix.nodeDist(c.id, s) < c.d {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, c.id)
		} else {
			rejected = append(rejected, c)
		}
	}
	for _, c := range rejected {
		if len(out) == m {
			break
		}
		out = append(out, c.id)
	}
	return out
}

// greedy descends one layer: repeatedly hop to the neighbor strictly
// closer to the probe (ties to the smaller id, so the walk cannot cycle).
func (ix *Index) greedy(p probe, ep int32, layer int) int32 {
	best := p.dist(ep)
	for {
		improved := false
		for _, nb := range ix.links[ep][layer] {
			if d := p.dist(nb); d < best || (d == best && nb < ep) {
				best, ep, improved = d, nb, true
			}
		}
		if !improved {
			return ep
		}
	}
}

// searchLayer is the HNSW beam search over one layer: keep the ef closest
// admissible nodes seen, expand the closest unexpanded candidate, stop
// once the next candidate cannot improve the beam. Returns the beam
// sorted by (distance, id); the returned slice aliases sc and is valid
// only until the next searchLayer call on the same scratch. With
// liveOnly, tombstoned nodes are still traversed — deletions never
// disconnect the graph — but never occupy a beam slot, so queries keep
// their full ef of live results without widening the beam by the
// tombstone count.
func (ix *Index) searchLayer(p probe, sc *searchScratch, ep int32, ef, layer int, liveOnly bool) []item {
	sc.visited.next(ix.Len())
	sc.visited.visit(ep)
	first := item{p.dist(ep), ep}
	cand := append(sc.cand[:0], first)
	beam := sc.beam[:0]
	if !liveOnly || !ix.deleted[ep] {
		beam.push(first)
	}
	for len(cand) > 0 {
		c := cand.pop()
		if len(beam) >= ef && beam[0].less(c) {
			break
		}
		for _, nb := range ix.links[c.id][layer] {
			if !sc.visited.visit(nb) {
				continue
			}
			it := item{p.dist(nb), nb}
			if len(beam) < ef || it.less(beam[0]) {
				cand.push(it)
				if liveOnly && ix.deleted[nb] {
					continue
				}
				beam.push(it)
				if len(beam) > ef {
					beam.pop()
				}
			}
		}
	}
	sc.cand = cand[:0]
	sc.beam = beam[:0]
	out := []item(beam)
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// Search returns up to n live node ids nearest q, closest first (ties by
// id). ef bounds the base-layer beam and is clamped to at least n;
// tombstoned nodes are traversed but never hold beam slots, so query
// cost does not grow with the tombstone count.
func (ix *Index) Search(q vector.Vec32, n, ef int) []int {
	if n <= 0 || ix.entry < 0 || ix.Live() == 0 {
		return nil
	}
	if len(q) != ix.dim {
		panic(fmt.Sprintf("ann: Search dimension %d, index holds %d", len(q), ix.dim))
	}
	if ef < n {
		ef = n
	}
	if ef > ix.Len() {
		ef = ix.Len()
	}
	p := ix.queryProbe(q)
	sc := ix.scratch.Get().(*searchScratch)
	defer ix.scratch.Put(sc)
	ep := ix.entry
	for l := int(ix.maxLvl); l > 0; l-- {
		ep = ix.greedy(p, ep, l)
	}
	found := ix.searchLayer(p, sc, ep, ef, 0, true)
	if len(found) > n {
		found = found[:n]
	}
	out := make([]int, len(found))
	for i, it := range found {
		out[i] = int(it.id)
	}
	return out
}

// Remove tombstones a node: it stops appearing in search results but
// keeps routing traffic until the owner rebuilds. Removing an unknown or
// already-removed id is an error so owners catch bookkeeping bugs.
func (ix *Index) Remove(id int) error {
	if id < 0 || id >= ix.Len() {
		return fmt.Errorf("ann: Remove(%d): id out of range [0,%d)", id, ix.Len())
	}
	if ix.deleted[id] {
		return fmt.Errorf("ann: Remove(%d): already removed", id)
	}
	ix.deleted[id] = true
	ix.nDel++
	return nil
}

// Compact returns a fresh index holding only the live nodes, re-inserted
// in id order — their original insertion order, so a compacted graph is
// as deterministic as an incrementally built one. Quantized nodes carry
// their codes over verbatim (no re-quantization), so compaction preserves
// stored representations — and therefore distances — exactly. onLive
// reports each survivor's (old id, new id) pair in insertion order so
// owners can rebook their id-parallel state. The receiver is not
// modified.
func (ix *Index) Compact(onLive func(oldID, newID int)) *Index {
	out := New(ix.dim, Config{M: ix.m, EfConstruction: ix.efCon, Seed: ix.seed, Quantized: ix.quant})
	for id := 0; id < ix.Len(); id++ {
		if ix.deleted[id] {
			continue
		}
		var nid int32
		if ix.quant {
			nid = out.appendCodes(ix.codeAt(int32(id)), ix.qscale[id], ix.qoff[id])
		} else {
			nid = out.appendFloat(ix.vecs[id])
		}
		out.insert(nid)
		if onLive != nil {
			onLive(id, int(nid))
		}
	}
	return out
}

// Clone returns an independently mutable copy: adjacency lists and
// tombstones are deep-copied (insertion rewires neighbors in place) while
// the vector payloads — immutable once stored — are shared. Float
// storage shares the per-node slices behind a copied header slice;
// quantized storage shares the flat arrays behind capacity-clamped views,
// so an Add on either side reallocates instead of writing into the other
// side's tail. Serving layers mutate the clone and atomically swap it in;
// searches in flight on the original keep reading a frozen graph.
func (ix *Index) Clone() *Index {
	c := *ix
	c.vecs = make([]vector.Vec32, len(ix.vecs))
	copy(c.vecs, ix.vecs)
	c.codes = ix.codes[:len(ix.codes):len(ix.codes)]
	c.qscale = ix.qscale[:len(ix.qscale):len(ix.qscale)]
	c.qoff = ix.qoff[:len(ix.qoff):len(ix.qoff)]
	c.qs1 = ix.qs1[:len(ix.qs1):len(ix.qs1)]
	c.qs2 = ix.qs2[:len(ix.qs2):len(ix.qs2)]
	c.levels = make([]int32, len(ix.levels))
	copy(c.levels, ix.levels)
	c.deleted = make([]bool, len(ix.deleted))
	copy(c.deleted, ix.deleted)
	c.links = make([][][]int32, len(ix.links))
	for i, layers := range ix.links {
		nl := make([][]int32, len(layers))
		for l, nbs := range layers {
			nl[l] = make([]int32, len(nbs))
			copy(nl[l], nbs)
		}
		c.links[i] = nl
	}
	return &c
}
