// Package ann implements the approximate candidate-generation backend of
// the staged query plan (retrieve -> score -> diversify): a Hierarchical
// Navigable Small World graph (Malkov & Yashunin) over normalized float32
// vectors, searched with the fused squared-euclidean kernel — monotone in
// cosine similarity for unit vectors, so the nearest candidates under it
// are the highest-cosine ones with no sqrt per hop.
//
// The index is append-only with tombstoned deletion: Remove marks a node
// dead so searches skip it in their results while still traversing it for
// connectivity, and DeletedFraction lets the owning searcher decide when
// to rebuild from the live nodes (the searchers rebuild past one half
// dead). Searches are safe to run concurrently; mutations (Add/Remove)
// are not safe concurrently with anything — snapshot-swapped serving
// mutates a Clone and swaps it in.
//
// Determinism: level assignment hashes (seed, node id) instead of drawing
// from a shared RNG, so the graph produced by a given insertion sequence
// is identical across runs, worker counts, and processes — which is what
// lets recall tests, golden files, and the incremental-vs-rebuilt
// equivalence harness pin ANN behavior at all.
package ann

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"dust/internal/vector"
)

// Defaults; Config zero values take them.
const (
	// DefaultM is the neighbor budget per node per layer (the base layer
	// allows 2M), the main memory/recall dial of HNSW.
	DefaultM = 16
	// DefaultEfConstruction is the beam width used while inserting.
	DefaultEfConstruction = 200
	// DefaultSeed salts the per-node level hash.
	DefaultSeed = 0x_D057_AA11_2026
	// maxLevel caps node levels so a corrupt or adversarial file cannot
	// demand absurd per-node layer allocations (ln-distributed levels
	// stay in single digits for any realistic index size).
	maxLevel = 48
)

// Config shapes graph construction. The zero value takes the defaults.
type Config struct {
	M              int    // max neighbors per node per layer (base layer: 2M)
	EfConstruction int    // insertion beam width
	Seed           uint64 // level-hash salt
}

func (c *Config) defaults() {
	if c.M <= 0 {
		c.M = DefaultM
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = DefaultEfConstruction
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
}

// Index is an HNSW graph. Node ids are assigned densely in insertion
// order and never reused; a removed node keeps its id as a tombstone
// until the owner rebuilds.
type Index struct {
	dim   int
	m     int
	efCon int
	seed  uint64
	mL    float64 // level multiplier, 1/ln(M)

	vecs    []vector.Vec32
	levels  []int32
	links   [][][]int32 // node -> layer -> neighbor ids
	deleted []bool
	nDel    int
	entry   int32 // -1 while empty
	maxLvl  int32

	// scratch pools the beam search's visited sets so a query does not
	// pay an O(total nodes) allocate-and-zero per layer; a pointer so
	// clones (and the shallow copies Clone starts from) share it safely.
	scratch *sync.Pool
}

// visitSet is a generation-stamped visited set: marking and testing are
// O(1), and reuse across searches skips the O(n) clear — the slice is
// only re-zeroed when it grows or the uint32 generation wraps.
type visitSet struct {
	gen   uint32
	marks []uint32
}

// next prepares the set for one traversal over n nodes.
func (v *visitSet) next(n int) {
	if len(v.marks) < n {
		v.marks = make([]uint32, n)
		v.gen = 0
	}
	if v.gen == ^uint32(0) {
		clear(v.marks)
		v.gen = 0
	}
	v.gen++
}

// visit marks id, reporting whether this is its first visit.
func (v *visitSet) visit(id int32) bool {
	if v.marks[id] == v.gen {
		return false
	}
	v.marks[id] = v.gen
	return true
}

// New creates an empty index over dim-dimensional vectors.
func New(dim int, cfg Config) *Index {
	if dim <= 0 {
		panic(fmt.Sprintf("ann: dimension %d must be positive", dim))
	}
	cfg.defaults()
	return &Index{
		dim:     dim,
		m:       cfg.M,
		efCon:   cfg.EfConstruction,
		seed:    cfg.Seed,
		mL:      1 / math.Log(float64(cfg.M)),
		entry:   -1,
		scratch: &sync.Pool{New: func() any { return new(visitSet) }},
	}
}

// Dim returns the vector dimension.
func (ix *Index) Dim() int { return ix.dim }

// Len returns the number of nodes, tombstones included.
func (ix *Index) Len() int { return len(ix.vecs) }

// Live returns the number of non-tombstoned nodes.
func (ix *Index) Live() int { return len(ix.vecs) - ix.nDel }

// Deleted reports whether id is tombstoned.
func (ix *Index) Deleted(id int) bool { return ix.deleted[id] }

// DeletedFraction returns the tombstone share, the owner's rebuild signal.
func (ix *Index) DeletedFraction() float64 {
	if len(ix.vecs) == 0 {
		return 0
	}
	return float64(ix.nDel) / float64(len(ix.vecs))
}

// Vec returns the stored vector of a node. Callers must not mutate it.
func (ix *Index) Vec(id int) vector.Vec32 { return ix.vecs[id] }

// item is one (distance, node) pair; all orderings tie-break on id so
// traversal is deterministic.
type item struct {
	d  float32
	id int32
}

func (a item) less(b item) bool { return a.d < b.d || (a.d == b.d && a.id < b.id) }

// splitmix64 is the per-node level hash (Steele et al.); a hash rather
// than an RNG so node i's level depends only on (seed, i).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (ix *Index) levelFor(id int) int {
	u := (float64(splitmix64(ix.seed+uint64(id))>>11) + 0.5) / (1 << 53)
	l := int(-math.Log(u) * ix.mL)
	if l > maxLevel {
		l = maxLevel
	}
	return l
}

// Add inserts a vector (copied) and returns its node id.
func (ix *Index) Add(v vector.Vec32) int {
	if len(v) != ix.dim {
		panic(fmt.Sprintf("ann: Add dimension %d, index holds %d", len(v), ix.dim))
	}
	id := int32(len(ix.vecs))
	lvl := ix.levelFor(int(id))
	stored := make(vector.Vec32, len(v))
	copy(stored, v)
	ix.vecs = append(ix.vecs, stored)
	ix.levels = append(ix.levels, int32(lvl))
	ix.deleted = append(ix.deleted, false)
	ix.links = append(ix.links, make([][]int32, lvl+1))
	if ix.entry < 0 {
		ix.entry, ix.maxLvl = id, int32(lvl)
		return int(id)
	}

	ep := ix.entry
	for l := int(ix.maxLvl); l > lvl; l-- {
		ep = ix.greedy(stored, ep, l)
	}
	top := lvl
	if int(ix.maxLvl) < top {
		top = int(ix.maxLvl)
	}
	for l := top; l >= 0; l-- {
		found := ix.searchLayer(stored, ep, ix.efCon, l, false)
		neigh := ix.selectNeighbors(found, ix.m)
		ix.links[id][l] = neigh
		budget := ix.m
		if l == 0 {
			budget = 2 * ix.m
		}
		for _, nb := range neigh {
			ix.linkBack(nb, id, l, budget)
		}
		if len(found) > 0 {
			ep = found[0].id
		}
	}
	if lvl > int(ix.maxLvl) {
		ix.maxLvl, ix.entry = int32(lvl), id
	}
	return int(id)
}

// linkBack adds `id` to nb's layer-l neighbor list, re-selecting the list
// down to budget when it overflows (distances taken from nb's vantage).
func (ix *Index) linkBack(nb, id int32, l, budget int) {
	list := append(ix.links[nb][l], id)
	if len(list) <= budget {
		ix.links[nb][l] = list
		return
	}
	cands := make([]item, len(list))
	for i, o := range list {
		cands[i] = item{vector.SquaredEuclidean32(ix.vecs[nb], ix.vecs[o]), o}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].less(cands[j]) })
	ix.links[nb][l] = ix.selectNeighbors(cands, budget)
}

// selectNeighbors applies the HNSW heuristic to candidates sorted by
// distance: keep a candidate only if it is closer to the query point than
// to every neighbor already kept, which preserves edges spanning distinct
// directions (and, for our clustered lakes, distinct domains) instead of
// m redundant edges into one tight cluster. Remaining slots are backfilled
// with the nearest rejects so nodes keep their full degree.
func (ix *Index) selectNeighbors(cands []item, m int) []int32 {
	out := make([]int32, 0, m)
	var rejected []item
	for _, c := range cands {
		if len(out) == m {
			break
		}
		keep := true
		for _, s := range out {
			if vector.SquaredEuclidean32(ix.vecs[c.id], ix.vecs[s]) < c.d {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, c.id)
		} else {
			rejected = append(rejected, c)
		}
	}
	for _, c := range rejected {
		if len(out) == m {
			break
		}
		out = append(out, c.id)
	}
	return out
}

// greedy descends one layer: repeatedly hop to the neighbor strictly
// closer to q (ties to the smaller id, so the walk cannot cycle).
func (ix *Index) greedy(q vector.Vec32, ep int32, layer int) int32 {
	best := vector.SquaredEuclidean32(q, ix.vecs[ep])
	for {
		improved := false
		for _, nb := range ix.links[ep][layer] {
			if d := vector.SquaredEuclidean32(q, ix.vecs[nb]); d < best || (d == best && nb < ep) {
				best, ep, improved = d, nb, true
			}
		}
		if !improved {
			return ep
		}
	}
}

// searchLayer is the HNSW beam search over one layer: keep the ef closest
// admissible nodes seen, expand the closest unexpanded candidate, stop
// once the next candidate cannot improve the beam. Returns the beam
// sorted by (distance, id). With liveOnly, tombstoned nodes are still
// traversed — deletions never disconnect the graph — but never occupy a
// beam slot, so queries keep their full ef of live results without
// widening the beam by the tombstone count.
func (ix *Index) searchLayer(q vector.Vec32, ep int32, ef, layer int, liveOnly bool) []item {
	visited := ix.scratch.Get().(*visitSet)
	defer ix.scratch.Put(visited)
	visited.next(len(ix.vecs))
	visited.visit(ep)
	first := item{vector.SquaredEuclidean32(q, ix.vecs[ep]), ep}
	cand := minHeap{first}
	var beam maxHeap
	if !liveOnly || !ix.deleted[ep] {
		beam.push(first)
	}
	for len(cand) > 0 {
		c := cand.pop()
		if len(beam) >= ef && beam[0].less(c) {
			break
		}
		for _, nb := range ix.links[c.id][layer] {
			if !visited.visit(nb) {
				continue
			}
			it := item{vector.SquaredEuclidean32(q, ix.vecs[nb]), nb}
			if len(beam) < ef || it.less(beam[0]) {
				cand.push(it)
				if liveOnly && ix.deleted[nb] {
					continue
				}
				beam.push(it)
				if len(beam) > ef {
					beam.pop()
				}
			}
		}
	}
	out := []item(beam)
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// Search returns up to n live node ids nearest q, closest first (ties by
// id). ef bounds the base-layer beam and is clamped to at least n;
// tombstoned nodes are traversed but never hold beam slots, so query
// cost does not grow with the tombstone count.
func (ix *Index) Search(q vector.Vec32, n, ef int) []int {
	if n <= 0 || ix.entry < 0 || ix.Live() == 0 {
		return nil
	}
	if len(q) != ix.dim {
		panic(fmt.Sprintf("ann: Search dimension %d, index holds %d", len(q), ix.dim))
	}
	if ef < n {
		ef = n
	}
	if ef > len(ix.vecs) {
		ef = len(ix.vecs)
	}
	ep := ix.entry
	for l := int(ix.maxLvl); l > 0; l-- {
		ep = ix.greedy(q, ep, l)
	}
	found := ix.searchLayer(q, ep, ef, 0, true)
	if len(found) > n {
		found = found[:n]
	}
	out := make([]int, len(found))
	for i, it := range found {
		out[i] = int(it.id)
	}
	return out
}

// Remove tombstones a node: it stops appearing in search results but
// keeps routing traffic until the owner rebuilds. Removing an unknown or
// already-removed id is an error so owners catch bookkeeping bugs.
func (ix *Index) Remove(id int) error {
	if id < 0 || id >= len(ix.vecs) {
		return fmt.Errorf("ann: Remove(%d): id out of range [0,%d)", id, len(ix.vecs))
	}
	if ix.deleted[id] {
		return fmt.Errorf("ann: Remove(%d): already removed", id)
	}
	ix.deleted[id] = true
	ix.nDel++
	return nil
}

// Compact returns a fresh index holding only the live nodes, re-inserted
// in id order — their original insertion order, so a compacted graph is
// as deterministic as an incrementally built one. onLive reports each
// survivor's (old id, new id) pair in insertion order so owners can
// rebook their id-parallel state. The receiver is not modified.
func (ix *Index) Compact(onLive func(oldID, newID int)) *Index {
	out := New(ix.dim, Config{M: ix.m, EfConstruction: ix.efCon, Seed: ix.seed})
	for id := range ix.vecs {
		if ix.deleted[id] {
			continue
		}
		nid := out.Add(ix.vecs[id])
		if onLive != nil {
			onLive(id, nid)
		}
	}
	return out
}

// Clone returns an independently mutable copy: adjacency lists and
// tombstones are deep-copied (insertion rewires neighbors in place) while
// the vectors themselves — immutable once stored — are shared. Serving
// layers mutate the clone and atomically swap it in; searches in flight
// on the original keep reading a frozen graph.
func (ix *Index) Clone() *Index {
	c := *ix
	c.vecs = make([]vector.Vec32, len(ix.vecs))
	copy(c.vecs, ix.vecs)
	c.levels = make([]int32, len(ix.levels))
	copy(c.levels, ix.levels)
	c.deleted = make([]bool, len(ix.deleted))
	copy(c.deleted, ix.deleted)
	c.links = make([][][]int32, len(ix.links))
	for i, layers := range ix.links {
		nl := make([][]int32, len(layers))
		for l, nbs := range layers {
			nl[l] = make([]int32, len(nbs))
			copy(nl[l], nbs)
		}
		c.links[i] = nl
	}
	return &c
}
