package ann

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"dust/internal/codec"
	"dust/internal/vector"
)

// randomUnit generates clustered unit vectors: `clusters` centers with
// small per-point noise, the geometry of a data lake full of near-copies.
func clusteredVecs(n, dim, clusters int, seed int64) []vector.Vec32 {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]vector.Vec, clusters)
	for i := range centers {
		c := make(vector.Vec, dim)
		for j := range c {
			c[j] = rng.NormFloat64()
		}
		centers[i] = vector.Normalize(c)
	}
	out := make([]vector.Vec32, n)
	for i := range out {
		c := centers[i%clusters]
		v := make(vector.Vec, dim)
		for j := range v {
			v[j] = c[j] + 0.15*rng.NormFloat64()
		}
		out[i] = vector.ToVec32(vector.Normalize(v))
	}
	return out
}

// bruteTopN is the exact oracle: ids sorted by (distance, id).
func bruteTopN(ix *Index, q vector.Vec32, n int) []int {
	type di struct {
		d  float32
		id int
	}
	var all []di
	for id := 0; id < ix.Len(); id++ {
		if ix.Deleted(id) {
			continue
		}
		all = append(all, di{vector.SquaredEuclidean32(q, ix.Vec(id)), id})
	}
	sort.Slice(all, func(i, j int) bool {
		return all[i].d < all[j].d || (all[i].d == all[j].d && all[i].id < all[j].id)
	})
	if len(all) > n {
		all = all[:n]
	}
	out := make([]int, len(all))
	for i, e := range all {
		out[i] = e.id
	}
	return out
}

func buildIndex(vecs []vector.Vec32) *Index {
	ix := New(len(vecs[0]), Config{})
	for _, v := range vecs {
		ix.Add(v)
	}
	return ix
}

func TestSearchRecallVsBruteForce(t *testing.T) {
	vecs := clusteredVecs(2000, 32, 8, 7)
	ix := buildIndex(vecs)
	queries := clusteredVecs(50, 32, 8, 99)
	const k = 10
	hits, total := 0, 0
	for _, q := range queries {
		want := bruteTopN(ix, q, k)
		got := ix.Search(q, k, 100)
		in := make(map[int]bool, len(got))
		for _, id := range got {
			in[id] = true
		}
		for _, id := range want {
			total++
			if in[id] {
				hits++
			}
		}
	}
	if recall := float64(hits) / float64(total); recall < 0.95 {
		t.Fatalf("recall@%d = %.3f, want >= 0.95", k, recall)
	}
}

func TestSearchExactOnTinyIndex(t *testing.T) {
	// With ef >= n the beam covers everything reachable, so a small
	// index must return the exact nearest neighbors in exact order.
	vecs := clusteredVecs(40, 16, 3, 3)
	ix := buildIndex(vecs)
	for qi, q := range clusteredVecs(10, 16, 3, 4) {
		want := bruteTopN(ix, q, 5)
		got := ix.Search(q, 5, ix.Len())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: got %v, want %v", qi, got, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	vecs := clusteredVecs(500, 16, 4, 11)
	a, b := buildIndex(vecs), buildIndex(vecs)
	q := clusteredVecs(1, 16, 4, 12)[0]
	for _, n := range []int{1, 5, 20} {
		if ga, gb := a.Search(q, n, 64), b.Search(q, n, 64); !reflect.DeepEqual(ga, gb) {
			t.Fatalf("n=%d: two identical builds disagree: %v vs %v", n, ga, gb)
		}
	}
}

func TestRemoveTombstones(t *testing.T) {
	vecs := clusteredVecs(200, 16, 4, 21)
	ix := buildIndex(vecs)
	q := vecs[17]
	top := ix.Search(q, 1, 32)
	if len(top) != 1 || top[0] != 17 {
		t.Fatalf("self-search returned %v, want [17]", top)
	}
	if err := ix.Remove(17); err != nil {
		t.Fatal(err)
	}
	if err := ix.Remove(17); err == nil {
		t.Fatal("double Remove did not error")
	}
	if err := ix.Remove(-1); err == nil {
		t.Fatal("Remove(-1) did not error")
	}
	if ix.Live() != 199 || !ix.Deleted(17) {
		t.Fatalf("Live=%d Deleted(17)=%v after remove", ix.Live(), ix.Deleted(17))
	}
	for _, id := range ix.Search(q, 50, 64) {
		if id == 17 {
			t.Fatal("tombstoned node surfaced in search results")
		}
	}
	// Results must match a brute-force scan that skips the tombstone.
	want := bruteTopN(ix, q, 5)
	got := ix.Search(q, 5, ix.Len())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-remove search %v, want %v", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	vecs := clusteredVecs(100, 16, 2, 31)
	ix := buildIndex(vecs)
	q := vecs[3]
	before := ix.Search(q, 10, 64)

	cl := ix.Clone()
	if err := cl.Remove(before[0]); err != nil {
		t.Fatal(err)
	}
	extra := clusteredVecs(20, 16, 2, 32)
	for _, v := range extra {
		cl.Add(v)
	}
	after := ix.Search(q, 10, 64)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("mutating a clone changed the original: %v -> %v", before, after)
	}
	if cl.Len() != 120 || cl.Live() != 119 {
		t.Fatalf("clone Len=%d Live=%d, want 120/119", cl.Len(), cl.Live())
	}
}

func roundTrip(t *testing.T, ix *Index) *Index {
	t.Helper()
	var b codec.Buffer
	ix.Encode(&b)
	sc := codec.NewScanner(b.Bytes())
	got, err := Decode(sc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := sc.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	return got
}

func TestCodecRoundTrip(t *testing.T) {
	vecs := clusteredVecs(300, 16, 4, 41)
	ix := buildIndex(vecs)
	for _, id := range []int{5, 77, 142} {
		if err := ix.Remove(id); err != nil {
			t.Fatal(err)
		}
	}
	got := roundTrip(t, ix)
	if got.Len() != ix.Len() || got.Live() != ix.Live() || got.Dim() != ix.Dim() {
		t.Fatalf("round trip changed shape: %d/%d/%d vs %d/%d/%d",
			got.Len(), got.Live(), got.Dim(), ix.Len(), ix.Live(), ix.Dim())
	}
	q := clusteredVecs(1, 16, 4, 42)[0]
	if a, b := ix.Search(q, 10, 64), got.Search(q, 10, 64); !reflect.DeepEqual(a, b) {
		t.Fatalf("round trip changed search results: %v vs %v", a, b)
	}
	// A decoded graph must keep growing exactly like the original.
	extra := clusteredVecs(10, 16, 4, 43)
	for _, v := range extra {
		ix.Add(v)
		got.Add(v)
	}
	if a, b := ix.Search(q, 10, 64), got.Search(q, 10, 64); !reflect.DeepEqual(a, b) {
		t.Fatalf("post-decode growth diverged: %v vs %v", a, b)
	}

	empty := roundTrip(t, New(8, Config{}))
	if empty.Len() != 0 || empty.Search(make(vector.Vec32, 8), 3, 8) != nil {
		t.Fatal("empty index did not round-trip to an empty index")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	ix := buildIndex(clusteredVecs(50, 8, 2, 51))
	var b codec.Buffer
	ix.Encode(&b)
	valid := b.Bytes()

	// Truncations at every prefix must error, never panic.
	for cut := 0; cut < len(valid); cut += 7 {
		sc := codec.NewScanner(valid[:cut])
		if ix, err := Decode(sc); err == nil && sc.Finish() == nil {
			_ = ix.Search(make(vector.Vec32, ix.Dim()), 3, 8)
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}

	bad := []struct {
		name string
		mut  func() *codec.Buffer
	}{
		{"zero dim", func() *codec.Buffer {
			var b codec.Buffer
			b.Int(0)
			return &b
		}},
		{"huge M", func() *codec.Buffer {
			var b codec.Buffer
			b.Int(8)
			b.Int(1 << 20)
			b.Int(10)
			b.Uvarint(1)
			b.Int(0)
			return &b
		}},
		{"entry out of range", func() *codec.Buffer {
			var b codec.Buffer
			b.Int(8)
			b.Int(4)
			b.Int(10)
			b.Uvarint(1)
			b.Int(1) // one node
			b.Int(9) // entry 9 of 1
			b.Int(0) // maxLvl
			return &b
		}},
	}
	for _, tc := range bad {
		if _, err := Decode(codec.NewScanner(tc.mut().Bytes())); !errors.Is(err, codec.ErrCorrupt) && !errors.Is(err, codec.ErrTruncated) {
			t.Errorf("%s: err = %v, want ErrCorrupt/ErrTruncated", tc.name, err)
		}
	}
}

func encodeBytes(ix *Index) []byte {
	var b codec.Buffer
	ix.Encode(&b)
	return b.Bytes()
}

// Build must be a pure function of (vecs, cfg): the worker count may only
// change wall-clock time, never a single byte of the built graph. This is
// the contract that makes parallel builds shippable — a saved index is
// reproducible regardless of the machine that built it.
func TestBuildWorkersBitIdentical(t *testing.T) {
	vecs := clusteredVecs(1500, 24, 6, 71)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"float", Config{}},
		{"quantized", Config{Quantized: true}},
	} {
		base := encodeBytes(Build(24, vecs, tc.cfg, 1))
		for _, w := range []int{2, 4, 8} {
			if got := encodeBytes(Build(24, vecs, tc.cfg, w)); !bytes.Equal(base, got) {
				t.Fatalf("%s: workers=%d built a different graph than workers=1", tc.name, w)
			}
		}
	}
}

// Below the warm prefix Build has no batches to run, so it must match a
// plain Add loop byte for byte — the parallel path is a strict extension
// of the sequential one, not a different algorithm.
func TestBuildMatchesSequentialAdd(t *testing.T) {
	vecs := clusteredVecs(200, 16, 4, 73)
	seq := buildIndex(vecs)
	par := Build(16, vecs, Config{}, 8)
	if !bytes.Equal(encodeBytes(seq), encodeBytes(par)) {
		t.Fatal("Build below the warm prefix diverged from sequential Add")
	}
}

// Quantized navigation must keep recall: the int8 beam search ranks by
// approximate distances, so we gate it against the true float oracle (a
// float index over the same vectors — ids line up by insertion order).
func TestQuantizedRecall(t *testing.T) {
	vecs := clusteredVecs(2000, 32, 8, 7)
	oracle := buildIndex(vecs)
	qix := Build(32, vecs, Config{Quantized: true}, 4)
	if !qix.Quantized() {
		t.Fatal("Config.Quantized did not stick")
	}
	queries := clusteredVecs(50, 32, 8, 99)
	const k = 10
	hits, total := 0, 0
	for _, q := range queries {
		want := bruteTopN(oracle, q, k)
		got := qix.Search(q, k, 100)
		in := make(map[int]bool, len(got))
		for _, id := range got {
			in[id] = true
		}
		for _, id := range want {
			total++
			if in[id] {
				hits++
			}
		}
	}
	if recall := float64(hits) / float64(total); recall < 0.95 {
		t.Fatalf("quantized recall@%d = %.3f vs float oracle, want >= 0.95", k, recall)
	}
}

func TestQuantizedCodecRoundTrip(t *testing.T) {
	vecs := clusteredVecs(300, 16, 4, 45)
	ix := Build(16, vecs, Config{Quantized: true}, 2)
	for _, id := range []int{5, 77, 142} {
		if err := ix.Remove(id); err != nil {
			t.Fatal(err)
		}
	}
	got := roundTrip(t, ix)
	if !got.Quantized() {
		t.Fatal("round trip dropped the quantized storage flag")
	}
	if got.Len() != ix.Len() || got.Live() != ix.Live() || got.Dim() != ix.Dim() {
		t.Fatalf("round trip changed shape: %d/%d/%d vs %d/%d/%d",
			got.Len(), got.Live(), got.Dim(), ix.Len(), ix.Live(), ix.Dim())
	}
	q := clusteredVecs(1, 16, 4, 46)[0]
	if a, b := ix.Search(q, 10, 64), got.Search(q, 10, 64); !reflect.DeepEqual(a, b) {
		t.Fatalf("round trip changed search results: %v vs %v", a, b)
	}
	// Growth equivalence: a decoded quantized graph keeps extending exactly
	// like the original (codes, sums, and links all restored verbatim).
	for _, v := range clusteredVecs(10, 16, 4, 47) {
		ix.Add(v)
		got.Add(v)
	}
	if !bytes.Equal(encodeBytes(ix), encodeBytes(got)) {
		t.Fatal("post-decode growth diverged from the original quantized graph")
	}
}

func TestDecodeRejectsQuantizedCorruption(t *testing.T) {
	// A hand-written single-node quantized payload in the v2 layout; each
	// case bends one field that Decode must catch.
	payload := func(scale, offset float32, codes []byte) *codec.Buffer {
		var b codec.Buffer
		b.Bool(true) // quantized storage
		b.Int(8)     // dim
		b.Int(4)     // M
		b.Int(10)    // efConstruction
		b.Uvarint(1) // seed
		b.Int(1)     // one node
		b.Int(0)     // entry
		b.Int(0)     // maxLvl
		b.Int(0)     // node level
		b.Bool(false)
		b.Float32(scale)
		b.Float32(offset)
		b.RawBytes(codes)
		b.Int(0) // layer 0: no neighbors
		return &b
	}
	// Sanity: the well-formed version of the payload decodes cleanly, so
	// the rejections below test the mutation and not the layout.
	if ix, err := Decode(codec.NewScanner(payload(0.5, 0, make([]byte, 8)).Bytes())); err != nil {
		t.Fatalf("well-formed quantized payload rejected: %v", err)
	} else if !ix.Quantized() || ix.Len() != 1 {
		t.Fatalf("well-formed payload decoded to Quantized=%v Len=%d", ix.Quantized(), ix.Len())
	}

	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	bad := []struct {
		name string
		buf  *codec.Buffer
	}{
		{"NaN scale", payload(nan, 0, make([]byte, 8))},
		{"Inf offset", payload(0.5, inf, make([]byte, 8))},
		{"negative scale", payload(-1, 0, make([]byte, 8))},
		{"truncated codes", payload(0.5, 0, make([]byte, 7))},
		{"oversized codes", payload(0.5, 0, make([]byte, 9))},
	}
	for _, tc := range bad {
		if _, err := Decode(codec.NewScanner(tc.buf.Bytes())); !errors.Is(err, codec.ErrCorrupt) && !errors.Is(err, codec.ErrTruncated) {
			t.Errorf("%s: err = %v, want ErrCorrupt/ErrTruncated", tc.name, err)
		}
	}

	// Truncations of a real quantized encoding must error, never panic.
	valid := encodeBytes(Build(8, clusteredVecs(50, 8, 2, 51), Config{Quantized: true}, 2))
	for cut := 0; cut < len(valid); cut += 7 {
		sc := codec.NewScanner(valid[:cut])
		if ix, err := Decode(sc); err == nil && sc.Finish() == nil {
			_ = ix.Search(make(vector.Vec32, ix.Dim()), 3, 8)
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
}

// Compact and Clone must preserve search behaviour exactly on quantized
// storage: codes are copied verbatim (never re-quantized), so with an
// exhaustive beam the ranked results match modulo Compact's id remap.
func TestQuantizedCompactClonePreservesSearch(t *testing.T) {
	vecs := clusteredVecs(400, 16, 4, 81)
	ix := Build(16, vecs, Config{Quantized: true}, 3)
	for _, id := range []int{3, 120, 377} {
		if err := ix.Remove(id); err != nil {
			t.Fatal(err)
		}
	}
	queries := clusteredVecs(20, 16, 4, 82)
	want := make([][]int, len(queries))
	for i, q := range queries {
		want[i] = ix.Search(q, 10, ix.Len())
	}

	cl := ix.Clone()
	remap := make(map[int]int)
	cp := ix.Compact(func(oldID, newID int) { remap[oldID] = newID })
	if !cl.Quantized() || !cp.Quantized() {
		t.Fatalf("storage flag lost: clone=%v compact=%v", cl.Quantized(), cp.Quantized())
	}
	if cp.Len() != ix.Live() || cp.Live() != ix.Live() {
		t.Fatalf("compact Len=%d Live=%d, want %d live nodes", cp.Len(), cp.Live(), ix.Live())
	}
	for i, q := range queries {
		if got := cl.Search(q, 10, cl.Len()); !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("query %d: clone results %v, want %v", i, got, want[i])
		}
		mapped := make([]int, len(want[i]))
		for j, id := range want[i] {
			mapped[j] = remap[id]
		}
		if got := cp.Search(q, 10, cp.Len()); !reflect.DeepEqual(got, mapped) {
			t.Fatalf("query %d: compact results %v, want %v (remapped from %v)", i, got, mapped, want[i])
		}
	}
}

// Search must stay allocation-lean: traversal state lives in a pooled
// scratch, so a query costs only the result slice and a handful of fixed
// allocations, independent of ef and graph size. The bound pins the
// scratch reuse — regressing to per-query beam/visited allocations blows
// straight through it.
func TestSearchAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"float", Config{}},
		{"quantized", Config{Quantized: true}},
	} {
		ix := Build(32, clusteredVecs(2000, 32, 8, 91), tc.cfg, 2)
		q := clusteredVecs(1, 32, 8, 92)[0]
		allocs := testing.AllocsPerRun(100, func() {
			ix.Search(q, 10, 100)
		})
		if allocs > 8 {
			t.Errorf("%s: %.1f allocs per Search, want <= 8", tc.name, allocs)
		}
	}
}

func BenchmarkSearch(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		vecs := clusteredVecs(n, 64, 10, 61)
		ix := buildIndex(vecs)
		qix := Build(64, vecs, Config{Quantized: true}, 1)
		q := clusteredVecs(1, 64, 10, 62)[0]
		b.Run(fmt.Sprintf("hnsw/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ix.Search(q, 10, 100)
			}
		})
		b.Run(fmt.Sprintf("hnsw-quant/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				qix.Search(q, 10, 100)
			}
		})
		b.Run(fmt.Sprintf("brute/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bruteTopN(ix, q, 10)
			}
		})
	}
}

func BenchmarkBuild(b *testing.B) {
	vecs := clusteredVecs(5000, 64, 10, 63)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"float", Config{}},
		{"quantized", Config{Quantized: true}},
	} {
		for _, w := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", tc.name, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					Build(64, vecs, tc.cfg, w)
				}
			})
		}
	}
}
