package ann

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"dust/internal/codec"
	"dust/internal/vector"
)

// randomUnit generates clustered unit vectors: `clusters` centers with
// small per-point noise, the geometry of a data lake full of near-copies.
func clusteredVecs(n, dim, clusters int, seed int64) []vector.Vec32 {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]vector.Vec, clusters)
	for i := range centers {
		c := make(vector.Vec, dim)
		for j := range c {
			c[j] = rng.NormFloat64()
		}
		centers[i] = vector.Normalize(c)
	}
	out := make([]vector.Vec32, n)
	for i := range out {
		c := centers[i%clusters]
		v := make(vector.Vec, dim)
		for j := range v {
			v[j] = c[j] + 0.15*rng.NormFloat64()
		}
		out[i] = vector.ToVec32(vector.Normalize(v))
	}
	return out
}

// bruteTopN is the exact oracle: ids sorted by (distance, id).
func bruteTopN(ix *Index, q vector.Vec32, n int) []int {
	type di struct {
		d  float32
		id int
	}
	var all []di
	for id := 0; id < ix.Len(); id++ {
		if ix.Deleted(id) {
			continue
		}
		all = append(all, di{vector.SquaredEuclidean32(q, ix.Vec(id)), id})
	}
	sort.Slice(all, func(i, j int) bool {
		return all[i].d < all[j].d || (all[i].d == all[j].d && all[i].id < all[j].id)
	})
	if len(all) > n {
		all = all[:n]
	}
	out := make([]int, len(all))
	for i, e := range all {
		out[i] = e.id
	}
	return out
}

func buildIndex(vecs []vector.Vec32) *Index {
	ix := New(len(vecs[0]), Config{})
	for _, v := range vecs {
		ix.Add(v)
	}
	return ix
}

func TestSearchRecallVsBruteForce(t *testing.T) {
	vecs := clusteredVecs(2000, 32, 8, 7)
	ix := buildIndex(vecs)
	queries := clusteredVecs(50, 32, 8, 99)
	const k = 10
	hits, total := 0, 0
	for _, q := range queries {
		want := bruteTopN(ix, q, k)
		got := ix.Search(q, k, 100)
		in := make(map[int]bool, len(got))
		for _, id := range got {
			in[id] = true
		}
		for _, id := range want {
			total++
			if in[id] {
				hits++
			}
		}
	}
	if recall := float64(hits) / float64(total); recall < 0.95 {
		t.Fatalf("recall@%d = %.3f, want >= 0.95", k, recall)
	}
}

func TestSearchExactOnTinyIndex(t *testing.T) {
	// With ef >= n the beam covers everything reachable, so a small
	// index must return the exact nearest neighbors in exact order.
	vecs := clusteredVecs(40, 16, 3, 3)
	ix := buildIndex(vecs)
	for qi, q := range clusteredVecs(10, 16, 3, 4) {
		want := bruteTopN(ix, q, 5)
		got := ix.Search(q, 5, ix.Len())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: got %v, want %v", qi, got, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	vecs := clusteredVecs(500, 16, 4, 11)
	a, b := buildIndex(vecs), buildIndex(vecs)
	q := clusteredVecs(1, 16, 4, 12)[0]
	for _, n := range []int{1, 5, 20} {
		if ga, gb := a.Search(q, n, 64), b.Search(q, n, 64); !reflect.DeepEqual(ga, gb) {
			t.Fatalf("n=%d: two identical builds disagree: %v vs %v", n, ga, gb)
		}
	}
}

func TestRemoveTombstones(t *testing.T) {
	vecs := clusteredVecs(200, 16, 4, 21)
	ix := buildIndex(vecs)
	q := vecs[17]
	top := ix.Search(q, 1, 32)
	if len(top) != 1 || top[0] != 17 {
		t.Fatalf("self-search returned %v, want [17]", top)
	}
	if err := ix.Remove(17); err != nil {
		t.Fatal(err)
	}
	if err := ix.Remove(17); err == nil {
		t.Fatal("double Remove did not error")
	}
	if err := ix.Remove(-1); err == nil {
		t.Fatal("Remove(-1) did not error")
	}
	if ix.Live() != 199 || !ix.Deleted(17) {
		t.Fatalf("Live=%d Deleted(17)=%v after remove", ix.Live(), ix.Deleted(17))
	}
	for _, id := range ix.Search(q, 50, 64) {
		if id == 17 {
			t.Fatal("tombstoned node surfaced in search results")
		}
	}
	// Results must match a brute-force scan that skips the tombstone.
	want := bruteTopN(ix, q, 5)
	got := ix.Search(q, 5, ix.Len())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-remove search %v, want %v", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	vecs := clusteredVecs(100, 16, 2, 31)
	ix := buildIndex(vecs)
	q := vecs[3]
	before := ix.Search(q, 10, 64)

	cl := ix.Clone()
	if err := cl.Remove(before[0]); err != nil {
		t.Fatal(err)
	}
	extra := clusteredVecs(20, 16, 2, 32)
	for _, v := range extra {
		cl.Add(v)
	}
	after := ix.Search(q, 10, 64)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("mutating a clone changed the original: %v -> %v", before, after)
	}
	if cl.Len() != 120 || cl.Live() != 119 {
		t.Fatalf("clone Len=%d Live=%d, want 120/119", cl.Len(), cl.Live())
	}
}

func roundTrip(t *testing.T, ix *Index) *Index {
	t.Helper()
	var b codec.Buffer
	ix.Encode(&b)
	sc := codec.NewScanner(b.Bytes())
	got, err := Decode(sc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := sc.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	return got
}

func TestCodecRoundTrip(t *testing.T) {
	vecs := clusteredVecs(300, 16, 4, 41)
	ix := buildIndex(vecs)
	for _, id := range []int{5, 77, 142} {
		if err := ix.Remove(id); err != nil {
			t.Fatal(err)
		}
	}
	got := roundTrip(t, ix)
	if got.Len() != ix.Len() || got.Live() != ix.Live() || got.Dim() != ix.Dim() {
		t.Fatalf("round trip changed shape: %d/%d/%d vs %d/%d/%d",
			got.Len(), got.Live(), got.Dim(), ix.Len(), ix.Live(), ix.Dim())
	}
	q := clusteredVecs(1, 16, 4, 42)[0]
	if a, b := ix.Search(q, 10, 64), got.Search(q, 10, 64); !reflect.DeepEqual(a, b) {
		t.Fatalf("round trip changed search results: %v vs %v", a, b)
	}
	// A decoded graph must keep growing exactly like the original.
	extra := clusteredVecs(10, 16, 4, 43)
	for _, v := range extra {
		ix.Add(v)
		got.Add(v)
	}
	if a, b := ix.Search(q, 10, 64), got.Search(q, 10, 64); !reflect.DeepEqual(a, b) {
		t.Fatalf("post-decode growth diverged: %v vs %v", a, b)
	}

	empty := roundTrip(t, New(8, Config{}))
	if empty.Len() != 0 || empty.Search(make(vector.Vec32, 8), 3, 8) != nil {
		t.Fatal("empty index did not round-trip to an empty index")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	ix := buildIndex(clusteredVecs(50, 8, 2, 51))
	var b codec.Buffer
	ix.Encode(&b)
	valid := b.Bytes()

	// Truncations at every prefix must error, never panic.
	for cut := 0; cut < len(valid); cut += 7 {
		sc := codec.NewScanner(valid[:cut])
		if ix, err := Decode(sc); err == nil && sc.Finish() == nil {
			_ = ix.Search(make(vector.Vec32, ix.Dim()), 3, 8)
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}

	bad := []struct {
		name string
		mut  func() *codec.Buffer
	}{
		{"zero dim", func() *codec.Buffer {
			var b codec.Buffer
			b.Int(0)
			return &b
		}},
		{"huge M", func() *codec.Buffer {
			var b codec.Buffer
			b.Int(8)
			b.Int(1 << 20)
			b.Int(10)
			b.Uvarint(1)
			b.Int(0)
			return &b
		}},
		{"entry out of range", func() *codec.Buffer {
			var b codec.Buffer
			b.Int(8)
			b.Int(4)
			b.Int(10)
			b.Uvarint(1)
			b.Int(1) // one node
			b.Int(9) // entry 9 of 1
			b.Int(0) // maxLvl
			return &b
		}},
	}
	for _, tc := range bad {
		if _, err := Decode(codec.NewScanner(tc.mut().Bytes())); !errors.Is(err, codec.ErrCorrupt) && !errors.Is(err, codec.ErrTruncated) {
			t.Errorf("%s: err = %v, want ErrCorrupt/ErrTruncated", tc.name, err)
		}
	}
}

func BenchmarkSearch(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		vecs := clusteredVecs(n, 64, 10, 61)
		ix := buildIndex(vecs)
		q := clusteredVecs(1, 64, 10, 62)[0]
		b.Run(fmt.Sprintf("hnsw/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ix.Search(q, 10, 100)
			}
		})
		b.Run(fmt.Sprintf("brute/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bruteTopN(ix, q, 10)
			}
		})
	}
}
