package ann

// minHeap pops the closest item first (exploration order); maxHeap keeps
// its furthest item at the root (beam eviction). Both are plain binary
// heaps over item with the deterministic (distance, id) ordering —
// hand-rolled rather than container/heap to keep the per-hop cost to a
// couple of comparisons with no interface dispatch.

type minHeap []item

func (h *minHeap) push(it item) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s[i].less(s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *minHeap) pop() item {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && s[l].less(s[small]) {
			small = l
		}
		if r < n && s[r].less(s[small]) {
			small = r
		}
		if small == i {
			return top
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
}

type maxHeap []item

func (h *maxHeap) push(it item) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s[p].less(s[i]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *maxHeap) pop() item {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && s[big].less(s[l]) {
			big = l
		}
		if r < n && s[big].less(s[r]) {
			big = r
		}
		if big == i {
			return top
		}
		s[i], s[big] = s[big], s[i]
		i = big
	}
}
