package ann

import (
	"fmt"

	"dust/internal/codec"
)

// Graph (de)serialization. Encode/Decode handle one payload section — the
// enclosing envelope (kind codec.KindANN, owned by the searcher that
// embeds the graph alongside its own identity) provides magic, versioning,
// and the checksum. Decode validates every structural invariant the
// traversal code relies on — levels, link shapes, neighbor ranges, the
// entry point — so a corrupt or hostile graph fails with a typed error
// instead of panicking mid-search.

// Encode appends the graph to b.
func (ix *Index) Encode(b *codec.Buffer) {
	b.Int(ix.dim)
	b.Int(ix.m)
	b.Int(ix.efCon)
	b.Uvarint(ix.seed)
	n := len(ix.vecs)
	b.Int(n)
	if n > 0 {
		b.Int(int(ix.entry))
		b.Int(int(ix.maxLvl))
	}
	for i := 0; i < n; i++ {
		b.Int(int(ix.levels[i]))
		b.Bool(ix.deleted[i])
		b.Float32s(ix.vecs[i])
		for _, nbs := range ix.links[i] {
			b.Int(len(nbs))
			for _, nb := range nbs {
				b.Int(int(nb))
			}
		}
	}
}

// Decode reads a graph written by Encode from sc, validating structure as
// it goes. On any inconsistency it returns an error wrapping
// codec.ErrCorrupt (or the scanner's truncation error) and never panics.
func Decode(sc *codec.Scanner) (*Index, error) {
	fail := func(format string, args ...any) (*Index, error) {
		return nil, fmt.Errorf("ann: "+format+": %w", append(args, codec.ErrCorrupt)...)
	}
	dim := sc.Int()
	m := sc.Int()
	efCon := sc.Int()
	seed := sc.Uvarint()
	n := sc.Int()
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if dim <= 0 || dim > 1<<16 {
		return fail("dimension %d out of range", dim)
	}
	if m <= 0 || m > 1<<12 || efCon <= 0 || efCon > 1<<20 {
		return fail("parameters M=%d ef=%d out of range", m, efCon)
	}
	ix := New(dim, Config{M: m, EfConstruction: efCon, Seed: seed})
	if n == 0 {
		return ix, sc.Err()
	}
	entry := sc.Int()
	maxLvl := sc.Int()
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if entry < 0 || entry >= n {
		return fail("entry point %d out of range [0,%d)", entry, n)
	}
	if maxLvl < 0 || maxLvl > maxLevel {
		return fail("max level %d out of range", maxLvl)
	}
	ix.entry, ix.maxLvl = int32(entry), int32(maxLvl)

	for i := 0; i < n && sc.Err() == nil; i++ {
		lvl := sc.Int()
		dead := sc.Bool()
		vec := sc.Float32s()
		if sc.Err() != nil {
			break
		}
		if lvl < 0 || lvl > maxLvl {
			return fail("node %d level %d out of range [0,%d]", i, lvl, maxLvl)
		}
		if len(vec) != dim {
			return fail("node %d has dim %d, want %d", i, len(vec), dim)
		}
		layers := make([][]int32, lvl+1)
		for l := 0; l <= lvl && sc.Err() == nil; l++ {
			cnt := sc.Int()
			if sc.Err() != nil {
				break
			}
			budget := 2 * m
			if l > 0 {
				budget = m
			}
			if cnt > budget {
				return fail("node %d layer %d has %d neighbors, budget %d", i, l, cnt, budget)
			}
			nbs := make([]int32, 0, cnt)
			for j := 0; j < cnt && sc.Err() == nil; j++ {
				nb := sc.Int()
				if sc.Err() != nil {
					break
				}
				if nb >= n {
					return fail("node %d layer %d neighbor %d out of range [0,%d)", i, l, nb, n)
				}
				nbs = append(nbs, int32(nb))
			}
			layers[l] = nbs
		}
		ix.vecs = append(ix.vecs, vec)
		ix.levels = append(ix.levels, int32(lvl))
		ix.deleted = append(ix.deleted, dead)
		if dead {
			ix.nDel++
		}
		ix.links = append(ix.links, layers)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if ix.levels[entry] != int32(maxLvl) {
		return fail("entry point %d has level %d, graph declares %d", entry, ix.levels[entry], maxLvl)
	}
	// Edges may only point at nodes that exist on that layer; the greedy
	// descent indexes links[nb][l] without re-checking.
	for i, layers := range ix.links {
		for l, nbs := range layers {
			for _, nb := range nbs {
				if int(ix.levels[nb]) < l {
					return fail("node %d layer %d links to node %d of level %d", i, l, nb, ix.levels[nb])
				}
			}
		}
	}
	return ix, nil
}
