package ann

import (
	"fmt"
	"math"

	"dust/internal/codec"
	"dust/internal/vector"
)

// Graph (de)serialization. Encode/Decode handle one payload section — the
// enclosing envelope (kind codec.KindANN, owned by the searcher that
// embeds the graph alongside its own identity) provides magic, versioning,
// and the checksum. Decode validates every structural invariant the
// traversal code relies on — levels, link shapes, neighbor ranges, the
// entry point, quantization parameters — so a corrupt or hostile graph
// fails with a typed error instead of panicking mid-search.
//
// The current (envelope version 2) payload leads with a storage flag and
// carries either float32 vectors or SQ8 codes with their per-node scale
// and offset; the cached code sums are recomputed on load. Version 1
// payloads (pre-quantization, float only) remain loadable via DecodeV1.

// Encode appends the graph to b in the current (version 2) layout.
func (ix *Index) Encode(b *codec.Buffer) {
	b.Bool(ix.quant)
	b.Int(ix.dim)
	b.Int(ix.m)
	b.Int(ix.efCon)
	b.Uvarint(ix.seed)
	n := ix.Len()
	b.Int(n)
	if n > 0 {
		b.Int(int(ix.entry))
		b.Int(int(ix.maxLvl))
	}
	var raw []byte
	if ix.quant {
		raw = make([]byte, ix.dim)
	}
	for i := 0; i < n; i++ {
		b.Int(int(ix.levels[i]))
		b.Bool(ix.deleted[i])
		if ix.quant {
			b.Float32(ix.qscale[i])
			b.Float32(ix.qoff[i])
			for j, c := range ix.codeAt(int32(i)) {
				raw[j] = byte(c)
			}
			b.RawBytes(raw)
		} else {
			b.Float32s(ix.vecs[i])
		}
		for _, nbs := range ix.links[i] {
			b.Int(len(nbs))
			for _, nb := range nbs {
				b.Int(int(nb))
			}
		}
	}
}

// Decode reads a graph written by Encode (the current layout) from sc,
// validating structure as it goes. On any inconsistency it returns an
// error wrapping codec.ErrCorrupt (or the scanner's truncation error) and
// never panics.
func Decode(sc *codec.Scanner) (*Index, error) { return decode(sc, 2) }

// DecodeV1 reads the pre-quantization float-only payload layout written
// under KindANN envelope version 1, so indexes saved before the SQ8
// format bump stay loadable.
func DecodeV1(sc *codec.Scanner) (*Index, error) { return decode(sc, 1) }

func decode(sc *codec.Scanner, version int) (*Index, error) {
	fail := func(format string, args ...any) (*Index, error) {
		return nil, fmt.Errorf("ann: "+format+": %w", append(args, codec.ErrCorrupt)...)
	}
	quant := false
	if version >= 2 {
		quant = sc.Bool()
	}
	dim := sc.Int()
	m := sc.Int()
	efCon := sc.Int()
	seed := sc.Uvarint()
	n := sc.Int()
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if dim <= 0 || dim > 1<<16 {
		return fail("dimension %d out of range", dim)
	}
	if m <= 0 || m > 1<<12 || efCon <= 0 || efCon > 1<<20 {
		return fail("parameters M=%d ef=%d out of range", m, efCon)
	}
	ix := New(dim, Config{M: m, EfConstruction: efCon, Seed: seed, Quantized: quant})
	if n == 0 {
		return ix, sc.Err()
	}
	entry := sc.Int()
	maxLvl := sc.Int()
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if entry < 0 || entry >= n {
		return fail("entry point %d out of range [0,%d)", entry, n)
	}
	if maxLvl < 0 || maxLvl > maxLevel {
		return fail("max level %d out of range", maxLvl)
	}
	ix.entry, ix.maxLvl = int32(entry), int32(maxLvl)

	codesOf := make([]int8, dim)
	for i := 0; i < n && sc.Err() == nil; i++ {
		lvl := sc.Int()
		dead := sc.Bool()
		var vec []float32
		var scale, offset float32
		if quant {
			scale = sc.Float32()
			offset = sc.Float32()
			raw := sc.RawBytes()
			if sc.Err() != nil {
				break
			}
			if len(raw) != dim {
				return fail("node %d has %d codes, want %d", i, len(raw), dim)
			}
			// The affine parameters feed every distance; NaN/Inf or a
			// negative scale would silently poison traversal ordering.
			if bad32(scale) || bad32(offset) || scale < 0 {
				return fail("node %d quantization parameters scale=%v offset=%v invalid", i, scale, offset)
			}
			for j, c := range raw {
				codesOf[j] = int8(c)
			}
		} else {
			vec = sc.Float32s()
		}
		if sc.Err() != nil {
			break
		}
		if lvl < 0 || lvl > maxLvl {
			return fail("node %d level %d out of range [0,%d]", i, lvl, maxLvl)
		}
		if !quant && len(vec) != dim {
			return fail("node %d has dim %d, want %d", i, len(vec), dim)
		}
		layers := make([][]int32, lvl+1)
		for l := 0; l <= lvl && sc.Err() == nil; l++ {
			cnt := sc.Int()
			if sc.Err() != nil {
				break
			}
			budget := 2 * m
			if l > 0 {
				budget = m
			}
			if cnt > budget {
				return fail("node %d layer %d has %d neighbors, budget %d", i, l, cnt, budget)
			}
			nbs := make([]int32, 0, cnt)
			for j := 0; j < cnt && sc.Err() == nil; j++ {
				nb := sc.Int()
				if sc.Err() != nil {
					break
				}
				if nb >= n {
					return fail("node %d layer %d neighbor %d out of range [0,%d)", i, l, nb, n)
				}
				nbs = append(nbs, int32(nb))
			}
			layers[l] = nbs
		}
		if quant {
			ix.codes = append(ix.codes, codesOf...)
			s1, s2 := vector.CodeSums(codesOf)
			ix.qscale = append(ix.qscale, scale)
			ix.qoff = append(ix.qoff, offset)
			ix.qs1 = append(ix.qs1, s1)
			ix.qs2 = append(ix.qs2, s2)
		} else {
			ix.vecs = append(ix.vecs, vec)
		}
		ix.levels = append(ix.levels, int32(lvl))
		ix.deleted = append(ix.deleted, dead)
		if dead {
			ix.nDel++
		}
		ix.links = append(ix.links, layers)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if ix.levels[entry] != int32(maxLvl) {
		return fail("entry point %d has level %d, graph declares %d", entry, ix.levels[entry], maxLvl)
	}
	// Edges may only point at nodes that exist on that layer; the greedy
	// descent indexes links[nb][l] without re-checking.
	for i, layers := range ix.links {
		for l, nbs := range layers {
			for _, nb := range nbs {
				if int(ix.levels[nb]) < l {
					return fail("node %d layer %d links to node %d of level %d", i, l, nb, ix.levels[nb])
				}
			}
		}
	}
	return ix, nil
}

func bad32(f float32) bool {
	f64 := float64(f)
	return math.IsNaN(f64) || math.IsInf(f64, 0)
}
