package tokenize

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestWords(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"River Park", []string{"river", "park"}},
		{"773 731-0380", []string{"773", "731", "0380"}},
		{"Oil on canvas", []string{"oil", "on", "canvas"}},
		{"", nil},
		{"  --  ", nil},
		{"CamelCase", []string{"camelcase"}},
		{"Brandon, MN", []string{"brandon", "mn"}},
	}
	for _, c := range cases {
		got := Words(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Words(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTermFreq(t *testing.T) {
	tf := TermFreq([]string{"a", "b", "a", "a"})
	if tf["a"] != 3 || tf["b"] != 1 {
		t.Errorf("TermFreq = %v", tf)
	}
}

func TestCorpusIDF(t *testing.T) {
	var c Corpus
	c.AddDocument([]string{"common", "rare1"})
	c.AddDocument([]string{"common", "rare2"})
	c.AddDocument([]string{"common"})
	if c.NumDocs() != 3 {
		t.Fatalf("NumDocs = %d", c.NumDocs())
	}
	if c.IDF("common") >= c.IDF("rare1") {
		t.Errorf("IDF(common)=%v should be < IDF(rare1)=%v", c.IDF("common"), c.IDF("rare1"))
	}
	if c.IDF("unseen") <= c.IDF("rare1") {
		t.Errorf("IDF(unseen)=%v should be > IDF(rare1)=%v", c.IDF("unseen"), c.IDF("rare1"))
	}
}

func TestCorpusIDFEmptyCorpus(t *testing.T) {
	var c Corpus
	if got := c.IDF("anything"); got != 1 {
		t.Errorf("IDF on empty corpus = %v, want 1 (ln(1)+1)", got)
	}
}

func TestTFIDFScoring(t *testing.T) {
	var c Corpus
	c.AddDocument([]string{"park", "city"})
	c.AddDocument([]string{"park", "museum"})
	scores := c.TFIDF([]string{"park", "museum", "museum"})
	if scores["museum"] <= scores["park"] {
		t.Errorf("rarer+more frequent token should outscore: %v", scores)
	}
}

func TestTopKDeterministicAndBounded(t *testing.T) {
	var c Corpus
	c.AddDocument([]string{"a", "b", "c", "d"})
	tokens := []string{"a", "b", "c", "d", "a"}
	top2 := c.TopK(tokens, 2)
	if len(top2) != 2 {
		t.Fatalf("TopK(2) returned %d tokens", len(top2))
	}
	// "a" has tf=2 so it must come first.
	if top2[0] != "a" {
		t.Errorf("TopK[0] = %q, want a", top2[0])
	}
	// Ties among b,c,d broken lexicographically.
	if top2[1] != "b" {
		t.Errorf("TopK[1] = %q, want b (lexicographic tie-break)", top2[1])
	}
	// k <= 0 means no limit.
	all := c.TopK(tokens, 0)
	if len(all) != 4 {
		t.Errorf("TopK(0) = %v, want all 4 distinct tokens", all)
	}
}

func TestTopKStableAcrossCalls(t *testing.T) {
	var c Corpus
	c.AddDocument([]string{"x", "y", "z"})
	tokens := []string{"z", "y", "x"}
	first := c.TopK(tokens, 3)
	for i := 0; i < 10; i++ {
		if got := c.TopK(tokens, 3); !reflect.DeepEqual(got, first) {
			t.Fatalf("TopK nondeterministic: %v vs %v", got, first)
		}
	}
}

// Property: Words output contains no uppercase letters and no empty tokens.
func TestWordsProperty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Words(s) {
			if tok == "" {
				return false
			}
			for _, r := range tok {
				if r >= 'A' && r <= 'Z' {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: sum of TermFreq counts equals the token count.
func TestTermFreqTotalProperty(t *testing.T) {
	f := func(raw []string) bool {
		tf := TermFreq(raw)
		total := 0
		for _, n := range tf {
			total += n
		}
		return total == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRemoveDocumentRestoresState(t *testing.T) {
	docs := [][]string{
		{"park", "city", "park"},
		{"city", "country", "year"},
		{"park", "year"},
	}
	// Build the full corpus, then remove the middle document and compare
	// against a corpus that never saw it.
	var full Corpus
	for _, d := range docs {
		full.AddDocument(d)
	}
	full.RemoveDocument(docs[1])

	var fresh Corpus
	fresh.AddDocument(docs[0])
	fresh.AddDocument(docs[2])

	if full.NumDocs() != fresh.NumDocs() {
		t.Fatalf("NumDocs = %d, want %d", full.NumDocs(), fresh.NumDocs())
	}
	for _, tok := range []string{"park", "city", "country", "year", "never-seen"} {
		if got, want := full.IDF(tok), fresh.IDF(tok); got != want {
			t.Errorf("IDF(%q) = %v, want %v", tok, got, want)
		}
	}
	// Zero-count entries must be deleted, not kept at zero.
	count := 0
	full.DocFreqs(func(string, int) { count++ })
	if count != 3 { // park, city, year
		t.Errorf("docFreq entries = %d, want 3", count)
	}
}

func TestRemoveDocumentOnEmptyCorpus(t *testing.T) {
	var c Corpus
	c.RemoveDocument([]string{"a"}) // must not underflow or panic
	if c.NumDocs() != 0 {
		t.Errorf("NumDocs = %d", c.NumDocs())
	}
}

func TestCorpusRestore(t *testing.T) {
	var c Corpus
	c.Restore(2, map[string]int{"a": 2, "b": 1, "dead": 0})
	if c.NumDocs() != 2 {
		t.Errorf("NumDocs = %d", c.NumDocs())
	}
	var fresh Corpus
	fresh.AddDocument([]string{"a", "b"})
	fresh.AddDocument([]string{"a"})
	for _, tok := range []string{"a", "b", "dead"} {
		if got, want := c.IDF(tok), fresh.IDF(tok); got != want {
			t.Errorf("IDF(%q) = %v, want %v", tok, got, want)
		}
	}
}
