// Package tokenize provides the text substrate under every embedding model
// in the reproduction: a word tokenizer, document-frequency statistics,
// TF-IDF scoring, and the top-K representative-token selection the paper
// uses to fit column values into a language model's 512-token input budget
// (§6.2.3, following DeepJoin/Starmie/Doduo).
package tokenize

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// Words splits s into lowercase word tokens. Letters and digits form words;
// everything else separates them. Numeric runs are kept as single tokens so
// values like "773 731-0380" produce stable tokens.
func Words(s string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			cur.WriteRune(unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
	return out
}

// TermFreq counts token occurrences in tokens.
func TermFreq(tokens []string) map[string]int {
	tf := make(map[string]int, len(tokens))
	for _, t := range tokens {
		tf[t]++
	}
	return tf
}

// Corpus accumulates document frequencies across a set of documents (in our
// setting, a document is usually one column's value set). The zero value is
// ready to use.
type Corpus struct {
	docFreq map[string]int
	numDocs int
}

// AddDocument records the distinct tokens of one document.
func (c *Corpus) AddDocument(tokens []string) {
	if c.docFreq == nil {
		c.docFreq = make(map[string]int)
	}
	seen := make(map[string]bool, len(tokens))
	for _, t := range tokens {
		if !seen[t] {
			seen[t] = true
			c.docFreq[t]++
		}
	}
	c.numDocs++
}

// RemoveDocument reverses a prior AddDocument of the same token multiset:
// document frequencies of the distinct tokens are decremented (entries
// reaching zero are deleted, so the corpus state is identical to one built
// without the document) and the document count drops by one. Removing a
// document that was never added corrupts the statistics; callers own that
// invariant.
func (c *Corpus) RemoveDocument(tokens []string) {
	if c.numDocs == 0 {
		return
	}
	seen := make(map[string]bool, len(tokens))
	for _, t := range tokens {
		if seen[t] {
			continue
		}
		seen[t] = true
		if df := c.docFreq[t]; df > 1 {
			c.docFreq[t] = df - 1
		} else {
			delete(c.docFreq, t)
		}
	}
	c.numDocs--
}

// Clone returns a corpus with its own document-frequency map, so
// AddDocument/RemoveDocument on the clone leave the original untouched
// (copy-on-write index shadows depend on this).
func (c *Corpus) Clone() *Corpus {
	cp := &Corpus{numDocs: c.numDocs}
	if c.docFreq != nil {
		cp.docFreq = make(map[string]int, len(c.docFreq))
		for t, df := range c.docFreq {
			cp.docFreq[t] = df
		}
	}
	return cp
}

// NumDocs returns the number of documents added.
func (c *Corpus) NumDocs() int { return c.numDocs }

// DocFreqs calls fn for every (token, document frequency) pair in
// unspecified order; index codecs sort the tokens themselves.
func (c *Corpus) DocFreqs(fn func(token string, df int)) {
	for t, df := range c.docFreq {
		fn(t, df)
	}
}

// Restore replaces the corpus state wholesale; it is the loading-side dual
// of DocFreqs, used by index codecs. A negative numDocs or frequency is
// silently clamped to zero.
func (c *Corpus) Restore(numDocs int, docFreq map[string]int) {
	if numDocs < 0 {
		numDocs = 0
	}
	c.numDocs = numDocs
	c.docFreq = make(map[string]int, len(docFreq))
	for t, df := range docFreq {
		if df > 0 {
			c.docFreq[t] = df
		}
	}
}

// IDF returns the smoothed inverse document frequency of token, defined as
// ln((1+N)/(1+df)) + 1 (the scikit-learn smoothing used by the baselines the
// paper builds on).
func (c *Corpus) IDF(token string) float64 {
	df := 0
	if c.docFreq != nil {
		df = c.docFreq[token]
	}
	return math.Log(float64(1+c.numDocs)/float64(1+df)) + 1
}

// TFIDF scores every token in tokens against the corpus.
func (c *Corpus) TFIDF(tokens []string) map[string]float64 {
	tf := TermFreq(tokens)
	out := make(map[string]float64, len(tf))
	for tok, f := range tf {
		out[tok] = float64(f) * c.IDF(tok)
	}
	return out
}

// TopK returns up to k tokens from tokens ranked by descending TF-IDF score,
// breaking ties lexicographically so the selection is deterministic. This is
// the "most representative tokens" selection of §6.2.3.
func (c *Corpus) TopK(tokens []string, k int) []string {
	scores := c.TFIDF(tokens)
	uniq := make([]string, 0, len(scores))
	for tok := range scores {
		uniq = append(uniq, tok)
	}
	sort.Slice(uniq, func(i, j int) bool {
		si, sj := scores[uniq[i]], scores[uniq[j]]
		if si != sj {
			return si > sj
		}
		return uniq[i] < uniq[j]
	})
	if k > 0 && len(uniq) > k {
		uniq = uniq[:k]
	}
	return uniq
}
