package table

import (
	"strconv"
	"strings"
)

// inferColumnType returns the majority type among non-null values; ties and
// empty columns resolve to Text.
func inferColumnType(values []string) Type {
	var nums, dates, texts int
	for _, v := range values {
		if v == Null {
			continue
		}
		switch classifyValue(v) {
		case Number:
			nums++
		case Date:
			dates++
		default:
			texts++
		}
	}
	if nums > dates && nums > texts {
		return Number
	}
	if dates > nums && dates > texts {
		return Date
	}
	return Text
}

// classifyValue classifies a single cell value.
func classifyValue(v string) Type {
	v = strings.TrimSpace(v)
	if v == "" {
		return Text
	}
	if looksLikeDate(v) {
		return Date
	}
	if _, err := strconv.ParseFloat(strings.ReplaceAll(v, ",", ""), 64); err == nil {
		return Number
	}
	return Text
}

// looksLikeDate recognises the simple ISO-ish date formats the generators
// emit (YYYY, YYYY-MM-DD, YYYY/MM/DD, MM/DD/YYYY).
func looksLikeDate(v string) bool {
	digits := func(s string) bool {
		if s == "" {
			return false
		}
		for _, r := range s {
			if r < '0' || r > '9' {
				return false
			}
		}
		return true
	}
	if len(v) == 4 && digits(v) {
		y, _ := strconv.Atoi(v)
		return y >= 1000 && y <= 2999
	}
	for _, sep := range []string{"-", "/"} {
		parts := strings.Split(v, sep)
		if len(parts) != 3 {
			continue
		}
		if digits(parts[0]) && digits(parts[1]) && digits(parts[2]) {
			if len(parts[0]) == 4 || len(parts[2]) == 4 {
				return true
			}
		}
	}
	return false
}
