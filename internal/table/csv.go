package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// WriteCSV writes the table (header row first) to w.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers()); err != nil {
		return fmt.Errorf("table %s: write header: %w", t.Name, err)
	}
	for i := 0; i < t.NumRows(); i++ {
		if err := cw.Write(t.Row(i)); err != nil {
			return fmt.Errorf("table %s: write row %d: %w", t.Name, i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the table to path, creating parent directories as needed.
func (t *Table) SaveCSV(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadCSV parses a table from r. The first record is the header. The table
// name is taken from the name argument; column types are inferred.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table %s: read header: %w", name, err)
	}
	t := New(name, header...)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table %s: read row: %w", name, err)
		}
		// Tolerate ragged rows by padding/truncating to the header arity,
		// as real data lake CSVs are frequently ragged.
		row := make(Tuple, len(header))
		for i := range row {
			if i < len(rec) {
				row[i] = rec[i]
			} else {
				row[i] = Null
			}
		}
		if err := t.AppendRow(row); err != nil {
			return nil, err
		}
	}
	t.InferTypes()
	return t, nil
}

// LoadCSV reads a table from a CSV file; the table is named after the file
// basename without extension.
func LoadCSV(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return ReadCSV(name, f)
}
