// Package table defines the relational model used throughout the DUST
// reproduction: tables with named, type-annotated columns; tuples; CSV
// serialization; projections and selections used by the benchmark
// generators; and the outer-union operation that forms unionable tuples
// after column alignment (paper §3.3).
package table

import (
	"fmt"
	"strings"
)

// Null is the placeholder value used when outer union pads a tuple with a
// column that its source table does not have (paper §3.3 uses "nan").
const Null = ""

// Type classifies the values of a column. The alignment and search
// substrates use it as a cheap semantic signal (the paper notes numerical
// columns embed poorly, which the Starmie simulator reproduces).
type Type int

const (
	Text Type = iota
	Number
	Date
)

// String returns the lowercase name of the type.
func (t Type) String() string {
	switch t {
	case Number:
		return "number"
	case Date:
		return "date"
	default:
		return "text"
	}
}

// Column is a named, typed column of string-encoded values.
type Column struct {
	Name   string
	Type   Type
	Values []string
}

// Tuple is one row of a table: a slice of string cells, index-aligned with
// the owning table's columns.
type Tuple []string

// Table is an in-memory relational table. Tables are identified by name
// within a data lake; the benchmark generators also record the base table a
// generated table was derived from (ground truth for unionability).
type Table struct {
	Name    string
	Columns []Column
	// Base identifies the base table this table was generated from, or ""
	// for hand-made tables. Two generated tables are unionable iff they
	// share the same Base (TUS/SANTOS benchmark convention, paper §6.1).
	Base string
}

// New creates a table with the given column names and no rows.
func New(name string, columns ...string) *Table {
	t := &Table{Name: name}
	for _, c := range columns {
		t.Columns = append(t.Columns, Column{Name: c})
	}
	return t
}

// NumRows returns the number of tuples in the table.
func (t *Table) NumRows() int {
	if len(t.Columns) == 0 {
		return 0
	}
	return len(t.Columns[0].Values)
}

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.Columns) }

// Headers returns the column names in order.
func (t *Table) Headers() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// ColumnIndex returns the index of the column with the given name, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// AppendRow appends a tuple. The tuple length must match the column count.
func (t *Table) AppendRow(row Tuple) error {
	if len(row) != len(t.Columns) {
		return fmt.Errorf("table %s: row has %d cells, want %d", t.Name, len(row), len(t.Columns))
	}
	for i := range t.Columns {
		t.Columns[i].Values = append(t.Columns[i].Values, row[i])
	}
	return nil
}

// MustAppendRow appends a tuple and panics on arity mismatch. It is intended
// for generators and tests where the arity is statically correct.
func (t *Table) MustAppendRow(cells ...string) {
	if err := t.AppendRow(cells); err != nil {
		panic(err)
	}
}

// Row returns the i-th tuple as a fresh slice.
func (t *Table) Row(i int) Tuple {
	row := make(Tuple, len(t.Columns))
	for j, c := range t.Columns {
		row[j] = c.Values[i]
	}
	return row
}

// Rows returns all tuples.
func (t *Table) Rows() []Tuple {
	out := make([]Tuple, t.NumRows())
	for i := range out {
		out[i] = t.Row(i)
	}
	return out
}

// Cell returns the value of column j in row i.
func (t *Table) Cell(i, j int) string { return t.Columns[j].Values[i] }

// Project returns a new table containing only the named columns, in the
// given order. Unknown column names are an error.
func (t *Table) Project(name string, columns ...string) (*Table, error) {
	out := &Table{Name: name, Base: t.Base}
	for _, cn := range columns {
		idx := t.ColumnIndex(cn)
		if idx < 0 {
			return nil, fmt.Errorf("table %s: no column %q", t.Name, cn)
		}
		src := t.Columns[idx]
		vals := make([]string, len(src.Values))
		copy(vals, src.Values)
		out.Columns = append(out.Columns, Column{Name: src.Name, Type: src.Type, Values: vals})
	}
	return out, nil
}

// Select returns a new table containing the rows at the given indices.
func (t *Table) Select(name string, rows []int) (*Table, error) {
	out := &Table{Name: name, Base: t.Base}
	for _, c := range t.Columns {
		out.Columns = append(out.Columns, Column{Name: c.Name, Type: c.Type})
	}
	for _, r := range rows {
		if r < 0 || r >= t.NumRows() {
			return nil, fmt.Errorf("table %s: row index %d out of range [0,%d)", t.Name, r, t.NumRows())
		}
		for j := range out.Columns {
			out.Columns[j].Values = append(out.Columns[j].Values, t.Columns[j].Values[r])
		}
	}
	return out, nil
}

// Clone returns a deep copy of the table under a new name.
func (t *Table) Clone(name string) *Table {
	out := &Table{Name: name, Base: t.Base}
	for _, c := range t.Columns {
		vals := make([]string, len(c.Values))
		copy(vals, c.Values)
		out.Columns = append(out.Columns, Column{Name: c.Name, Type: c.Type, Values: vals})
	}
	return out
}

// DropAllNullColumns removes columns whose values are all Null. The paper's
// experimental setup removes such columns before running (§6.1).
func (t *Table) DropAllNullColumns() {
	kept := t.Columns[:0]
	for _, c := range t.Columns {
		allNull := true
		for _, v := range c.Values {
			if v != Null {
				allNull = false
				break
			}
		}
		if !allNull {
			kept = append(kept, c)
		}
	}
	t.Columns = kept
}

// InferTypes assigns each column the majority type of its non-null values.
func (t *Table) InferTypes() {
	for i := range t.Columns {
		t.Columns[i].Type = inferColumnType(t.Columns[i].Values)
	}
}

// TupleKey returns a canonical string key for row i, used for duplicate
// detection in the case study's duplicate-free baselines (§6.6).
func (t *Table) TupleKey(i int) string {
	return strings.Join(t.Row(i), "\x1f")
}

// String renders a compact textual preview (header plus up to 5 rows).
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d rows x %d cols)\n", t.Name, t.NumRows(), t.NumCols())
	b.WriteString(strings.Join(t.Headers(), " | "))
	b.WriteByte('\n')
	n := t.NumRows()
	if n > 5 {
		n = 5
	}
	for i := 0; i < n; i++ {
		b.WriteString(strings.Join(t.Row(i), " | "))
		b.WriteByte('\n')
	}
	if t.NumRows() > 5 {
		fmt.Fprintf(&b, "... (%d more rows)\n", t.NumRows()-5)
	}
	return b.String()
}
