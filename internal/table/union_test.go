package table

import (
	"testing"
)

// The Fig. 1 scenario: query table (a), unionable tables (b) and (d).
func fig1Tables() (query, b, d *Table) {
	query = parksTable() // Park Name, Supervisor, City, Country

	b = New("table_b", "Park Name", "Supervisor", "Country")
	b.MustAppendRow("River Park", "Vera Onate", "USA")
	b.MustAppendRow("West Lawn Park", "Paul Veliotis", "USA")
	b.MustAppendRow("Hyde Park", "Jenny Rishi", "UK")

	d = New("table_d", "Park Name", "Park City", "Park Country", "Park Phone", "Supervised by")
	d.MustAppendRow("Chippewa Park", "Brandon, MN", "USA", "773 731-0380", "Tim Erickson")
	d.MustAppendRow("Lawler Park", "Chicago, IL", "USA", "773 284-7328", "Enrique Garcia")
	return query, b, d
}

func TestOuterUnionFig1(t *testing.T) {
	query, b, d := fig1Tables()
	target := query.Headers()
	mappings := []Mapping{
		// table (b): Park Name->0, Supervisor->1, no City, Country->2
		{Source: b, TargetToSource: []int{0, 1, -1, 2}},
		// table (d): Park Name->0, Supervised by->4, Park City->1, Park Country->2
		{Source: d, TargetToSource: []int{0, 4, 1, 2}},
	}
	u, prov, err := OuterUnion("unioned", target, mappings)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumRows() != 5 {
		t.Fatalf("unioned rows = %d, want 5", u.NumRows())
	}
	if len(prov) != 5 {
		t.Fatalf("provenance length = %d, want 5", len(prov))
	}
	// Row from table (b) has null City.
	if u.Cell(0, 2) != Null {
		t.Errorf("table b City cell = %q, want Null", u.Cell(0, 2))
	}
	// Row from table (d) pulled the aligned Supervised by column.
	if u.Cell(3, 1) != "Tim Erickson" {
		t.Errorf("table d Supervisor cell = %q, want Tim Erickson", u.Cell(3, 1))
	}
	if u.Cell(3, 2) != "Brandon, MN" {
		t.Errorf("table d City cell = %q", u.Cell(3, 2))
	}
	if prov[0].Table != "table_b" || prov[0].Row != 0 {
		t.Errorf("prov[0] = %+v", prov[0])
	}
	if prov[4].Table != "table_d" || prov[4].Row != 1 {
		t.Errorf("prov[4] = %+v", prov[4])
	}
	// The Park Phone column was never mapped and must not appear.
	if u.NumCols() != 4 {
		t.Errorf("unioned cols = %d, want 4 (discard unaligned)", u.NumCols())
	}
}

func TestOuterUnionArityErrors(t *testing.T) {
	query, b, _ := fig1Tables()
	_, _, err := OuterUnion("bad", query.Headers(), []Mapping{
		{Source: b, TargetToSource: []int{0, 1}}, // wrong arity
	})
	if err == nil {
		t.Error("OuterUnion with short mapping should error")
	}
	_, _, err = OuterUnion("bad", query.Headers(), []Mapping{
		{Source: b, TargetToSource: []int{0, 1, 2, 99}}, // out of range
	})
	if err == nil {
		t.Error("OuterUnion with out-of-range source index should error")
	}
}

func TestDeduplicateRows(t *testing.T) {
	tb := New("dup", "a", "b")
	tb.MustAppendRow("x", "1")
	tb.MustAppendRow("y", "2")
	tb.MustAppendRow("x", "1")
	tb.MustAppendRow("x", "3")
	keep := DeduplicateRows(tb)
	if len(keep) != 3 {
		t.Fatalf("kept %d rows, want 3", len(keep))
	}
	if keep[0] != 0 || keep[1] != 1 || keep[2] != 3 {
		t.Errorf("kept indices = %v, want [0 1 3]", keep)
	}
}
