package table

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzCSVTable feeds arbitrary bytes to the CSV reader. Any input must
// either fail with an error or produce a table that survives a
// write-reparse cycle: the reparse succeeds, keeps the schema, and a second
// serialization is byte-identical to the first (WriteCSV output is a fixed
// point). Single-column tables are exempt from the reparse checks:
// encoding/csv writes a lone empty field as a blank line, which reads back
// as no record at all — a stdlib quirk, not a corruption this fuzz target
// should conflate with one.
func FuzzCSVTable(f *testing.F) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join("testdata", e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte("a,b\n1,2\n"))
	f.Add([]byte("\"unterminated quote"))
	f.Add([]byte{0x00, 0xff, 0xfe})

	f.Fuzz(func(t *testing.T, data []byte) {
		t1, err := ReadCSV("fuzz", bytes.NewReader(data))
		if err != nil {
			return
		}
		if t1.NumRows() > 0 && t1.NumCols() == 0 {
			t.Fatalf("parsed table has %d rows but no columns", t1.NumRows())
		}
		var s1 bytes.Buffer
		if err := t1.WriteCSV(&s1); err != nil {
			t.Fatalf("WriteCSV of parsed table failed: %v", err)
		}
		if t1.NumCols() < 2 {
			return
		}
		t2, err := ReadCSV("fuzz", bytes.NewReader(s1.Bytes()))
		if err != nil {
			t.Fatalf("reparse of written CSV failed: %v\ncsv:\n%s", err, s1.Bytes())
		}
		if t2.NumCols() != t1.NumCols() || t2.NumRows() != t1.NumRows() {
			t.Fatalf("reparse shape (%d,%d), want (%d,%d)",
				t2.NumRows(), t2.NumCols(), t1.NumRows(), t1.NumCols())
		}
		var s2 bytes.Buffer
		if err := t2.WriteCSV(&s2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
			t.Fatalf("serialization is not a fixed point:\nfirst:\n%s\nsecond:\n%s", s1.Bytes(), s2.Bytes())
		}
	})
}
