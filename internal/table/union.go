package table

import "fmt"

// Provenance records where a unioned tuple came from. DUST's pruning step
// (paper §5.1) groups tuples by source table, and the case study (§6.6)
// needs per-table attribution, so the outer union keeps provenance alongside
// the tuples.
type Provenance struct {
	Table string // source table name
	Row   int    // row index within the source table
}

// Mapping describes how one source table's columns align to the target
// (query) schema: TargetToSource[i] is the source column index that aligns
// with target column i, or -1 when the source table has no aligned column
// (outer union pads those cells with Null).
type Mapping struct {
	Source         *Table
	TargetToSource []int
}

// OuterUnion unions the mapped tables into a single table with the target
// headers, padding missing columns with Null (paper §3.3). The returned
// provenance slice is index-aligned with the unioned rows.
func OuterUnion(name string, targetHeaders []string, mappings []Mapping) (*Table, []Provenance, error) {
	out := New(name, targetHeaders...)
	var prov []Provenance
	for _, m := range mappings {
		if len(m.TargetToSource) != len(targetHeaders) {
			return nil, nil, fmt.Errorf("outer union: mapping for %s has %d entries, want %d",
				m.Source.Name, len(m.TargetToSource), len(targetHeaders))
		}
		for _, src := range m.TargetToSource {
			if src >= m.Source.NumCols() {
				return nil, nil, fmt.Errorf("outer union: mapping for %s references column %d of %d",
					m.Source.Name, src, m.Source.NumCols())
			}
		}
		for r := 0; r < m.Source.NumRows(); r++ {
			row := make(Tuple, len(targetHeaders))
			for i, src := range m.TargetToSource {
				if src < 0 {
					row[i] = Null
				} else {
					row[i] = m.Source.Cell(r, src)
				}
			}
			if err := out.AppendRow(row); err != nil {
				return nil, nil, err
			}
			prov = append(prov, Provenance{Table: m.Source.Name, Row: r})
		}
	}
	out.InferTypes()
	return out, prov, nil
}

// DeduplicateRows returns the row indices of the first occurrence of every
// distinct tuple, preserving order. The case study's duplicate-free
// baselines (Starmie-D, D3L-D) use this.
func DeduplicateRows(t *Table) []int {
	seen := make(map[string]bool, t.NumRows())
	var keep []int
	for i := 0; i < t.NumRows(); i++ {
		k := t.TupleKey(i)
		if !seen[k] {
			seen[k] = true
			keep = append(keep, i)
		}
	}
	return keep
}
