package table

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	tb := parksTable()
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("parks", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tb.NumRows() || back.NumCols() != tb.NumCols() {
		t.Fatalf("round trip shape %dx%d, want %dx%d", back.NumRows(), back.NumCols(), tb.NumRows(), tb.NumCols())
	}
	for i := 0; i < tb.NumRows(); i++ {
		if strings.Join(back.Row(i), "|") != strings.Join(tb.Row(i), "|") {
			t.Errorf("row %d differs: %v vs %v", i, back.Row(i), tb.Row(i))
		}
	}
}

func TestReadCSVRaggedRows(t *testing.T) {
	in := "a,b,c\n1,2,3\n4,5\n6,7,8,9\n"
	tb, err := ReadCSV("ragged", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 3 {
		t.Fatalf("NumRows = %d, want 3", tb.NumRows())
	}
	if tb.Cell(1, 2) != Null {
		t.Errorf("short row not padded: %q", tb.Cell(1, 2))
	}
	if tb.Cell(2, 2) != "8" {
		t.Errorf("long row not truncated correctly: %q", tb.Cell(2, 2))
	}
}

func TestReadCSVEmptyInput(t *testing.T) {
	if _, err := ReadCSV("empty", strings.NewReader("")); err == nil {
		t.Error("ReadCSV of empty input should error (no header)")
	}
}

func TestSaveAndLoadCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nested", "parks.csv")
	tb := parksTable()
	if err := tb.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "parks" {
		t.Errorf("loaded name = %q, want parks", back.Name)
	}
	if back.NumRows() != 3 {
		t.Errorf("loaded rows = %d, want 3", back.NumRows())
	}
}

func TestLoadCSVMissingFile(t *testing.T) {
	if _, err := LoadCSV(filepath.Join(os.TempDir(), "definitely-missing-dust.csv")); err == nil {
		t.Error("LoadCSV of missing file should error")
	}
}

func TestCSVTypeInferenceOnLoad(t *testing.T) {
	in := "name,age\nalice,30\nbob,41\n"
	tb, err := ReadCSV("people", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Columns[1].Type != Number {
		t.Errorf("age column type = %v, want Number", tb.Columns[1].Type)
	}
}
