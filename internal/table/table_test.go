package table

import (
	"strings"
	"testing"
)

func parksTable() *Table {
	t := New("parks", "Park Name", "Supervisor", "City", "Country")
	t.MustAppendRow("River Park", "Vera Onate", "Fresno", "USA")
	t.MustAppendRow("West Lawn Park", "Paul Veliotis", "Chicago", "USA")
	t.MustAppendRow("Hyde Park", "Jenny Rishi", "London", "UK")
	return t
}

func TestNewAndAppend(t *testing.T) {
	tb := parksTable()
	if tb.NumRows() != 3 || tb.NumCols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", tb.NumRows(), tb.NumCols())
	}
	if got := tb.Cell(1, 2); got != "Chicago" {
		t.Errorf("Cell(1,2) = %q, want Chicago", got)
	}
	if err := tb.AppendRow(Tuple{"too", "short"}); err == nil {
		t.Error("AppendRow with wrong arity should error")
	}
}

func TestHeadersAndColumnIndex(t *testing.T) {
	tb := parksTable()
	h := tb.Headers()
	if len(h) != 4 || h[0] != "Park Name" {
		t.Errorf("Headers = %v", h)
	}
	if tb.ColumnIndex("City") != 2 {
		t.Errorf("ColumnIndex(City) = %d, want 2", tb.ColumnIndex("City"))
	}
	if tb.ColumnIndex("Nope") != -1 {
		t.Error("ColumnIndex of missing column should be -1")
	}
}

func TestRowAndRows(t *testing.T) {
	tb := parksTable()
	r := tb.Row(0)
	if strings.Join(r, ",") != "River Park,Vera Onate,Fresno,USA" {
		t.Errorf("Row(0) = %v", r)
	}
	// Mutating the returned row must not affect the table.
	r[0] = "X"
	if tb.Cell(0, 0) != "River Park" {
		t.Error("Row returned a live reference into the table")
	}
	if len(tb.Rows()) != 3 {
		t.Errorf("Rows len = %d", len(tb.Rows()))
	}
}

func TestProject(t *testing.T) {
	tb := parksTable()
	p, err := tb.Project("proj", "Country", "Park Name")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCols() != 2 || p.Headers()[0] != "Country" {
		t.Errorf("Project headers = %v", p.Headers())
	}
	if p.Cell(0, 1) != "River Park" {
		t.Errorf("Project cell = %q", p.Cell(0, 1))
	}
	if _, err := tb.Project("bad", "Missing"); err == nil {
		t.Error("Project with missing column should error")
	}
	// Deep copy: mutating the projection must not affect the source.
	p.Columns[0].Values[0] = "XX"
	if tb.Cell(0, 3) != "USA" {
		t.Error("Project shares value slices with source")
	}
}

func TestSelect(t *testing.T) {
	tb := parksTable()
	s, err := tb.Select("sel", []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRows() != 2 || s.Cell(0, 0) != "Hyde Park" || s.Cell(1, 0) != "River Park" {
		t.Errorf("Select rows wrong: %v", s.Rows())
	}
	if _, err := tb.Select("bad", []int{99}); err == nil {
		t.Error("Select out of range should error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tb := parksTable()
	c := tb.Clone("copy")
	c.Columns[0].Values[0] = "Mutated"
	if tb.Cell(0, 0) != "River Park" {
		t.Error("Clone is shallow")
	}
	if c.Name != "copy" {
		t.Errorf("Clone name = %q", c.Name)
	}
}

func TestDropAllNullColumns(t *testing.T) {
	tb := New("t", "a", "b", "c")
	tb.MustAppendRow("1", Null, "x")
	tb.MustAppendRow("2", Null, Null)
	tb.DropAllNullColumns()
	if tb.NumCols() != 2 {
		t.Fatalf("NumCols = %d, want 2", tb.NumCols())
	}
	if tb.Headers()[0] != "a" || tb.Headers()[1] != "c" {
		t.Errorf("Headers after drop = %v", tb.Headers())
	}
}

func TestInferTypes(t *testing.T) {
	tb := New("t", "name", "count", "when", "year")
	tb.MustAppendRow("alpha", "10", "2020-01-02", "1999")
	tb.MustAppendRow("beta", "3.5", "2021/06/30", "2010")
	tb.MustAppendRow("gamma", "1,200", "12/31/2020", "2024")
	tb.InferTypes()
	want := []Type{Text, Number, Date, Date}
	for i, c := range tb.Columns {
		if c.Type != want[i] {
			t.Errorf("column %s type = %v, want %v", c.Name, c.Type, want[i])
		}
	}
}

func TestTypeString(t *testing.T) {
	if Text.String() != "text" || Number.String() != "number" || Date.String() != "date" {
		t.Error("Type.String values wrong")
	}
}

func TestClassifyValue(t *testing.T) {
	cases := []struct {
		in   string
		want Type
	}{
		{"hello", Text},
		{"42", Number},
		{"3.14", Number},
		{"1,234", Number},
		{"2020-05-06", Date},
		{"2020/05/06", Date},
		{"05/06/2020", Date},
		{"1999", Date}, // 4-digit year
		{"", Text},
		{"12-34", Text},
	}
	for _, c := range cases {
		if got := classifyValue(c.in); got != c.want {
			t.Errorf("classifyValue(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTupleKeyAndString(t *testing.T) {
	tb := parksTable()
	if tb.TupleKey(0) == tb.TupleKey(1) {
		t.Error("distinct rows share a TupleKey")
	}
	s := tb.String()
	if !strings.Contains(s, "parks (3 rows x 4 cols)") {
		t.Errorf("String preview = %q", s)
	}
}
