// Package obs is the repo's stdlib-only observability substrate: named
// counters, gauges, and fixed-bucket latency histograms collected in a
// Registry and exposed in the Prometheus text format (version 0.0.4).
// The serving layer (internal/serve) registers its per-endpoint request
// metrics here and mounts the registry as GET /metrics; nothing in the
// package depends on HTTP, so benchmarks and CLIs can scrape a registry
// into any io.Writer.
//
// Two metric shapes coexist:
//
//   - Vec metrics (NewCounter, NewGauge, NewHistogram) own their state:
//     With(labelValues...) returns the child for one label combination,
//     backed by atomics, safe for concurrent use and allocation-free on
//     the hot path once a child exists.
//   - Func metrics (NewCounterFunc, NewGaugeFunc) read state the caller
//     already maintains — an epoch, a cache's entry count, a lake's table
//     count — by invoking a callback at scrape time, so scrapes always
//     report the live value without double bookkeeping.
//
// Metric and label names are the caller's contract with their dashboards;
// the registry panics on duplicate registration, the one misuse that would
// silently merge unrelated series.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates the exposition TYPE of a metric family.
type Kind int

// The metric kinds the registry exposes.
const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution with sum and count.
	KindHistogram
)

// typeName renders the Kind the way the TYPE comment spells it.
func (k Kind) typeName() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// DefBuckets are the default latency buckets in seconds: sub-millisecond
// cache hits through multi-second cold queries, roughly logarithmic. They
// mirror the spread BENCH_serve.json reports between the cached and
// uncached serving paths.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing uint64, safe for concurrent use.
type Counter struct{ n atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is an int64 level — in-flight requests, queue depth — safe for
// concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the level by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution of float64 observations
// (latency in seconds, by convention). Buckets are upper bounds; an
// observation lands in the first bucket whose bound is >= the value, or in
// the implicit +Inf bucket. Observe is lock-free.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64   // float64 bits of the running sum
	count   atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile estimates the q-th quantile (clamped to [0, 1]) of the
// observed distribution the way Prometheus' histogram_quantile does:
// find the bucket containing the target rank and interpolate linearly
// inside it. The estimate's resolution is therefore the bucket width —
// callers wanting tight p999 figures must register suitably fine
// buckets. Observations beyond the last finite bound cannot be
// interpolated and report that bound. An empty histogram reports NaN.
// Quantile is safe to call concurrently with Observe; a racing
// observation may or may not be included.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	lower := 0.0
	for i, bound := range h.bounds {
		c := float64(h.counts[i].Load())
		if c > 0 && cum+c >= rank {
			return lower + (bound-lower)*((rank-cum)/c)
		}
		cum += c
		lower = bound
	}
	if len(h.bounds) == 0 {
		return math.NaN()
	}
	return h.bounds[len(h.bounds)-1]
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// family is one named metric with a fixed label schema and either owned
// children (vec metrics) or a scrape-time callback (func metrics).
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // histograms only

	mu       sync.RWMutex
	children map[string]any // label-value key -> *Counter | *Gauge | *Histogram
	keys     []string       // insertion-ordered child keys, sorted at scrape

	collect func(emit func(value float64, labelValues ...string))
}

// child returns (creating if needed) the metric for one label combination.
func (f *family) child(lvs []string) any {
	if len(lvs) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s has labels %v, got %d values", f.name, f.labels, len(lvs)))
	}
	key := strings.Join(lvs, "\xff")
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	switch f.kind {
	case KindCounter:
		c = new(Counter)
	case KindGauge:
		c = new(Gauge)
	case KindHistogram:
		c = newHistogram(f.bounds)
	}
	f.children[key] = c
	f.keys = append(f.keys, key)
	return c
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (one per label key,
// in registration order), creating it on first use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.child(labelValues).(*Counter)
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values, creating it on first
// use.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.child(labelValues).(*Gauge)
}

// HistogramVec is a histogram family keyed by label values; every child
// shares the family's bucket bounds.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.child(labelValues).(*Histogram)
}

// Registry collects metric families and renders them as Prometheus text.
// Registration (the New* methods) is for startup: it panics on a duplicate
// name. Scraping and metric updates are safe concurrently.
type Registry struct {
	mu   sync.Mutex
	fams []*family
	seen map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{seen: map[string]bool{}} }

func (r *Registry) register(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen[f.name] {
		panic("obs: duplicate metric " + f.name)
	}
	r.seen[f.name] = true
	r.fams = append(r.fams, f)
}

// NewCounter registers a counter family; labelKeys may be empty for a
// single-series counter (access it as With()).
func (r *Registry) NewCounter(name, help string, labelKeys ...string) *CounterVec {
	f := &family{name: name, help: help, kind: KindCounter, labels: labelKeys, children: map[string]any{}}
	r.register(f)
	return &CounterVec{f}
}

// NewGauge registers a gauge family.
func (r *Registry) NewGauge(name, help string, labelKeys ...string) *GaugeVec {
	f := &family{name: name, help: help, kind: KindGauge, labels: labelKeys, children: map[string]any{}}
	r.register(f)
	return &GaugeVec{f}
}

// NewHistogram registers a histogram family with the given bucket upper
// bounds (ascending; nil selects DefBuckets).
func (r *Registry) NewHistogram(name, help string, buckets []float64, labelKeys ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obs: histogram buckets for " + name + " not strictly ascending")
		}
	}
	f := &family{name: name, help: help, kind: KindHistogram, labels: labelKeys,
		bounds: buckets, children: map[string]any{}}
	r.register(f)
	return &HistogramVec{f}
}

// NewCounterFunc registers a counter family whose samples are produced at
// scrape time by collect calling emit once per series. The callback must
// be safe for concurrent scrapes and emit monotonically non-decreasing
// values; use it to expose counters the caller already maintains.
func (r *Registry) NewCounterFunc(name, help string, labelKeys []string, collect func(emit func(value float64, labelValues ...string))) {
	r.register(&family{name: name, help: help, kind: KindCounter, labels: labelKeys, collect: collect})
}

// NewGaugeFunc registers a gauge family whose samples are produced at
// scrape time by collect calling emit once per series — live levels like
// an epoch, a cache's entry count, or per-shard table counts.
func (r *Registry) NewGaugeFunc(name, help string, labelKeys []string, collect func(emit func(value float64, labelValues ...string))) {
	r.register(&family{name: name, help: help, kind: KindGauge, labels: labelKeys, collect: collect})
}

// WriteText renders every family in registration order as Prometheus text
// exposition format (series within a family sorted by label values).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind.typeName())
		if f.collect != nil {
			f.collect(func(value float64, labelValues ...string) {
				writeSample(&b, f.name, f.labels, labelValues, value)
			})
		} else {
			f.mu.RLock()
			keys := make([]string, len(f.keys))
			copy(keys, f.keys)
			children := make([]any, len(keys))
			for i, k := range keys {
				children[i] = f.children[k]
			}
			f.mu.RUnlock()
			sort.Sort(&keyedChildren{keys, children})
			for i, key := range keys {
				lvs := splitKey(key, len(f.labels))
				switch c := children[i].(type) {
				case *Counter:
					writeSample(&b, f.name, f.labels, lvs, float64(c.Value()))
				case *Gauge:
					writeSample(&b, f.name, f.labels, lvs, float64(c.Value()))
				case *Histogram:
					writeHistogram(&b, f.name, f.labels, lvs, c)
				}
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// keyedChildren sorts children alongside their label keys.
type keyedChildren struct {
	keys     []string
	children []any
}

func (k *keyedChildren) Len() int           { return len(k.keys) }
func (k *keyedChildren) Less(i, j int) bool { return k.keys[i] < k.keys[j] }
func (k *keyedChildren) Swap(i, j int) {
	k.keys[i], k.keys[j] = k.keys[j], k.keys[i]
	k.children[i], k.children[j] = k.children[j], k.children[i]
}

// splitKey recovers the label values from a child key; n == 0 maps the
// empty key to no values.
func splitKey(key string, n int) []string {
	if n == 0 {
		return nil
	}
	return strings.SplitN(key, "\xff", n)
}

// writeHistogram renders one histogram series: cumulative buckets with the
// le label, the +Inf bucket, then _sum and _count.
func writeHistogram(b *strings.Builder, name string, labels, lvs []string, h *Histogram) {
	bl := make([]string, len(labels)+1)
	copy(bl, labels)
	bl[len(labels)] = "le"
	blv := make([]string, len(lvs)+1)
	copy(blv, lvs)
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		blv[len(lvs)] = formatFloat(bound)
		writeSample(b, name+"_bucket", bl, blv, float64(cum))
	}
	blv[len(lvs)] = "+Inf"
	writeSample(b, name+"_bucket", bl, blv, float64(h.Count()))
	writeSample(b, name+"_sum", labels, lvs, h.Sum())
	writeSample(b, name+"_count", labels, lvs, float64(h.Count()))
}

// writeSample renders one `name{labels} value` line.
func writeSample(b *strings.Builder, name string, labels, lvs []string, value float64) {
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, k := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(k)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(lvs[i]))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(value))
	b.WriteByte('\n')
}

// formatFloat renders a sample value the shortest exact way.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// ServeHTTP implements http.Handler: GET (or any method) returns the text
// exposition, so a Registry can be mounted directly as /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WriteText(w)
}
