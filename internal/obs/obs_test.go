package obs

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", "jobs processed", "kind")
	c.With("a").Inc()
	c.With("a").Add(2)
	c.With("b").Inc()
	if got := c.With("a").Value(); got != 3 {
		t.Fatalf("counter a = %d, want 3", got)
	}
	g := r.NewGauge("depth", "queue depth")
	g.With().Set(5)
	g.With().Dec()
	g.With().Add(-1)
	if got := g.With().Value(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}

	out := scrape(t, r)
	for _, want := range []string{
		"# HELP jobs_total jobs processed\n",
		"# TYPE jobs_total counter\n",
		`jobs_total{kind="a"} 3` + "\n",
		`jobs_total{kind="b"} 1` + "\n",
		"# TYPE depth gauge\n",
		"depth 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Series within a family are sorted by label values.
	if strings.Index(out, `kind="a"`) > strings.Index(out, `kind="b"`) {
		t.Fatalf("series not sorted by label value:\n%s", out)
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.With().Observe(v)
	}
	hh := h.With()
	if hh.Count() != 5 {
		t.Fatalf("count = %d, want 5", hh.Count())
	}
	if sum := hh.Sum(); sum < 102.64 || sum > 102.66 {
		t.Fatalf("sum = %v, want 102.65", sum)
	}

	out := scrape(t, r)
	// Cumulative buckets: <=0.1 holds 2 (0.05 and the boundary 0.1),
	// <=1 holds 3, <=10 holds 4, +Inf holds all 5.
	for _, want := range []string{
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.1"} 2` + "\n",
		`lat_seconds_bucket{le="1"} 3` + "\n",
		`lat_seconds_bucket{le="10"} 4` + "\n",
		`lat_seconds_bucket{le="+Inf"} 5` + "\n",
		"lat_seconds_count 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	epoch := 7
	r.NewGaugeFunc("epoch", "index epoch", nil, func(emit func(float64, ...string)) {
		emit(float64(epoch))
	})
	r.NewCounterFunc("shard_tables", "tables per shard", []string{"shard"},
		func(emit func(float64, ...string)) {
			for i, n := range []int{3, 4} {
				emit(float64(n), strconv.Itoa(i))
			}
		})
	out := scrape(t, r)
	for _, want := range []string{
		"epoch 7\n",
		`shard_tables{shard="0"} 3` + "\n",
		`shard_tables{shard="1"} 4` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	epoch = 9
	if !strings.Contains(scrape(t, r), "epoch 9\n") {
		t.Fatal("gauge func did not re-read live value")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("weird", "has \\ and\nnewline", "v")
	c.With("a\"b\\c\nd").Inc()
	out := scrape(t, r)
	if !strings.Contains(out, `# HELP weird has \\ and\nnewline`) {
		t.Fatalf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `weird{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
}

func TestRegistryPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup", "")
	mustPanic(t, "duplicate name", func() { r.NewCounter("dup", "") })
	v := r.NewCounter("arity", "", "a", "b")
	mustPanic(t, "label arity", func() { v.With("only-one") })
	mustPanic(t, "unsorted buckets", func() { r.NewHistogram("h", "", []float64{1, 1}) })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	f()
}

// TestConcurrentObserve races writers against scrapes; run under -race this
// pins the lock-free hot path.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("n", "", "w")
	h := r.NewHistogram("h_seconds", "", nil, "w")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			lv := strconv.Itoa(w % 2)
			for i := 0; i < 1000; i++ {
				c.With(lv).Inc()
				h.With(lv).Observe(float64(i) / 1000)
			}
		}()
	}
	for i := 0; i < 10; i++ {
		_ = scrape(t, r)
	}
	wg.Wait()
	if total := c.With("0").Value() + c.With("1").Value(); total != 4000 {
		t.Fatalf("lost increments: %d, want 4000", total)
	}
	if n := h.With("0").Count() + h.With("1").Count(); n != 4000 {
		t.Fatalf("lost observations: %d, want 4000", n)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat", "latency", []float64{1, 2, 4, 8}).With()

	if q := h.Quantile(0.5); q == q { // NaN != NaN
		t.Fatalf("empty histogram quantile = %v, want NaN", q)
	}

	// 100 observations per bucket: quantiles land at predictable bucket
	// boundaries under linear interpolation.
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
		h.Observe(3)
		h.Observe(6)
	}
	cases := []struct{ q, lo, hi float64 }{
		{0.25, 0, 1},   // inside the first bucket
		{0.5, 1, 2},    // inside the second
		{0.75, 2, 4},   // third
		{0.99, 4, 8},   // fourth
		{1, 7.9, 8.01}, // exactly the top of the last bucket
	}
	for _, c := range cases {
		got := h.Quantile(c.q)
		if got < c.lo || got > c.hi {
			t.Fatalf("Quantile(%v) = %v, want in [%v, %v]", c.q, got, c.lo, c.hi)
		}
	}
	if p25, p99 := h.Quantile(0.25), h.Quantile(0.99); p25 > p99 {
		t.Fatalf("quantiles not monotone: p25 %v > p99 %v", p25, p99)
	}

	// Clamping: out-of-range q behaves like the endpoints.
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Fatalf("Quantile(-1) = %v, want %v", got, h.Quantile(0))
	}
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Fatalf("Quantile(2) = %v, want %v", got, h.Quantile(1))
	}

	// Observations past the last finite bound report that bound.
	over := r.NewHistogram("over", "overflow", []float64{1}).With()
	over.Observe(100)
	if got := over.Quantile(0.99); got != 1 {
		t.Fatalf("overflowed Quantile = %v, want last bound 1", got)
	}
}
