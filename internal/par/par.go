// Package par is the parallel execution core shared by every stage of the
// DUST pipeline: deterministic chunked loops for data-parallel kernels
// (distance matrices, tuple embedding, per-table scoring) and a bounded
// worker pool for irregular task graphs (serving concurrent pipeline
// queries).
//
// Determinism contract: every helper here only decides WHICH goroutine
// executes an index range, never the order in which results are combined.
// Kernels that write their output by index — the pattern used throughout
// the repo — therefore produce bit-identical results for any worker count,
// including the sequential workers=1 case. Reductions that are sensitive to
// floating-point association must keep their accumulation order inside one
// index (or one chunk) and combine chunk results in chunk order.
package par

import (
	"context"
	"runtime"
	"sync"
)

// DefaultWorkers is the GOMAXPROCS-derived default parallelism. Every knob
// in the repo treats workers <= 0 as "use DefaultWorkers()".
func DefaultWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// Normalize maps a workers knob to an effective worker count: values <= 0
// select the GOMAXPROCS-derived default, everything else passes through.
func Normalize(workers int) int {
	if workers <= 0 {
		return DefaultWorkers()
	}
	return workers
}

// ForChunks splits [0, n) into at most workers contiguous chunks and runs
// body(lo, hi) for each chunk, concurrently when workers > 1. A panic in any
// chunk is re-raised in the caller after all chunks finish.
func ForChunks(workers, n int, body func(lo, hi int)) {
	workers = Normalize(workers)
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		body(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	var once sync.Once
	var panicked any
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					once.Do(func() { panicked = r })
				}
			}()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// For runs body(i) for every i in [0, n) across at most workers goroutines.
func For(workers, n int, body func(i int)) {
	ForChunks(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForCtx runs body(i) for every i in [0, n) across at most workers
// goroutines, skipping the remaining iterations once ctx is cancelled. It
// returns ctx.Err() when the loop was cut short and nil when every index
// ran. Cancellation is checked at index granularity: a body call already in
// flight finishes normally, so outputs written by index are always either
// fully written or untouched — never half-written. A ctx that can never be
// cancelled takes the plain For path with no per-index overhead.
func ForCtx(ctx context.Context, workers, n int, body func(i int)) error {
	done := ctx.Done()
	if done == nil {
		For(workers, n, body)
		return nil
	}
	ForChunks(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			select {
			case <-done:
				return
			default:
			}
			body(i)
		}
	})
	return ctx.Err()
}

// Map evaluates fn(i) for every i in [0, n) across at most workers
// goroutines and returns the results in index order. Because each slot is
// written exactly once by its own index, the output is identical for every
// worker count.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// Pool is a bounded worker pool: at most `workers` tasks execute
// concurrently, and Submit applies backpressure once every worker is busy.
// It suits irregular workloads (e.g. serving a batch of pipeline queries of
// very different sizes) where static chunking would load-balance poorly.
type Pool struct {
	tasks   chan func()
	workers sync.WaitGroup
	pending sync.WaitGroup
	mu      sync.Mutex
	panicV  any
}

// NewPool starts a pool with Normalize(workers) worker goroutines. Callers
// must Close it to release them.
func NewPool(workers int) *Pool {
	n := Normalize(workers)
	p := &Pool{tasks: make(chan func())}
	p.workers.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.workers.Done()
			for t := range p.tasks {
				t()
			}
		}()
	}
	return p
}

// Submit enqueues one task, blocking while all workers are busy. A panic
// inside the task is captured and re-raised by Wait.
func (p *Pool) Submit(task func()) {
	p.pending.Add(1)
	p.tasks <- func() {
		defer p.pending.Done()
		defer func() {
			if r := recover(); r != nil {
				p.mu.Lock()
				if p.panicV == nil {
					p.panicV = r
				}
				p.mu.Unlock()
			}
		}()
		task()
	}
}

// Run executes the given tasks on the pool and returns once all of them
// have finished, re-raising the first panic among them in the caller.
// Unlike Submit+Wait — which track pool-global completion — Run tracks only
// its own tasks, so concurrent Run calls sharing one long-lived pool (e.g.
// scatter-gather queries in flight together) never wait on each other's
// work. Tasks still compete for the pool's workers, so the pool bound
// applies across all concurrent callers combined. Run must not race with
// Close: quiesce callers before closing the pool, exactly as with Submit.
func (p *Pool) Run(tasks ...func()) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var panicked any
	wg.Add(len(tasks))
	for _, task := range tasks {
		task := task
		p.tasks <- func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = r
					}
					mu.Unlock()
				}
			}()
			task()
		}
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Wait blocks until every submitted task has finished, then re-raises the
// first captured task panic, if any.
func (p *Pool) Wait() {
	p.pending.Wait()
	p.mu.Lock()
	r := p.panicV
	p.panicV = nil
	p.mu.Unlock()
	if r != nil {
		panic(r)
	}
}

// Close waits for outstanding tasks and stops the workers. The pool cannot
// be reused afterwards.
func (p *Pool) Close() {
	p.pending.Wait()
	close(p.tasks)
	p.workers.Wait()
}
