package par

import (
	"sync/atomic"
	"testing"
)

func TestNormalize(t *testing.T) {
	if got := Normalize(0); got != DefaultWorkers() {
		t.Errorf("Normalize(0) = %d, want DefaultWorkers() = %d", got, DefaultWorkers())
	}
	if got := Normalize(-3); got != DefaultWorkers() {
		t.Errorf("Normalize(-3) = %d, want %d", got, DefaultWorkers())
	}
	if got := Normalize(5); got != 5 {
		t.Errorf("Normalize(5) = %d, want 5", got)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		const n = 137
		var hits [n]int32
		For(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
	}
}

func TestForChunksPartition(t *testing.T) {
	const n = 10
	var covered [n]int32
	chunks := int32(0)
	ForChunks(4, n, func(lo, hi int) {
		atomic.AddInt32(&chunks, 1)
		if lo >= hi || lo < 0 || hi > n {
			t.Errorf("bad chunk [%d, %d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	})
	if chunks > 4 {
		t.Errorf("got %d chunks, want <= 4", chunks)
	}
	for i, c := range covered {
		if c != 1 {
			t.Errorf("index %d covered %d times", i, c)
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	ran := false
	For(4, 0, func(int) { ran = true })
	For(4, -5, func(int) { ran = true })
	if ran {
		t.Error("body ran for n <= 0")
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	fn := func(i int) int { return i*i - 7*i }
	want := Map(1, 501, fn)
	for _, workers := range []int{2, 4, 16} {
		got := Map(workers, 501, fn)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: Map[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want boom", r)
		}
	}()
	For(4, 100, func(i int) {
		if i == 41 {
			panic("boom")
		}
	})
}

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var sum int64
	for i := 1; i <= 100; i++ {
		i := i
		p.Submit(func() { atomic.AddInt64(&sum, int64(i)) })
	}
	p.Wait()
	if sum != 5050 {
		t.Errorf("sum = %d, want 5050", sum)
	}
	// The pool is reusable across Wait calls until Close.
	p.Submit(func() { atomic.AddInt64(&sum, 1) })
	p.Wait()
	if sum != 5051 {
		t.Errorf("after second round sum = %d, want 5051", sum)
	}
}

func TestPoolPanicPropagatesOnWait(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.Submit(func() { panic("task failed") })
	defer func() {
		if r := recover(); r != "task failed" {
			t.Errorf("recovered %v, want task failed", r)
		}
	}()
	p.Wait()
}

func TestPoolRunCompletesAllTasks(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var sum int64
	tasks := make([]func(), 100)
	for i := range tasks {
		i := i
		tasks[i] = func() { atomic.AddInt64(&sum, int64(i+1)) }
	}
	p.Run(tasks...)
	if sum != 5050 {
		t.Errorf("sum = %d, want 5050", sum)
	}
	// The pool stays usable across Run calls, and an empty Run is a no-op.
	p.Run()
	p.Run(func() { atomic.AddInt64(&sum, 1) })
	if sum != 5051 {
		t.Errorf("after second round sum = %d, want 5051", sum)
	}
}

// TestPoolRunIsolation pins the property the long-lived scatter pool
// depends on: a Run call returns when ITS tasks finish, without waiting on
// other callers' in-flight tasks.
func TestPoolRunIsolation(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	block := make(chan struct{})
	slowStarted := make(chan struct{})
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		p.Run(func() {
			close(slowStarted)
			<-block
		})
	}()
	<-slowStarted
	// The slow caller's task occupies one worker; this Run must finish on
	// the other worker while the slow task is still blocked.
	ran := false
	p.Run(func() { ran = true })
	if !ran {
		t.Fatal("fast Run returned without executing its task")
	}
	select {
	case <-slowDone:
		t.Fatal("slow Run finished while its task was still blocked")
	default:
	}
	close(block)
	<-slowDone
}

func TestPoolRunPanicPropagates(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	func() {
		defer func() {
			if r := recover(); r != "run failed" {
				t.Errorf("recovered %v, want run failed", r)
			}
		}()
		p.Run(func() {}, func() { panic("run failed") })
	}()
	// A panic in one Run never poisons the pool for the next caller.
	ok := false
	p.Run(func() { ok = true })
	if !ok {
		t.Error("pool unusable after a panicking Run")
	}
}
