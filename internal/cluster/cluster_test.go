package cluster

import (
	"math"
	"math/rand"
	"testing"

	"dust/internal/vector"
)

// threeBlobs returns 3 well-separated gaussian blobs of the given size each.
func threeBlobs(perBlob int, seed int64) ([]vector.Vec, []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := []vector.Vec{{0, 0}, {10, 0}, {0, 10}}
	var items []vector.Vec
	var truth []int
	for c, ctr := range centers {
		for i := 0; i < perBlob; i++ {
			items = append(items, vector.Vec{ctr[0] + rng.NormFloat64()*0.5, ctr[1] + rng.NormFloat64()*0.5})
			truth = append(truth, c)
		}
	}
	return items, truth
}

func TestMatrixBasics(t *testing.T) {
	items := []vector.Vec{{0, 0}, {3, 4}, {6, 8}}
	m := NewMatrix(items, vector.Euclidean)
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
	if got := m.At(0, 1); math.Abs(got-5) > 1e-6 {
		t.Errorf("At(0,1) = %v, want 5", got)
	}
	if m.At(1, 0) != m.At(0, 1) {
		t.Error("matrix not symmetric")
	}
	if m.At(2, 2) != 0 {
		t.Error("self distance not 0")
	}
}

func TestMedoid(t *testing.T) {
	items := []vector.Vec{{0, 0}, {1, 0}, {2, 0}, {10, 0}}
	m := NewMatrix(items, vector.Euclidean)
	if got := m.Medoid([]int{0, 1, 2}); got != 1 {
		t.Errorf("Medoid = %d, want 1 (central point)", got)
	}
	if got := m.Medoid([]int{3}); got != 3 {
		t.Errorf("Medoid singleton = %d, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Medoid of empty set did not panic")
		}
	}()
	m.Medoid(nil)
}

func TestAgglomerativeRecoversBlobs(t *testing.T) {
	for _, linkage := range []Linkage{Average, Single, Complete} {
		items, truth := threeBlobs(15, 42)
		m := NewMatrix(items, vector.Euclidean)
		dend := Agglomerative(m, Options{Linkage: linkage})
		labels, k := dend.Cut(3)
		if k != 3 {
			t.Fatalf("%v: Cut(3) produced %d clusters", linkage, k)
		}
		// All items of a true blob must share a label and blobs must differ.
		blobLabel := map[int]int{}
		for i, tr := range truth {
			if l, ok := blobLabel[tr]; ok {
				if labels[i] != l {
					t.Fatalf("%v: blob %d split across clusters", linkage, tr)
				}
			} else {
				blobLabel[tr] = labels[i]
			}
		}
		if len(blobLabel) != 3 {
			t.Fatalf("%v: blobs merged", linkage)
		}
	}
}

func TestDendrogramMergeDistancesMonotone(t *testing.T) {
	// Average linkage on euclidean distances is reducible, so NN-chain must
	// produce merges that can be sorted without inversions after sorting by
	// distance; we verify the weaker but sufficient property that a Cut at
	// every k produces nested partitions.
	items, _ := threeBlobs(10, 7)
	m := NewMatrix(items, vector.Euclidean)
	dend := Agglomerative(m, Options{Linkage: Average})
	prev, prevK := dend.Cut(len(items))
	for k := len(items) - 1; k >= 1; k-- {
		cur, curK := dend.Cut(k)
		if curK > prevK {
			t.Fatalf("cluster count increased from %d to %d", prevK, curK)
		}
		// Nested: items sharing a label in prev must share one in cur.
		rep := map[int]int{}
		for i := range prev {
			if r, ok := rep[prev[i]]; ok {
				if cur[i] != cur[r] {
					t.Fatalf("cut at k=%d breaks nesting", k)
				}
			} else {
				rep[prev[i]] = i
			}
		}
		prev, prevK = cur, curK
	}
}

func TestCannotLinkConstraint(t *testing.T) {
	// Two tight pairs; constraint forbids the tightest merge.
	items := []vector.Vec{{0, 0}, {0.1, 0}, {5, 0}, {5.1, 0}}
	m := NewMatrix(items, vector.Euclidean)
	forbidden := func(i, j int) bool { return (i == 0 && j == 1) || (i == 1 && j == 0) }
	dend := Agglomerative(m, Options{Linkage: Average, CannotLink: forbidden})
	for k := len(items); k >= 1; k-- {
		labels, _ := dend.Cut(k)
		if labels[0] == labels[1] {
			t.Fatalf("cut at k=%d put cannot-link items together", k)
		}
	}
}

func TestCannotLinkPropagatesThroughMerges(t *testing.T) {
	// 0 and 3 are forbidden. 0 merges with 1 and 3 with 4 first; the merged
	// clusters must then still refuse to merge with each other.
	items := []vector.Vec{{0, 0}, {0.1, 0}, {0.2, 0}, {0.35, 0}, {0.45, 0}}
	m := NewMatrix(items, vector.Euclidean)
	forbidden := func(i, j int) bool {
		return (i == 0 && j == 3) || (i == 3 && j == 0)
	}
	dend := Agglomerative(m, Options{Linkage: Average, CannotLink: forbidden})
	for k := len(items); k >= 1; k-- {
		labels, _ := dend.Cut(k)
		if labels[0] == labels[3] {
			t.Fatalf("cut at k=%d violated propagated cannot-link", k)
		}
	}
}

func TestCutExtremes(t *testing.T) {
	items, _ := threeBlobs(5, 3)
	m := NewMatrix(items, vector.Euclidean)
	dend := Agglomerative(m, Options{})
	labels, k := dend.Cut(1)
	if k != 1 {
		t.Errorf("Cut(1) gave %d clusters", k)
	}
	for _, l := range labels {
		if l != 0 {
			t.Fatal("Cut(1) labels not uniform")
		}
	}
	labels, k = dend.Cut(1000)
	if k != len(items) {
		t.Errorf("Cut(1000) gave %d clusters, want %d singletons", k, len(items))
	}
	seen := map[int]bool{}
	for _, l := range labels {
		if seen[l] {
			t.Fatal("Cut above n produced shared labels")
		}
		seen[l] = true
	}
}

func TestAgglomerativeTrivialSizes(t *testing.T) {
	empty := Agglomerative(&Matrix{n: 0}, Options{})
	if len(empty.Merges) != 0 {
		t.Error("empty matrix produced merges")
	}
	one := Agglomerative(NewMatrix([]vector.Vec{{1}}, vector.Euclidean), Options{})
	if len(one.Merges) != 0 {
		t.Error("single item produced merges")
	}
}

func TestSilhouetteQuality(t *testing.T) {
	items, truth := threeBlobs(10, 11)
	m := NewMatrix(items, vector.Euclidean)
	good := Silhouette(m, truth, 3)
	if good < 0.8 {
		t.Errorf("silhouette of true labels = %v, want > 0.8", good)
	}
	// A bad labelling (round-robin) must score much lower.
	bad := make([]int, len(items))
	for i := range bad {
		bad[i] = i % 3
	}
	if s := Silhouette(m, bad, 3); s >= good {
		t.Errorf("round-robin silhouette %v >= true %v", s, good)
	}
	if !math.IsNaN(Silhouette(m, make([]int, len(items)), 1)) {
		t.Error("silhouette of single cluster should be NaN")
	}
}

func TestBestCutFindsTrueK(t *testing.T) {
	items, _ := threeBlobs(12, 5)
	m := NewMatrix(items, vector.Euclidean)
	dend := Agglomerative(m, Options{Linkage: Average})
	_, k, score := BestCut(m, dend, 2, 10)
	if k != 3 {
		t.Errorf("BestCut chose k=%d (score %v), want 3", k, score)
	}
	if score < 0.8 {
		t.Errorf("BestCut score = %v, want > 0.8", score)
	}
}

func TestMembers(t *testing.T) {
	groups := Members([]int{0, 1, 0, 2, 1}, 3)
	if len(groups) != 3 || len(groups[0]) != 2 || len(groups[1]) != 2 || len(groups[2]) != 1 {
		t.Errorf("Members = %v", groups)
	}
}

func TestNewMatrixFromFunc(t *testing.T) {
	m := NewMatrixFromFunc(3, func(i, j int) float64 { return float64(i + j) })
	if m.At(1, 2) != 3 {
		t.Errorf("At(1,2) = %v, want 3", m.At(1, 2))
	}
	if m.At(2, 1) != 3 {
		t.Error("not symmetric")
	}
}
