// Package cluster implements the hierarchical clustering substrate used by
// three parts of the reproduction: holistic column alignment (paper §3.3),
// DUST's candidate-tuple selection (§5.2), and the CLT baseline (§6.4.2).
// It provides agglomerative clustering with average/single/complete linkage
// via the nearest-neighbour-chain algorithm, cannot-link constraints (no
// two columns of the same table may align), silhouette-coefficient model
// selection, and medoid extraction.
package cluster

import (
	"math"

	"dust/internal/par"
	"dust/internal/vector"
)

// Matrix is a symmetric pairwise distance matrix stored in float32 to halve
// memory for the larger tuple-clustering workloads.
type Matrix struct {
	n int
	d []float32
}

// NewMatrix computes the pairwise distance matrix of items under dist,
// sequentially. Use NewMatrixWorkers when dist is concurrency-safe and the
// workload warrants fanning out.
func NewMatrix(items []vector.Vec, dist vector.DistanceFunc) *Matrix {
	return NewMatrixWorkers(items, dist, 1)
}

// NewMatrixWorkers is NewMatrix with an explicit worker bound (<= 0 means
// the GOMAXPROCS default, 1 the sequential path). dist must be safe for
// concurrent calls when workers != 1; each cell is computed exactly once,
// so the result is identical for every worker count.
func NewMatrixWorkers(items []vector.Vec, dist vector.DistanceFunc, workers int) *Matrix {
	return NewMatrixFromFuncWorkers(len(items), func(i, j int) float64 {
		return dist(items[i], items[j])
	}, workers)
}

// NewMatrixFromFunc builds a distance matrix by calling f for every pair
// (i < j), sequentially.
func NewMatrixFromFunc(n int, f func(i, j int) float64) *Matrix {
	return NewMatrixFromFuncWorkers(n, f, 1)
}

// NewMatrixFromFuncWorkers builds a distance matrix in parallel row blocks.
// Rows are paired (i with n-1-i) so every work unit covers a near-constant
// number of upper-triangle cells despite the triangular iteration space.
// Each worker owns disjoint rows and writes disjoint cells — (i,j) and its
// mirror (j,i) are written only by the worker computing row min(i,j) — so
// construction is race-free and bit-identical to the sequential loop.
func NewMatrixFromFuncWorkers(n int, f func(i, j int) float64, workers int) *Matrix {
	m := &Matrix{n: n, d: make([]float32, n*n)}
	fillRow := func(i int) {
		for j := i + 1; j < n; j++ {
			v := float32(f(i, j))
			m.d[i*n+j] = v
			m.d[j*n+i] = v
		}
	}
	half := (n + 1) / 2
	par.For(workers, half, func(i int) {
		fillRow(i)
		if j := n - 1 - i; j > i {
			fillRow(j)
		}
	})
	return m
}

// Len returns the number of items.
func (m *Matrix) Len() int { return m.n }

// At returns the distance between items i and j.
func (m *Matrix) At(i, j int) float64 { return float64(m.d[i*m.n+j]) }

// medoidParallelThreshold is the member count above which Medoid fans the
// per-member distance sums out to the worker pool; below it the goroutine
// overhead dwarfs the O(len(members)^2) scan.
const medoidParallelThreshold = 128

// Medoid returns the member of the given item set with the minimum total
// distance to the other members (ties break to the member listed first),
// sequentially. It panics on an empty set.
func (m *Matrix) Medoid(members []int) int {
	return m.MedoidWorkers(members, 1)
}

// MedoidWorkers is Medoid with an explicit worker bound. Each member's
// distance sum accumulates sequentially in member order inside one
// goroutine, and the argmin scan stays sequential, so the selection is
// bit-identical for every worker count.
func (m *Matrix) MedoidWorkers(members []int, workers int) int {
	if len(members) == 0 {
		panic("cluster: Medoid of empty set")
	}
	if len(members) < medoidParallelThreshold {
		workers = 1
	}
	sums := par.Map(workers, len(members), func(k int) float64 {
		var sum float64
		for _, j := range members {
			sum += m.At(members[k], j)
		}
		return sum
	})
	best := members[0]
	bestSum := math.Inf(1)
	for k, i := range members {
		if sums[k] < bestSum {
			bestSum = sums[k]
			best = i
		}
	}
	return best
}
