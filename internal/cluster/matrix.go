// Package cluster implements the hierarchical clustering substrate used by
// three parts of the reproduction: holistic column alignment (paper §3.3),
// DUST's candidate-tuple selection (§5.2), and the CLT baseline (§6.4.2).
// It provides agglomerative clustering with average/single/complete linkage
// via the nearest-neighbour-chain algorithm, cannot-link constraints (no
// two columns of the same table may align), silhouette-coefficient model
// selection, and medoid extraction.
package cluster

import (
	"math"

	"dust/internal/vector"
)

// Matrix is a symmetric pairwise distance matrix stored in float32 to halve
// memory for the larger tuple-clustering workloads.
type Matrix struct {
	n int
	d []float32
}

// NewMatrix computes the pairwise distance matrix of items under dist.
func NewMatrix(items []vector.Vec, dist vector.DistanceFunc) *Matrix {
	n := len(items)
	m := &Matrix{n: n, d: make([]float32, n*n)}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := float32(dist(items[i], items[j]))
			m.d[i*n+j] = v
			m.d[j*n+i] = v
		}
	}
	return m
}

// NewMatrixFromFunc builds a distance matrix by calling f for every pair.
func NewMatrixFromFunc(n int, f func(i, j int) float64) *Matrix {
	m := &Matrix{n: n, d: make([]float32, n*n)}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := float32(f(i, j))
			m.d[i*n+j] = v
			m.d[j*n+i] = v
		}
	}
	return m
}

// Len returns the number of items.
func (m *Matrix) Len() int { return m.n }

// At returns the distance between items i and j.
func (m *Matrix) At(i, j int) float64 { return float64(m.d[i*m.n+j]) }

// Medoid returns the member of the given item set with the minimum total
// distance to the other members (ties break to the lowest index). It panics
// on an empty set.
func (m *Matrix) Medoid(members []int) int {
	if len(members) == 0 {
		panic("cluster: Medoid of empty set")
	}
	best := members[0]
	bestSum := math.Inf(1)
	for _, i := range members {
		var sum float64
		for _, j := range members {
			sum += m.At(i, j)
		}
		if sum < bestSum {
			bestSum = sum
			best = i
		}
	}
	return best
}
