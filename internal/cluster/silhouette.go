package cluster

import "math"

// Silhouette returns the mean silhouette coefficient of the labelled
// clustering over the distance matrix (Rousseeuw 1987, the quality measure
// the paper uses to pick the number of column clusters, §3.3 and §6.2.1).
// Items in singleton clusters contribute 0, matching scikit-learn.
// The result is in [-1, 1]; higher is better. It returns NaN when the
// clustering has fewer than 2 clusters or fewer than 2 items.
func Silhouette(m *Matrix, labels []int, numClusters int) float64 {
	n := m.Len()
	if n < 2 || numClusters < 2 {
		return math.NaN()
	}
	members := Members(labels, numClusters)
	var total float64
	for i := 0; i < n; i++ {
		own := members[labels[i]]
		if len(own) <= 1 {
			continue // silhouette of a singleton is 0
		}
		// a = mean distance to own cluster (excluding self).
		var a float64
		for _, j := range own {
			if j != i {
				a += m.At(i, j)
			}
		}
		a /= float64(len(own) - 1)
		// b = min over other clusters of mean distance.
		b := math.Inf(1)
		for c, mem := range members {
			if c == labels[i] || len(mem) == 0 {
				continue
			}
			var s float64
			for _, j := range mem {
				s += m.At(i, j)
			}
			s /= float64(len(mem))
			if s < b {
				b = s
			}
		}
		if mx := math.Max(a, b); mx > 0 {
			total += (b - a) / mx
		}
	}
	return total / float64(n)
}

// BestCut evaluates every cut of the dendrogram between minK and maxK
// clusters and returns the labels, cluster count, and silhouette score of
// the best-scoring cut. If no cut in range produces a valid silhouette the
// cut at minK is returned with a NaN score.
func BestCut(m *Matrix, d *Dendrogram, minK, maxK int) (labels []int, k int, score float64) {
	if minK < 2 {
		minK = 2
	}
	if maxK > d.N {
		maxK = d.N
	}
	best := math.Inf(-1)
	for kk := minK; kk <= maxK; kk++ {
		l, actual := d.Cut(kk)
		if actual < 2 {
			continue
		}
		s := Silhouette(m, l, actual)
		if !math.IsNaN(s) && s > best {
			best = s
			labels, k, score = l, actual, s
		}
	}
	if labels == nil {
		labels, k = d.Cut(minK)
		score = math.NaN()
	}
	return labels, k, score
}
