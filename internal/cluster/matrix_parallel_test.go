package cluster

import (
	"testing"

	"dust/internal/vector"
)

// syntheticVecs builds a deterministic workload large enough to exercise
// multi-chunk scheduling and the Medoid parallel threshold.
func syntheticVecs(n, dim int) []vector.Vec {
	state := uint64(42)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>40)/float64(1<<24) - 0.5
	}
	out := make([]vector.Vec, n)
	for i := range out {
		v := make(vector.Vec, dim)
		for j := range v {
			v[j] = next()
		}
		out[i] = v
	}
	return out
}

func TestNewMatrixWorkersDeterministic(t *testing.T) {
	items := syntheticVecs(301, 8)
	seq := NewMatrixWorkers(items, vector.CosineDistance, 1)
	for _, workers := range []int{2, 8} {
		got := NewMatrixWorkers(items, vector.CosineDistance, workers)
		if got.Len() != seq.Len() {
			t.Fatalf("workers=%d: Len %d, want %d", workers, got.Len(), seq.Len())
		}
		for i := 0; i < seq.Len(); i++ {
			for j := 0; j < seq.Len(); j++ {
				if got.At(i, j) != seq.At(i, j) {
					t.Fatalf("workers=%d: At(%d,%d) = %v, want %v",
						workers, i, j, got.At(i, j), seq.At(i, j))
				}
			}
		}
	}
}

func TestNewMatrixFromFuncWorkersDeterministic(t *testing.T) {
	f := func(i, j int) float64 { return float64(i*1000+j) / 7 }
	seq := NewMatrixFromFuncWorkers(157, f, 1)
	got := NewMatrixFromFuncWorkers(157, f, 8)
	for i := 0; i < 157; i++ {
		for j := 0; j < 157; j++ {
			if got.At(i, j) != seq.At(i, j) {
				t.Fatalf("At(%d,%d) = %v, want %v", i, j, got.At(i, j), seq.At(i, j))
			}
		}
	}
}

func TestMedoidWorkersDeterministic(t *testing.T) {
	// More members than medoidParallelThreshold so the parallel path runs.
	items := syntheticVecs(400, 8)
	m := NewMatrix(items, vector.CosineDistance)
	members := make([]int, 300)
	for i := range members {
		members[i] = i + 50
	}
	want := m.MedoidWorkers(members, 1)
	for _, workers := range []int{2, 8} {
		if got := m.MedoidWorkers(members, workers); got != want {
			t.Errorf("workers=%d: Medoid = %d, want %d", workers, got, want)
		}
	}
}
