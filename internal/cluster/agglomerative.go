package cluster

import (
	"math"
	"sort"
)

// Linkage selects the cluster-distance update rule.
type Linkage int

const (
	// Average linkage (UPGMA) — the paper's configuration (§6.2.1).
	Average Linkage = iota
	// Single linkage (nearest member).
	Single
	// Complete linkage (farthest member).
	Complete
)

// String returns the lowercase linkage name.
func (l Linkage) String() string {
	switch l {
	case Single:
		return "single"
	case Complete:
		return "complete"
	default:
		return "average"
	}
}

// Merge records one agglomeration step: clusters A and B (ids) merged at
// the given distance into a new cluster with id New.
type Merge struct {
	A, B     int
	Distance float64
	New      int
}

// Dendrogram is the full merge history of an agglomerative run. Leaf items
// have ids 0..N-1; merged clusters get ids N, N+1, ...
type Dendrogram struct {
	N      int
	Merges []Merge
}

// Options configures an agglomerative run.
type Options struct {
	Linkage Linkage
	// CannotLink, if non-nil, reports that leaf items i and j must never
	// end up in the same cluster (used to forbid aligning two columns of
	// the same table, paper §3.3). The constraint propagates to merged
	// clusters automatically.
	CannotLink func(i, j int) bool
}

// Agglomerative clusters the items of m bottom-up using the
// nearest-neighbour-chain algorithm with Lance-Williams distance updates
// (O(n^2) for the reducible linkages offered here). Pairs forbidden by
// CannotLink get +Inf distance, which Lance-Williams propagates, so the
// returned dendrogram may stop early if only forbidden merges remain.
func Agglomerative(m *Matrix, opts Options) *Dendrogram {
	n := m.Len()
	dend := &Dendrogram{N: n}
	if n <= 1 {
		return dend
	}

	// Working distance matrix between active clusters, indexed by slot.
	// Slot i initially holds leaf i; merged clusters reuse slot of A.
	d := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d[i*n+j] = m.At(i, j)
		}
	}
	if opts.CannotLink != nil {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if opts.CannotLink(i, j) {
					d[i*n+j] = math.Inf(1)
					d[j*n+i] = math.Inf(1)
				}
			}
		}
	}

	active := make([]bool, n)
	size := make([]int, n)
	id := make([]int, n) // dendrogram id currently held by each slot
	for i := 0; i < n; i++ {
		active[i] = true
		size[i] = 1
		id[i] = i
	}
	nextID := n
	remaining := n

	// nearest returns the active slot nearest to slot a and the distance.
	nearest := func(a int) (int, float64) {
		best, bestD := -1, math.Inf(1)
		row := d[a*n : (a+1)*n]
		for j := 0; j < n; j++ {
			if j == a || !active[j] {
				continue
			}
			if row[j] < bestD {
				best, bestD = j, row[j]
			}
		}
		return best, bestD
	}

	chain := make([]int, 0, n)
	frozen := make([]bool, n) // slots with no finite-distance neighbour left

	for remaining > 1 {
		if len(chain) == 0 {
			start := -1
			for i := 0; i < n; i++ {
				if active[i] && !frozen[i] {
					start = i
					break
				}
			}
			if start == -1 {
				break // only mutually forbidden clusters remain
			}
			chain = append(chain, start)
		}
		a := chain[len(chain)-1]
		b, dist := nearest(a)
		if b == -1 || math.IsInf(dist, 1) {
			// a cannot merge with anything anymore.
			frozen[a] = true
			chain = chain[:len(chain)-1]
			continue
		}
		if len(chain) >= 2 && b == chain[len(chain)-2] {
			// Reciprocal nearest neighbours: merge a and b into slot a.
			chain = chain[:len(chain)-2]
			dend.Merges = append(dend.Merges, Merge{A: id[a], B: id[b], Distance: dist, New: nextID})
			sa, sb := float64(size[a]), float64(size[b])
			for k := 0; k < n; k++ {
				if k == a || k == b || !active[k] {
					continue
				}
				dak, dbk := d[a*n+k], d[b*n+k]
				var nd float64
				switch opts.Linkage {
				case Single:
					nd = math.Min(dak, dbk)
				case Complete:
					nd = math.Max(dak, dbk)
				default: // Average
					nd = (sa*dak + sb*dbk) / (sa + sb)
				}
				d[a*n+k] = nd
				d[k*n+a] = nd
			}
			active[b] = false
			size[a] += size[b]
			id[a] = nextID
			nextID++
			remaining--
			// The merge can unfreeze nothing (distances only grow to Inf),
			// but it may have removed some slot's nearest neighbour; the
			// chain discipline handles that because we re-derive neighbours
			// on each step.
			continue
		}
		chain = append(chain, b)
	}
	// NN-chain discovers reciprocal nearest neighbours in chain order, not
	// in ascending merge distance. Cut applies merges sequentially, so
	// restore the ascending order here. The stable sort keeps dependencies
	// intact: for the reducible linkages offered, a merge consuming the
	// output of another always has a distance >= its input's distance, and
	// on ties the producing merge was appended first.
	sort.SliceStable(dend.Merges, func(i, j int) bool {
		return dend.Merges[i].Distance < dend.Merges[j].Distance
	})
	return dend
}

// Cut returns cluster assignments after performing merges until exactly k
// clusters remain (or until the dendrogram runs out of merges, whichever
// comes first). The result maps each leaf to a compact cluster label in
// [0, actual); actual is the achieved number of clusters.
func (d *Dendrogram) Cut(k int) (labels []int, actual int) {
	if k < 1 {
		k = 1
	}
	parent := make([]int, d.N+len(d.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	clusters := d.N
	for _, mg := range d.Merges {
		if clusters <= k {
			break
		}
		ra, rb := find(mg.A), find(mg.B)
		parent[ra] = mg.New
		parent[rb] = mg.New
		clusters--
	}
	labels = make([]int, d.N)
	compact := map[int]int{}
	for i := 0; i < d.N; i++ {
		r := find(i)
		if _, ok := compact[r]; !ok {
			compact[r] = len(compact)
		}
		labels[i] = compact[r]
	}
	return labels, len(compact)
}

// Members groups leaf indices by label.
func Members(labels []int, numClusters int) [][]int {
	out := make([][]int, numClusters)
	for i, l := range labels {
		out[l] = append(out[l], i)
	}
	return out
}
