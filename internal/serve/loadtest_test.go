package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dust"
	"dust/internal/datagen"
	"dust/internal/table"
)

// canonParts renders one search result in a canonical comparable form:
// retrieved tables, result tuples, and provenance.
func canonParts(tables []string, rows [][]string, provTables []string, provRows []int) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(tables, "|"))
	sb.WriteString("§")
	for i, row := range rows {
		sb.WriteString(strings.Join(row, "\x1f"))
		sb.WriteString(fmt.Sprintf("@%s:%d;", provTables[i], provRows[i]))
	}
	return sb.String()
}

func canonResult(res *dust.Result) string {
	rows := rowsOf(res.Tuples)
	pt := make([]string, len(res.Provenance))
	pr := make([]int, len(res.Provenance))
	for i, p := range res.Provenance {
		pt[i], pr[i] = p.Table, p.Row
	}
	return canonParts(res.UnionableTables, rows, pt, pr)
}

func canonResponse(out searchResponse) string {
	pt := make([]string, len(out.Provenance))
	pr := make([]int, len(out.Provenance))
	for i, p := range out.Provenance {
		pt[i], pr[i] = p.Table, p.Row
	}
	return canonParts(out.Tables, out.Tuples.Rows, pt, pr)
}

// soakMutation is one step of the deterministic mutation schedule.
type soakMutation struct {
	add    *table.Table
	remove string
}

// TestSoakConcurrentSearchAndMutation is the load/soak harness: client
// goroutines hammer /search while a mutator applies a deterministic
// add/remove schedule through the HTTP API. Every response must (1)
// succeed, (2) carry an epoch no older than the client last observed — a
// stale-epoch cache hit would violate that monotonicity — and (3) be
// bit-identical to the result a from-scratch pipeline at that epoch's
// table set produces, i.e. every answer matches some consistent snapshot.
// Run under -race in CI.
func TestSoakConcurrentSearchAndMutation(t *testing.T) {
	spec := datagen.LakeSpec{Name: "soak", Seed: 17, Tables: 14, Rows: 16}
	l := spec.Generate()
	const k = 5

	// Hold three tables out of the lake; the mutator adds/removes them live.
	names := l.Names()
	held := make([]*table.Table, 3)
	for i := range held {
		held[i] = l.Get(names[len(names)-1-i])
		if err := l.Remove(held[i].Name); err != nil {
			t.Fatal(err)
		}
	}
	schedule := []soakMutation{
		{add: held[0]},
		{add: held[1]},
		{remove: held[0].Name},
		{add: held[2]},
		{remove: held[1].Name},
		{remove: held[2].Name},
	}

	p := dust.New(l, dust.WithTopTables(4))
	// Query tables come from the same spec, so they hit real lake content.
	queries := make([]*table.Table, 3)
	for i := range queries {
		queries[i] = spec.Query(i)
	}

	// Precompute the expected result for every (epoch, query) pair by
	// replaying the schedule on clones — the server must never serve
	// anything else.
	expected := make([]map[string]string, len(schedule)+1)
	record := func(epoch int, pl *dust.Pipeline) {
		m := make(map[string]string, len(queries))
		for _, q := range queries {
			res, err := pl.Search(q, k)
			if err != nil {
				t.Fatalf("expected result, epoch %d, query %s: %v", epoch, q.Name, err)
			}
			m[q.Name] = canonResult(res)
		}
		expected[epoch] = m
	}
	record(0, p)
	replay := p
	for i, mu := range schedule {
		next, err := replay.Clone()
		if err != nil {
			t.Fatal(err)
		}
		if mu.add != nil {
			err = next.AddTable(mu.add.Clone(mu.add.Name))
		} else {
			err = next.RemoveTable(mu.remove)
		}
		if err != nil {
			t.Fatalf("replay mutation %d: %v", i, err)
		}
		record(i+1, next)
		replay = next
	}

	srv := New(p, WithTimeout(30*time.Second), WithMaxInFlight(8))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	errCh := make(chan error, 256)
	var wg sync.WaitGroup

	// Mutator: walk the schedule over HTTP with small gaps so swaps land
	// mid-traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, mu := range schedule {
			time.Sleep(25 * time.Millisecond)
			if mu.add != nil {
				body, _ := json.Marshal(tableJSON{Headers: mu.add.Headers(), Rows: rowsOf(mu.add)})
				req, _ := http.NewRequest(http.MethodPut, ts.URL+"/tables/"+mu.add.Name, bytes.NewReader(body))
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errCh <- fmt.Errorf("mutation %d: %w", i, err)
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusCreated {
					errCh <- fmt.Errorf("mutation %d (add %s): status %d", i, mu.add.Name, resp.StatusCode)
				}
			} else {
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/tables/"+mu.remove, nil)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errCh <- fmt.Errorf("mutation %d: %w", i, err)
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("mutation %d (remove %s): status %d", i, mu.remove, resp.StatusCode)
				}
			}
		}
	}()

	// Clients: hammer /search, validating every response against the
	// precomputed per-epoch truth.
	const clients = 6
	const reqsPerClient = 25
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lastEpoch := uint64(0)
			for i := 0; i < reqsPerClient; i++ {
				q := queries[(c+i)%len(queries)]
				body, _ := json.Marshal(searchRequest{
					Query: tableJSON{Headers: q.Headers(), Rows: rowsOf(q)}, K: k,
				})
				resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
				if err != nil {
					errCh <- fmt.Errorf("client %d req %d: %w", c, i, err)
					continue
				}
				var out searchResponse
				decErr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("client %d req %d: status %d", c, i, resp.StatusCode)
					continue
				}
				if decErr != nil {
					errCh <- fmt.Errorf("client %d req %d: decode: %w", c, i, decErr)
					continue
				}
				if out.Epoch < lastEpoch {
					errCh <- fmt.Errorf("client %d req %d: epoch went backwards %d -> %d (stale cache hit?)",
						c, i, lastEpoch, out.Epoch)
					continue
				}
				lastEpoch = out.Epoch
				if out.Epoch >= uint64(len(expected)) {
					errCh <- fmt.Errorf("client %d req %d: epoch %d beyond schedule", c, i, out.Epoch)
					continue
				}
				if got, want := canonResponse(out), expected[out.Epoch][q.Name]; got != want {
					errCh <- fmt.Errorf("client %d req %d (cached=%v): result does not match snapshot epoch %d for %s",
						c, i, out.Cached, out.Epoch, q.Name)
				}
			}
		}(c)
	}

	wg.Wait()
	close(errCh)
	failures := 0
	for err := range errCh {
		failures++
		if failures <= 10 {
			t.Error(err)
		}
	}
	if failures > 10 {
		t.Errorf("... and %d more failures", failures-10)
	}

	var hz struct {
		Epoch  uint64 `json:"epoch"`
		Tables int    `json:"tables"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if hz.Epoch != uint64(len(schedule)) {
		t.Fatalf("final epoch %d, want %d", hz.Epoch, len(schedule))
	}
	if hz.Tables != l.Len() {
		t.Fatalf("final table count %d, want %d (schedule removes everything it adds)", hz.Tables, l.Len())
	}
}

// Fixed specs for the throughput benchmarks; BENCH_serve.json numbers stay
// comparable across commits because the seeds pin the lakes bit-for-bit.
var (
	benchSpec      = datagen.LakeSpec{Name: "serve-bench", Seed: 81, Tables: 20, Rows: 22}
	largeBenchSpec = datagen.LakeSpec{Name: "serve-bench-large", Seed: 82, Tables: 600, Rows: 22}
)

// specServer builds a server over a LakeSpec lake and pre-marshals a
// search body from the spec's first query table.
func specServer(b *testing.B, spec datagen.LakeSpec, opts ...Option) (*Server, *httptest.Server, []byte) {
	p := dust.New(spec.Generate(), dust.WithTopTables(5))
	srv := New(p, opts...)
	ts := httptest.NewServer(srv)
	b.Cleanup(ts.Close)
	q := spec.Query(0)
	body, err := json.Marshal(searchRequest{
		Query: tableJSON{Headers: q.Headers(), Rows: rowsOf(q)}, K: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	return srv, ts, body
}

// BenchmarkServeThroughput measures end-to-end request latency and
// aggregate QPS through the full HTTP stack, uncached (cache disabled, the
// pipeline runs every time) vs cached (every request after the first is a
// fingerprint lookup). Recorded in BENCH_serve.json; the acceptance floor
// is cached >= 5x faster than uncached.
func BenchmarkServeThroughput(b *testing.B) {
	run := func(b *testing.B, ts *httptest.Server, body []byte) {
		b.ResetTimer()
		start := time.Now()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
				if err != nil {
					b.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					b.Errorf("status %d", resp.StatusCode)
				}
				var out searchResponse
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					b.Errorf("decode: %v", err)
				}
				resp.Body.Close()
			}
		})
		b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "qps")
	}

	b.Run("uncached", func(b *testing.B) {
		_, ts, body := specServer(b, benchSpec, WithCacheCapacity(0), WithMaxInFlight(8))
		run(b, ts, body)
	})
	b.Run("cached", func(b *testing.B) {
		_, ts, body := specServer(b, benchSpec, WithCacheCapacity(1024), WithMaxInFlight(8))
		// Warm the single cache line the benchmark hits.
		resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		run(b, ts, body)
	})

	// The saturated pair measures cost-aware degradation where it matters:
	// a larger lake (ANN pruning has candidates to skip), caching off
	// (every request computes), and 7 of 8 slots pinned so the load factor
	// stays above the degrade threshold for every request. The exact arm
	// is the baseline the degraded arm must beat under the same load;
	// recorded as the degraded-path entry in BENCH_serve.json.
	saturate := func(b *testing.B, srv *Server) {
		for i := 0; i < 7; i++ {
			srv.sem <- struct{}{}
		}
		b.Cleanup(func() {
			for i := 0; i < 7; i++ {
				<-srv.sem
			}
		})
	}
	b.Run("saturated-exact", func(b *testing.B) {
		srv, ts, body := specServer(b, largeBenchSpec, WithCacheCapacity(0), WithMaxInFlight(8))
		saturate(b, srv)
		run(b, ts, body)
	})
	b.Run("saturated-degraded", func(b *testing.B) {
		srv, ts, body := specServer(b, largeBenchSpec, WithCacheCapacity(0), WithMaxInFlight(8),
			WithDegradeThreshold(0.5))
		saturate(b, srv)
		run(b, ts, body)
	})
}
