package serve

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dust"
	"dust/internal/lake"
	"dust/internal/par"
	"dust/internal/search"
	"dust/internal/shard"
	"dust/internal/table"
)

// DefaultK is the result count served when a search request does not name
// one.
const DefaultK = 10

// DefaultMaxBodyBytes caps request bodies (64 MiB): a stray multi-gigabyte
// upload must fail with 413, not buffer into the long-running server's
// heap.
const DefaultMaxBodyBytes = 64 << 20

// Server is an http.Handler exposing one dust.Pipeline as a search service
// with live mutation. See the package comment for the concurrency model.
//
// Endpoints:
//
//	POST   /search         run a diverse-tuple search (JSON or text/csv body)
//	GET    /tables         list the lake's tables
//	PUT    /tables/{name}  add a table to the lake and live index
//	DELETE /tables/{name}  remove a table from the lake and live index
//	GET    /stats          cache/admission/lake counters
//	GET    /healthz        liveness + current epoch
//	GET    /metrics        Prometheus text exposition (see docs/OPERATIONS.md)
type Server struct {
	snap  atomic.Pointer[Snapshot]
	mu    sync.Mutex // serializes mutations: clone -> apply -> swap
	cache *Cache
	sem   chan struct{}

	timeout      time.Duration
	maxK         int
	maxBody      int64
	queryWorkers int
	cacheCap     int   // entry bound handed to the cache at construction
	cacheBytes   int64 // byte bound handed to the cache; 0 = unbounded

	// Cost-aware admission (WithDegradeThreshold). costNS is an EWMA of
	// observed exact-search cost per cost unit (query rows x lake tables),
	// stored as float64 bits; waits is a ring of recent admission waits
	// whose p99 is a second overload signal beside the in-flight ratio.
	degradeThreshold float64
	costNS           atomic.Uint64
	waits            admissionRing

	// Background maintenance (WithMaintenance): a serve-owned goroutine
	// that compacts tombstone-heavy indexes on a clone off the query path.
	maintInterval  time.Duration
	maintThreshold float64
	maintStop      chan struct{}
	closeOnce      sync.Once

	searches  atomic.Uint64 // successfully served, cached or not
	mutations atomic.Uint64
	rejected  atomic.Uint64 // admission/deadline/pipeline failures
	canceled  atomic.Uint64 // client went away mid-request
	waiting   atomic.Int64  // searches parked at admission right now
	degraded  atomic.Uint64 // searches answered by the ANN view under load
	shed      atomic.Uint64 // searches refused with 503 + Retry-After under load
	maintRuns atomic.Uint64 // maintenance passes that compacted and swapped

	metrics *serverMetrics
	scatter *shard.StageTimings // shard-path stage accumulator, always non-nil
	logw    io.Writer           // request log sink; nil disables logging
	logmu   sync.Mutex          // serializes request-log writes

	mux *http.ServeMux
}

// Option customizes a Server.
type Option func(*Server)

// WithCacheCapacity bounds the query-result cache to about n responses
// (default 1024); n <= 0 disables caching.
func WithCacheCapacity(n int) Option { return func(s *Server) { s.cacheCap = n } }

// WithCacheBytes additionally bounds the cache's resident bytes (key +
// body + per-entry overhead); n <= 0 (the default) leaves bytes unbounded,
// with only the entry-count bound of WithCacheCapacity in force.
func WithCacheBytes(n int64) Option { return func(s *Server) { s.cacheBytes = n } }

// WithDegradeThreshold enables cost-aware admission: when the in-flight
// load factor (executing + waiting searches over the admission bound)
// reaches f, or the recent admission-wait p99 exceeds a tenth of the
// request timeout, non-trivial searches are degraded to the snapshot's
// ANN view — same index, approximate retrieval — instead of queueing for
// an exact slot. Pipelines without an ANN view (see dust.PrepareANN) shed
// instead: 503 with a Retry-After estimated from the observed per-search
// cost. f <= 0 (the default) disables the policy. Degraded responses
// carry "degraded": true and count in dust_serve_degraded_total.
func WithDegradeThreshold(f float64) Option { return func(s *Server) { s.degradeThreshold = f } }

// WithMaintenance enables background index maintenance: every interval,
// a serve-owned goroutine inspects the published snapshot's tombstone
// fractions and, past the maintenance threshold, compacts a clone off the
// query path and swaps it in. While a maintainer is attached, mutations
// never compact inline (auto-compaction is disabled on the pipeline), so
// AddTable/RemoveTable latency stays O(delta) no matter how much
// tombstone debt has accrued. interval <= 0 (the default) disables the
// maintainer.
func WithMaintenance(interval time.Duration) Option {
	return func(s *Server) { s.maintInterval = interval }
}

// WithMaintenanceThreshold overrides the dead-entry fraction at which the
// maintainer compacts (default DefaultMaintenanceThreshold). Only
// meaningful together with WithMaintenance.
func WithMaintenanceThreshold(f float64) Option {
	return func(s *Server) { s.maintThreshold = f }
}

// WithMaxInFlight bounds the number of concurrently executing searches
// (default: the GOMAXPROCS-derived worker count). Excess requests wait for
// a slot until their timeout and are then rejected with 503.
func WithMaxInFlight(n int) Option {
	return func(s *Server) { s.sem = make(chan struct{}, par.Normalize(n)) }
}

// WithQueryWorkers bounds the data parallelism inside each request
// (default 1, so the in-flight bound alone governs total load).
func WithQueryWorkers(n int) Option {
	return func(s *Server) {
		if n < 1 {
			n = 1
		}
		s.queryWorkers = n
	}
}

// WithTimeout sets the per-request budget threaded into SearchContext
// (default 30s); d <= 0 disables the server-side deadline.
func WithTimeout(d time.Duration) Option { return func(s *Server) { s.timeout = d } }

// WithMaxK caps the per-request result count (default 1000).
func WithMaxK(n int) Option { return func(s *Server) { s.maxK = n } }

// WithMaxBodyBytes caps request body sizes (default DefaultMaxBodyBytes);
// n <= 0 removes the cap.
func WithMaxBodyBytes(n int64) Option { return func(s *Server) { s.maxBody = n } }

// New wraps a pipeline in a Server. The pipeline must not be used by the
// caller afterwards: the server owns it (mutations clone and swap it).
func New(p *dust.Pipeline, opts ...Option) *Server {
	s := &Server{
		cacheCap:       1024,
		timeout:        30 * time.Second,
		maxK:           1000,
		maxBody:        DefaultMaxBodyBytes,
		queryWorkers:   1,
		maintThreshold: DefaultMaintenanceThreshold,
	}
	for _, o := range opts {
		o(s)
	}
	s.cache = NewCacheBytes(s.cacheCap, s.cacheBytes)
	if s.sem == nil {
		s.sem = make(chan struct{}, par.DefaultWorkers())
	}
	if s.degradeThreshold > 0 {
		// Degraded admission needs an ANN view; install the graph up front
		// (it survives clones and mode flips) so the very first overload
		// can degrade instead of shedding. Best-effort: searchers without
		// a staged retrieval surface simply shed.
		p.PrepareANN()
	}
	if s.maintInterval > 0 {
		// The maintainer owns compaction: mutations must never rebuild
		// inline (that is exactly the stall the maintainer exists to
		// absorb). The policy bit is cloned into every future snapshot.
		p.SetAutoCompact(false)
	}
	// Attach the scatter-stage accumulator before the first snapshot is
	// published: pipeline clones copy the searcher by value, so the pointer
	// installed here survives into every view and every future swap.
	s.scatter = &shard.StageTimings{}
	scatterOn := p.InstrumentScatter(s.scatter)
	s.snap.Store(newSnapshot(p, s.queryWorkers))
	s.metrics = newServerMetrics(s, scatterOn)
	if s.maintInterval > 0 {
		s.maintStop = make(chan struct{})
		go s.maintenanceLoop()
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /search", s.instrument("/search", s.handleSearch))
	s.mux.HandleFunc("GET /tables", s.instrument("/tables", s.handleListTables))
	s.mux.HandleFunc("PUT /tables/{name}", s.instrument("/tables/{name}", s.handlePutTable))
	s.mux.HandleFunc("DELETE /tables/{name}", s.instrument("/tables/{name}", s.handleDeleteTable))
	s.mux.HandleFunc("GET /stats", s.instrument("/stats", s.handleStats))
	s.mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.Handle("GET /metrics", s.metrics.reg)
	return s
}

// ServeHTTP implements http.Handler. Bodies are capped before any handler
// buffers them; past the cap, reads fail and the decoders report 400.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.maxBody > 0 && r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	s.mux.ServeHTTP(w, r)
}

// Snapshot returns the currently published snapshot (for tests and
// embedding callers; requests load it exactly once themselves).
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Close stops the background maintainer (if any) and releases resources
// owned by the served pipeline — with a sharded index, the shard family's
// long-lived scatter pool (shared across every snapshot clone, so one call
// covers the whole swap history). Call it only once the server stops
// receiving requests: queries already in flight are unaffected (request
// views scatter inline, without the pool), but the master pipeline must
// not serve new work after Close. Close is idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.maintStop != nil {
			close(s.maintStop)
		}
		s.snap.Load().master.Close()
	})
}

// tableJSON is the wire form of a table: a header row plus value rows.
type tableJSON struct {
	Name    string     `json:"name,omitempty"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// toTable validates the wire form and builds a table named name.
func (tj *tableJSON) toTable(name string) (*table.Table, error) {
	if len(tj.Headers) == 0 {
		return nil, errors.New("table needs at least one header")
	}
	t := table.New(name, tj.Headers...)
	for i, row := range tj.Rows {
		if err := t.AppendRow(row); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
	}
	return t, nil
}

// fromTable converts a table to its wire form.
func fromTable(t *table.Table) tableJSON {
	rows := make([][]string, t.NumRows())
	for i := range rows {
		rows[i] = t.Row(i)
	}
	return tableJSON{Name: t.Name, Headers: t.Headers(), Rows: rows}
}

// searchRequest is the JSON body of POST /search.
type searchRequest struct {
	Query tableJSON `json:"query"`
	K     int       `json:"k,omitempty"`
}

// provenanceJSON names the source of one result tuple.
type provenanceJSON struct {
	Table string `json:"table"`
	Row   int    `json:"row"`
}

// searchResponse is the JSON body of a successful POST /search.
type searchResponse struct {
	Epoch      uint64           `json:"epoch"`
	Cached     bool             `json:"cached"`
	Degraded   bool             `json:"degraded,omitempty"`
	K          int              `json:"k"`
	Tables     []string         `json:"tables"`
	Pool       int              `json:"pool"`
	Tuples     tableJSON        `json:"tuples"`
	Provenance []provenanceJSON `json:"provenance"`
}

// errorJSON is the body of every non-2xx response.
type errorJSON struct {
	Error string `json:"error"`
}

// marshalJSON renders v the way every response body is rendered (no HTML
// escaping, trailing newline), so cached bytes are byte-identical in shape
// to live ones.
func marshalJSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := marshalJSON(v)
	if err != nil {
		// Even the encode-failure path honors the errorJSON contract:
		// clients parse every non-2xx body as {"error": ...}, so the
		// fallback must be JSON too, not http.Error's text/plain.
		body, _ = marshalJSON(errorJSON{Error: "encode response: " + err.Error()})
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorJSON{Error: msg})
}

// bodyCapMessage returns the 413 message for err if it stems from the
// request-body cap (http.MaxBytesReader), else "". The cap surfaces as a
// read error deep inside whichever decoder was draining the body, so
// callers must probe before classifying a decode failure as the client's
// malformed input.
func bodyCapMessage(err error) string {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return fmt.Sprintf("request body exceeds the %d-byte cap", mbe.Limit)
	}
	return ""
}

// decodeError maps a body-decode failure to its status and message:
// 413 when the body cap was hit, 400 otherwise.
func decodeError(err error) (int, string) {
	if msg := bodyCapMessage(err); msg != "" {
		return http.StatusRequestEntityTooLarge, msg
	}
	return http.StatusBadRequest, err.Error()
}

// decodeSearchRequest parses a /search body: JSON by default, or a raw
// query CSV when Content-Type is text/csv (k then comes from the ?k= query
// parameter) — the latter makes `curl --data-binary @query.csv` work
// without any JSON assembly.
func decodeSearchRequest(r *http.Request) (*table.Table, int, error) {
	k := 0
	if raw := r.URL.Query().Get("k"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil {
			return nil, 0, fmt.Errorf("bad k parameter %q", raw)
		}
		k = n
	}
	if strings.HasPrefix(r.Header.Get("Content-Type"), "text/csv") {
		rec, err := csv.NewReader(r.Body).ReadAll()
		if err != nil {
			return nil, 0, fmt.Errorf("bad csv body: %w", err)
		}
		if len(rec) == 0 {
			return nil, 0, errors.New("empty csv body")
		}
		tj := tableJSON{Headers: rec[0], Rows: rec[1:]}
		q, err := tj.toTable("query")
		if err != nil {
			return nil, 0, err
		}
		return q, k, nil
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req searchRequest
	if err := dec.Decode(&req); err != nil {
		return nil, 0, fmt.Errorf("bad request body: %w", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		// A capped body also fails this probe; keep the cause so the
		// handler reports 413, not a bogus trailing-data 400.
		if err != nil && bodyCapMessage(err) != "" {
			return nil, 0, err
		}
		return nil, 0, errors.New("trailing data after request body")
	}
	if k == 0 {
		k = req.K
	}
	name := req.Query.Name
	if name == "" {
		name = "query"
	}
	q, err := req.Query.toTable(name)
	if err != nil {
		return nil, 0, err
	}
	return q, k, nil
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	info := infoFrom(ctx)
	info.isSearch = true
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	query, k, err := decodeSearchRequest(r)
	if err != nil {
		status, msg := decodeError(err)
		info.errMsg = msg
		httpError(w, status, msg)
		return
	}
	switch {
	case k == 0:
		k = DefaultK
	case k < 0:
		msg := fmt.Sprintf("k must be positive, got %d", k)
		info.errMsg = msg
		httpError(w, http.StatusBadRequest, msg)
		return
	case k > s.maxK:
		msg := fmt.Sprintf("k %d exceeds the server cap %d", k, s.maxK)
		info.errMsg = msg
		httpError(w, http.StatusBadRequest, msg)
		return
	}

	// One atomic load pins this request to a consistent snapshot: index,
	// lake, config tag, and epoch all come from the same published state,
	// no matter how many swaps happen while the query runs.
	snap := s.snap.Load()
	fp := queryFingerprint(query)
	key := cacheKey(fp, k, snap.tag, snap.Epoch())
	info.k, info.epoch = k, snap.Epoch()

	// A cache hit is a map lookup plus a byte write — no pipeline work —
	// so it is served before admission: a saturated server keeps answering
	// cached traffic while shedding only queries that would cost compute.
	if body, ok := s.cache.Get(key); ok {
		s.searches.Add(1)
		info.cache = "hit"
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
		return
	}
	if s.cache == nil {
		info.cache = "none"
	} else {
		info.cache = "miss"
	}

	// Cost-aware admission: past the configured load threshold, a search
	// worth degrading runs against the snapshot's ANN view — same frozen
	// index, approximate retrieval, a fraction of the exact cost — and a
	// pipeline with no such view sheds the request instead of queueing it
	// into a backlog it cannot drain. Queries estimated cheaper than a
	// millisecond are admitted exactly even under load: degrading them
	// frees no meaningful capacity. Degraded requests still pass the
	// admission gate below — the policy trades work per slot, not the
	// slot bound itself.
	view := snap.query
	units := costUnits(query, snap)
	if load, over := s.overloaded(); over && !s.cheap(units) {
		if snap.degraded != nil {
			view = snap.degraded
			info.degraded = true
			s.degraded.Add(1)
			// The degraded plan has its own config tag, so its cache lines
			// never mix with exact results; probe them before computing.
			key = cacheKey(fp, k, snap.degradedTag, snap.Epoch())
			if body, ok := s.cache.Get(key); ok {
				s.searches.Add(1)
				info.cache = "hit"
				w.Header().Set("Content-Type", "application/json")
				_, _ = w.Write(body)
				return
			}
		} else {
			s.shed.Add(1)
			s.rejected.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(units)))
			msg := fmt.Sprintf("server overloaded (load %.2f, threshold %.2f) and no degraded mode is available", load, s.degradeThreshold)
			info.errMsg = msg
			httpError(w, http.StatusServiceUnavailable, msg)
			return
		}
	}

	// Admission: wait for an in-flight slot, but never past the request's
	// deadline — a saturated server sheds load instead of queueing forever.
	// A client that disconnects while parked is an abandonment (canceled),
	// not load shedding (rejected); the two counters answer different
	// operational questions.
	waitStart := time.Now()
	s.waiting.Add(1)
	select {
	case s.sem <- struct{}{}:
		s.waiting.Add(-1)
		wait := time.Since(waitStart)
		s.waits.observe(wait)
		s.metrics.admissionWait.With().Observe(wait.Seconds())
		defer func() { <-s.sem }()
	case <-ctx.Done():
		s.waiting.Add(-1)
		if errors.Is(ctx.Err(), context.Canceled) {
			s.canceled.Add(1)
		} else {
			s.rejected.Add(1)
		}
		msg := "server saturated: " + ctx.Err().Error()
		info.errMsg = msg
		httpError(w, http.StatusServiceUnavailable, msg)
		return
	}

	tr := &search.Trace{}
	searchStart := time.Now()
	res, err := view.SearchContext(search.WithTrace(ctx, tr), query, k)
	if err != nil {
		info.errMsg = err.Error()
		switch {
		case errors.Is(err, context.Canceled):
			// The client went away; the status is for logs only.
			s.canceled.Add(1)
			httpError(w, http.StatusServiceUnavailable, err.Error())
		case errors.Is(err, context.DeadlineExceeded):
			s.rejected.Add(1)
			httpError(w, http.StatusGatewayTimeout, err.Error())
		default:
			s.rejected.Add(1)
			httpError(w, http.StatusUnprocessableEntity, err.Error())
		}
		return
	}
	info.trace = tr
	if !info.degraded {
		// Only exact searches feed the cost model; degraded timings would
		// drag the estimate down and mislabel expensive queries as cheap.
		s.observeCost(units, time.Since(searchStart))
	}

	prov := make([]provenanceJSON, len(res.Provenance))
	for i, p := range res.Provenance {
		prov[i] = provenanceJSON{Table: p.Table, Row: p.Row}
	}
	// The result table's name derives from the client-chosen query name,
	// which the cache fingerprint deliberately ignores; strip it so a
	// cached body never leaks one client's name to another and cached
	// bytes equal what any client's uncached request would produce.
	tuples := fromTable(res.Tuples)
	tuples.Name = ""
	resp := searchResponse{
		Epoch:      snap.Epoch(),
		Degraded:   info.degraded,
		K:          k,
		Tables:     res.UnionableTables,
		Pool:       res.Unioned.NumRows(),
		Tuples:     tuples,
		Provenance: prov,
	}
	s.searches.Add(1)
	writeJSON(w, http.StatusOK, resp)

	// Cache the response with Cached pre-flipped so hits are a pure
	// lookup-and-write with zero marshaling on the hot path. marshalJSON
	// keeps the cached bytes shaped exactly like the live ones.
	resp.Cached = true
	if body, err := marshalJSON(resp); err == nil {
		s.cache.Put(key, body)
	}
}

// mutate runs apply on a copy-on-write clone of the current snapshot's
// pipeline under the mutation lock and publishes the result, returning the
// published snapshot so callers report an (epoch, table count) pair that
// actually existed — not state re-read after later swaps. In-flight
// queries keep reading the old snapshot; they never block this swap and it
// never blocks them.
func (s *Server) mutate(apply func(p *dust.Pipeline) error) (*Snapshot, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.snap.Load()
	shadow, err := cur.master.Clone()
	if err != nil {
		// A pipeline that cannot clone is a server misconfiguration, not a
		// missing feature of this endpoint: 500, reserving 501 for the
		// per-operation ErrNotIncremental below.
		return nil, http.StatusInternalServerError, err
	}
	if err := apply(shadow); err != nil {
		switch {
		case errors.Is(err, dust.ErrNotIncremental):
			return nil, http.StatusNotImplemented, err
		case errors.Is(err, lake.ErrUnknownTable):
			// A concurrent mutation beat this one to the table.
			return nil, http.StatusNotFound, err
		case errors.Is(err, search.ErrDuplicateTable), errors.Is(err, lake.ErrDuplicateTable):
			return nil, http.StatusConflict, err
		}
		return nil, http.StatusUnprocessableEntity, err
	}
	next := newSnapshot(shadow, s.queryWorkers)
	s.snap.Store(next)
	s.mutations.Add(1)
	return next, http.StatusOK, nil
}

// mutationResponse is the body of a successful table mutation.
type mutationResponse struct {
	Epoch  uint64 `json:"epoch"`
	Table  string `json:"table"`
	Tables int    `json:"tables"`
}

func (s *Server) handlePutTable(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var tj tableJSON
	if strings.HasPrefix(r.Header.Get("Content-Type"), "text/csv") {
		rec, err := csv.NewReader(r.Body).ReadAll()
		if err != nil {
			status, msg := decodeError(fmt.Errorf("bad csv body: %w", err))
			httpError(w, status, msg)
			return
		}
		if len(rec) == 0 {
			httpError(w, http.StatusBadRequest, "empty csv body")
			return
		}
		tj = tableJSON{Headers: rec[0], Rows: rec[1:]}
	} else {
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&tj); err != nil {
			status, msg := decodeError(fmt.Errorf("bad request body: %w", err))
			httpError(w, status, msg)
			return
		}
	}
	t, err := tj.toTable(name)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Duplicate probe outside mutate for a clean 409; the authoritative
	// check is AddTable's own under the mutation lock.
	if s.snap.Load().master.Lake().Get(name) != nil {
		httpError(w, http.StatusConflict, fmt.Sprintf("table %q already in the lake", name))
		return
	}
	next, status, err := s.mutate(func(p *dust.Pipeline) error { return p.AddTable(t) })
	if err != nil {
		httpError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, mutationResponse{
		Epoch: next.Epoch(), Table: name, Tables: next.master.Lake().Len(),
	})
}

func (s *Server) handleDeleteTable(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if s.snap.Load().master.Lake().Get(name) == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no table %q in the lake", name))
		return
	}
	next, status, err := s.mutate(func(p *dust.Pipeline) error { return p.RemoveTable(name) })
	if err != nil {
		httpError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, mutationResponse{
		Epoch: next.Epoch(), Table: name, Tables: next.master.Lake().Len(),
	})
}

// tableInfoJSON is one entry of GET /tables.
type tableInfoJSON struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
	Cols int    `json:"cols"`
}

func (s *Server) handleListTables(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	tables := snap.master.Lake().Tables()
	out := struct {
		Epoch  uint64          `json:"epoch"`
		Tables []tableInfoJSON `json:"tables"`
	}{Epoch: snap.Epoch(), Tables: make([]tableInfoJSON, len(tables))}
	for i, t := range tables {
		out.Tables[i] = tableInfoJSON{Name: t.Name, Rows: t.NumRows(), Cols: t.NumCols()}
	}
	writeJSON(w, http.StatusOK, out)
}

// StatsResponse is the body of GET /stats. It is exported as the wire
// contract for external harnesses: the open-loop load generator
// (internal/loadgen) scrapes /stats before and after a run and diffs
// these counters against its client-side accounting.
type StatsResponse struct {
	Epoch       uint64 `json:"epoch"`
	Tables      int    `json:"tables"`
	Columns     int    `json:"columns"`
	Tuples      int    `json:"tuples"`
	Searches    uint64 `json:"searches"`
	Mutations   uint64 `json:"mutations"`
	Rejected    uint64 `json:"rejected"`
	Canceled    uint64 `json:"canceled"`
	Degraded    uint64 `json:"degraded"`
	Shed        uint64 `json:"shed"`
	Compactions uint64 `json:"compactions"`
	InFlight    int    `json:"in_flight"`
	MaxIn       int    `json:"max_in_flight"`
	Cache       struct {
		Hits    uint64 `json:"hits"`
		Misses  uint64 `json:"misses"`
		Entries int    `json:"entries"`
		Bytes   int64  `json:"bytes"`
	} `json:"cache"`
	// Index reports the resident footprint of the snapshot's ANN index
	// structures ("none" storage with zero bytes while no graph is
	// installed), mirroring the dust_index_bytes gauge.
	Index struct {
		Storage string `json:"storage"`
		Bytes   int64  `json:"bytes"`
	} `json:"index"`
	ConfigTag string `json:"config"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	st := snap.master.Lake().Stats()
	resp := StatsResponse{
		Epoch:       snap.Epoch(),
		Tables:      st.Tables,
		Columns:     st.Columns,
		Tuples:      st.Tuples,
		Searches:    s.searches.Load(),
		Mutations:   s.mutations.Load(),
		Rejected:    s.rejected.Load(),
		Canceled:    s.canceled.Load(),
		Degraded:    s.degraded.Load(),
		Shed:        s.shed.Load(),
		Compactions: s.maintRuns.Load(),
		InFlight:    len(s.sem),
		MaxIn:       cap(s.sem),
		ConfigTag:   snap.tag,
	}
	resp.Cache.Hits, resp.Cache.Misses, resp.Cache.Entries, resp.Cache.Bytes = s.cache.Stats()
	fp := snap.master.IndexBytes()
	resp.Index.Storage, resp.Index.Bytes = fp.Storage, fp.Bytes
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
		Epoch  uint64 `json:"epoch"`
		Tables int    `json:"tables"`
	}{Status: "ok", Epoch: snap.Epoch(), Tables: snap.master.Lake().Len()})
}
