package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"dust"
	"dust/internal/search"
)

// postBody posts body to url with the given content type and returns the
// response plus its drained body.
func postBody(t *testing.T, method, url, contentType, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestStatusCodeContract pins the error contract of the mutating and
// searching endpoints: the right status per failure class, and every
// non-2xx body a JSON object with a non-empty error field.
func TestStatusCodeContract(t *testing.T) {
	_, ts, b := newTestServer(t, WithMaxBodyBytes(1024))
	existing := b.Lake.Tables()[0].Name
	bigJSON := fmt.Sprintf(`{"query":{"headers":["a"],"rows":[["%s"]]},"k":3}`,
		strings.Repeat("x", 4096))
	bigCSV := "a,b\n" + strings.Repeat("xxxx,yyyy\n", 512)

	cases := []struct {
		name        string
		method      string
		path        string
		contentType string
		body        string
		status      int
		wantSubstr  string
	}{
		{"search json over cap", "POST", "/search", "application/json",
			bigJSON, http.StatusRequestEntityTooLarge, "1024-byte cap"},
		{"search csv over cap", "POST", "/search", "text/csv",
			bigCSV, http.StatusRequestEntityTooLarge, "1024-byte cap"},
		{"put csv over cap", "PUT", "/tables/newt", "text/csv",
			bigCSV, http.StatusRequestEntityTooLarge, "1024-byte cap"},
		{"put json over cap", "PUT", "/tables/newt", "application/json",
			fmt.Sprintf(`{"headers":["a"],"rows":[["%s"]]}`, strings.Repeat("x", 4096)),
			http.StatusRequestEntityTooLarge, "1024-byte cap"},
		{"search malformed json", "POST", "/search", "application/json",
			`{"query": {`, http.StatusBadRequest, "bad request body"},
		{"put malformed csv names cause", "PUT", "/tables/newt", "text/csv",
			"a,b\n\"unterminated", http.StatusBadRequest, "bad csv body: "},
		{"put empty csv body", "PUT", "/tables/newt", "text/csv",
			"", http.StatusBadRequest, "empty csv body"},
		{"put duplicate table", "PUT", "/tables/" + existing, "application/json",
			`{"headers":["a"],"rows":[["1"]]}`, http.StatusConflict, "already in the lake"},
		{"delete missing table", "DELETE", "/tables/no-such-table", "application/json",
			"", http.StatusNotFound, "no table"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postBody(t, tc.method, ts.URL+tc.path, tc.contentType, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.status, body)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("error content type %q, want application/json", ct)
			}
			var e errorJSON
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("error body %q not JSON with error field: %v", body, err)
			}
			if !strings.Contains(e.Error, tc.wantSubstr) {
				t.Fatalf("error %q missing %q", e.Error, tc.wantSubstr)
			}
		})
	}

	// A pipeline whose searcher cannot clone is a server misconfiguration:
	// mutations fail with 500, not 501 — the endpoint is implemented, the
	// deployment is broken. 501 stays reserved for ErrNotIncremental.
	t.Run("clone failure is 500", func(t *testing.T) {
		p := dust.New(fixedLake().Lake, dust.WithSearcher(stubSearcher{}))
		ts := httptest.NewServer(New(p))
		t.Cleanup(ts.Close)
		resp, body := postBody(t, "PUT", ts.URL+"/tables/newt", "application/json",
			`{"headers":["a"],"rows":[["1"]]}`)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("status %d, want 500 (body %s)", resp.StatusCode, body)
		}
		var e errorJSON
		if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "does not support cloning") {
			t.Fatalf("error body %q does not name the clone failure (err %v)", body, err)
		}
	})
}

// TestRejectedVsCanceled pins the accounting split at admission: a request
// shed by the server-side deadline counts as rejected, a client that goes
// away while parked counts as canceled, and /stats reports both.
func TestRejectedVsCanceled(t *testing.T) {
	srv, ts, b := newTestServer(t,
		WithMaxInFlight(1), WithTimeout(150*time.Millisecond), WithCacheCapacity(0))
	body := searchBody(t, b.Queries[0], 3)

	// Occupy the only slot so every search parks at admission.
	srv.sem <- struct{}{}
	defer func() { <-srv.sem }()

	// Server-side deadline fires while parked: 503, rejected++.
	resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated status %d, want 503", resp.StatusCode)
	}
	if got := srv.rejected.Load(); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	if got := srv.canceled.Load(); got != 0 {
		t.Fatalf("canceled = %d, want 0 after deadline shed", got)
	}

	// Client disconnects while parked: canceled++, rejected unchanged.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/search", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("canceled request unexpectedly got a response")
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.canceled.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.canceled.Load(); got != 1 {
		t.Fatalf("canceled = %d, want 1", got)
	}
	if got := srv.rejected.Load(); got != 1 {
		t.Fatalf("rejected = %d, want still 1", got)
	}

	var st StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.Rejected != 1 || st.Canceled != 1 {
		t.Fatalf("stats rejected=%d canceled=%d, want 1 and 1", st.Rejected, st.Canceled)
	}
}

// sampleLine matches one Prometheus text-format sample.
var sampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9+].*|NaN)$`)

// scrapeMetrics GETs /metrics, checks the content type, and returns the
// exposition text.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestMetricsExposition drives a miss then a hit through /search and pins
// the exposed samples: request counters and latency histograms advance and
// split by cache outcome, stage histograms record served searches only,
// and every line parses as Prometheus text format.
func TestMetricsExposition(t *testing.T) {
	_, ts, b := newTestServer(t)
	body := searchBody(t, b.Queries[0], 3)
	if resp, _ := postSearch(t, ts.URL, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("miss search status %d", resp.StatusCode)
	}
	if resp, out := postSearch(t, ts.URL, body); resp.StatusCode != http.StatusOK || !out.Cached {
		t.Fatalf("hit search status %d cached %v", resp.StatusCode, out.Cached)
	}

	text := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		`dust_http_requests_total{endpoint="/search",class="2xx"} 2`,
		`dust_http_request_seconds_count{endpoint="/search",cache="miss",class="2xx"} 1`,
		`dust_http_request_seconds_count{endpoint="/search",cache="hit",class="2xx"} 1`,
		`dust_search_stage_seconds_count{stage="encode"} 1`,
		`dust_search_stage_seconds_count{stage="retrieve"} 1`,
		`dust_search_stage_seconds_count{stage="score"} 1`,
		`dust_search_stage_seconds_count{stage="diversify"} 1`,
		`dust_admission_wait_seconds_count 1`,
		`dust_searches_total 2`,
		`dust_cache_hits_total 1`,
		`dust_cache_misses_total 1`,
		`dust_in_flight 0`,
		`dust_epoch 0`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Every line must be a HELP/TYPE comment or a well-formed sample, and
	// every sample's family must have been announced by a TYPE comment.
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("malformed exposition line %q", line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if !typed[family] && !typed[name] {
			t.Fatalf("sample %q has no TYPE comment", name)
		}
	}
}

// TestMetricsSharded checks the scatter-stage families that exist only for
// a sharded pipeline: the serve layer's accumulator sees the shard path's
// queries and per-shard lake sizes are exported.
func TestMetricsSharded(t *testing.T) {
	b := fixedLake()
	p := dust.New(b.Lake, dust.WithTopTables(5), dust.WithShards(2))
	srv := New(p)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	if resp, _ := postSearch(t, ts.URL, searchBody(t, b.Queries[0], 3)); resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	if got := srv.scatterTimings().Queries.Load(); got < 1 {
		t.Fatalf("scatter accumulator saw %d queries, want >= 1", got)
	}
	text := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		"dust_scatter_queries_total ",
		`dust_scatter_stage_seconds_total{stage="scatter"} `,
		`dust_shard_tables{shard="0"} `,
		`dust_shard_tables{shard="1"} `,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("sharded exposition missing %q", want)
		}
	}
}

// TestIndexBytesSurfaces pins the index-footprint observability: an
// exact-mode pipeline has no graph (gauge absent, /stats reports none), an
// ANN pipeline exports dust_index_bytes with the right storage label, a
// quantized one is smaller and labeled "quantized", and a sharded pipeline
// adds per-shard samples that sum to the "all" row.
func TestIndexBytesSurfaces(t *testing.T) {
	b := fixedLake()

	statsIndex := func(url string) (string, int64) {
		t.Helper()
		var st StatsResponse
		if code := getJSON(t, url+"/stats", &st); code != http.StatusOK {
			t.Fatalf("stats status %d", code)
		}
		return st.Index.Storage, st.Index.Bytes
	}
	serveFor := func(opts ...dust.Option) (*httptest.Server, string) {
		t.Helper()
		p := dust.New(b.Lake, opts...)
		ts := httptest.NewServer(New(p))
		t.Cleanup(ts.Close)
		return ts, scrapeMetrics(t, ts.URL)
	}

	ts, text := serveFor()
	if strings.Contains(text, "dust_index_bytes{") {
		t.Error("exact-mode pipeline exports dust_index_bytes samples")
	}
	if st, n := statsIndex(ts.URL); st != "none" || n != 0 {
		t.Errorf("exact-mode /stats index = %s/%d, want none/0", st, n)
	}

	ts, text = serveFor(dust.WithRetriever(search.ANN))
	if !strings.Contains(text, `dust_index_bytes{shard="all",storage="float"} `) {
		t.Errorf("float exposition missing the all-shards sample:\n%s", text)
	}
	stf, fbytes := statsIndex(ts.URL)
	if stf != "float" || fbytes <= 0 {
		t.Errorf("float /stats index = %s/%d, want float/>0", stf, fbytes)
	}

	ts, text = serveFor(dust.WithRetriever(search.ANN), dust.WithQuantized(true))
	if !strings.Contains(text, `dust_index_bytes{shard="all",storage="quantized"} `) {
		t.Errorf("quantized exposition missing the all-shards sample:\n%s", text)
	}
	stq, qbytes := statsIndex(ts.URL)
	if stq != "quantized" || qbytes <= 0 || qbytes >= fbytes {
		t.Errorf("quantized /stats index = %s/%d, want quantized and smaller than float %d",
			stq, qbytes, fbytes)
	}

	_, text = serveFor(dust.WithRetriever(search.ANN), dust.WithQuantized(true), dust.WithShards(2))
	for _, want := range []string{
		`dust_index_bytes{shard="all",storage="quantized"} `,
		`dust_index_bytes{shard="0",storage="quantized"} `,
		`dust_index_bytes{shard="1",storage="quantized"} `,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("sharded exposition missing %q", want)
		}
	}
}

// lockedBuffer is a goroutine-safe log sink for tests.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRequestLog pins the structured request-log schema: one JSON line per
// request, stage timings on served searches, no search-only fields on
// other endpoints.
func TestRequestLog(t *testing.T) {
	var sink lockedBuffer
	_, ts, b := newTestServer(t, WithRequestLog(&sink))
	body := searchBody(t, b.Queries[0], 3)
	postSearch(t, ts.URL, body) // miss
	postSearch(t, ts.URL, body) // hit
	getJSON(t, ts.URL+"/stats", nil)
	postSearch(t, ts.URL, searchBody(t, b.Queries[0], -2)) // bad k: 400

	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d log lines, want 4: %q", len(lines), lines)
	}
	var miss, hit, stats, badK requestLogLine
	for i, dst := range []*requestLogLine{&miss, &hit, &stats, &badK} {
		if err := json.Unmarshal([]byte(lines[i]), dst); err != nil {
			t.Fatalf("log line %d not JSON: %v (%s)", i, err, lines[i])
		}
	}
	if badK.Status != http.StatusBadRequest || !strings.Contains(badK.Error, "k must be positive") {
		t.Fatalf("bad-k line has status %d error %q, want a 400 naming the bad k", badK.Status, badK.Error)
	}
	if miss.Endpoint != "/search" || miss.Status != 200 || miss.Cache != "miss" ||
		miss.K != 3 || miss.Epoch == nil || miss.Stages == nil {
		t.Fatalf("miss line wrong: %+v", miss)
	}
	if miss.Stages.Encode <= 0 {
		t.Fatalf("miss line has no encode time: %+v", miss.Stages)
	}
	if hit.Cache != "hit" || hit.Stages != nil {
		t.Fatalf("hit line wrong: %+v", hit)
	}
	if stats.Endpoint != "/stats" || stats.Cache != "" || stats.Epoch != nil || stats.Stages != nil {
		t.Fatalf("stats line wrong: %+v", stats)
	}
	if _, err := time.Parse(time.RFC3339Nano, miss.Time); err != nil {
		t.Fatalf("log timestamp %q: %v", miss.Time, err)
	}
}

// TestWriteJSONFallbackIsJSON pins the encode-failure path of writeJSON:
// even when the response value cannot be marshaled, the body must honor
// the errorJSON contract rather than fall back to text/plain.
func TestWriteJSONFallbackIsJSON(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, map[string]any{"bad": make(chan int)})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("fallback status %d, want 500", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("fallback content type %q, want application/json", ct)
	}
	var e errorJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Fatalf("fallback body %q not errorJSON: %v", rec.Body.String(), err)
	}
}
