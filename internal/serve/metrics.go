package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"dust/internal/obs"
	"dust/internal/search"
	"dust/internal/shard"
)

// serverMetrics bundles the registry and the vec handles the request path
// updates. Scrape-time families (epoch, lake sizes, cache state, counters
// the Server already maintains for /stats) are registered as func metrics
// reading the live values, so /metrics and /stats can never disagree.
type serverMetrics struct {
	reg *obs.Registry
	// requests counts finished requests per endpoint and status class.
	requests *obs.CounterVec
	// latency is the per-endpoint request-latency histogram, split by
	// cache outcome ("hit"/"miss" on /search, "none" elsewhere) and status
	// class — the cached and computed paths differ by ~two orders of
	// magnitude, so one merged histogram would hide both.
	latency *obs.HistogramVec
	// stage is the per-stage search-latency histogram (encode, retrieve,
	// score, diversify) from the request's search.Trace; cache hits skip
	// the pipeline and record no stages.
	stage *obs.HistogramVec
	// admissionWait is the time admitted searches spent waiting for an
	// in-flight slot (shed requests are not recorded here; they show up in
	// the rejected counter).
	admissionWait *obs.HistogramVec
}

// newServerMetrics registers every serving metric against s. The scatter
// accumulator is registered only when the pipeline actually fans out to
// shards (scatterOn).
func newServerMetrics(s *Server, scatterOn bool) *serverMetrics {
	r := obs.NewRegistry()
	m := &serverMetrics{
		reg: r,
		requests: r.NewCounter("dust_http_requests_total",
			"Finished HTTP requests by endpoint and status class.",
			"endpoint", "class"),
		latency: r.NewHistogram("dust_http_request_seconds",
			"Request latency by endpoint, cache outcome (hit/miss on /search, none elsewhere), and status class.",
			nil, "endpoint", "cache", "class"),
		stage: r.NewHistogram("dust_search_stage_seconds",
			"Per-stage wall time of served (uncached) searches: encode, retrieve, score, diversify.",
			nil, "stage"),
		admissionWait: r.NewHistogram("dust_admission_wait_seconds",
			"Time admitted searches waited for an in-flight slot.",
			nil),
	}

	r.NewCounterFunc("dust_searches_total",
		"Searches served successfully, cached or not.", nil,
		func(emit func(float64, ...string)) { emit(float64(s.searches.Load())) })
	r.NewCounterFunc("dust_mutations_total",
		"Table mutations applied (PUT/DELETE /tables).", nil,
		func(emit func(float64, ...string)) { emit(float64(s.mutations.Load())) })
	r.NewCounterFunc("dust_rejected_total",
		"Searches shed by admission, deadline, or pipeline failure (client cancellations excluded).", nil,
		func(emit func(float64, ...string)) { emit(float64(s.rejected.Load())) })
	r.NewCounterFunc("dust_canceled_total",
		"Searches abandoned because the client went away.", nil,
		func(emit func(float64, ...string)) { emit(float64(s.canceled.Load())) })
	r.NewCounterFunc("dust_serve_degraded_total",
		"Searches answered by the degraded (ANN) view under cost-aware admission.", nil,
		func(emit func(float64, ...string)) { emit(float64(s.degraded.Load())) })
	r.NewCounterFunc("dust_serve_shed_total",
		"Searches refused with 503 + Retry-After because the server was overloaded and no degraded mode was available.", nil,
		func(emit func(float64, ...string)) { emit(float64(s.shed.Load())) })
	r.NewCounterFunc("dust_maintenance_compactions_total",
		"Background maintenance passes that compacted the index and swapped the snapshot.", nil,
		func(emit func(float64, ...string)) { emit(float64(s.maintRuns.Load())) })

	r.NewGaugeFunc("dust_in_flight",
		"Searches currently executing in the pipeline.", nil,
		func(emit func(float64, ...string)) { emit(float64(len(s.sem))) })
	r.NewGaugeFunc("dust_in_flight_max",
		"Admission bound: the maximum concurrently executing searches.", nil,
		func(emit func(float64, ...string)) { emit(float64(cap(s.sem))) })
	r.NewGaugeFunc("dust_admission_waiting",
		"Searches currently waiting for an in-flight slot.", nil,
		func(emit func(float64, ...string)) { emit(float64(s.waiting.Load())) })

	r.NewCounterFunc("dust_cache_hits_total",
		"Result-cache hits.", nil,
		func(emit func(float64, ...string)) {
			h, _, _, _ := s.cache.Stats()
			emit(float64(h))
		})
	r.NewCounterFunc("dust_cache_misses_total",
		"Result-cache misses.", nil,
		func(emit func(float64, ...string)) {
			_, mi, _, _ := s.cache.Stats()
			emit(float64(mi))
		})
	r.NewGaugeFunc("dust_cache_entries",
		"Result-cache resident entries.", nil,
		func(emit func(float64, ...string)) {
			_, _, n, _ := s.cache.Stats()
			emit(float64(n))
		})
	r.NewGaugeFunc("dust_cache_bytes",
		"Result-cache resident bytes (keys + bodies + per-entry overhead).", nil,
		func(emit func(float64, ...string)) {
			_, _, _, b := s.cache.Stats()
			emit(float64(b))
		})

	r.NewGaugeFunc("dust_epoch",
		"Index mutation epoch of the published snapshot.", nil,
		func(emit func(float64, ...string)) { emit(float64(s.snap.Load().Epoch())) })
	r.NewGaugeFunc("dust_lake_tables",
		"Tables in the published snapshot's lake.", nil,
		func(emit func(float64, ...string)) { emit(float64(s.snap.Load().master.Lake().Stats().Tables)) })
	r.NewGaugeFunc("dust_lake_columns",
		"Columns in the published snapshot's lake.", nil,
		func(emit func(float64, ...string)) { emit(float64(s.snap.Load().master.Lake().Stats().Columns)) })
	r.NewGaugeFunc("dust_lake_tuples",
		"Tuples in the published snapshot's lake.", nil,
		func(emit func(float64, ...string)) { emit(float64(s.snap.Load().master.Lake().Stats().Tuples)) })
	r.NewGaugeFunc("dust_shard_tables",
		"Tables per index shard of the published snapshot (absent for a monolithic index).",
		[]string{"shard"},
		func(emit func(float64, ...string)) {
			for i, n := range s.snap.Load().master.ShardSizes() {
				emit(float64(n), strconv.Itoa(i))
			}
		})

	r.NewGaugeFunc("dust_index_bytes",
		"Resident bytes of the published snapshot's ANN index structures by shard and storage (quantized/float); shard \"all\" is the whole index. Absent while no graph is installed.",
		[]string{"shard", "storage"},
		func(emit func(float64, ...string)) {
			master := s.snap.Load().master
			if fp := master.IndexBytes(); fp.Storage != "none" {
				emit(float64(fp.Bytes), "all", fp.Storage)
			}
			for i, fp := range master.ShardIndexBytes() {
				if fp.Storage != "none" {
					emit(float64(fp.Bytes), strconv.Itoa(i), fp.Storage)
				}
			}
		})

	if scatterOn {
		r.NewCounterFunc("dust_scatter_queries_total",
			"Sharded scatter-gather queries timed by the stage accumulator.", nil,
			func(emit func(float64, ...string)) { emit(float64(s.scatter.Queries.Load())) })
		r.NewCounterFunc("dust_scatter_stage_seconds_total",
			"Cumulative wall time of the sharded scatter path by stage (encode, scatter, gather).",
			[]string{"stage"},
			func(emit func(float64, ...string)) {
				emit(float64(s.scatter.EncodeNS.Load())/1e9, "encode")
				emit(float64(s.scatter.ScatterNS.Load())/1e9, "scatter")
				emit(float64(s.scatter.GatherNS.Load())/1e9, "gather")
			})
	}
	return m
}

// requestInfo carries per-request annotations from a handler back to the
// instrumentation wrapper: the cache outcome and, for served searches, the
// request's k, snapshot epoch, stage trace, and failure message.
type requestInfo struct {
	cache    string // "hit"/"miss"/"none" for /search, "" elsewhere
	k        int
	epoch    uint64
	isSearch bool
	degraded bool // answered by the ANN view under cost-aware admission
	trace    *search.Trace
	errMsg   string
}

// infoKey keys a *requestInfo in a request context.
type infoKey struct{}

func withInfo(ctx context.Context, info *requestInfo) context.Context {
	return context.WithValue(ctx, infoKey{}, info)
}

func infoFrom(ctx context.Context) *requestInfo {
	info, _ := ctx.Value(infoKey{}).(*requestInfo)
	if info == nil {
		// Handlers are only reachable through instrument, but a bare
		// handler call (tests) still gets a sink.
		info = &requestInfo{}
	}
	return info
}

// statusWriter captures the response status for metrics and logs.
type statusWriter struct {
	http.ResponseWriter
	status int
}

// WriteHeader implements http.ResponseWriter, recording the first status.
func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// Status returns the response status, defaulting to 200 for handlers that
// wrote the body directly.
func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// statusClass buckets a status code into its class label ("2xx".."5xx").
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return fmt.Sprintf("%dxx", code/100)
}

// instrument wraps a handler with the observability envelope: status
// capture, per-endpoint counters and latency histograms (split by the
// handler's cache annotation), per-stage histograms for served searches,
// and one structured JSON log line per request when request logging is on.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		info := &requestInfo{}
		h(sw, r.WithContext(withInfo(r.Context(), info)))
		dur := time.Since(t0)

		class := statusClass(sw.Status())
		cache := info.cache
		if cache == "" {
			cache = "none"
		}
		s.metrics.requests.With(endpoint, class).Inc()
		s.metrics.latency.With(endpoint, cache, class).Observe(dur.Seconds())
		if info.trace != nil {
			tr := info.trace
			s.metrics.stage.With("encode").Observe(float64(tr.EncodeNS.Load()) / 1e9)
			s.metrics.stage.With("retrieve").Observe(float64(tr.RetrieveNS.Load()) / 1e9)
			s.metrics.stage.With("score").Observe(float64(tr.ScoreNS.Load()) / 1e9)
			s.metrics.stage.With("diversify").Observe(float64(tr.DiversifyNS.Load()) / 1e9)
		}
		s.logRequest(r, endpoint, sw.Status(), dur, info)
	}
}

// stagesMS is the request-log rendering of a search.Trace, milliseconds
// per stage.
type stagesMS struct {
	Encode    float64 `json:"encode"`
	Retrieve  float64 `json:"retrieve"`
	Score     float64 `json:"score"`
	Diversify float64 `json:"diversify"`
}

// requestLogLine is one structured request-log record; search-only fields
// are omitted elsewhere.
type requestLogLine struct {
	Time     string    `json:"time"`
	Method   string    `json:"method"`
	Path     string    `json:"path"`
	Endpoint string    `json:"endpoint"`
	Status   int       `json:"status"`
	DurMS    float64   `json:"dur_ms"`
	Cache    string    `json:"cache,omitempty"`
	Degraded bool      `json:"degraded,omitempty"`
	K        int       `json:"k,omitempty"`
	Epoch    *uint64   `json:"epoch,omitempty"`
	Stages   *stagesMS `json:"stages_ms,omitempty"`
	Error    string    `json:"error,omitempty"`
}

// logRequest emits one JSON line for a finished request when request
// logging is configured (see WithRequestLog).
func (s *Server) logRequest(r *http.Request, endpoint string, status int, dur time.Duration, info *requestInfo) {
	if s.logw == nil {
		return
	}
	line := requestLogLine{
		Time:     time.Now().UTC().Format(time.RFC3339Nano),
		Method:   r.Method,
		Path:     r.URL.Path,
		Endpoint: endpoint,
		Status:   status,
		DurMS:    ms(dur),
		Cache:    info.cache,
		Degraded: info.degraded,
		K:        info.k,
		Error:    info.errMsg,
	}
	if info.isSearch {
		epoch := info.epoch
		line.Epoch = &epoch
	}
	if tr := info.trace; tr != nil {
		line.Stages = &stagesMS{
			Encode:    nsToMS(tr.EncodeNS.Load()),
			Retrieve:  nsToMS(tr.RetrieveNS.Load()),
			Score:     nsToMS(tr.ScoreNS.Load()),
			Diversify: nsToMS(tr.DiversifyNS.Load()),
		}
	}
	buf, err := json.Marshal(line)
	if err != nil {
		return
	}
	buf = append(buf, '\n')
	s.logmu.Lock()
	_, _ = s.logw.Write(buf)
	s.logmu.Unlock()
}

// ms converts a duration to milliseconds, rounded to microsecond grain so
// log lines stay compact.
func ms(d time.Duration) float64 { return nsToMS(d.Nanoseconds()) }

// nsToMS converts nanoseconds to milliseconds at microsecond grain.
func nsToMS(ns int64) float64 { return float64(ns/1000) / 1000 }

// Metrics returns the server's metric registry, for embedding callers that
// want to mount it elsewhere or register their own families alongside the
// serving ones. The registry is also served at GET /metrics.
func (s *Server) Metrics() *obs.Registry { return s.metrics.reg }

// WithRequestLog enables structured request logging: one JSON line per
// finished request written to w (method, endpoint, status, duration, cache
// outcome, and per-stage pipeline timings for served searches). Writes are
// serialized by the server; w need not be concurrency-safe. nil (the
// default) disables request logging.
func WithRequestLog(w io.Writer) Option { return func(s *Server) { s.logw = w } }

// scatterTimings returns the shard-path stage accumulator the server
// attached to its pipeline, or nil for monolithic indexes — the serving
// twin of dustbench's -shards stage report.
func (s *Server) scatterTimings() *shard.StageTimings { return s.scatter }
