package serve

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dust"
	"dust/internal/datagen"
	"dust/internal/model"
	"dust/internal/table"
	"dust/internal/vector"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedLake generates the deterministic seed lake every API test runs
// against (and that the golden response is pinned to).
func fixedLake() *datagen.Benchmark {
	return datagen.Generate("serve-test", datagen.Config{
		Seed: 81, Domains: 4, TablesPerBase: 5, BaseRows: 60, MinRows: 15, MaxRows: 30,
	})
}

func newTestServer(t *testing.T, opts ...Option) (*Server, *httptest.Server, *datagen.Benchmark) {
	t.Helper()
	b := fixedLake()
	p := dust.New(b.Lake, dust.WithTopTables(5))
	srv := New(p, opts...)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, b
}

func rowsOf(t *table.Table) [][]string {
	out := make([][]string, t.NumRows())
	for i := range out {
		out[i] = t.Row(i)
	}
	return out
}

func searchBody(t *testing.T, q *table.Table, k int) []byte {
	t.Helper()
	body, err := json.Marshal(searchRequest{Query: tableJSON{Name: q.Name, Headers: q.Headers(), Rows: rowsOf(q)}, K: k})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postSearch(t *testing.T, url string, body []byte) (*http.Response, searchResponse) {
	t.Helper()
	resp, err := http.Post(url+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out searchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode search response: %v", err)
		}
	}
	resp.Body.Close()
	return resp, out
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func doJSON(t *testing.T, method, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestHealthz(t *testing.T) {
	_, ts, b := newTestServer(t)
	var out struct {
		Status string `json:"status"`
		Epoch  uint64 `json:"epoch"`
		Tables int    `json:"tables"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &out); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if out.Status != "ok" || out.Epoch != 0 || out.Tables != b.Lake.Len() {
		t.Fatalf("healthz = %+v, want ok/0/%d", out, b.Lake.Len())
	}
}

func TestSearchEndpoint(t *testing.T) {
	_, ts, b := newTestServer(t)
	q := b.Queries[0]
	resp, out := postSearch(t, ts.URL, searchBody(t, q, 7))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	if out.K != 7 || out.Cached || out.Epoch != 0 {
		t.Fatalf("search meta = k %d cached %v epoch %d, want 7/false/0", out.K, out.Cached, out.Epoch)
	}
	if len(out.Tuples.Rows) == 0 || len(out.Tuples.Rows) > 7 {
		t.Fatalf("returned %d tuples, want 1..7", len(out.Tuples.Rows))
	}
	if len(out.Provenance) != len(out.Tuples.Rows) {
		t.Fatalf("provenance %d entries for %d tuples", len(out.Provenance), len(out.Tuples.Rows))
	}
	if strings.Join(out.Tuples.Headers, "|") != strings.Join(q.Headers(), "|") {
		t.Fatalf("result headers %v, want query schema %v", out.Tuples.Headers, q.Headers())
	}
	if len(out.Tables) == 0 || out.Pool <= 0 {
		t.Fatalf("tables %v pool %d", out.Tables, out.Pool)
	}
}

func TestSearchCSVBody(t *testing.T) {
	_, ts, b := newTestServer(t)
	q := b.Queries[0]
	var csvBody bytes.Buffer
	cw := csv.NewWriter(&csvBody)
	_ = cw.Write(q.Headers())
	for _, row := range rowsOf(q) {
		_ = cw.Write(row)
	}
	cw.Flush()
	resp, err := http.Post(ts.URL+"/search?k=5", "text/csv", &csvBody)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("csv search status %d", resp.StatusCode)
	}
	var out searchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.K != 5 || len(out.Tuples.Rows) == 0 {
		t.Fatalf("csv search k %d rows %d", out.K, len(out.Tuples.Rows))
	}
}

func TestSearchErrorPaths(t *testing.T) {
	_, ts, b := newTestServer(t, WithMaxK(50))
	q := b.Queries[0]
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed json", `{"query": {`, http.StatusBadRequest},
		{"unknown param", `{"query":{"headers":["a"],"rows":[]},"k":3,"shuffle":true}`, http.StatusBadRequest},
		{"trailing garbage", `{"query":{"headers":["a"],"rows":[]},"k":3} extra`, http.StatusBadRequest},
		{"no headers", `{"query":{"headers":[],"rows":[]},"k":3}`, http.StatusBadRequest},
		{"ragged row", `{"query":{"headers":["a","b"],"rows":[["1"]]},"k":3}`, http.StatusBadRequest},
		{"negative k", string(searchBody(t, q, -2)), http.StatusBadRequest},
		{"k over cap", string(searchBody(t, q, 51)), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/search", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
			var e errorJSON
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
				t.Fatalf("error body not JSON with error field: %v", err)
			}
		})
	}

	// Oversized bodies are rejected with 413 (not a bogus parse 400), and
	// the message names the configured cap. The body must be valid JSON up
	// to the cap so the failure can only come from the cap itself.
	t.Run("body over cap", func(t *testing.T) {
		_, bigTS, _ := newTestServer(t, WithMaxBodyBytes(1024))
		big := fmt.Sprintf(`{"query":{"headers":["a"],"rows":[["%s"]]},"k":3}`,
			strings.Repeat("x", 4096))
		resp, err := http.Post(bigTS.URL+"/search", "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("oversized body status %d, want 413", resp.StatusCode)
		}
		var e errorJSON
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("413 body not JSON: %v", err)
		}
		if !strings.Contains(e.Error, "1024-byte cap") {
			t.Fatalf("413 message %q does not name the cap", e.Error)
		}
	})

	// Wrong method is the mux's 405.
	resp, err := http.Get(ts.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /search status %d, want 405", resp.StatusCode)
	}
}

func TestTablesEndpoints(t *testing.T) {
	_, ts, b := newTestServer(t)
	var list struct {
		Epoch  uint64          `json:"epoch"`
		Tables []tableInfoJSON `json:"tables"`
	}
	if code := getJSON(t, ts.URL+"/tables", &list); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	if len(list.Tables) != b.Lake.Len() {
		t.Fatalf("listed %d tables, want %d", len(list.Tables), b.Lake.Len())
	}

	extra := b.Lake.Tables()[0].Clone("zz_put_extra")
	body, _ := json.Marshal(tableJSON{Headers: extra.Headers(), Rows: rowsOf(extra)})

	resp, out := doJSON(t, http.MethodPut, ts.URL+"/tables/zz_put_extra", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("put status %d: %s", resp.StatusCode, out)
	}
	var mut mutationResponse
	if err := json.Unmarshal(out, &mut); err != nil || mut.Epoch != 1 || mut.Tables != b.Lake.Len()+1 {
		t.Fatalf("put response %s (err %v), want epoch 1, %d tables", out, err, b.Lake.Len()+1)
	}

	// Duplicate PUT conflicts.
	resp, _ = doJSON(t, http.MethodPut, ts.URL+"/tables/zz_put_extra", body)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate put status %d, want 409", resp.StatusCode)
	}
	// Malformed body.
	resp, _ = doJSON(t, http.MethodPut, ts.URL+"/tables/zz_other", []byte(`{"headers": [}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad put body status %d, want 400", resp.StatusCode)
	}

	resp, out = doJSON(t, http.MethodDelete, ts.URL+"/tables/zz_put_extra", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d: %s", resp.StatusCode, out)
	}
	if err := json.Unmarshal(out, &mut); err != nil || mut.Epoch != 2 || mut.Tables != b.Lake.Len() {
		t.Fatalf("delete response %s, want epoch 2, %d tables", out, b.Lake.Len())
	}
	// Deleting an absent table 404s.
	resp, _ = doJSON(t, http.MethodDelete, ts.URL+"/tables/zz_put_extra", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delete absent status %d, want 404", resp.StatusCode)
	}
}

// TestGoldenSearchResponse pins the full JSON body for a fixed seed lake
// and query; run with -update to regenerate after an intentional format or
// ranking change.
func TestGoldenSearchResponse(t *testing.T) {
	_, ts, b := newTestServer(t)
	resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader(searchBody(t, b.Queries[0], 5)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, buf.Bytes())
	}
	golden := filepath.Join("testdata", "golden_search.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("served response differs from %s:\ngot:  %s\nwant: %s", golden, buf.Bytes(), want)
	}
}

// TestServeEquivalence pins the served TopK bit-identical to a direct
// Pipeline.Search over the same lake and config.
func TestServeEquivalence(t *testing.T) {
	b := fixedLake()
	p := dust.New(b.Lake, dust.WithTopTables(5))
	srv := New(p)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, q := range b.Queries[:2] {
		want, err := p.Search(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		resp, out := postSearch(t, ts.URL, searchBody(t, q, 8))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search status %d", resp.StatusCode)
		}
		if strings.Join(out.Tables, "|") != strings.Join(want.UnionableTables, "|") {
			t.Fatalf("%s: served tables %v, want %v", q.Name, out.Tables, want.UnionableTables)
		}
		if len(out.Tuples.Rows) != want.Tuples.NumRows() {
			t.Fatalf("%s: served %d tuples, want %d", q.Name, len(out.Tuples.Rows), want.Tuples.NumRows())
		}
		for i, row := range out.Tuples.Rows {
			if strings.Join(row, "\x1f") != strings.Join(want.Tuples.Row(i), "\x1f") {
				t.Fatalf("%s: tuple %d = %v, want %v", q.Name, i, row, want.Tuples.Row(i))
			}
			if out.Provenance[i].Table != want.Provenance[i].Table || out.Provenance[i].Row != want.Provenance[i].Row {
				t.Fatalf("%s: provenance %d = %+v, want %+v", q.Name, i, out.Provenance[i], want.Provenance[i])
			}
		}
		if out.Pool != want.Unioned.NumRows() {
			t.Fatalf("%s: pool %d, want %d", q.Name, out.Pool, want.Unioned.NumRows())
		}
	}
}

func TestCacheHitAndEpochInvalidation(t *testing.T) {
	_, ts, b := newTestServer(t)
	q := b.Queries[0]
	body := searchBody(t, q, 5)

	_, first := postSearch(t, ts.URL, body)
	if first.Cached {
		t.Fatal("first search claims cached")
	}
	_, second := postSearch(t, ts.URL, body)
	if !second.Cached {
		t.Fatal("second identical search not served from cache")
	}
	if second.Epoch != first.Epoch {
		t.Fatalf("cached epoch %d, want %d", second.Epoch, first.Epoch)
	}
	// Same content under a different query name shares the fingerprint.
	renamed := q.Clone("renamed_query")
	_, third := postSearch(t, ts.URL, searchBody(t, renamed, 5))
	if !third.Cached {
		t.Fatal("renamed identical query not served from cache")
	}
	// Different k is a different key.
	_, diffK := postSearch(t, ts.URL, searchBody(t, q, 6))
	if diffK.Cached {
		t.Fatal("different k served from cache")
	}

	// A mutation bumps the epoch; the old entry must never resurface.
	extra := b.Lake.Tables()[0].Clone("zz_cache_extra")
	tb, _ := json.Marshal(tableJSON{Headers: extra.Headers(), Rows: rowsOf(extra)})
	resp, _ := doJSON(t, http.MethodPut, ts.URL+"/tables/zz_cache_extra", tb)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("put status %d", resp.StatusCode)
	}
	_, after := postSearch(t, ts.URL, body)
	if after.Cached {
		t.Fatal("post-mutation search served a stale-epoch cache entry")
	}
	if after.Epoch != first.Epoch+1 {
		t.Fatalf("post-mutation epoch %d, want %d", after.Epoch, first.Epoch+1)
	}
	_, afterHit := postSearch(t, ts.URL, body)
	if !afterHit.Cached || afterHit.Epoch != after.Epoch {
		t.Fatalf("repeat at new epoch: cached %v epoch %d, want true/%d", afterHit.Cached, afterHit.Epoch, after.Epoch)
	}

	var st StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.Cache.Hits != 3 || st.Cache.Misses != 3 {
		t.Fatalf("cache stats %d hits / %d misses, want 3/3", st.Cache.Hits, st.Cache.Misses)
	}
	if st.Mutations != 1 || st.Searches != 6 {
		t.Fatalf("stats mutations %d searches %d, want 1/6", st.Mutations, st.Searches)
	}
}

// TestCachedBytesIdenticalToLive pins the cache to serving byte-identical
// content: a hit's body differs from the miss's only in the cached flag,
// even for data that JSON's default HTML escaping would rewrite.
func TestCachedBytesIdenticalToLive(t *testing.T) {
	if got, err := marshalJSON(map[string]string{"v": "a<b&c>d"}); err != nil || !bytes.Contains(got, []byte("a<b&c>d")) {
		t.Fatalf("marshalJSON HTML-escapes payloads: %s (err %v)", got, err)
	}

	_, ts, b := newTestServer(t)
	body := searchBody(t, b.Queries[0], 5)
	post := func() []byte {
		resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	live := post()
	cached := post()
	want := bytes.Replace(live, []byte(`"cached":false`), []byte(`"cached":true`), 1)
	if !bytes.Equal(cached, want) {
		t.Fatalf("cached body diverges from live body beyond the cached flag:\nlive:   %s\ncached: %s", live, cached)
	}
}

// gateEncoder blocks every EncodeTuple call until released, pinning a
// search mid-flight. It deliberately does not implement the batch surface.
type gateEncoder struct {
	started chan struct{} // closed when the first encode begins
	release chan struct{} // close to let encodes proceed
	once    sync.Once
}

func (g *gateEncoder) Name() string { return "gate" }

func (g *gateEncoder) EncodeTuple(headers, values []string) vector.Vec {
	g.once.Do(func() { close(g.started) })
	<-g.release
	v := make(vector.Vec, 4)
	v[0] = 1
	return v
}

// TestSnapshotSwapDuringSlowQuery pins the reader/mutator contract: a
// mutation completes and publishes a new epoch while a query is pinned
// mid-embedding, and the pinned query still finishes on the snapshot it
// started with.
func TestSnapshotSwapDuringSlowQuery(t *testing.T) {
	b := fixedLake()
	gate := &gateEncoder{started: make(chan struct{}), release: make(chan struct{})}
	p := dust.New(b.Lake, dust.WithTopTables(5), dust.WithTupleEncoder(gate))
	srv := New(p, WithTimeout(30*time.Second), WithMaxInFlight(4))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	q := b.Queries[0]
	type result struct {
		status int
		out    searchResponse
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader(searchBody(t, q, 5)))
		if err != nil {
			done <- result{status: -1}
			return
		}
		defer resp.Body.Close()
		var out searchResponse
		_ = json.NewDecoder(resp.Body).Decode(&out)
		done <- result{status: resp.StatusCode, out: out}
	}()

	select {
	case <-gate.started:
	case <-time.After(10 * time.Second):
		t.Fatal("slow query never reached the embedding stage")
	}

	// Mutate while the query is pinned: the swap must complete promptly —
	// readers never block mutators.
	extra := b.Lake.Tables()[0].Clone("zz_swap_extra")
	tb, _ := json.Marshal(tableJSON{Headers: extra.Headers(), Rows: rowsOf(extra)})
	swapStart := time.Now()
	resp, out := doJSON(t, http.MethodPut, ts.URL+"/tables/zz_swap_extra", tb)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("put during slow query: status %d: %s", resp.StatusCode, out)
	}
	if elapsed := time.Since(swapStart); elapsed > 5*time.Second {
		t.Fatalf("swap took %v while a query was in flight", elapsed)
	}
	var hz struct {
		Epoch uint64 `json:"epoch"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusOK || hz.Epoch != 1 {
		t.Fatalf("healthz after swap: code %d epoch %d, want 200/1", code, hz.Epoch)
	}

	// Release the pinned query: it must finish successfully on the OLD
	// snapshot (epoch 0) even though epoch 1 is already live.
	close(gate.release)
	r := <-done
	if r.status != http.StatusOK {
		t.Fatalf("pinned query status %d", r.status)
	}
	if r.out.Epoch != 0 {
		t.Fatalf("pinned query served from epoch %d, want the epoch-0 snapshot it started on", r.out.Epoch)
	}
	for _, name := range r.out.Tables {
		if name == "zz_swap_extra" {
			t.Fatal("pinned query observed a table added after it started")
		}
	}

	// A fresh query sees the new snapshot.
	_, fresh := postSearch(t, ts.URL, searchBody(t, q, 5))
	if fresh.Epoch != 1 {
		t.Fatalf("fresh query epoch %d, want 1", fresh.Epoch)
	}
}

// TestAdmissionSheddingWhenSaturated pins the 503 path: with one slot held
// by a pinned query and a tiny timeout, the next request is shed.
func TestAdmissionSheddingWhenSaturated(t *testing.T) {
	b := fixedLake()
	gate := &gateEncoder{started: make(chan struct{}), release: make(chan struct{})}
	p := dust.New(b.Lake, dust.WithTopTables(5), dust.WithTupleEncoder(gate))
	srv := New(p, WithTimeout(200*time.Millisecond), WithMaxInFlight(1))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer close(gate.release)

	q := b.Queries[0]
	go func() {
		resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader(searchBody(t, q, 5)))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-gate.started

	resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader(searchBody(t, q, 5)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated search status %d, want 503", resp.StatusCode)
	}
}

// TestServeWarmStartFromIndexDir boots a server from a SaveIndex directory
// and pins its responses to the cold-built server's.
func TestServeWarmStartFromIndexDir(t *testing.T) {
	b := fixedLake()
	p := dust.New(b.Lake, dust.WithTopTables(5))
	dir := filepath.Join(t.TempDir(), "index")
	if err := p.SaveIndex(dir); err != nil {
		t.Fatal(err)
	}
	warm, err := dust.LoadPipelineLake(b.Lake, dir, dust.WithTopTables(5))
	if err != nil {
		t.Fatal(err)
	}

	cold := httptest.NewServer(New(p))
	defer cold.Close()
	warmSrv := httptest.NewServer(New(warm))
	defer warmSrv.Close()

	body := searchBody(t, b.Queries[0], 6)
	_, a := postSearch(t, cold.URL, body)
	_, c := postSearch(t, warmSrv.URL, body)
	ab, _ := json.Marshal(a)
	cb, _ := json.Marshal(c)
	if !bytes.Equal(ab, cb) {
		t.Fatalf("warm-booted server differs from cold:\ncold: %s\nwarm: %s", ab, cb)
	}
}

// TestModelEncoderServes covers serving with a fine-tuned model installed,
// the paper's full setup.
func TestModelEncoderServes(t *testing.T) {
	b := fixedLake()
	pairs := datagen.Pairs(b, 40, 7)
	m := model.Train("dust-tiny", model.NewRoBERTaFeaturizer(), pairs.Train, pairs.Val, model.Config{
		Hidden: 16, OutDim: 8, Epochs: 2, Patience: 2, LR: 0.01, Seed: 1,
	})
	p := dust.New(b.Lake, dust.WithTopTables(5), dust.WithTupleEncoder(m))
	ts := httptest.NewServer(New(p))
	defer ts.Close()
	resp, out := postSearch(t, ts.URL, searchBody(t, b.Queries[0], 5))
	if resp.StatusCode != http.StatusOK || len(out.Tuples.Rows) == 0 {
		t.Fatalf("model-backed search: status %d rows %d", resp.StatusCode, len(out.Tuples.Rows))
	}
}

func TestConfigTagInStats(t *testing.T) {
	_, ts, _ := newTestServer(t)
	var st StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	for _, part := range []string{"starmie", "dust", "|5"} {
		if !strings.Contains(st.ConfigTag, part) {
			t.Fatalf("config tag %q missing %q", st.ConfigTag, part)
		}
	}
}

// TestServerClose pins the serving-side lifecycle of the shard family's
// long-lived scatter pool: Close releases it once the server is done with
// new work, one call covers every pipeline clone the swap history
// produced, repeated calls are no-ops, and requests — which run on
// pool-less query views — still serve identical results afterwards.
func TestServerClose(t *testing.T) {
	b := fixedLake()
	p := dust.New(b.Lake, dust.WithTopTables(5), dust.WithShards(3))
	srv := New(p)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// Swap in a mutation first so Close has to cover a cloned snapshot too.
	extra := b.Lake.Tables()[0].Clone("zz_close_extra")
	putBody, _ := json.Marshal(tableJSON{Headers: extra.Headers(), Rows: rowsOf(extra)})
	if resp, out := doJSON(t, http.MethodPut, ts.URL+"/tables/zz_close_extra", putBody); resp.StatusCode != http.StatusCreated {
		t.Fatalf("put status %d: %s", resp.StatusCode, out)
	}

	body := searchBody(t, b.Queries[0], 3)
	resp, before := postSearch(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search before close: status %d", resp.StatusCode)
	}

	srv.Close()
	srv.Close() // idempotent

	resp, after := postSearch(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search after close: status %d", resp.StatusCode)
	}
	if fmt.Sprint(after.Tables) != fmt.Sprint(before.Tables) || after.Epoch != before.Epoch {
		t.Fatalf("response changed across Close: %v (epoch %d) vs %v (epoch %d)",
			after.Tables, after.Epoch, before.Tables, before.Epoch)
	}
}
