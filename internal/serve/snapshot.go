// Package serve turns a dust.Pipeline into a long-running, concurrently
// mutable HTTP search service. Its core is snapshot swapping: the live
// pipeline sits behind an atomic pointer, every request loads the pointer
// once and runs entirely against that frozen state, and mutations
// (AddTable/RemoveTable) are applied to a copy-on-write clone that is
// swapped in atomically. Readers therefore never take a lock and never
// observe a half-applied mutation; a query that started before a swap
// finishes on the snapshot it started with.
//
// On top of the snapshot sit a sharded LRU result cache keyed by (query
// fingerprint, k, pipeline config, index epoch) — invalidated wholesale by
// the epoch bump a swap implies — and request admission: a bounded
// in-flight semaphore plus per-request timeouts threaded through
// context.Context into Pipeline.SearchContext.
package serve

import (
	"dust"
	"dust/internal/search"
)

// Snapshot is one immutable published state of the serving pipeline. The
// master pipeline is the state the next mutation clones from; the query
// view shares its index but bounds per-query parallelism so concurrent
// requests do not multiply fan-out. When the pipeline can answer in ANN
// mode distinct from its configured mode, the snapshot also carries a
// degraded view — the same frozen index behind an approximate retrieval
// stage — that cost-aware admission routes to under load. All views are
// frozen: nothing mutates a Snapshot after it is published.
type Snapshot struct {
	master      *dust.Pipeline
	query       *dust.Pipeline
	tag         string
	degraded    *dust.Pipeline // nil when no distinct ANN view exists
	degradedTag string
}

// newSnapshot freezes p (which must not be mutated afterwards except by
// cloning) behind a query view bounded to queryWorkers, plus a degraded
// ANN view when the pipeline offers one and is not already in ANN mode.
func newSnapshot(p *dust.Pipeline, queryWorkers int) *Snapshot {
	s := &Snapshot{master: p, query: p.QueryBound(queryWorkers), tag: p.ConfigTag()}
	if view, ok := p.ModeView(search.ANN); ok && view.ConfigTag() != s.tag {
		s.degraded = view.QueryBound(queryWorkers)
		s.degradedTag = view.ConfigTag()
	}
	return s
}

// Epoch returns the index mutation epoch of this snapshot.
func (s *Snapshot) Epoch() uint64 { return s.master.Epoch() }

// Pipeline returns the snapshot's master pipeline. Callers must treat it as
// read-only.
func (s *Snapshot) Pipeline() *dust.Pipeline { return s.master }
