package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dust"
	"dust/internal/search"
	"dust/internal/table"
)

// stubSearcher is a minimal search.Searcher: no cloning, no staged
// retrieval, no mode views. It exists to exercise the serve paths for
// pipelines without the incremental/degradable surface.
type stubSearcher struct{}

func (stubSearcher) Name() string { return "stub" }

func (stubSearcher) TopK(q *table.Table, k int) []search.Scored { return nil }

// occupySlot fills srv's only admission slot and returns a release func.
// Tests call it to make the load factor 1.0 deterministically.
func occupySlot(t *testing.T, srv *Server) func() {
	t.Helper()
	srv.sem <- struct{}{}
	var once sync.Once
	return func() { once.Do(func() { <-srv.sem }) }
}

// TestDegradedModeUnderLoad pins cost-aware admission end to end: with the
// single admission slot held, a search degrades to the snapshot's ANN view
// instead of queueing — flagged in the response, the request log, the
// degraded counter, and /metrics — and the degraded result is cached under
// its own config tag. Once load clears, searches run exact again.
func TestDegradedModeUnderLoad(t *testing.T) {
	var sink lockedBuffer
	srv, ts, b := newTestServer(t,
		WithDegradeThreshold(0.5), WithMaxInFlight(1),
		WithTimeout(10*time.Second), WithRequestLog(&sink))
	if srv.Snapshot().degraded == nil {
		t.Fatal("degrade threshold set but the snapshot has no ANN view (PrepareANN failed?)")
	}
	body := searchBody(t, b.Queries[0], 5)

	release := occupySlot(t, srv)
	defer release()
	// The degrade decision happens before admission; the parked request
	// still needs the slot, so free it once the request is waiting on it.
	released := make(chan struct{})
	go func() {
		defer close(released)
		deadline := time.Now().Add(5 * time.Second)
		for srv.waiting.Load() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		release()
	}()

	resp, out := postSearch(t, ts.URL, body)
	<-released
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded search status %d", resp.StatusCode)
	}
	if !out.Degraded || out.Cached {
		t.Fatalf("overloaded search degraded=%v cached=%v, want true/false", out.Degraded, out.Cached)
	}
	if len(out.Tuples.Rows) == 0 {
		t.Fatal("degraded search returned no tuples")
	}
	if got := srv.degraded.Load(); got != 1 {
		t.Fatalf("degraded counter = %d, want 1", got)
	}

	// Same query under load again: served from the degraded cache line,
	// before admission — no slot needed even though the server is full.
	srv.sem <- struct{}{}
	resp, out = postSearch(t, ts.URL, body)
	<-srv.sem
	if resp.StatusCode != http.StatusOK || !out.Cached || !out.Degraded {
		t.Fatalf("degraded repeat: status %d cached=%v degraded=%v, want 200/true/true",
			resp.StatusCode, out.Cached, out.Degraded)
	}
	if got := srv.degraded.Load(); got != 2 {
		t.Fatalf("degraded counter = %d, want 2", got)
	}

	// Load cleared: the same request runs exact and misses the exact-tag
	// cache line (degraded results never leak across tags).
	resp, out = postSearch(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK || out.Degraded || out.Cached {
		t.Fatalf("unloaded search: status %d degraded=%v cached=%v, want 200/false/false",
			resp.StatusCode, out.Degraded, out.Cached)
	}

	text := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		"dust_serve_degraded_total 2",
		"dust_serve_shed_total 0",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q", want)
		}
	}

	degradedLines := 0
	for _, line := range strings.Split(strings.TrimSpace(sink.String()), "\n") {
		var rec requestLogLine
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line not JSON: %v (%s)", err, line)
		}
		if rec.Degraded {
			degradedLines++
		}
	}
	if degradedLines != 2 {
		t.Fatalf("request log has %d degraded lines, want 2", degradedLines)
	}
}

// TestShedWithRetryAfter pins the other overload branch: a pipeline whose
// searcher offers no ANN view cannot degrade, so past the threshold the
// request is refused with 503 + Retry-After instead of queueing.
func TestShedWithRetryAfter(t *testing.T) {
	b := fixedLake()
	p := dust.New(b.Lake, dust.WithSearcher(stubSearcher{}))
	srv := New(p, WithDegradeThreshold(0.5), WithMaxInFlight(1), WithTimeout(10*time.Second))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	if srv.Snapshot().degraded != nil {
		t.Fatal("stub searcher unexpectedly produced a degraded view")
	}

	release := occupySlot(t, srv)
	defer release()

	resp, err := http.Post(ts.URL+"/search", "application/json",
		bytes.NewReader(searchBody(t, b.Queries[0], 5)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed status %d, want 503", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 || secs > 60 {
		t.Fatalf("Retry-After %q, want an integer in [1, 60]", ra)
	}
	var e errorJSON
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "no degraded mode") {
		t.Fatalf("shed body %+v (err %v), want an error naming the missing degraded mode", e, err)
	}
	if srv.shed.Load() != 1 || srv.rejected.Load() != 1 {
		t.Fatalf("shed=%d rejected=%d, want 1/1", srv.shed.Load(), srv.rejected.Load())
	}
	text := scrapeMetrics(t, ts.URL)
	if !strings.Contains(text, "dust_serve_shed_total 1\n") {
		t.Error("exposition missing dust_serve_shed_total 1")
	}

	var st StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.Shed != 1 {
		t.Fatalf("stats shed = %d, want 1", st.Shed)
	}
}

// TestCheapQueriesBypassDegradation pins the cost-estimate bypass: once
// the EWMA knows searches of this shape are cheap, they are admitted
// exactly even past the load threshold.
func TestCheapQueriesBypassDegradation(t *testing.T) {
	srv, _, _ := newTestServer(t, WithDegradeThreshold(0.5), WithMaxInFlight(1))
	// Pretend observed searches were ~1ns per unit: any realistic query
	// estimates far under the 1ms floor.
	srv.observeCost(1, time.Nanosecond)
	if !srv.cheap(100) {
		t.Fatalf("estCost(100) = %.0fns judged not cheap", srv.estCostNS(100))
	}
	// And an expensive history keeps degradation on.
	srv2, _, _ := newTestServer(t, WithDegradeThreshold(0.5), WithMaxInFlight(1))
	srv2.observeCost(1, 50*time.Millisecond)
	if srv2.cheap(100) {
		t.Fatalf("estCost(100) = %.0fns judged cheap", srv2.estCostNS(100))
	}
	// Unknown cost is never cheap: the first overloaded requests degrade.
	srv3, _, _ := newTestServer(t, WithDegradeThreshold(0.5), WithMaxInFlight(1))
	if srv3.cheap(100) {
		t.Fatal("unknown cost judged cheap")
	}
}

// TestCacheDisabledLabelsNone pins the documented cache-label contract:
// with caching disabled, /search observations carry cache="none" — not a
// fictitious "miss" against a cache that does not exist.
func TestCacheDisabledLabelsNone(t *testing.T) {
	var sink lockedBuffer
	_, ts, b := newTestServer(t, WithCacheCapacity(0), WithRequestLog(&sink))
	if resp, out := postSearch(t, ts.URL, searchBody(t, b.Queries[0], 3)); resp.StatusCode != http.StatusOK || out.Cached {
		t.Fatalf("uncached search status %d cached=%v", resp.StatusCode, out.Cached)
	}
	text := scrapeMetrics(t, ts.URL)
	if !strings.Contains(text, `dust_http_request_seconds_count{endpoint="/search",cache="none",class="2xx"} 1`+"\n") {
		t.Error(`exposition missing the cache="none" search sample`)
	}
	if strings.Contains(text, `endpoint="/search",cache="miss"`) {
		t.Error(`cache-disabled server labeled a request "miss"`)
	}
	var rec requestLogLine
	if err := json.Unmarshal([]byte(strings.TrimSpace(sink.String())), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Cache != "none" {
		t.Fatalf("request log cache = %q, want \"none\"", rec.Cache)
	}
}

// TestMaintenanceCompactionUnderLoad is the rebuild-under-load contract:
// removals push the served ANN graph's tombstone fraction past the
// maintenance threshold while queries are in flight, no inline rebuild
// happens (mutations stay O(delta) with a maintainer attached), and the
// background compaction swap preserves the epoch and the exact bytes of
// every response. Run under -race in CI.
func TestMaintenanceCompactionUnderLoad(t *testing.T) {
	b := fixedLake()
	p := dust.New(b.Lake, dust.WithTopTables(5), dust.WithRetriever(search.ANN))
	// An hour-long interval keeps the timer out of the test; passes are
	// driven explicitly via maintain() so the swap is deterministic.
	srv := New(p,
		WithMaintenance(time.Hour), WithMaintenanceThreshold(0.25),
		WithCacheCapacity(0), WithMaxInFlight(4), WithTimeout(30*time.Second))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)

	query := b.Queries[0]
	body := searchBody(t, query, 5)
	post := func() (int, []byte) {
		resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			return 0, nil
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	// Remove a third of the lake over HTTP while clients query: enough
	// tombstones to cross the 0.25 threshold, concurrently enough that the
	// race detector sees queries against both sides of each swap.
	names := b.Lake.Names()
	doomed := names[:len(names)/3]
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, name := range doomed {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/tables/"+name, nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				continue
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("delete %s: status %d", name, resp.StatusCode)
			}
		}
	}()
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if status, _ := post(); status != http.StatusOK {
					t.Errorf("query under churn: status %d", status)
				}
			}
		}()
	}
	wg.Wait()

	// With the maintainer attached, none of those removals may have
	// rebuilt inline: the tombstone debt must still be visible.
	st, ok := srv.Snapshot().Pipeline().MaintenanceStats()
	if !ok {
		t.Fatal("pipeline lost its maintenance surface")
	}
	if st.GraphDeletedFraction < 0.25 {
		t.Fatalf("graph deleted fraction %.2f after removing %d/%d tables — a mutation compacted inline",
			st.GraphDeletedFraction, len(doomed), len(names))
	}

	epochBefore := srv.Snapshot().Epoch()
	statusBefore, before := post()
	if statusBefore != http.StatusOK {
		t.Fatalf("pre-compaction search status %d", statusBefore)
	}

	// Compact while queries are in flight against the served snapshot.
	var qwg sync.WaitGroup
	for c := 0; c < 3; c++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			for i := 0; i < 5; i++ {
				if status, got := post(); status != http.StatusOK || !bytes.Equal(got, before) {
					t.Errorf("query racing compaction: status %d, body identical %v", status, bytes.Equal(got, before))
				}
			}
		}()
	}
	if !srv.maintain() {
		t.Fatal("maintain() did no work above the threshold")
	}
	qwg.Wait()

	if got := srv.maintRuns.Load(); got != 1 {
		t.Fatalf("compaction counter = %d, want 1", got)
	}
	if epoch := srv.Snapshot().Epoch(); epoch != epochBefore {
		t.Fatalf("compaction moved the epoch %d -> %d", epochBefore, epoch)
	}
	st, _ = srv.Snapshot().Pipeline().MaintenanceStats()
	if st.GraphDeletedFraction != 0 || st.GraphNodes != st.GraphLive {
		t.Fatalf("post-compaction stats %+v, want zero tombstones", st)
	}
	// Below the threshold now: another pass must be a no-op.
	if srv.maintain() {
		t.Fatal("maintain() compacted a clean index")
	}

	statusAfter, after := post()
	if statusAfter != http.StatusOK {
		t.Fatalf("post-compaction search status %d", statusAfter)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("compaction changed response bytes:\nbefore: %s\nafter:  %s", before, after)
	}

	text := scrapeMetrics(t, ts.URL)
	if !strings.Contains(text, "dust_maintenance_compactions_total 1\n") {
		t.Error("exposition missing dust_maintenance_compactions_total 1")
	}
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK || stats.Compactions != 1 {
		t.Fatalf("stats compactions = %d (code %d), want 1", stats.Compactions, code)
	}
}

// TestMaintenanceLoopCompacts covers the timer-driven path WithMaintenance
// actually ships: a short interval notices accrued tombstones and compacts
// without any explicit trigger.
func TestMaintenanceLoopCompacts(t *testing.T) {
	b := fixedLake()
	p := dust.New(b.Lake, dust.WithTopTables(5), dust.WithRetriever(search.ANN))
	srv := New(p, WithMaintenance(10*time.Millisecond), WithMaintenanceThreshold(0.25))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)

	names := b.Lake.Names()
	for _, name := range names[:len(names)/3] {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/tables/"+name, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("delete %s: status %d", name, resp.StatusCode)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.maintRuns.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.maintRuns.Load() == 0 {
		t.Fatal("maintenance loop never compacted")
	}
	st, _ := srv.Snapshot().Pipeline().MaintenanceStats()
	if st.GraphDeletedFraction != 0 {
		t.Fatalf("deleted fraction %.2f after background compaction, want 0", st.GraphDeletedFraction)
	}
}
