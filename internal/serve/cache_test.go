package serve

import (
	"fmt"
	"testing"

	"dust/internal/table"
)

func TestCacheGetPutLRU(t *testing.T) {
	// One entry per shard: hammer keys that land in one shard to observe
	// strict LRU order without cross-shard noise.
	c := NewCache(cacheShards) // perShard = 1
	shard := c.shardFor("a")
	keys := []string{}
	for i := 0; len(keys) < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shardFor(k) == shard {
			keys = append(keys, k)
		}
	}
	c.Put(keys[0], []byte("v0"))
	if got, ok := c.Get(keys[0]); !ok || string(got) != "v0" {
		t.Fatalf("Get after Put = %q/%v", got, ok)
	}
	// Same shard, capacity 1: inserting the second evicts the first.
	c.Put(keys[1], []byte("v1"))
	if _, ok := c.Get(keys[0]); ok {
		t.Fatal("evicted entry still served")
	}
	if got, ok := c.Get(keys[1]); !ok || string(got) != "v1" {
		t.Fatalf("survivor = %q/%v", got, ok)
	}
	hits, misses, entries, bytes := c.Stats()
	if hits != 2 || misses != 1 || entries < 1 {
		t.Fatalf("stats = %d hits / %d misses / %d entries, want 2/1/>=1", hits, misses, entries)
	}
	if bytes <= 0 {
		t.Fatalf("bytes = %d with %d resident entries, want > 0", bytes, entries)
	}
}

func TestCacheUpdateExistingKey(t *testing.T) {
	c := NewCache(64)
	c.Put("k", []byte("old"))
	c.Put("k", []byte("new"))
	if got, ok := c.Get("k"); !ok || string(got) != "new" {
		t.Fatalf("updated entry = %q/%v, want new/true", got, ok)
	}
	if _, _, entries, _ := c.Stats(); entries != 1 {
		t.Fatalf("entries = %d after in-place update, want 1", entries)
	}
}

func TestCacheCapacityBound(t *testing.T) {
	const capacity = 64
	c := NewCache(capacity)
	for i := 0; i < capacity*4; i++ {
		c.Put(fmt.Sprintf("key-%d", i), []byte("v"))
	}
	_, _, entries, _ := c.Stats()
	// Shard-local rounding can push the total slightly over capacity, never
	// unboundedly.
	if entries > capacity+cacheShards {
		t.Fatalf("cache holds %d entries, capacity %d", entries, capacity)
	}
}

func TestCacheByteBound(t *testing.T) {
	// Generous entry capacity, tight byte budget: eviction must trigger on
	// bytes alone. One shard's budget fits roughly two of these entries.
	const perEntry = 1024
	c := NewCacheBytes(1<<20, cacheShards*2*(perEntry+cacheEntryOverhead+16))
	body := make([]byte, perEntry)
	for i := 0; i < 512; i++ {
		c.Put(fmt.Sprintf("key-%d", i), body)
	}
	_, _, entries, bytes := c.Stats()
	if entries == 0 || bytes == 0 {
		t.Fatal("byte-bounded cache retained nothing")
	}
	if max := int64(cacheShards * 2 * (perEntry + cacheEntryOverhead + 16)); bytes > max {
		t.Fatalf("resident bytes %d exceed the %d budget", bytes, max)
	}
	if entries >= 512 {
		t.Fatalf("no eviction happened: %d entries resident", entries)
	}

	// Accounting must shrink when an update replaces a large body with a
	// small one, and grow back on the reverse.
	c2 := NewCacheBytes(16, 1<<20)
	c2.Put("k", make([]byte, 4096))
	_, _, _, before := c2.Stats()
	c2.Put("k", make([]byte, 16))
	_, _, _, after := c2.Stats()
	if after >= before {
		t.Fatalf("bytes %d -> %d after shrinking update, want a decrease", before, after)
	}

	// An entry larger than a whole shard budget is refused outright.
	c3 := NewCacheBytes(16, cacheShards*64)
	c3.Put("huge", make([]byte, 4096))
	if _, ok := c3.Get("huge"); ok {
		t.Fatal("oversized entry was cached")
	}
	if _, _, entries, bytes := c3.Stats(); entries != 0 || bytes != 0 {
		t.Fatalf("oversized entry left residue: %d entries / %d bytes", entries, bytes)
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	c.Put("k", []byte("v"))
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache returned a hit")
	}
	if h, m, e, b := c.Stats(); h != 0 || m != 0 || e != 0 || b != 0 {
		t.Fatalf("nil cache stats %d/%d/%d/%d", h, m, e, b)
	}
	if NewCache(0) != nil {
		t.Fatal("NewCache(0) should disable caching")
	}
}

func TestQueryFingerprint(t *testing.T) {
	a := table.New("a", "x", "y")
	a.MustAppendRow("1", "2")
	sameContent := table.New("other_name", "x", "y")
	sameContent.MustAppendRow("1", "2")
	if queryFingerprint(a) != queryFingerprint(sameContent) {
		t.Fatal("fingerprint depends on the table name")
	}
	diffRow := table.New("a", "x", "y")
	diffRow.MustAppendRow("1", "3")
	if queryFingerprint(a) == queryFingerprint(diffRow) {
		t.Fatal("different rows share a fingerprint")
	}
	diffHeader := table.New("a", "x", "z")
	diffHeader.MustAppendRow("1", "2")
	if queryFingerprint(a) == queryFingerprint(diffHeader) {
		t.Fatal("different headers share a fingerprint")
	}
	// Length-prefixing: ("ab","c") must not collide with ("a","bc").
	p := table.New("p", "h1", "h2")
	p.MustAppendRow("ab", "c")
	q := table.New("q", "h1", "h2")
	q.MustAppendRow("a", "bc")
	if queryFingerprint(p) == queryFingerprint(q) {
		t.Fatal("cell-boundary shift shares a fingerprint")
	}
}

func TestCacheKeyComponents(t *testing.T) {
	base := cacheKey("fp", 5, "tag", 1)
	for _, other := range []string{
		cacheKey("fq", 5, "tag", 1),
		cacheKey("fp", 6, "tag", 1),
		cacheKey("fp", 5, "tag2", 1),
		cacheKey("fp", 5, "tag", 2),
	} {
		if other == base {
			t.Fatalf("cache key %q ignores a component", base)
		}
	}
}
