package serve

import (
	"math"
	"sort"
	"sync/atomic"
	"time"

	"dust/internal/table"
)

// DefaultMaintenanceThreshold is the dead-entry fraction past which the
// background maintainer compacts the index (see WithMaintenance). A
// quarter of the structure being tombstones roughly doubles per-query
// graph traversal cost relative to a clean build, which is where paying
// one background rebuild starts winning.
const DefaultMaintenanceThreshold = 0.25

// cheapCostNS is the estimated-cost floor for degradation: searches
// predicted to finish under this budget are admitted exactly even when
// the server is overloaded — degrading them frees no meaningful capacity
// and only costs result quality.
const cheapCostNS = float64(time.Millisecond)

// admissionWindow is the size of the recent-admission-wait ring consulted
// by the overload check.
const admissionWindow = 256

// admissionRing is a lock-free ring of recent admission-wait durations.
// Reads race with writes by design: the p99 is an overload signal, not an
// account, and an occasionally torn window costs nothing.
type admissionRing struct {
	n       atomic.Uint64
	samples [admissionWindow]atomic.Int64
}

func (a *admissionRing) observe(d time.Duration) {
	i := a.n.Add(1) - 1
	a.samples[i%admissionWindow].Store(int64(d))
}

// p99 returns the 99th-percentile wait over the recorded window, or 0
// before any admission completed.
func (a *admissionRing) p99() time.Duration {
	n := a.n.Load()
	if n == 0 {
		return 0
	}
	if n > admissionWindow {
		n = admissionWindow
	}
	buf := make([]int64, n)
	for i := range buf {
		buf[i] = a.samples[i].Load()
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return time.Duration(buf[(len(buf)-1)*99/100])
}

// overloaded reports the current load factor and whether the degrade
// policy considers the server overloaded: the in-flight ratio (executing
// plus waiting searches over the admission bound) at or past the
// configured threshold, or the recent admission-wait p99 past a tenth of
// the per-request timeout. Always false when the policy is disabled.
func (s *Server) overloaded() (float64, bool) {
	if s.degradeThreshold <= 0 {
		return 0, false
	}
	load := float64(len(s.sem)+int(s.waiting.Load())) / float64(cap(s.sem))
	if load >= s.degradeThreshold {
		return load, true
	}
	if s.timeout > 0 && s.waits.p99() > s.timeout/10 {
		return load, true
	}
	return load, false
}

// costUnits estimates a search's cost before it runs, in scoring units:
// query tuple count times the number of lake tables scored against. The
// per-unit wall time learned by observeCost absorbs everything the shape
// ignores (column widths, shard fan-out, encoder cost).
func costUnits(query *table.Table, snap *Snapshot) float64 {
	rows := query.NumRows()
	if rows < 1 {
		rows = 1
	}
	tables := snap.master.Lake().Len()
	if tables < 1 {
		tables = 1
	}
	return float64(rows) * float64(tables)
}

// observeCost folds one completed exact search into the per-unit cost
// EWMA (alpha 0.2, CAS loop over the float bits).
func (s *Server) observeCost(units float64, d time.Duration) {
	if units <= 0 || d <= 0 {
		return
	}
	per := float64(d.Nanoseconds()) / units
	for {
		old := s.costNS.Load()
		next := per
		if cur := math.Float64frombits(old); cur > 0 {
			const alpha = 0.2
			next = cur*(1-alpha) + per*alpha
		}
		if s.costNS.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// estCostNS returns the estimated nanoseconds units of work will take, or
// 0 before any exact search has been observed.
func (s *Server) estCostNS(units float64) float64 {
	return math.Float64frombits(s.costNS.Load()) * units
}

// cheap reports whether a search's estimated cost is below the
// degradation floor. Unknown cost (no observations yet) is not cheap:
// the first requests under overload degrade rather than pile up.
func (s *Server) cheap(units float64) bool {
	est := s.estCostNS(units)
	return est > 0 && est < cheapCostNS
}

// retryAfterSeconds estimates when a shed client should retry: the
// current backlog (executing + waiting + this request) drained at the
// observed per-search cost across the admission width, clamped to
// [1, 60] seconds. With no cost observed yet, one search is assumed to
// take a second.
func (s *Server) retryAfterSeconds(units float64) int {
	est := s.estCostNS(units)
	if est <= 0 {
		est = float64(time.Second)
	}
	backlog := float64(len(s.sem) + int(s.waiting.Load()) + 1)
	secs := math.Ceil(est * backlog / float64(cap(s.sem)) / float64(time.Second))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return int(secs)
}

// maintenanceLoop drives maintain on the configured interval until Close.
func (s *Server) maintenanceLoop() {
	t := time.NewTicker(s.maintInterval)
	defer t.Stop()
	for {
		select {
		case <-s.maintStop:
			return
		case <-t.C:
			s.maintain()
		}
	}
}

// maintain runs one maintenance pass: when the published snapshot's worst
// dead-entry fraction is at or past the threshold, compact a clone of the
// master off the query path and swap it in. Masters are immutable once
// published, so the clone+compact runs without the mutation lock —
// holding s.mu across a compaction would stall every mutation, the exact
// latency this loop exists to remove. The swap itself takes the lock and
// is abandoned if a mutation published a newer snapshot meanwhile (its
// tombstone debt differs; the next tick re-checks). Compaction preserves
// result identity and the epoch, so cache entries keyed by (tag, epoch)
// stay valid and queries racing the swap return bit-identical results.
// Reports whether a swap happened.
func (s *Server) maintain() bool {
	cur := s.snap.Load()
	st, ok := cur.master.MaintenanceStats()
	if !ok || st.MaxDeadFraction() < s.maintThreshold {
		return false
	}
	clone, err := cur.master.Clone()
	if err != nil {
		return false
	}
	if !clone.Compact() {
		return false
	}
	next := newSnapshot(clone, s.queryWorkers)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snap.Load() != cur {
		return false
	}
	s.snap.Store(next)
	s.maintRuns.Add(1)
	return true
}
