package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"dust/internal/table"
)

// cacheShards is the shard count of the query-result cache. Sharding keeps
// the per-shard mutex short-lived under concurrent request load; 16 shards
// comfortably out-scale the in-flight query bound of a single server.
const cacheShards = 16

// Cache is a sharded LRU over marshaled search responses. Entries are keyed
// by (query fingerprint, k, pipeline config tag, index epoch) — see
// cacheKey — so a snapshot swap invalidates every prior entry by
// construction: the bumped epoch changes the key, stale entries simply stop
// being reachable and age out of the LRU. A nil *Cache is valid and caches
// nothing (Get always misses, Put is a no-op).
type Cache struct {
	shards   [cacheShards]cacheShard
	perShard int
	hits     atomic.Uint64
	misses   atomic.Uint64
}

type cacheShard struct {
	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

// NewCache creates a cache holding about capacity responses in total,
// split evenly across shards. capacity <= 0 disables caching (returns nil).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	c := &Cache{perShard: (capacity + cacheShards - 1) / cacheShards}
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[string]*list.Element)
	}
	return c
}

// shardFor picks the shard owning key (FNV-1a over the key bytes).
func (c *Cache) shardFor(key string) *cacheShard {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return &c.shards[h%cacheShards]
}

// Get returns the cached body for key, marking it most recently used.
func (c *Cache) Get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.items[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	s.ll.MoveToFront(el)
	body := el.Value.(*cacheEntry).body
	s.mu.Unlock()
	c.hits.Add(1)
	return body, true
}

// Put stores body under key, evicting least-recently-used entries past the
// shard's capacity.
func (c *Cache) Put(key string, body []byte) {
	if c == nil {
		return
	}
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheEntry).body = body
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&cacheEntry{key: key, body: body})
	for s.ll.Len() > c.perShard {
		back := s.ll.Back()
		s.ll.Remove(back)
		delete(s.items, back.Value.(*cacheEntry).key)
	}
}

// Stats reports lifetime hit/miss counters and the current entry count.
func (c *Cache) Stats() (hits, misses uint64, entries int) {
	if c == nil {
		return 0, 0, 0
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		entries += s.ll.Len()
		s.mu.Unlock()
	}
	return c.hits.Load(), c.misses.Load(), entries
}

// queryFingerprint hashes a query table's full content — headers and every
// row, length-prefixed so no two distinct tables collide by concatenation —
// into a short stable hex string. The table name is deliberately excluded:
// two clients posting the same content under different names share a cache
// line.
func queryFingerprint(t *table.Table) string {
	h := sha256.New()
	var lb [8]byte
	write := func(s string) {
		binary.LittleEndian.PutUint64(lb[:], uint64(len(s)))
		h.Write(lb[:])
		h.Write([]byte(s))
	}
	binary.LittleEndian.PutUint64(lb[:], uint64(t.NumCols()))
	h.Write(lb[:])
	for _, name := range t.Headers() {
		write(name)
	}
	for i := 0; i < t.NumRows(); i++ {
		for _, cell := range t.Row(i) {
			write(cell)
		}
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// cacheKey composes the full cache key for one search: what was asked
// (query fingerprint, k), how the pipeline answers it (config tag), and
// which index state answers it (epoch).
func cacheKey(fingerprint string, k int, configTag string, epoch uint64) string {
	return fmt.Sprintf("%s|%d|%s|%d", fingerprint, k, configTag, epoch)
}
