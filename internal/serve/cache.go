package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"dust/internal/table"
)

// cacheShards is the shard count of the query-result cache. Sharding keeps
// the per-shard mutex short-lived under concurrent request load; 16 shards
// comfortably out-scale the in-flight query bound of a single server.
const cacheShards = 16

// cacheEntryOverhead approximates the per-entry bookkeeping bytes beyond
// key and body (list element, map slot, entry header) so the byte bound
// cannot be dodged by caching many tiny responses.
const cacheEntryOverhead = 128

// Cache is a sharded LRU over marshaled search responses. Entries are keyed
// by (query fingerprint, k, pipeline config tag, index epoch) — see
// cacheKey — so a snapshot swap invalidates every prior entry by
// construction: the bumped epoch changes the key, stale entries simply stop
// being reachable and age out of the LRU. Residency is bounded on two axes:
// entry count (NewCache capacity) and, optionally, resident bytes
// (NewCacheBytes) — a max-k workload can pin multi-megabyte bodies, so a
// count bound alone does not bound memory. Eviction runs when either bound
// is exceeded. A nil *Cache is valid and caches nothing (Get always misses,
// Put is a no-op).
type Cache struct {
	shards        [cacheShards]cacheShard
	perShard      int
	bytesPerShard int64 // 0 = no byte bound
	hits          atomic.Uint64
	misses        atomic.Uint64
}

type cacheShard struct {
	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	bytes int64 // resident entry sizes (key + body + overhead)
}

type cacheEntry struct {
	key  string
	body []byte
}

// size is the entry's contribution to the shard's byte accounting.
func (e *cacheEntry) size() int64 {
	return int64(len(e.key)) + int64(len(e.body)) + cacheEntryOverhead
}

// NewCache creates a cache holding about capacity responses in total,
// split evenly across shards, with no byte bound. capacity <= 0 disables
// caching (returns nil).
func NewCache(capacity int) *Cache { return NewCacheBytes(capacity, 0) }

// NewCacheBytes is NewCache with an additional bound on resident bytes
// (key + body + per-entry overhead), split evenly across shards; entries
// are evicted LRU-first when either bound is exceeded, and a single entry
// larger than its shard's byte budget is not cached at all. maxBytes <= 0
// means no byte bound; capacity <= 0 disables caching entirely.
func NewCacheBytes(capacity int, maxBytes int64) *Cache {
	if capacity <= 0 {
		return nil
	}
	c := &Cache{perShard: (capacity + cacheShards - 1) / cacheShards}
	if maxBytes > 0 {
		c.bytesPerShard = (maxBytes + cacheShards - 1) / cacheShards
	}
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[string]*list.Element)
	}
	return c
}

// shardFor picks the shard owning key (FNV-1a over the key bytes).
func (c *Cache) shardFor(key string) *cacheShard {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return &c.shards[h%cacheShards]
}

// Get returns the cached body for key, marking it most recently used.
func (c *Cache) Get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.items[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	s.ll.MoveToFront(el)
	body := el.Value.(*cacheEntry).body
	s.mu.Unlock()
	c.hits.Add(1)
	return body, true
}

// Put stores body under key, evicting least-recently-used entries while the
// shard exceeds either its entry capacity or its byte budget. A body too
// large to ever fit the byte budget is dropped rather than cached (caching
// it would immediately evict everything else for a single entry).
func (c *Cache) Put(key string, body []byte) {
	if c == nil {
		return
	}
	e := &cacheEntry{key: key, body: body}
	if c.bytesPerShard > 0 && e.size() > c.bytesPerShard {
		return
	}
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		old := el.Value.(*cacheEntry)
		s.bytes += e.size() - old.size()
		old.body = body
		s.ll.MoveToFront(el)
	} else {
		s.items[key] = s.ll.PushFront(e)
		s.bytes += e.size()
	}
	for s.ll.Len() > c.perShard || (c.bytesPerShard > 0 && s.bytes > c.bytesPerShard) {
		back := s.ll.Back()
		if back == nil {
			break
		}
		evicted := back.Value.(*cacheEntry)
		s.ll.Remove(back)
		delete(s.items, evicted.key)
		s.bytes -= evicted.size()
	}
}

// Stats reports lifetime hit/miss counters, the current entry count, and
// the resident bytes (key + body + per-entry overhead) those entries hold.
func (c *Cache) Stats() (hits, misses uint64, entries int, bytes int64) {
	if c == nil {
		return 0, 0, 0, 0
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		entries += s.ll.Len()
		bytes += s.bytes
		s.mu.Unlock()
	}
	return c.hits.Load(), c.misses.Load(), entries, bytes
}

// queryFingerprint hashes a query table's full content — headers and every
// row, length-prefixed so no two distinct tables collide by concatenation —
// into a short stable hex string. The table name is deliberately excluded:
// two clients posting the same content under different names share a cache
// line.
func queryFingerprint(t *table.Table) string {
	h := sha256.New()
	var lb [8]byte
	write := func(s string) {
		binary.LittleEndian.PutUint64(lb[:], uint64(len(s)))
		h.Write(lb[:])
		h.Write([]byte(s))
	}
	binary.LittleEndian.PutUint64(lb[:], uint64(t.NumCols()))
	h.Write(lb[:])
	for _, name := range t.Headers() {
		write(name)
	}
	for i := 0; i < t.NumRows(); i++ {
		for _, cell := range t.Row(i) {
			write(cell)
		}
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// cacheKey composes the full cache key for one search: what was asked
// (query fingerprint, k), how the pipeline answers it (config tag), and
// which index state answers it (epoch).
func cacheKey(fingerprint string, k int, configTag string, epoch uint64) string {
	return fmt.Sprintf("%s|%d|%s|%d", fingerprint, k, configTag, epoch)
}
