// Package llm simulates the paper's GPT-3 baseline (§6.5.1): a generator
// that, given a query table, produces k "diverse unionable tuples". The
// real model is unavailable offline, so the simulator reproduces the two
// behaviours the paper measures:
//
//   - Quality decay: "for a given query, the LLM generates a few diverse
//     tuples but subsequently it produces redundant ones" — the simulator
//     emits novel template-combinations first and degenerates into
//     near-duplicates as generation proceeds.
//   - Token limits: the paper could not run the LLM on SANTOS because large
//     query tables exceed the prompt budget; the simulator enforces a token
//     budget and fails the same way.
package llm

import (
	"fmt"
	"strings"

	"dust/internal/table"
	"dust/internal/tokenize"
)

// Prompt is the prompt template of Appendix A.2.4, kept verbatim so the
// simulated baseline documents what it stands in for.
const Prompt = `Given the following query table: {Table}
Generate {k} new tuples that are unionable to the query table. The
generated tuples should be non-redundant and diverse with respect to the
existing tuples. Return the tuples in pipe-separated format as the query
table.`

// Generator simulates the LLM.
type Generator struct {
	// TokenBudget is the prompt capacity. The paper's GPT-3 baseline hits
	// its input token limit on query tables with many tuples; generation
	// fails when serializing the query exceeds the budget.
	TokenBudget int
	// NoveltyWindow is how many generations stay novel before the output
	// degenerates into near-duplicates of earlier generations.
	NoveltyWindow int
	Seed          uint64
}

// New returns a Generator with GPT-3-flavoured defaults.
func New() *Generator {
	return &Generator{TokenBudget: 2048, NoveltyWindow: 8, Seed: 7}
}

// ErrTokenLimit reports that the query table does not fit the prompt.
type ErrTokenLimit struct {
	Needed, Budget int
}

func (e ErrTokenLimit) Error() string {
	return fmt.Sprintf("llm: query table needs %d prompt tokens, budget is %d", e.Needed, e.Budget)
}

// Generate produces k tuples unionable with the query table, or
// ErrTokenLimit when the serialized query exceeds the budget.
func (g *Generator) Generate(query *table.Table, k int) ([]table.Tuple, error) {
	needed := g.promptTokens(query)
	if needed > g.TokenBudget {
		return nil, ErrTokenLimit{Needed: needed, Budget: g.TokenBudget}
	}
	// Column value pools harvested from the query: the LLM recombines and
	// lightly mutates what it has seen in the prompt.
	pools := make([][]string, query.NumCols())
	for c := range pools {
		pools[c] = query.Columns[c].Values
	}
	state := g.Seed
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}

	out := make([]table.Tuple, 0, k)
	for i := 0; i < k; i++ {
		row := make(table.Tuple, query.NumCols())
		if i < g.NoveltyWindow || len(out) == 0 {
			// Novel phase: fresh recombination of pool values with a
			// synthetic twist on the first column.
			for c := range row {
				if len(pools[c]) == 0 {
					row[c] = table.Null
					continue
				}
				row[c] = pools[c][next(len(pools[c]))]
			}
			if len(row) > 0 && row[0] != table.Null {
				row[0] = fmt.Sprintf("New %s %d", row[0], i+1)
			}
		} else {
			// Degenerate phase: repeat an earlier generation with a
			// cosmetic suffix — redundant content.
			base := out[next(len(out))]
			copy(row, base)
			if len(row) > 0 {
				row[0] = strings.TrimSuffix(base[0], " (again)") + " (again)"
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// promptTokens estimates the prompt size for a query table: the template
// plus every cell's tokens.
func (g *Generator) promptTokens(query *table.Table) int {
	n := len(tokenize.Words(Prompt))
	for _, col := range query.Columns {
		n += len(tokenize.Words(col.Name))
		for _, v := range col.Values {
			n += len(tokenize.Words(v)) + 1 // +1 for the separator
		}
	}
	return n
}

// AsTable wraps generated tuples in a table with the query's schema.
func AsTable(name string, query *table.Table, tuples []table.Tuple) *table.Table {
	t := table.New(name, query.Headers()...)
	for _, row := range tuples {
		t.MustAppendRow(row...)
	}
	return t
}
