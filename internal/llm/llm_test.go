package llm

import (
	"errors"
	"strings"
	"testing"

	"dust/internal/table"
)

func smallQuery() *table.Table {
	q := table.New("q", "Park Name", "City", "Country")
	q.MustAppendRow("River Park", "Fresno", "USA")
	q.MustAppendRow("Hyde Park", "London", "UK")
	q.MustAppendRow("Lawler Park", "Chicago", "USA")
	return q
}

func TestGenerateShapeAndDeterminism(t *testing.T) {
	g := New()
	a, err := g.Generate(smallQuery(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 6 {
		t.Fatalf("generated %d tuples, want 6", len(a))
	}
	for i, row := range a {
		if len(row) != 3 {
			t.Errorf("tuple %d arity %d, want 3", i, len(row))
		}
	}
	b, _ := New().Generate(smallQuery(), 6)
	for i := range a {
		if strings.Join(a[i], "|") != strings.Join(b[i], "|") {
			t.Fatal("generation nondeterministic")
		}
	}
}

func TestNoveltyDecay(t *testing.T) {
	g := New()
	g.NoveltyWindow = 3
	tuples, err := g.Generate(smallQuery(), 10)
	if err != nil {
		t.Fatal(err)
	}
	// Early tuples carry the "New ..." novel marker; late ones the
	// redundant "(again)" marker.
	novel, redundant := 0, 0
	for i, row := range tuples {
		if strings.HasSuffix(row[0], "(again)") {
			redundant++
			continue
		}
		novel++
		if i >= 3 {
			t.Errorf("tuple %d novel after the novelty window", i)
		}
	}
	if novel != 3 {
		t.Errorf("novel tuples = %d, want 3", novel)
	}
	if redundant != 7 {
		t.Errorf("redundant tuples = %d, want 7", redundant)
	}
}

func TestTokenLimit(t *testing.T) {
	g := New()
	g.TokenBudget = 10
	_, err := g.Generate(smallQuery(), 3)
	var limit ErrTokenLimit
	if !errors.As(err, &limit) {
		t.Fatalf("err = %v, want ErrTokenLimit", err)
	}
	if limit.Budget != 10 || limit.Needed <= 10 {
		t.Errorf("limit = %+v", limit)
	}
	if limit.Error() == "" {
		t.Error("empty error message")
	}
}

func TestLargeQueryExceedsDefaultBudget(t *testing.T) {
	// A SANTOS-sized query table (hundreds of rows) must not fit, matching
	// the paper's exclusion of the LLM baseline on SANTOS.
	q := table.New("big", "a", "b", "c", "d", "e")
	for i := 0; i < 500; i++ {
		q.MustAppendRow("some moderately long value", "another value here", "third column text", "fourth", "fifth")
	}
	if _, err := New().Generate(q, 10); err == nil {
		t.Error("500-row query should exceed the default token budget")
	}
}

func TestAsTable(t *testing.T) {
	g := New()
	q := smallQuery()
	tuples, err := g.Generate(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	out := AsTable("llm-out", q, tuples)
	if out.NumRows() != 4 || out.NumCols() != 3 {
		t.Errorf("AsTable shape %dx%d", out.NumRows(), out.NumCols())
	}
	if out.Headers()[0] != "Park Name" {
		t.Errorf("headers = %v", out.Headers())
	}
}

func TestPromptDocumented(t *testing.T) {
	for _, want := range []string{"{Table}", "{k}", "unionable", "non-redundant"} {
		if !strings.Contains(Prompt, want) {
			t.Errorf("prompt missing %q", want)
		}
	}
}
