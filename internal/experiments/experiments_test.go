package experiments

import (
	"strings"
	"testing"
)

var quick = Config{Quick: true}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) < 12 {
		t.Fatalf("registry has %d experiments, want >= 12 (every table and figure)", len(all))
	}
	seen := map[string]bool{}
	for _, r := range all {
		if seen[r.Name] {
			t.Errorf("duplicate experiment %q", r.Name)
		}
		seen[r.Name] = true
		if r.Artifact == "" || r.Run == nil {
			t.Errorf("experiment %q incomplete", r.Name)
		}
	}
	for _, want := range []string{"fig2", "fig5", "table1", "fig6", "table2", "fig7", "table3", "fig8", "fig10", "fig11", "prune"} {
		if !seen[want] {
			t.Errorf("missing experiment %q", want)
		}
	}
	if _, err := Get("fig6"); err != nil {
		t.Errorf("Get(fig6) error: %v", err)
	}
	if _, err := Get("nope"); err == nil {
		t.Error("Get(nope) should error")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{Title: "T", Columns: []string{"a", "bb"}}
	r.AddRow("1", "2")
	r.AddRow("333", "4")
	r.Note("hello %d", 5)
	s := r.String()
	for _, want := range []string{"== T ==", "a    bb", "333", "note: hello 5"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q in:\n%s", want, s)
		}
	}
}

func TestFig5Shapes(t *testing.T) {
	r := Fig5(quick)
	if len(r.Rows) != 5 {
		t.Fatalf("Fig5 rows = %d, want 5 benchmarks", len(r.Rows))
	}
	if r.Rows[0][0] != "tus" {
		t.Errorf("first benchmark = %q, want tus", r.Rows[0][0])
	}
}

func TestFig6ShapeChecksPass(t *testing.T) {
	r := Fig6(quick)
	if len(r.Rows) != 6 {
		t.Fatalf("Fig6 rows = %d, want 6 models", len(r.Rows))
	}
	assertAllShapesPass(t, r)
}

func TestFig7ShapeChecksPass(t *testing.T) {
	assertAllShapesPass(t, Fig7(quick))
}

func TestPruneAblationShapeChecksPass(t *testing.T) {
	assertAllShapesPass(t, PruneAblation(quick))
}

func TestTable2ShapeChecksPass(t *testing.T) {
	assertAllShapesPass(t, Table2(quick))
}

func TestFig10ShapeChecksPass(t *testing.T) {
	assertAllShapesPass(t, Fig10(quick))
}

// assertAllShapesPass fails the test if any "shape ...: FAIL" note appears.
func assertAllShapesPass(t *testing.T, r *Report) {
	t.Helper()
	for _, n := range r.Notes {
		if strings.Contains(n, "FAIL") {
			t.Errorf("%s: %s", r.Title, n)
		}
	}
}
