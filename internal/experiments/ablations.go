package experiments

import (
	"sort"

	"dust/internal/diversify"
	"dust/internal/vector"
)

// AblationTupleVsTable quantifies the paper's central design decision
// (Fig. 2 discussion): diversify tuples, not tables. The table-level
// alternative picks the most mutually diverse whole tables (by mean tuple
// embedding) and returns their tuples; DUST picks tuples directly. Both
// produce k tuples and are scored with the §5.4 metrics.
func AblationTupleVsTable(cfg Config) *Report {
	dustModel, _, _, _ := Models()
	b := benchSANTOS()
	k := cfg.scale(30, 100)
	maxQ := cfg.scale(3, 0)
	nq := len(b.Queries)
	if maxQ > 0 && nq > maxQ {
		nq = maxQ
	}

	var tupleAvg, tupleMin, tableAvg, tableMin float64
	count := 0
	for qi := 0; qi < nq; qi++ {
		p := diversificationProblem(b, qi, k, 2500, dustModel)
		if len(p.Tuples) == 0 {
			continue
		}
		// Tuple-level: DUST.
		sel := diversify.NewDUST().Select(p)
		chosen := diversify.Gather(p.Tuples, sel)
		tupleAvg += diversify.AverageDiversity(p.Query, chosen, p.Dist)
		tupleMin += diversify.MinDiversity(p.Query, chosen, p.Dist)

		// Table-level: rank source tables by the diversity of their mean
		// embedding vs the query, then take whole tables until k tuples.
		groups := map[int][]int{}
		for i, g := range p.Groups {
			groups[g] = append(groups[g], i)
		}
		type gd struct {
			g    int
			dist float64
		}
		var ranked []gd
		for g, members := range groups {
			mean := vector.Mean(diversify.Gather(p.Tuples, members))
			minD := -1.0
			for _, q := range p.Query {
				if dd := p.Dist(mean, q); minD < 0 || dd < minD {
					minD = dd
				}
			}
			ranked = append(ranked, gd{g, minD})
		}
		sort.Slice(ranked, func(a, b int) bool {
			if ranked[a].dist != ranked[b].dist {
				return ranked[a].dist > ranked[b].dist
			}
			return ranked[a].g < ranked[b].g
		})
		var tableSel []int
		for _, r := range ranked {
			for _, i := range groups[r.g] {
				if len(tableSel) >= k {
					break
				}
				tableSel = append(tableSel, i)
			}
			if len(tableSel) >= k {
				break
			}
		}
		tChosen := diversify.Gather(p.Tuples, tableSel)
		tableAvg += diversify.AverageDiversity(p.Query, tChosen, p.Dist)
		tableMin += diversify.MinDiversity(p.Query, tChosen, p.Dist)
		count++
	}
	if count > 0 {
		tupleAvg /= float64(count)
		tupleMin /= float64(count)
		tableAvg /= float64(count)
		tableMin /= float64(count)
	}

	r := &Report{
		Title:   "Ablation — tuple-level vs table-level diversification (SANTOS)",
		Columns: []string{"Granularity", "Avg Diversity", "Min Diversity"},
	}
	r.AddRow("tables (whole)", f3(tableAvg), f3(tableMin))
	r.AddRow("tuples (DUST)", f3(tupleAvg), f3(tupleMin))
	r.Note("shape tuple-level wins: %s (avg %.3f vs %.3f, min %.3f vs %.3f)",
		passFail(tupleAvg > tableAvg && tupleMin >= tableMin),
		tupleAvg, tableAvg, tupleMin, tableMin)
	return r
}

// AblationMedoid compares DUST's medoid cluster representative against a
// random member (the §5.2 robustness argument).
func AblationMedoid(cfg Config) *Report {
	dustModel, _, _, _ := Models()
	b := benchSANTOS()
	k := cfg.scale(30, 100)
	maxQ := cfg.scale(3, 0)
	nq := len(b.Queries)
	if maxQ > 0 && nq > maxQ {
		nq = maxQ
	}

	medoid := diversify.NewDUST()
	random := diversify.NewDUST()
	random.RandomRep = true
	random.RepSeed = 77

	var medoidMin, randomMin float64
	count := 0
	for qi := 0; qi < nq; qi++ {
		p := diversificationProblem(b, qi, k, 2500, dustModel)
		if len(p.Tuples) == 0 {
			continue
		}
		ms := diversify.Gather(p.Tuples, medoid.Select(p))
		rs := diversify.Gather(p.Tuples, random.Select(p))
		medoidMin += diversify.MinDiversity(p.Query, ms, p.Dist)
		randomMin += diversify.MinDiversity(p.Query, rs, p.Dist)
		count++
	}
	if count > 0 {
		medoidMin /= float64(count)
		randomMin /= float64(count)
	}
	r := &Report{
		Title:   "Ablation — medoid vs random cluster representative (SANTOS)",
		Columns: []string{"Representative", "Min Diversity"},
	}
	r.AddRow("medoid", f3(medoidMin))
	r.AddRow("random member", f3(randomMin))
	// A lucky random representative can edge out the medoid on one run;
	// the claim being checked is robustness, not strict dominance.
	r.Note("medoids are the paper's choice for outlier robustness; shape medoid >= random*0.85: %s", passFail(medoidMin >= randomMin*0.85))
	return r
}

// AblationDistance re-runs the Table 2 win comparison under euclidean and
// manhattan distances; the paper notes the relative ordering of the
// algorithms is stable across distances (§6.4.1). SANTOS is used because
// its larger tuple pools give the algorithms room to differ.
func AblationDistance(cfg Config) *Report {
	dustModel, _, _, _ := Models()
	b := benchSANTOS()
	maxQ := cfg.scale(3, 0)
	k := cfg.scale(30, 100)

	r := &Report{
		Title:   "Ablation — distance function stability (SANTOS)",
		Columns: []string{"Distance", "DUST #Min wins", "CLT #Min wins", "GMC #Min wins"},
	}
	stable := true
	for _, name := range vector.DistanceNames() {
		dist, _ := vector.Distance(name)
		wins := map[string]int{}
		nq := len(b.Queries)
		if maxQ > 0 && nq > maxQ {
			nq = maxQ
		}
		for qi := 0; qi < nq; qi++ {
			p := diversificationProblem(b, qi, k, 2500, dustModel)
			p.Dist = dist
			if len(p.Tuples) == 0 {
				continue
			}
			bestMin, winner := -1.0, ""
			for _, a := range []diversify.Algorithm{diversify.NewGMC(), diversify.CLT{}, diversify.NewDUST()} {
				sel := diversify.Gather(p.Tuples, a.Select(p))
				if m := diversify.MinDiversity(p.Query, sel, dist); m > bestMin {
					bestMin, winner = m, a.Name()
				}
			}
			wins[winner]++
		}
		r.AddRow(name, d(wins["dust"]), d(wins["clt"]), d(wins["gmc"]))
		if wins["dust"] < wins["clt"] || wins["dust"] < wins["gmc"] {
			stable = false
		}
	}
	r.Note("shape DUST leads min-diversity under every distance: %s", passFail(stable))
	return r
}
