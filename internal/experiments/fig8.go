package experiments

import (
	"dust/internal/datagen"
	"dust/internal/search"
	"dust/internal/table"
)

// unionInRankOrder implements the §6.6 baseline protocol: (bag-)union the
// ranked output tables with the query schema, using the benchmark's
// origin ground truth for column correspondence, until at least k tuples
// are collected; then take the first k (SQL LIMIT k). With dedup=true the
// set-union variants (D3L-D / Starmie-D) drop duplicate tuples first.
func unionInRankOrder(b *datagen.Benchmark, q *table.Table, ranked []search.Scored, k int, dedup bool) *table.Table {
	qOrigins := b.Origins[q.Name]
	out := table.New("union", q.Headers()...)
	seen := map[string]bool{}
	for _, hit := range ranked {
		t := hit.Table
		tOrigins := b.Origins[t.Name]
		// Map each query column to the table's column with equal origin.
		colMap := make([]int, q.NumCols())
		for qi := range colMap {
			colMap[qi] = -1
			for ci := range tOrigins {
				if qi < len(qOrigins) && tOrigins[ci] == qOrigins[qi] {
					colMap[qi] = ci
					break
				}
			}
		}
		for r := 0; r < t.NumRows(); r++ {
			row := make(table.Tuple, q.NumCols())
			for qi, ci := range colMap {
				if ci >= 0 {
					row[qi] = t.Cell(r, ci)
				} else {
					row[qi] = table.Null
				}
			}
			if dedup {
				key := rowKey(row)
				if seen[key] {
					continue
				}
				seen[key] = true
			}
			out.MustAppendRow(row...)
		}
		if out.NumRows() >= k {
			break
		}
	}
	if out.NumRows() > k {
		limited, _ := out.Select("union", firstN(k))
		return limited
	}
	return out
}

func rowKey(row table.Tuple) string {
	key := ""
	for _, c := range row {
		key += c + "\x1f"
	}
	return key
}

func firstN(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// newValues counts how many distinct values a result adds to one query
// column (values not already present in the query).
func newValues(q, result *table.Table, col int) int {
	have := map[string]bool{}
	for _, v := range q.Columns[col].Values {
		have[v] = true
	}
	added := map[string]bool{}
	for _, v := range result.Columns[col].Values {
		if v != table.Null && !have[v] {
			added[v] = true
		}
	}
	return len(added)
}

// Fig8 reproduces the IMDB case study: the number of novel values each
// method adds to the query's Title, Language, and Filming Location columns
// as k grows, for D3L, D3L-D, Starmie, Starmie-D, and DUST.
func Fig8(cfg Config) *Report {
	dustModel, _, _, _ := Models()
	b := benchIMDB()
	q := b.Queries[0]

	kValues := []int{10, 20, 30, 40, 50}
	if cfg.Quick {
		kValues = []int{10, 30}
	}
	starmie := search.NewStarmie(b.Lake)
	d3l := search.NewD3L(b.Lake)
	pipe := pipelineFor(b, dustModel)

	cols := []string{"Title", "Language", "Filming Location"}
	colIdx := make([]int, len(cols))
	for i, c := range cols {
		colIdx[i] = q.ColumnIndex(c)
		if colIdx[i] < 0 {
			// Header may have been renamed during generation; fall back to
			// position (movies schema order: Title=0, Language=3, Loc=4).
			colIdx[i] = []int{0, 3, 4}[i]
		}
	}

	r := &Report{
		Title:   "Fig. 8 — IMDB case study: novel values added per column",
		Columns: []string{"k", "Method", cols[0], cols[1], cols[2]},
	}
	type method struct {
		name string
		run  func(k int) *table.Table
	}
	methods := []method{
		{"d3l", func(k int) *table.Table {
			return unionInRankOrder(b, q, d3l.TopK(q, 0), k, false)
		}},
		{"d3l-d", func(k int) *table.Table {
			return unionInRankOrder(b, q, d3l.TopK(q, 0), k, true)
		}},
		{"starmie", func(k int) *table.Table {
			return unionInRankOrder(b, q, starmie.TopK(q, 0), k, false)
		}},
		{"starmie-d", func(k int) *table.Table {
			return unionInRankOrder(b, q, starmie.TopK(q, 0), k, true)
		}},
		{"dust", func(k int) *table.Table {
			res, err := pipe.Search(q, k)
			if err != nil {
				return table.New("empty", q.Headers()...)
			}
			return res.Tuples
		}},
	}

	dustTitles := map[int]int{}
	starmieDTitles := map[int]int{}
	for _, k := range kValues {
		for _, m := range methods {
			result := m.run(k)
			row := []string{d(k), m.name}
			for ci, qi := range colIdx {
				n := newValues(q, result, qi)
				row = append(row, d(n))
				if ci == 0 {
					switch m.name {
					case "dust":
						dustTitles[k] = n
					case "starmie-d":
						starmieDTitles[k] = n
					}
				}
			}
			r.AddRow(row...)
		}
	}
	kMax := kValues[len(kValues)-1]
	r.Note("paper shape: DUST adds ~25%% more unique titles than Starmie-D; D3L and Starmie add similar counts")
	r.Note("shape dust >= starmie-d on titles at k=%d: %s (%d vs %d)", kMax,
		passFail(dustTitles[kMax] >= starmieDTitles[kMax]), dustTitles[kMax], starmieDTitles[kMax])
	return r
}
