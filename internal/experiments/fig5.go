package experiments

import (
	"dust/internal/datagen"
	"dust/internal/lake"
)

// Fig5 reproduces the benchmark-statistics table (paper Fig. 5): tables,
// columns, and tuples per benchmark, plus the average number of unionable
// tables per query. Our corpus is a scaled-down synthetic derivation; the
// relative ordering (TUS largest, UGEN-V1 smallest tables) is preserved.
func Fig5(cfg Config) *Report {
	r := &Report{
		Title: "Fig. 5 — Benchmarks used in the experiments (scaled)",
		Columns: []string{"Benchmark", "Queries", "Lake Tables", "Lake Columns",
			"Lake Tuples", "Avg Unionable/Query"},
	}
	add := func(b *datagen.Benchmark) {
		s := b.Lake.Stats()
		var totalU int
		for _, names := range b.Unionable {
			totalU += len(names)
		}
		avg := 0.0
		if len(b.Queries) > 0 {
			avg = float64(totalU) / float64(len(b.Queries))
		}
		r.AddRow(b.Name, d(len(b.Queries)), d(s.Tables), d(s.Columns), d(s.Tuples), f1(avg))
	}
	add(datagen.TUS())
	add(benchTUSSampled())
	add(benchSANTOS())
	add(benchUGEN())
	add(benchIMDB())
	r.Note("paper scale: TUS 5044 tables / 9.6M tuples, SANTOS 550 / 3.8M, UGEN-V1 1000 / 10K; this corpus keeps the same ordering and per-query structure at laptop scale")
	return r
}

// lakeStats is re-exported for the dustgen CLI.
func lakeStats(l *lake.Lake) lake.Stats { return l.Stats() }
