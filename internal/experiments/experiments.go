// Package experiments regenerates every table and figure of the paper's
// evaluation (§6 and Appendix A.2) over the synthetic benchmark corpus.
// Each experiment is a function returning a renderable report; the
// cmd/dustbench binary and the repository's benchmark harness both call
// into this package. Absolute numbers differ from the paper (the substrate
// is a simulator, not the authors' testbed); the shapes — who wins, by
// roughly what factor, where crossovers fall — are the reproduction target
// and are recorded in EXPERIMENTS.md.
package experiments

import (
	"sync"

	"dust/internal/datagen"
	"dust/internal/model"
)

// Config controls experiment scale.
type Config struct {
	// Quick shrinks the workloads so the whole suite runs in tens of
	// seconds (used by `go test` and `go test -bench`); the full scale is
	// the dustbench default.
	Quick bool
}

// scale returns q if Quick, f otherwise.
func (c Config) scale(q, f int) int {
	if c.Quick {
		return q
	}
	return f
}

// Shared trained models and benchmarks are expensive; cache per process.
var (
	onceModels   sync.Once
	cachedModels struct {
		dustRoberta *model.Model
		dustBert    *model.Model
		ditto       *model.Model
		pairs       datagen.PairDataset
	}
)

// trainingBenchmark returns the TUS-derived fine-tuning corpus (§6.1.1).
func trainingBenchmark() *datagen.Benchmark {
	return datagen.Generate("tus-finetune", datagen.Config{
		Seed: 901, Domains: 8, TablesPerBase: 8, BaseRows: 60, MinRows: 10, MaxRows: 20,
	})
}

// Models trains (once per process) the two DUST variants and the Ditto
// simulator on the TUS fine-tuning benchmark and returns them with the
// pair dataset used.
func Models() (dustRoberta, dustBert, ditto *model.Model, pairs datagen.PairDataset) {
	onceModels.Do(func() {
		bench := trainingBenchmark()
		cachedModels.pairs = datagen.Pairs(bench, 2000, 902)
		cfg := model.DefaultConfig()
		cfg.Epochs = 30
		cachedModels.dustRoberta = model.Train("dust-roberta", model.NewRoBERTaFeaturizer(),
			cachedModels.pairs.Train, cachedModels.pairs.Val, cfg)
		cachedModels.dustBert = model.Train("dust-bert", model.NewBERTFeaturizer(),
			cachedModels.pairs.Train, cachedModels.pairs.Val, cfg)
		entity := datagen.EntityPairs(bench, len(cachedModels.pairs.Train), 903)
		cachedModels.ditto = model.Train("ditto", model.NewRoBERTaFeaturizer(),
			entity, cachedModels.pairs.Val, cfg)
	})
	return cachedModels.dustRoberta, cachedModels.dustBert, cachedModels.ditto, cachedModels.pairs
}

// Benchmarks used across experiments, regenerated on demand (generation is
// cheap; only model training is cached).
func benchTUSSampled() *datagen.Benchmark { return datagen.TUSSampled() }
func benchSANTOS() *datagen.Benchmark     { return datagen.SANTOS() }
func benchUGEN() *datagen.Benchmark       { return datagen.UGEN() }
func benchIMDB() *datagen.Benchmark       { return datagen.IMDB() }
