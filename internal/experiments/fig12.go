package experiments

import (
	"strings"

	"dust"
	"dust/internal/lake"
	"dust/internal/search"
	"dust/internal/table"
)

// Fig12 reproduces the anecdotal mythology comparison (Appendix A.2.5):
// Starmie's similarity ranking returns tuples repeating the query's Greek
// creatures, while DUST returns creatures with new names and new origins.
func Fig12(cfg Config) *Report {
	query := table.New("mythology_query", "Myth", "Definition", "Synonyms", "Origin")
	query.MustAppendRow("Chimera", "Monstrous", "Fabulous creature", "Greek")
	query.MustAppendRow("Siren", "Half-human", "Harpy, Lorelei", "Greek")
	query.MustAppendRow("Basilisk", "King serpent", "Cockatrice", "Greek, Roman")
	query.MustAppendRow("Minotaur", "Human-bull", "Man bull, Asterius", "Greek")
	query.MustAppendRow("Cyclops", "One-eyed", "Polyphemus", "Greek")

	l := lake.New("myths")
	t1 := table.New("greek_myths", "Myth", "Definition", "Synonyms", "Origin")
	t1.MustAppendRow("Minotaur", "Human-bull", "Man bull, Asterius", "Greek")
	t1.MustAppendRow("Chimera", "Monstrous", "Fabulous creature", "Greek")
	t1.MustAppendRow("Basilisk", "King serpent", "Cockatrice", "Greek, Roman")
	t1.MustAppendRow("Griffon", "Winged lion", "Perseus, Chimaera", "Greek")
	t1.MustAppendRow("Minotaur", "Half bull", "-", "Greek")
	l.MustAdd(t1)
	t2 := table.New("world_myths", "Creature", "Description", "Also Known As", "Culture")
	t2.MustAppendRow("Mugo", "Forest dweller", "Tenkou", "Japanese")
	t2.MustAppendRow("Kasha", "Fire-cart", "Bikuni-Kasha", "Japanese")
	t2.MustAppendRow("Succubus", "Female demon", "Lilin, Incubus", "Jewish, Christian")
	t2.MustAppendRow("Hag", "Witch", "Baba Yaga", "Scottish")
	t2.MustAppendRow("Wendigo", "Hungering ghost", "Witiko", "Algonquian")
	l.MustAdd(t2)

	r := &Report{
		Title:   "Fig. 12 — Mythology anecdote: Starmie vs DUST top-5",
		Columns: []string{"Method", "Myth", "Definition", "Origin"},
	}
	queryNames := map[string]bool{}
	for _, v := range query.Columns[0].Values {
		queryNames[v] = true
	}
	starmieRepeats, dustRepeats := 0, 0
	origins := map[string]bool{}

	ts := search.NewTupleSearch(l.Tables())
	for _, h := range ts.TopK(query, 5) {
		row := h.Table.Row(h.Row)
		r.AddRow("starmie", row[0], row[1], row[3])
		if queryNames[row[0]] {
			starmieRepeats++
		}
	}
	res, err := dust.New(l, dust.WithTopTables(2)).Search(query, 5)
	if err != nil {
		r.Note("pipeline error: %v", err)
		return r
	}
	for i := 0; i < res.Tuples.NumRows(); i++ {
		row := res.Tuples.Row(i)
		r.AddRow("dust", row[0], row[1], row[3])
		if queryNames[row[0]] {
			dustRepeats++
		}
		if o := strings.TrimSpace(row[3]); o != "" {
			origins[o] = true
		}
	}
	r.Note("paper shape: Starmie's top tuples repeat query creatures; DUST adds new creatures and non-Greek origins")
	r.Note("shape starmie repeats more query creatures: %s (%d vs %d)",
		passFail(starmieRepeats > dustRepeats), starmieRepeats, dustRepeats)
	nonGreek := 0
	for o := range origins {
		if !strings.Contains(o, "Greek") {
			nonGreek++
		}
	}
	r.Note("shape dust adds non-Greek origins: %s (%d distinct)", passFail(nonGreek >= 2), nonGreek)
	return r
}
