package experiments

import (
	"math/rand"
	"time"

	"dust/internal/diversify"
	"dust/internal/vector"
)

// syntheticProblem builds the Fig. 7 scalability workload: s unionable
// tuple embeddings drawn from a mixture of topic clusters (mimicking the
// embedding geometry of real unionable tuples) plus a small query set.
func syntheticProblem(s, k int, seed int64) diversify.Problem {
	rng := rand.New(rand.NewSource(seed))
	const dim = 32
	const clusters = 20
	centers := make([]vector.Vec, clusters)
	for c := range centers {
		v := make(vector.Vec, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		centers[c] = vector.Normalize(v)
	}
	tuples := make([]vector.Vec, s)
	groups := make([]int, s)
	for i := range tuples {
		c := rng.Intn(clusters)
		v := make(vector.Vec, dim)
		for j := range v {
			v[j] = centers[c][j] + rng.NormFloat64()*0.15
		}
		tuples[i] = v
		groups[i] = c % 10 // ten source tables
	}
	query := make([]vector.Vec, 10)
	for i := range query {
		v := make(vector.Vec, dim)
		for j := range v {
			v[j] = centers[0][j] + rng.NormFloat64()*0.1
		}
		query[i] = v
	}
	return diversify.Problem{Query: query, Tuples: tuples, Groups: groups, K: k, Dist: vector.CosineDistance}
}

// timeAlgo runs one algorithm once and returns the wall time.
func timeAlgo(a diversify.Algorithm, p diversify.Problem) time.Duration {
	start := time.Now()
	a.Select(p)
	return time.Since(start)
}

// Fig7 reproduces the two scalability plots: runtime vs number of input
// tuples s (k=100) and runtime vs output size k (s=5000), for GMC, CLT,
// and DUST (GNE is excluded: the paper could not scale it past UGEN-V1).
func Fig7(cfg Config) *Report {
	sValues := []int{1000, 2000, 3000, 4000, 5000, 6000}
	kValues := []int{100, 200, 300, 400, 500}
	kFixed, sFixed := 100, 5000
	if cfg.Quick {
		sValues = []int{500, 1000, 1500}
		kValues = []int{50, 100}
		kFixed, sFixed = 50, 1500
	}
	// DUST's prune cap must sit inside the sweep range for its sub-GMC
	// scaling to be visible (the paper prunes to 2500 within a 1K-6K
	// sweep); in quick mode the cap shrinks with the sweep.
	dustAlgo := diversify.NewDUST()
	dustAlgo.S = cfg.scale(sValues[0], 2500)
	algos := []diversify.Algorithm{diversify.NewGMC(), diversify.CLT{}, dustAlgo}

	r := &Report{
		Title:   "Fig. 7 — Diversification runtime (ms)",
		Columns: []string{"Sweep", "Param", "gmc", "clt", "dust"},
	}
	gmcTimes := map[int]time.Duration{}
	dustTimes := map[int]time.Duration{}
	for _, s := range sValues {
		p := syntheticProblem(s, kFixed, 42)
		row := []string{"s (k=100)", d(s)}
		for _, a := range algos {
			dt := timeAlgo(a, p)
			if a.Name() == "gmc" {
				gmcTimes[s] = dt
			}
			if a.Name() == "dust" {
				dustTimes[s] = dt
			}
			row = append(row, d(int(dt.Milliseconds())))
		}
		r.AddRow(row...)
	}
	var dustKTimes []time.Duration
	for _, k := range kValues {
		p := syntheticProblem(sFixed, k, 43)
		row := []string{"k (s=5000)", d(k)}
		for _, a := range algos {
			dt := timeAlgo(a, p)
			if a.Name() == "dust" {
				dustKTimes = append(dustKTimes, dt)
			}
			row = append(row, d(int(dt.Milliseconds())))
		}
		r.AddRow(row...)
	}

	// Shape checks: GMC superlinear in s, DUST sublinear (prune cap), and
	// DUST roughly flat in k.
	sLo, sHi := sValues[0], sValues[len(sValues)-1]
	ratio := float64(sHi) / float64(sLo)
	gmcGrowth := safeRatio(gmcTimes[sHi], gmcTimes[sLo])
	dustGrowth := safeRatio(dustTimes[sHi], dustTimes[sLo])
	r.Note("paper shape: GMC grows quadratically with s; DUST near-linear with small slope; DUST flat in k")
	r.Note("shape gmc superlinear in s: %s (x%.1f time for x%.1f input)", passFail(gmcGrowth > ratio), gmcGrowth, ratio)
	r.Note("shape dust grows slower than gmc: %s (x%.1f vs x%.1f)", passFail(dustGrowth < gmcGrowth), dustGrowth, gmcGrowth)
	if len(dustKTimes) >= 2 {
		kGrowth := safeRatio(dustKTimes[len(dustKTimes)-1], dustKTimes[0])
		r.Note("shape dust ~flat in k: %s (x%.1f time for x%.1f k)", passFail(kGrowth < 3),
			kGrowth, float64(kValues[len(kValues)-1])/float64(kValues[0]))
	}
	return r
}

func safeRatio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// PruneAblation reproduces Appendix A.2.3: mean diversification time with
// and without the pruning step on an oversized tuple pool (the paper: 10k
// tuples pruned to 2500 cut per-query time from 990 s to 85 s without
// hurting effectiveness).
func PruneAblation(cfg Config) *Report {
	s := cfg.scale(3000, 8000)
	k := cfg.scale(50, 100)
	p := syntheticProblem(s, k, 44)

	withPrune := diversify.NewDUST()
	withPrune.S = cfg.scale(800, 2500)
	noPrune := diversify.NewDUST()
	noPrune.DisablePrune = true

	tWith := timeAlgo(withPrune, p)
	tWithout := timeAlgo(noPrune, p)

	selWith := withPrune.Select(p)
	selWithout := noPrune.Select(p)
	avgWith := diversify.AverageDiversity(p.Query, diversify.Gather(p.Tuples, selWith), p.Dist)
	avgWithout := diversify.AverageDiversity(p.Query, diversify.Gather(p.Tuples, selWithout), p.Dist)

	r := &Report{
		Title:   "App. A.2.3 — Pruning influence on DUST",
		Columns: []string{"Variant", "Time ms", "Average Diversity"},
	}
	r.AddRow("with pruning", d(int(tWith.Milliseconds())), f3(avgWith))
	r.AddRow("without pruning", d(int(tWithout.Milliseconds())), f3(avgWithout))
	r.Note("paper: 990 s -> 85 s per query with pruning, no effectiveness loss")
	r.Note("shape pruning speeds up: %s (x%.1f)", passFail(tWith < tWithout), safeRatio(tWithout, tWith))
	r.Note("shape effectiveness preserved: %s (%.3f vs %.3f)", passFail(avgWith > avgWithout*0.9), avgWith, avgWithout)
	return r
}
