package experiments

import (
	"errors"

	"dust/internal/datagen"
	"dust/internal/diversify"
	"dust/internal/llm"
	"dust/internal/model"
	"dust/internal/search"
	"dust/internal/table"
	"dust/internal/vector"
)

// tupleSource is a Table 3 contender: it produces k output tuples for a
// query, each as (headers, values); diversity is always scored with DUST
// embeddings for fairness (§6.5.1).
type tupleSource interface {
	name() string
	tuples(q *table.Table, k int) ([][]string, [][]string, error)
}

// dustSource runs the full DUST pipeline against the lake.
type dustSource struct {
	b *datagen.Benchmark
	m *model.Model
}

func (s dustSource) name() string { return "dust" }

func (s dustSource) tuples(q *table.Table, k int) ([][]string, [][]string, error) {
	p := pipelineFor(s.b, s.m)
	res, err := p.Search(q, k)
	if err != nil {
		return nil, nil, err
	}
	return tableTuples(res.Tuples)
}

// starmieSource is the tuple-level Starmie adaptation.
type starmieSource struct {
	ts *search.TupleSearch
}

func (s starmieSource) name() string { return "starmie" }

func (s starmieSource) tuples(q *table.Table, k int) ([][]string, [][]string, error) {
	hits := s.ts.TopK(q, k)
	hs := make([][]string, len(hits))
	vs := make([][]string, len(hits))
	for i, h := range hits {
		hs[i] = h.Table.Headers()
		vs[i] = h.Table.Row(h.Row)
	}
	return hs, vs, nil
}

// llmSource generates tuples with the simulated LLM.
type llmSource struct {
	g *llm.Generator
}

func (s llmSource) name() string { return "llm" }

func (s llmSource) tuples(q *table.Table, k int) ([][]string, [][]string, error) {
	rows, err := s.g.Generate(q, k)
	if err != nil {
		return nil, nil, err
	}
	headers := q.Headers()
	hs := make([][]string, len(rows))
	vs := make([][]string, len(rows))
	for i, row := range rows {
		hs[i] = headers
		vs[i] = row
	}
	return hs, vs, nil
}

func tableTuples(t *table.Table) ([][]string, [][]string, error) {
	headers := t.Headers()
	hs := make([][]string, t.NumRows())
	vs := make([][]string, t.NumRows())
	for i := 0; i < t.NumRows(); i++ {
		hs[i] = headers
		vs[i] = t.Row(i)
	}
	return hs, vs, nil
}

// runTable3 counts, per benchmark, the queries where each source yields
// the best Average / Min Diversity under DUST embeddings.
func runTable3(b *datagen.Benchmark, sources []tupleSource, k, maxQueries int, m *model.Model) (avgWins, minWins map[string]int, llmSkipped int) {
	avgWins = map[string]int{}
	minWins = map[string]int{}
	nq := len(b.Queries)
	if maxQueries > 0 && nq > maxQueries {
		nq = maxQueries
	}
	for qi := 0; qi < nq; qi++ {
		q := b.Queries[qi]
		qh := q.Headers()
		eq := make([]vector.Vec, q.NumRows())
		for i := range eq {
			eq[i] = m.EncodeTuple(qh, q.Row(i))
		}
		bestAvg, bestMin := -1.0, -1.0
		var avgWinner, minWinner string
		for _, src := range sources {
			hs, vs, err := src.tuples(q, k)
			if err != nil {
				var limit llm.ErrTokenLimit
				if errors.As(err, &limit) {
					llmSkipped++
					continue
				}
				continue
			}
			sel := make([]vector.Vec, len(vs))
			for i := range vs {
				sel[i] = m.EncodeTuple(hs[i], vs[i])
			}
			avg := diversify.AverageDiversity(eq, sel, vector.CosineDistance)
			min := diversify.MinDiversity(eq, sel, vector.CosineDistance)
			if avg > bestAvg {
				bestAvg, avgWinner = avg, src.name()
			}
			if min > bestMin {
				bestMin, minWinner = min, src.name()
			}
		}
		if avgWinner != "" {
			avgWins[avgWinner]++
		}
		if minWinner != "" {
			minWins[minWinner]++
		}
	}
	return avgWins, minWins, llmSkipped
}

// Table3 reproduces the end-to-end comparison against table search
// techniques: DUST vs Starmie-as-tuple-search on SANTOS, plus the LLM on
// UGEN-V1 (the LLM is excluded from SANTOS by its token limit, exactly as
// in the paper).
func Table3(cfg Config) *Report {
	dustModel, _, _, _ := Models()
	maxQ := cfg.scale(3, 0)
	kSantos := cfg.scale(30, 100)

	// The LLM's prompt budget scales with the corpus: the paper's GPT-3
	// budget is exceeded by full-size SANTOS query tables; our corpus is
	// ~10x smaller, so the budget shrinks accordingly. UGEN queries
	// (~10 rows) fit; SANTOS queries (40-120 rows) do not — reproducing
	// the paper's exclusion of the LLM on SANTOS.
	scaledLLM := func() *llm.Generator {
		g := llm.New()
		g.TokenBudget = 400
		return g
	}
	santos := benchSANTOS()
	santosSources := []tupleSource{
		dustSource{santos, dustModel},
		starmieSource{search.NewTupleSearch(santos.Lake.Tables())},
		llmSource{scaledLLM()}, // hits the token limit on SANTOS queries
	}
	sAvg, sMin, sSkipped := runTable3(santos, santosSources, kSantos, maxQ, dustModel)

	ugen := benchUGEN()
	ugenSources := []tupleSource{
		dustSource{ugen, dustModel},
		starmieSource{search.NewTupleSearch(ugen.Lake.Tables())},
		llmSource{scaledLLM()},
	}
	uAvg, uMin, _ := runTable3(ugen, ugenSources, 30, maxQ, dustModel)

	r := &Report{
		Title:   "Table 3 — DUST vs table search techniques (win counts)",
		Columns: []string{"Method", "SANTOS #Avg", "SANTOS #Min", "UGEN #Avg", "UGEN #Min"},
	}
	for _, name := range []string{"starmie", "llm", "dust"} {
		sa, sm := "-", "-"
		if name != "llm" { // LLM excluded on SANTOS
			sa, sm = d(sAvg[name]), d(sMin[name])
		}
		r.AddRow(name, sa, sm, d(uAvg[name]), d(uMin[name]))
	}
	r.Note("LLM generations skipped on SANTOS due to token limit: %d (paper excludes the LLM there for the same reason)", sSkipped)
	r.Note("paper shape: DUST best for ~90%% of SANTOS queries and the most UGEN queries; LLM second on UGEN; Starmie last (it favours tuples already in the query)")
	r.Note("shape dust wins SANTOS: %s (avg %d vs starmie %d)", passFail(sAvg["dust"] > sAvg["starmie"]), sAvg["dust"], sAvg["starmie"])
	r.Note("shape dust wins UGEN: %s (avg %d, llm %d, starmie %d)",
		passFail(uAvg["dust"] >= uAvg["llm"] && uAvg["dust"] >= uAvg["starmie"]),
		uAvg["dust"], uAvg["llm"], uAvg["starmie"])
	return r
}
