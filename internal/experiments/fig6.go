package experiments

import (
	"dust/internal/embed"
	"dust/internal/model"
)

// Fig6 reproduces the unionable-tuple representation accuracy comparison
// (paper Fig. 6): pre-trained BERT/RoBERTa/sBERT, the Ditto entity-matching
// transfer, and the two fine-tuned DUST variants, all classified at the
// 0.7 cosine-distance threshold on the TUS fine-tuning test split.
func Fig6(cfg Config) *Report {
	dustR, dustB, ditto, pairs := Models()
	test := pairs.Test
	if cfg.Quick && len(test) > 120 {
		test = test[:120]
	}

	encoders := []model.TupleEncoder{
		embed.NewBERT(),
		embed.NewRoBERTa(),
		embed.NewSBERT(),
		ditto,
		dustB,
		dustR,
	}
	r := &Report{
		Title:   "Fig. 6 — Unionable tuple representation accuracy",
		Columns: []string{"Model", "Accuracy", "Paper"},
	}
	paper := map[string]string{
		"bert": "0.50", "roberta": "0.50", "sbert": "0.56",
		"ditto": "0.66", "dust-bert": "0.84", "dust-roberta": "0.85",
	}
	acc := map[string]float64{}
	for _, enc := range encoders {
		a := model.Accuracy(enc, test, model.ClassifyThreshold)
		acc[enc.Name()] = a
		r.AddRow(enc.Name(), f3(a), paper[enc.Name()])
	}
	r.Note("shape pretrained ~coin-toss: %s (bert %.3f, roberta %.3f)",
		passFail(acc["bert"] < 0.62 && acc["roberta"] < 0.62), acc["bert"], acc["roberta"])
	r.Note("shape dust > ditto by >= 15%%: %s (dust-roberta %.3f vs ditto %.3f)",
		passFail(acc["dust-roberta"] >= acc["ditto"]*1.15), acc["dust-roberta"], acc["ditto"])
	r.Note("shape ordering bert<=sbert<=ditto<=dust(bert)<=dust(roberta): %s",
		passFail(acc["bert"] <= acc["sbert"]+0.02 && acc["sbert"] <= acc["ditto"]+0.02 &&
			acc["ditto"] <= acc["dust-bert"] && acc["dust-bert"] <= acc["dust-roberta"]+0.02))
	return r
}
