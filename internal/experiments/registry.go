package experiments

import (
	"fmt"
	"sort"
)

// Runner is one registered experiment.
type Runner struct {
	Name     string
	Artifact string // which table/figure of the paper it regenerates
	Run      func(Config) *Report
}

// All returns every registered experiment in presentation order.
func All() []Runner {
	return []Runner{
		{"fig2", "Fig. 2 (embedding geometry)", Fig2},
		{"fig5", "Fig. 5 (benchmark statistics)", Fig5},
		{"table1", "Table 1 (column alignment)", Table1},
		{"fig6", "Fig. 6 (tuple representation accuracy)", Fig6},
		{"table2", "Table 2 (diversification wins + time)", Table2},
		{"random", "§6.4.3 (random baseline)", Table2Random},
		{"fig7", "Fig. 7 (runtime scalability)", Fig7},
		{"table3", "Table 3 (vs table search techniques)", Table3},
		{"fig8", "Fig. 8 (IMDB case study)", Fig8},
		{"fig10", "Fig. 10 (shuffle robustness)", Fig10},
		{"fig11", "Fig. 11 (impact of p)", Fig11},
		{"fig12", "Fig. 12 / App. A.2.5 (mythology anecdote)", Fig12},
		{"prune", "App. A.2.3 (pruning influence)", PruneAblation},
		{"ablation-granularity", "DESIGN ablation (tuple vs table)", AblationTupleVsTable},
		{"ablation-medoid", "DESIGN ablation (medoid vs random)", AblationMedoid},
		{"ablation-distance", "DESIGN ablation (distance stability)", AblationDistance},
	}
}

// Get returns the named experiment.
func Get(name string) (Runner, error) {
	for _, r := range All() {
		if r.Name == name {
			return r, nil
		}
	}
	var names []string
	for _, r := range All() {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q (known: %v)", name, names)
}
