package experiments

import (
	"time"

	"dust/internal/datagen"
	"dust/internal/diversify"
	"dust/internal/model"
	"dust/internal/vector"
)

// diversificationProblem builds one per-query diversification instance:
// the query's tuples and all tuples of its ground-truth unionable tables,
// embedded with the fine-tuned DUST model, capped at s candidates (§6.4.3
// uses s <= 2500).
func diversificationProblem(b *datagen.Benchmark, queryIdx, k, s int, m *model.Model) diversify.Problem {
	q := b.Queries[queryIdx]
	eq := make([]vector.Vec, q.NumRows())
	headers := q.Headers()
	for i := range eq {
		eq[i] = m.EncodeTuple(headers, q.Row(i))
	}
	var et []vector.Vec
	var groups []int
	for gi, tn := range b.Unionable[q.Name] {
		t := b.Lake.Get(tn)
		th := t.Headers()
		for r := 0; r < t.NumRows(); r++ {
			if len(et) >= s {
				break
			}
			et = append(et, m.EncodeTuple(th, t.Row(r)))
			groups = append(groups, gi)
		}
	}
	return diversify.Problem{Query: eq, Tuples: et, Groups: groups, K: k, Dist: vector.CosineDistance}
}

// table2Result holds per-method win counts and mean runtime.
type table2Result struct {
	avgWins, minWins int
	meanTime         time.Duration
}

// runTable2 evaluates the algorithms on one benchmark: per query, each
// algorithm's Average and Min Diversity are computed and the best method
// per metric gets a win (§6.4.3's reporting).
func runTable2(b *datagen.Benchmark, algos []diversify.Algorithm, k, s, maxQueries int, m *model.Model) map[string]*table2Result {
	out := map[string]*table2Result{}
	for _, a := range algos {
		out[a.Name()] = &table2Result{}
	}
	nq := len(b.Queries)
	if maxQueries > 0 && nq > maxQueries {
		nq = maxQueries
	}
	var totalTime = map[string]time.Duration{}
	for qi := 0; qi < nq; qi++ {
		p := diversificationProblem(b, qi, k, s, m)
		if len(p.Tuples) == 0 {
			continue
		}
		bestAvg, bestMin := -1.0, -1.0
		var avgWinner, minWinner string
		for _, a := range algos {
			start := time.Now()
			sel := a.Select(p)
			totalTime[a.Name()] += time.Since(start)
			chosen := diversify.Gather(p.Tuples, sel)
			avg := diversify.AverageDiversity(p.Query, chosen, p.Dist)
			min := diversify.MinDiversity(p.Query, chosen, p.Dist)
			if avg > bestAvg {
				bestAvg, avgWinner = avg, a.Name()
			}
			if min > bestMin {
				bestMin, minWinner = min, a.Name()
			}
		}
		out[avgWinner].avgWins++
		out[minWinner].minWins++
	}
	for _, a := range algos {
		if nq > 0 {
			out[a.Name()].meanTime = totalTime[a.Name()] / time.Duration(nq)
		}
	}
	return out
}

// Table2 reproduces the diversification effectiveness/efficiency table:
// win counts for Average and Min Diversity plus mean time per query, for
// GMC, GNE (UGEN-V1 only — it does not scale, as in the paper), CLT, and
// DUST on SANTOS and UGEN-V1.
func Table2(cfg Config) *Report {
	dustModel, _, _, _ := Models()

	kSantos := cfg.scale(30, 100)
	sCap := 2500
	maxQ := cfg.scale(4, 0)

	santosAlgos := []diversify.Algorithm{diversify.NewGMC(), diversify.CLT{}, diversify.NewDUST()}
	ugenAlgos := []diversify.Algorithm{diversify.NewGMC(), diversify.NewGNE(), diversify.CLT{}, diversify.NewDUST()}

	santos := runTable2(benchSANTOS(), santosAlgos, kSantos, sCap, maxQ, dustModel)
	ugen := runTable2(benchUGEN(), ugenAlgos, 30, sCap, maxQ, dustModel)

	r := &Report{
		Title: "Table 2 — Diversification wins and mean time per query",
		Columns: []string{"Method",
			"SANTOS #Avg", "SANTOS #Min", "SANTOS ms",
			"UGEN #Avg", "UGEN #Min", "UGEN ms"},
	}
	for _, name := range []string{"gmc", "gne", "clt", "dust"} {
		row := []string{name}
		if res, ok := santos[name]; ok {
			row = append(row, d(res.avgWins), d(res.minWins), d(int(res.meanTime.Milliseconds())))
		} else {
			row = append(row, "-", "-", "-")
		}
		if res, ok := ugen[name]; ok {
			row = append(row, d(res.avgWins), d(res.minWins), d(int(res.meanTime.Milliseconds())))
		} else {
			row = append(row, "-", "-", "-")
		}
		r.AddRow(row...)
	}
	r.Note("paper shape: DUST best Min Diversity almost everywhere; DUST or GMC best Average; GNE slowest by far; DUST ~ CLT speed, much faster than GMC")
	r.Note("shape dust wins min-diversity: %s (SANTOS %d, UGEN %d)",
		passFail(santos["dust"].minWins >= santos["gmc"].minWins && ugen["dust"].minWins >= ugen["gmc"].minWins),
		santos["dust"].minWins, ugen["dust"].minWins)
	r.Note("shape dust faster than gmc on SANTOS: %s (%v vs %v)",
		passFail(santos["dust"].meanTime < santos["gmc"].meanTime),
		santos["dust"].meanTime, santos["gmc"].meanTime)
	r.Note("shape gne slowest on UGEN: %s (%v)",
		passFail(ugen["gne"].meanTime >= ugen["gmc"].meanTime && ugen["gne"].meanTime >= ugen["dust"].meanTime),
		ugen["gne"].meanTime)
	return r
}

// Table2Random runs the §6.4.3 random-baseline comparison: five random
// seeds per query, best random score per metric vs DUST.
func Table2Random(cfg Config) *Report {
	dustModel, _, _, _ := Models()
	maxQ := cfg.scale(4, 0)

	r := &Report{
		Title:   "§6.4.3 — DUST vs best-of-5 random selections",
		Columns: []string{"Benchmark", "Queries", "DUST Avg wins", "DUST Min wins"},
	}
	for _, bench := range []struct {
		b *datagen.Benchmark
		k int
	}{{benchSANTOS(), cfg.scale(30, 100)}, {benchUGEN(), 30}} {
		nq := len(bench.b.Queries)
		if maxQ > 0 && nq > maxQ {
			nq = maxQ
		}
		dustAvgWins, dustMinWins := 0, 0
		for qi := 0; qi < nq; qi++ {
			p := diversificationProblem(bench.b, qi, bench.k, 2500, dustModel)
			if len(p.Tuples) == 0 {
				continue
			}
			sel := diversify.NewDUST().Select(p)
			chosen := diversify.Gather(p.Tuples, sel)
			dAvg := diversify.AverageDiversity(p.Query, chosen, p.Dist)
			dMin := diversify.MinDiversity(p.Query, chosen, p.Dist)
			bestRAvg, bestRMin := 0.0, 0.0
			for seed := int64(1); seed <= 5; seed++ {
				rsel := diversify.Random{Seed: seed}.Select(p)
				rch := diversify.Gather(p.Tuples, rsel)
				if a := diversify.AverageDiversity(p.Query, rch, p.Dist); a > bestRAvg {
					bestRAvg = a
				}
				if m := diversify.MinDiversity(p.Query, rch, p.Dist); m > bestRMin {
					bestRMin = m
				}
			}
			if dAvg >= bestRAvg {
				dustAvgWins++
			}
			if dMin >= bestRMin {
				dustMinWins++
			}
		}
		r.AddRow(bench.b.Name, d(nq), d(dustAvgWins), d(dustMinWins))
	}
	r.Note("paper: DUST beats best-of-5 random on 46/50 SANTOS queries (Average) and all but one (Min)")
	return r
}
