package experiments

import (
	"dust/internal/datagen"
	"dust/internal/diversify"
	"dust/internal/model"
)

// pSweepScores returns mean Average and Min Diversity across queries of a
// benchmark for one value of DUST's p parameter.
func pSweepScores(b *datagen.Benchmark, p, k, maxQueries int, m *model.Model) (avg, min float64) {
	algo := diversify.NewDUST()
	algo.P = p
	nq := len(b.Queries)
	if maxQueries > 0 && nq > maxQueries {
		nq = maxQueries
	}
	count := 0
	for qi := 0; qi < nq; qi++ {
		prob := diversificationProblem(b, qi, k, 2500, m)
		if len(prob.Tuples) == 0 {
			continue
		}
		sel := algo.Select(prob)
		chosen := diversify.Gather(prob.Tuples, sel)
		avg += diversify.AverageDiversity(prob.Query, chosen, prob.Dist)
		min += diversify.MinDiversity(prob.Query, chosen, prob.Dist)
		count++
	}
	if count > 0 {
		avg /= float64(count)
		min /= float64(count)
	}
	return avg, min
}

// Fig11 reproduces the impact-of-p analysis (Appendix A.2.2): percentage
// change of Average and Min Diversity over the previous p, for p = 1..5,
// on SANTOS and UGEN-V1. The paper selects p = 2 because improvements
// beyond it are negative (min) or insignificant (average).
func Fig11(cfg Config) *Report {
	dustModel, _, _, _ := Models()
	maxQ := cfg.scale(3, 0)
	kSantos := cfg.scale(30, 100)

	r := &Report{
		Title:   "Fig. 11 — Impact of p on DUST (percent change vs previous p)",
		Columns: []string{"Benchmark", "p", "Avg Diversity", "%Change Avg", "Min Diversity", "%Change Min"},
	}
	record := func(b *datagen.Benchmark, k int) (minDropsAfter2 bool) {
		var prevAvg, prevMin float64
		var changeMinAfter2 float64
		for p := 1; p <= 5; p++ {
			avg, min := pSweepScores(b, p, k, maxQ, dustModel)
			ca, cm := "-", "-"
			if p > 1 {
				ca = f1(pctChange(prevAvg, avg))
				cm = f1(pctChange(prevMin, min))
				if p > 2 {
					changeMinAfter2 += pctChange(prevMin, min)
				}
			}
			r.AddRow(b.Name, d(p), f3(avg), ca, f3(min), cm)
			prevAvg, prevMin = avg, min
		}
		return changeMinAfter2 <= 1 // non-positive-ish cumulative change
	}
	sOK := record(benchSANTOS(), kSantos)
	uOK := record(benchUGEN(), 30)
	r.Note("paper: beyond p=2 min-diversity degrades and average barely moves, so p=2 is the default")
	r.Note("shape p>2 does not help min-diversity: SANTOS %s, UGEN %s", passFail(sOK), passFail(uOK))
	return r
}

func pctChange(prev, cur float64) float64 {
	if prev == 0 {
		return 0
	}
	return (cur - prev) / prev * 100
}
