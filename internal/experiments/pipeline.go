package experiments

import (
	"dust"
	"dust/internal/datagen"
	"dust/internal/model"
)

// pipelineFor assembles the full DUST pipeline over a benchmark's lake
// with the fine-tuned tuple model installed.
func pipelineFor(b *datagen.Benchmark, m *model.Model) *dust.Pipeline {
	return dust.New(b.Lake, dust.WithTupleEncoder(m))
}
