package experiments

import (
	"fmt"
	"strings"
)

// Report is a rendered experiment result: a title, an aligned text table,
// and free-form notes comparing the measured shape with the paper.
type Report struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// Note appends a comparison note.
func (r *Report) Note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as an aligned monospace table.
func (r *Report) String() string {
	var b strings.Builder
	b.WriteString("== ")
	b.WriteString(r.Title)
	b.WriteString(" ==\n")

	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				for p := len(cell); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		b.WriteString("  note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// f3 formats a float to 3 decimals; f1 to 1 decimal.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }
