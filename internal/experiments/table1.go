package experiments

import (
	"math"

	"dust/internal/align"
	"dust/internal/datagen"
	"dust/internal/embed"
	"dust/internal/table"
)

// alignMethod is one row of Table 1.
type alignMethod struct {
	name string
	// run aligns one query against its unionable tables and returns the
	// result for evaluation.
	run func(q *table.Table, tabs []*table.Table) *align.Result
}

func table1Methods() []alignMethod {
	cell := func(mk func(...embed.Option) *embed.Encoder) func(*table.Table, []*table.Table) *align.Result {
		return func(q *table.Table, tabs []*table.Table) *align.Result {
			return align.Holistic(align.EmbedColumns(q, tabs, embed.CellLevel{Model: mk()}))
		}
	}
	column := func(mk func(...embed.Option) *embed.Encoder) func(*table.Table, []*table.Table) *align.Result {
		return func(q *table.Table, tabs []*table.Table) *align.Result {
			return align.Holistic(align.EmbedColumns(q, tabs, embed.ColumnLevel{Model: mk()}))
		}
	}
	return []alignMethod{
		{"cell/fasttext", cell(embed.NewFastText)},
		{"cell/glove", cell(embed.NewGlove)},
		{"cell/bert", cell(embed.NewBERT)},
		{"cell/roberta", cell(embed.NewRoBERTa)},
		{"cell/sbert", cell(embed.NewSBERT)},
		{"column/bert", column(embed.NewBERT)},
		{"column/roberta", column(embed.NewRoBERTa)},
		{"column/sbert", column(embed.NewSBERT)},
		{"starmie (B)", func(q *table.Table, tabs []*table.Table) *align.Result {
			cols := align.EmbedColumnsStarmie(q, tabs, embed.NewStarmie())
			return align.Bipartite(cols, 0.3)
		}},
		{"starmie (H)", func(q *table.Table, tabs []*table.Table) *align.Result {
			cols := align.EmbedColumnsStarmie(q, tabs, embed.NewStarmie())
			return align.Holistic(cols)
		}},
	}
}

// table1Benchmark scores every method on one benchmark, averaging P/R/F1
// over its queries.
func table1Benchmark(b *datagen.Benchmark, maxQueries int) map[string]align.Metrics {
	queries := b.Queries
	if maxQueries > 0 && len(queries) > maxQueries {
		queries = queries[:maxQueries]
	}
	out := map[string]align.Metrics{}
	for _, m := range table1Methods() {
		var sum align.Metrics
		n := 0
		for _, q := range queries {
			var tabs []*table.Table
			for _, tn := range b.Unionable[q.Name] {
				tabs = append(tabs, b.Lake.Get(tn))
			}
			if len(tabs) == 0 {
				continue
			}
			truth := align.GroundTruth(q, tabs, b.Origins)
			res := m.run(q, tabs)
			met := align.Evaluate(res, truth)
			sum.Precision += met.Precision
			sum.Recall += met.Recall
			sum.F1 += met.F1
			n++
		}
		if n > 0 {
			sum.Precision /= float64(n)
			sum.Recall /= float64(n)
			sum.F1 /= float64(n)
		}
		out[m.name] = sum
	}
	return out
}

// Table1 reproduces the column-alignment effectiveness table: Precision,
// Recall, and F1 for ten embedding methods on TUS-Sampled, SANTOS, and
// UGEN-V1.
func Table1(cfg Config) *Report {
	maxQ := cfg.scale(3, 0)
	benches := []*datagen.Benchmark{benchTUSSampled(), benchSANTOS(), benchUGEN()}
	results := make([]map[string]align.Metrics, len(benches))
	for i, b := range benches {
		results[i] = table1Benchmark(b, maxQ)
	}

	r := &Report{
		Title: "Table 1 — Column alignment effectiveness (P / R / F1)",
		Columns: []string{"Method",
			"TUS-S P", "TUS-S R", "TUS-S F1",
			"SANTOS P", "SANTOS R", "SANTOS F1",
			"UGEN P", "UGEN R", "UGEN F1"},
	}
	bestF1 := make([]float64, len(benches))
	bestName := make([]string, len(benches))
	for _, m := range table1Methods() {
		row := []string{m.name}
		for i := range benches {
			met := results[i][m.name]
			row = append(row, f3(met.Precision), f3(met.Recall), f3(met.F1))
			if met.F1 > bestF1[i] {
				bestF1[i] = met.F1
				bestName[i] = m.name
			}
		}
		r.AddRow(row...)
	}
	for i, b := range benches {
		r.Note("%s best F1: %s (%.3f)", b.Name, bestName[i], bestF1[i])
	}
	r.Note("paper shape: column-level roberta best overall; column-level beats cell-level for LMs; starmie (B) worst, starmie (H) better than (B)")

	// Shape assertions recorded in the report rather than failing: the
	// harness prints PASS/FAIL per expectation.
	colRoberta := avgF1(results, "column/roberta")
	cellRoberta := avgF1(results, "cell/roberta")
	starB := avgF1(results, "starmie (B)")
	starH := avgF1(results, "starmie (H)")
	r.Note("shape column>cell (roberta): %s (%.3f vs %.3f)", passFail(colRoberta > cellRoberta), colRoberta, cellRoberta)
	r.Note("shape starmie(H)>starmie(B): %s (%.3f vs %.3f)", passFail(starH > starB), starH, starB)
	r.Note("shape column/roberta is best or near-best: %s", passFail(colRoberta >= maxOverall(results)-0.05))
	return r
}

func avgF1(results []map[string]align.Metrics, name string) float64 {
	var s float64
	for _, r := range results {
		s += r[name].F1
	}
	return s / float64(len(results))
}

func maxOverall(results []map[string]align.Metrics) float64 {
	best := math.Inf(-1)
	for _, m := range table1Methods() {
		if v := avgF1(results, m.name); v > best {
			best = v
		}
	}
	return best
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
