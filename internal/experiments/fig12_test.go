package experiments

import "testing"

func TestFig12ShapeChecksPass(t *testing.T) {
	r := Fig12(quick)
	if len(r.Rows) != 10 {
		t.Fatalf("Fig12 rows = %d, want 10 (5 per method)", len(r.Rows))
	}
	assertAllShapesPass(t, r)
}

func TestFig2ShapeChecksPass(t *testing.T) {
	assertAllShapesPass(t, Fig2(quick))
}

func TestFig11ProducesAllPValues(t *testing.T) {
	r := Fig11(quick)
	if len(r.Rows) != 10 {
		t.Fatalf("Fig11 rows = %d, want 10 (p=1..5 on two benchmarks)", len(r.Rows))
	}
}

func TestAblationGranularityShapeChecksPass(t *testing.T) {
	assertAllShapesPass(t, AblationTupleVsTable(quick))
}

func TestTable2RandomDUSTWins(t *testing.T) {
	r := Table2Random(quick)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// DUST must beat best-of-5 random on at least half the queries.
	for _, row := range r.Rows {
		if row[2] == "0" && row[3] == "0" {
			t.Errorf("DUST won nothing vs random on %s", row[0])
		}
	}
}
